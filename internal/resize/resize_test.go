package resize

import (
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sim"
	"powder/internal/sta"
)

// oversized builds a circuit deliberately using x2 drive strengths where
// the loads do not require them.
func oversized(t *testing.T) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("fat", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	c, _ := nl.AddInput("c")
	g1, err := nl.AddGate("g1", lib.Cell("and2x2"), []netlist.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := nl.AddGate("g2", lib.Cell("nand2x2"), []netlist.NodeID{g1, c})
	g3, _ := nl.AddGate("g3", lib.Cell("invx4"), []netlist.NodeID{g2})
	if err := nl.AddOutput("g3", g3); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestDownsizingReducesPower(t *testing.T) {
	nl := oversized(t)
	before := nl.Area()
	res, err := Optimize(nl, Options{DelayConstraint: 1e9}) // no timing pressure
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps == 0 {
		t.Fatalf("oversized gates should be downsized")
	}
	if res.FinalPower >= res.InitialPower {
		t.Errorf("power did not drop: %v -> %v", res.InitialPower, res.FinalPower)
	}
	if nl.Area() >= before {
		t.Errorf("area did not drop")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Functions are untouched: all gates still compute the same TTs, so a
	// quick simulation sanity check suffices.
	s := sim.New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	g3 := nl.FindNode("g3")
	// g3 = !(!(a*b*... )) chain: just assert it is not constant.
	v := s.Value(g3)[0] & s.ValidMask(0)
	if v == 0 || v == s.ValidMask(0) {
		t.Errorf("output became constant after resize")
	}
}

func TestTightConstraintBlocksDownsizing(t *testing.T) {
	nl := oversized(t)
	// Constraint exactly at the current (fast, oversized) delay: swapping
	// to weak cells would slow the circuit, so swaps must be limited.
	d0 := sta.New(nl, 0).Delay()
	res, err := Optimize(nl, Options{DelayConstraint: d0})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDelay > d0+1e-9 {
		t.Fatalf("constraint violated: %v > %v", res.FinalDelay, d0)
	}
	// And a loose run must save at least as much power.
	nl2 := oversized(t)
	loose, err := Optimize(nl2, Options{DelayConstraint: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if loose.FinalPower > res.FinalPower+1e-9 {
		t.Errorf("loose constraint saved less power (%v) than tight (%v)",
			loose.FinalPower, res.FinalPower)
	}
}

func TestResizeIdempotent(t *testing.T) {
	nl := oversized(t)
	if _, err := Optimize(nl, Options{DelayConstraint: 1e9}); err != nil {
		t.Fatal(err)
	}
	second, err := Optimize(nl, Options{DelayConstraint: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if second.Swaps != 0 {
		t.Errorf("second pass should find nothing, swapped %d", second.Swaps)
	}
}

func TestReplaceCellValidation(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("v", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	if err := nl.ReplaceCell(g, lib.Cell("and2x2")); err != nil {
		t.Fatalf("same-function swap rejected: %v", err)
	}
	if err := nl.ReplaceCell(g, lib.Cell("or2")); err == nil {
		t.Errorf("different-function swap must be rejected")
	}
	if err := nl.ReplaceCell(g, lib.Cell("inv")); err == nil {
		t.Errorf("different-pin-count swap must be rejected")
	}
	if err := nl.ReplaceCell(a, lib.Cell("and2")); err == nil {
		t.Errorf("ReplaceCell on an input must be rejected")
	}
}

package resize

import (
	"strings"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sta"
)

// weakChain builds a heavily loaded chain from minimum-drive cells: one
// driver gate fanning out to many loads, so upsizing genuinely helps.
func weakChain(t *testing.T) (*netlist.Netlist, netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("weak", lib)
	in, _ := nl.AddInput("in")
	in2, _ := nl.AddInput("in2")
	driver, err := nl.AddGate("driver", lib.Cell("nand2"), []netlist.NodeID{in, in2})
	if err != nil {
		t.Fatal(err)
	}
	// 12 fanout loads on the weak driver.
	for i := 0; i < 12; i++ {
		g, err := nl.AddGate("", lib.Cell("and2"), []netlist.NodeID{driver, in2})
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.AddOutput("o"+string(rune('a'+i)), g); err != nil {
			t.Fatal(err)
		}
	}
	return nl, driver
}

func TestDelayRepairUpsizes(t *testing.T) {
	nl, driver := weakChain(t)
	d0 := sta.New(nl, 0).Delay()
	// Demand 15% faster than the weak implementation: only upsizing the
	// driver can achieve it.
	res, err := Optimize(nl, Options{DelayConstraint: d0 * 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDelay >= d0 {
		t.Fatalf("repair did not speed up the circuit: %.3f vs %.3f", res.FinalDelay, d0)
	}
	if res.Swaps == 0 {
		t.Fatalf("no swaps performed")
	}
	// The driver should now be a higher-drive variant.
	cellName := nl.Node(driver).Cell().Name
	if !strings.Contains(cellName, "x2") {
		t.Errorf("driver cell = %s, expected an upsized variant", cellName)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairStopsWhenDriveRangeExhausted(t *testing.T) {
	nl, _ := weakChain(t)
	// An impossible constraint: the pass must terminate and report the
	// miss rather than loop.
	res, err := Optimize(nl, Options{DelayConstraint: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDelay <= 0.01 {
		t.Fatalf("impossible constraint claimed met")
	}
}

func TestResultHelpers(t *testing.T) {
	nl, _ := weakChain(t)
	res, err := Optimize(nl, Options{DelayConstraint: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Errorf("empty result string")
	}
	// PowerReductionPct is consistent with the fields.
	want := 100 * (res.InitialPower - res.FinalPower) / res.InitialPower
	if got := res.PowerReductionPct(); got != want {
		t.Errorf("PowerReductionPct = %v, want %v", got, want)
	}
}

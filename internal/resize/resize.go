// Package resize implements the gate re-sizing phase of the logic
// synthesis flow in the paper's Figure 1 (cf. Bahar et al., ICCAD'94,
// cited there): each gate may be swapped for a library cell with the same
// function but a different drive strength. Downsizing reduces the input
// capacitance the gate presents to its fanins — and hence sum C·E — while
// increasing the gate's own delay; re-sizing therefore trades power
// against the delay constraint exactly like POWDER's substitutions, but
// without touching the circuit structure. The pass composes with POWDER:
// run it before, after, or interleaved.
package resize

import (
	"fmt"
	"sort"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/power"
	"powder/internal/sta"
)

// Options configures a re-sizing pass.
type Options struct {
	// DelayConstraint is the absolute required output time; <= 0 uses the
	// circuit's current delay (re-sizing then must not slow it down).
	DelayConstraint float64
	// InputDrive is passed to the timing analysis.
	InputDrive float64
	// Power configures probability estimation when no model is supplied.
	Power power.Options
	// MaxRounds bounds the sweep count (default 4).
	MaxRounds int
}

// Result summarizes a pass.
type Result struct {
	Swaps        int
	InitialPower float64
	FinalPower   float64
	InitialArea  float64
	FinalArea    float64
	InitialDelay float64
	FinalDelay   float64
	Constraint   float64
}

// PowerReductionPct returns the percentage power reduction.
func (r *Result) PowerReductionPct() float64 {
	if r.InitialPower == 0 {
		return 0
	}
	return 100 * (r.InitialPower - r.FinalPower) / r.InitialPower
}

func (r *Result) String() string {
	return fmt.Sprintf("resize: %d swaps, power %.3f -> %.3f (%+.1f%%), delay %.2f -> %.2f (constraint %.2f)",
		r.Swaps, r.InitialPower, r.FinalPower, -r.PowerReductionPct(),
		r.InitialDelay, r.FinalDelay, r.Constraint)
}

// Optimize re-sizes gates in place for minimum power under the delay
// constraint. It is greedy per gate, sweeping until no swap helps.
func Optimize(nl *netlist.Netlist, opts Options) (*Result, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 4
	}
	pm := power.Estimate(nl, opts.Power)
	res := &Result{
		InitialPower: pm.Total(),
		InitialArea:  nl.Area(),
	}
	analysis := sta.NewWithInputDrive(nl, 0, opts.InputDrive)
	res.InitialDelay = analysis.Delay()
	constraint := opts.DelayConstraint
	if constraint <= 0 {
		constraint = res.InitialDelay
	}
	res.Constraint = constraint

	// Variant groups by truth table, precomputed once.
	variants := variantIndex(nl.Lib)

	// Phase 1 — delay repair: while the circuit misses the constraint,
	// upsize critical-path gates (higher drive, lower R*C delay) even
	// though that costs input capacitance. This recovers the delay an
	// unconstrained POWDER run traded away.
	for round := 0; round < 4*opts.MaxRounds; round++ {
		a := sta.NewWithInputDrive(nl, constraint, opts.InputDrive)
		if a.Delay() <= constraint+1e-9 {
			break
		}
		bestDelay := a.Delay()
		var bestGate netlist.NodeID = netlist.InvalidNode
		var bestCell *cellib.Cell
		for _, id := range a.CriticalPath() {
			n := nl.Node(id)
			if n.Kind() != netlist.KindGate {
				continue
			}
			for _, cand := range variants[n.Cell().TT] {
				if cand == n.Cell() {
					continue
				}
				old := n.Cell()
				if err := nl.ReplaceCell(id, cand); err != nil {
					return nil, err
				}
				d := sta.NewWithInputDrive(nl, constraint, opts.InputDrive).Delay()
				if err := nl.ReplaceCell(id, old); err != nil {
					return nil, err
				}
				if d < bestDelay-1e-12 {
					bestDelay, bestGate, bestCell = d, id, cand
				}
			}
		}
		if bestGate == netlist.InvalidNode {
			break // no swap improves the critical path
		}
		if err := nl.ReplaceCell(bestGate, bestCell); err != nil {
			return nil, err
		}
		res.Swaps++
	}

	// Phase 2 — power recovery: greedily downsize wherever the slack
	// allows.
	for round := 0; round < opts.MaxRounds; round++ {
		changed := 0
		// Visit high-load gates first: their fanin caps matter most.
		var gates []netlist.NodeID
		nl.LiveNodes(func(n *netlist.Node) {
			if n.Kind() == netlist.KindGate {
				gates = append(gates, n.ID())
			}
		})
		sort.Slice(gates, func(i, j int) bool { return nl.Load(gates[i]) > nl.Load(gates[j]) })

		for _, id := range gates {
			n := nl.Node(id)
			if n.Dead() {
				continue
			}
			group := variants[n.Cell().TT]
			if len(group) < 2 {
				continue
			}
			best := n.Cell()
			bestGain := 0.0
			for _, cand := range group {
				if cand == n.Cell() {
					continue
				}
				gain := swapPowerGain(nl, pm, id, cand)
				if gain > bestGain+1e-12 {
					// Tentatively swap and verify timing exactly.
					old := n.Cell()
					if err := nl.ReplaceCell(id, cand); err != nil {
						return nil, err
					}
					a := sta.NewWithInputDrive(nl, constraint, opts.InputDrive)
					if a.Delay() <= constraint+1e-9 {
						best, bestGain = cand, gain
					}
					if err := nl.ReplaceCell(id, old); err != nil {
						return nil, err
					}
				}
			}
			if best != n.Cell() {
				if err := nl.ReplaceCell(id, best); err != nil {
					return nil, err
				}
				changed++
			}
		}
		if changed == 0 {
			break
		}
		res.Swaps += changed
	}

	res.FinalPower = pm.Total()
	res.FinalArea = nl.Area()
	res.FinalDelay = sta.NewWithInputDrive(nl, 0, opts.InputDrive).Delay()
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("resize: netlist invalid after pass: %v", err)
	}
	return res, nil
}

// swapPowerGain computes the exact sum-C*E change of replacing gate id's
// cell: only the input-pin capacitances move (the function and therefore
// every E is unchanged).
func swapPowerGain(nl *netlist.Netlist, pm *power.Model, id netlist.NodeID, cand *cellib.Cell) float64 {
	n := nl.Node(id)
	gain := 0.0
	for pin, f := range n.Fanins() {
		dCap := n.Cell().Pins[pin].Cap - cand.Pins[pin].Cap
		gain += dCap * pm.TransitionProb(f)
	}
	return gain
}

// variantIndex groups the library's cells by exact truth table.
func variantIndex(lib *cellib.Library) map[logic.TT][]*cellib.Cell {
	idx := make(map[logic.TT][]*cellib.Cell)
	for _, c := range lib.Cells() {
		idx[c.TT] = append(idx[c.TT], c)
	}
	return idx
}

package sta

import (
	"math"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// chain builds in -> inv1 -> inv2 -> ... -> invK -> out.
func chain(t *testing.T, k int) (*netlist.Netlist, []netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("chain", lib)
	in, err := nl.AddInput("in")
	if err != nil {
		t.Fatal(err)
	}
	ids := []netlist.NodeID{in}
	prev := in
	for i := 0; i < k; i++ {
		g, err := nl.AddGate("", lib.Cell("inv"), []netlist.NodeID{prev})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, g)
		prev = g
	}
	if err := nl.AddOutput("out", prev); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestChainDelay(t *testing.T) {
	nl, ids := chain(t, 3)
	lib := nl.Lib
	inv := lib.Cell("inv")
	a := New(nl, 0)
	// Each inner inverter drives one inv pin (cap 0.9); the last drives the
	// PO load (1.0).
	dInner := inv.Delay(inv.Pins[0].Cap)
	dLast := inv.Delay(nl.POLoad)
	want := 2*dInner + dLast
	if math.Abs(a.Delay()-want) > 1e-9 {
		t.Errorf("Delay = %v, want %v", a.Delay(), want)
	}
	// Arrival is monotone along the chain.
	for i := 1; i < len(ids); i++ {
		if a.Arrival(ids[i]) <= a.Arrival(ids[i-1]) {
			t.Errorf("arrival not monotone at %d", i)
		}
	}
	// Unconstrained analysis: the whole chain is critical, zero slack.
	for _, id := range ids {
		if math.Abs(a.Slack(id)) > 1e-9 {
			t.Errorf("slack(%d) = %v, want 0", id, a.Slack(id))
		}
	}
	if !a.Met() {
		t.Errorf("unconstrained analysis must always be met")
	}
}

func TestConstraintSlack(t *testing.T) {
	nl, ids := chain(t, 3)
	a := New(nl, 0)
	d := a.Delay()

	loose := New(nl, d+2.0)
	for _, id := range ids {
		if math.Abs(loose.Slack(id)-2.0) > 1e-9 {
			t.Errorf("loose slack = %v, want 2", loose.Slack(id))
		}
	}
	if !loose.Met() {
		t.Errorf("loose constraint must be met")
	}

	tight := New(nl, d/2)
	if tight.Met() {
		t.Errorf("infeasible constraint reported met")
	}
	if tight.Slack(ids[len(ids)-1]) >= 0 {
		t.Errorf("negative slack expected")
	}
}

// diamond builds a two-path circuit: slow path through 2 gates, fast path
// through 1, converging on an AND.
func diamond(t *testing.T) (*netlist.Netlist, map[string]netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("diamond", lib)
	ids := make(map[string]netlist.NodeID)
	var err error
	ids["a"], err = nl.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	ids["b"], _ = nl.AddInput("b")
	mk := func(name, cell string, fanins ...netlist.NodeID) {
		id, err := nl.AddGate(name, lib.Cell(cell), fanins)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	mk("s1", "inv", ids["a"])
	mk("s2", "inv", ids["s1"])
	mk("join", "and2", ids["s2"], ids["b"])
	if err := nl.AddOutput("join", ids["join"]); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestDiamondSlacks(t *testing.T) {
	nl, ids := diamond(t)
	a := New(nl, 0)
	// The slow path a->s1->s2->join is critical; b has positive slack.
	if math.Abs(a.Slack(ids["s2"])) > 1e-9 {
		t.Errorf("slack(s2) = %v, want 0", a.Slack(ids["s2"]))
	}
	if a.Slack(ids["b"]) <= 0 {
		t.Errorf("slack(b) = %v, want positive", a.Slack(ids["b"]))
	}
	// Required time at the branch b->join equals required(join) - D(join).
	br := netlist.Branch{Gate: ids["join"], Pin: 1}
	want := a.Required(ids["join"]) - a.GateDelay(ids["join"])
	if got := a.RequiredAtBranch(br); math.Abs(got-want) > 1e-12 {
		t.Errorf("RequiredAtBranch = %v, want %v", got, want)
	}
}

func TestExtraLoadOK(t *testing.T) {
	nl, ids := diamond(t)
	a := New(nl, 0)
	// b has slack; a small extra load is fine, a huge one is not.
	if !a.ExtraLoadOK(ids["b"], 0.1) {
		// b is an input with InputDrive 0: any load is fine.
		t.Errorf("input with zero drive must accept extra load")
	}
	// s2 is on the critical path with zero slack: any positive load fails.
	if a.ExtraLoadOK(ids["s2"], 1.0) {
		t.Errorf("zero-slack gate must reject extra load")
	}
	if !a.ExtraLoadOK(ids["s2"], 0) {
		t.Errorf("zero extra load is always fine")
	}
	// With a relaxed constraint, s2 gains slack and accepts load.
	relaxed := New(nl, a.Delay()*2)
	if !relaxed.ExtraLoadOK(ids["s2"], 1.0) {
		t.Errorf("relaxed constraint should accept extra load")
	}
}

func TestArrivalWithExtraLoad(t *testing.T) {
	nl, ids := diamond(t)
	a := New(nl, 0)
	s1 := ids["s1"]
	drive := nl.Node(s1).Cell().Drive
	got := a.ArrivalWithExtraLoad(s1, 2.0)
	want := a.Arrival(s1) + 2.0*drive
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ArrivalWithExtraLoad = %v, want %v", got, want)
	}
}

func TestInputDrive(t *testing.T) {
	nl, ids := diamond(t)
	a0 := New(nl, 0)
	a1 := NewWithInputDrive(nl, 0, 0.5)
	if a1.Arrival(ids["a"]) <= a0.Arrival(ids["a"]) {
		t.Errorf("input drive must delay input arrival")
	}
	if a1.Delay() <= a0.Delay() {
		t.Errorf("input drive must increase circuit delay")
	}
}

func TestCriticalPath(t *testing.T) {
	nl, ids := diamond(t)
	a := New(nl, 0)
	path := a.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("critical path length %d, want 4", len(path))
	}
	want := []netlist.NodeID{ids["a"], ids["s1"], ids["s2"], ids["join"]}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("critical path[%d] = %d, want %d", i, path[i], want[i])
		}
	}
}

func TestRequiredInfinityForDanglingGates(t *testing.T) {
	nl, ids := diamond(t)
	lib := nl.Lib
	// A gate with no path to any PO has infinite required time.
	g, err := nl.AddGate("dangle", lib.Cell("inv"), []netlist.NodeID{ids["b"]})
	if err != nil {
		t.Fatal(err)
	}
	a := New(nl, 0)
	if !math.IsInf(a.Required(g), 1) {
		t.Errorf("dangling gate required = %v, want +Inf", a.Required(g))
	}
}

// Package sta implements static timing analysis over mapped netlists using
// the paper's linear delay model (Section 2): the delay of gate s is
//
//	D(s) = tau(s) + C(s) * R(s)
//
// with tau the intrinsic delay, C the capacitive load on the gate's output
// and R its drive resistance. Arrival times propagate forward from the
// primary inputs, required times backward from the primary outputs against
// a constraint, and the circuit delay is the maximum primary-output
// arrival time.
package sta

import (
	"math"
	"time"

	"powder/internal/netlist"
	"powder/internal/obs"
)

// Analysis holds the timing state of one netlist snapshot. It is immutable;
// recompute after netlist edits.
type Analysis struct {
	nl *netlist.Netlist
	// InputDrive is the drive resistance assumed for primary inputs; extra
	// load on an input shifts its arrival by load*InputDrive. The default
	// of zero models ideal input drivers.
	InputDrive float64

	arrival   []float64
	required  []float64
	gateDelay []float64
	delay     float64
	constr    float64
}

// New computes arrival and required times. A positive constraint sets the
// required time at every primary output; constraint <= 0 uses the computed
// circuit delay itself (zero-slack on the critical path).
func New(nl *netlist.Netlist, constraint float64) *Analysis {
	a := &Analysis{nl: nl, constr: constraint}
	a.compute()
	return a
}

// NewWithInputDrive is New with a non-zero primary-input drive resistance.
func NewWithInputDrive(nl *netlist.Netlist, constraint, inputDrive float64) *Analysis {
	a := &Analysis{nl: nl, constr: constraint, InputDrive: inputDrive}
	a.compute()
	return a
}

// NewObserved is NewWithInputDrive with rebuild metrics: every call counts
// one "sta.rebuilds" and records "sta.rebuild.seconds". Timing rebuilds
// after each applied substitution are a known hot spot; the metrics make
// their cost visible per run.
func NewObserved(nl *netlist.Netlist, constraint, inputDrive float64, o *obs.Observer) *Analysis {
	start := time.Now()
	a := NewWithInputDrive(nl, constraint, inputDrive)
	o.Counter("sta.rebuilds").Inc()
	o.Histogram("sta.rebuild.seconds").ObserveSince(start)
	return a
}

func (a *Analysis) compute() {
	nl := a.nl
	n := nl.NumNodes()
	a.arrival = make([]float64, n)
	a.required = make([]float64, n)
	a.gateDelay = make([]float64, n)
	order := nl.TopoOrder()

	// Forward: arrival times.
	a.delay = 0
	for _, id := range order {
		nd := nl.Node(id)
		if nd.Kind() == netlist.KindInput {
			a.arrival[id] = nl.Load(id) * a.InputDrive
			a.gateDelay[id] = 0
			continue
		}
		d := nd.Cell().Delay(nl.Load(id))
		a.gateDelay[id] = d
		worst := 0.0
		for _, f := range nd.Fanins() {
			if a.arrival[f] > worst {
				worst = a.arrival[f]
			}
		}
		a.arrival[id] = worst + d
	}
	for _, po := range nl.Outputs() {
		if a.arrival[po.Driver] > a.delay {
			a.delay = a.arrival[po.Driver]
		}
	}

	// Backward: required times.
	req := a.constr
	if req <= 0 {
		req = a.delay
	}
	for i := range a.required {
		a.required[i] = math.Inf(1)
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		nd := nl.Node(id)
		for _, b := range nd.Fanouts() {
			var r float64
			if b.IsPO() {
				r = req
			} else {
				r = a.required[b.Gate] - a.gateDelay[b.Gate]
			}
			if r < a.required[id] {
				a.required[id] = r
			}
		}
	}
}

// Delay returns the circuit delay (worst primary-output arrival time).
func (a *Analysis) Delay() float64 { return a.delay }

// Constraint returns the required time applied at the primary outputs.
func (a *Analysis) Constraint() float64 {
	if a.constr <= 0 {
		return a.delay
	}
	return a.constr
}

// Arrival returns the arrival time at the node's output.
func (a *Analysis) Arrival(id netlist.NodeID) float64 { return a.arrival[id] }

// Required returns the required time at the node's output; nodes with no
// path to an output have +Inf required time.
func (a *Analysis) Required(id netlist.NodeID) float64 { return a.required[id] }

// Slack returns required minus arrival.
func (a *Analysis) Slack(id netlist.NodeID) float64 { return a.required[id] - a.arrival[id] }

// GateDelay returns D(s) for a gate (zero for inputs).
func (a *Analysis) GateDelay(id netlist.NodeID) float64 { return a.gateDelay[id] }

// Met reports whether the circuit meets the constraint.
func (a *Analysis) Met() bool { return a.delay <= a.Constraint()+1e-9 }

// drive returns the drive resistance of a node's output.
func (a *Analysis) drive(id netlist.NodeID) float64 {
	nd := a.nl.Node(id)
	if nd.Kind() == netlist.KindInput {
		return a.InputDrive
	}
	return nd.Cell().Drive
}

// ArrivalWithExtraLoad returns the node's arrival time if its output load
// grew by extraCap.
func (a *Analysis) ArrivalWithExtraLoad(id netlist.NodeID, extraCap float64) float64 {
	return a.arrival[id] + extraCap*a.drive(id)
}

// ExtraLoadOK reports whether adding extraCap to node id's output keeps
// every *existing* path through id within the constraint: the arrival
// shift must not exceed the node's slack.
func (a *Analysis) ExtraLoadOK(id netlist.NodeID, extraCap float64) bool {
	if extraCap <= 0 {
		return true
	}
	shift := extraCap * a.drive(id)
	return shift <= a.Slack(id)+1e-9
}

// RequiredAtBranch returns the required time of the branch signal feeding
// pin pin of gate g: the gate's required time minus its own delay. For
// primary-output sinks use Constraint directly.
func (a *Analysis) RequiredAtBranch(b netlist.Branch) float64 {
	if b.IsPO() {
		return a.Constraint()
	}
	return a.required[b.Gate] - a.gateDelay[b.Gate]
}

// CriticalPath returns the node IDs of one critical path, input first.
func (a *Analysis) CriticalPath() []netlist.NodeID {
	// Find the critical PO driver.
	var cur netlist.NodeID = netlist.InvalidNode
	worst := math.Inf(-1)
	for _, po := range a.nl.Outputs() {
		if a.arrival[po.Driver] > worst {
			worst = a.arrival[po.Driver]
			cur = po.Driver
		}
	}
	if cur == netlist.InvalidNode {
		return nil
	}
	var rev []netlist.NodeID
	for {
		rev = append(rev, cur)
		nd := a.nl.Node(cur)
		if nd.Kind() == netlist.KindInput {
			break
		}
		var next netlist.NodeID = netlist.InvalidNode
		worst := math.Inf(-1)
		for _, f := range nd.Fanins() {
			if a.arrival[f] > worst {
				worst = a.arrival[f]
				next = f
			}
		}
		if next == netlist.InvalidNode {
			break
		}
		cur = next
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

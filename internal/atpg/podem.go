package atpg

import (
	"fmt"

	"powder/internal/logic"
	"powder/internal/netlist"
)

// tri is a ternary logic value.
type tri byte

const (
	t0 tri = iota
	t1
	tX
)

func triOf(b bool) tri {
	if b {
		return t1
	}
	return t0
}

// Fault is a single stuck-at fault: either on a stem signal or on one
// fanout branch (the input wire of a specific gate pin).
type Fault struct {
	// Stem is the driving stem signal.
	Stem netlist.NodeID
	// BranchGate/BranchPin identify a branch fault; BranchGate ==
	// InvalidNode means a stem fault.
	BranchGate netlist.NodeID
	BranchPin  int
	// StuckAt1 selects stuck-at-1 over stuck-at-0.
	StuckAt1 bool
}

// StemFault returns the stuck-at fault on a stem signal.
func StemFault(stem netlist.NodeID, stuckAt1 bool) Fault {
	return Fault{Stem: stem, BranchGate: netlist.InvalidNode, StuckAt1: stuckAt1}
}

// BranchFault returns the stuck-at fault on the branch feeding pin pin of
// gate g in netlist nl.
func BranchFault(nl *netlist.Netlist, g netlist.NodeID, pin int, stuckAt1 bool) Fault {
	return Fault{Stem: nl.Node(g).Fanins()[pin], BranchGate: g, BranchPin: pin, StuckAt1: stuckAt1}
}

// IsBranch reports whether the fault sits on a branch.
func (f Fault) IsBranch() bool { return f.BranchGate != netlist.InvalidNode }

// String renders e.g. "n5/0" or "n5->g7.2/1".
func (f Fault) String() string {
	v := 0
	if f.StuckAt1 {
		v = 1
	}
	if f.IsBranch() {
		return fmt.Sprintf("%d->%d.%d/%d", f.Stem, f.BranchGate, f.BranchPin, v)
	}
	return fmt.Sprintf("%d/%d", f.Stem, v)
}

// AllFaults enumerates every stem fault, plus branch faults for every
// multi-fanout stem (the collapsed fault set commonly used for mapped
// circuits).
func AllFaults(nl *netlist.Netlist) []Fault {
	var out []Fault
	nl.LiveNodes(func(n *netlist.Node) {
		for _, sa1 := range []bool{false, true} {
			out = append(out, StemFault(n.ID(), sa1))
		}
		if n.NumFanouts() > 1 {
			for _, b := range n.Fanouts() {
				if b.IsPO() {
					continue
				}
				for _, sa1 := range []bool{false, true} {
					out = append(out, Fault{Stem: n.ID(), BranchGate: b.Gate, BranchPin: b.Pin, StuckAt1: sa1})
				}
			}
		}
	})
	return out
}

// TestOutcome is the result of PODEM test generation.
type TestOutcome int

const (
	// TestAborted means the backtrack limit was exceeded.
	TestAborted TestOutcome = iota
	// TestFound means a detecting vector exists (returned alongside).
	TestFound
	// Untestable means the fault is provably undetectable (redundant).
	Untestable
)

func (o TestOutcome) String() string {
	switch o {
	case TestFound:
		return "test-found"
	case Untestable:
		return "untestable"
	}
	return "aborted"
}

// podem carries the search state of one test-generation run.
type podem struct {
	nl    *netlist.Netlist
	fault Fault
	order []netlist.NodeID
	good  []tri
	bad   []tri
	// piVal holds the current primary-input assignment (tX = unassigned).
	piVal      []tri
	backtracks int
	limit      int
}

// GenerateTest runs PODEM for the fault with the given backtrack limit
// (<= 0 means a generous default). On TestFound the returned vector holds
// the primary-input values in Inputs() order (unassigned inputs default to
// false).
func GenerateTest(nl *netlist.Netlist, f Fault, limit int) ([]bool, TestOutcome) {
	if limit <= 0 {
		limit = 10000
	}
	p := &podem{
		nl:    nl,
		fault: f,
		order: nl.TopoOrder(),
		good:  make([]tri, nl.NumNodes()),
		bad:   make([]tri, nl.NumNodes()),
		piVal: make([]tri, nl.NumNodes()),
		limit: limit,
	}
	for i := range p.piVal {
		p.piVal[i] = tX
	}

	type decision struct {
		pi      netlist.NodeID
		val     tri
		flipped bool
	}
	var stack []decision

	for iter := 0; ; iter++ {
		p.imply()
		if p.detected() {
			vec := make([]bool, len(nl.Inputs()))
			for i, in := range nl.Inputs() {
				vec[i] = p.piVal[in] == t1
			}
			return vec, TestFound
		}
		if p.consistent() {
			objNode, objVal := p.objective()
			pi, v := p.backtrace(objNode, objVal)
			if p.piVal[pi] != tX {
				// The heuristic backtrace landed on an assigned input
				// (possible around reconvergent faults); fall back to any
				// unassigned input so the search stays exhaustive.
				pi = p.firstUnassignedPI()
				v = t1
			}
			if pi != netlist.InvalidNode {
				stack = append(stack, decision{pi: pi, val: v})
				p.piVal[pi] = v
				continue
			}
			// Fully assigned yet undetected: dead end, fall through to
			// backtracking.
		}
		// Dead end: backtrack.
		for {
			if len(stack) == 0 {
				return nil, Untestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				if top.val == t1 {
					top.val = t0
				} else {
					top.val = t1
				}
				p.piVal[top.pi] = top.val
				p.backtracks++
				if p.backtracks > p.limit {
					return nil, TestAborted
				}
				break
			}
			p.piVal[top.pi] = tX
			stack = stack[:len(stack)-1]
		}
	}
}

// firstUnassignedPI returns any unassigned primary input, or InvalidNode.
func (p *podem) firstUnassignedPI() netlist.NodeID {
	for _, in := range p.nl.Inputs() {
		if p.piVal[in] == tX {
			return in
		}
	}
	return netlist.InvalidNode
}

// imply performs full forward 3-valued implication of both circuits.
func (p *podem) imply() {
	for _, id := range p.order {
		n := p.nl.Node(id)
		if n.Kind() == netlist.KindInput {
			p.good[id] = p.piVal[id]
			p.bad[id] = p.piVal[id]
		} else {
			var gIns, bIns [6]tri
			for pin, fn := range n.Fanins() {
				gIns[pin] = p.good[fn]
				bIns[pin] = p.bad[fn]
				if p.fault.IsBranch() && p.fault.BranchGate == id && p.fault.BranchPin == pin {
					bIns[pin] = triOf(p.fault.StuckAt1)
				}
			}
			k := len(n.Fanins())
			p.good[id] = eval3(n.Cell().TT, gIns[:k])
			p.bad[id] = eval3(n.Cell().TT, bIns[:k])
		}
		if !p.fault.IsBranch() && p.fault.Stem == id {
			p.bad[id] = triOf(p.fault.StuckAt1)
		}
	}
}

// detected reports whether some primary output carries a D value.
func (p *podem) detected() bool {
	for _, po := range p.nl.Outputs() {
		g, b := p.good[po.Driver], p.bad[po.Driver]
		if g != tX && b != tX && g != b {
			return true
		}
	}
	return false
}

// consistent reports whether the current partial assignment can still lead
// to a test: the fault is excitable and a D can still reach an output.
func (p *podem) consistent() bool {
	stuck := triOf(p.fault.StuckAt1)
	gs := p.good[p.fault.Stem]
	if gs == stuck {
		return false // fault can no longer be excited
	}
	if gs == tX {
		return true // excitation still open; objective will pursue it
	}
	// Excited: need a PO with D (handled in detected) or a D-frontier gate
	// with an X-path to an output.
	frontier := p.dFrontier()
	if len(frontier) == 0 {
		return false
	}
	return p.xPathToPO(frontier)
}

// dValueAtPin returns the (good, bad) pair seen by pin pin of gate id.
func (p *podem) dValueAtPin(id netlist.NodeID, pin int) (tri, tri) {
	fn := p.nl.Node(id).Fanins()[pin]
	g, b := p.good[fn], p.bad[fn]
	if p.fault.IsBranch() && p.fault.BranchGate == id && p.fault.BranchPin == pin {
		b = triOf(p.fault.StuckAt1)
	}
	return g, b
}

// dFrontier returns the gates that see a D on some input but do not yet
// produce a binary-differing output.
func (p *podem) dFrontier() []netlist.NodeID {
	var out []netlist.NodeID
	for _, id := range p.order {
		n := p.nl.Node(id)
		if n.Kind() != netlist.KindGate {
			continue
		}
		og, ob := p.good[id], p.bad[id]
		if og != tX && ob != tX && og != ob {
			continue // already producing D
		}
		if og != tX && ob != tX && og == ob {
			continue // output fixed equal; cannot become D
		}
		for pin := range n.Fanins() {
			g, b := p.dValueAtPin(id, pin)
			if g != tX && b != tX && g != b {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// xPathToPO reports whether some frontier gate reaches a primary output
// through gates whose output is still X in either circuit.
func (p *podem) xPathToPO(frontier []netlist.NodeID) bool {
	seen := make(map[netlist.NodeID]bool)
	var walk func(id netlist.NodeID) bool
	walk = func(id netlist.NodeID) bool {
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, b := range p.nl.Node(id).Fanouts() {
			if b.IsPO() {
				return true
			}
			g := b.Gate
			if p.good[g] == tX || p.bad[g] == tX {
				if walk(g) {
					return true
				}
			}
		}
		return false
	}
	for _, f := range frontier {
		if p.nl.IsPODriver(f) {
			return true
		}
		if walk(f) {
			return true
		}
	}
	return false
}

// objective picks the next signal/value goal: excite the fault, or advance
// the D-frontier.
func (p *podem) objective() (netlist.NodeID, tri) {
	stuck := triOf(p.fault.StuckAt1)
	if p.good[p.fault.Stem] == tX {
		if stuck == t0 {
			return p.fault.Stem, t1
		}
		return p.fault.Stem, t0
	}
	frontier := p.dFrontier()
	g := frontier[0]
	n := p.nl.Node(g)
	// Find an X input pin and a value for it under which the gate can
	// still propagate the difference.
	for pin := range n.Fanins() {
		pg, _ := p.dValueAtPin(g, pin)
		if pg != tX {
			continue
		}
		for _, u := range []tri{t1, t0} {
			if p.pinValueCanPropagate(g, pin, u) {
				fn := n.Fanins()[pin]
				return fn, u
			}
		}
	}
	// Fallback: drive the first X input high; backtracking cleans up.
	for pin, fn := range n.Fanins() {
		pg, _ := p.dValueAtPin(g, pin)
		if pg == tX {
			return fn, t1
		}
	}
	// Unreachable if the frontier invariant holds, but keep a safe default.
	return n.Fanins()[0], t1
}

// pinValueCanPropagate checks whether fixing the given X pin to u leaves a
// completion of the remaining X pins under which the gate's good and bad
// outputs differ.
func (p *podem) pinValueCanPropagate(g netlist.NodeID, pin int, u tri) bool {
	n := p.nl.Node(g)
	k := len(n.Fanins())
	var gIns, bIns [6]tri
	for i := 0; i < k; i++ {
		gIns[i], bIns[i] = p.dValueAtPin(g, i)
	}
	gIns[pin], bIns[pin] = u, u
	tt := n.Cell().TT
	// Enumerate completions of remaining X pins jointly (same completion in
	// good and bad circuit: unassigned pins carry no fault).
	var xPins []int
	for i := 0; i < k; i++ {
		if gIns[i] == tX || bIns[i] == tX {
			xPins = append(xPins, i)
		}
	}
	for m := 0; m < 1<<uint(len(xPins)); m++ {
		var gm, bm uint
		for i := 0; i < k; i++ {
			gv, bv := gIns[i], bIns[i]
			for xi, xp := range xPins {
				if xp == i {
					v := triOf(m>>uint(xi)&1 == 1)
					if gv == tX {
						gv = v
					}
					if bv == tX {
						bv = v
					}
				}
			}
			if gv == t1 {
				gm |= 1 << uint(i)
			}
			if bv == t1 {
				bm |= 1 << uint(i)
			}
		}
		if tt.Eval(gm) != tt.Eval(bm) {
			return true
		}
	}
	return false
}

// backtrace walks an objective back to an unassigned primary input.
func (p *podem) backtrace(node netlist.NodeID, val tri) (netlist.NodeID, tri) {
	for {
		n := p.nl.Node(node)
		if n.Kind() == netlist.KindInput {
			return node, val
		}
		tt := n.Cell().TT
		k := len(n.Fanins())
		var ins [6]tri
		for pin, fn := range n.Fanins() {
			ins[pin] = p.good[fn]
		}
		// Find a completion of the X inputs that yields the desired output
		// value, then descend into the first X pin with that completion's
		// value.
		var xPins []int
		for i := 0; i < k; i++ {
			if ins[i] == tX {
				xPins = append(xPins, i)
			}
		}
		if len(xPins) == 0 {
			// Output already determined; objective unachievable here. The
			// caller's implication step will expose the conflict.
			return p.nl.Inputs()[0], val
		}
		found := false
		for m := 0; m < 1<<uint(len(xPins)) && !found; m++ {
			var minterm uint
			for i := 0; i < k; i++ {
				v := ins[i]
				for xi, xp := range xPins {
					if xp == i {
						v = triOf(m>>uint(xi)&1 == 1)
					}
				}
				if v == t1 {
					minterm |= 1 << uint(i)
				}
			}
			if triOf(tt.Eval(minterm)) == val {
				pin := xPins[0]
				node = n.Fanins()[pin]
				val = triOf(minterm>>uint(pin)&1 == 1)
				found = true
			}
		}
		if !found {
			// No completion achieves the objective through this gate; pick
			// any X pin to make progress and let backtracking recover.
			pin := xPins[0]
			node = n.Fanins()[pin]
			val = t1
		}
	}
}

// eval3 evaluates the truth table on ternary inputs: the result is binary
// when all completions of the X inputs agree.
func eval3(tt logic.TT, ins []tri) tri {
	var xPins []int
	var base uint
	for i, v := range ins {
		switch v {
		case t1:
			base |= 1 << uint(i)
		case tX:
			xPins = append(xPins, i)
		}
	}
	if len(xPins) == 0 {
		return triOf(tt.Eval(base))
	}
	first := tt.Eval(base)
	for m := 1; m < 1<<uint(len(xPins)); m++ {
		cur := base
		for xi, xp := range xPins {
			if m>>uint(xi)&1 == 1 {
				cur |= 1 << uint(xp)
			}
		}
		if tt.Eval(cur) != first {
			return tX
		}
	}
	return triOf(first)
}

package atpg

import (
	"math/rand"
	"testing"

	"powder/internal/logic"
	"powder/internal/netlist"
)

// applyBranchSub applies a plain branch substitution to a clone.
func applyBranchSub(t *testing.T, nl *netlist.Netlist, g netlist.NodeID, pin int, b netlist.NodeID) *netlist.Netlist {
	t.Helper()
	cp := nl.Clone()
	if err := cp.ReplaceFanin(g, pin, b); err != nil {
		t.Fatal(err)
	}
	cp.SweepDead()
	return cp
}

func TestCheckBranchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		nl := randomNetlist(t, rng, 5, 12)
		c := NewChecker(nl)
		var gates []netlist.NodeID
		nl.LiveNodes(func(n *netlist.Node) {
			if n.Kind() == netlist.KindGate {
				gates = append(gates, n.ID())
			}
		})
		for k := 0; k < 8; k++ {
			g := gates[rng.Intn(len(gates))]
			pin := rng.Intn(len(nl.Node(g).Fanins()))
			b := netlist.NodeID(rng.Intn(nl.NumNodes()))
			nb := nl.Node(b)
			if nb.Dead() || b == g {
				continue
			}
			tfo := nl.TFO(g)
			if tfo[b] {
				continue
			}
			if nl.Node(g).Fanins()[pin] == b {
				continue // no-op
			}
			got := c.CheckBranch(g, pin, Source{B: b, C: netlist.InvalidNode})
			if got == Aborted {
				t.Fatalf("unexpected abort")
			}
			cp := applyBranchSub(t, nl, g, pin, b)
			want := NotPermissible
			if exhaustiveEqual(t, nl, cp) {
				want = Permissible
			}
			if got != want {
				t.Fatalf("trial %d: branch %d.%d <- %d: checker=%v brute=%v", trial, g, pin, b, got, want)
			}
			checked++
		}
	}
	if checked < 60 {
		t.Fatalf("too few branch cross-checks: %d", checked)
	}
}

// applyThreeSub applies an OS3 with a fresh 2-input gate to a clone.
func applyThreeSub(t *testing.T, nl *netlist.Netlist, a, b, c netlist.NodeID, cellName string) *netlist.Netlist {
	t.Helper()
	cp := nl.Clone()
	cell := cp.Lib.Cell(cellName)
	h, err := cp.AddGate("", cell, []netlist.NodeID{b, c})
	if err != nil {
		t.Fatal(err)
	}
	branches := append([]netlist.Branch(nil), cp.Node(a).Fanouts()...)
	for _, br := range branches {
		if br.IsPO() {
			if err := cp.RedirectOutput(br.Pin, h); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := cp.ReplaceFanin(br.Gate, br.Pin, h); err != nil {
				t.Fatal(err)
			}
		}
	}
	cp.SweepDead()
	return cp
}

func TestCheckStemThreeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	cellTTs := map[string]logic.TT{
		"and2":  logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2),
		"or2":   logic.TTFromExpr(logic.Or(logic.Var(0), logic.Var(1)), 2),
		"xor2":  logic.TTFromExpr(logic.Xor(logic.Var(0), logic.Var(1)), 2),
		"nand2": logic.TTFromExpr(logic.Not(logic.And(logic.Var(0), logic.Var(1))), 2),
	}
	cellNames := []string{"and2", "or2", "xor2", "nand2"}
	checked := 0
	for trial := 0; trial < 25; trial++ {
		nl := randomNetlist(t, rng, 5, 10)
		c := NewChecker(nl)
		var gates []netlist.NodeID
		nl.LiveNodes(func(n *netlist.Node) {
			if n.Kind() == netlist.KindGate && n.NumFanouts() > 0 {
				gates = append(gates, n.ID())
			}
		})
		if len(gates) == 0 {
			continue
		}
		for k := 0; k < 6; k++ {
			a := gates[rng.Intn(len(gates))]
			b := netlist.NodeID(rng.Intn(nl.NumNodes()))
			cc := netlist.NodeID(rng.Intn(nl.NumNodes()))
			if nl.Node(b).Dead() || nl.Node(cc).Dead() || b == cc {
				continue
			}
			tfo := nl.TFO(a)
			tfo[a] = true
			if tfo[b] || tfo[cc] {
				continue
			}
			name := cellNames[rng.Intn(len(cellNames))]
			got := c.CheckStem(a, Source{B: b, C: cc, Gate: cellTTs[name]})
			if got == Aborted {
				t.Fatalf("unexpected abort")
			}
			cp := applyThreeSub(t, nl, a, b, cc, name)
			want := NotPermissible
			if exhaustiveEqual(t, nl, cp) {
				want = Permissible
			}
			if got != want {
				t.Fatalf("trial %d: OS3 %d <- %s(%d,%d): checker=%v brute=%v",
					trial, a, name, b, cc, got, want)
			}
			checked++
		}
	}
	if checked < 40 {
		t.Fatalf("too few 3-sub cross-checks: %d", checked)
	}
}

func TestCheckInvertedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	checked := 0
	for trial := 0; trial < 20; trial++ {
		nl := randomNetlist(t, rng, 5, 10)
		c := NewChecker(nl)
		var gates []netlist.NodeID
		nl.LiveNodes(func(n *netlist.Node) {
			if n.Kind() == netlist.KindGate && n.NumFanouts() > 0 {
				gates = append(gates, n.ID())
			}
		})
		if len(gates) == 0 {
			continue
		}
		for k := 0; k < 6; k++ {
			a := gates[rng.Intn(len(gates))]
			b := netlist.NodeID(rng.Intn(nl.NumNodes()))
			if nl.Node(b).Dead() {
				continue
			}
			tfo := nl.TFO(a)
			tfo[a] = true
			if tfo[b] {
				continue
			}
			got := c.CheckStem(a, Source{B: b, InvertB: true, C: netlist.InvalidNode})
			if got == Aborted {
				t.Fatalf("unexpected abort")
			}
			// Brute force: materialize the inverter on a clone.
			cp := nl.Clone()
			inv, err := cp.AddGate("", cp.Lib.Inverter(), []netlist.NodeID{b})
			if err != nil {
				t.Fatal(err)
			}
			branches := append([]netlist.Branch(nil), cp.Node(a).Fanouts()...)
			for _, br := range branches {
				if br.IsPO() {
					if err := cp.RedirectOutput(br.Pin, inv); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := cp.ReplaceFanin(br.Gate, br.Pin, inv); err != nil {
						t.Fatal(err)
					}
				}
			}
			cp.SweepDead()
			want := NotPermissible
			if exhaustiveEqual(t, nl, cp) {
				want = Permissible
			}
			if got != want {
				t.Fatalf("trial %d: OS2 %d <- !%d: checker=%v brute=%v", trial, a, b, got, want)
			}
			checked++
		}
	}
	if checked < 40 {
		t.Fatalf("too few inverted cross-checks: %d", checked)
	}
}

package atpg

import (
	"context"
	"fmt"
	"time"

	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/sat"
)

// IncrementalChecker proves candidate substitutions against one frozen
// netlist snapshot on a single long-lived incremental solver. The base
// cone is encoded once and shared by every miter; each proof adds only
// its candidate-specific clauses (source, duplicated region, XOR taps) in
// a retirable activation-literal scope, and learned clauses that do not
// depend on a retired scope keep pruning later proofs. An optional shared
// SigCache short-circuits re-harvested duplicates of refuted candidates
// without a solve.
//
// The wrapped netlist must not change while the checker is in use — the
// permanent clauses mirror the snapshot taken at construction, and every
// check panics if the netlist version has moved. Checkers are not safe
// for concurrent use; the parallel engine runs one per worker per round.
type IncrementalChecker struct {
	nl      *netlist.Netlist
	version int64
	inc     *sat.Incremental
	b       *cnfBuilder

	// Budget is the conflict budget per check; exceeded means Aborted.
	Budget int64
	Stats  CheckStats
	// Obs receives the same per-check events and metrics as Checker,
	// plus atpg.sigcache.hits for cache short-circuits.
	Obs *obs.Observer
	// Ctx, when non-nil, is polled inside the SAT search.
	Ctx context.Context
	// Sig, when non-nil, is the (shared, thread-safe) refuted-miter cache.
	Sig *SigCache
	// LastCheck holds the detail of the most recent proof.
	LastCheck CheckDetail

	sigs nodeSigs
	cex  []bool
}

// NewIncrementalChecker returns an incremental checker over nl with the
// default proof budget.
func NewIncrementalChecker(nl *netlist.Netlist) *IncrementalChecker {
	inc := sat.NewIncremental()
	return &IncrementalChecker{
		nl:      nl,
		version: nl.Version(),
		inc:     inc,
		b:       newCNFBuilder(nl, inc.Base()),
		Budget:  50000,
	}
}

// Counterexample returns the primary-input assignment (in Inputs() order)
// that refuted the last NotPermissible check, or nil. Cache-hit
// refutations have no counterexample.
func (c *IncrementalChecker) Counterexample() []bool { return c.cex }

// Scopes returns how many proof scopes were opened and retired, for
// callers reporting clause-reuse effectiveness.
func (c *IncrementalChecker) Scopes() (opened, retired int) {
	return c.inc.ScopesOpened, c.inc.ScopesRetired
}

// CheckStem decides whether substituting every fanout of stem a with the
// source is permissible. It additionally returns the proof's support set:
// the nodes the verdict depends on (nil for structural verdicts and cache
// hits). The parallel engine intersects it with concurrently touched
// nodes to decide whether the verdict survives an interleaved edit.
func (c *IncrementalChecker) CheckStem(a netlist.NodeID, src Source) (Verdict, []netlist.NodeID) {
	n := c.nl.Node(a)
	branches := append([]netlist.Branch(nil), n.Fanouts()...)
	return c.check("stem", branches, src)
}

// CheckBranch decides whether rewiring pin pin of gate g to the source is
// permissible, returning the verdict and the proof's support set.
func (c *IncrementalChecker) CheckBranch(g netlist.NodeID, pin int, src Source) (Verdict, []netlist.NodeID) {
	return c.check("branch", []netlist.Branch{{Gate: g, Pin: pin}}, src)
}

func (c *IncrementalChecker) check(kind string, changed []netlist.Branch, src Source) (Verdict, []netlist.NodeID) {
	if c.nl.Version() != c.version {
		panic(fmt.Sprintf("atpg: netlist changed under IncrementalChecker (version %d -> %d)",
			c.version, c.nl.Version()))
	}
	c.Stats.Checks++
	start := time.Now()
	ctx, sp := trace.StartSpan(c.Ctx, "prove")
	v, support, conflicts, decisions, cached := c.decide(ctx, changed, src)
	if sp != nil {
		sp.SetAttr("kind", kind)
		sp.SetAttr("verdict", v.String())
		sp.SetAttr("branches", len(changed))
		sp.SetAttr("conflicts", conflicts)
		sp.SetAttr("decisions", decisions)
		sp.SetAttr("incremental", true)
		if cached {
			sp.SetAttr("sigcache", true)
		}
		if c.Budget > 0 {
			sp.SetAttr("budget", c.Budget)
		}
		sp.End()
	}
	switch v {
	case Permissible:
		c.Stats.Permissible++
	case NotPermissible:
		c.Stats.Refuted++
	default:
		c.Stats.Aborted++
	}
	c.Stats.Conflicts += conflicts
	c.Stats.Decisions += decisions
	c.LastCheck = CheckDetail{
		Verdict:   v,
		Conflicts: conflicts,
		Decisions: decisions,
		Seconds:   time.Since(start).Seconds(),
		Budget:    c.Budget,
	}

	if m := c.Obs.Metrics(); m != nil {
		m.Counter("atpg.checks").Inc()
		m.Counter("atpg.verdict." + v.String()).Inc()
		m.Counter("atpg.conflicts").Add(conflicts)
		m.Counter("atpg.decisions").Add(decisions)
		m.Histogram("atpg.check.seconds").ObserveSince(start)
		if cached {
			m.Counter("atpg.sigcache.hits").Inc()
		}
	}
	if c.Obs.Tracing() {
		f := obs.Fields{
			"kind":        kind,
			"verdict":     v.String(),
			"branches":    len(changed),
			"conflicts":   conflicts,
			"decisions":   decisions,
			"seconds":     time.Since(start).Seconds(),
			"incremental": true,
		}
		if cached {
			f["sigcache"] = true
		}
		if c.Budget > 0 {
			f["budget"] = c.Budget
			f["budget_used_pct"] = 100 * float64(conflicts) / float64(c.Budget)
		}
		c.Obs.Emit("check", f)
	}
	return v, support
}

func (c *IncrementalChecker) decide(ctx context.Context, changed []netlist.Branch, src Source) (verdict Verdict, support []netlist.NodeID, conflicts, decisions int64, cached bool) {
	p := planMiter(c.nl, changed, src)
	if p.cyclic {
		return NotPermissible, nil, 0, 0, false
	}

	var key [32]byte
	if c.Sig != nil {
		key = p.miterKey(c.nl, &c.sigs)
		if c.Sig.Refuted(key) {
			return NotPermissible, nil, 0, 0, true
		}
	}

	base := c.inc.Base()
	base.SetBudget(c.Budget)
	base.SetContext(ctx)
	scope := c.inc.Scope()
	defer scope.Retire()

	diffs := buildMiter(c.nl, c.b, scope, p)
	if len(diffs) == 0 {
		return Permissible, p.support(c.nl), 0, 0, false
	}
	if !scope.AddClause(diffs...) {
		return Permissible, p.support(c.nl), 0, 0, false
	}

	c0, d0 := base.Conflicts, base.Decisions
	res := scope.Solve()
	conflicts, decisions = base.Conflicts-c0, base.Decisions-d0
	switch res {
	case sat.Unsat:
		return Permissible, p.support(c.nl), conflicts, decisions, false
	case sat.Sat:
		c.cex = make([]bool, len(c.nl.Inputs()))
		for i, in := range c.nl.Inputs() {
			if v := c.b.varOf[in]; v >= 0 {
				c.cex[i] = base.Value(v)
			}
		}
		if c.Sig != nil {
			c.Sig.StoreRefuted(key)
		}
		return NotPermissible, nil, conflicts, decisions, false
	default:
		return Aborted, nil, conflicts, decisions, false
	}
}

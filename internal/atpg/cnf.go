// Package atpg provides the test-generation machinery POWDER relies on:
//
//   - a CNF encoder for mapped netlists (Tseitin-style, cube-compressed),
//   - a permissibility checker that proves or refutes signal substitutions
//     by building the substitution miter and deciding it with a budgeted
//     CDCL search (the budget overrun plays the role of the paper's "ATPG
//     aborted" outcome),
//   - a classic 5-valued PODEM stuck-at test generator, and
//   - a parallel-pattern fault simulator.
//
// The paper identifies permissible substitutions with ATPG-based implication
// techniques; we use the same miter formulation decided by a complete
// conflict-driven procedure (see DESIGN.md for the substitution note).
package atpg

import (
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sat"
)

// cnfBuilder incrementally encodes netlist nodes onto a clause adder —
// a one-shot solver, or the permanent layer of an incremental one.
type cnfBuilder struct {
	nl *netlist.Netlist
	s  sat.ClauseAdder
	// varOf maps node IDs to solver variables; -1 = not yet encoded.
	varOf []int
}

func newCNFBuilder(nl *netlist.Netlist, s sat.ClauseAdder) *cnfBuilder {
	v := make([]int, nl.NumNodes())
	for i := range v {
		v[i] = -1
	}
	return &cnfBuilder{nl: nl, s: s, varOf: v}
}

// nodeVar returns the solver variable of a node, encoding its transitive
// fanin cone on first use.
func (b *cnfBuilder) nodeVar(id netlist.NodeID) int {
	if b.varOf[id] >= 0 {
		return b.varOf[id]
	}
	n := b.nl.Node(id)
	if n.Kind() == netlist.KindInput {
		v := b.s.NewVar()
		b.varOf[id] = v
		return v
	}
	ins := make([]int, len(n.Fanins()))
	for pin, f := range n.Fanins() {
		ins[pin] = b.nodeVar(f)
	}
	v := b.s.NewVar()
	b.varOf[id] = v
	encodeCellClauses(b.s, n.Cell().TT, ins, v)
	return v
}

// encodeCellClauses emits CNF clauses asserting out == f(ins) for the
// 6-or-fewer-variable truth table f. Onset and offset minterms are first
// compressed with the cube minimizer, so simple gates get their familiar
// compact encodings (an AND2 yields 3 clauses, not 4).
func encodeCellClauses(s sat.ClauseAdder, tt logic.TT, ins []int, out int) {
	n := tt.N
	onset := logic.NewSOP(n)
	offset := logic.NewSOP(n)
	for m := uint(0); m < 1<<uint(n); m++ {
		var c logic.Cube
		for i := 0; i < n; i++ {
			c.Mask |= 1 << uint(i)
			if m>>uint(i)&1 == 1 {
				c.Val |= 1 << uint(i)
			}
		}
		if tt.Eval(m) {
			onset.Add(c)
		} else {
			offset.Add(c)
		}
	}
	onset.Minimize()
	offset.Minimize()
	// Onset cube c: (inputs match c) -> out, i.e. clause (out OR any input
	// literal opposite to c).
	for _, c := range onset.Cubes {
		lits := []sat.Lit{sat.Pos(out)}
		lits = appendCubeOpposite(lits, c, n, ins)
		s.AddClause(lits...)
	}
	// Offset cube c: (inputs match c) -> !out.
	for _, c := range offset.Cubes {
		lits := []sat.Lit{sat.Neg(out)}
		lits = appendCubeOpposite(lits, c, n, ins)
		s.AddClause(lits...)
	}
}

func appendCubeOpposite(lits []sat.Lit, c logic.Cube, n int, ins []int) []sat.Lit {
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if c.Mask&bit == 0 {
			continue
		}
		if c.Val&bit != 0 {
			lits = append(lits, sat.Neg(ins[i]))
		} else {
			lits = append(lits, sat.Pos(ins[i]))
		}
	}
	return lits
}

// xorVar returns a fresh variable constrained to a XOR b.
func xorVar(s sat.ClauseAdder, a, b int) int {
	d := s.NewVar()
	s.AddClause(sat.Neg(d), sat.Pos(a), sat.Pos(b))
	s.AddClause(sat.Neg(d), sat.Neg(a), sat.Neg(b))
	s.AddClause(sat.Pos(d), sat.Neg(a), sat.Pos(b))
	s.AddClause(sat.Pos(d), sat.Pos(a), sat.Neg(b))
	return d
}

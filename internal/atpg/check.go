package atpg

import (
	"context"
	"fmt"
	"time"

	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/sat"
)

// Verdict is the outcome of a permissibility check.
type Verdict int

const (
	// Aborted means the proof budget was exhausted; the paper treats this
	// exactly like a refutation (the substitution is not performed).
	Aborted Verdict = iota
	// Permissible means the substitution provably preserves all
	// primary-output functions.
	Permissible
	// NotPermissible means a distinguishing input vector exists.
	NotPermissible
)

func (v Verdict) String() string {
	switch v {
	case Permissible:
		return "permissible"
	case NotPermissible:
		return "not-permissible"
	}
	return "aborted"
}

// Source describes the substituting signal of a substitution:
// either an existing stem B (optionally inverted) for the 2-signal forms
// OS2/IS2, or the output of a new 2-input gate over stems B and C with
// truth table Gate for the 3-signal forms OS3/IS3.
type Source struct {
	B       netlist.NodeID
	InvertB bool
	// C is InvalidNode for 2-signal substitutions.
	C       netlist.NodeID
	InvertC bool
	// Gate is the new gate's 2-variable truth table (variable 0 = B,
	// variable 1 = C); ignored when C is InvalidNode.
	Gate logic.TT
}

// IsThree reports whether the source inserts a new gate.
func (s Source) IsThree() bool { return s.C != netlist.InvalidNode }

// effectiveTT folds the input inversions into the new gate's table.
func (s Source) effectiveTT() logic.TT {
	tt := s.Gate
	if s.InvertB {
		tt = flipInput(tt, 0)
	}
	if s.InvertC {
		tt = flipInput(tt, 1)
	}
	return tt
}

// flipInput returns the table of f with input i complemented.
func flipInput(tt logic.TT, i int) logic.TT {
	var out logic.TT
	out.N = tt.N
	for m := uint(0); m < 1<<uint(tt.N); m++ {
		if tt.Eval(m ^ (1 << uint(i))) {
			out.Bits |= 1 << uint64(m)
		}
	}
	return out
}

// CheckStats counts checker outcomes and the SAT effort they consumed.
type CheckStats struct {
	Checks      int
	Permissible int
	Refuted     int
	Aborted     int
	// Conflicts and Decisions sum the SAT solver work over all checks
	// (structural verdicts that never reach the solver contribute zero).
	Conflicts int64
	Decisions int64
}

// CheckDetail records the outcome and effort of one proof, for callers
// (the run ledger) that attribute SAT work to individual candidates.
type CheckDetail struct {
	Verdict   Verdict
	Conflicts int64
	Decisions int64
	Seconds   float64
	// Budget is the conflict budget the proof ran under.
	Budget int64
}

// Checker proves or refutes candidate substitutions on one netlist. It is
// stateless across checks except for statistics, the last check's
// detail, and the last counterexample; create one per netlist.
type Checker struct {
	nl *netlist.Netlist
	// Budget is the conflict budget per check; exceeded means Aborted.
	Budget int64
	Stats  CheckStats
	// Obs, when non-nil, receives one "check" event per proof (verdict,
	// conflicts, decisions, budget consumption) and per-check metrics.
	Obs *obs.Observer
	// Ctx, when non-nil, is polled inside the SAT search; a cancelled
	// context makes the in-flight proof return Aborted promptly.
	Ctx context.Context
	// LastCheck holds the detail of the most recent proof (each check
	// overwrites it; escalated retries therefore report the final round).
	LastCheck CheckDetail

	// cex holds the distinguishing primary-input assignment of the last
	// NotPermissible verdict, in input order.
	cex []bool
}

// NewChecker returns a checker with the default proof budget.
func NewChecker(nl *netlist.Netlist) *Checker {
	return &Checker{nl: nl, Budget: 50000}
}

// Counterexample returns the primary-input assignment (in Inputs() order)
// that refuted the last NotPermissible check, or nil.
func (c *Checker) Counterexample() []bool { return c.cex }

// CheckBranch decides whether rewiring pin pin of gate g to the source is
// permissible (the IS2/IS3 forms).
func (c *Checker) CheckBranch(g netlist.NodeID, pin int, src Source) Verdict {
	return c.check("branch", []netlist.Branch{{Gate: g, Pin: pin}}, src)
}

// CheckStem decides whether substituting every fanout of stem a (including
// primary outputs it drives) with the source is permissible (the OS2/OS3
// forms).
func (c *Checker) CheckStem(a netlist.NodeID, src Source) Verdict {
	n := c.nl.Node(a)
	branches := append([]netlist.Branch(nil), n.Fanouts()...)
	return c.check("stem", branches, src)
}

// check runs one proof with outcome accounting: statistics, per-check
// metrics, and a structured "check" event when an observer is attached.
func (c *Checker) check(kind string, changed []netlist.Branch, src Source) Verdict {
	c.Stats.Checks++
	start := time.Now()
	// One "prove" span per permissibility proof; the SAT solve inside
	// nests under it through the derived context.
	ctx, sp := trace.StartSpan(c.Ctx, "prove")
	v, conflicts, decisions := c.decide(ctx, changed, src)
	if sp != nil {
		sp.SetAttr("kind", kind)
		sp.SetAttr("verdict", v.String())
		sp.SetAttr("branches", len(changed))
		sp.SetAttr("conflicts", conflicts)
		sp.SetAttr("decisions", decisions)
		if c.Budget > 0 {
			sp.SetAttr("budget", c.Budget)
		}
		sp.End()
	}
	switch v {
	case Permissible:
		c.Stats.Permissible++
	case NotPermissible:
		c.Stats.Refuted++
	default:
		c.Stats.Aborted++
	}
	c.Stats.Conflicts += conflicts
	c.Stats.Decisions += decisions
	c.LastCheck = CheckDetail{
		Verdict:   v,
		Conflicts: conflicts,
		Decisions: decisions,
		Seconds:   time.Since(start).Seconds(),
		Budget:    c.Budget,
	}

	if m := c.Obs.Metrics(); m != nil {
		m.Counter("atpg.checks").Inc()
		m.Counter("atpg.verdict." + v.String()).Inc()
		m.Counter("atpg.conflicts").Add(conflicts)
		m.Counter("atpg.decisions").Add(decisions)
		m.Histogram("atpg.check.seconds").ObserveSince(start)
	}
	if c.Obs.Tracing() {
		f := obs.Fields{
			"kind":      kind,
			"verdict":   v.String(),
			"branches":  len(changed),
			"conflicts": conflicts,
			"decisions": decisions,
			"seconds":   time.Since(start).Seconds(),
		}
		if c.Budget > 0 {
			f["budget"] = c.Budget
			f["budget_used_pct"] = 100 * float64(conflicts) / float64(c.Budget)
		}
		c.Obs.Emit("check", f)
	}
	return v
}

// decide builds the substitution miter and decides it, returning the SAT
// effort spent (zero for structural verdicts that never reach the solver).
//
// The miter shares the unchanged part of the circuit: the original cone is
// encoded once; every gate in the transitive fanout of a rewired pin is
// duplicated with the rewired pins reading the source signal. The check
// asks whether any primary output can differ; UNSAT proves permissibility.
func (c *Checker) decide(ctx context.Context, changed []netlist.Branch, src Source) (verdict Verdict, conflicts, decisions int64) {
	nl := c.nl

	p := planMiter(nl, changed, src)
	// A source inside the duplicated region would mean a combinational
	// cycle in the rewired circuit; such candidates are structural
	// mistakes, never permissible rewirings.
	if p.cyclic {
		return NotPermissible, 0, 0
	}

	s := sat.New()
	s.SetBudget(c.Budget)
	s.SetContext(ctx)
	b := newCNFBuilder(nl, s)

	diffs := buildMiter(nl, b, s, p)
	if len(diffs) == 0 {
		// No primary output can observe the change.
		return Permissible, 0, 0
	}
	if !s.AddClause(diffs...) {
		return Permissible, 0, 0
	}

	switch s.Solve() {
	case sat.Unsat:
		return Permissible, s.Conflicts, s.Decisions
	case sat.Sat:
		c.cex = make([]bool, len(nl.Inputs()))
		for i, in := range nl.Inputs() {
			if v := b.varOf[in]; v >= 0 {
				c.cex[i] = s.Value(v)
			}
		}
		return NotPermissible, s.Conflicts, s.Decisions
	default:
		return Aborted, s.Conflicts, s.Decisions
	}
}

// String renders the stats.
func (st CheckStats) String() string {
	s := fmt.Sprintf("checks=%d permissible=%d refuted=%d aborted=%d",
		st.Checks, st.Permissible, st.Refuted, st.Aborted)
	if st.Conflicts > 0 || st.Decisions > 0 {
		s += fmt.Sprintf(" conflicts=%d decisions=%d", st.Conflicts, st.Decisions)
	}
	return s
}

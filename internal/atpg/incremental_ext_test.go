package atpg_test

// External test package: the parity suite harvests real candidates with
// internal/transform, which itself imports atpg.

import (
	"testing"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/netlist"
	"powder/internal/power"
	"powder/internal/synth"
	"powder/internal/transform"
)

func compileBenchmark(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	spec, err := circuits.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := synth.Compile(spec.Build(), cellib.Lib2(), synth.Options{Mode: synth.CostPower})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestIncrementalParity: on every harvested candidate of two circuits,
// the incremental checker agrees with the one-shot checker verdict for
// verdict (modulo Aborted, which is budget-path dependent).
func TestIncrementalParity(t *testing.T) {
	for _, name := range []string{"comp", "clip"} {
		nl := compileBenchmark(t, name)
		pm := power.Estimate(nl, power.Options{})
		cands := transform.Generate(nl, pm, transform.Config{AllowInverted: true})
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", name)
		}
		oneShot := atpg.NewChecker(nl)
		inc := atpg.NewIncrementalChecker(nl)
		inc.Sig = atpg.NewSigCache()
		for _, s := range cands {
			var want atpg.Verdict
			var got atpg.Verdict
			var support []netlist.NodeID
			if s.IsBranchSub() {
				want = oneShot.CheckBranch(s.G, s.Pin, s.Src)
				got, support = inc.CheckBranch(s.G, s.Pin, s.Src)
			} else {
				want = oneShot.CheckStem(s.A, s.Src)
				got, support = inc.CheckStem(s.A, s.Src)
			}
			if want == atpg.Aborted || got == atpg.Aborted {
				continue
			}
			if want != got {
				t.Fatalf("%s: %v: one-shot %v, incremental %v", name, s, want, got)
			}
			if got == atpg.Permissible {
				inSupport := make(map[netlist.NodeID]bool, len(support))
				for _, id := range support {
					inSupport[id] = true
				}
				if !inSupport[s.Src.B] {
					t.Fatalf("%s: %v: support %v misses source %d", name, s, support, s.Src.B)
				}
				if !inSupport[s.A] {
					t.Fatalf("%s: %v: support misses substituted signal %d", name, s, s.A)
				}
			}
		}
	}
}

// TestSigCacheShortCircuit: re-checking a refuted candidate hits the
// cache without touching the solver.
func TestSigCacheShortCircuit(t *testing.T) {
	nl := compileBenchmark(t, "comp")
	pm := power.Estimate(nl, power.Options{})
	cands := transform.Generate(nl, pm, transform.Config{AllowInverted: true})
	inc := atpg.NewIncrementalChecker(nl)
	inc.Sig = atpg.NewSigCache()

	var refuted *transform.Substitution
	for _, s := range cands {
		v, _ := checkSub(inc, s)
		if v == atpg.NotPermissible {
			refuted = s
			break
		}
	}
	if refuted == nil {
		t.Skip("no refuted candidate on comp")
	}
	c0 := inc.Stats.Conflicts
	d0 := inc.Stats.Decisions
	if v, _ := checkSub(inc, refuted); v != atpg.NotPermissible {
		t.Fatalf("recheck verdict %v", v)
	}
	if inc.Stats.Conflicts != c0 || inc.Stats.Decisions != d0 {
		t.Fatal("cache hit still ran the solver")
	}
	hits, _, entries := inc.Sig.Stats()
	if hits == 0 || entries == 0 {
		t.Fatalf("hits=%d entries=%d", hits, entries)
	}

	// A second checker over a clone (same IDs, same topology) shares the
	// cache, mirroring the per-worker replicas of a parallel run.
	clone := nl.Clone()
	inc2 := atpg.NewIncrementalChecker(clone)
	inc2.Sig = inc.Sig
	if v, _ := checkSub(inc2, refuted); v != atpg.NotPermissible {
		t.Fatal("clone checker missed the shared cache verdict")
	}
	if inc2.Stats.Conflicts != 0 {
		t.Fatal("clone checker solved despite the cache")
	}
}

func checkSub(c *atpg.IncrementalChecker, s *transform.Substitution) (atpg.Verdict, []netlist.NodeID) {
	if s.IsBranchSub() {
		return c.CheckBranch(s.G, s.Pin, s.Src)
	}
	return c.CheckStem(s.A, s.Src)
}

// TestIncrementalVersionGuard: mutating the netlist under an incremental
// checker panics instead of silently proving against stale clauses.
func TestIncrementalVersionGuard(t *testing.T) {
	nl := compileBenchmark(t, "comp")
	pm := power.Estimate(nl, power.Options{})
	cands := transform.Generate(nl, pm, transform.Config{})
	if len(cands) == 0 {
		t.Skip("no candidates")
	}
	inc := atpg.NewIncrementalChecker(nl)
	if _, err := transform.ApplySafe(nl, pickApplicable(t, nl, cands)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("check on a mutated netlist did not panic")
		}
	}()
	checkSub(inc, cands[0])
}

func pickApplicable(t *testing.T, nl *netlist.Netlist, cands []*transform.Substitution) *transform.Substitution {
	t.Helper()
	ck := atpg.NewChecker(nl)
	for _, s := range cands {
		var v atpg.Verdict
		if s.IsBranchSub() {
			v = ck.CheckBranch(s.G, s.Pin, s.Src)
		} else {
			v = ck.CheckStem(s.A, s.Src)
		}
		if v == atpg.Permissible {
			return s
		}
	}
	t.Skip("no permissible candidate")
	return nil
}

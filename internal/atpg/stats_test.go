package atpg

import "testing"

func TestCheckStatsString(t *testing.T) {
	st := CheckStats{Checks: 10, Permissible: 6, Refuted: 3, Aborted: 1}
	want := "checks=10 permissible=6 refuted=3 aborted=1"
	if got := st.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	// Solver-effort fields are appended only when populated, so the
	// pre-existing format stays stable for effort-free stats.
	st.Conflicts, st.Decisions = 42, 137
	want += " conflicts=42 decisions=137"
	if got := st.String(); got != want {
		t.Errorf("String() with effort = %q, want %q", got, want)
	}

	var zero CheckStats
	if got := zero.String(); got != "checks=0 permissible=0 refuted=0 aborted=0" {
		t.Errorf("zero String() = %q", got)
	}
}

package atpg

import (
	"powder/internal/netlist"
	"powder/internal/sim"
)

// FaultSim is a parallel-pattern single-fault simulator: it reuses the
// simulator's sample vectors and reports, per fault, whether any vector
// detects it (a primary output differs between the good and faulty
// circuit).
type FaultSim struct {
	s *sim.Simulator
}

// NewFaultSim wraps an already-run simulator.
func NewFaultSim(s *sim.Simulator) *FaultSim { return &FaultSim{s: s} }

// Detects reports whether any of the simulator's sample vectors detects
// the fault, and returns the per-word detection mask.
func (fs *FaultSim) Detects(f Fault) (bool, []uint64) {
	s := fs.s
	words := s.Words()
	forced := make([]uint64, words)
	if f.StuckAt1 {
		for w := range forced {
			forced[w] = ^uint64(0)
		}
	}
	var ov *sim.Overlay
	if f.IsBranch() {
		alt := make([]uint64, words)
		s.GateValueWithPin(f.BranchGate, f.BranchPin, forced, alt)
		ov = s.Hypothetical(f.BranchGate, alt)
	} else {
		ov = s.Hypothetical(f.Stem, forced)
	}
	mask := make([]uint64, words)
	copy(mask, ov.PODiff)
	return ov.AnyPODiff(), mask
}

// Coverage runs the fault list through the simulator and returns the
// detected count and the undetected faults.
func (fs *FaultSim) Coverage(faults []Fault) (detected int, undetected []Fault) {
	for _, f := range faults {
		hit, _ := fs.Detects(f)
		if hit {
			detected++
		} else {
			undetected = append(undetected, f)
		}
	}
	return detected, undetected
}

// RedundantFaults combines fault simulation with PODEM: faults undetected
// by the sample vectors are handed to the test generator, and those proven
// untestable are returned. Untestable stuck-at faults indicate redundant
// circuitry, the classic ATPG-based optimization hook the paper's
// transformations build on.
func RedundantFaults(nl *netlist.Netlist, s *sim.Simulator, limit int) []Fault {
	fs := NewFaultSim(s)
	_, undetected := fs.Coverage(AllFaults(nl))
	var redundant []Fault
	for _, f := range undetected {
		if _, outcome := GenerateTest(nl, f, limit); outcome == Untestable {
			redundant = append(redundant, f)
		}
	}
	return redundant
}

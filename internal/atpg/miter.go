package atpg

import (
	"powder/internal/netlist"
	"powder/internal/sat"
)

// miterPlan is the structural analysis of one substitution miter, shared
// by the one-shot and the incremental checker: which branches are
// rewired, which primary outputs that touches directly, and which gates
// must be duplicated because their function can change.
type miterPlan struct {
	src        Source
	changedPin map[netlist.Branch]bool
	changedPOs []int
	roots      []netlist.NodeID
	dup        map[netlist.NodeID]bool
	dupTopo    []netlist.NodeID // dup members in topological order
	// cyclic marks a source inside the duplicated region: the rewired
	// circuit would have a combinational cycle, never permissible.
	cyclic bool
}

// planMiter analyzes the substitution of the changed branches by src.
func planMiter(nl *netlist.Netlist, changed []netlist.Branch, src Source) *miterPlan {
	p := &miterPlan{
		src:        src,
		changedPin: make(map[netlist.Branch]bool, len(changed)),
	}
	for _, b := range changed {
		if b.IsPO() {
			p.changedPOs = append(p.changedPOs, b.Pin)
			continue
		}
		p.changedPin[b] = true
		p.roots = append(p.roots, b.Gate)
	}

	// Gates whose function can change: the rewired gates plus their TFO.
	p.dup = make(map[netlist.NodeID]bool)
	for _, r := range p.roots {
		p.dup[r] = true
		for id := range nl.TFO(r) {
			p.dup[id] = true
		}
	}
	if p.dup[src.B] || (src.IsThree() && p.dup[src.C]) {
		p.cyclic = true
		return p
	}
	for _, id := range nl.TopoOrder() {
		if p.dup[id] {
			p.dupTopo = append(p.dupTopo, id)
		}
	}
	return p
}

// buildMiter encodes the miter. Base-cone clauses flow through b (whose
// adder may be the permanent layer of an incremental solver, shared
// across proofs); the candidate-specific parts — source materialization,
// the duplicated region, and the XOR taps — flow through scoped. The
// returned literals assert "some primary output differs"; an empty slice
// means no output observes the change (trivially permissible).
func buildMiter(nl *netlist.Netlist, b *cnfBuilder, scoped sat.ClauseAdder, p *miterPlan) []sat.Lit {
	// Source variable.
	srcVar := b.nodeVar(p.src.B)
	if p.src.IsThree() {
		v := scoped.NewVar()
		encodeCellClauses(scoped, p.src.effectiveTT(), []int{b.nodeVar(p.src.B), b.nodeVar(p.src.C)}, v)
		srcVar = v
	} else if p.src.InvertB {
		v := scoped.NewVar()
		scoped.AddClause(sat.Pos(v), sat.Pos(srcVar))
		scoped.AddClause(sat.Neg(v), sat.Neg(srcVar))
		srcVar = v
	}

	// Duplicate the affected region in topological order.
	dupVar := make(map[netlist.NodeID]int, len(p.dup))
	for _, id := range p.dupTopo {
		n := nl.Node(id)
		ins := make([]int, len(n.Fanins()))
		for pin, f := range n.Fanins() {
			switch {
			case p.changedPin[netlist.Branch{Gate: id, Pin: pin}]:
				ins[pin] = srcVar
			case p.dup[f]:
				ins[pin] = dupVar[f]
			default:
				ins[pin] = b.nodeVar(f)
			}
		}
		v := scoped.NewVar()
		encodeCellClauses(scoped, n.Cell().TT, ins, v)
		dupVar[id] = v
	}

	// Miter taps: some primary output differs.
	var diffs []sat.Lit
	seenPO := make(map[int]bool)
	for _, poIdx := range p.changedPOs {
		seenPO[poIdx] = true
		d := nl.Outputs()[poIdx].Driver
		diffs = append(diffs, sat.Pos(xorVar(scoped, b.nodeVar(d), srcVar)))
	}
	for poIdx, po := range nl.Outputs() {
		if seenPO[poIdx] || !p.dup[po.Driver] {
			continue
		}
		diffs = append(diffs, sat.Pos(xorVar(scoped, b.nodeVar(po.Driver), dupVar[po.Driver])))
	}
	return diffs
}

// support returns every node the miter's verdict depends on: the
// duplicated region plus the transitive fanin closure of the source, of
// the duplicated region's external fanins, and of the changed primary
// outputs' drivers. As long as none of these nodes is touched by a
// concurrent edit, the miter built on a pre-edit snapshot is isomorphic
// to the one the post-edit netlist would produce, so the verdict carries
// over; this is the conflict-detection set of the parallel engine.
func (p *miterPlan) support(nl *netlist.Netlist) []netlist.NodeID {
	if p.cyclic {
		return nil
	}
	in := make(map[netlist.NodeID]bool, 2*len(p.dup))
	var stack []netlist.NodeID
	push := func(id netlist.NodeID) {
		if !in[id] {
			in[id] = true
			stack = append(stack, id)
		}
	}
	push(p.src.B)
	if p.src.IsThree() {
		push(p.src.C)
	}
	for _, poIdx := range p.changedPOs {
		push(nl.Outputs()[poIdx].Driver)
	}
	for _, id := range p.dupTopo {
		push(id)
		for _, f := range nl.Node(id).Fanins() {
			push(f)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range nl.Node(id).Fanins() {
			push(f)
		}
	}
	out := make([]netlist.NodeID, 0, len(in))
	for id := range in {
		out = append(out, id)
	}
	return out
}

package atpg

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"powder/internal/netlist"
)

// SigCache remembers the structural signatures of refuted miters so a
// re-harvested duplicate of a refuted candidate is rejected without a SAT
// solve. Two miters with equal signatures are isomorphic formulas (same
// cone functions, same rewired pins, same observing outputs), so a cached
// refutation transfers even across netlist versions and across the
// per-worker replicas of a parallel run. Only refutations are cached:
// a permissible verdict is always re-proved on the netlist it will be
// applied to. Safe for concurrent use.
type SigCache struct {
	mu      sync.Mutex
	refuted map[[32]byte]struct{}
	hits    int64
	misses  int64
}

// NewSigCache returns an empty cache.
func NewSigCache() *SigCache {
	return &SigCache{refuted: make(map[[32]byte]struct{})}
}

// Refuted reports whether a miter with this signature was refuted before.
func (c *SigCache) Refuted(key [32]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.refuted[key]; ok {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// StoreRefuted records a refuted miter signature.
func (c *SigCache) StoreRefuted(key [32]byte) {
	c.mu.Lock()
	c.refuted[key] = struct{}{}
	c.mu.Unlock()
}

// Stats returns the lookup counts and the number of cached refutations.
func (c *SigCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.refuted)
}

// nodeSigs lazily maintains per-node structural signatures for one
// netlist snapshot, recomputed whenever the netlist version moves. A
// node's signature digests its cell function and its fanins' signatures
// (inputs digest their position), so it identifies the function and shape
// of the node's fanin cone independent of node IDs and names — the same
// bottom-up idiom as netlist.StructuralHash, kept numeric for reuse
// inside miter keys.
type nodeSigs struct {
	version int64
	valid   bool
	sig     [][32]byte
	inputAt map[netlist.NodeID]int
}

func (ns *nodeSigs) refresh(nl *netlist.Netlist) {
	if ns.valid && ns.version == nl.Version() {
		return
	}
	n := nl.NumNodes()
	if cap(ns.sig) < n {
		ns.sig = make([][32]byte, n)
	}
	ns.sig = ns.sig[:n]
	ns.inputAt = make(map[netlist.NodeID]int, len(nl.Inputs()))
	for i, in := range nl.Inputs() {
		ns.inputAt[in] = i
	}
	h := sha256.New()
	var buf [8]byte
	for _, id := range nl.TopoOrder() {
		node := nl.Node(id)
		h.Reset()
		if node.Kind() == netlist.KindInput {
			h.Write([]byte("in"))
			binary.LittleEndian.PutUint64(buf[:], uint64(ns.inputAt[id]))
			h.Write(buf[:])
		} else {
			h.Write([]byte("gate"))
			binary.LittleEndian.PutUint64(buf[:], uint64(node.Cell().TT.N))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], node.Cell().TT.Bits)
			h.Write(buf[:])
			for _, f := range node.Fanins() {
				h.Write(ns.sig[f][:])
			}
		}
		h.Sum(ns.sig[id][:0])
	}
	ns.version = nl.Version()
	ns.valid = true
}

// miterKey digests everything buildMiter encodes: the source function,
// the duplicated region's cells with per-pin routing (rewired pin, intra-
// region edge, or base-cone signature), and the observing outputs. Equal
// keys mean isomorphic miters and hence equal verdicts.
func (p *miterPlan) miterKey(nl *netlist.Netlist, ns *nodeSigs) [32]byte {
	ns.refresh(nl)
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}

	h.Write([]byte("src"))
	h.Write(ns.sig[p.src.B][:])
	if p.src.InvertB {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	if p.src.IsThree() {
		h.Write(ns.sig[p.src.C][:])
		if p.src.InvertC {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		writeInt(uint64(p.src.Gate.N))
		writeInt(p.src.Gate.Bits)
	}

	// Duplicated region in topological order; dup-internal fanins are
	// referenced by their position in that order, so the key is invariant
	// under node renumbering.
	dupAt := make(map[netlist.NodeID]int, len(p.dupTopo))
	for i, id := range p.dupTopo {
		dupAt[id] = i
	}
	h.Write([]byte("dup"))
	writeInt(uint64(len(p.dupTopo)))
	for _, id := range p.dupTopo {
		node := nl.Node(id)
		writeInt(uint64(node.Cell().TT.N))
		writeInt(node.Cell().TT.Bits)
		for pin, f := range node.Fanins() {
			switch {
			case p.changedPin[netlist.Branch{Gate: id, Pin: pin}]:
				// The base copy keeps reading the substituted signal, so
				// the original driver's function is part of the miter.
				h.Write([]byte{'S'})
				h.Write(ns.sig[f][:])
			case p.dup[f]:
				h.Write([]byte{'D'})
				writeInt(uint64(dupAt[f]))
			default:
				h.Write([]byte{'B'})
				h.Write(ns.sig[f][:])
			}
		}
	}

	// Observing outputs: directly rewired POs by driver signature, then
	// the POs the duplicated region drives by dup position. PO identity
	// beyond the compared functions does not matter to the verdict.
	h.Write([]byte("po"))
	seenPO := make(map[int]bool, len(p.changedPOs))
	for _, poIdx := range p.changedPOs {
		seenPO[poIdx] = true
		h.Write([]byte{'X'})
		h.Write(ns.sig[nl.Outputs()[poIdx].Driver][:])
	}
	for poIdx, po := range nl.Outputs() {
		if seenPO[poIdx] || !p.dup[po.Driver] {
			continue
		}
		h.Write([]byte{'O'})
		writeInt(uint64(dupAt[po.Driver]))
	}

	var key [32]byte
	h.Sum(key[:0])
	return key
}

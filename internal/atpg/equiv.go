package atpg

import (
	"context"
	"fmt"

	"powder/internal/netlist"
	"powder/internal/sat"
)

// EquivResult is the outcome of a combinational equivalence check.
type EquivResult struct {
	Verdict Verdict
	// Counterexample holds a distinguishing input assignment (by the
	// input names of the first circuit) when Verdict is NotPermissible.
	Counterexample map[string]bool
	// DifferingOutput names the first output observed to differ.
	DifferingOutput string
}

// Equivalent builds the miter of two netlists and decides combinational
// equivalence with the same budgeted CDCL engine the substitution checker
// uses. Inputs and outputs are matched by name; both circuits must expose
// identical port sets. budget <= 0 uses a generous default.
func Equivalent(x, y *netlist.Netlist, budget int64) (*EquivResult, error) {
	return EquivalentCtx(context.Background(), x, y, budget)
}

// EquivalentCtx is Equivalent under a cancellation context: the SAT
// search polls ctx and a cancelled context yields an Aborted verdict
// promptly instead of running the proof to completion.
func EquivalentCtx(ctx context.Context, x, y *netlist.Netlist, budget int64) (*EquivResult, error) {
	// Port matching.
	yIn := make(map[string]netlist.NodeID)
	for _, id := range y.Inputs() {
		if !y.Node(id).Dead() {
			yIn[y.Node(id).Name()] = id
		}
	}
	var pairsIn [][2]netlist.NodeID
	for _, id := range x.Inputs() {
		if x.Node(id).Dead() {
			continue
		}
		name := x.Node(id).Name()
		yid, ok := yIn[name]
		if !ok {
			// An input missing on one side is fine only if the other side
			// ignores it; treat it as a free variable there.
			continue
		}
		pairsIn = append(pairsIn, [2]netlist.NodeID{id, yid})
		delete(yIn, name)
	}

	yOut := make(map[string]netlist.NodeID)
	for _, po := range y.Outputs() {
		yOut[po.Name] = po.Driver
	}
	type outPair struct {
		name string
		x, y netlist.NodeID
	}
	var pairsOut []outPair
	for _, po := range x.Outputs() {
		yd, ok := yOut[po.Name]
		if !ok {
			return nil, fmt.Errorf("atpg: output %q missing in %s", po.Name, y.Name)
		}
		pairsOut = append(pairsOut, outPair{name: po.Name, x: po.Driver, y: yd})
	}
	if len(pairsOut) != len(y.Outputs()) {
		return nil, fmt.Errorf("atpg: output sets differ (%d vs %d)", len(pairsOut), len(y.Outputs()))
	}

	s := sat.New()
	if budget <= 0 {
		budget = 500000
	}
	s.SetBudget(budget)
	s.SetContext(ctx)
	bx := newCNFBuilder(x, s)
	by := newCNFBuilder(y, s)

	// Tie the matched inputs together.
	for _, p := range pairsIn {
		vx, vy := bx.nodeVar(p[0]), by.nodeVar(p[1])
		s.AddClause(sat.Neg(vx), sat.Pos(vy))
		s.AddClause(sat.Pos(vx), sat.Neg(vy))
	}

	// Miter the outputs.
	var diffs []sat.Lit
	diffVarToName := make(map[int]string)
	for _, p := range pairsOut {
		d := xorVar(s, bx.nodeVar(p.x), by.nodeVar(p.y))
		diffVarToName[d] = p.name
		diffs = append(diffs, sat.Pos(d))
	}
	if !s.AddClause(diffs...) {
		return &EquivResult{Verdict: Permissible}, nil
	}

	switch s.Solve() {
	case sat.Unsat:
		return &EquivResult{Verdict: Permissible}, nil
	case sat.Sat:
		res := &EquivResult{Verdict: NotPermissible, Counterexample: make(map[string]bool)}
		for _, id := range x.Inputs() {
			if x.Node(id).Dead() {
				continue
			}
			if v := bx.varOf[id]; v >= 0 {
				res.Counterexample[x.Node(id).Name()] = s.Value(v)
			}
		}
		for d, name := range diffVarToName {
			if s.Value(d) {
				res.DifferingOutput = name
				break
			}
		}
		return res, nil
	default:
		return &EquivResult{Verdict: Aborted}, nil
	}
}

package atpg

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sim"
)

// fig2 builds the paper's Figure 2 circuit A: e=a*b, d=a^c, f=d*b with
// outputs f and e.
func fig2(t testing.TB) (*netlist.Netlist, map[string]netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("fig2", lib)
	ids := make(map[string]netlist.NodeID)
	for _, in := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(in)
		if err != nil {
			t.Fatal(err)
		}
		ids[in] = id
	}
	mk := func(name, cell string, fanins ...netlist.NodeID) {
		id, err := nl.AddGate(name, lib.Cell(cell), fanins)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	mk("e", "and2", ids["a"], ids["b"])
	mk("d", "xor2", ids["a"], ids["c"])
	mk("f", "and2", ids["d"], ids["b"])
	if err := nl.AddOutput("f", ids["f"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", ids["e"]); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func plainSource(b netlist.NodeID) Source {
	return Source{B: b, C: netlist.InvalidNode}
}

func TestPaperFigure2Substitution(t *testing.T) {
	nl, ids := fig2(t)
	c := NewChecker(nl)
	// The paper's move: branch a->d (pin 0 of xor d) replaced by e = a*b.
	// Permissible because the difference (a=1,b=0 vs ...) is unobservable.
	if got := c.CheckBranch(ids["d"], 0, plainSource(ids["e"])); got != Permissible {
		t.Errorf("figure 2 substitution = %v, want permissible", got)
	}
	// Replacing the same branch by b changes f: not permissible.
	if got := c.CheckBranch(ids["d"], 0, plainSource(ids["b"])); got != NotPermissible {
		t.Errorf("branch <- b = %v, want not-permissible", got)
	}
	if cex := c.Counterexample(); cex == nil {
		t.Errorf("refutation should come with a counterexample")
	}
	// Substituting the stem d itself by e changes output f (f would become
	// (a*b)*b = a*b instead of (a^c)*b): not permissible. Only the branch
	// a->d rewiring above is the paper's permissible move.
	if got := c.CheckStem(ids["d"], plainSource(ids["e"])); got != NotPermissible {
		t.Errorf("stem d <- e = %v, want not-permissible", got)
	}
	// Substituting stem e (drives PO) by d: not permissible.
	if got := c.CheckStem(ids["e"], plainSource(ids["d"])); got != NotPermissible {
		t.Errorf("stem e <- d = %v, want not-permissible", got)
	}
}

func TestInvertedSource(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("inv", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	na, err := nl.AddGate("na", lib.Cell("inv"), []netlist.NodeID{a})
	if err != nil {
		t.Fatal(err)
	}
	// y = !a * b; z = !(!a) = a buffer-ish chain for a second output.
	y, _ := nl.AddGate("y", lib.Cell("and2"), []netlist.NodeID{na, b})
	z, _ := nl.AddGate("z", lib.Cell("inv"), []netlist.NodeID{na})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("z", z); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(nl)
	// Pin 0 of y currently reads na = !a; the inverted source !a (B=a,
	// InvertB) is identical, hence permissible.
	if got := c.CheckBranch(y, 0, Source{B: a, InvertB: true, C: netlist.InvalidNode}); got != Permissible {
		t.Errorf("inverted-source identity = %v, want permissible", got)
	}
	// Non-inverted a would change y: not permissible.
	if got := c.CheckBranch(y, 0, plainSource(a)); got != NotPermissible {
		t.Errorf("plain a = %v, want not-permissible", got)
	}
}

func TestThreeSignalSource(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("os3", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	cIn, _ := nl.AddInput("c")
	// g = a*b; y = g*c. Substituting stem g by AND(a,b) (a fresh identical
	// gate) is permissible; by OR(a,b) it is not.
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("and2"), []netlist.NodeID{g, cIn})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(nl)
	andTT := logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	orTT := logic.TTFromExpr(logic.Or(logic.Var(0), logic.Var(1)), 2)
	if got := c.CheckStem(g, Source{B: a, C: b, Gate: andTT}); got != Permissible {
		t.Errorf("OS3 with AND = %v, want permissible", got)
	}
	if got := c.CheckStem(g, Source{B: a, C: b, Gate: orTT}); got != NotPermissible {
		t.Errorf("OS3 with OR = %v, want not-permissible", got)
	}
	// NAND with inverted inputs == OR; check invert folding:
	// !( !a * !b ) = a+b, still not permissible.
	nandTT := logic.TTFromExpr(logic.Not(logic.And(logic.Var(0), logic.Var(1))), 2)
	if got := c.CheckStem(g, Source{B: a, InvertB: true, C: b, InvertC: true, Gate: nandTT}); got != NotPermissible {
		t.Errorf("OS3 with !(!a*!b) = %v, want not-permissible", got)
	}
	// !( a NAND b ) with plain inputs is AND: permissible. Fold the output
	// inversion by using the AND table directly (transform materializes
	// this as a cell choice).
}

func TestSourceInsideTFORejected(t *testing.T) {
	nl, ids := fig2(t)
	c := NewChecker(nl)
	// f is in TFO(d): rewiring d's pin to f would be a cycle.
	if got := c.CheckBranch(ids["d"], 0, plainSource(ids["f"])); got != NotPermissible {
		t.Errorf("cycle-creating source = %v, want not-permissible", got)
	}
}

// applySub applies a plain 2-signal substitution to a clone for the
// brute-force cross-check.
func applyStemSub(t *testing.T, nl *netlist.Netlist, a, b netlist.NodeID) *netlist.Netlist {
	t.Helper()
	cp := nl.Clone()
	branches := append([]netlist.Branch(nil), cp.Node(a).Fanouts()...)
	for _, br := range branches {
		if br.IsPO() {
			if err := cp.RedirectOutput(br.Pin, b); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := cp.ReplaceFanin(br.Gate, br.Pin, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	cp.SweepDead()
	return cp
}

// exhaustiveEqual checks functional equality of two netlists with the same
// inputs/outputs via exhaustive simulation.
func exhaustiveEqual(t *testing.T, x, y *netlist.Netlist) bool {
	t.Helper()
	n := len(x.Inputs())
	words := (1<<uint(n) + 63) / 64
	sx, sy := sim.New(x, words), sim.New(y, words)
	if err := sx.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	if err := sy.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	sx.Run()
	sy.Run()
	for i := range x.Outputs() {
		vx := sx.Value(x.Outputs()[i].Driver)
		vy := sy.Value(y.Outputs()[i].Driver)
		for w := range vx {
			if (vx[w]^vy[w])&sx.ValidMask(w) != 0 {
				return false
			}
		}
	}
	return true
}

// randomNetlist builds a random mapped circuit over nIn inputs and nGates
// gates using 1- and 2-input cells.
func randomNetlist(t testing.TB, rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("rand", lib)
	var pool []netlist.NodeID
	for i := 0; i < nIn; i++ {
		id, err := nl.AddInput(logic.VarName(i))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "xnor2", "aoi21", "oai21"}
	for i := 0; i < nGates; i++ {
		cell := nl.Lib.Cell(cells[rng.Intn(len(cells))])
		fanins := make([]netlist.NodeID, cell.NumPins())
		for p := range fanins {
			fanins[p] = pool[rng.Intn(len(pool))]
		}
		id, err := nl.AddGate("", cell, fanins)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	// Outputs: the last few gates.
	nOut := 2 + rng.Intn(2)
	for i := 0; i < nOut; i++ {
		d := pool[len(pool)-1-i]
		if err := nl.AddOutput(logic.VarName(20+i), d); err != nil {
			t.Fatal(err)
		}
	}
	return nl
}

func TestCheckerAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials, checked := 0, 0
	for trials < 40 {
		trials++
		nl := randomNetlist(t, rng, 5, 12)
		if err := nl.Validate(); err != nil {
			t.Fatal(err)
		}
		c := NewChecker(nl)
		// Pick random stem substitution candidates a <- b.
		for k := 0; k < 8; k++ {
			a := netlist.NodeID(rng.Intn(nl.NumNodes()))
			b := netlist.NodeID(rng.Intn(nl.NumNodes()))
			na, nb := nl.Node(a), nl.Node(b)
			if na.Dead() || nb.Dead() || a == b || na.Kind() != netlist.KindGate {
				continue
			}
			if nl.TFO(a)[b] {
				continue // would create a cycle; transform never proposes it
			}
			got := c.CheckStem(a, plainSource(b))
			if got == Aborted {
				t.Fatalf("unexpected abort on tiny circuit")
			}
			cp := applyStemSub(t, nl, a, b)
			want := NotPermissible
			if exhaustiveEqual(t, nl, cp) {
				want = Permissible
			}
			if got != want {
				t.Fatalf("checker=%v brute=%v for stem %d <- %d", got, want, a, b)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("too few cross-checks exercised: %d", checked)
	}
}

func TestPodemSimpleAnd(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("and", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	y, _ := nl.AddGate("y", lib.Cell("and2"), []netlist.NodeID{a, b})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	vec, outcome := GenerateTest(nl, StemFault(y, false), 0)
	if outcome != TestFound {
		t.Fatalf("y s-a-0: %v, want test", outcome)
	}
	if !vec[0] || !vec[1] {
		t.Errorf("y s-a-0 test must set a=b=1, got %v", vec)
	}
	vec, outcome = GenerateTest(nl, StemFault(a, true), 0)
	if outcome != TestFound {
		t.Fatalf("a s-a-1: %v, want test", outcome)
	}
	if vec[0] || !vec[1] {
		t.Errorf("a s-a-1 test must set a=0 b=1, got %v", vec)
	}
}

func TestPodemRedundantFault(t *testing.T) {
	// y = a OR (a AND b): the AND gate is redundant (y == a).
	lib := cellib.Lib2()
	nl := netlist.New("red", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("or2"), []netlist.NodeID{a, g})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	if _, outcome := GenerateTest(nl, StemFault(g, false), 0); outcome != Untestable {
		t.Errorf("g s-a-0 should be untestable (redundant), got %v", outcome)
	}
	// b s-a-0 likewise unobservable.
	if _, outcome := GenerateTest(nl, StemFault(b, false), 0); outcome != Untestable {
		t.Errorf("b s-a-0 should be untestable, got %v", outcome)
	}
	// a s-a-0 is clearly testable.
	if _, outcome := GenerateTest(nl, StemFault(a, false), 0); outcome != TestFound {
		t.Errorf("a s-a-0 should be testable, got %v", outcome)
	}
}

func TestPodemAgainstExhaustiveFaultSim(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		nl := randomNetlist(t, rng, 5, 10)
		s := sim.New(nl, 1) // 64 >= 2^5 vectors
		if err := s.SetInputsExhaustive(); err != nil {
			t.Fatal(err)
		}
		s.Run()
		fs := NewFaultSim(s)
		for _, f := range AllFaults(nl) {
			wantDetectable, _ := fs.Detects(f) // exhaustive = ground truth
			vec, outcome := GenerateTest(nl, f, 0)
			switch outcome {
			case TestFound:
				if !wantDetectable {
					t.Fatalf("trial %d fault %v: PODEM found a test but fault is undetectable", trial, f)
				}
				if !vectorDetects(t, nl, f, vec) {
					t.Fatalf("trial %d fault %v: returned vector %v does not detect", trial, f, vec)
				}
			case Untestable:
				if wantDetectable {
					t.Fatalf("trial %d fault %v: PODEM claims untestable but a test exists", trial, f)
				}
			case TestAborted:
				t.Fatalf("trial %d fault %v: unexpected abort on tiny circuit", trial, f)
			}
		}
	}
}

// vectorDetects simulates a single vector and checks the fault flips a PO.
func vectorDetects(t *testing.T, nl *netlist.Netlist, f Fault, vec []bool) bool {
	t.Helper()
	s := sim.New(nl, 1)
	for i, in := range nl.Inputs() {
		w := uint64(0)
		if vec[i] {
			w = 1
		}
		s.SetInputWord(in, 0, w)
	}
	s.Run()
	fs := NewFaultSim(s)
	hit, mask := fs.Detects(f)
	return hit && mask[0]&1 == 1
}

func TestFaultSimCoverage(t *testing.T) {
	nl, _ := fig2(t)
	s := sim.New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	fs := NewFaultSim(s)
	faults := AllFaults(nl)
	detected, undetected := fs.Coverage(faults)
	if detected+len(undetected) != len(faults) {
		t.Fatalf("coverage accounting broken")
	}
	if detected == 0 {
		t.Fatalf("exhaustive vectors must detect something")
	}
}

func TestRedundantFaultsFinder(t *testing.T) {
	// Same redundant circuit as above: y = a + a*b.
	lib := cellib.Lib2()
	nl := netlist.New("red", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("or2"), []netlist.NodeID{a, g})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	red := RedundantFaults(nl, s, 0)
	if len(red) == 0 {
		t.Fatalf("redundant circuit must yield redundant faults")
	}
	for _, f := range red {
		if f.Stem == a && !f.IsBranch() {
			t.Errorf("stem a cannot be redundant: %v", f)
		}
	}
}

func TestEval3(t *testing.T) {
	and := logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	if eval3(and, []tri{t0, tX}) != t0 {
		t.Errorf("0 AND X must be 0")
	}
	if eval3(and, []tri{t1, tX}) != tX {
		t.Errorf("1 AND X must be X")
	}
	if eval3(and, []tri{t1, t1}) != t1 {
		t.Errorf("1 AND 1 must be 1")
	}
	xor := logic.TTFromExpr(logic.Xor(logic.Var(0), logic.Var(1)), 2)
	if eval3(xor, []tri{t1, tX}) != tX {
		t.Errorf("1 XOR X must be X")
	}
}

func TestCheckerStats(t *testing.T) {
	nl, ids := fig2(t)
	c := NewChecker(nl)
	c.CheckBranch(ids["d"], 0, plainSource(ids["e"]))
	c.CheckBranch(ids["d"], 0, plainSource(ids["b"]))
	if c.Stats.Checks != 2 || c.Stats.Permissible != 1 || c.Stats.Refuted != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.String() == "" {
		t.Errorf("stats should render")
	}
}

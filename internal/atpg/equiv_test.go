package atpg

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

func TestEquivalentIdentical(t *testing.T) {
	nl, _ := fig2(t)
	res, err := Equivalent(nl, nl.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Permissible {
		t.Errorf("identical circuits must be equivalent, got %v", res.Verdict)
	}
}

func TestEquivalentAfterPermissibleRewire(t *testing.T) {
	nl, ids := fig2(t)
	cp := nl.Clone()
	// The paper's Figure 2 move preserves the functions.
	if err := cp.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	res, err := Equivalent(nl, cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Permissible {
		t.Errorf("figure-2 rewire must verify equivalent, got %v", res.Verdict)
	}
}

func TestEquivalentDetectsChange(t *testing.T) {
	nl, ids := fig2(t)
	cp := nl.Clone()
	// Break it: f's pin 1 reads c instead of b.
	if err := cp.ReplaceFanin(ids["f"], 1, ids["c"]); err != nil {
		t.Fatal(err)
	}
	res, err := Equivalent(nl, cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotPermissible {
		t.Fatalf("broken circuit must be caught, got %v", res.Verdict)
	}
	if res.DifferingOutput != "f" {
		t.Errorf("differing output = %q, want f", res.DifferingOutput)
	}
	if len(res.Counterexample) == 0 {
		t.Errorf("counterexample missing")
	}
	// The counterexample must actually distinguish: evaluate both circuits.
	if !cexDistinguishes(t, nl, cp, res.Counterexample) {
		t.Errorf("counterexample does not distinguish the circuits")
	}
}

func cexDistinguishes(t *testing.T, x, y *netlist.Netlist, cex map[string]bool) bool {
	t.Helper()
	evalAll := func(nl *netlist.Netlist) map[string]bool {
		val := make(map[netlist.NodeID]bool)
		for _, id := range nl.TopoOrder() {
			n := nl.Node(id)
			if n.Kind() == netlist.KindInput {
				val[id] = cex[n.Name()]
				continue
			}
			var m uint
			for pin, f := range n.Fanins() {
				if val[f] {
					m |= 1 << uint(pin)
				}
			}
			val[id] = n.Cell().TT.Eval(m)
		}
		out := make(map[string]bool)
		for _, po := range nl.Outputs() {
			out[po.Name] = val[po.Driver]
		}
		return out
	}
	ox, oy := evalAll(x), evalAll(y)
	for name, v := range ox {
		if oy[name] != v {
			return true
		}
	}
	return false
}

func TestEquivalentPortMismatch(t *testing.T) {
	nl, _ := fig2(t)
	lib := cellib.Lib2()
	other := netlist.New("other", lib)
	a, _ := other.AddInput("a")
	g, _ := other.AddGate("g", lib.Cell("inv"), []netlist.NodeID{a})
	if err := other.AddOutput("weird", g); err != nil {
		t.Fatal(err)
	}
	if _, err := Equivalent(nl, other, 0); err == nil {
		t.Errorf("mismatched output ports must error")
	}
}

func TestEquivalentRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	agree := 0
	for trial := 0; trial < 25; trial++ {
		nl := randomNetlist(t, rng, 5, 12)
		cp := nl.Clone()
		// Random rewire (may or may not change the function).
		var gates []netlist.NodeID
		cp.LiveNodes(func(n *netlist.Node) {
			if n.Kind() == netlist.KindGate {
				gates = append(gates, n.ID())
			}
		})
		g := gates[rng.Intn(len(gates))]
		pin := rng.Intn(len(cp.Node(g).Fanins()))
		nd := netlist.NodeID(rng.Intn(cp.NumNodes()))
		if cp.Node(nd).Dead() || cp.TFO(g)[nd] || nd == g {
			continue
		}
		if err := cp.ReplaceFanin(g, pin, nd); err != nil {
			continue
		}
		res, err := Equivalent(nl, cp, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := Permissible
		if !exhaustiveEqual(t, nl, cp) {
			want = NotPermissible
		}
		if res.Verdict != want {
			t.Fatalf("trial %d: equiv=%v brute=%v", trial, res.Verdict, want)
		}
		agree++
	}
	if agree < 12 {
		t.Fatalf("too few equivalence cross-checks: %d", agree)
	}
}

// Package blif reads and writes technology-mapped circuits in a BLIF
// subset: .model/.inputs/.outputs/.gate/.end. Gates reference cells of a
// cellib.Library by name with explicit pin bindings, e.g.
//
//	.model fig2
//	.inputs a b c
//	.outputs f
//	.gate xor2 a=a b=c O=d
//	.gate and2 a=d b=b O=f
//	.end
//
// Gate output names name the stem signal; a signal listed in .outputs is
// attached as a primary output of the same name.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// Read parses a mapped BLIF model against the given library.
func Read(r io.Reader, lib *cellib.Library) (*netlist.Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var (
		modelName string
		modelLine int
		inputs    []string
		outputs   []string
		sawEnd    bool
	)
	// declAt maps every declared input/output signal name to its line, so
	// duplicate declarations report both locations.
	inputAt := make(map[string]int)
	outputAt := make(map[string]int)
	type gateLine struct {
		cell    *cellib.Cell
		output  string
		pinConn map[string]string // pin name -> signal name
		lineNo  int
	}
	var gates []gateLine

	lineNo := 0
	var pending string // for '\' continuations
	for !sawEnd && sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		line = pending + line
		pending = ""
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".model":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif line %d: .model needs a name", lineNo)
			}
			if modelName != "" {
				return nil, fmt.Errorf("blif line %d: duplicate .model (first on line %d); only a single model per file is supported",
					lineNo, modelLine)
			}
			modelName, modelLine = fields[1], lineNo
		case ".inputs":
			for _, in := range fields[1:] {
				if at, dup := inputAt[in]; dup {
					return nil, fmt.Errorf("blif line %d: duplicate input %q (first declared on line %d)", lineNo, in, at)
				}
				inputAt[in] = lineNo
				inputs = append(inputs, in)
			}
		case ".outputs":
			for _, out := range fields[1:] {
				if at, dup := outputAt[out]; dup {
					return nil, fmt.Errorf("blif line %d: duplicate output %q (first declared on line %d)", lineNo, out, at)
				}
				outputAt[out] = lineNo
				outputs = append(outputs, out)
			}
		case ".gate":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif line %d: malformed .gate", lineNo)
			}
			cell := lib.Cell(fields[1])
			if cell == nil {
				return nil, fmt.Errorf("blif line %d: unknown cell %q", lineNo, fields[1])
			}
			g := gateLine{cell: cell, pinConn: make(map[string]string), lineNo: lineNo}
			for _, kv := range fields[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					return nil, fmt.Errorf("blif line %d: bad connection %q", lineNo, kv)
				}
				formal, actual := kv[:eq], kv[eq+1:]
				if formal == cell.Output {
					if g.output != "" {
						return nil, fmt.Errorf("blif line %d: two outputs on one gate", lineNo)
					}
					g.output = actual
					continue
				}
				if cell.PinIndex(formal) < 0 {
					return nil, fmt.Errorf("blif line %d: cell %s has no pin %q", lineNo, cell.Name, formal)
				}
				if _, dup := g.pinConn[formal]; dup {
					return nil, fmt.Errorf("blif line %d: pin %q connected twice", lineNo, formal)
				}
				g.pinConn[formal] = actual
			}
			if g.output == "" {
				return nil, fmt.Errorf("blif line %d: gate has no output connection (%s=...)", lineNo, cell.Output)
			}
			if len(g.pinConn) != cell.NumPins() {
				return nil, fmt.Errorf("blif line %d: cell %s needs %d pin connections, got %d",
					lineNo, cell.Name, cell.NumPins(), len(g.pinConn))
			}
			gates = append(gates, g)
		case ".names":
			return nil, fmt.Errorf("blif line %d: .names (unmapped logic) is not supported; map the circuit first", lineNo)
		case ".end":
			// Terminates the (single) model; anything after is ignored.
			sawEnd = true
		case ".latch":
			return nil, fmt.Errorf("blif line %d: sequential elements are not supported", lineNo)
		default:
			return nil, fmt.Errorf("blif line %d: unknown construct %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif line %d: %v", lineNo+1, err)
	}
	if pending != "" {
		return nil, fmt.Errorf("blif line %d: line continuation at end of file (truncated file?)", lineNo)
	}
	if !sawEnd {
		return nil, fmt.Errorf("blif line %d: missing .end (truncated file?)", lineNo)
	}
	if modelName == "" {
		modelName = "model"
	}

	nl := netlist.New(modelName, lib)
	for _, in := range inputs {
		if _, err := nl.AddInput(in); err != nil {
			return nil, fmt.Errorf("blif line %d: %v", inputAt[in], err)
		}
	}

	// Gates may appear in any order; insert them in dependency order.
	producer := make(map[string]int, len(gates)) // signal -> gate index
	for i, g := range gates {
		if _, dup := producer[g.output]; dup {
			return nil, fmt.Errorf("blif line %d: signal %q driven twice", g.lineNo, g.output)
		}
		if nl.FindNode(g.output) != netlist.InvalidNode {
			return nil, fmt.Errorf("blif line %d: signal %q collides with an input", g.lineNo, g.output)
		}
		producer[g.output] = i
	}
	state := make([]byte, len(gates)) // 0 new, 1 visiting, 2 placed
	var place func(i int) error
	place = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("blif line %d: combinational cycle through %q", gates[i].lineNo, gates[i].output)
		case 2:
			return nil
		}
		state[i] = 1
		g := gates[i]
		fanins := make([]netlist.NodeID, g.cell.NumPins())
		for pin := 0; pin < g.cell.NumPins(); pin++ {
			sig := g.pinConn[g.cell.Pins[pin].Name]
			if j, ok := producer[sig]; ok {
				if err := place(j); err != nil {
					return err
				}
			}
			id := nl.FindNode(sig)
			if id == netlist.InvalidNode {
				return fmt.Errorf("blif line %d: undriven signal %q", g.lineNo, sig)
			}
			fanins[pin] = id
		}
		if _, err := nl.AddGate(g.output, g.cell, fanins); err != nil {
			return fmt.Errorf("blif line %d: %v", g.lineNo, err)
		}
		state[i] = 2
		return nil
	}
	for i := range gates {
		if err := place(i); err != nil {
			return nil, err
		}
	}
	for _, out := range outputs {
		id := nl.FindNode(out)
		if id == netlist.InvalidNode {
			return nil, fmt.Errorf("blif line %d: output %q is not driven", outputAt[out], out)
		}
		if err := nl.AddOutput(out, id); err != nil {
			return nil, fmt.Errorf("blif line %d: %v", outputAt[out], err)
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("blif: parsed netlist invalid: %v", err)
	}
	return nl, nil
}

// Write emits the netlist as mapped BLIF in topological order.
func Write(w io.Writer, nl *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nl.Name)

	var inNames []string
	for _, id := range nl.Inputs() {
		if !nl.Node(id).Dead() {
			inNames = append(inNames, nl.Node(id).Name())
		}
	}
	writeWrapped(bw, ".inputs", inNames)

	// Outputs are referenced by the driving stem's signal name. A PO whose
	// name differs from its driver is emitted under the driver name (the
	// function is preserved; only the port label changes), and drivers
	// feeding several POs are emitted once.
	var outNames []string
	seenOut := make(map[string]bool)
	for _, po := range nl.Outputs() {
		name := nl.Node(po.Driver).Name()
		if !seenOut[name] {
			seenOut[name] = true
			outNames = append(outNames, name)
		}
	}
	writeWrapped(bw, ".outputs", outNames)

	for _, id := range nl.TopoOrder() {
		n := nl.Node(id)
		if n.Kind() != netlist.KindGate {
			continue
		}
		fmt.Fprintf(bw, ".gate %s", n.Cell().Name)
		for pin, f := range n.Fanins() {
			fmt.Fprintf(bw, " %s=%s", n.Cell().Pins[pin].Name, nl.Node(f).Name())
		}
		fmt.Fprintf(bw, " %s=%s\n", n.Cell().Output, n.Name())
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeWrapped(w io.Writer, directive string, names []string) {
	fmt.Fprint(w, directive)
	col := len(directive)
	for _, n := range names {
		if col+1+len(n) > 78 {
			fmt.Fprint(w, " \\\n   ")
			col = 4
		}
		fmt.Fprintf(w, " %s", n)
		col += 1 + len(n)
	}
	fmt.Fprintln(w)
}

// SignalNames returns the sorted live stem-signal names; exported for tests
// and tools that diff circuits.
func SignalNames(nl *netlist.Netlist) []string {
	var names []string
	nl.LiveNodes(func(n *netlist.Node) { names = append(names, n.Name()) })
	sort.Strings(names)
	return names
}

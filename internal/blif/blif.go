// Package blif reads and writes technology-mapped circuits in a BLIF
// subset: .model/.inputs/.outputs/.gate/.latch/.end. Gates reference cells
// of a cellib.Library by name with explicit pin bindings, e.g.
//
//	.model fig2
//	.inputs a b c
//	.outputs f
//	.gate xor2 a=a b=c O=d
//	.gate and2 a=d b=b O=f
//	.end
//
// Gate output names name the stem signal; a signal listed in .outputs is
// attached as a primary output of the same name.
//
// Sequential circuits use .latch lines (D-type registers):
//
//	.latch <input> <output> [<type> <control>] [<init-val>]
//
// ReadModel cuts such a circuit at its register boundaries: every latch
// output (state line) becomes a pseudo primary input of the combinational
// core and every latch input (next-state function) a pseudo primary
// output, so the core is an ordinary netlist.Netlist the combinational
// pipeline handles unchanged. Model records the cut; WriteModel stitches
// the latches back into valid sequential BLIF. Only edge-triggered D-types
// ("re"/"fe", or unclocked) are supported; level-sensitive and
// asynchronous types are rejected with line-numbered errors.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// Latch is one D-type register of a sequential model. The combinational
// core represents its output (state line) as a pseudo primary input named
// Output and its input (next-state function) as a pseudo primary output;
// Model records where.
type Latch struct {
	// Input is the next-state signal name as parsed; after optimization
	// the live connection is the pseudo primary output (substitutions may
	// have redirected it to a different driver), so writers must consult
	// the netlist, not this name.
	Input string
	// Output is the state-line signal name; it names a pseudo primary
	// input of the core netlist.
	Output string
	// Kind is the latch type: "re" (rising edge), "fe" (falling edge), or
	// "" for an unclocked declaration.
	Kind string
	// Control is the clocking signal token ("NIL" or a net name; clock
	// nets are not modeled, the token is preserved verbatim on re-emit).
	// Empty when Kind is empty.
	Control string
	// Init is the initial state: 0, 1, 2 (don't care), or 3 (unknown, the
	// BLIF default).
	Init int
	// Line is the source line of the .latch (0 for generated circuits).
	Line int
}

// Model is a parsed BLIF circuit: the combinational core cut at the
// register boundaries, plus the registers themselves.
//
// The cut layout is positional: Netlist.Inputs()[:NumInputs] are the true
// primary inputs and Inputs()[NumInputs+i] is latch i's state line;
// Netlist.Outputs()[:NumOutputs] are the true primary outputs and
// Outputs()[NumOutputs+i] is latch i's next-state sink. Optimization
// mutates the core in place but never reorders ports, so the layout
// survives a core.Optimize run.
type Model struct {
	Netlist *netlist.Netlist
	Latches []Latch
	// NumInputs counts the true primary inputs (the .inputs list).
	NumInputs int
	// NumOutputs counts the true primary outputs (the .outputs list).
	NumOutputs int
}

// Sequential reports whether the model has registers.
func (m *Model) Sequential() bool { return len(m.Latches) > 0 }

// StateNode returns the core node of latch i's state line (a pseudo
// primary input).
func (m *Model) StateNode(i int) netlist.NodeID {
	return m.Netlist.Inputs()[m.NumInputs+i]
}

// NextStatePO returns latch i's next-state sink (a pseudo primary
// output of the core).
func (m *Model) NextStatePO(i int) netlist.PO {
	return m.Netlist.Outputs()[m.NumOutputs+i]
}

// Clone deep-copies the model (the core netlist is cloned; latch metadata
// is value-copied).
func (m *Model) Clone() *Model {
	return &Model{
		Netlist:    m.Netlist.Clone(),
		Latches:    append([]Latch(nil), m.Latches...),
		NumInputs:  m.NumInputs,
		NumOutputs: m.NumOutputs,
	}
}

// Validate checks the cut invariants on top of the core's own netlist
// invariants: port counts match the latch list and every state line is
// the pseudo input the latch names.
func (m *Model) Validate() error {
	if err := m.Netlist.Validate(); err != nil {
		return err
	}
	if m.NumInputs < 0 || m.NumOutputs < 0 {
		return fmt.Errorf("blif: negative port count in model %s", m.Netlist.Name)
	}
	if got, want := len(m.Netlist.Inputs()), m.NumInputs+len(m.Latches); got != want {
		return fmt.Errorf("blif: model %s has %d core inputs, want %d (%d true + %d state lines)",
			m.Netlist.Name, got, want, m.NumInputs, len(m.Latches))
	}
	if got, want := len(m.Netlist.Outputs()), m.NumOutputs+len(m.Latches); got != want {
		return fmt.Errorf("blif: model %s has %d core outputs, want %d (%d true + %d next-state sinks)",
			m.Netlist.Name, got, want, m.NumOutputs, len(m.Latches))
	}
	for i, l := range m.Latches {
		n := m.Netlist.Node(m.StateNode(i))
		if n.Kind() != netlist.KindInput {
			return fmt.Errorf("blif: latch %d state line %q is not a core input", i, l.Output)
		}
		if n.Name() != l.Output {
			return fmt.Errorf("blif: latch %d state line is %q, want %q", i, n.Name(), l.Output)
		}
		if l.Init < 0 || l.Init > 3 {
			return fmt.Errorf("blif: latch %q has init value %d outside 0..3", l.Output, l.Init)
		}
	}
	return nil
}

// latchLine is one raw .latch declaration awaiting resolution.
type latchLine struct {
	latch Latch
}

// parseLatch validates the operand forms of one .latch line:
//
//	.latch d q               (unclocked, init unknown)
//	.latch d q init
//	.latch d q type control
//	.latch d q type control init
func parseLatch(fields []string, lineNo int) (Latch, error) {
	l := Latch{Init: 3, Line: lineNo}
	ops := fields[1:]
	if len(ops) < 2 || len(ops) > 5 {
		return l, fmt.Errorf("blif line %d: malformed .latch (want \".latch input output [type control] [init]\", got %d operands)",
			lineNo, len(ops))
	}
	l.Input, l.Output = ops[0], ops[1]
	rest := ops[2:]
	if len(rest) == 2 || len(rest) == 3 {
		switch rest[0] {
		case "re", "fe":
			l.Kind, l.Control = rest[0], rest[1]
		case "ah", "al", "as":
			return l, fmt.Errorf("blif line %d: unsupported latch clocking type %q (only edge-triggered D-types \"re\"/\"fe\" are supported)",
				lineNo, rest[0])
		default:
			return l, fmt.Errorf("blif line %d: unknown latch type %q (want \"re\" or \"fe\")", lineNo, rest[0])
		}
		rest = rest[2:]
	}
	if len(rest) == 1 {
		switch rest[0] {
		case "0":
			l.Init = 0
		case "1":
			l.Init = 1
		case "2":
			l.Init = 2
		case "3":
			l.Init = 3
		default:
			return l, fmt.Errorf("blif line %d: bad latch init value %q (want 0, 1, 2, or 3)", lineNo, rest[0])
		}
	}
	return l, nil
}

// Read parses a combinational mapped BLIF model against the given library.
// Sequential inputs (.latch) are rejected; use ReadModel for those.
func Read(r io.Reader, lib *cellib.Library) (*netlist.Netlist, error) {
	m, err := ReadModel(r, lib)
	if err != nil {
		return nil, err
	}
	if m.Sequential() {
		return nil, fmt.Errorf("blif line %d: circuit is sequential (.latch); this entry point is combinational-only, use ReadModel",
			m.Latches[0].Line)
	}
	return m.Netlist, nil
}

// ReadModel parses a mapped BLIF model against the given library,
// accepting .latch lines and returning the circuit cut at its register
// boundaries.
func ReadModel(r io.Reader, lib *cellib.Library) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var (
		modelName string
		modelLine int
		inputs    []string
		outputs   []string
		latches   []latchLine
		sawEnd    bool
	)
	// declAt maps every declared input/output signal name to its line, so
	// duplicate declarations report both locations.
	inputAt := make(map[string]int)
	outputAt := make(map[string]int)
	latchOutAt := make(map[string]int)
	type gateLine struct {
		cell    *cellib.Cell
		output  string
		pinConn map[string]string // pin name -> signal name
		lineNo  int
	}
	var gates []gateLine

	lineNo := 0
	var pending string // for '\' continuations
	for !sawEnd && sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		line = pending + line
		pending = ""
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".model":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif line %d: .model needs a name", lineNo)
			}
			if modelName != "" {
				return nil, fmt.Errorf("blif line %d: duplicate .model (first on line %d); only a single model per file is supported",
					lineNo, modelLine)
			}
			modelName, modelLine = fields[1], lineNo
		case ".inputs":
			for _, in := range fields[1:] {
				if at, dup := inputAt[in]; dup {
					return nil, fmt.Errorf("blif line %d: duplicate input %q (first declared on line %d)", lineNo, in, at)
				}
				inputAt[in] = lineNo
				inputs = append(inputs, in)
			}
		case ".outputs":
			for _, out := range fields[1:] {
				if at, dup := outputAt[out]; dup {
					return nil, fmt.Errorf("blif line %d: duplicate output %q (first declared on line %d)", lineNo, out, at)
				}
				outputAt[out] = lineNo
				outputs = append(outputs, out)
			}
		case ".gate":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif line %d: malformed .gate", lineNo)
			}
			cell := lib.Cell(fields[1])
			if cell == nil {
				return nil, fmt.Errorf("blif line %d: unknown cell %q", lineNo, fields[1])
			}
			g := gateLine{cell: cell, pinConn: make(map[string]string), lineNo: lineNo}
			for _, kv := range fields[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 {
					return nil, fmt.Errorf("blif line %d: bad connection %q", lineNo, kv)
				}
				formal, actual := kv[:eq], kv[eq+1:]
				if formal == cell.Output {
					if g.output != "" {
						return nil, fmt.Errorf("blif line %d: two outputs on one gate", lineNo)
					}
					g.output = actual
					continue
				}
				if cell.PinIndex(formal) < 0 {
					return nil, fmt.Errorf("blif line %d: cell %s has no pin %q", lineNo, cell.Name, formal)
				}
				if _, dup := g.pinConn[formal]; dup {
					return nil, fmt.Errorf("blif line %d: pin %q connected twice", lineNo, formal)
				}
				g.pinConn[formal] = actual
			}
			if g.output == "" {
				return nil, fmt.Errorf("blif line %d: gate has no output connection (%s=...)", lineNo, cell.Output)
			}
			if len(g.pinConn) != cell.NumPins() {
				return nil, fmt.Errorf("blif line %d: cell %s needs %d pin connections, got %d",
					lineNo, cell.Name, cell.NumPins(), len(g.pinConn))
			}
			gates = append(gates, g)
		case ".latch":
			l, err := parseLatch(fields, lineNo)
			if err != nil {
				return nil, err
			}
			if at, dup := latchOutAt[l.Output]; dup {
				return nil, fmt.Errorf("blif line %d: duplicate latch output %q (first declared on line %d)", lineNo, l.Output, at)
			}
			if at, dup := inputAt[l.Output]; dup {
				return nil, fmt.Errorf("blif line %d: latch output %q collides with the primary input declared on line %d", lineNo, l.Output, at)
			}
			latchOutAt[l.Output] = lineNo
			latches = append(latches, latchLine{latch: l})
		case ".names":
			return nil, fmt.Errorf("blif line %d: .names (unmapped logic) is not supported; map the circuit first", lineNo)
		case ".end":
			// Terminates the (single) model; anything after is ignored.
			sawEnd = true
		default:
			return nil, fmt.Errorf("blif line %d: unknown construct %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif line %d: %v", lineNo+1, err)
	}
	if pending != "" {
		return nil, fmt.Errorf("blif line %d: line continuation at end of file (truncated file?)", lineNo)
	}
	if !sawEnd {
		return nil, fmt.Errorf("blif line %d: missing .end (truncated file?)", lineNo)
	}
	if modelName == "" {
		modelName = "model"
	}

	nl := netlist.New(modelName, lib)
	for _, in := range inputs {
		if _, err := nl.AddInput(in); err != nil {
			return nil, fmt.Errorf("blif line %d: %v", inputAt[in], err)
		}
	}
	// Register cut, input side: every latch output becomes a pseudo
	// primary input of the combinational core.
	for _, ll := range latches {
		if _, err := nl.AddInput(ll.latch.Output); err != nil {
			return nil, fmt.Errorf("blif line %d: %v", ll.latch.Line, err)
		}
	}

	// Gates may appear in any order; insert them in dependency order.
	producer := make(map[string]int, len(gates)) // signal -> gate index
	for i, g := range gates {
		if _, dup := producer[g.output]; dup {
			return nil, fmt.Errorf("blif line %d: signal %q driven twice", g.lineNo, g.output)
		}
		if nl.FindNode(g.output) != netlist.InvalidNode {
			return nil, fmt.Errorf("blif line %d: signal %q collides with an input or latch output", g.lineNo, g.output)
		}
		producer[g.output] = i
	}
	state := make([]byte, len(gates)) // 0 new, 1 visiting, 2 placed
	var place func(i int) error
	place = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("blif line %d: combinational cycle through %q", gates[i].lineNo, gates[i].output)
		case 2:
			return nil
		}
		state[i] = 1
		g := gates[i]
		fanins := make([]netlist.NodeID, g.cell.NumPins())
		for pin := 0; pin < g.cell.NumPins(); pin++ {
			sig := g.pinConn[g.cell.Pins[pin].Name]
			if j, ok := producer[sig]; ok {
				if err := place(j); err != nil {
					return err
				}
			}
			id := nl.FindNode(sig)
			if id == netlist.InvalidNode {
				return fmt.Errorf("blif line %d: undriven signal %q", g.lineNo, sig)
			}
			fanins[pin] = id
		}
		if _, err := nl.AddGate(g.output, g.cell, fanins); err != nil {
			return fmt.Errorf("blif line %d: %v", g.lineNo, err)
		}
		state[i] = 2
		return nil
	}
	for i := range gates {
		if err := place(i); err != nil {
			return nil, err
		}
	}
	for _, out := range outputs {
		id := nl.FindNode(out)
		if id == netlist.InvalidNode {
			return nil, fmt.Errorf("blif line %d: output %q is not driven", outputAt[out], out)
		}
		if err := nl.AddOutput(out, id); err != nil {
			return nil, fmt.Errorf("blif line %d: %v", outputAt[out], err)
		}
	}
	// Register cut, output side: every latch input becomes a pseudo
	// primary output anchoring the next-state cone. Pseudo-PO names never
	// appear in emitted BLIF (outputs are written by driver stem name),
	// they only need to be unique.
	m := &Model{Netlist: nl, NumInputs: len(inputs), NumOutputs: len(outputs)}
	for i, ll := range latches {
		l := ll.latch
		id := nl.FindNode(l.Input)
		if id == netlist.InvalidNode {
			return nil, fmt.Errorf("blif line %d: latch input %q is not driven", l.Line, l.Input)
		}
		if err := nl.AddOutput(nextStatePOName(nl, i), id); err != nil {
			return nil, fmt.Errorf("blif line %d: %v", l.Line, err)
		}
		m.Latches = append(m.Latches, l)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("blif: parsed netlist invalid: %v", err)
	}
	return m, nil
}

// nextStatePOName generates a unique pseudo-PO name for latch i's
// next-state sink. The name is internal (never written to BLIF); the
// loop only guards against a hostile real output named the same.
func nextStatePOName(nl *netlist.Netlist, i int) string {
	name := fmt.Sprintf("latch%d$ns", i)
	for k := 0; hasPO(nl, name); k++ {
		name = fmt.Sprintf("latch%d$ns%d", i, k)
	}
	return name
}

func hasPO(nl *netlist.Netlist, name string) bool {
	for _, po := range nl.Outputs() {
		if po.Name == name {
			return true
		}
	}
	return false
}

// Write emits a combinational netlist as mapped BLIF in topological order.
func Write(w io.Writer, nl *netlist.Netlist) error {
	return WriteModel(w, &Model{
		Netlist:    nl,
		NumInputs:  len(nl.Inputs()),
		NumOutputs: len(nl.Outputs()),
	})
}

// WriteModel emits the model as mapped BLIF, stitching the latches back
// over the combinational core: state lines leave the .inputs list and
// next-state sinks the .outputs list, reappearing as .latch declarations
// connected to the sinks' current drivers.
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	nl := m.Netlist
	fmt.Fprintf(bw, ".model %s\n", nl.Name)

	var inNames []string
	for _, id := range nl.Inputs()[:m.NumInputs] {
		if !nl.Node(id).Dead() {
			inNames = append(inNames, nl.Node(id).Name())
		}
	}
	writeWrapped(bw, ".inputs", inNames)

	// Outputs are referenced by the driving stem's signal name. A PO whose
	// name differs from its driver is emitted under the driver name (the
	// function is preserved; only the port label changes), and drivers
	// feeding several POs are emitted once.
	var outNames []string
	seenOut := make(map[string]bool)
	for _, po := range nl.Outputs()[:m.NumOutputs] {
		name := nl.Node(po.Driver).Name()
		if !seenOut[name] {
			seenOut[name] = true
			outNames = append(outNames, name)
		}
	}
	writeWrapped(bw, ".outputs", outNames)

	for i, l := range m.Latches {
		d := nl.Node(m.NextStatePO(i).Driver).Name()
		fmt.Fprintf(bw, ".latch %s %s", d, l.Output)
		if l.Kind != "" {
			fmt.Fprintf(bw, " %s %s", l.Kind, l.Control)
		}
		fmt.Fprintf(bw, " %d\n", l.Init)
	}

	for _, id := range nl.TopoOrder() {
		n := nl.Node(id)
		if n.Kind() != netlist.KindGate {
			continue
		}
		fmt.Fprintf(bw, ".gate %s", n.Cell().Name)
		for pin, f := range n.Fanins() {
			fmt.Fprintf(bw, " %s=%s", n.Cell().Pins[pin].Name, nl.Node(f).Name())
		}
		fmt.Fprintf(bw, " %s=%s\n", n.Cell().Output, n.Name())
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeWrapped(w io.Writer, directive string, names []string) {
	fmt.Fprint(w, directive)
	col := len(directive)
	for _, n := range names {
		if col+1+len(n) > 78 {
			fmt.Fprint(w, " \\\n   ")
			col = 4
		}
		fmt.Fprintf(w, " %s", n)
		col += 1 + len(n)
	}
	fmt.Fprintln(w)
}

// SignalNames returns the sorted live stem-signal names; exported for tests
// and tools that diff circuits.
func SignalNames(nl *netlist.Netlist) []string {
	var names []string
	nl.LiveNodes(func(n *netlist.Node) { names = append(names, n.Name()) })
	sort.Strings(names)
	return names
}

package blif

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powder/internal/cellib"
)

// FuzzRead throws arbitrary input at the BLIF parser. The parser must
// never panic; whenever it accepts an input, the resulting netlist must
// validate and survive a Write/Read round trip.
func FuzzRead(f *testing.F) {
	f.Add(fig2)
	f.Add(".model m\n.end\n")
	f.Add(".model m\n.inputs a \\\n b\n.outputs y\n.gate and2 a=a \\\n b=b O=y\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y\n")
	f.Add(".inputs a a\n.outputs y\n.end\n")
	f.Add("# comment only\n")
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "circuits", "*.blif"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range seeds {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}

	lib := cellib.Lib2()
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Read(strings.NewReader(src), lib)
		if err != nil {
			return
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("accepted netlist fails Validate: %v\ninput: %q", verr, src)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, nl); werr != nil {
			t.Fatalf("accepted netlist fails Write: %v\ninput: %q", werr, src)
		}
		if _, rerr := Read(bytes.NewReader(buf.Bytes()), lib); rerr != nil {
			t.Fatalf("round trip unreadable: %v\nwrote:\n%s\ninput: %q", rerr, buf.String(), src)
		}
	})
}

package blif

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powder/internal/cellib"
)

// FuzzRead throws arbitrary input at the BLIF parser. The parser must
// never panic; whenever it accepts an input, the resulting model must
// validate and survive a WriteModel/ReadModel round trip that preserves
// the latch count.
func FuzzRead(f *testing.F) {
	f.Add(fig2)
	f.Add(".model m\n.end\n")
	f.Add(".model m\n.inputs a \\\n b\n.outputs y\n.gate and2 a=a \\\n b=b O=y\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y\n")
	f.Add(".inputs a a\n.outputs y\n.end\n")
	f.Add("# comment only\n")
	// Sequential seeds: well-formed, truncated, bad init, unsupported
	// clocking, self-loop state line.
	f.Add(counter2)
	f.Add(".model m\n.inputs a\n.outputs y\n.latch d q re clk 0\n.gate inv a=a O=d\n.gate inv a=q O=y\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y\n.latch d q re clk")
	f.Add(".model m\n.inputs a\n.outputs y\n.latch d q re clk 9\n.gate inv a=a O=d\n.gate inv a=q O=y\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y\n.latch d q ah clk 1\n.gate inv a=a O=d\n.gate inv a=q O=y\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs q\n.latch q q\n.end\n")
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "circuits", "*.blif"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range seeds {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}

	lib := cellib.Lib2()
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadModel(strings.NewReader(src), lib)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted model fails Validate: %v\ninput: %q", verr, src)
		}
		var buf bytes.Buffer
		if werr := WriteModel(&buf, m); werr != nil {
			t.Fatalf("accepted model fails WriteModel: %v\ninput: %q", werr, src)
		}
		back, rerr := ReadModel(bytes.NewReader(buf.Bytes()), lib)
		if rerr != nil {
			t.Fatalf("round trip unreadable: %v\nwrote:\n%s\ninput: %q", rerr, buf.String(), src)
		}
		if len(back.Latches) != len(m.Latches) {
			t.Fatalf("round trip changed latch count %d -> %d\nwrote:\n%s\ninput: %q",
				len(m.Latches), len(back.Latches), buf.String(), src)
		}
	})
}

package blif_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/netlist"
	"powder/internal/synth"
)

// roundTrip reads a BLIF source (combinational or sequential), writes it
// back out, re-reads that, and asserts the second write is byte-identical
// to the first (the writer is a fixed point) and that the structure —
// including latches — survived unchanged.
func roundTrip(t *testing.T, name string, src []byte, lib *cellib.Library) {
	t.Helper()
	m, err := blif.ReadModel(bytes.NewReader(src), lib)
	if err != nil {
		t.Fatalf("%s: read: %v", name, err)
	}
	var first bytes.Buffer
	if err := blif.WriteModel(&first, m); err != nil {
		t.Fatalf("%s: write: %v", name, err)
	}
	back, err := blif.ReadModel(bytes.NewReader(first.Bytes()), lib)
	if err != nil {
		t.Fatalf("%s: reparse: %v\n%s", name, err, first.String())
	}
	var second bytes.Buffer
	if err := blif.WriteModel(&second, back); err != nil {
		t.Fatalf("%s: rewrite: %v", name, err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("%s: writer is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
			name, first.String(), second.String())
	}
	if len(m.Latches) != len(back.Latches) {
		t.Fatalf("%s: latches %d -> %d", name, len(m.Latches), len(back.Latches))
	}
	for i, l := range m.Latches {
		got := back.Latches[i]
		if got.Output != l.Output || got.Kind != l.Kind || got.Control != l.Control || got.Init != l.Init {
			t.Errorf("%s: latch %d changed: %+v -> %+v", name, i, l, got)
		}
	}
	assertSameShape(t, name, m.Netlist, back.Netlist)
}

// assertSameShape compares the structural fingerprint of two netlists:
// name, counts, the ordered signal-name set, and total area.
func assertSameShape(t *testing.T, name string, a, b *netlist.Netlist) {
	t.Helper()
	if a.Name != b.Name {
		t.Errorf("%s: model name %q -> %q", name, a.Name, b.Name)
	}
	if a.GateCount() != b.GateCount() {
		t.Errorf("%s: gate count %d -> %d", name, a.GateCount(), b.GateCount())
	}
	if len(a.Inputs()) != len(b.Inputs()) {
		t.Errorf("%s: inputs %d -> %d", name, len(a.Inputs()), len(b.Inputs()))
	}
	if len(a.Outputs()) != len(b.Outputs()) {
		t.Errorf("%s: outputs %d -> %d", name, len(a.Outputs()), len(b.Outputs()))
	}
	if a.Area() != b.Area() {
		t.Errorf("%s: area %v -> %v", name, a.Area(), b.Area())
	}
	sa, sb := blif.SignalNames(a), blif.SignalNames(b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: signal sets differ: %v vs %v", name, sa, sb)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("%s: signal %d: %q vs %q", name, i, sa[i], sb[i])
		}
	}
}

// TestRoundTripExampleCircuits round-trips every shipped example circuit.
func TestRoundTripExampleCircuits(t *testing.T) {
	files, err := filepath.Glob("../../examples/circuits/*.blif")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example circuits found")
	}
	lib := cellib.Lib2()
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, filepath.Base(path), src, lib)
		})
	}
}

// TestRoundTripGeneratedCircuit round-trips a compiled Table 1 benchmark
// circuit — much larger than the examples and exercising every cell of
// the library the mapper uses.
func TestRoundTripGeneratedCircuit(t *testing.T) {
	lib := cellib.Lib2()
	spec, err := circuits.ByName("comp")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := blif.Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, "comp", buf.Bytes(), lib)
}

package blif

import (
	"bytes"
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sim"
)

// TestRandomNetlistRoundTrip: arbitrary generated circuits survive
// Write/Read with identical structure and function.
func TestRandomNetlistRoundTrip(t *testing.T) {
	lib := cellib.Lib2()
	cells := []string{"inv", "buf", "nand2", "nor2", "and2", "or2", "xor2", "xnor2", "aoi21", "oai21", "aoi22", "oai22", "mux2", "nand3", "nor4", "and4"}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		nl := netlist.New("rt", lib)
		var pool []netlist.NodeID
		nIn := 3 + rng.Intn(5)
		for i := 0; i < nIn; i++ {
			id, err := nl.AddInput(logic.VarName(i))
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, id)
		}
		for i := 0; i < 5+rng.Intn(20); i++ {
			cell := lib.Cell(cells[rng.Intn(len(cells))])
			fanins := make([]netlist.NodeID, cell.NumPins())
			for p := range fanins {
				fanins[p] = pool[rng.Intn(len(pool))]
			}
			id, err := nl.AddGate("", cell, fanins)
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, id)
		}
		nOut := 1 + rng.Intn(3)
		for i := 0; i < nOut; i++ {
			if err := nl.AddOutput(logic.VarName(20+i), pool[len(pool)-1-i]); err != nil {
				t.Fatal(err)
			}
		}
		nl.SweepDead()

		var buf bytes.Buffer
		if err := Write(&buf, nl); err != nil {
			t.Fatal(err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()), lib)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, buf.String())
		}
		if back.GateCount() != nl.GateCount() || back.Area() != nl.Area() {
			t.Fatalf("trial %d: structure changed in round trip", trial)
		}
		// Functional equivalence on random vectors, matching outputs by
		// position (Write emits them in declaration order).
		s1 := sim.New(nl, 4)
		s1.SetInputsRandom(7, nil)
		s1.Run()
		s2 := sim.New(back, 4)
		s2.SetInputsRandom(7, nil)
		s2.Run()
		if len(nl.Outputs()) != len(back.Outputs()) {
			t.Fatalf("trial %d: output count changed", trial)
		}
		for i := range nl.Outputs() {
			v1 := s1.Value(nl.Outputs()[i].Driver)
			v2 := s2.Value(back.Outputs()[i].Driver)
			for w := range v1 {
				if v1[w] != v2[w] {
					t.Fatalf("trial %d: output %d differs after round trip", trial, i)
				}
			}
		}
	}
}

// TestReadRejectsGarbage: malformed inputs fail cleanly, never panic.
func TestReadRejectsGarbage(t *testing.T) {
	lib := cellib.Lib2()
	rng := rand.New(rand.NewSource(99))
	tokens := []string{".model", ".inputs", ".outputs", ".gate", ".end", "and2",
		"a=a", "b=b", "O=y", "a", "b", "y", "=", "\\", "#x", "inv", "a=", "=y"}
	for trial := 0; trial < 300; trial++ {
		var b bytes.Buffer
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			if rng.Intn(3) == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Read panicked on %q: %v", trial, b.String(), r)
				}
			}()
			nl, err := Read(bytes.NewReader(b.Bytes()), lib)
			if err == nil && nl != nil {
				// Accepted inputs must at least be valid netlists.
				if verr := nl.Validate(); verr != nil {
					t.Fatalf("trial %d: accepted invalid netlist: %v", trial, verr)
				}
			}
		}()
	}
}

package blif

import (
	"bytes"
	"strings"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// counter2 is a mapped 2-bit counter: q0 toggles with en, q1 toggles with
// the carry out of q0. wrap observes the carry out of q1.
const counter2 = `
.model counter2
.inputs en
.outputs wrap
.latch n0 q0 re clk 0
.latch n1 q1 re clk 0
.gate xor2 a=q0 b=en O=n0
.gate and2 a=en b=q0 O=c0
.gate xor2 a=q1 b=c0 O=n1
.gate and2 a=c0 b=q1 O=wrap
.end
`

func TestReadModelLatches(t *testing.T) {
	lib := cellib.Lib2()
	m, err := ReadModel(strings.NewReader(counter2), lib)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sequential() {
		t.Fatal("counter2 should be sequential")
	}
	if len(m.Latches) != 2 || m.NumInputs != 1 || m.NumOutputs != 1 {
		t.Fatalf("cut shape: %d latches, %d inputs, %d outputs", len(m.Latches), m.NumInputs, m.NumOutputs)
	}
	// The cut: core inputs are [en q0 q1], core outputs are [wrap ns0 ns1].
	if got := len(m.Netlist.Inputs()); got != 3 {
		t.Errorf("core inputs = %d, want 3", got)
	}
	if got := len(m.Netlist.Outputs()); got != 3 {
		t.Errorf("core outputs = %d, want 3", got)
	}
	for i, want := range []Latch{
		{Input: "n0", Output: "q0", Kind: "re", Control: "clk", Init: 0, Line: 5},
		{Input: "n1", Output: "q1", Kind: "re", Control: "clk", Init: 0, Line: 6},
	} {
		if m.Latches[i] != want {
			t.Errorf("latch %d = %+v, want %+v", i, m.Latches[i], want)
		}
		// State line i is a pseudo-PI named after the latch output.
		n := m.Netlist.Node(m.StateNode(i))
		if n.Kind() != netlist.KindInput || n.Name() != want.Output {
			t.Errorf("state node %d: kind %v name %q", i, n.Kind(), n.Name())
		}
		// Next-state sink i drives from the declared next-state signal.
		po := m.NextStatePO(i)
		if got := m.Netlist.Node(po.Driver).Name(); got != want.Input {
			t.Errorf("next-state PO %d driven by %q, want %q", i, got, want.Input)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReadModelCombinational pins that latch-free input yields an empty
// latch list and the same cut counts as the plain reader.
func TestReadModelCombinational(t *testing.T) {
	lib := cellib.Lib2()
	m, err := ReadModel(strings.NewReader(fig2), lib)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sequential() {
		t.Fatal("fig2 should be combinational")
	}
	if m.NumInputs != len(m.Netlist.Inputs()) || m.NumOutputs != len(m.Netlist.Outputs()) {
		t.Errorf("combinational cut counts disagree with port lists")
	}
}

func TestLatchForms(t *testing.T) {
	lib := cellib.Lib2()
	cases := map[string]Latch{
		".latch d q":          {Input: "d", Output: "q", Init: 3},
		".latch d q 1":        {Input: "d", Output: "q", Init: 1},
		".latch d q 2":        {Input: "d", Output: "q", Init: 2},
		".latch d q re clk":   {Input: "d", Output: "q", Kind: "re", Control: "clk", Init: 3},
		".latch d q fe NIL 0": {Input: "d", Output: "q", Kind: "fe", Control: "NIL", Init: 0},
	}
	for decl, want := range cases {
		src := ".model m\n.inputs a\n.outputs y\n" + decl + "\n.gate inv a=a O=d\n.gate inv a=q O=y\n.end\n"
		m, err := ReadModel(strings.NewReader(src), lib)
		if err != nil {
			t.Errorf("%q: %v", decl, err)
			continue
		}
		want.Line = 4
		if len(m.Latches) != 1 || m.Latches[0] != want {
			t.Errorf("%q: parsed %+v, want %+v", decl, m.Latches, want)
		}
	}
}

func TestLatchErrors(t *testing.T) {
	lib := cellib.Lib2()
	wrap := func(decl string) string {
		return ".model m\n.inputs a\n.outputs y\n" + decl + "\n.gate inv a=a O=d\n.gate inv a=q O=y\n.end\n"
	}
	cases := map[string]struct {
		src  string
		want string // substring the error must contain
	}{
		"active-high":      {wrap(".latch d q ah clk 0"), "line 4"},
		"active-low":       {wrap(".latch d q al clk 0"), "line 4"},
		"asynchronous":     {wrap(".latch d q as clk 0"), "line 4"},
		"unknown type":     {wrap(".latch d q zz clk 0"), "line 4"},
		"bad init":         {wrap(".latch d q re clk 7"), "line 4"},
		"init not numeric": {wrap(".latch d q re clk x"), "line 4"},
		"too few operands": {wrap(".latch d"), "line 4"},
		"too many":         {wrap(".latch d q re clk 0 extra"), "line 4"},
		"undriven input":   {wrap(".latch nosuch q re clk 0"), "line 4"},
		"duplicate output": {
			".model m\n.inputs a\n.outputs y\n.latch a q\n.latch a q\n.gate inv a=q O=y\n.end\n", "line 5"},
		"collides with PI": {
			".model m\n.inputs a\n.outputs y\n.latch y a\n.gate inv a=a O=y\n.end\n", "line 4"},
		"gate drives state line": {
			".model m\n.inputs a\n.outputs y\n.latch y q\n.gate inv a=a O=q\n.gate inv a=q O=y\n.end\n", "line 5"},
	}
	for name, c := range cases {
		_, err := ReadModel(strings.NewReader(c.src), lib)
		if err == nil {
			t.Errorf("%s: ReadModel should fail", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %s", name, err, c.want)
		}
	}
}

// TestReadRejectsSequentialWithLine pins that the combinational entry
// point names the first .latch line when fed a sequential circuit.
func TestReadRejectsSequentialWithLine(t *testing.T) {
	lib := cellib.Lib2()
	_, err := Read(strings.NewReader(counter2), lib)
	if err == nil {
		t.Fatal("Read should reject sequential input")
	}
	if !strings.Contains(err.Error(), "line 5") || !strings.Contains(err.Error(), "sequential") {
		t.Errorf("error %q should name line 5 and say sequential", err)
	}
}

func TestModelRoundTrip(t *testing.T) {
	lib := cellib.Lib2()
	m, err := ReadModel(strings.NewReader(counter2), lib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(bytes.NewReader(buf.Bytes()), lib)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back.Latches) != len(m.Latches) {
		t.Fatalf("round trip lost latches: %d vs %d", len(back.Latches), len(m.Latches))
	}
	for i := range m.Latches {
		a, b := m.Latches[i], back.Latches[i]
		a.Line, b.Line = 0, 0 // line numbers shift with formatting
		if a != b {
			t.Errorf("latch %d changed: %+v vs %+v", i, b, a)
		}
	}
	if back.Netlist.GateCount() != m.Netlist.GateCount() ||
		back.NumInputs != m.NumInputs || back.NumOutputs != m.NumOutputs {
		t.Errorf("round trip changed shape")
	}
	if back.Netlist.Area() != m.Netlist.Area() {
		t.Errorf("round trip changed area")
	}
}

// TestModelWriteObservedStateLine covers a state line that is also a
// primary output: the .outputs list must keep it, and it must survive a
// round trip.
func TestModelWriteObservedStateLine(t *testing.T) {
	lib := cellib.Lib2()
	src := ".model obs\n.inputs a\n.outputs q\n.latch d q re clk 0\n.gate xor2 a=a b=q O=d\n.end\n"
	m, err := ReadModel(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ".outputs q") {
		t.Errorf("observed state line missing from .outputs:\n%s", out)
	}
	if _, err := ReadModel(bytes.NewReader(buf.Bytes()), lib); err != nil {
		t.Fatalf("round trip: %v\n%s", err, out)
	}
}

// TestModelWriteAfterRedirect pins the writer contract that .latch lines
// follow the pseudo-PO's current driver, not the parsed Input name.
func TestModelWriteAfterRedirect(t *testing.T) {
	lib := cellib.Lib2()
	src := ".model rd\n.inputs a\n.outputs y\n.latch d q re clk 0\n" +
		".gate inv a=a O=d\n.gate inv a=a O=e\n.gate inv a=q O=y\n.end\n"
	m, err := ReadModel(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	// Redirect the next-state sink from d to the equivalent e.
	poIdx := m.NumOutputs // latch 0's sink
	if err := m.Netlist.RedirectOutput(poIdx, m.Netlist.FindNode("e")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ".latch e q re clk 0") {
		t.Errorf("latch should follow the redirected driver:\n%s", buf.String())
	}
}

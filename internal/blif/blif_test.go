package blif

import (
	"bytes"
	"strings"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

const fig2 = `
# the paper's Figure 2 circuit A
.model fig2
.inputs a b c
.outputs f e
.gate and2 a=a b=b O=e
.gate xor2 a=a b=c O=d
.gate and2 a=d b=b O=f
.end
`

func TestReadBasic(t *testing.T) {
	lib := cellib.Lib2()
	nl, err := Read(strings.NewReader(fig2), lib)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "fig2" {
		t.Errorf("model name = %q", nl.Name)
	}
	if nl.GateCount() != 3 || len(nl.Inputs()) != 3 || len(nl.Outputs()) != 2 {
		t.Errorf("shape: %d gates %d inputs %d outputs", nl.GateCount(), len(nl.Inputs()), len(nl.Outputs()))
	}
	d := nl.FindNode("d")
	if d == netlist.InvalidNode {
		t.Fatal("signal d missing")
	}
	if nl.Node(d).Cell().Name != "xor2" {
		t.Errorf("d is %s, want xor2", nl.Node(d).Cell().Name)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOutOfOrderGates(t *testing.T) {
	lib := cellib.Lib2()
	// Gates deliberately listed consumer-first.
	src := `
.model ooo
.inputs a b
.outputs y
.gate inv a=x O=y
.gate and2 a=a b=b O=x
.end
`
	nl, err := Read(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() != 2 {
		t.Errorf("GateCount = %d", nl.GateCount())
	}
}

func TestReadContinuationLines(t *testing.T) {
	lib := cellib.Lib2()
	src := ".model c\n.inputs a \\\n b\n.outputs y\n.gate and2 a=a \\\n b=b O=y\n.end\n"
	nl, err := Read(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Inputs()) != 2 {
		t.Errorf("continuation parsing lost inputs: %d", len(nl.Inputs()))
	}
}

func TestReadErrors(t *testing.T) {
	lib := cellib.Lib2()
	cases := map[string]string{
		"unknown cell":     ".model m\n.inputs a\n.outputs y\n.gate frob a=a O=y\n",
		"bad connection":   ".model m\n.inputs a\n.outputs y\n.gate inv a O=y\n",
		"no output pin":    ".model m\n.inputs a\n.outputs y\n.gate inv a=a\n",
		"missing pin":      ".model m\n.inputs a\n.outputs y\n.gate and2 a=a O=y\n",
		"unknown pin":      ".model m\n.inputs a\n.outputs y\n.gate inv q=a O=y\n",
		"pin twice":        ".model m\n.inputs a\n.outputs y\n.gate inv a=a a=a O=y\n",
		"undriven signal":  ".model m\n.inputs a\n.outputs y\n.gate inv a=zz O=y\n",
		"undriven output":  ".model m\n.inputs a\n.outputs nope\n.gate inv a=a O=y\n",
		"driven twice":     ".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y\n.gate inv a=a O=y\n",
		"input collision":  ".model m\n.inputs a\n.outputs a\n.gate inv a=a O=a\n",
		"names construct":  ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n",
		"latch via Read":   ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n",
		"unknown keyword":  ".model m\n.frobnicate\n",
		"cycle":            ".model m\n.inputs a\n.outputs y\n.gate and2 a=a b=z O=y\n.gate inv a=y O=z\n",
		"two gate outputs": ".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y O=z\n",
		"duplicate model":  ".model m\n.model m2\n.inputs a\n.outputs y\n.gate inv a=a O=y\n.end\n",
		"duplicate input":  ".model m\n.inputs a b a\n.outputs y\n.gate inv a=a O=y\n.end\n",
		"duplicate output": ".model m\n.inputs a\n.outputs y y\n.gate inv a=a O=y\n.end\n",
		"missing .end":     ".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y\n",
		"trailing cont":    ".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y\n.end \\",
		"empty file":       "",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), lib); err == nil {
			t.Errorf("%s: Read should fail", name)
		}
	}
}

// TestReadErrorLineNumbers pins the diagnostics contract: every parse
// error names the offending line.
func TestReadErrorLineNumbers(t *testing.T) {
	lib := cellib.Lib2()
	cases := map[string]struct {
		src  string
		want string
	}{
		"duplicate model":  {".model m\n.model m2\n", "line 2"},
		"duplicate input":  {".model m\n.inputs a\n.inputs a\n", "line 3"},
		"duplicate output": {".model m\n.inputs a\n.outputs y\n.outputs y\n", "line 4"},
		"unknown cell":     {".model m\n.inputs a\n.outputs y\n.gate frob a=a O=y\n", "line 4"},
		"undriven output":  {".model m\n.inputs a\n.outputs nope\n.gate inv a=a O=y\n.end\n", "line 3"},
		"input collision":  {".model m\n.inputs a\n.outputs a\n.gate inv a=a O=a\n.end\n", "line 4"},
		"truncated":        {".model m\n.inputs a\n.outputs y\n.gate inv a=a O=y\n", "line 4"},
	}
	for name, c := range cases {
		_, err := Read(strings.NewReader(c.src), lib)
		if err == nil {
			t.Errorf("%s: Read should fail", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %s", name, err, c.want)
		}
	}
}

// TestReadStopsAtEnd pins that content after .end is ignored rather
// than parsed (the reader handles exactly one model).
func TestReadStopsAtEnd(t *testing.T) {
	lib := cellib.Lib2()
	src := fig2 + ".model second\n.bogus directive after end\n"
	nl, err := Read(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "fig2" {
		t.Errorf("model name = %q, want fig2", nl.Name)
	}
}

func TestRoundTrip(t *testing.T) {
	lib := cellib.Lib2()
	nl, err := Read(strings.NewReader(fig2), lib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), lib)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if back.GateCount() != nl.GateCount() || len(back.Inputs()) != len(nl.Inputs()) ||
		len(back.Outputs()) != len(nl.Outputs()) {
		t.Errorf("round trip changed shape")
	}
	a, b := SignalNames(nl), SignalNames(back)
	if len(a) != len(b) {
		t.Fatalf("signal sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("signal %d: %q vs %q", i, a[i], b[i])
		}
	}
	if back.Area() != nl.Area() {
		t.Errorf("area changed in round trip")
	}
}

func TestWriteWrapsLongLines(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("wide", lib)
	var last netlist.NodeID
	for i := 0; i < 40; i++ {
		id, err := nl.AddInput(strings.Repeat("x", 6) + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	g, err := nl.AddGate("y", lib.Cell("inv"), []netlist.NodeID{last})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("y", g); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 80 {
			t.Errorf("line exceeds 80 columns: %q", line)
		}
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()), lib); err != nil {
		t.Fatalf("wrapped output unreadable: %v", err)
	}
}

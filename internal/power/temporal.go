package power

import (
	"fmt"
	"math"
	"math/rand"

	"powder/internal/netlist"
	"powder/internal/sim"
)

// The paper computes E(i) = 2 p(i) (1-p(i)) from signal probabilities
// under temporal independence of the inputs, and notes that estimators
// with temporal/spatial correlation could be substituted. TemporalEstimate
// is such an estimator: primary inputs are lag-one Markov chains with a
// per-input signal probability and toggle rate, and E(i) of every signal
// is measured directly as the fraction of consecutive-vector pairs on
// which it changes. Correlations the independence model cannot see (e.g.
// an XOR of two synchronously toggling inputs never toggles) are captured
// exactly.

// TemporalReport holds directly measured transition probabilities.
type TemporalReport struct {
	// E[id] is the measured transition probability of node id.
	E []float64
	// Total is sum C(i)*E(i) under the measured activities.
	Total float64
	// Pairs is the number of vector pairs actually simulated (after the
	// words default applies), never the caller's request. Each measured
	// E is a binomial mean over Pairs trials with standard error
	// sqrt(E(1-E)/Pairs) — at the default 4096 pairs, about ±0.008 for a
	// mid-range signal; callers passing tiny words get proportionally
	// noisier estimates and should read Pairs before trusting them.
	Pairs int
}

// TemporalEstimate measures switching activity with correlated inputs.
// probs gives the per-input signal probability (nil = 0.5); toggles the
// per-input probability that the input flips between consecutive vectors
// (nil everywhere, or NaN per entry = the independence-equivalent
// 2p(1-p), so a partially matched activity binding plugs in directly).
// words <= 0 defaults to 64 (4096 pairs); the report's Pairs field
// records what was actually simulated and bounds the sampling variance.
func TemporalEstimate(nl *netlist.Netlist, words int, seed int64, probs, toggles []float64) (*TemporalReport, error) {
	if words <= 0 {
		words = 64
	}
	ins := nl.Inputs()
	if probs != nil && len(probs) != len(ins) {
		return nil, fmt.Errorf("power: %d probabilities for %d inputs", len(probs), len(ins))
	}
	if toggles != nil && len(toggles) != len(ins) {
		return nil, fmt.Errorf("power: %d toggle rates for %d inputs", len(toggles), len(ins))
	}
	for i, p := range probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("power: input %d probability %g outside [0,1]", i, p)
		}
	}
	for i, tgl := range toggles {
		if !math.IsNaN(tgl) && (tgl < 0 || tgl > 1) {
			return nil, fmt.Errorf("power: input %d toggle rate %g outside [0,1]", i, tgl)
		}
	}

	s0 := sim.New(nl, words)
	s1 := sim.New(nl, words)
	rng := rand.New(rand.NewSource(seed))

	// Generate v0 per-bit by probability, then v1 by flipping with the
	// toggle rate (a stationary lag-one Markov chain when toggle is
	// consistent with p; arbitrary rates are allowed for what-if studies).
	for i, id := range ins {
		p := 0.5
		if probs != nil {
			p = probs[i]
		}
		tgl := 2 * p * (1 - p)
		if toggles != nil && !math.IsNaN(toggles[i]) {
			tgl = toggles[i]
		}
		for w := 0; w < words; w++ {
			var w0, w1 uint64
			for b := 0; b < 64; b++ {
				v0 := rng.Float64() < p
				v1 := v0
				if rng.Float64() < tgl {
					v1 = !v1
				}
				if v0 {
					w0 |= 1 << uint(b)
				}
				if v1 {
					w1 |= 1 << uint(b)
				}
			}
			s0.SetInputWord(id, w, w0)
			s1.SetInputWord(id, w, w1)
		}
	}
	s0.Run()
	s1.Run()

	rep := &TemporalReport{E: make([]float64, nl.NumNodes()), Pairs: words * 64}
	nl.LiveNodes(func(n *netlist.Node) {
		id := n.ID()
		v0, v1 := s0.Value(id), s1.Value(id)
		diff := 0
		for w := range v0 {
			diff += popcountWord((v0[w] ^ v1[w]) & s0.ValidMask(w))
		}
		e := float64(diff) / float64(rep.Pairs)
		rep.E[id] = e
		rep.Total += nl.Load(id) * e
	})
	return rep, nil
}

func popcountWord(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Package power implements the paper's zero-delay power model (Section 2):
//
//	P_circuit = 1/2 Vdd^2 f * sum_i C(i) * E(i)
//
// where C(i) is the capacitive load of stem signal i and E(i) its
// transition probability. Assuming temporal independence of the primary
// inputs, E(i) = 2 p(i) (1 - p(i)) with p(i) the signal probability.
// Like the paper's tables, the package reports the technology-level sum
// sum_i C(i)*E(i); Scale converts it to watts for given Vdd and f.
//
// The Model caches the transition probability of every signal, exactly as
// POWDER stores them during the initial estimation, and updates the cache
// incrementally over the transitive fanout of a modified signal.
package power

import (
	"fmt"
	"math"
	"time"

	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/sim"
)

// Model estimates and tracks the switching power of one netlist.
type Model struct {
	nl *netlist.Netlist
	s  *sim.Simulator
	// e caches the transition probability per node ID; NaN-free: dead or
	// unknown nodes hold zero and are never summed.
	e []float64
	// pinned holds externally measured transition densities per node ID
	// (NaN = unpinned). A workload activity profile pins E(i) at the
	// primary inputs, overriding the 2p(1-p) independence value there;
	// internal stems keep the propagated model. nil when nothing is
	// pinned.
	pinned []float64
	// o records estimate/refresh/resync metrics; nil disables.
	o *obs.Observer
}

// New builds a power model over a simulator that has already been run.
func New(nl *netlist.Netlist, s *sim.Simulator) *Model {
	m := &Model{nl: nl, s: s}
	m.Reestimate()
	return m
}

// SetObserver attaches an observer recording model update metrics
// ("power.refreshes", "power.resyncs", "power.resync.seconds").
func (m *Model) SetObserver(o *obs.Observer) { m.o = o }

// Sim returns the underlying simulator.
func (m *Model) Sim() *sim.Simulator { return m.s }

// Reestimate recomputes every cached transition probability from the
// current simulation values (the paper's initial power_estimate step).
func (m *Model) Reestimate() {
	if len(m.e) < m.nl.NumNodes() {
		e := make([]float64, m.nl.NumNodes())
		copy(e, m.e)
		m.e = e
	}
	m.nl.LiveNodes(func(n *netlist.Node) {
		m.e[n.ID()] = m.applyPin(n.ID(), transition(m.s.Probability(n.ID())))
	})
}

// PinInputs pins the transition density of each primary input to the
// given per-input values (in input order, matching nl.Inputs()); NaN
// entries leave the input on the independence model. Pins come from a
// measured workload activity profile and survive Reestimate, Refresh,
// and Resync. Panics on a length mismatch, mirroring
// sim.SetInputsRandom.
func (m *Model) PinInputs(toggles []float64) {
	ins := m.nl.Inputs()
	if len(toggles) != len(ins) {
		panic(fmt.Sprintf("power: %d toggle densities for %d inputs", len(toggles), len(ins)))
	}
	m.pinned = make([]float64, m.nl.NumNodes())
	for i := range m.pinned {
		m.pinned[i] = math.NaN()
	}
	for i, id := range ins {
		m.pinned[id] = toggles[i]
	}
	for _, id := range ins {
		m.e[id] = m.applyPin(id, m.e[id])
	}
}

// applyPin substitutes a pinned density for the model value, if any.
func (m *Model) applyPin(id netlist.NodeID, e float64) float64 {
	if m.pinned == nil || int(id) >= len(m.pinned) {
		return e
	}
	if p := m.pinned[id]; !math.IsNaN(p) {
		return p
	}
	return e
}

// transition converts a signal probability to a transition probability
// under the temporal-independence assumption.
func transition(p float64) float64 { return 2 * p * (1 - p) }

// TransitionProb returns the cached transition probability E(i) of a stem.
func (m *Model) TransitionProb(id netlist.NodeID) float64 { return m.e[id] }

// TransitionProbOf computes the transition probability a signal would have
// with the given signal probability; exported for what-if evaluation.
func TransitionProbOf(p float64) float64 { return transition(p) }

// SignalPower returns C(i)*E(i) for one stem signal.
func (m *Model) SignalPower(id netlist.NodeID) float64 {
	return m.nl.Load(id) * m.e[id]
}

// Total returns sum_i C(i)*E(i) over all live stems, the quantity the
// paper's Table 1 reports as "power".
func (m *Model) Total() float64 {
	total := 0.0
	m.nl.LiveNodes(func(n *netlist.Node) {
		total += m.nl.Load(n.ID()) * m.e[n.ID()]
	})
	return total
}

// PerNode returns C(i)*E(i) for every node ID (dead nodes report zero),
// appending into buf when it has capacity. Diffing two captures taken
// around a netlist edit yields the per-node decomposition of the power
// change over the touched cone — the attribution the run ledger records
// for every applied substitution.
func (m *Model) PerNode(buf []float64) []float64 {
	out := buf[:0]
	n := m.nl.NumNodes()
	if cap(out) < n {
		out = make([]float64, n)
	} else {
		out = out[:n]
		for i := range out {
			out[i] = 0
		}
	}
	m.nl.LiveNodes(func(node *netlist.Node) {
		id := node.ID()
		out[id] = m.nl.Load(id) * m.e[id]
	})
	return out
}

// Refresh resimulates the transitive fanout of the given roots and updates
// the cached transition probabilities there (the paper's
// power_estimate_update after a performed substitution). Call it after a
// local netlist edit; for structural changes that added nodes, call
// Resync instead.
func (m *Model) Refresh(roots ...netlist.NodeID) {
	m.o.Counter("power.refreshes").Inc()
	m.s.ResimFrom(roots...)
	seen := make(map[netlist.NodeID]bool)
	var walk func(id netlist.NodeID)
	walk = func(id netlist.NodeID) {
		if seen[id] {
			return
		}
		seen[id] = true
		m.e[id] = m.applyPin(id, transition(m.s.Probability(id)))
		for _, b := range m.nl.Node(id).Fanouts() {
			if !b.IsPO() {
				walk(b.Gate)
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
}

// Resync rebuilds the simulator tables after nodes were added or removed,
// then reestimates all probabilities.
func (m *Model) Resync() {
	start := time.Now()
	m.s.Resync()
	m.Reestimate()
	m.o.Counter("power.resyncs").Inc()
	m.o.Histogram("power.resync.seconds").ObserveSince(start)
}

// Scale converts a sum C*E value into the full Eq. 1 power for the given
// supply voltage (volts) and clock frequency (hertz); the capacitance unit
// is taken as 1 fF per unit, so the result is in watts * 1e-15 per
// capacitance-unit scale. Callers wanting absolute watts must know their
// library's capacitance unit.
func Scale(sumCE, vdd, freq float64) float64 { return 0.5 * vdd * vdd * freq * sumCE }

// Report is a snapshot of the three quantities Table 1 tracks per circuit.
type Report struct {
	Power float64 // sum C*E
	Area  float64
	Gates int
}

// Snapshot captures the current power and area of the netlist.
func (m *Model) Snapshot() Report {
	return Report{Power: m.Total(), Area: m.nl.Area(), Gates: m.nl.GateCount()}
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("power=%.3f area=%.0f gates=%d", r.Power, r.Area, r.Gates)
}

// Options configures Estimate.
type Options struct {
	// Words is the number of 64-bit sample words (default 64 = 4096
	// vectors) when random vectors are used.
	Words int
	// Seed seeds the random vector generator (default 1).
	Seed int64
	// InputProbs optionally gives per-input signal probabilities.
	InputProbs []float64
	// InputToggles optionally pins per-input transition densities
	// measured from a workload activity profile (NaN entries stay on the
	// independence model). See Model.PinInputs.
	InputToggles []float64
	// ExhaustiveLimit: if the circuit has at most this many inputs (and
	// InputProbs is nil), exhaustive vectors are used and the estimate is
	// exact. Default 14.
	ExhaustiveLimit int
	// Obs, when non-nil, is attached to the model: Estimate records
	// "power.estimate.seconds" and the model counts refreshes/resyncs.
	Obs *obs.Observer
}

func (o *Options) fill() {
	if o.Words <= 0 {
		o.Words = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 14
	}
}

// Estimate builds a simulator and power model for the netlist using the
// given options. It is the one-call entry point used by tools and tests.
func Estimate(nl *netlist.Netlist, opts Options) *Model {
	opts.fill()
	start := time.Now()
	words := opts.Words
	exhaustive := opts.InputProbs == nil && len(nl.Inputs()) <= opts.ExhaustiveLimit
	if exhaustive {
		need := (1<<uint(len(nl.Inputs())) + 63) / 64
		if need > words {
			words = need
		}
	}
	s := sim.New(nl, words)
	if exhaustive {
		if err := s.SetInputsExhaustive(); err != nil {
			// Fall back to random vectors; the limit check above makes this
			// unreachable in practice.
			s.SetInputsRandom(opts.Seed, opts.InputProbs)
		}
	} else {
		s.SetInputsRandom(opts.Seed, opts.InputProbs)
	}
	s.Run()
	m := New(nl, s)
	if opts.InputToggles != nil {
		m.PinInputs(opts.InputToggles)
	}
	m.SetObserver(opts.Obs)
	opts.Obs.Counter("power.estimates").Inc()
	opts.Obs.Histogram("power.estimate.seconds").ObserveSince(start)
	return m
}

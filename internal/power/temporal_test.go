package power

import (
	"math"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// xorPair builds x = a ^ b.
func xorPair(t *testing.T) (*netlist.Netlist, netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("xp", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	x, err := nl.AddGate("x", lib.Cell("xor2"), []netlist.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("x", x); err != nil {
		t.Fatal(err)
	}
	return nl, x
}

func TestTemporalMatchesIndependenceByDefault(t *testing.T) {
	// With default toggle rates 2p(1-p), the measured E of a signal
	// approaches the independence-model value.
	nl, x := xorPair(t)
	rep, err := TemporalEstimate(nl, 256, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// x = a^b with p=0.5 independent: E(x) = 0.5.
	if math.Abs(rep.E[x]-0.5) > 0.03 {
		t.Errorf("E(x) = %v, want about 0.5", rep.E[x])
	}
	m := Estimate(nl, Options{})
	if math.Abs(rep.Total-m.Total()) > 0.08*m.Total() {
		t.Errorf("temporal total %v too far from independence total %v", rep.Total, m.Total())
	}
}

func TestTemporalCapturesCorrelation(t *testing.T) {
	// Both inputs toggle on every cycle: the XOR output never toggles.
	// The independence model would wrongly report E(x) = 0.5.
	nl, x := xorPair(t)
	rep, err := TemporalEstimate(nl, 128, 3, nil, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.E[x] != 0 {
		t.Errorf("synchronously toggling XOR inputs: E(x) = %v, want 0", rep.E[x])
	}
	// The inputs themselves toggle with probability 1.
	for _, in := range nl.Inputs() {
		if rep.E[in] != 1 {
			t.Errorf("E(input) = %v, want 1", rep.E[in])
		}
	}
}

func TestTemporalFrozenInputs(t *testing.T) {
	// Toggle rate 0: nothing in the circuit switches.
	nl, _ := xorPair(t)
	rep, err := TemporalEstimate(nl, 64, 5, nil, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Errorf("frozen inputs must give zero power, got %v", rep.Total)
	}
}

func TestTemporalValidation(t *testing.T) {
	nl, _ := xorPair(t)
	if _, err := TemporalEstimate(nl, 8, 1, []float64{0.5}, nil); err == nil {
		t.Errorf("wrong probs length should fail")
	}
	if _, err := TemporalEstimate(nl, 8, 1, nil, []float64{0.5}); err == nil {
		t.Errorf("wrong toggles length should fail")
	}
}

func TestTemporalBiasedProbabilities(t *testing.T) {
	// p(a)=0.9 with stationary toggle 2*0.9*0.1=0.18: E(a) ~ 0.18.
	nl, _ := xorPair(t)
	rep, err := TemporalEstimate(nl, 512, 7, []float64{0.9, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := nl.Inputs()[0]
	if math.Abs(rep.E[a]-0.18) > 0.02 {
		t.Errorf("E(a) = %v, want about 0.18", rep.E[a])
	}
}

package power

import (
	"math"
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// xorPair builds x = a ^ b.
func xorPair(t *testing.T) (*netlist.Netlist, netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("xp", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	x, err := nl.AddGate("x", lib.Cell("xor2"), []netlist.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("x", x); err != nil {
		t.Fatal(err)
	}
	return nl, x
}

func TestTemporalMatchesIndependenceByDefault(t *testing.T) {
	// With default toggle rates 2p(1-p), the measured E of a signal
	// approaches the independence-model value.
	nl, x := xorPair(t)
	rep, err := TemporalEstimate(nl, 256, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// x = a^b with p=0.5 independent: E(x) = 0.5.
	if math.Abs(rep.E[x]-0.5) > 0.03 {
		t.Errorf("E(x) = %v, want about 0.5", rep.E[x])
	}
	m := Estimate(nl, Options{})
	if math.Abs(rep.Total-m.Total()) > 0.08*m.Total() {
		t.Errorf("temporal total %v too far from independence total %v", rep.Total, m.Total())
	}
}

func TestTemporalCapturesCorrelation(t *testing.T) {
	// Both inputs toggle on every cycle: the XOR output never toggles.
	// The independence model would wrongly report E(x) = 0.5.
	nl, x := xorPair(t)
	rep, err := TemporalEstimate(nl, 128, 3, nil, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.E[x] != 0 {
		t.Errorf("synchronously toggling XOR inputs: E(x) = %v, want 0", rep.E[x])
	}
	// The inputs themselves toggle with probability 1.
	for _, in := range nl.Inputs() {
		if rep.E[in] != 1 {
			t.Errorf("E(input) = %v, want 1", rep.E[in])
		}
	}
}

func TestTemporalFrozenInputs(t *testing.T) {
	// Toggle rate 0: nothing in the circuit switches.
	nl, _ := xorPair(t)
	rep, err := TemporalEstimate(nl, 64, 5, nil, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Errorf("frozen inputs must give zero power, got %v", rep.Total)
	}
}

func TestTemporalValidation(t *testing.T) {
	nl, _ := xorPair(t)
	if _, err := TemporalEstimate(nl, 8, 1, []float64{0.5}, nil); err == nil {
		t.Errorf("wrong probs length should fail")
	}
	if _, err := TemporalEstimate(nl, 8, 1, nil, []float64{0.5}); err == nil {
		t.Errorf("wrong toggles length should fail")
	}
}

func TestTemporalBiasedProbabilities(t *testing.T) {
	// p(a)=0.9 with stationary toggle 2*0.9*0.1=0.18: E(a) ~ 0.18.
	nl, _ := xorPair(t)
	rep, err := TemporalEstimate(nl, 512, 7, []float64{0.9, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := nl.Inputs()[0]
	if math.Abs(rep.E[a]-0.18) > 0.02 {
		t.Errorf("E(a) = %v, want about 0.18", rep.E[a])
	}
}

func TestTemporalWordsDefaultReportsPairs(t *testing.T) {
	// words <= 0 defaults to 64 words; Pairs must report the 4096 pairs
	// actually simulated, not echo the caller's request.
	nl, _ := xorPair(t)
	for _, words := range []int{0, -5} {
		rep, err := TemporalEstimate(nl, words, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pairs != 64*64 {
			t.Errorf("words=%d: Pairs = %d, want 4096", words, rep.Pairs)
		}
	}
	// A tiny explicit request is honored and reported.
	rep, err := TemporalEstimate(nl, 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 64 {
		t.Errorf("words=1: Pairs = %d, want 64", rep.Pairs)
	}
}

func TestTemporalRejectsOutOfRange(t *testing.T) {
	nl, _ := xorPair(t)
	if _, err := TemporalEstimate(nl, 8, 1, []float64{1.5, 0.5}, nil); err == nil {
		t.Error("probability above 1 accepted")
	}
	if _, err := TemporalEstimate(nl, 8, 1, []float64{math.NaN(), 0.5}, nil); err == nil {
		t.Error("NaN probability accepted")
	}
	if _, err := TemporalEstimate(nl, 8, 1, nil, []float64{-0.1, 0.5}); err == nil {
		t.Error("negative toggle rate accepted")
	}
	// NaN toggle entries are the documented "use 2p(1-p)" marker.
	if _, err := TemporalEstimate(nl, 8, 1, nil, []float64{math.NaN(), 0.5}); err != nil {
		t.Errorf("NaN toggle marker rejected: %v", err)
	}
}

// Property: for random per-input probabilities, explicitly passing the
// stationary toggles 2p(1-p) reproduces the independence model's total
// within sampling tolerance — the temporal estimator degrades gracefully
// to the paper's model when no correlation information exists.
func TestTemporalIndependencePropertyRandomProbs(t *testing.T) {
	lib := cellib.Lib2()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		nl := netlist.New("prop", lib)
		a, _ := nl.AddInput("a")
		b, _ := nl.AddInput("b")
		c, _ := nl.AddInput("c")
		d, err := nl.AddGate("d", lib.Cell("xor2"), []netlist.NodeID{a, c})
		if err != nil {
			t.Fatal(err)
		}
		f, err := nl.AddGate("f", lib.Cell("and2"), []netlist.NodeID{d, b})
		if err != nil {
			t.Fatal(err)
		}
		g, err := nl.AddGate("g", lib.Cell("or2"), []netlist.NodeID{f, a})
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.AddOutput("g", g); err != nil {
			t.Fatal(err)
		}
		probs := make([]float64, 3)
		toggles := make([]float64, 3)
		for i := range probs {
			// Keep away from the extremes where relative tolerance blows up.
			probs[i] = 0.1 + 0.8*rng.Float64()
			toggles[i] = 2 * probs[i] * (1 - probs[i])
		}
		rep, err := TemporalEstimate(nl, 512, int64(1000+trial), probs, toggles)
		if err != nil {
			t.Fatal(err)
		}
		m := Estimate(nl, Options{Words: 512, InputProbs: probs})
		want := m.Total()
		if math.Abs(rep.Total-want) > 0.10*want+0.02 {
			t.Errorf("trial %d probs %v: temporal total %g vs independence %g",
				trial, probs, rep.Total, want)
		}
	}
}

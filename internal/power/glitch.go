package power

import (
	"container/heap"
	"math/rand"

	"powder/internal/netlist"
)

// The paper's power model is zero-delay: glitches (spurious transitions
// caused by unbalanced path delays) are ignored, and the paper notes they
// typically contribute about 20% of total power. GlitchEstimate quantifies
// that contribution for a given netlist: it runs an event-driven timed
// simulation (transport-delay model, gate delays from the library's linear
// delay model) over random vector pairs and counts *all* output
// transitions, glitches included.

// GlitchReport compares zero-delay and timed switching activity.
type GlitchReport struct {
	// ZeroDelay is sum C(i)*E_zd(i) with E_zd counting at most one
	// transition per signal per vector pair (the paper's model).
	ZeroDelay float64
	// Timed is sum C(i)*E_t(i) with E_t counting every transition of the
	// timed waveform, glitches included.
	Timed float64
	// Pairs is the number of simulated vector pairs.
	Pairs int
	// Transitions[i] is the total timed transition count of node i.
	Transitions []int
	// ZeroTransitions[i] is the zero-delay transition count (0/1 per pair).
	ZeroTransitions []int
}

// GlitchFraction returns the share of timed power caused by glitches.
func (r *GlitchReport) GlitchFraction() float64 {
	if r.Timed == 0 {
		return 0
	}
	return (r.Timed - r.ZeroDelay) / r.Timed
}

// event is one scheduled signal change.
type event struct {
	time float64
	seq  int // tie-break for determinism
	node netlist.NodeID
	val  bool
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// GlitchEstimate simulates pairs of random vectors (v0 settles, then v1 is
// applied at t=0) and reports zero-delay vs timed switched capacitance.
// probs optionally biases the inputs as in Options.InputProbs.
func GlitchEstimate(nl *netlist.Netlist, pairs int, seed int64, probs []float64) *GlitchReport {
	if pairs <= 0 {
		pairs = 256
	}
	rng := rand.New(rand.NewSource(seed))
	order := nl.TopoOrder()
	n := nl.NumNodes()

	// Per-gate transport delay under the current loads.
	delay := make([]float64, n)
	for _, id := range order {
		nd := nl.Node(id)
		if nd.Kind() == netlist.KindGate {
			delay[id] = nd.Cell().Delay(nl.Load(id))
		}
	}

	rep := &GlitchReport{
		Pairs:           pairs,
		Transitions:     make([]int, n),
		ZeroTransitions: make([]int, n),
	}

	val := make([]bool, n)     // current timed value
	settled := make([]bool, n) // steady-state value under v0 / v1
	inputs := nl.Inputs()
	v0 := make([]bool, len(inputs))
	v1 := make([]bool, len(inputs))

	evalGate := func(id netlist.NodeID, from []bool) bool {
		nd := nl.Node(id)
		var in [6]bool
		for pin, f := range nd.Fanins() {
			in[pin] = from[f]
		}
		return nd.Cell().TT.Eval(mintermOf(in[:len(nd.Fanins())]))
	}

	for p := 0; p < pairs; p++ {
		for i := range v0 {
			pr := 0.5
			if probs != nil {
				pr = probs[i]
			}
			v0[i] = rng.Float64() < pr
			v1[i] = rng.Float64() < pr
		}

		// Settle at v0 (steady state = zero-delay evaluation).
		for i, id := range inputs {
			val[id] = v0[i]
		}
		for _, id := range order {
			if nl.Node(id).Kind() == netlist.KindGate {
				val[id] = evalGate(id, val)
			}
		}

		// Zero-delay reference: steady state at v1.
		for i, id := range inputs {
			settled[id] = v1[i]
		}
		for _, id := range order {
			if nl.Node(id).Kind() == netlist.KindGate {
				settled[id] = evalGate(id, settled)
			} else if nl.Node(id).Kind() == netlist.KindInput {
				// settled already holds v1 for inputs
				_ = id
			}
		}
		for _, id := range order {
			if settled[id] != val[id] {
				rep.ZeroTransitions[id]++
			}
		}

		// Timed simulation: apply v1 at t=0.
		var q eventQueue
		seq := 0
		for i, id := range inputs {
			if v1[i] != val[id] {
				heap.Push(&q, event{time: 0, seq: seq, node: id, val: v1[i]})
				seq++
			}
		}
		for q.Len() > 0 {
			e := heap.Pop(&q).(event)
			if val[e.node] == e.val {
				continue // superseded change
			}
			val[e.node] = e.val
			rep.Transitions[e.node]++
			for _, b := range nl.Node(e.node).Fanouts() {
				if b.IsPO() {
					continue
				}
				g := b.Gate
				nv := evalGate(g, val)
				// Transport model: schedule the recomputed value; arrivals
				// that restore the scheduled-to value are filtered at pop.
				heap.Push(&q, event{time: e.time + delay[g], seq: seq, node: g, val: nv})
				seq++
			}
		}
	}

	// Convert counts to switched capacitance.
	for _, id := range order {
		c := nl.Load(id)
		rep.ZeroDelay += c * float64(rep.ZeroTransitions[id]) / float64(pairs)
		rep.Timed += c * float64(rep.Transitions[id]) / float64(pairs)
	}
	return rep
}

func mintermOf(in []bool) uint {
	var m uint
	for i, v := range in {
		if v {
			m |= 1 << uint(i)
		}
	}
	return m
}

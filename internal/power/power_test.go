package power

import (
	"math"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sim"
)

// fig2A builds the paper's Figure 2 circuit A (d = a^c, f = d*b) with the
// extra AND gate e = a*b present, matching the figure.
func fig2A(t *testing.T) (*netlist.Netlist, map[string]netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("fig2a", lib)
	ids := make(map[string]netlist.NodeID)
	for _, in := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(in)
		if err != nil {
			t.Fatal(err)
		}
		ids[in] = id
	}
	mk := func(name, cell string, fanins ...netlist.NodeID) {
		id, err := nl.AddGate(name, lib.Cell(cell), fanins)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	mk("e", "and2", ids["a"], ids["b"])
	mk("d", "xor2", ids["a"], ids["c"])
	mk("f", "and2", ids["d"], ids["b"])
	if err := nl.AddOutput("f", ids["f"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", ids["e"]); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestPaperFigure2Power(t *testing.T) {
	// The paper computes sum C*E = 1.555 for circuit A and 1.132 for
	// circuit B, with AND input load 1 and XOR input load 2, counting only
	// the internal signals a..g (no primary-output pad load).
	nl, ids := fig2A(t)
	nl.POLoad = 0
	m := Estimate(nl, Options{})

	// Circuit A by hand: E(a)=E(b)=E(c)=0.5, E(d)=0.5, E(e)=2*0.25*0.75=0.375,
	// E(f)=2*0.25*0.75=0.375.
	// Loads: C(a)=1(e)+2(d)=3, C(b)=1(e)+1(f)=2, C(c)=2(d), C(d)=1(f), C(e)=0, C(f)=0.
	// sum = 3*0.5 + 2*0.5 + 2*0.5 + 1*0.5 = 1.5+1+1+0.5 = 4.0? The paper's
	// 1.555 counts a different subset; our model includes every stem. What
	// matters for the algorithm is the *difference* between A and B.
	powerA := m.Total()

	// Rewire to circuit B: d's pin a moves to e (g = (a*b)^c).
	if err := nl.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	m.Refresh(ids["d"], ids["a"], ids["e"])
	powerB := m.Total()
	if powerB >= powerA {
		t.Errorf("figure 2 rewiring must reduce power: A=%v B=%v", powerA, powerB)
	}
}

func TestTransitionProbability(t *testing.T) {
	if got := TransitionProbOf(0.5); got != 0.5 {
		t.Errorf("E(0.5) = %v, want 0.5", got)
	}
	if got := TransitionProbOf(0); got != 0 {
		t.Errorf("E(0) = %v, want 0", got)
	}
	if got := TransitionProbOf(1); got != 0 {
		t.Errorf("E(1) = %v, want 0", got)
	}
	if got := TransitionProbOf(0.25); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("E(0.25) = %v, want 0.375", got)
	}
}

func TestExactTotalSmallCircuit(t *testing.T) {
	nl, ids := fig2A(t)
	m := Estimate(nl, Options{}) // 3 inputs -> exhaustive, exact
	// E values exactly: a,b,c,d = 0.5; e,f = 0.375.
	for _, name := range []string{"a", "b", "c", "d"} {
		if got := m.TransitionProb(ids[name]); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("E(%s) = %v, want 0.5", name, got)
		}
	}
	for _, name := range []string{"e", "f"} {
		if got := m.TransitionProb(ids[name]); math.Abs(got-0.375) > 1e-12 {
			t.Errorf("E(%s) = %v, want 0.375", name, got)
		}
	}
	// Total with POLoad=1: C(a)=3, C(b)=2, C(c)=2, C(d)=1, C(e)=1, C(f)=1.
	want := 3*0.5 + 2*0.5 + 2*0.5 + 1*0.5 + 1*0.375 + 1*0.375
	if got := m.Total(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if got := m.SignalPower(ids["a"]); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("SignalPower(a) = %v, want 1.5", got)
	}
}

func TestRefreshMatchesReestimate(t *testing.T) {
	nl, ids := fig2A(t)
	m := Estimate(nl, Options{})
	if err := nl.ReplaceFanin(ids["f"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	m.Refresh(ids["f"], ids["d"], ids["e"])
	incr := m.Total()

	// Fresh estimate from scratch must agree exactly (same vectors:
	// exhaustive).
	m2 := Estimate(nl, Options{})
	full := m2.Total()
	if math.Abs(incr-full) > 1e-12 {
		t.Errorf("incremental %v vs full %v", incr, full)
	}
}

func TestResyncAfterAdd(t *testing.T) {
	nl, ids := fig2A(t)
	m := Estimate(nl, Options{})
	lib := nl.Lib
	g, err := nl.AddGate("n1", lib.Cell("nand2"), []netlist.NodeID{ids["e"], ids["f"]})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("n1", g); err != nil {
		t.Fatal(err)
	}
	m.Resync()
	if m.TransitionProb(g) == 0 {
		t.Errorf("new gate has no transition probability")
	}
	m2 := Estimate(nl, Options{})
	if math.Abs(m.Total()-m2.Total()) > 1e-12 {
		t.Errorf("Resync total %v vs fresh %v", m.Total(), m2.Total())
	}
}

func TestScale(t *testing.T) {
	// 0.5 * 5^2 * 1e6 * 2 = 25e6
	if got := Scale(2, 5, 1e6); got != 25e6 {
		t.Errorf("Scale = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	nl, _ := fig2A(t)
	m := Estimate(nl, Options{})
	r := m.Snapshot()
	if r.Gates != 3 || r.Area != nl.Area() || r.Power != m.Total() {
		t.Errorf("snapshot = %+v", r)
	}
	if r.String() == "" {
		t.Errorf("empty report string")
	}
}

func TestEstimateRandomFallbackForWideCircuits(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("wide", lib)
	var prev netlist.NodeID
	for i := 0; i < 20; i++ {
		id, err := nl.AddInput(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			prev = id
			continue
		}
		g, err := nl.AddGate("", lib.Cell("and2"), []netlist.NodeID{prev, id})
		if err != nil {
			t.Fatal(err)
		}
		prev = g
	}
	if err := nl.AddOutput("o", prev); err != nil {
		t.Fatal(err)
	}
	m := Estimate(nl, Options{Words: 16, Seed: 2})
	if m.Sim().NumVectors() != 16*64 {
		t.Errorf("expected random vectors for 20-input circuit, got %d", m.Sim().NumVectors())
	}
	if m.Total() <= 0 {
		t.Errorf("power must be positive")
	}
}

func TestDeepAndChainProbability(t *testing.T) {
	// p of an AND chain of k inputs is 2^-k; check E is tiny but
	// nonnegative, and exact under exhaustive simulation.
	lib := cellib.Lib2()
	nl := netlist.New("chain", lib)
	var prev netlist.NodeID
	for i := 0; i < 8; i++ {
		id, err := nl.AddInput(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			prev = id
			continue
		}
		g, err := nl.AddGate("", lib.Cell("and2"), []netlist.NodeID{prev, id})
		if err != nil {
			t.Fatal(err)
		}
		prev = g
	}
	if err := nl.AddOutput("o", prev); err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl, 4)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	m := New(nl, s)
	p := s.Probability(prev)
	if math.Abs(p-1.0/256) > 1e-12 {
		t.Errorf("p(chain) = %v, want %v", p, 1.0/256)
	}
	wantE := 2 * p * (1 - p)
	if got := m.TransitionProb(prev); math.Abs(got-wantE) > 1e-12 {
		t.Errorf("E(chain) = %v, want %v", got, wantE)
	}
}

func TestPinInputsOverridesAndSurvivesRefresh(t *testing.T) {
	nl, ids := fig2A(t)
	m := Estimate(nl, Options{})
	// Pin a's density to a measured 0.9 and c's to 0.1; b stays on the
	// independence model (NaN marker).
	pins := []float64{0.9, math.NaN(), 0.1}
	m.PinInputs(pins)
	if m.TransitionProb(ids["a"]) != 0.9 || m.TransitionProb(ids["c"]) != 0.1 {
		t.Fatalf("pins not applied: E(a)=%g E(c)=%g",
			m.TransitionProb(ids["a"]), m.TransitionProb(ids["c"]))
	}
	if m.TransitionProb(ids["b"]) != 0.5 {
		t.Fatalf("NaN pin disturbed b: %g", m.TransitionProb(ids["b"]))
	}
	// Pins survive a full reestimate and a TFO refresh.
	m.Reestimate()
	if m.TransitionProb(ids["a"]) != 0.9 {
		t.Fatalf("pin lost after Reestimate: %g", m.TransitionProb(ids["a"]))
	}
	m.Refresh(ids["a"])
	if m.TransitionProb(ids["a"]) != 0.9 {
		t.Fatalf("pin lost after Refresh: %g", m.TransitionProb(ids["a"]))
	}
	m.Resync()
	if m.TransitionProb(ids["c"]) != 0.1 {
		t.Fatalf("pin lost after Resync: %g", m.TransitionProb(ids["c"]))
	}
	// Internal stems keep the propagated model (d = a^c under exhaustive
	// p=0.5 inputs still has E=0.5: the pin changes E at the PI stem, not
	// the sampled probabilities).
	if m.TransitionProb(ids["d"]) != 0.5 {
		t.Fatalf("internal stem disturbed: %g", m.TransitionProb(ids["d"]))
	}
	// The pinned model totals differently from the uniform one.
	uniform := Estimate(nl, Options{})
	if m.Total() == uniform.Total() {
		t.Fatal("pinned total identical to uniform total")
	}
}

func TestEstimateInputTogglesOption(t *testing.T) {
	nl, ids := fig2A(t)
	m := Estimate(nl, Options{InputToggles: []float64{0.2, 0.2, 0.2}})
	for _, in := range []string{"a", "b", "c"} {
		if m.TransitionProb(ids[in]) != 0.2 {
			t.Fatalf("E(%s) = %g, want pinned 0.2", in, m.TransitionProb(ids[in]))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	m.PinInputs([]float64{0.5})
}

package power

import (
	"math"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// invChain builds a pure inverter chain, which can never glitch.
func invChain(t *testing.T, k int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("chain", lib)
	in, err := nl.AddInput("in")
	if err != nil {
		t.Fatal(err)
	}
	prev := in
	for i := 0; i < k; i++ {
		g, err := nl.AddGate("", lib.Cell("inv"), []netlist.NodeID{prev})
		if err != nil {
			t.Fatal(err)
		}
		prev = g
	}
	if err := nl.AddOutput("out", prev); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestGlitchFreeChain(t *testing.T) {
	nl := invChain(t, 5)
	rep := GlitchEstimate(nl, 200, 1, nil)
	if math.Abs(rep.Timed-rep.ZeroDelay) > 1e-9 {
		t.Errorf("an inverter chain cannot glitch: timed %v vs zero-delay %v",
			rep.Timed, rep.ZeroDelay)
	}
	if rep.GlitchFraction() > 1e-9 {
		t.Errorf("glitch fraction should be 0, got %v", rep.GlitchFraction())
	}
	// Every timed transition count must equal the zero-delay count.
	for id := range rep.Transitions {
		if rep.Transitions[id] != rep.ZeroTransitions[id] {
			t.Fatalf("node %d: %d timed vs %d zero-delay transitions",
				id, rep.Transitions[id], rep.ZeroTransitions[id])
		}
	}
}

// unbalancedXor builds x = a XOR chain(a): the classic glitch generator —
// both XOR inputs change on every a-transition, at different times.
func unbalancedXor(t *testing.T, chainLen int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("hazard", lib)
	a, err := nl.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	prev := a
	for i := 0; i < chainLen; i++ {
		g, err := nl.AddGate("", lib.Cell("inv"), []netlist.NodeID{prev})
		if err != nil {
			t.Fatal(err)
		}
		prev = g
	}
	x, err := nl.AddGate("x", lib.Cell("xor2"), []netlist.NodeID{a, prev})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("x", x); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestGlitchDetectedOnUnbalancedPaths(t *testing.T) {
	// Even chain length: x = a ^ a = 0 statically, but every input flip
	// produces a glitch pulse on x in the timed waveform.
	nl := unbalancedXor(t, 2)
	rep := GlitchEstimate(nl, 400, 1, nil)
	if rep.Timed <= rep.ZeroDelay {
		t.Fatalf("unbalanced XOR must glitch: timed %v, zero-delay %v",
			rep.Timed, rep.ZeroDelay)
	}
	if rep.GlitchFraction() <= 0 {
		t.Errorf("glitch fraction should be positive")
	}
	x := nl.FindNode("x")
	if rep.ZeroTransitions[x] != 0 {
		t.Errorf("x is constant, zero-delay transitions must be 0, got %d", rep.ZeroTransitions[x])
	}
	if rep.Transitions[x] == 0 {
		t.Errorf("x must glitch in the timed waveform")
	}
}

func TestTimedNeverBelowZeroDelay(t *testing.T) {
	// Per signal, the timed waveform makes at least the zero-delay number
	// of transitions (it must at minimum reach the new steady state).
	nl := unbalancedXor(t, 3)
	rep := GlitchEstimate(nl, 300, 9, nil)
	for id := range rep.Transitions {
		if rep.Transitions[id] < rep.ZeroTransitions[id] {
			t.Fatalf("node %d: timed %d < zero-delay %d transitions",
				id, rep.Transitions[id], rep.ZeroTransitions[id])
		}
	}
	if rep.Timed < rep.ZeroDelay-1e-9 {
		t.Errorf("total timed power below zero-delay power")
	}
}

func TestGlitchZeroDelayMatchesModel(t *testing.T) {
	// The zero-delay side of the glitch report approximates the Model's
	// sum C*E (both count one transition per pair when the steady state
	// changes); with many pairs they converge.
	lib := cellib.Lib2()
	nl := netlist.New("m", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	rep := GlitchEstimate(nl, 8000, 5, nil)
	m := Estimate(nl, Options{})
	if math.Abs(rep.ZeroDelay-m.Total()) > 0.12*m.Total() {
		t.Errorf("zero-delay glitch reference %v too far from model %v", rep.ZeroDelay, m.Total())
	}
}

func TestGlitchDeterministic(t *testing.T) {
	nl := unbalancedXor(t, 2)
	r1 := GlitchEstimate(nl, 100, 42, nil)
	r2 := GlitchEstimate(nl, 100, 42, nil)
	if r1.Timed != r2.Timed || r1.ZeroDelay != r2.ZeroDelay {
		t.Errorf("same seed must give identical glitch estimates")
	}
}

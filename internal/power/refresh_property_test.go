package power

import (
	"math"
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sim"
)

// randomMapped builds a seeded random DAG over lib2 cells: numIn inputs,
// numGates gates with fanins drawn from everything built so far, and the
// last few gates anchored as primary outputs.
func randomMapped(t *testing.T, rng *rand.Rand, numIn, numGates int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("randprop", lib)
	var ids []netlist.NodeID
	for i := 0; i < numIn; i++ {
		id, err := nl.AddInput("x" + string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21", "nand3"}
	for i := 0; i < numGates; i++ {
		cell := lib.Cell(cells[rng.Intn(len(cells))])
		fanins := make([]netlist.NodeID, cell.NumPins())
		for p := range fanins {
			fanins[p] = ids[rng.Intn(len(ids))]
		}
		id, err := nl.AddGate("g"+itoa(i), cell, fanins)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 4; i++ {
		if err := nl.AddOutput("o"+itoa(i), ids[len(ids)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	return nl
}

func itoa(i int) string {
	if i >= 10 {
		return itoa(i/10) + itoa(i%10)
	}
	return string(rune('0' + i))
}

// TestRefreshMatchesReestimateProperty is the incremental-update
// soundness property: after any sequence of ReplaceFanin edits, each
// followed by the engine's Refresh on the touched gate, every cached
// transition probability must match a from-scratch estimate over the
// same input vectors to 1e-9 — for uniform and biased input
// probabilities alike.
func TestRefreshMatchesReestimateProperty(t *testing.T) {
	const (
		numIn, numGates = 6, 40
		words           = 32
		edits           = 60
		seed            = 7
	)
	probSets := map[string][]float64{
		"uniform": {0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		"biased":  {0.9, 0.1, 0.5, 0.25, 0.75, 0.37},
	}
	for name, probs := range probSets {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				rng := rand.New(rand.NewSource(int64(seed + 100*trial)))
				nl := randomMapped(t, rng, numIn, numGates)

				s := sim.New(nl, words)
				s.SetInputsRandom(seed, probs)
				s.Run()
				m := New(nl, s)

				applied := 0
				for i := 0; i < edits; i++ {
					g := nl.Node(netlist.NodeID(numIn + rng.Intn(numGates)))
					if g.Dead() {
						continue
					}
					pin := rng.Intn(len(g.Fanins()))
					to := netlist.NodeID(rng.Intn(numIn + numGates))
					if nl.Node(to).Dead() {
						continue
					}
					if err := nl.ReplaceFanin(g.ID(), pin, to); err != nil {
						continue // cycle-forming rewire; the property only covers legal edits
					}
					m.Refresh(g.ID())
					applied++
				}
				if applied < edits/4 {
					t.Fatalf("trial %d: only %d/%d edits applied; generator too constrained", trial, applied, edits)
				}

				// From scratch: same netlist, same vectors, fresh simulator.
				s2 := sim.New(nl, words)
				s2.SetInputsRandom(seed, probs)
				s2.Run()
				fresh := New(nl, s2)

				nl.LiveNodes(func(n *netlist.Node) {
					got := m.TransitionProb(n.ID())
					want := fresh.TransitionProb(n.ID())
					if math.Abs(got-want) > 1e-9 {
						t.Errorf("trial %d: node %s: incremental E=%.12f, from-scratch E=%.12f",
							trial, n.Name(), got, want)
					}
				})
				if got, want := m.Total(), fresh.Total(); math.Abs(got-want) > 1e-9 {
					t.Errorf("trial %d: total %.12f vs from-scratch %.12f", trial, got, want)
				}
			}
		})
	}
}

package power

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: transition probabilities are bounded by [0, 0.5] for any
// signal probability in [0, 1], maximized at p = 0.5.
func TestTransitionProbBoundsProperty(t *testing.T) {
	f := func(x float64) bool {
		p := math.Abs(x)
		p -= math.Floor(p) // fold into [0,1)
		e := TransitionProbOf(p)
		return e >= 0 && e <= 0.5+1e-12 && e <= TransitionProbOf(0.5)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: E(p) == E(1-p) (a signal and its complement toggle alike).
func TestTransitionProbSymmetryProperty(t *testing.T) {
	f := func(x float64) bool {
		p := math.Abs(x)
		p -= math.Floor(p)
		return math.Abs(TransitionProbOf(p)-TransitionProbOf(1-p)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Scale is linear in the activity sum.
func TestScaleLinearityProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true // avoid float overflow artifacts; activities are small
		}
		lhs := Scale(a+b, 3.3, 1e6)
		rhs := Scale(a, 3.3, 1e6) + Scale(b, 3.3, 1e6)
		diff := math.Abs(lhs - rhs)
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return diff/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

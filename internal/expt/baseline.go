package expt

import (
	"fmt"
	"io"
	"strings"

	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/power"
	"powder/internal/redundancy"
)

// BaselineRow compares plain ATPG-based redundancy removal (the paper's
// reference [1]) against POWDER on one circuit.
type BaselineRow struct {
	Circuit    string
	InitPower  float64
	RedPower   float64 // after redundancy removal only
	RedPct     float64
	PowPower   float64 // after POWDER
	PowPct     float64
	RedRemoved int
	PowApplied int
}

// RunBaseline runs the baseline comparison over the circuit set. With
// RunOptions.Parallel > 1 the circuits run concurrently; rows are
// collected in circuit order either way.
func RunBaseline(specs []circuits.Spec, opts RunOptions) ([]BaselineRow, error) {
	opts.normalize()
	rows := make([]BaselineRow, len(specs))
	errs := make([]error, len(specs))
	forEach(specs, &opts, func(i int, spec circuits.Spec) {
		row, err := baselineOne(spec, &opts)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = *row
		opts.progressf("%-10s redundancy-only %5.1f%%  POWDER %5.1f%%",
			row.Circuit, row.RedPct, row.PowPct)
	})
	for i, spec := range specs {
		if errs[i] != nil {
			return nil, fmt.Errorf("expt: %s: %v", spec.Name, errs[i])
		}
	}
	return rows, nil
}

// baselineOne compares redundancy removal against POWDER on one circuit.
func baselineOne(spec circuits.Spec, opts *RunOptions) (*BaselineRow, error) {
	// Redundancy removal only.
	nlR, err := compile(spec, opts)
	if err != nil {
		return nil, err
	}
	// One workload-adjusted option set serves both arms: the two compiles
	// of the same spec share their input names, so the binding is
	// identical.
	cOpts := opts.Core
	if err := opts.applyWorkload(nlR, &cOpts); err != nil {
		return nil, err
	}
	pmInit := power.Estimate(nlR, cOpts.Power)
	initPower := pmInit.Total()
	rr, err := redundancy.Remove(nlR, redundancy.Options{})
	if err != nil {
		return nil, err
	}
	redPower := power.Estimate(nlR, cOpts.Power).Total()

	// POWDER.
	nlP, err := compile(spec, opts)
	if err != nil {
		return nil, err
	}
	res, err := core.Optimize(nlP, cOpts)
	if err != nil {
		return nil, err
	}

	return &BaselineRow{
		Circuit:    spec.Name,
		InitPower:  initPower,
		RedPower:   redPower,
		RedPct:     100 * (initPower - redPower) / initPower,
		PowPower:   res.Final.Power,
		PowPct:     res.PowerReductionPct(),
		RedRemoved: rr.Removed,
		PowApplied: res.Applied,
	}, nil
}

// RenderBaseline writes the comparison table.
func RenderBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintln(w, "Baseline: redundancy removal (ref [1]) vs POWDER, unconstrained")
	fmt.Fprintf(w, "%-10s %10s | %10s %6s %6s | %10s %6s %6s\n",
		"circuit", "power", "red-only", "red.%", "rmvd", "POWDER", "red.%", "subs")
	fmt.Fprintln(w, strings.Repeat("-", 80))
	sumI, sumR, sumP := 0.0, 0.0, 0.0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.2f | %10.2f %6.1f %6d | %10.2f %6.1f %6d\n",
			r.Circuit, r.InitPower, r.RedPower, r.RedPct, r.RedRemoved,
			r.PowPower, r.PowPct, r.PowApplied)
		sumI += r.InitPower
		sumR += r.RedPower
		sumP += r.PowPower
	}
	fmt.Fprintln(w, strings.Repeat("-", 80))
	fmt.Fprintf(w, "%-10s %10.2f | %10.2f %5.1f%% %6s | %10.2f %5.1f%%\n",
		"sum", sumI, sumR, 100*(sumI-sumR)/sumI, "", sumP, 100*(sumI-sumP)/sumI)
}

package expt

import (
	"fmt"
	"io"
	"strings"
	"time"

	"powder/internal/circuits"
	"powder/internal/redundancy"
	"powder/internal/seq"
)

// SeqRow is one sequential circuit's result: the steady-state fixpoint
// that seeded the power model plus the core engine's outcome at the
// register cut.
type SeqRow struct {
	Circuit string `json:"circuit"`
	Latches int    `json:"latches"`
	Gates   int    `json:"gates"`

	// FixIters/FixResidual describe the state-probability fixpoint.
	FixIters    int     `json:"fixpoint_iterations"`
	FixResidual float64 `json:"fixpoint_residual"`

	InitPower  float64 `json:"init_power"`
	FinalPower float64 `json:"final_power"`
	RedPct     float64 `json:"reduction_pct"`
	InitArea   float64 `json:"init_area"`
	FinalArea  float64 `json:"final_area"`
	Applied    int     `json:"applied"`
	CPUSeconds float64 `json:"cpu_seconds"`
}

// SeqSuite holds a sequential-family run.
type SeqSuite struct {
	Rows []SeqRow
	// Totals.
	SumInitPower, SumFinalPower float64
	SumInitArea, SumFinalArea   float64
}

// RedPct returns the overall power reduction percentage.
func (s *SeqSuite) RedPct() float64 {
	return 100 * (s.SumInitPower - s.SumFinalPower) / s.SumInitPower
}

// RunSeqSuite optimizes every sequential circuit of the family:
// steady-state probability fixpoint, then the unconstrained POWDER flow
// on the register-cut core. RunOptions.Parallel fans circuits out exactly
// as RunSuite does.
func RunSeqSuite(specs []circuits.SeqSpec, opts RunOptions) (*SeqSuite, error) {
	opts.normalize()
	suite := &SeqSuite{}
	rows := make([]*SeqRow, len(specs))
	errs := make([]error, len(specs))
	forEach(specs, &opts, func(i int, spec circuits.SeqSpec) {
		rows[i], errs[i] = runOneSeq(spec, &opts)
		if errs[i] != nil {
			return
		}
		row := rows[i]
		opts.progressf("%-10s %2d latches, fixpoint %3d iters, power %8.3f -> %8.3f (%5.1f%%)  %.1fs",
			row.Circuit, row.Latches, row.FixIters, row.InitPower, row.FinalPower, row.RedPct, row.CPUSeconds)
	})
	for i, spec := range specs {
		if errs[i] != nil {
			return nil, fmt.Errorf("expt: %s: %v", spec.Name, errs[i])
		}
		row := rows[i]
		suite.Rows = append(suite.Rows, *row)
		suite.SumInitPower += row.InitPower
		suite.SumFinalPower += row.FinalPower
		suite.SumInitArea += row.InitArea
		suite.SumFinalArea += row.FinalArea
	}
	return suite, nil
}

func runOneSeq(spec circuits.SeqSpec, opts *RunOptions) (*SeqRow, error) {
	m, err := spec.Build(opts.Library)
	if err != nil {
		return nil, err
	}
	c, err := seq.FromModel(m)
	if err != nil {
		return nil, err
	}
	if opts.PreOptimize {
		// The cut anchors the next-state cones as POs, so combinational
		// redundancy removal is as safe here as on a pure netlist.
		if _, err := redundancy.Remove(c.Core(), redundancy.Options{}); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	sOpts := seq.Options{Core: opts.Core}
	sOpts.Core.DelayConstraint = 0
	sOpts.Core.DelayFactor = 0
	res, err := seq.Optimize(c, sOpts)
	if err != nil {
		return nil, err
	}
	return &SeqRow{
		Circuit:     spec.Name,
		Latches:     c.NumLatches(),
		Gates:       res.Core.Initial.Gates,
		FixIters:    res.Fixpoint.Iterations,
		FixResidual: res.Fixpoint.Residual,
		InitPower:   res.Core.Initial.Power,
		FinalPower:  res.Core.Final.Power,
		RedPct:      res.Core.PowerReductionPct(),
		InitArea:    res.Core.Initial.Area,
		FinalArea:   res.Core.Final.Area,
		Applied:     res.Core.Applied,
		CPUSeconds:  time.Since(start).Seconds(),
	}, nil
}

// RenderSeqTable writes the sequential-family results.
func RenderSeqTable(w io.Writer, s *SeqSuite) {
	fmt.Fprintln(w, "Sequential family: POWDER at the register cut (steady-state probabilities)")
	fmt.Fprintf(w, "%-10s %7s %6s | %8s %9s | %9s %9s %6s %6s %7s\n",
		"circuit", "latches", "gates", "fix.iter", "residual", "init pow", "final pow", "red.%", "subs", "CPU[s]")
	fmt.Fprintln(w, strings.Repeat("-", 96))
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10s %7d %6d | %8d %9.2e | %9.3f %9.3f %6.1f %6d %7.1f\n",
			r.Circuit, r.Latches, r.Gates, r.FixIters, r.FixResidual,
			r.InitPower, r.FinalPower, r.RedPct, r.Applied, r.CPUSeconds)
	}
	fmt.Fprintln(w, strings.Repeat("-", 96))
	fmt.Fprintf(w, "%-10s %7s %6s | %8s %9s | %9.3f %9.3f %5.1f%%\n",
		"sum", "", "", "", "", s.SumInitPower, s.SumFinalPower, s.RedPct())
}

// Package expt regenerates the paper's experiments: Table 1 (per-circuit
// power/area/delay before and after POWDER, without and with delay
// constraints), Table 2 (contribution of the substitution classes to power
// and area reduction), and Figure 6 (the power-delay trade-off).
package expt

import (
	"context"
	"fmt"
	"time"

	"powder/internal/activity"
	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/core"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/redundancy"
	"powder/internal/service"
	"powder/internal/synth"
	"powder/internal/transform"
)

// RunOptions configures an experiment run.
type RunOptions struct {
	// Library defaults to cellib.Lib2().
	Library *cellib.Library
	// Core is the POWDER option template (delay fields are managed by the
	// experiment drivers).
	Core core.Options
	// MapArea switches the initial mapping to pure area cost; the default
	// is the power-aware mapper (POSE-like initial circuits).
	MapArea bool
	// DisableInverted turns off inverted-source substitutions (enabled by
	// default).
	DisableInverted bool
	// InputProbs maps primary-input names to signal probabilities. Each
	// circuit's inputs found in the map run at that probability, the rest
	// at the uniform 0.5; names that match no input of a given circuit
	// are skipped, so one probs file can cover a heterogeneous suite.
	// Applied to the combinational experiments (Table 1/2, baseline,
	// Figure 6).
	InputProbs map[string]float64
	// Activity, when non-nil, replaces the uniform assumption with a
	// measured workload: every circuit's primary inputs are bound onto
	// the profile (case/escape-aware name matching), matched
	// probabilities drive the power model and matched toggle densities
	// pin E(i) at the inputs. Mutually exclusive with InputProbs.
	Activity *activity.Profile
	// PreOptimize runs ATPG-based redundancy removal on every initial
	// circuit before measuring it, approximating the POSE-grade (already
	// area-optimized) starting points of the paper's experiments. With it,
	// POWDER's gains shift from dominated-region removal (OS2) toward
	// rewiring (IS2/OS3), as in the paper's Table 2.
	PreOptimize bool
	// Parallel, when > 1, runs the per-circuit experiments concurrently
	// on a service.Pool of that many workers. Results are collected by
	// circuit index, so tables and reports render in the same order as a
	// sequential run; only the interleaving of progress lines differs.
	Parallel int
	// Obs, when non-nil, receives experiment-level "progress" events and
	// is threaded into every core.Optimize call (run events + metrics).
	Obs *obs.Observer
	// Tracer, when non-nil, records a hierarchical span trace of every
	// Table 1 engine run: one "table1-free"/"table1-constr" root per
	// circuit with the engine's optimize/harvest/prove/apply spans
	// nested below (powbench -trace-perfetto). With Parallel > 1 the
	// roots of concurrent circuits interleave on the shared trace.
	Tracer *trace.Tracer
	// Progress, when non-nil, receives one line per circuit step.
	// Deprecated compatibility adapter over the event sink; prefer Obs.
	Progress func(string)

	mapMode synth.CostMode
}

// progressf reports one experiment step through the observer and the
// legacy Progress callback.
func (o *RunOptions) progressf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if o.Progress != nil {
		o.Progress(msg)
	}
	o.Obs.Emit("progress", obs.Fields{"msg": msg})
}

func (o *RunOptions) normalize() {
	if o.Library == nil {
		o.Library = cellib.Lib2()
	}
	if !o.DisableInverted {
		o.Core.Transform.AllowInverted = true
	}
	if o.Obs != nil {
		o.Core.Obs = obs.Tee(o.Core.Obs, o.Obs)
	}
	o.mapMode = synth.CostPower
	if o.MapArea {
		o.mapMode = synth.CostArea
	}
}

// Table1Row is one circuit's row of the paper's Table 1.
type Table1Row struct {
	Circuit string
	Gates   int

	InitPower float64
	InitArea  float64
	InitDelay float64

	FreePower  float64 // POWDER, no delay constraints
	FreeRedPct float64
	FreeArea   float64

	ConstrPower  float64 // POWDER with delay constraint = initial delay
	ConstrRedPct float64
	ConstrArea   float64
	ConstrDelay  float64
	CPUSeconds   float64

	// Free and Constr hold the observability detail of the two runs
	// (phase timings, check effort, reject reasons) for the JSON run
	// report; the text tables ignore them.
	Free   RunDetail
	Constr RunDetail
}

// RunDetail is the per-run observability summary of one core.Optimize
// call, serialized into the powbench JSON run report.
type RunDetail struct {
	Applied        int                  `json:"applied"`
	Harvests       int                  `json:"harvests"`
	Candidates     int                  `json:"candidates"`
	RuntimeSeconds float64              `json:"runtime_seconds"`
	Phases         map[string]float64   `json:"phases,omitempty"`
	Checks         atpg.CheckStats      `json:"checks"`
	Rejects        map[string]int       `json:"rejects,omitempty"`
	Escalations    core.EscalationStats `json:"escalations"`
	Stopped        string               `json:"stopped,omitempty"`
	// Parallel carries the region-engine scheduler statistics (worker
	// utilization, commit share, conflict ledger) of a -par > 1 run; nil
	// for the sequential engine.
	Parallel *core.ParallelStats `json:"parallel,omitempty"`
	// Ledger carries the run-ledger totals (entry slices stripped): the
	// predicted and realized gain sums and the per-reason reject counts.
	Ledger *obs.LedgerSummary `json:"ledger,omitempty"`
}

// detailOf extracts the observability summary of one run result.
func detailOf(res *core.Result) RunDetail {
	d := RunDetail{
		Applied:        res.Applied,
		Harvests:       res.Harvests,
		Candidates:     res.Candidates,
		RuntimeSeconds: res.Runtime.Seconds(),
		Phases:         res.Phases.Map(),
		Checks:         res.CheckStats,
		Rejects:        res.Rejects,
		Escalations:    res.Escalation,
		Ledger:         res.Ledger.Brief(),
		Parallel:       res.Parallel,
	}
	if res.StoppedEarly() {
		d.Stopped = string(res.Stopped)
	}
	return d
}

// Suite holds the results of the Table 1 + Table 2 experiment.
type Suite struct {
	Rows []Table1Row
	// Class aggregates the per-class statistics over the unconstrained
	// runs (the paper computes Table 2 from those).
	Class map[transform.Kind]*core.ClassStats
	// Totals.
	SumInitPower, SumFreePower, SumConstrPower float64
	SumInitArea, SumFreeArea, SumConstrArea    float64
	SumInitDelay, SumConstrDelay               float64
}

// FreeRedPct returns the overall unconstrained power reduction percentage.
func (s *Suite) FreeRedPct() float64 {
	return 100 * (s.SumInitPower - s.SumFreePower) / s.SumInitPower
}

// ConstrRedPct returns the overall constrained power reduction percentage.
func (s *Suite) ConstrRedPct() float64 {
	return 100 * (s.SumInitPower - s.SumConstrPower) / s.SumInitPower
}

// FreeAreaPct returns the overall area change of the unconstrained runs.
func (s *Suite) FreeAreaPct() float64 {
	return 100 * (s.SumInitArea - s.SumFreeArea) / s.SumInitArea
}

// ConstrDelayPct returns the overall delay change of the constrained runs.
func (s *Suite) ConstrDelayPct() float64 {
	return 100 * (s.SumInitDelay - s.SumConstrDelay) / s.SumInitDelay
}

// compile builds the initial mapped circuit for a spec.
func compile(spec circuits.Spec, opts *RunOptions) (*netlist.Netlist, error) {
	nl, err := synth.Compile(spec.Build(), opts.Library, synth.Options{Mode: opts.mapMode})
	if err != nil {
		return nil, err
	}
	if opts.PreOptimize {
		if _, err := redundancy.Remove(nl, redundancy.Options{}); err != nil {
			return nil, err
		}
	}
	return nl, nil
}

// applyWorkload folds RunOptions.InputProbs / RunOptions.Activity into
// one engine run's power options, resolving names against the compiled
// circuit's primary inputs.
func (o *RunOptions) applyWorkload(nl *netlist.Netlist, copts *core.Options) error {
	if o.InputProbs == nil && o.Activity == nil {
		return nil
	}
	inputs := nl.Inputs()
	names := make([]string, len(inputs))
	for i, id := range inputs {
		names[i] = nl.Node(id).Name()
	}
	if o.Activity != nil {
		b, err := o.Activity.Bind(names)
		if err != nil {
			return fmt.Errorf("activity: %v", err)
		}
		copts.Power.InputProbs = b.Probs
		copts.Power.InputToggles = b.Toggles
		return nil
	}
	probs := make([]float64, len(names))
	for i, n := range names {
		p, ok := o.InputProbs[n]
		if !ok {
			p = 0.5
		}
		probs[i] = p
	}
	copts.Power.InputProbs = probs
	return nil
}

// forEach runs fn once per spec — sequentially, or fanned out over a
// service.Pool when opts.Parallel > 1. fn receives the spec index so
// callers collect results in deterministic circuit order. It is generic
// so the combinational (circuits.Spec) and sequential (circuits.SeqSpec)
// suites share the fan-out machinery.
func forEach[S any](specs []S, opts *RunOptions, fn func(i int, spec S)) {
	if opts.Parallel > 1 {
		pool := service.NewPool(opts.Parallel, 0)
		for i, spec := range specs {
			i, spec := i, spec
			pool.Submit(func() { fn(i, spec) })
		}
		pool.Close()
		return
	}
	for i, spec := range specs {
		fn(i, spec)
	}
}

// RunSuite optimizes every circuit twice (unconstrained and delay-
// constrained) and assembles Table 1 and Table 2 data. With
// RunOptions.Parallel > 1 the circuits run concurrently; the assembled
// suite is identical to a sequential run's (rows and class aggregates
// are collected in circuit order) apart from the CPUSeconds wall-clock
// columns.
func RunSuite(specs []circuits.Spec, opts RunOptions) (*Suite, error) {
	opts.normalize()
	suite := &Suite{Class: map[transform.Kind]*core.ClassStats{
		transform.OS2: {}, transform.IS2: {}, transform.OS3: {}, transform.IS3: {},
	}}
	rows := make([]*Table1Row, len(specs))
	classes := make([]map[transform.Kind]*core.ClassStats, len(specs))
	errs := make([]error, len(specs))
	forEach(specs, &opts, func(i int, spec circuits.Spec) {
		rows[i], classes[i], errs[i] = runOne(spec, &opts)
		if errs[i] != nil {
			return
		}
		row := rows[i]
		opts.progressf("%-10s power %8.3f -> %8.3f (free %5.1f%%) / %8.3f (constr %5.1f%%)  %.1fs",
			row.Circuit, row.InitPower, row.FreePower, row.FreeRedPct, row.ConstrPower, row.ConstrRedPct, row.CPUSeconds)
	})
	for i, spec := range specs {
		if errs[i] != nil {
			return nil, fmt.Errorf("expt: %s: %v", spec.Name, errs[i])
		}
		row := rows[i]
		suite.Rows = append(suite.Rows, *row)
		for k, cs := range classes[i] {
			agg := suite.Class[k]
			agg.Count += cs.Count
			agg.PowerGain += cs.PowerGain
			agg.AreaDelta += cs.AreaDelta
		}
		suite.SumInitPower += row.InitPower
		suite.SumFreePower += row.FreePower
		suite.SumConstrPower += row.ConstrPower
		suite.SumInitArea += row.InitArea
		suite.SumFreeArea += row.FreeArea
		suite.SumConstrArea += row.ConstrArea
		suite.SumInitDelay += row.InitDelay
		suite.SumConstrDelay += row.ConstrDelay
	}
	return suite, nil
}

func runOne(spec circuits.Spec, opts *RunOptions) (*Table1Row, map[transform.Kind]*core.ClassStats, error) {
	ctx := trace.NewContext(context.Background(), opts.Tracer)

	// Unconstrained run.
	nlFree, err := compile(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	freeOpts := opts.Core
	freeOpts.DelayConstraint = 0
	freeOpts.DelayFactor = 0
	if err := opts.applyWorkload(nlFree, &freeOpts); err != nil {
		return nil, nil, err
	}
	fctx, fSpan := trace.StartSpan(ctx, "table1-free")
	fSpan.SetAttr("circuit", spec.Name)
	resFree, err := core.OptimizeCtx(fctx, nlFree, freeOpts)
	fSpan.End()
	if err != nil {
		return nil, nil, err
	}

	// Constrained run on a fresh copy of the initial circuit.
	nlC, err := compile(spec, opts)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	cOpts := opts.Core
	cOpts.DelayFactor = 1.0
	if err := opts.applyWorkload(nlC, &cOpts); err != nil {
		return nil, nil, err
	}
	cctx, cSpan := trace.StartSpan(ctx, "table1-constr")
	cSpan.SetAttr("circuit", spec.Name)
	resC, err := core.OptimizeCtx(cctx, nlC, cOpts)
	cSpan.End()
	if err != nil {
		return nil, nil, err
	}
	cpu := time.Since(start).Seconds()

	row := &Table1Row{
		Circuit:      spec.Name,
		Gates:        resFree.Initial.Gates,
		InitPower:    resFree.Initial.Power,
		InitArea:     resFree.Initial.Area,
		InitDelay:    resFree.InitialDelay,
		FreePower:    resFree.Final.Power,
		FreeRedPct:   resFree.PowerReductionPct(),
		FreeArea:     resFree.Final.Area,
		ConstrPower:  resC.Final.Power,
		ConstrRedPct: resC.PowerReductionPct(),
		ConstrArea:   resC.Final.Area,
		ConstrDelay:  resC.FinalDelay,
		CPUSeconds:   cpu,
		Free:         detailOf(resFree),
		Constr:       detailOf(resC),
	}
	return row, resFree.ByClass, nil
}

// TradeoffPoint is one point of the paper's Figure 6.
type TradeoffPoint struct {
	// ConstraintPct is the allowed delay increase in percent (the labels
	// next to the paper's curve).
	ConstraintPct int
	// RelPower is total optimized power / total initial power.
	RelPower float64
	// RelDelay is total final delay / total initial delay.
	RelDelay float64
}

// DefaultTradeoffPcts matches the constraint labels of the paper's
// Figure 6.
var DefaultTradeoffPcts = []int{0, 5, 10, 15, 20, 30, 40, 50, 60, 80, 100, 150, 200}

// RunTradeoff sweeps delay constraints over the circuit subset and returns
// the relative power/delay curve (Figure 6).
func RunTradeoff(specs []circuits.Spec, pcts []int, opts RunOptions) ([]TradeoffPoint, error) {
	opts.normalize()
	if pcts == nil {
		pcts = DefaultTradeoffPcts
	}
	var points []TradeoffPoint
	for _, pct := range pcts {
		sumInitP, sumInitD, sumP, sumD := 0.0, 0.0, 0.0, 0.0
		for _, spec := range specs {
			nl, err := compile(spec, &opts)
			if err != nil {
				return nil, fmt.Errorf("expt: %s: %v", spec.Name, err)
			}
			cOpts := opts.Core
			cOpts.DelayFactor = 1.0 + float64(pct)/100
			if err := opts.applyWorkload(nl, &cOpts); err != nil {
				return nil, fmt.Errorf("expt: %s: %v", spec.Name, err)
			}
			res, err := core.Optimize(nl, cOpts)
			if err != nil {
				return nil, fmt.Errorf("expt: %s: %v", spec.Name, err)
			}
			sumInitP += res.Initial.Power
			sumInitD += res.InitialDelay
			sumP += res.Final.Power
			sumD += res.FinalDelay
		}
		p := TradeoffPoint{
			ConstraintPct: pct,
			RelPower:      sumP / sumInitP,
			RelDelay:      sumD / sumInitD,
		}
		points = append(points, p)
		opts.progressf("constraint +%3d%%: relative power %.3f, relative delay %.3f",
			p.ConstraintPct, p.RelPower, p.RelDelay)
	}
	return points, nil
}

package expt

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleSuite() *Suite {
	return &Suite{
		Rows: []Table1Row{
			{
				Circuit: "comp", InitPower: 10, FreePower: 8, CPUSeconds: 1.5,
				Free:   RunDetail{Applied: 3},
				Constr: RunDetail{Applied: 2},
			},
			{
				Circuit: "clip", InitPower: 20, FreePower: 15, CPUSeconds: 2.5,
				Free:   RunDetail{Applied: 4},
				Constr: RunDetail{Applied: 1},
			},
		},
		SumInitPower: 30,
		SumFreePower: 23,
	}
}

func TestBuildTrajectoryEntry(t *testing.T) {
	e := BuildTrajectoryEntry(sampleSuite(), 7*time.Second)
	if e.Schema != TrajectorySchema {
		t.Errorf("Schema = %q", e.Schema)
	}
	if e.GitRev == "" {
		t.Error("GitRev empty; want a revision or \"unknown\"")
	}
	if e.WallSeconds != 7 {
		t.Errorf("WallSeconds = %v", e.WallSeconds)
	}
	if e.PowerBefore != 30 || e.PowerAfter != 23 {
		t.Errorf("power totals %v -> %v", e.PowerBefore, e.PowerAfter)
	}
	if e.Substitutions != 10 {
		t.Errorf("Substitutions = %d, want 10", e.Substitutions)
	}
	if len(e.Circuits) != 2 || e.Circuits[0].Name != "comp" || e.Circuits[1].WallSeconds != 2.5 {
		t.Errorf("Circuits = %+v", e.Circuits)
	}
	if _, err := time.Parse(time.RFC3339, e.When); err != nil {
		t.Errorf("When %q not RFC3339: %v", e.When, err)
	}
}

func TestTrajectoryAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_powder.json")
	if entries, err := LoadTrajectory(path); err != nil || entries != nil {
		t.Fatalf("missing file: entries=%v err=%v, want nil/nil", entries, err)
	}
	e1 := BuildTrajectoryEntry(sampleSuite(), time.Second)
	e2 := BuildTrajectoryEntry(sampleSuite(), 2*time.Second)
	if err := AppendTrajectory(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, e2); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	if entries[0].WallSeconds != 1 || entries[1].WallSeconds != 2 {
		t.Errorf("entries out of order: %+v", entries)
	}
	if entries[0].Schema != TrajectorySchema {
		t.Errorf("schema lost in round trip: %q", entries[0].Schema)
	}
}

func TestCheckRegression(t *testing.T) {
	base := BuildTrajectoryEntry(sampleSuite(), 10*time.Second)
	baseline := []TrajectoryEntry{base}

	// Same run: no regression.
	if err := CheckRegression(base, baseline, 10, 2); err != nil {
		t.Errorf("identical run flagged: %v", err)
	}
	// Empty baseline: nothing to compare.
	if err := CheckRegression(base, nil, 10, 2); err != nil {
		t.Errorf("empty baseline flagged: %v", err)
	}

	// Power regression on one circuit beyond the threshold.
	worse := base
	worse.Circuits = append([]TrajectoryCircuit(nil), base.Circuits...)
	worse.Circuits[0].PowerAfter *= 1.25
	err := CheckRegression(worse, baseline, 10, 2)
	if err == nil || !strings.Contains(err.Error(), "comp") {
		t.Errorf("25%% power regression not flagged: %v", err)
	}

	// Within threshold: allowed.
	slight := base
	slight.Circuits = append([]TrajectoryCircuit(nil), base.Circuits...)
	slight.Circuits[0].PowerAfter *= 1.05
	if err := CheckRegression(slight, baseline, 10, 2); err != nil {
		t.Errorf("5%% drift flagged at 10%% threshold: %v", err)
	}

	// Wall-time regression beyond the factor.
	slow := base
	slow.WallSeconds = base.WallSeconds * 3
	err = CheckRegression(slow, baseline, 10, 2)
	if err == nil || !strings.Contains(err.Error(), "wall time") {
		t.Errorf("3x wall-time regression not flagged: %v", err)
	}

	// A circuit absent from the baseline is ignored, not a failure.
	extra := base
	extra.Circuits = append(append([]TrajectoryCircuit(nil), base.Circuits...),
		TrajectoryCircuit{Name: "new", PowerAfter: 99})
	if err := CheckRegression(extra, baseline, 10, 2); err != nil {
		t.Errorf("new circuit flagged: %v", err)
	}

	// Regression checked against the NEWEST baseline entry.
	newer := base
	newer.Circuits = append([]TrajectoryCircuit(nil), base.Circuits...)
	newer.Circuits[0].PowerAfter *= 0.5 // newest baseline is much better
	err = CheckRegression(base, []TrajectoryEntry{{}, newer}, 10, 2)
	if err == nil {
		t.Error("regression vs newest baseline entry not detected")
	}
}

func TestPeakRSSBytes(t *testing.T) {
	// On Linux this must report a sane positive value; elsewhere 0.
	if rss := PeakRSSBytes(); rss < 0 {
		t.Errorf("PeakRSSBytes = %d", rss)
	} else if rss > 0 && rss < 1<<20 {
		t.Errorf("PeakRSSBytes = %d, implausibly small", rss)
	}
}

package expt

import (
	"bytes"
	"strings"
	"testing"

	"powder/internal/circuits"
)

func seqSubset(t *testing.T, names ...string) []circuits.SeqSpec {
	t.Helper()
	var out []circuits.SeqSpec
	for _, n := range names {
		s, err := circuits.SeqByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestRunSeqSuite(t *testing.T) {
	suite, err := RunSeqSuite(seqSubset(t, "fsm1011", "counter4"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Rows) != 2 {
		t.Fatalf("rows = %d", len(suite.Rows))
	}
	for _, r := range suite.Rows {
		if r.FinalPower > r.InitPower {
			t.Errorf("%s: power increased %.4f -> %.4f", r.Circuit, r.InitPower, r.FinalPower)
		}
		if r.FixResidual > 1e-6 {
			t.Errorf("%s: fixpoint residual %g above 1e-6", r.Circuit, r.FixResidual)
		}
		if r.Latches == 0 || r.Gates == 0 {
			t.Errorf("%s: empty row %+v", r.Circuit, r)
		}
	}

	var buf bytes.Buffer
	RenderSeqTable(&buf, suite)
	out := buf.String()
	for _, want := range []string{"fsm1011", "counter4", "sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestRunSeqSuiteParallel pins that the fan-out path assembles the same
// deterministic rows as the sequential path.
func TestRunSeqSuiteParallel(t *testing.T) {
	specs := seqSubset(t, "fsm1011", "counter4", "lfsr5")
	seqRun, err := RunSeqSuite(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parRun, err := RunSeqSuite(specs, RunOptions{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRun.Rows) != len(parRun.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range seqRun.Rows {
		a, b := seqRun.Rows[i], parRun.Rows[i]
		a.CPUSeconds, b.CPUSeconds = 0, 0
		if a != b {
			t.Errorf("row %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestSeqSuiteEntireFamilyConverges is the acceptance check that the
// fixpoint reaches 1e-6 on every circuit in the family and power never
// increases.
func TestSeqSuiteEntireFamilyConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full family in -short mode")
	}
	suite, err := RunSeqSuite(circuits.SeqAll(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range suite.Rows {
		if r.FixResidual > 1e-6 {
			t.Errorf("%s: residual %g", r.Circuit, r.FixResidual)
		}
		if r.FinalPower > r.InitPower {
			t.Errorf("%s: power increased", r.Circuit)
		}
	}
}

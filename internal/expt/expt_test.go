package expt

import (
	"strings"
	"testing"

	"powder/internal/circuits"
)

// smallSubset picks a few fast circuits for the harness tests.
func smallSubset(t *testing.T, names ...string) []circuits.Spec {
	t.Helper()
	var specs []circuits.Spec
	for _, n := range names {
		s, err := circuits.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

func TestRunSuiteSmall(t *testing.T) {
	specs := smallSubset(t, "clip", "rd84", "t481")
	suite, err := RunSuite(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Rows) != 3 {
		t.Fatalf("rows = %d", len(suite.Rows))
	}
	for _, r := range suite.Rows {
		if r.InitPower <= 0 || r.InitArea <= 0 || r.InitDelay <= 0 {
			t.Errorf("%s: bad initial numbers %+v", r.Circuit, r)
		}
		if r.FreePower > r.InitPower+1e-9 {
			t.Errorf("%s: unconstrained power increased", r.Circuit)
		}
		if r.ConstrPower > r.InitPower+1e-9 {
			t.Errorf("%s: constrained power increased", r.Circuit)
		}
		if r.ConstrDelay > r.InitDelay+1e-9 {
			t.Errorf("%s: constrained delay increased (%.3f -> %.3f)",
				r.Circuit, r.InitDelay, r.ConstrDelay)
		}
	}
	if suite.FreeRedPct() <= 0 {
		t.Errorf("expected an overall power reduction, got %.2f%%", suite.FreeRedPct())
	}
	// Unconstrained reductions dominate on these circuits with redundancy.
	if suite.SumFreePower <= 0 || suite.SumConstrPower <= 0 {
		t.Errorf("totals missing")
	}
}

func TestRenderers(t *testing.T) {
	specs := smallSubset(t, "clip", "t481")
	suite, err := RunSuite(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b1 strings.Builder
	RenderTable1(&b1, suite)
	out := b1.String()
	for _, want := range []string{"Table 1", "clip", "t481", "reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	var b2 strings.Builder
	RenderTable2(&b2, suite)
	for _, want := range []string{"Table 2", "OS2", "IS2", "OS3", "IS3"} {
		if !strings.Contains(b2.String(), want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
	var b3 strings.Builder
	RenderCSV(&b3, suite)
	if lines := strings.Count(b3.String(), "\n"); lines != 3 {
		t.Errorf("CSV should have header + 2 rows, got %d lines", lines)
	}
}

func TestRunTradeoffShape(t *testing.T) {
	specs := smallSubset(t, "clip", "t481", "rd84")
	points, err := RunTradeoff(specs, []int{0, 50, 200}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Relative power must never exceed 1 and should not increase with a
	// looser constraint by more than noise.
	for _, p := range points {
		if p.RelPower > 1+1e-9 {
			t.Errorf("relative power > 1 at %d%%", p.ConstraintPct)
		}
	}
	// Delay at constraint 0% must not exceed the initial delay.
	if points[0].RelDelay > 1+1e-9 {
		t.Errorf("0%% constraint broke delay: %.3f", points[0].RelDelay)
	}
	var b strings.Builder
	RenderTradeoff(&b, points)
	if !strings.Contains(b.String(), "Figure 6") || !strings.Contains(b.String(), "*") {
		t.Errorf("trade-off rendering incomplete:\n%s", b.String())
	}
}

func TestMapAreaOption(t *testing.T) {
	specs := smallSubset(t, "clip")
	s1, err := RunSuite(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunSuite(specs, RunOptions{MapArea: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both must run; the initial circuits may differ in area.
	if s1.Rows[0].InitArea <= 0 || s2.Rows[0].InitArea <= 0 {
		t.Errorf("area missing")
	}
}

package expt

import (
	"reflect"
	"sync"
	"testing"
)

// stripWallClock zeroes the fields that legitimately differ between a
// sequential and a parallel run (wall-clock measurements).
func stripWallClock(s *Suite) {
	for i := range s.Rows {
		s.Rows[i].CPUSeconds = 0
		s.Rows[i].Free = RunDetail{}
		s.Rows[i].Constr = RunDetail{}
	}
}

func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	specs := smallSubset(t, "clip", "rd84", "t481")

	seq, err := RunSuite(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	par, err := RunSuite(specs, RunOptions{
		Parallel: 3,
		Progress: func(s string) { mu.Lock(); lines = append(lines, s); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(specs) {
		t.Fatalf("progress lines = %d, want %d", len(lines), len(specs))
	}

	stripWallClock(seq)
	stripWallClock(par)
	if !reflect.DeepEqual(seq.Rows, par.Rows) {
		t.Fatalf("parallel rows differ from sequential:\nseq: %+v\npar: %+v", seq.Rows, par.Rows)
	}
	if !reflect.DeepEqual(seq.Class, par.Class) {
		t.Fatalf("parallel class aggregates differ:\nseq: %+v\npar: %+v", seq.Class, par.Class)
	}
	if seq.SumFreePower != par.SumFreePower || seq.SumConstrPower != par.SumConstrPower {
		t.Fatalf("totals differ: seq free %v constr %v, par free %v constr %v",
			seq.SumFreePower, seq.SumConstrPower, par.SumFreePower, par.SumConstrPower)
	}
}

func TestRunBaselineParallelMatchesSequential(t *testing.T) {
	specs := smallSubset(t, "clip", "t481")
	seq, err := RunBaseline(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBaseline(specs, RunOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel baseline rows differ:\nseq: %+v\npar: %+v", seq, par)
	}
}

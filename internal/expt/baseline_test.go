package expt

import (
	"strings"
	"testing"
)

func TestRunBaseline(t *testing.T) {
	specs := smallSubset(t, "t481", "clip")
	rows, err := RunBaseline(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.InitPower <= 0 {
			t.Errorf("%s: bad initial power", r.Circuit)
		}
		if r.RedPower > r.InitPower+1e-9 {
			t.Errorf("%s: redundancy removal increased power", r.Circuit)
		}
		if r.PowPower > r.InitPower+1e-9 {
			t.Errorf("%s: POWDER increased power", r.Circuit)
		}
	}
	// t481 carries heavy redundancy: POWDER must at least match the
	// baseline there.
	if rows[0].PowPct < rows[0].RedPct-1e-9 {
		t.Errorf("POWDER (%.1f%%) below redundancy-only baseline (%.1f%%) on t481",
			rows[0].PowPct, rows[0].RedPct)
	}
	var b strings.Builder
	RenderBaseline(&b, rows)
	for _, want := range []string{"Baseline", "t481", "clip", "sum"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("baseline table missing %q", want)
		}
	}
}

func TestPreOptimizeOption(t *testing.T) {
	specs := smallSubset(t, "t481")
	plain, err := RunSuite(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := RunSuite(specs, RunOptions{PreOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-optimized initial circuits start smaller (t481's duplicated
	// spelling is redundancy-removable).
	if pre.Rows[0].InitArea >= plain.Rows[0].InitArea {
		t.Errorf("preopt initial area %.0f should be below plain %.0f",
			pre.Rows[0].InitArea, plain.Rows[0].InitArea)
	}
	// And the remaining POWDER reduction percentage shrinks accordingly.
	if pre.Rows[0].FreeRedPct > plain.Rows[0].FreeRedPct+1e-9 {
		t.Logf("note: preopt run still found %.1f%% (plain %.1f%%) — acceptable",
			pre.Rows[0].FreeRedPct, plain.Rows[0].FreeRedPct)
	}
}

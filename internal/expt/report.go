package expt

import (
	"encoding/json"
	"io"
	"time"

	"powder/internal/core"
	"powder/internal/obs"
	"powder/internal/transform"
)

// ReportSchema identifies the powbench JSON run-report format; bump on
// incompatible changes so trajectory tooling can dispatch on it.
const ReportSchema = "powder-bench/v1"

// Report is the machine-readable powbench run report: the Table 1 rows
// plus per-phase timings and checker effort per circuit, for tracking the
// performance trajectory across changes (the BENCH_*.json format).
type Report struct {
	Schema      string `json:"schema"`
	GeneratedAt string `json:"generated_at"`
	// Options echoes the experiment configuration that produced the runs.
	Options ReportOptions `json:"options"`

	Circuits []CircuitReport `json:"circuits"`
	// Sequential optionally carries the sequential-family rows (fixpoint
	// iterations, register counts, power at the register cut). Absent when
	// the run was combinational-only, keeping the format backward
	// compatible.
	Sequential []SeqRow     `json:"sequential,omitempty"`
	Totals     ReportTotals `json:"totals"`
	// Class aggregates substitution-class contributions over the
	// unconstrained runs (the paper's Table 2 data).
	Class map[string]ClassReport `json:"class"`
	// Metrics optionally carries the run's metrics-registry snapshot.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ReportOptions echoes the experiment configuration.
type ReportOptions struct {
	MapArea     bool `json:"map_area"`
	PreOptimize bool `json:"pre_optimize"`
}

// CircuitReport is one circuit's rows of the report.
type CircuitReport struct {
	Circuit string `json:"circuit"`
	Gates   int    `json:"gates"`

	InitPower float64 `json:"init_power"`
	InitArea  float64 `json:"init_area"`
	InitDelay float64 `json:"init_delay"`

	FreePower  float64 `json:"free_power"`
	FreeRedPct float64 `json:"free_red_pct"`
	FreeArea   float64 `json:"free_area"`

	ConstrPower  float64 `json:"constr_power"`
	ConstrRedPct float64 `json:"constr_red_pct"`
	ConstrArea   float64 `json:"constr_area"`
	ConstrDelay  float64 `json:"constr_delay"`
	CPUSeconds   float64 `json:"cpu_seconds"`

	Free   RunDetail `json:"free"`
	Constr RunDetail `json:"constr"`
}

// ReportTotals are the suite-level sums and percentages.
type ReportTotals struct {
	InitPower    float64 `json:"init_power"`
	FreePower    float64 `json:"free_power"`
	ConstrPower  float64 `json:"constr_power"`
	FreeRedPct   float64 `json:"free_red_pct"`
	ConstrRedPct float64 `json:"constr_red_pct"`
	FreeAreaPct  float64 `json:"free_area_pct"`
}

// ClassReport is one substitution class's aggregate contribution.
type ClassReport struct {
	Count     int     `json:"count"`
	PowerGain float64 `json:"power_gain"`
	AreaDelta float64 `json:"area_delta"`
}

// BuildReport assembles the run report of a completed suite. The metrics
// snapshot may be nil.
func BuildReport(s *Suite, opts ReportOptions, metrics *obs.Snapshot) *Report {
	r := &Report{
		Schema:      ReportSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Options:     opts,
		Totals: ReportTotals{
			InitPower:    s.SumInitPower,
			FreePower:    s.SumFreePower,
			ConstrPower:  s.SumConstrPower,
			FreeRedPct:   s.FreeRedPct(),
			ConstrRedPct: s.ConstrRedPct(),
			FreeAreaPct:  s.FreeAreaPct(),
		},
		Class:   map[string]ClassReport{},
		Metrics: metrics,
	}
	for _, row := range s.Rows {
		r.Circuits = append(r.Circuits, CircuitReport{
			Circuit:      row.Circuit,
			Gates:        row.Gates,
			InitPower:    row.InitPower,
			InitArea:     row.InitArea,
			InitDelay:    row.InitDelay,
			FreePower:    row.FreePower,
			FreeRedPct:   row.FreeRedPct,
			FreeArea:     row.FreeArea,
			ConstrPower:  row.ConstrPower,
			ConstrRedPct: row.ConstrRedPct,
			ConstrArea:   row.ConstrArea,
			ConstrDelay:  row.ConstrDelay,
			CPUSeconds:   row.CPUSeconds,
			Free:         row.Free,
			Constr:       row.Constr,
		})
	}
	for _, k := range []transform.Kind{transform.OS2, transform.IS2, transform.OS3, transform.IS3} {
		if cs := s.Class[k]; cs != nil {
			r.Class[k.String()] = classReport(cs)
		}
	}
	return r
}

// AttachSeq adds a sequential-family run to the report.
func (r *Report) AttachSeq(s *SeqSuite) {
	r.Sequential = append(r.Sequential, s.Rows...)
}

func classReport(cs *core.ClassStats) ClassReport {
	return ClassReport{Count: cs.Count, PowerGain: cs.PowerGain, AreaDelta: cs.AreaDelta}
}

// WriteReportJSON writes the report as indented JSON.
func WriteReportJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

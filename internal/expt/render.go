package expt

import (
	"fmt"
	"io"
	"strings"

	"powder/internal/transform"
)

// RenderTable1 writes the suite in the layout of the paper's Table 1.
func RenderTable1(w io.Writer, s *Suite) {
	fmt.Fprintln(w, "Table 1: POWDER on the benchmark suite")
	fmt.Fprintln(w, "                     initial                |  POWDER no delay constr. |  POWDER with delay constraints")
	fmt.Fprintf(w, "%-10s %9s %10s %7s | %9s %6s %10s | %9s %6s %10s %7s %7s\n",
		"circuit", "power", "area", "delay", "power", "red.%", "area", "power", "red.%", "area", "delay", "CPU[s]")
	fmt.Fprintln(w, strings.Repeat("-", 122))
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-10s %9.2f %10.0f %7.2f | %9.2f %6.1f %10.0f | %9.2f %6.1f %10.0f %7.2f %7.1f\n",
			r.Circuit, r.InitPower, r.InitArea, r.InitDelay,
			r.FreePower, r.FreeRedPct, r.FreeArea,
			r.ConstrPower, r.ConstrRedPct, r.ConstrArea, r.ConstrDelay, r.CPUSeconds)
	}
	fmt.Fprintln(w, strings.Repeat("-", 122))
	fmt.Fprintf(w, "%-10s %9.2f %10.0f %7.2f | %9.2f %6s %10.0f | %9.2f %6s %10.0f %7.2f\n",
		"sum", s.SumInitPower, s.SumInitArea, s.SumInitDelay,
		s.SumFreePower, "", s.SumFreeArea,
		s.SumConstrPower, "", s.SumConstrArea, s.SumConstrDelay)
	fmt.Fprintf(w, "%-10s %9s %10s %7s | %9s %5.1f%% %9.1f%% | %9s %5.1f%% %9.1f%% %6.1f%%\n",
		"reduction", "", "", "",
		"", s.FreeRedPct(), s.FreeAreaPct(),
		"", s.ConstrRedPct(), 100*(s.SumInitArea-s.SumConstrArea)/s.SumInitArea, s.ConstrDelayPct())
}

// RenderTable2 writes the per-class contribution table (paper's Table 2).
func RenderTable2(w io.Writer, s *Suite) {
	totalPower, totalArea := 0.0, 0.0
	for _, cs := range s.Class {
		totalPower += cs.PowerGain
		totalArea += cs.AreaDelta
	}
	fmt.Fprintln(w, "Table 2: contribution of substitution classes (unconstrained runs)")
	fmt.Fprintf(w, "%-28s %8s %8s %8s %8s\n", "substitution:", "OS2", "IS2", "OS3", "IS3")
	order := []transform.Kind{transform.OS2, transform.IS2, transform.OS3, transform.IS3}

	fmt.Fprintf(w, "%-28s", "performed substitutions:")
	for _, k := range order {
		fmt.Fprintf(w, " %8d", s.Class[k].Count)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-28s", "power reduction contrib.:")
	for _, k := range order {
		pct := 0.0
		if totalPower != 0 {
			pct = 100 * s.Class[k].PowerGain / totalPower
		}
		fmt.Fprintf(w, " %7.1f%%", pct)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-28s", "area reduction contrib.:")
	for _, k := range order {
		pct := 0.0
		if totalArea != 0 {
			// Negative AreaDelta is a reduction; express each class as a
			// share of the net reduction, as the paper does (shares can
			// exceed 100% / go negative).
			pct = 100 * s.Class[k].AreaDelta / totalArea
		}
		fmt.Fprintf(w, " %7.1f%%", pct)
	}
	fmt.Fprintln(w)
}

// RenderTradeoff writes the Figure 6 series plus a small ASCII plot.
func RenderTradeoff(w io.Writer, points []TradeoffPoint) {
	fmt.Fprintln(w, "Figure 6: power-delay trade-off (totals over the circuit subset)")
	fmt.Fprintf(w, "%12s %15s %15s\n", "constraint", "rel. power", "rel. delay")
	for _, p := range points {
		fmt.Fprintf(w, "%11d%% %15.3f %15.3f\n", p.ConstraintPct, p.RelPower, p.RelDelay)
	}
	fmt.Fprintln(w)
	plotTradeoff(w, points)
}

// plotTradeoff draws the curve in a text grid: x = relative delay,
// y = relative power.
func plotTradeoff(w io.Writer, points []TradeoffPoint) {
	if len(points) == 0 {
		return
	}
	minP, maxP := points[0].RelPower, points[0].RelPower
	minD, maxD := points[0].RelDelay, points[0].RelDelay
	for _, p := range points {
		minP, maxP = minf(minP, p.RelPower), maxf(maxP, p.RelPower)
		minD, maxD = minf(minD, p.RelDelay), maxf(maxD, p.RelDelay)
	}
	if maxP == minP {
		maxP = minP + 1e-9
	}
	if maxD == minD {
		maxD = minD + 1e-9
	}
	const rows, cols = 16, 56
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for _, p := range points {
		x := int(float64(cols-1) * (p.RelDelay - minD) / (maxD - minD))
		y := int(float64(rows-1) * (maxP - p.RelPower) / (maxP - minP))
		grid[y][x] = '*'
	}
	fmt.Fprintf(w, "rel.power %.3f\n", maxP)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(w, "   rel.delay %.3f %*s %.3f\n", minD, cols-16, "", maxD)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RenderCSV writes the Table 1 rows as CSV for downstream plotting.
func RenderCSV(w io.Writer, s *Suite) {
	fmt.Fprintln(w, "circuit,gates,init_power,init_area,init_delay,free_power,free_red_pct,free_area,constr_power,constr_red_pct,constr_area,constr_delay,cpu_s")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%s,%d,%.4f,%.0f,%.3f,%.4f,%.2f,%.0f,%.4f,%.2f,%.0f,%.3f,%.2f\n",
			r.Circuit, r.Gates, r.InitPower, r.InitArea, r.InitDelay,
			r.FreePower, r.FreeRedPct, r.FreeArea,
			r.ConstrPower, r.ConstrRedPct, r.ConstrArea, r.ConstrDelay, r.CPUSeconds)
	}
}

package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// TrajectorySchema identifies the benchmark-trajectory file format; bump
// it on breaking changes so readers can reject files they do not
// understand.
const TrajectorySchema = "powder-trajectory/v1"

// TrajectoryCircuit is one circuit's slice of a trajectory entry.
type TrajectoryCircuit struct {
	Name string `json:"name"`
	// PowerBefore/PowerAfter are the unconstrained run's estimates (the
	// paper's headline numbers; the regression gate compares PowerAfter).
	PowerBefore float64 `json:"power_before"`
	PowerAfter  float64 `json:"power_after"`
	// Substitutions and Proofs sum both runs (free + constrained).
	Substitutions int `json:"substitutions"`
	Proofs        int `json:"proofs"`
	// WallSeconds is the constrained run's wall time (the CPU column of
	// Table 1).
	WallSeconds float64 `json:"wall_seconds"`
}

// TrajectoryEntry is one benchmark run appended to BENCH_powder.json:
// enough to plot quality and cost over the repository's history and to
// gate CI on regressions against a committed baseline.
type TrajectoryEntry struct {
	Schema string `json:"schema"`
	// GitRev is the VCS revision the binary was built from ("unknown"
	// outside a stamped build without POWDER_GIT_REV).
	GitRev string `json:"git_rev"`
	// When is the run's RFC3339 UTC timestamp.
	When string `json:"when"`
	// WallSeconds is the whole suite's wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// PowerBefore/PowerAfter total the unconstrained runs over all
	// circuits; ReductionPct is the headline percentage.
	PowerBefore  float64 `json:"power_before"`
	PowerAfter   float64 `json:"power_after"`
	ReductionPct float64 `json:"reduction_pct"`
	// Substitutions and Proofs total over all circuits and both runs.
	Substitutions int `json:"substitutions"`
	Proofs        int `json:"proofs"`
	// PeakRSSBytes is the process's high-water resident set (0 where
	// /proc is unavailable).
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	// Par is the engine parallelism the suite ran with (0 or 1 =
	// sequential). Regression checks compare entries of equal Par, so one
	// baseline file can carry sequential and parallel trajectories side
	// by side.
	Par int `json:"par,omitempty"`
	// WorkerBusyFrac and CommitShare summarize the parallel engine's
	// scheduler health over the whole suite (0 for sequential runs):
	// busy worker-seconds over offered capacity, and the serial commit
	// phase's share of engine wall time. Plotted next to WallSeconds,
	// they separate "slower because workers idled" from "slower because
	// the serial section grew".
	WorkerBusyFrac float64             `json:"worker_busy_frac,omitempty"`
	CommitShare    float64             `json:"commit_share,omitempty"`
	Circuits       []TrajectoryCircuit `json:"circuits"`
}

// BuildTrajectoryEntry assembles one entry from a finished suite.
func BuildTrajectoryEntry(suite *Suite, wall time.Duration) TrajectoryEntry {
	e := TrajectoryEntry{
		Schema:       TrajectorySchema,
		GitRev:       GitRev(),
		When:         time.Now().UTC().Format(time.RFC3339),
		WallSeconds:  wall.Seconds(),
		PowerBefore:  suite.SumInitPower,
		PowerAfter:   suite.SumFreePower,
		ReductionPct: suite.FreeRedPct(),
		PeakRSSBytes: PeakRSSBytes(),
	}
	var busy, capacity, commit, parWall float64
	for _, row := range suite.Rows {
		e.Substitutions += row.Free.Applied + row.Constr.Applied
		e.Proofs += row.Free.Checks.Checks + row.Constr.Checks.Checks
		for _, d := range []RunDetail{row.Free, row.Constr} {
			if p := d.Parallel; p != nil {
				busy += p.WorkerBusySeconds
				capacity += float64(p.Workers) * p.ParallelSeconds
				commit += p.CommitSeconds
				parWall += p.ParallelSeconds
			}
		}
		e.Circuits = append(e.Circuits, TrajectoryCircuit{
			Name:          row.Circuit,
			PowerBefore:   row.InitPower,
			PowerAfter:    row.FreePower,
			Substitutions: row.Free.Applied + row.Constr.Applied,
			Proofs:        row.Free.Checks.Checks + row.Constr.Checks.Checks,
			WallSeconds:   row.CPUSeconds,
		})
	}
	if capacity > 0 {
		e.WorkerBusyFrac = busy / capacity
	}
	if commit+parWall > 0 {
		e.CommitShare = commit / (commit + parWall)
	}
	return e
}

// GitRev returns the POWDER_GIT_REV environment override when set (so
// CI can pin the revision regardless of how the binary was built), the
// VCS revision baked into the build by the go tool, or "unknown".
func GitRev() string {
	if rev := os.Getenv("POWDER_GIT_REV"); rev != "" {
		return rev
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// PeakRSSBytes reads the process's high-water resident set from
// /proc/self/status (VmHWM); 0 on platforms without it.
func PeakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// LoadTrajectory reads a trajectory file (a JSON array of entries). A
// missing file is an empty trajectory, not an error.
func LoadTrajectory(path string) ([]TrajectoryEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var entries []TrajectoryEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("expt: %s: %v", path, err)
	}
	return entries, nil
}

// AppendTrajectory appends one entry to the trajectory file, creating it
// when absent. The file stays a plain JSON array so plotting tools can
// read it directly.
func AppendTrajectory(path string, e TrajectoryEntry) error {
	entries, err := LoadTrajectory(path)
	if err != nil {
		return err
	}
	entries = append(entries, e)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckRegression compares a fresh entry against the newest baseline
// entry of the same parallelism (falling back to the newest entry of any
// parallelism when none matches): any shared circuit whose optimized
// power grew by more than powerPct percent, or a suite wall time beyond
// wallFactor times the baseline's, is a regression. It returns nil when
// the baseline is empty (nothing to regress against) and an error naming
// every violation otherwise.
func CheckRegression(e TrajectoryEntry, baseline []TrajectoryEntry, powerPct, wallFactor float64) error {
	if len(baseline) == 0 {
		return nil
	}
	base := baseline[len(baseline)-1]
	for i := len(baseline) - 1; i >= 0; i-- {
		if normPar(baseline[i].Par) == normPar(e.Par) {
			base = baseline[i]
			break
		}
	}
	byName := make(map[string]TrajectoryCircuit, len(base.Circuits))
	for _, c := range base.Circuits {
		byName[c.Name] = c
	}
	var violations []string
	for _, c := range e.Circuits {
		b, ok := byName[c.Name]
		if !ok || b.PowerAfter <= 0 {
			continue
		}
		if pct := 100 * (c.PowerAfter - b.PowerAfter) / b.PowerAfter; pct > powerPct {
			violations = append(violations, fmt.Sprintf(
				"%s: optimized power %.4f vs baseline %.4f (+%.1f%% > %.1f%%)",
				c.Name, c.PowerAfter, b.PowerAfter, pct, powerPct))
		}
	}
	if base.WallSeconds > 0 && e.WallSeconds > base.WallSeconds*wallFactor {
		violations = append(violations, fmt.Sprintf(
			"suite wall time %.2fs vs baseline %.2fs (> %.1fx)",
			e.WallSeconds, base.WallSeconds, wallFactor))
	}
	if len(violations) > 0 {
		return fmt.Errorf("expt: benchmark regression vs %s:\n  %s",
			base.GitRev, strings.Join(violations, "\n  "))
	}
	return nil
}

// normPar folds the two spellings of "sequential" (0 for pre-parallel
// entries, 1 for explicit -par 1 runs) into one baseline-matching key.
func normPar(p int) int {
	if p <= 1 {
		return 1
	}
	return p
}

package cellib

import (
	"fmt"
	"sort"

	"powder/internal/logic"
)

// Library is a set of cells indexed by name and by function.
type Library struct {
	Name   string
	cells  []*Cell
	byName map[string]*Cell
}

// NewLibrary returns an empty library.
func NewLibrary(name string) *Library {
	return &Library{Name: name, byName: make(map[string]*Cell)}
}

// Add inserts a cell; the name must be unique within the library.
func (l *Library) Add(c *Cell) error {
	if _, dup := l.byName[c.Name]; dup {
		return fmt.Errorf("cellib: duplicate cell name %s", c.Name)
	}
	l.cells = append(l.cells, c)
	l.byName[c.Name] = c
	return nil
}

// MustAdd is Add but panics on error; for building known-good libraries.
func (l *Library) MustAdd(c *Cell) {
	if err := l.Add(c); err != nil {
		panic(err)
	}
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.byName[name] }

// Cells returns all cells in insertion order. The slice must not be mutated.
func (l *Library) Cells() []*Cell { return l.cells }

// Len returns the number of cells.
func (l *Library) Len() int { return len(l.cells) }

// Inverter returns the smallest-area inverter cell, or nil if the library
// has none.
func (l *Library) Inverter() *Cell {
	var best *Cell
	for _, c := range l.cells {
		if c.IsInverter() && (best == nil || c.Area < best.Area) {
			best = c
		}
	}
	return best
}

// Buffer returns the smallest-area buffer cell, or nil.
func (l *Library) Buffer() *Cell {
	var best *Cell
	for _, c := range l.cells {
		if c.IsBuffer() && (best == nil || c.Area < best.Area) {
			best = c
		}
	}
	return best
}

// TwoInputCells returns all cells with exactly two input pins, sorted by
// area. These are the candidates for the new gate of OS3/IS3 substitutions.
func (l *Library) TwoInputCells() []*Cell {
	var out []*Cell
	for _, c := range l.cells {
		if len(c.Pins) == 2 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Area < out[j].Area })
	return out
}

// MatchTT returns the cells whose truth table equals tt exactly (same pin
// order), sorted by area.
func (l *Library) MatchTT(tt logic.TT) []*Cell {
	var out []*Cell
	for _, c := range l.cells {
		if c.TT.Equal(tt) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Area < out[j].Area })
	return out
}

// SmallestMatch returns the minimum-area cell implementing tt exactly, or
// nil if none does.
func (l *Library) SmallestMatch(tt logic.TT) *Cell {
	m := l.MatchTT(tt)
	if len(m) == 0 {
		return nil
	}
	return m[0]
}

// Validate checks library-level invariants: at least one inverter, at least
// one 2-input NAND or AND (needed by the mapper's subject graph), and
// pairwise-distinct names (guaranteed by Add, re-checked here defensively).
func (l *Library) Validate() error {
	if l.Inverter() == nil {
		return fmt.Errorf("cellib: library %s has no inverter", l.Name)
	}
	nand2 := logic.TTFromExpr(logic.Not(logic.And(logic.Var(0), logic.Var(1))), 2)
	and2 := logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	if l.SmallestMatch(nand2) == nil && l.SmallestMatch(and2) == nil {
		return fmt.Errorf("cellib: library %s has neither NAND2 nor AND2", l.Name)
	}
	names := make(map[string]bool, len(l.cells))
	for _, c := range l.cells {
		if names[c.Name] {
			return fmt.Errorf("cellib: duplicate cell %s", c.Name)
		}
		names[c.Name] = true
	}
	return nil
}

package cellib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"powder/internal/logic"
)

// ParseGenlib reads a library in a genlib-subset format:
//
//	GATE <name> <area> <out>=<expr>;
//	PIN <pin|*> <phase> <input-load> <max-load> <rise-block> <rise-fanout> <fall-block> <fall-fanout>
//
// Comments start with '#' and run to end of line. The PIN lines following a
// GATE line describe its pins; "PIN *" applies to every pin of the gate.
// The linear delay model parameters are derived as
//
//	Intrinsic = max over pins of (rise-block + fall-block)/2
//	Drive     = max over pins of (rise-fanout + fall-fanout)/2
//
// and the pin capacitance is the input-load. The phase token is accepted
// and ignored (the function expression already encodes polarity).
func ParseGenlib(r io.Reader) (*Library, error) {
	lib := NewLibrary("genlib")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)

	// Tokenize the whole input; genlib statements can span lines.
	var tokens []string
	lineOf := make(map[int]int) // token index -> line number, for errors
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		// Split but keep '=' and ';' attached handling below.
		for _, f := range strings.Fields(line) {
			lineOf[len(tokens)] = lineNo
			tokens = append(tokens, f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	i := 0
	next := func() (string, bool) {
		if i >= len(tokens) {
			return "", false
		}
		t := tokens[i]
		i++
		return t, true
	}
	peek := func() string {
		if i >= len(tokens) {
			return ""
		}
		return tokens[i]
	}
	errAt := func(format string, args ...any) error {
		ln := lineOf[i-1]
		return fmt.Errorf("genlib line %d: %s", ln, fmt.Sprintf(format, args...))
	}

	for {
		t, ok := next()
		if !ok {
			break
		}
		if t != "GATE" {
			return nil, errAt("expected GATE, got %q", t)
		}
		name, ok := next()
		if !ok {
			return nil, errAt("GATE missing name")
		}
		areaTok, ok := next()
		if !ok {
			return nil, errAt("GATE %s missing area", name)
		}
		area, err := strconv.ParseFloat(areaTok, 64)
		if err != nil {
			return nil, errAt("GATE %s bad area %q", name, areaTok)
		}
		// Function: tokens up to and including the one ending with ';'.
		var fn strings.Builder
		for {
			ft, ok := next()
			if !ok {
				return nil, errAt("GATE %s function not terminated with ';'", name)
			}
			fn.WriteString(ft)
			if strings.HasSuffix(ft, ";") {
				break
			}
			fn.WriteByte(' ')
		}
		fnStr := strings.TrimSuffix(fn.String(), ";")
		eq := strings.IndexByte(fnStr, '=')
		if eq < 0 {
			return nil, errAt("GATE %s function %q missing '='", name, fnStr)
		}
		outName := strings.TrimSpace(fnStr[:eq])
		exprStr := strings.TrimSpace(fnStr[eq+1:])
		varNames := logic.CollectVarNames(exprStr)
		expr, err := logic.ParseExpr(exprStr, varNames)
		if err != nil {
			return nil, errAt("GATE %s: %v", name, err)
		}

		// PIN lines.
		type pinSpec struct {
			cap, maxLoad, intrinsic, drive float64
		}
		pinSpecs := make(map[string]pinSpec)
		var star *pinSpec
		for peek() == "PIN" {
			next() // consume PIN
			pname, ok := next()
			if !ok {
				return nil, errAt("GATE %s: PIN missing name", name)
			}
			if _, ok := next(); !ok { // phase token, ignored
				return nil, errAt("GATE %s pin %s: missing phase", name, pname)
			}
			var nums [6]float64
			for k := 0; k < 6; k++ {
				vtok, ok := next()
				if !ok {
					return nil, errAt("GATE %s pin %s: missing numeric field %d", name, pname, k)
				}
				v, err := strconv.ParseFloat(vtok, 64)
				if err != nil {
					return nil, errAt("GATE %s pin %s: bad number %q", name, pname, vtok)
				}
				nums[k] = v
			}
			spec := pinSpec{
				cap:       nums[0],
				maxLoad:   nums[1],
				intrinsic: (nums[2] + nums[4]) / 2,
				drive:     (nums[3] + nums[5]) / 2,
			}
			if pname == "*" {
				s := spec
				star = &s
			} else {
				pinSpecs[pname] = spec
			}
		}

		var pins []Pin
		intrinsic, drive, maxLoad := 0.0, 0.0, 0.0
		if len(varNames) == 0 && expr.Op != logic.OpConst0 && expr.Op != logic.OpConst1 {
			return nil, errAt("GATE %s has no pins and is not constant", name)
		}
		for _, vn := range varNames {
			spec, ok := pinSpecs[vn]
			if !ok {
				if star == nil {
					return nil, errAt("GATE %s: no PIN line for %s", name, vn)
				}
				spec = *star
			}
			pins = append(pins, Pin{Name: vn, Cap: spec.cap})
			if spec.intrinsic > intrinsic {
				intrinsic = spec.intrinsic
			}
			if spec.drive > drive {
				drive = spec.drive
			}
			if maxLoad == 0 || (spec.maxLoad > 0 && spec.maxLoad < maxLoad) {
				maxLoad = spec.maxLoad
			}
		}
		cell, err := NewCell(name, area, pins, outName, expr, intrinsic, drive, maxLoad)
		if err != nil {
			return nil, errAt("%v", err)
		}
		if err := lib.Add(cell); err != nil {
			return nil, errAt("%v", err)
		}
	}
	if lib.Len() == 0 {
		return nil, fmt.Errorf("genlib: empty library")
	}
	return lib, nil
}

// WriteGenlib emits the library in the same genlib-subset format that
// ParseGenlib reads (one "PIN *" line per gate; rise and fall numbers are
// written equal since the model is symmetric).
func WriteGenlib(w io.Writer, lib *Library) error {
	for _, c := range lib.Cells() {
		varNames := make([]string, len(c.Pins))
		for i, p := range c.Pins {
			varNames[i] = p.Name
		}
		if _, err := fmt.Fprintf(w, "GATE %s %g %s=%s;\n", c.Name, c.Area, c.Output,
			logic.FormatWithNames(c.Function, varNames)); err != nil {
			return err
		}
		capv := 0.0
		if len(c.Pins) > 0 {
			capv = c.Pins[0].Cap
		}
		uniformCaps := true
		for _, p := range c.Pins {
			if p.Cap != capv {
				uniformCaps = false
				break
			}
		}
		if uniformCaps && len(c.Pins) > 0 {
			if _, err := fmt.Fprintf(w, "  PIN * NONINV %g %g %g %g %g %g\n",
				capv, c.MaxLoad, c.Intrinsic, c.Drive, c.Intrinsic, c.Drive); err != nil {
				return err
			}
			continue
		}
		for _, p := range c.Pins {
			if _, err := fmt.Fprintf(w, "  PIN %s NONINV %g %g %g %g %g %g\n",
				p.Name, p.Cap, c.MaxLoad, c.Intrinsic, c.Drive, c.Intrinsic, c.Drive); err != nil {
				return err
			}
		}
	}
	return nil
}

package cellib

import (
	"bytes"
	"strings"
	"testing"

	"powder/internal/logic"
)

func TestNewCellValidation(t *testing.T) {
	pins := []Pin{{Name: "a", Cap: 1}, {Name: "b", Cap: 1}}
	and := logic.And(logic.Var(0), logic.Var(1))
	if _, err := NewCell("and2", 10, pins, "O", and, 1, 0.1, 0); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	cases := []struct {
		name string
		f    func() (*Cell, error)
	}{
		{"empty name", func() (*Cell, error) { return NewCell("", 10, pins, "O", and, 1, 0.1, 0) }},
		{"negative area", func() (*Cell, error) { return NewCell("x", -1, pins, "O", and, 1, 0.1, 0) }},
		{"duplicate pin", func() (*Cell, error) {
			return NewCell("x", 1, []Pin{{Name: "a", Cap: 1}, {Name: "a", Cap: 1}}, "O", and, 1, 0.1, 0)
		}},
		{"function beyond pins", func() (*Cell, error) {
			return NewCell("x", 1, pins[:1], "O", and, 1, 0.1, 0)
		}},
		{"unused pin", func() (*Cell, error) {
			return NewCell("x", 1, pins, "O", logic.Var(0), 1, 0.1, 0)
		}},
		{"negative pin cap", func() (*Cell, error) {
			return NewCell("x", 1, []Pin{{Name: "a", Cap: -1}}, "O", logic.Not(logic.Var(0)), 1, 0.1, 0)
		}},
	}
	for _, c := range cases {
		if _, err := c.f(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCellPredicates(t *testing.T) {
	lib := Lib2()
	inv := lib.Cell("inv")
	if inv == nil || !inv.IsInverter() || inv.IsBuffer() {
		t.Fatalf("inv cell predicates wrong: %v", inv)
	}
	buf := lib.Cell("buf")
	if buf == nil || !buf.IsBuffer() || buf.IsInverter() {
		t.Fatalf("buf cell predicates wrong: %v", buf)
	}
	nand := lib.Cell("nand2")
	if nand.IsInverter() || nand.IsBuffer() {
		t.Fatalf("nand2 misclassified")
	}
	if got := nand.PinIndex("b"); got != 1 {
		t.Errorf("PinIndex(b) = %d, want 1", got)
	}
	if got := nand.PinIndex("zz"); got != -1 {
		t.Errorf("PinIndex(zz) = %d, want -1", got)
	}
}

func TestCellDelayModel(t *testing.T) {
	lib := Lib2()
	nand := lib.Cell("nand2")
	d0 := nand.Delay(0)
	d4 := nand.Delay(4)
	if d0 != nand.Intrinsic {
		t.Errorf("Delay(0) = %v, want intrinsic %v", d0, nand.Intrinsic)
	}
	if d4 <= d0 {
		t.Errorf("delay must grow with load: %v vs %v", d4, d0)
	}
	if got, want := d4-d0, 4*nand.Drive; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("load-dependent part = %v, want %v", got, want)
	}
}

func TestLib2Contents(t *testing.T) {
	lib := Lib2()
	if err := lib.Validate(); err != nil {
		t.Fatalf("Lib2 invalid: %v", err)
	}
	wantCells := []string{"inv", "nand2", "nand3", "nand4", "nor2", "and2", "or2", "xor2", "xnor2", "aoi21", "oai21", "aoi22", "oai22"}
	for _, n := range wantCells {
		if lib.Cell(n) == nil {
			t.Errorf("Lib2 missing %s", n)
		}
	}
	// XOR pins must be heavier than NAND pins (paper Section 3.1 example).
	if lib.Cell("xor2").Pins[0].Cap <= lib.Cell("nand2").Pins[0].Cap {
		t.Errorf("xor2 pin cap should exceed nand2 pin cap")
	}
	// Functional spot checks.
	xnor := lib.Cell("xnor2")
	if xnor.TT.Eval(0) != true || xnor.TT.Eval(1) != false || xnor.TT.Eval(3) != true {
		t.Errorf("xnor2 truth table wrong: %v", xnor.TT)
	}
	aoi21 := lib.Cell("aoi21")
	// !(a*b + c): minterm a=1,b=1,c=0 -> 0; a=0,b=0,c=0 -> 1
	if aoi21.TT.Eval(0b011) || !aoi21.TT.Eval(0) {
		t.Errorf("aoi21 truth table wrong: %v", aoi21.TT)
	}
}

func TestLibraryLookups(t *testing.T) {
	lib := Lib2()
	if lib.Inverter() == nil || lib.Inverter().Name != "inv" {
		t.Errorf("Inverter() = %v", lib.Inverter())
	}
	if lib.Buffer() == nil || lib.Buffer().Name != "buf" {
		t.Errorf("Buffer() = %v", lib.Buffer())
	}
	two := lib.TwoInputCells()
	if len(two) < 6 {
		t.Fatalf("expected several 2-input cells, got %d", len(two))
	}
	for i := 1; i < len(two); i++ {
		if two[i-1].Area > two[i].Area {
			t.Errorf("TwoInputCells not sorted by area")
		}
	}
	nandTT := logic.TTFromExpr(logic.Not(logic.And(logic.Var(0), logic.Var(1))), 2)
	if m := lib.SmallestMatch(nandTT); m == nil || m.Name != "nand2" {
		t.Errorf("SmallestMatch(nand2) = %v", m)
	}
	if m := lib.SmallestMatch(logic.TTConst(true, 0)); m != nil {
		t.Errorf("SmallestMatch(const) should be nil, got %v", m)
	}
}

func TestLibraryDuplicate(t *testing.T) {
	lib := NewLibrary("t")
	inv, _ := NewCell("inv", 1, []Pin{{Name: "a", Cap: 1}}, "O", logic.Not(logic.Var(0)), 1, 0.1, 0)
	if err := lib.Add(inv); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(inv); err == nil {
		t.Errorf("duplicate Add should fail")
	}
}

func TestGenlibRoundTrip(t *testing.T) {
	lib := Lib2()
	var buf bytes.Buffer
	if err := WriteGenlib(&buf, lib); err != nil {
		t.Fatal(err)
	}
	back, err := ParseGenlib(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.Len() != lib.Len() {
		t.Fatalf("round trip lost cells: %d vs %d", back.Len(), lib.Len())
	}
	for _, c := range lib.Cells() {
		b := back.Cell(c.Name)
		if b == nil {
			t.Errorf("cell %s lost in round trip", c.Name)
			continue
		}
		if !b.TT.Equal(c.TT) {
			t.Errorf("cell %s function changed: %v vs %v", c.Name, b.TT, c.TT)
		}
		if b.Area != c.Area {
			t.Errorf("cell %s area changed: %v vs %v", c.Name, b.Area, c.Area)
		}
		if b.Intrinsic != c.Intrinsic || b.Drive != c.Drive {
			t.Errorf("cell %s delay params changed", c.Name)
		}
	}
}

func TestParseGenlibBasics(t *testing.T) {
	src := `
# a tiny library
GATE myinv 10 O=!a;
  PIN a INV 1.5 999 0.5 0.2 0.7 0.4
GATE mynand 20 O=!(a*b);
  PIN * NONINV 1 999 1.0 0.2 1.0 0.2
`
	lib, err := ParseGenlib(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	inv := lib.Cell("myinv")
	if inv == nil {
		t.Fatal("myinv missing")
	}
	if inv.Pins[0].Cap != 1.5 {
		t.Errorf("pin cap = %v, want 1.5", inv.Pins[0].Cap)
	}
	if got, want := inv.Intrinsic, 0.6; got != want { // (0.5+0.7)/2
		t.Errorf("intrinsic = %v, want %v", got, want)
	}
	if got, want := inv.Drive, 0.3; got < want-1e-12 || got > want+1e-12 { // (0.2+0.4)/2
		t.Errorf("drive = %v, want %v", got, want)
	}
	nand := lib.Cell("mynand")
	if nand == nil || nand.NumPins() != 2 {
		t.Fatalf("mynand wrong: %v", nand)
	}
}

func TestParseGenlibErrors(t *testing.T) {
	bad := []string{
		"NOTGATE x 1 O=a;",
		"GATE x",
		"GATE x abc O=!a; PIN a INV 1 1 1 1 1 1",
		"GATE x 1 O=!a",                               // missing semicolon and pins
		"GATE x 1 !a; PIN a INV 1 1 1 1 1 1",          // missing '='
		"GATE x 1 O=!a;",                              // no PIN line
		"GATE x 1 O=!a; PIN a INV 1 1 1 1 1",          // short PIN line
		"GATE x 1 O=!a; PIN a INV 1 1 1 1 1 frog",     // bad number
		"GATE x 1 O=!a*!a + b; PIN a INV 1 1 1 1 1 1", // pin b missing
		"GATE x 1 O=a*!a; PIN * NONINV 1 1 1 1 1 1",   // constant function: unused pins
	}
	for _, src := range bad {
		if _, err := ParseGenlib(strings.NewReader(src)); err == nil {
			t.Errorf("ParseGenlib(%q) should fail", src)
		}
	}
	if _, err := ParseGenlib(strings.NewReader("# only a comment\n")); err == nil {
		t.Errorf("empty library should fail")
	}
}

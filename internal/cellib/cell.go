// Package cellib models the technology library that mapped netlists are
// built from: combinational cells with an area, a Boolean function over
// their input pins, per-pin input capacitances, and the two parameters of
// the paper's linear delay model D = tau + C*R (intrinsic delay and drive
// resistance).
//
// Libraries can be parsed from a genlib-subset text format or taken from
// the built-in Lib2 library, which is modelled on the MCNC lib2.genlib
// library used by the paper's experiments.
package cellib

import (
	"fmt"

	"powder/internal/logic"
)

// Pin is one input pin of a cell.
type Pin struct {
	Name string
	// Cap is the capacitive load the pin presents to its driver, in the
	// library's capacitance unit (the same unit Eq. 1 of the paper sums).
	Cap float64
}

// Cell is a combinational library cell. Cells are immutable once built.
type Cell struct {
	Name string
	Area float64
	// Pins lists the input pins in function-variable order: pin i is
	// variable i of Function.
	Pins []Pin
	// Output is the name of the output pin.
	Output string
	// Function is the cell's logic function over pin indices.
	Function *logic.Expr
	// TT is the function's truth table over len(Pins) variables; it is the
	// functional fingerprint used by matching.
	TT logic.TT
	// Intrinsic is tau in the delay model D = tau + C*R, in time units.
	Intrinsic float64
	// Drive is R in the delay model, in time units per capacitance unit.
	Drive float64
	// MaxLoad is the largest load the cell may drive; zero means unlimited.
	MaxLoad float64
}

// NewCell validates and constructs a cell. The function must reference only
// the given pins and actually depend on each of them.
func NewCell(name string, area float64, pins []Pin, output string, fn *logic.Expr, intrinsic, drive, maxLoad float64) (*Cell, error) {
	if name == "" {
		return nil, fmt.Errorf("cellib: cell needs a name")
	}
	if area < 0 || intrinsic < 0 || drive < 0 || maxLoad < 0 {
		return nil, fmt.Errorf("cellib: cell %s has a negative parameter", name)
	}
	if len(pins) > 6 {
		return nil, fmt.Errorf("cellib: cell %s has %d pins; at most 6 supported", name, len(pins))
	}
	seen := make(map[string]bool, len(pins))
	for _, p := range pins {
		if p.Name == "" {
			return nil, fmt.Errorf("cellib: cell %s has an unnamed pin", name)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cellib: cell %s repeats pin %s", name, p.Name)
		}
		seen[p.Name] = true
		if p.Cap < 0 {
			return nil, fmt.Errorf("cellib: cell %s pin %s has negative capacitance", name, p.Name)
		}
	}
	if fn.MaxVar() >= len(pins) {
		return nil, fmt.Errorf("cellib: cell %s function references pin %d but has only %d pins",
			name, fn.MaxVar(), len(pins))
	}
	tt := logic.TTFromExpr(fn, len(pins))
	for i := range pins {
		if !tt.DependsOn(i) {
			return nil, fmt.Errorf("cellib: cell %s does not depend on pin %s", name, pins[i].Name)
		}
	}
	return &Cell{
		Name:      name,
		Area:      area,
		Pins:      append([]Pin(nil), pins...),
		Output:    output,
		Function:  fn,
		TT:        tt,
		Intrinsic: intrinsic,
		Drive:     drive,
		MaxLoad:   maxLoad,
	}, nil
}

// NumPins returns the number of input pins.
func (c *Cell) NumPins() int { return len(c.Pins) }

// PinIndex returns the index of the named pin, or -1.
func (c *Cell) PinIndex(name string) int {
	for i, p := range c.Pins {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Delay returns the gate delay under the linear model for the given output
// load: D = Intrinsic + load*Drive.
func (c *Cell) Delay(load float64) float64 { return c.Intrinsic + load*c.Drive }

// IsInverter reports whether the cell computes NOT of its single input.
func (c *Cell) IsInverter() bool {
	return len(c.Pins) == 1 && c.TT.Equal(logic.TTFromExpr(logic.Not(logic.Var(0)), 1))
}

// IsBuffer reports whether the cell computes the identity of its single input.
func (c *Cell) IsBuffer() bool {
	return len(c.Pins) == 1 && c.TT.Equal(logic.TTFromExpr(logic.Var(0), 1))
}

// String returns "name(area)".
func (c *Cell) String() string { return fmt.Sprintf("%s(%.0f)", c.Name, c.Area) }

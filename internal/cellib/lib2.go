package cellib

import "powder/internal/logic"

// lib2Spec is one row of the built-in library table.
type lib2Spec struct {
	name      string
	area      float64
	pinCap    float64
	expr      string
	intrinsic float64
	drive     float64
}

// lib2Cells is modelled on the MCNC lib2.genlib library the paper used:
// the same gate families (INV/BUF, NAND/NOR/AND/OR 2-4, XOR/XNOR, AOI/OAI)
// with areas in the same unit system (hundreds to thousands of layout
// units, e.g. NAND2 = 1392). Capacitances follow the paper's Section 3.1
// example: simple-gate inputs load 1 unit, EXOR/EXNOR inputs load 2 units.
// Delay parameters are in nanoseconds for the intrinsic term and
// nanoseconds per capacitance unit for the drive term.
var lib2Cells = []lib2Spec{
	{"inv", 928, 0.9, "!a", 0.40, 0.15},
	{"buf", 1392, 1.0, "a", 0.70, 0.10},
	{"nand2", 1392, 1.0, "!(a*b)", 0.60, 0.15},
	{"nand3", 1856, 1.0, "!(a*b*c)", 0.80, 0.17},
	{"nand4", 2320, 1.0, "!(a*b*c*d)", 1.00, 0.19},
	{"nor2", 1392, 1.0, "!(a+b)", 0.70, 0.16},
	{"nor3", 1856, 1.0, "!(a+b+c)", 0.90, 0.18},
	{"nor4", 2320, 1.0, "!(a+b+c+d)", 1.10, 0.20},
	{"and2", 1856, 1.0, "a*b", 0.90, 0.12},
	{"and3", 2320, 1.0, "a*b*c", 1.10, 0.13},
	{"and4", 2784, 1.0, "a*b*c*d", 1.30, 0.14},
	{"or2", 1856, 1.0, "a+b", 1.00, 0.12},
	{"or3", 2320, 1.0, "a+b+c", 1.20, 0.13},
	{"or4", 2784, 1.0, "a+b+c+d", 1.40, 0.14},
	{"xor2", 2784, 2.0, "a^b", 1.40, 0.18},
	{"xnor2", 2784, 2.0, "!(a^b)", 1.40, 0.18},
	{"aoi21", 1856, 1.0, "!(a*b+c)", 0.80, 0.17},
	{"oai21", 1856, 1.0, "!((a+b)*c)", 0.80, 0.17},
	{"aoi22", 2320, 1.0, "!(a*b+c*d)", 0.90, 0.18},
	{"oai22", 2320, 1.0, "!((a+b)*(c+d))", 0.90, 0.18},
	{"mux2", 2784, 1.0, "a*!c+b*c", 1.30, 0.16},

	// Higher-drive variants (suffix x2/x4): larger area and input
	// capacitance, proportionally lower drive resistance. They are never
	// chosen by the area- or power-cost mapper for lightly loaded nets,
	// but give the re-sizing pass (resize package) real choices, as in the
	// gate re-sizing phase of the paper's Figure 1 flow.
	{"invx2", 1392, 1.6, "!a", 0.42, 0.085},
	{"invx4", 2320, 3.0, "!a", 0.45, 0.048},
	{"bufx2", 1856, 1.7, "a", 0.74, 0.055},
	{"nand2x2", 1856, 1.8, "!(a*b)", 0.63, 0.085},
	{"nor2x2", 1856, 1.8, "!(a+b)", 0.74, 0.090},
	{"and2x2", 2320, 1.8, "a*b", 0.95, 0.068},
	{"or2x2", 2320, 1.8, "a+b", 1.05, 0.068},
	{"xor2x2", 3248, 3.4, "a^b", 1.47, 0.100},
}

// Lib2 returns the built-in library modelled on MCNC lib2.genlib (see
// DESIGN.md for the substitution rationale). A fresh Library is returned on
// every call, so callers may extend their copy freely.
func Lib2() *Library {
	lib := NewLibrary("lib2")
	for _, s := range lib2Cells {
		varNames := logic.CollectVarNames(s.expr)
		expr := logic.MustParseExpr(s.expr, varNames)
		pins := make([]Pin, len(varNames))
		for i, vn := range varNames {
			pins[i] = Pin{Name: vn, Cap: s.pinCap}
		}
		cell, err := NewCell(s.name, s.area, pins, "O", expr, s.intrinsic, s.drive, 0)
		if err != nil {
			panic(err)
		}
		lib.MustAdd(cell)
	}
	if err := lib.Validate(); err != nil {
		panic(err)
	}
	return lib
}

package seq

import (
	"context"
	"io"

	"powder/internal/blif"
	"powder/internal/core"
)

// Options configures a sequential optimization run.
type Options struct {
	// Core configures the combinational engine run on the core.
	// Core.Power.InputProbs is overwritten with the converged steady-state
	// vector (true-input probabilities followed by state-line
	// probabilities).
	Core core.Options
	// Fixpoint configures the steady-state probability iteration.
	// Fixpoint.InputProbs carries the per-primary-input probabilities
	// (e.g. from a -probs file); Fixpoint.Obs defaults to Core.Obs.
	Fixpoint FixpointOptions
}

// Result bundles the fixpoint that seeded the run with the core
// engine's result.
type Result struct {
	// Fixpoint is the converged steady state used for power estimation.
	Fixpoint *FixpointResult
	// Core is the combinational engine's result on the register-cut core;
	// its power numbers are under the converged state probabilities.
	Core *core.Result
}

// Optimize runs the POWDER engine on a sequential circuit. See
// OptimizeCtx.
func Optimize(c *Circuit, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), c, opts)
}

// OptimizeCtx computes the steady-state signal probabilities of the
// state lines, seeds the power model with them, and optimizes the
// combinational core in place. Permissibility is judged at the register
// cut: latch inputs are primary outputs of the core, so the engine's ATPG
// proofs guarantee the next-state and output functions — and therefore
// the state transition structure — are preserved, with no sequential
// reasoning needed. The caller's Circuit still holds the cut afterwards;
// write it with blif.WriteModel to stitch the latches back.
func OptimizeCtx(ctx context.Context, c *Circuit, opts Options) (*Result, error) {
	if opts.Fixpoint.Obs == nil {
		opts.Fixpoint.Obs = opts.Core.Obs
	}
	fp, err := SteadyStateCtx(ctx, c, opts.Fixpoint)
	if err != nil {
		return nil, err
	}
	// Even an all-0.5 vector is passed explicitly: it forces the power
	// model onto biased random vectors, keeping estimates comparable
	// across circuits of the same family regardless of input count.
	opts.Core.Power.InputProbs = fp.CoreInputProbs()
	res, err := core.OptimizeCtx(ctx, c.Core(), opts.Core)
	if res == nil {
		return nil, err
	}
	// A failed engine run may still carry a partial result (ledger,
	// progress so far); pass it through alongside the error.
	return &Result{Fixpoint: fp, Core: res}, err
}

// WriteBLIF writes the optimized sequential circuit; it exists so callers
// need not import blif alongside seq.
func (c *Circuit) WriteBLIF(w io.Writer) error {
	return blif.WriteModel(w, c.Model)
}

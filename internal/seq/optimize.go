package seq

import (
	"context"
	"fmt"
	"io"

	"powder/internal/blif"
	"powder/internal/core"
)

// Options configures a sequential optimization run.
type Options struct {
	// Core configures the combinational engine run on the core.
	// Core.Power.InputProbs is overwritten with the converged steady-state
	// vector (true-input probabilities followed by state-line
	// probabilities).
	Core core.Options
	// Fixpoint configures the steady-state probability iteration.
	// Fixpoint.InputProbs carries the per-primary-input probabilities
	// (e.g. from a -probs file); Fixpoint.Obs defaults to Core.Obs.
	Fixpoint FixpointOptions
	// Activity, when non-nil, folds a measured workload activity binding
	// into the run: matched true-input probabilities seed the fixpoint,
	// matched state-line probabilities override the converged values
	// (the dump observed the real state distribution — trust it over the
	// model), and the toggle densities pin E(i) across the register cut.
	Activity *ActivityOverride
}

// ActivityOverride carries a workload activity binding over the core
// inputs — true primary inputs followed by state lines, in
// Core().Inputs() order (the order activity.Profile.Bind produces when
// given the core input names).
type ActivityOverride struct {
	// Probs is the per-core-input signal probability.
	Probs []float64
	// Toggles is the per-core-input transition density (NaN = unpinned),
	// passed through to power.Options.InputToggles.
	Toggles []float64
	// Matched flags which entries were actually observed in the dump;
	// unmatched entries defer to the fixpoint / uniform defaults.
	Matched []bool
}

// apply folds the override into the run options before the fixpoint
// (seeding matched true-input probabilities) and returns the function
// that rewrites the converged core vector afterwards.
func (a *ActivityOverride) apply(c *Circuit, opts *Options) (func(core []float64) []float64, error) {
	nIn := c.Model.NumInputs
	nCore := nIn + len(c.Model.Latches)
	if len(a.Probs) != nCore || len(a.Toggles) != nCore || len(a.Matched) != nCore {
		return nil, fmt.Errorf("seq: activity override covers %d/%d/%d entries for %d core inputs",
			len(a.Probs), len(a.Toggles), len(a.Matched), nCore)
	}
	// Clone before seeding — the caller's -probs vector must not mutate.
	seed := make([]float64, nIn)
	for j := range seed {
		seed[j] = 0.5
	}
	copy(seed, opts.Fixpoint.InputProbs)
	for i := 0; i < nIn; i++ {
		if a.Matched[i] {
			seed[i] = a.Probs[i]
		}
	}
	opts.Fixpoint.InputProbs = seed
	opts.Core.Power.InputToggles = a.Toggles
	return func(core []float64) []float64 {
		for i := nIn; i < nCore; i++ {
			if a.Matched[i] {
				core[i] = a.Probs[i]
			}
		}
		return core
	}, nil
}

// Result bundles the fixpoint that seeded the run with the core
// engine's result.
type Result struct {
	// Fixpoint is the converged steady state used for power estimation.
	Fixpoint *FixpointResult
	// Core is the combinational engine's result on the register-cut core;
	// its power numbers are under the converged state probabilities.
	Core *core.Result
}

// Optimize runs the POWDER engine on a sequential circuit. See
// OptimizeCtx.
func Optimize(c *Circuit, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), c, opts)
}

// OptimizeCtx computes the steady-state signal probabilities of the
// state lines, seeds the power model with them, and optimizes the
// combinational core in place. Permissibility is judged at the register
// cut: latch inputs are primary outputs of the core, so the engine's ATPG
// proofs guarantee the next-state and output functions — and therefore
// the state transition structure — are preserved, with no sequential
// reasoning needed. The caller's Circuit still holds the cut afterwards;
// write it with blif.WriteModel to stitch the latches back.
func OptimizeCtx(ctx context.Context, c *Circuit, opts Options) (*Result, error) {
	if opts.Fixpoint.Obs == nil {
		opts.Fixpoint.Obs = opts.Core.Obs
	}
	var override func([]float64) []float64
	if opts.Activity != nil {
		var err error
		override, err = opts.Activity.apply(c, &opts)
		if err != nil {
			return nil, err
		}
	}
	fp, err := SteadyStateCtx(ctx, c, opts.Fixpoint)
	if err != nil {
		return nil, err
	}
	// Even an all-0.5 vector is passed explicitly: it forces the power
	// model onto biased random vectors, keeping estimates comparable
	// across circuits of the same family regardless of input count.
	coreProbs := fp.CoreInputProbs()
	if override != nil {
		coreProbs = override(coreProbs)
	}
	opts.Core.Power.InputProbs = coreProbs
	res, err := core.OptimizeCtx(ctx, c.Core(), opts.Core)
	if res == nil {
		return nil, err
	}
	// A failed engine run may still carry a partial result (ledger,
	// progress so far); pass it through alongside the error.
	return &Result{Fixpoint: fp, Core: res}, err
}

// WriteBLIF writes the optimized sequential circuit; it exists so callers
// need not import blif alongside seq.
func (c *Circuit) WriteBLIF(w io.Writer) error {
	return blif.WriteModel(w, c.Model)
}

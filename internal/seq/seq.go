// Package seq layers sequential-circuit support over the combinational
// POWDER engine. A sequential design is modeled as its combinational core
// cut at the register boundaries (blif.Model): latch outputs are pseudo
// primary inputs, latch inputs pseudo primary outputs. The package adds
// what the combinational pipeline cannot know — the signal probabilities
// of the state lines, obtained as the steady state of the core's
// input→next-state probability map — and an Optimize entry point that
// runs core.OptimizeCtx on the core with the converged probabilities and
// stitches the registers back.
//
// The steady-state computation is a damped Picard iteration over exact
// zero-delay probability propagation: each gate's output probability is
// the on-set weight of its truth table under independent pin
// probabilities. The map is smooth, so convergence to tight tolerances
// (1e-6) is meaningful — unlike bit-parallel sampling, which is quantized
// to 1/nvec. Oscillating state feedback (e.g. cross-coupled inversions)
// makes the undamped map periodic; damping averages the orbit into the
// fixpoint. Hitting the iteration cap is reported as an explicit
// ErrDiverged, never a hang.
package seq

import (
	"context"
	"errors"
	"fmt"
	"math"

	"powder/internal/blif"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
)

// Circuit is a sequential circuit: a validated register-boundary cut.
type Circuit struct {
	// Model is the underlying cut (combinational core + latches).
	Model *blif.Model
}

// FromModel wraps a parsed model after checking the cut invariants. The
// model may be combinational (no latches); SteadyState then degenerates
// to a single propagation pass.
func FromModel(m *blif.Model) (*Circuit, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("seq: %v", err)
	}
	return &Circuit{Model: m}, nil
}

// Core returns the combinational core netlist.
func (c *Circuit) Core() *netlist.Netlist { return c.Model.Netlist }

// NumLatches returns the register count.
func (c *Circuit) NumLatches() int { return len(c.Model.Latches) }

// ErrDiverged is wrapped by SteadyState when the iteration cap is hit
// before the residual reaches the tolerance.
var ErrDiverged = errors.New("seq: probability fixpoint diverged")

// FixpointOptions configures SteadyState. The zero value asks for the
// defaults; negative Damping disables damping.
type FixpointOptions struct {
	// Tol is the convergence tolerance on the max-norm state-probability
	// residual (0 = 1e-6).
	Tol float64
	// MaxIter caps the iteration count; hitting it is ErrDiverged
	// (0 = 1000).
	MaxIter int
	// Damping is the retained fraction of the previous iterate:
	// p' = (1-d)·f(p) + d·p. 0 = default 0.5; negative = undamped.
	Damping float64
	// InputProbs optionally gives the signal probability of each true
	// primary input, in Core().Inputs()[:NumInputs] order (nil = all 0.5).
	InputProbs []float64
	// Obs receives fixpoint events and metrics (nil-safe).
	Obs *obs.Observer
}

func (o *FixpointOptions) normalize(c *Circuit) error {
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.Tol < 0 {
		return fmt.Errorf("seq: negative fixpoint tolerance %g", o.Tol)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	if o.Damping == 0 {
		o.Damping = 0.5
	}
	if o.Damping < 0 {
		o.Damping = 0
	}
	if o.Damping >= 1 {
		return fmt.Errorf("seq: damping %g would freeze the iteration (want < 1)", o.Damping)
	}
	if o.InputProbs != nil && len(o.InputProbs) != c.Model.NumInputs {
		return fmt.Errorf("seq: got %d input probabilities, circuit has %d true primary inputs",
			len(o.InputProbs), c.Model.NumInputs)
	}
	for i, p := range o.InputProbs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("seq: input probability %d = %g outside [0,1]", i, p)
		}
	}
	return nil
}

// FixpointResult reports a converged steady state.
type FixpointResult struct {
	// Iterations is the number of Picard steps taken (1 for a
	// combinational circuit).
	Iterations int
	// Residual is the final max-norm change of the state probabilities.
	Residual float64
	// StateProbs holds the converged signal probability of each state
	// line, in latch order.
	StateProbs []float64
	// InputProbs echoes the true-primary-input probabilities used.
	InputProbs []float64
}

// CoreInputProbs returns the probability vector over ALL core inputs —
// true primary inputs followed by state lines — the layout
// power.Options.InputProbs and sim.SetInputsRandom expect.
func (r *FixpointResult) CoreInputProbs() []float64 {
	out := make([]float64, 0, len(r.InputProbs)+len(r.StateProbs))
	out = append(out, r.InputProbs...)
	return append(out, r.StateProbs...)
}

// SteadyState iterates the core's input→next-state probability map to a
// fixpoint and returns the converged state-line probabilities. It is
// SteadyStateCtx under a background context.
func SteadyState(c *Circuit, opts FixpointOptions) (*FixpointResult, error) {
	return SteadyStateCtx(context.Background(), c, opts)
}

// SteadyStateCtx iterates the core's input→next-state probability map to
// a fixpoint and returns the converged state-line probabilities. State
// probabilities start from the declared latch init values (0→0, 1→1,
// don't-care/unknown→0.5). Divergence (iteration cap) returns the last
// iterate wrapped in ErrDiverged so callers can still inspect it.
//
// The iteration is observable: a "fixpoint" span (with per-iteration
// child spans) nests under any tracer on ctx, and when the observer's
// event stream is on, every Picard step emits a "seq.fixpoint.iter"
// event with its residual — the convergence trajectory, not just the
// converged point.
func SteadyStateCtx(ctx context.Context, c *Circuit, opts FixpointOptions) (*FixpointResult, error) {
	if err := opts.normalize(c); err != nil {
		return nil, err
	}
	m := c.Model
	inProbs := opts.InputProbs
	if inProbs == nil {
		inProbs = make([]float64, m.NumInputs)
		for i := range inProbs {
			inProbs[i] = 0.5
		}
	}

	state := make([]float64, len(m.Latches))
	for i, l := range m.Latches {
		switch l.Init {
		case 0:
			state[i] = 0
		case 1:
			state[i] = 1
		default: // don't care / unknown
			state[i] = 0.5
		}
	}

	prop := newPropagator(m.Netlist)
	res := &FixpointResult{StateProbs: state, InputProbs: inProbs}
	if len(m.Latches) == 0 {
		// Combinational: one pass, no feedback to iterate.
		res.Iterations = 1
		return res, nil
	}

	fctx, fpSpan := trace.StartSpan(ctx, "fixpoint")
	fpSpan.SetAttr("circuit", m.Netlist.Name)
	fpSpan.SetAttr("latches", len(m.Latches))
	fpSpan.SetAttr("damping", opts.Damping)
	endFixpoint := func(outcome string) {
		fpSpan.SetAttr("outcome", outcome)
		fpSpan.SetAttr("iterations", res.Iterations)
		fpSpan.SetAttr("residual", res.Residual)
		fpSpan.End()
	}

	next := make([]float64, len(state))
	for iter := 1; iter <= opts.MaxIter; iter++ {
		_, iterSpan := trace.StartSpan(fctx, "fixpoint-iter")
		prop.run(inProbs, state)
		residual := 0.0
		for i := range state {
			f := prop.prob(m.NextStatePO(i).Driver)
			n := (1-opts.Damping)*f + opts.Damping*state[i]
			if d := math.Abs(n - state[i]); d > residual {
				residual = d
			}
			next[i] = n
		}
		state, next = next, state
		res.StateProbs = state
		res.Iterations = iter
		res.Residual = residual
		iterSpan.SetAttr("iteration", iter)
		iterSpan.SetAttr("residual", residual)
		iterSpan.End()
		if opts.Obs.Tracing() {
			opts.Obs.Emit("seq.fixpoint.iter", obs.Fields{
				"circuit":   m.Netlist.Name,
				"iteration": iter,
				"residual":  residual,
				"damping":   opts.Damping,
			})
		}
		if residual <= opts.Tol {
			opts.Obs.Counter("seq.fixpoint.converged").Inc()
			opts.Obs.Histogram("seq.fixpoint.iterations").Observe(float64(iter))
			opts.Obs.Emit("seq.fixpoint", obs.Fields{
				"circuit":    m.Netlist.Name,
				"latches":    len(m.Latches),
				"iterations": iter,
				"residual":   residual,
			})
			endFixpoint("converged")
			return res, nil
		}
	}
	endFixpoint("diverged")
	opts.Obs.Counter("seq.fixpoint.diverged").Inc()
	opts.Obs.Emit("seq.fixpoint.diverged", obs.Fields{
		"circuit":  m.Netlist.Name,
		"latches":  len(m.Latches),
		"max_iter": opts.MaxIter,
		"residual": res.Residual,
		"tol":      opts.Tol,
	})
	return res, fmt.Errorf("%w: residual %.3g after %d iterations (tol %.3g); try damping or a larger cap",
		ErrDiverged, res.Residual, opts.MaxIter, opts.Tol)
}

// propagator computes exact zero-delay signal probabilities over the core
// under an independence assumption: a gate's output probability is its
// truth table's on-set weight with each minterm weighted by the product
// of its pin probabilities.
type propagator struct {
	nl    *netlist.Netlist
	order []netlist.NodeID
	p     []float64 // per-node signal probability, indexed by NodeID
}

func newPropagator(nl *netlist.Netlist) *propagator {
	return &propagator{nl: nl, order: nl.TopoOrder(), p: make([]float64, nl.NumNodes())}
}

// run fills the per-node probabilities for the given true-input and
// state-line probabilities (concatenated in core input order).
func (pr *propagator) run(inProbs, stateProbs []float64) {
	inputs := pr.nl.Inputs()
	for i, id := range inputs {
		if i < len(inProbs) {
			pr.p[id] = inProbs[i]
		} else {
			pr.p[id] = stateProbs[i-len(inProbs)]
		}
	}
	for _, id := range pr.order {
		n := pr.nl.Node(id)
		if n.Kind() != netlist.KindGate {
			continue
		}
		tt := n.Cell().TT
		fanins := n.Fanins()
		out := 0.0
		for minterm := uint(0); minterm < 1<<uint(len(fanins)); minterm++ {
			if !tt.Eval(minterm) {
				continue
			}
			w := 1.0
			for pin, f := range fanins {
				if minterm&(1<<uint(pin)) != 0 {
					w *= pr.p[f]
				} else {
					w *= 1 - pr.p[f]
				}
			}
			out += w
		}
		pr.p[id] = out
	}
}

// prob returns the last computed probability of a node.
func (pr *propagator) prob(id netlist.NodeID) float64 { return pr.p[id] }

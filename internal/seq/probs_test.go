package seq

import (
	"strings"
	"testing"
)

func TestParseProbs(t *testing.T) {
	src := `
# traffic profile
en = 0.1
rst=0   # cold
mode =1
`
	entries, err := ParseProbs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []ProbEntry{
		{Name: "en", P: 0.1, Line: 3},
		{Name: "rst", P: 0, Line: 4},
		{Name: "mode", P: 1, Line: 5},
	}
	if len(entries) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(entries), len(want))
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, entries[i], want[i])
		}
	}
}

func TestParseProbsErrors(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string
	}{
		"no equals":    {"en 0.5\n", "line 1"},
		"empty name":   {"=0.5\n", "line 1"},
		"not a number": {"\nen=high\n", "line 2"},
		"above one":    {"en=0.5\nb=1.5\n", "line 2"},
		"negative":     {"en=-0.1\n", "line 1"},
		"nan":          {"en=NaN\n", "line 1"},
	}
	for name, c := range cases {
		_, err := ParseProbs(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("%s: ParseProbs should fail", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %s", name, err, c.want)
		}
	}
}

func TestResolveProbs(t *testing.T) {
	c := mustCircuit(t, counter2) // true PI: en; state lines: q0 q1
	entries, err := ParseProbs(strings.NewReader("en=0.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	probs, err := ResolveProbs(entries, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 1 || probs[0] != 0.25 {
		t.Errorf("resolved %v, want [0.25]", probs)
	}

	// Absent file resolves to nil (caller default).
	if probs, err := ResolveProbs(nil, c); err != nil || probs != nil {
		t.Errorf("empty entries: %v, %v", probs, err)
	}
}

func TestResolveProbsErrors(t *testing.T) {
	c := mustCircuit(t, counter2)
	cases := map[string]struct {
		src  string
		want string
	}{
		"unknown input": {"en=0.5\nnosuch=0.5\n", "line 2"},
		"duplicate":     {"en=0.5\nen=0.6\n", "line 2"},
		"state line":    {"q0=0.5\n", "latch output"},
	}
	for name, cse := range cases {
		entries, err := ParseProbs(strings.NewReader(cse.src))
		if err != nil {
			t.Fatal(err)
		}
		_, err = ResolveProbs(entries, c)
		if err == nil {
			t.Errorf("%s: ResolveProbs should fail", name)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, cse.want)
		}
	}
}

package seq

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"powder/internal/blif"
	"powder/internal/netlist"
)

// ProbEntry is one parsed line of a signal-probability file.
type ProbEntry struct {
	Name string
	P    float64
	Line int
}

// ParseProbs reads a per-primary-input signal-probability file: one
// "name=p" per line, '#' comments, blank lines ignored. Probabilities
// must lie in [0,1]; violations and malformed lines are rejected with the
// offending line number. Name resolution happens later (ResolveProbs), so
// the same file parses against any circuit.
func ParseProbs(r io.Reader) ([]ProbEntry, error) {
	sc := bufio.NewScanner(r)
	var entries []ProbEntry
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("probs line %d: want \"name=p\", got %q", lineNo, line)
		}
		name := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("probs line %d: bad probability %q for %q", lineNo, val, name)
		}
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("probs line %d: probability %g for %q outside [0,1]", lineNo, p, name)
		}
		entries = append(entries, ProbEntry{Name: name, P: p, Line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("probs line %d: %v", lineNo+1, err)
	}
	return entries, nil
}

// ResolveProbs turns parsed entries into a probability vector over the
// circuit's true primary inputs (Core().Inputs()[:NumInputs] order).
// Inputs without an entry default to 0.5. Unknown and duplicate names are
// rejected with the offending line number — a misspelled input silently
// defaulting to 0.5 would corrupt the whole estimate.
func ResolveProbs(entries []ProbEntry, c *Circuit) ([]float64, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	m := c.Model
	index := make(map[string]int, m.NumInputs)
	for i, id := range m.Netlist.Inputs()[:m.NumInputs] {
		index[m.Netlist.Node(id).Name()] = i
	}
	probs := make([]float64, m.NumInputs)
	for i := range probs {
		probs[i] = 0.5
	}
	seenAt := make(map[string]int, len(entries))
	for _, e := range entries {
		if at, dup := seenAt[e.Name]; dup {
			return nil, fmt.Errorf("probs line %d: duplicate entry for %q (first on line %d)", e.Line, e.Name, at)
		}
		seenAt[e.Name] = e.Line
		i, ok := index[e.Name]
		if !ok {
			if isStateLine(c, e.Name) {
				return nil, fmt.Errorf("probs line %d: %q is a latch output; state-line probabilities come from the fixpoint, not the probs file", e.Line, e.Name)
			}
			return nil, fmt.Errorf("probs line %d: circuit %s has no primary input %q", e.Line, m.Netlist.Name, e.Name)
		}
		probs[i] = e.P
	}
	return probs, nil
}

func isStateLine(c *Circuit, name string) bool {
	m := c.Model
	for _, id := range m.Netlist.Inputs()[m.NumInputs:] {
		if m.Netlist.Node(id).Name() == name {
			return true
		}
	}
	return false
}

// ResolveProbsNetlist is the combinational-circuit variant: the vector
// covers every input of the netlist.
func ResolveProbsNetlist(entries []ProbEntry, nl *netlist.Netlist) ([]float64, error) {
	return ResolveProbs(entries, &Circuit{Model: &blif.Model{
		Netlist:    nl,
		NumInputs:  len(nl.Inputs()),
		NumOutputs: len(nl.Outputs()),
	}})
}

package seq

import (
	"errors"
	"math"
	"strings"
	"testing"

	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/sim"
)

const counter2 = `
.model counter2
.inputs en
.outputs wrap
.latch n0 q0 re clk 0
.latch n1 q1 re clk 0
.gate xor2 a=q0 b=en O=n0
.gate and2 a=en b=q0 O=c0
.gate xor2 a=q1 b=c0 O=n1
.gate and2 a=c0 b=q1 O=wrap
.end
`

// crossCoupled has two registers whose next-state functions invert each
// other's state: q0' = !q1, q1' = !q0. From init (0,0) the undamped
// probability map oscillates (0,0)→(1,1)→(0,0) forever; any damping pulls
// it into the p = 0.5 fixpoint.
const crossCoupled = `
.model xcpl
.inputs a
.outputs y
.latch d0 q0 re clk 0
.latch d1 q1 re clk 0
.gate inv a=q1 O=d0
.gate inv a=q0 O=d1
.gate and2 a=q0 b=a O=y
.end
`

func mustCircuit(t *testing.T, src string) *Circuit {
	t.Helper()
	m, err := blif.ReadModel(strings.NewReader(src), cellib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSteadyStateCounter(t *testing.T) {
	c := mustCircuit(t, counter2)
	res, err := SteadyState(c, FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// With p(en)=0.5 every counter bit settles at 0.5: the toggle map is
	// q' = q ⊕ carry = q + p_c - 2·q·p_c, whose fixpoint is 0.5 for any
	// carry probability in (0,1].
	for i, p := range res.StateProbs {
		if math.Abs(p-0.5) > 1e-4 {
			t.Errorf("state %d converged to %g, want 0.5", i, p)
		}
	}
	if res.Residual > 1e-6 {
		t.Errorf("residual %g above tolerance", res.Residual)
	}
	if got := res.CoreInputProbs(); len(got) != 3 {
		t.Errorf("core input probs length %d, want 3", len(got))
	}
}

func TestSteadyStateBiasedInput(t *testing.T) {
	c := mustCircuit(t, counter2)
	// en pinned high makes bit 0 toggle every cycle (q0' = !q0): the
	// undamped map is 2-periodic, so this doubles as the damping case.
	res, err := SteadyState(c, FixpointOptions{InputProbs: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.StateProbs[0]-0.5) > 1e-4 {
		t.Errorf("q0 converged to %g, want 0.5", res.StateProbs[0])
	}
	// en pinned low freezes the counter at its init state.
	res, err = SteadyState(c, FixpointOptions{InputProbs: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.StateProbs {
		if p != 0 {
			t.Errorf("state %d = %g with en=0, want 0 (init value)", i, p)
		}
	}
}

func TestSteadyStateDivergenceIsExplicit(t *testing.T) {
	c := mustCircuit(t, crossCoupled)
	reg := obs.NewRegistry()
	o := obs.New(nil, reg)
	_, err := SteadyState(c, FixpointOptions{Damping: -1, MaxIter: 25, Obs: o})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("undamped cross-coupled pair should diverge, got %v", err)
	}
	if !strings.Contains(err.Error(), "25 iterations") {
		t.Errorf("divergence error should name the cap: %v", err)
	}
	if got := o.Counter("seq.fixpoint.diverged").Value(); got != 1 {
		t.Errorf("diverged counter = %d, want 1", got)
	}

	// The same circuit under default damping converges to 0.5/0.5.
	res, err := SteadyState(c, FixpointOptions{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.StateProbs {
		if math.Abs(p-0.5) > 1e-4 {
			t.Errorf("damped state %d = %g, want 0.5", i, p)
		}
	}
	if got := o.Counter("seq.fixpoint.converged").Value(); got != 1 {
		t.Errorf("converged counter = %d, want 1", got)
	}
}

func TestSteadyStateCombinational(t *testing.T) {
	c := mustCircuit(t, ".model comb\n.inputs a b\n.outputs y\n.gate and2 a=a b=b O=y\n.end\n")
	res, err := SteadyState(c, FixpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 || len(res.StateProbs) != 0 {
		t.Errorf("combinational fixpoint: %d iterations, %d states", res.Iterations, len(res.StateProbs))
	}
}

func TestFixpointOptionValidation(t *testing.T) {
	c := mustCircuit(t, counter2)
	cases := map[string]FixpointOptions{
		"negative tol":      {Tol: -1},
		"damping 1":         {Damping: 1},
		"wrong prob count":  {InputProbs: []float64{0.5, 0.5}},
		"prob out of range": {InputProbs: []float64{1.5}},
	}
	for name, opts := range cases {
		if _, err := SteadyState(c, opts); err == nil {
			t.Errorf("%s: SteadyState should fail", name)
		}
	}
}

// TestPropagatorMatchesExhaustiveSim checks the analytic propagation
// against exhaustive simulation on a reconvergence-free circuit, where
// the independence assumption is exact.
func TestPropagatorMatchesExhaustiveSim(t *testing.T) {
	lib := cellib.Lib2()
	src := `
.model tree
.inputs a b c d
.outputs y
.gate nand2 a=a b=b O=t0
.gate or2 a=c b=d O=t1
.gate xor2 a=t0 b=t1 O=y
.end
`
	nl, err := blif.Read(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	pr := newPropagator(nl)
	pr.run([]float64{0.5, 0.5, 0.5, 0.5}, nil)

	s := sim.New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	nl.LiveNodes(func(n *netlist.Node) {
		id := nl.FindNode(n.Name())
		want := s.Probability(id)
		if math.Abs(pr.prob(id)-want) > 1e-12 {
			t.Errorf("signal %s: analytic %g, exhaustive %g", n.Name(), pr.prob(id), want)
		}
	})
}

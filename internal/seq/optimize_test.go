package seq

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"powder/internal/atpg"
	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/core"
)

// redundant2 is a sequential circuit whose next-state cone contains
// redundancy (n0 recomputes q0∧en twice), giving the optimizer room to
// move while the counter structure keeps the fixpoint interesting.
const redundant2 = `
.model redundant2
.inputs en
.outputs obs
.latch n0 q0 re clk 0
.latch n1 q1 re clk 0
.gate and2 a=en b=q0 O=t0
.gate and2 a=q0 b=en O=t1
.gate or2 a=t0 b=t1 O=n0
.gate xor2 a=q1 b=t0 O=n1
.gate or2 a=q1 b=t1 O=obs
.end
`

func TestOptimizeSequential(t *testing.T) {
	c := mustCircuit(t, redundant2)
	before := c.Core().Clone()

	res, err := Optimize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixpoint == nil || res.Fixpoint.Residual > 1e-6 {
		t.Fatalf("fixpoint did not converge: %+v", res.Fixpoint)
	}
	if res.Core.Final.Power > res.Core.Initial.Power {
		t.Errorf("power increased: %.4f -> %.4f", res.Core.Initial.Power, res.Core.Final.Power)
	}

	// The optimized core must stay combinationally equivalent at the
	// register cut (outputs include the next-state pseudo-POs).
	eq, err := atpg.Equivalent(before, c.Core(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Verdict != atpg.Permissible {
		t.Fatalf("optimized core not equivalent at the cut: %+v", eq)
	}

	// The result must still write as valid sequential BLIF and round-trip.
	var buf bytes.Buffer
	if err := c.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := blif.ReadModel(bytes.NewReader(buf.Bytes()), cellib.Lib2())
	if err != nil {
		t.Fatalf("optimized BLIF unreadable: %v\n%s", err, buf.String())
	}
	if len(back.Latches) != c.NumLatches() {
		t.Errorf("latch count changed: %d -> %d", c.NumLatches(), len(back.Latches))
	}
}

// TestOptimizeSeedsStateProbs pins that the converged state probabilities
// actually reach the power model: with en=0 the counter freezes and every
// state line has probability 0, so total power must be far below the
// all-0.5 default.
func TestOptimizeSeedsStateProbs(t *testing.T) {
	frozen := mustCircuit(t, counter2)
	resFrozen, err := Optimize(frozen, Options{
		Fixpoint: FixpointOptions{InputProbs: []float64{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	free := mustCircuit(t, counter2)
	resFree, err := Optimize(free, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resFrozen.Core.Initial.Power >= resFree.Core.Initial.Power/4 {
		t.Errorf("frozen counter power %.5f should be well below free-running %.5f",
			resFrozen.Core.Initial.Power, resFree.Core.Initial.Power)
	}
}

func TestOptimizeDivergencePropagates(t *testing.T) {
	c := mustCircuit(t, crossCoupled)
	_, err := Optimize(c, Options{Fixpoint: FixpointOptions{Damping: -1, MaxIter: 10}})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergence should abort the run, got %v", err)
	}
}

// TestOptimizeRespectsCoreOptions smoke-checks that caller core options
// survive the seeding (ledger on, bounded substitutions).
func TestOptimizeRespectsCoreOptions(t *testing.T) {
	c := mustCircuit(t, redundant2)
	res, err := Optimize(c, Options{Core: core.Options{MaxSubstitutions: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Core.Applied > 1 {
		t.Errorf("MaxSubstitutions=1 ignored: applied %d", res.Core.Applied)
	}
}

func TestOptimizeWithActivityOverride(t *testing.T) {
	// Core inputs of redundant2: en, then state lines q0, q1. The
	// override pins en's probability (seeding the fixpoint), asserts the
	// observed q1 distribution over the converged one, and pins toggle
	// densities across the cut.
	c := mustCircuit(t, redundant2)
	nan := math.NaN()
	ov := &ActivityOverride{
		Probs:   []float64{0.9, 0.5, 0.25},
		Toggles: []float64{0.18, nan, 0.375},
		Matched: []bool{true, false, true},
	}
	res, err := Optimize(c, Options{Activity: ov})
	if err != nil {
		t.Fatal(err)
	}
	// The fixpoint ran under the seeded p(en)=0.9.
	if got := res.Fixpoint.InputProbs[0]; got != 0.9 {
		t.Fatalf("fixpoint seeded with p(en)=%g, want 0.9", got)
	}
	// An unmatched state line keeps its converged value; the matched one
	// is overridden in the vector handed to the power model — visible
	// through the run having used biased vectors (initial power differs
	// from the uniform run).
	uniform, err := Optimize(mustCircuit(t, redundant2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Core.Initial.Power == uniform.Core.Initial.Power {
		t.Fatal("activity override did not change the initial estimate")
	}

	// Length mismatch is an explicit error, not a silent partial bind.
	short := &ActivityOverride{Probs: []float64{0.5}, Toggles: []float64{nan}, Matched: []bool{true}}
	if _, err := Optimize(mustCircuit(t, redundant2), Options{Activity: short}); err == nil {
		t.Fatal("short override accepted")
	} else if !strings.Contains(err.Error(), "core inputs") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Package synth is the synthesis substrate that produces the *initial*
// mapped circuits POWDER optimizes, standing in for the SIS/POSE flow the
// paper obtained its benchmarks from (see DESIGN.md). It provides
//
//   - technology-independent optimization: expressions are compiled into a
//     hash-consed graph of 2-input AND/OR/XOR and NOT nodes with constant
//     folding, common-subexpression sharing and local Boolean
//     simplification, and
//   - technology mapping: cut enumeration over the graph, matched against
//     the cell library by truth table, covered by dynamic programming under
//     an area or switching-capacitance (low-power) cost.
package synth

import (
	"fmt"

	"powder/internal/logic"
)

// gop is the node kind of the technology-independent graph.
type gop byte

const (
	gConst0 gop = iota
	gVar
	gNot
	gAnd
	gOr
	gXor
)

// graph is a hash-consed DAG of simple logic nodes. Node 0 is constant 0.
type graph struct {
	ops  []gop
	a, b []int32 // fanins (NOT uses a only; VAR stores the input index in a)
	hash map[gkey]int32
	nIn  int
}

type gkey struct {
	op   gop
	a, b int32
}

func newGraph(nIn int) *graph {
	g := &graph{hash: make(map[gkey]int32), nIn: nIn}
	g.ops = append(g.ops, gConst0)
	g.a = append(g.a, 0)
	g.b = append(g.b, 0)
	for i := 0; i < nIn; i++ {
		g.ops = append(g.ops, gVar)
		g.a = append(g.a, int32(i))
		g.b = append(g.b, 0)
	}
	return g
}

func (g *graph) konst(v bool) int32 {
	if v {
		return g.mkNot(0)
	}
	return 0
}

func (g *graph) varNode(i int) int32 { return int32(1 + i) }

func (g *graph) lookup(k gkey) (int32, bool) {
	id, ok := g.hash[k]
	return id, ok
}

func (g *graph) insert(k gkey) int32 {
	id := int32(len(g.ops))
	g.ops = append(g.ops, k.op)
	g.a = append(g.a, k.a)
	g.b = append(g.b, k.b)
	g.hash[k] = id
	return id
}

// isNotOf reports whether x == NOT y structurally.
func (g *graph) isNotOf(x, y int32) bool {
	return (g.ops[x] == gNot && g.a[x] == y) || (g.ops[y] == gNot && g.a[y] == x)
}

func (g *graph) mkNot(x int32) int32 {
	if g.ops[x] == gNot {
		return g.a[x]
	}
	k := gkey{op: gNot, a: x}
	if id, ok := g.lookup(k); ok {
		return id
	}
	return g.insert(k)
}

// isConst1 reports whether the node is the constant-true node NOT(0).
func (g *graph) isConst1(x int32) bool { return g.ops[x] == gNot && g.a[x] == 0 }

func (g *graph) mkAnd(x, y int32) int32 {
	if x > y {
		x, y = y, x
	}
	switch {
	case x == 0:
		return 0
	case g.isConst1(x):
		return y
	case g.isConst1(y):
		return x
	case x == y:
		return x
	case g.isNotOf(x, y):
		return 0
	}
	k := gkey{op: gAnd, a: x, b: y}
	if id, ok := g.lookup(k); ok {
		return id
	}
	return g.insert(k)
}

func (g *graph) mkOr(x, y int32) int32 {
	if x > y {
		x, y = y, x
	}
	one := g.mkNot(0)
	switch {
	case x == 0:
		return y
	case x == one || y == one:
		return one
	case x == y:
		return x
	case g.isNotOf(x, y):
		return one
	}
	k := gkey{op: gOr, a: x, b: y}
	if id, ok := g.lookup(k); ok {
		return id
	}
	return g.insert(k)
}

func (g *graph) mkXor(x, y int32) int32 {
	if x > y {
		x, y = y, x
	}
	one := g.mkNot(0)
	switch {
	case x == y:
		return 0
	case x == 0:
		return y
	case x == one:
		return g.mkNot(y)
	case y == one:
		return g.mkNot(x)
	case g.isNotOf(x, y):
		return one
	}
	// Canonical polarity: fold a NOT on either input into a NOT on the
	// output so shared XORs hash together.
	if g.ops[x] == gNot {
		return g.mkNot(g.mkXor(g.a[x], y))
	}
	if g.ops[y] == gNot {
		return g.mkNot(g.mkXor(x, g.a[y]))
	}
	k := gkey{op: gXor, a: x, b: y}
	if id, ok := g.lookup(k); ok {
		return id
	}
	return g.insert(k)
}

// fromExpr compiles an expression over primary-input variables into the
// graph, splitting n-ary operators into balanced binary trees (the
// technology decomposition step).
func (g *graph) fromExpr(e *logic.Expr) int32 {
	switch e.Op {
	case logic.OpConst0:
		return 0
	case logic.OpConst1:
		return g.konst(true)
	case logic.OpVar:
		if e.Var >= g.nIn {
			panic(fmt.Sprintf("synth: expression references input %d beyond %d", e.Var, g.nIn))
		}
		return g.varNode(e.Var)
	case logic.OpNot:
		return g.mkNot(g.fromExpr(e.Children[0]))
	case logic.OpAnd, logic.OpOr, logic.OpXor:
		ids := make([]int32, len(e.Children))
		for i, c := range e.Children {
			ids[i] = g.fromExpr(c)
		}
		return g.balance(e.Op, ids)
	}
	panic("synth: bad expression op")
}

// balance reduces a list of operands with a balanced binary tree.
func (g *graph) balance(op logic.Op, ids []int32) int32 {
	for len(ids) > 1 {
		var next []int32
		for i := 0; i+1 < len(ids); i += 2 {
			switch op {
			case logic.OpAnd:
				next = append(next, g.mkAnd(ids[i], ids[i+1]))
			case logic.OpOr:
				next = append(next, g.mkOr(ids[i], ids[i+1]))
			default:
				next = append(next, g.mkXor(ids[i], ids[i+1]))
			}
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	return ids[0]
}

// evalWords evaluates every graph node bit-parallel given one word per
// input; used for the mapper's switching-probability estimates.
func (g *graph) evalWords(inWords [][]uint64, words int) [][]uint64 {
	vals := make([][]uint64, len(g.ops))
	vals[0] = make([]uint64, words) // const 0
	for id := 1; id < len(g.ops); id++ {
		v := make([]uint64, words)
		switch g.ops[id] {
		case gVar:
			copy(v, inWords[g.a[id]])
		case gNot:
			src := vals[g.a[id]]
			for w := range v {
				v[w] = ^src[w]
			}
		case gAnd:
			x, y := vals[g.a[id]], vals[g.b[id]]
			for w := range v {
				v[w] = x[w] & y[w]
			}
		case gOr:
			x, y := vals[g.a[id]], vals[g.b[id]]
			for w := range v {
				v[w] = x[w] | y[w]
			}
		case gXor:
			x, y := vals[g.a[id]], vals[g.b[id]]
			for w := range v {
				v[w] = x[w] ^ y[w]
			}
		}
		vals[id] = v
	}
	return vals
}

// fanins returns the fanin ids of a node (0, 1 or 2 of them).
func (g *graph) fanins(id int32) []int32 {
	switch g.ops[id] {
	case gConst0, gVar:
		return nil
	case gNot:
		return []int32{g.a[id]}
	default:
		return []int32{g.a[id], g.b[id]}
	}
}

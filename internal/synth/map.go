package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
)

// CostMode selects the mapper's objective.
type CostMode int

const (
	// CostArea minimizes total cell area (classic mapping).
	CostArea CostMode = iota
	// CostPower minimizes switched capacitance, approximating the
	// low-power mapping of the POSE flow the paper's initial circuits came
	// from.
	CostPower
)

// cut is a cone rooted at a node whose leaves are other graph nodes; the
// cone computes tt over the leaves (variable i = leaves[i]).
type cut struct {
	leaves []int32
	tt     logic.TT
}

const (
	maxCutLeaves = 4
	maxCutsPer   = 10
)

// mapper covers the graph with library cells.
type mapper struct {
	g    *graph
	lib  *cellib.Library
	mode CostMode
	// prob[node] is the estimated signal probability (for CostPower).
	prob []float64
	// refs counts structural references (fanouts + output uses).
	refs []int

	cuts [][]cut
	// best match per node: chosen cut index, cell, the pin permutation
	// (leaf i drives cell pin bestPerm[i]), and whether an inverter
	// follows the cell (complement realization).
	bestCut  []int
	bestCell []*cellib.Cell
	bestPerm [][]int
	bestInv  []bool
	bestCost []float64

	classes map[uint64][]*cellib.Cell
}

// classIndex groups library cells by permutation-equivalence class of
// their truth tables, so cut matching can reorder fanins.
func (m *mapper) classIndex() map[uint64][]*cellib.Cell {
	if m.classes == nil {
		m.classes = make(map[uint64][]*cellib.Cell)
		for _, c := range m.lib.Cells() {
			key := c.TT.NPNClass()
			m.classes[key] = append(m.classes[key], c)
		}
	}
	return m.classes
}

// match finds the cheapest cell realizing the cut's function under some
// input permutation; perm[i] is the cell pin driven by leaf i. When no
// cell computes the function directly, a cell computing its complement
// followed by an inverter is considered (needInv), so NAND/NOR-based
// libraries cover AND/OR cuts.
func (m *mapper) match(c cut) (best *cellib.Cell, bestPerm []int, bestCost float64, needInv, ok bool) {
	try := func(target logic.TT, inv bool) {
		for _, cell := range m.classIndex()[target.NPNClass()] {
			if cell.TT.N != target.N {
				continue
			}
			perm := findPermutation(target, cell.TT)
			if perm == nil {
				continue
			}
			cost := m.matchCost(c, cell, perm)
			if inv {
				cost += m.inverterCost()
			}
			if !ok || cost < bestCost {
				best, bestPerm, bestCost, needInv, ok = cell, perm, cost, inv, true
			}
		}
	}
	try(c.tt, false)
	try(c.tt.Not(), true)
	return best, bestPerm, bestCost, needInv, ok
}

// inverterCost is the DP cost of the complement-realization inverter.
func (m *mapper) inverterCost() float64 {
	inv := m.lib.Inverter()
	if inv == nil {
		return 1e18 // Compile validates the library, so this is unreachable
	}
	switch m.mode {
	case CostPower:
		// The intermediate signal drives one inverter pin; its switching
		// activity is that of the (complemented) node itself, bounded by
		// the worst case 0.5 here since the DP runs before emission.
		return inv.Pins[0].Cap*0.5 + inv.Area*1e-6
	default:
		return inv.Area
	}
}

// findPermutation returns perm with from.Permute(perm) == to, or nil.
func findPermutation(from, to logic.TT) []int {
	perm := make([]int, from.N)
	used := make([]bool, from.N)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == from.N {
			return from.Permute(perm).Bits == to.Bits
		}
		for p := 0; p < from.N; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			perm[i] = p
			if rec(i + 1) {
				return true
			}
			used[p] = false
		}
		return false
	}
	if rec(0) {
		return perm
	}
	return nil
}

// enumerate computes cuts bottom-up. The trivial cut {node} is always
// present (with the identity function) except for leaves.
func (m *mapper) enumerate() {
	g := m.g
	n := len(g.ops)
	m.cuts = make([][]cut, n)
	for id := int32(0); id < int32(n); id++ {
		op := g.ops[id]
		if op == gConst0 || op == gVar {
			continue
		}
		var out []cut
		fan := g.fanins(id)
		// Child cut choices: either the child as a leaf, or (when the
		// child is an internal single-reference node) any of its cuts.
		choices := make([][]cut, len(fan))
		for i, f := range fan {
			ch := []cut{{leaves: []int32{f}, tt: logic.TT{}}}
			if m.refs[f] == 1 && g.ops[f] != gVar && g.ops[f] != gConst0 {
				ch = append(ch, m.cuts[f]...)
			}
			choices[i] = ch
		}
		switch len(fan) {
		case 1:
			for _, c := range choices[0] {
				if nc, ok := m.composeNot(id, c); ok {
					out = append(out, nc)
				}
			}
		case 2:
			for _, ca := range choices[0] {
				for _, cb := range choices[1] {
					if nc, ok := m.compose2(id, ca, cb); ok {
						out = append(out, nc)
					}
				}
			}
		}
		// The direct cut (children as leaves) is always the first
		// combination built above; keep it unconditionally so every node
		// stays mappable, and prefer larger cones among the rest.
		direct := out[0]
		rest := out[1:]
		sort.Slice(rest, func(i, j int) bool { return len(rest[i].leaves) > len(rest[j].leaves) })
		if len(rest) > maxCutsPer-1 {
			rest = rest[:maxCutsPer-1]
		}
		m.cuts[id] = append([]cut{direct}, rest...)
	}
}

// cutTT returns the function of a child cut as seen through its leaves; a
// leaf-cut child contributes the identity on its (single) leaf.
func childTT(c cut) logic.TT {
	if c.tt.N == 0 && len(c.leaves) == 1 {
		return logic.TTVar(0, 1)
	}
	return c.tt
}

// composeNot builds the cut for NOT(child cut).
func (m *mapper) composeNot(id int32, c cut) (cut, bool) {
	base := childTT(c)
	leaves := append([]int32(nil), c.leaves...)
	if len(leaves) > maxCutLeaves {
		return cut{}, false
	}
	return cut{leaves: leaves, tt: base.Not()}, true
}

// compose2 builds the cut for (childA op childB) with merged leaves.
func (m *mapper) compose2(id int32, ca, cb cut) (cut, bool) {
	leaves := append([]int32(nil), ca.leaves...)
	idxB := make([]int, len(cb.leaves))
	for i, l := range cb.leaves {
		found := -1
		for j, e := range leaves {
			if e == l {
				found = j
				break
			}
		}
		if found < 0 {
			if len(leaves) == maxCutLeaves {
				return cut{}, false
			}
			leaves = append(leaves, l)
			found = len(leaves) - 1
		}
		idxB[i] = found
	}
	n := len(leaves)
	if n > 6 {
		return cut{}, false
	}
	ttA := expandTT(childTT(ca), identityMap(len(ca.leaves)), n)
	ttB := expandTT(childTT(cb), idxB, n)
	var tt logic.TT
	switch m.g.ops[id] {
	case gAnd:
		tt = ttA.And(ttB)
	case gOr:
		tt = ttA.Or(ttB)
	case gXor:
		tt = ttA.Xor(ttB)
	default:
		return cut{}, false
	}
	return cut{leaves: leaves, tt: tt}, true
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// expandTT re-expresses tt (over k vars) over n vars with variable i of tt
// mapped to variable vmap[i].
func expandTT(tt logic.TT, vmap []int, n int) logic.TT {
	out := logic.TT{N: n}
	for m := uint(0); m < 1<<uint(n); m++ {
		var sub uint
		for i := 0; i < tt.N; i++ {
			if m>>uint(vmap[i])&1 == 1 {
				sub |= 1 << uint(i)
			}
		}
		if tt.Eval(sub) {
			out.Bits |= 1 << uint64(m)
		}
	}
	return out
}

// matchCost returns the DP cost of realizing the cut with the cell under
// the given pin permutation (leaf i drives pin perm[i]).
func (m *mapper) matchCost(c cut, cell *cellib.Cell, perm []int) float64 {
	cost := 0.0
	switch m.mode {
	case CostArea:
		cost = cell.Area
	case CostPower:
		// Switched capacitance: each leaf drives one cell pin.
		for i, l := range c.leaves {
			p := m.prob[l]
			cost += cell.Pins[perm[i]].Cap * 2 * p * (1 - p)
		}
		cost += cell.Area * 1e-6 // tie-break
	}
	for _, l := range c.leaves {
		cost += m.bestCost[l]
	}
	return cost
}

// cover runs the DP and records the best match per mappable node.
func (m *mapper) cover() error {
	g := m.g
	n := len(g.ops)
	m.bestCut = make([]int, n)
	m.bestCell = make([]*cellib.Cell, n)
	m.bestPerm = make([][]int, n)
	m.bestInv = make([]bool, n)
	m.bestCost = make([]float64, n)
	for id := int32(0); id < int32(n); id++ {
		op := g.ops[id]
		if op == gConst0 || op == gVar {
			m.bestCost[id] = 0
			continue
		}
		bestIdx := -1
		var bestCell *cellib.Cell
		var bestPerm []int
		bestInv := false
		bestCost := 0.0
		for ci, c := range m.cuts[id] {
			cell, perm, cost, inv, ok := m.match(c)
			if !ok {
				continue
			}
			if bestIdx < 0 || cost < bestCost {
				bestIdx, bestCell, bestPerm, bestInv, bestCost = ci, cell, perm, inv, cost
			}
		}
		if bestIdx < 0 {
			return fmt.Errorf("synth: no library match for node %d (op %d)", id, g.ops[id])
		}
		m.bestCut[id] = bestIdx
		m.bestCell[id] = bestCell
		m.bestPerm[id] = bestPerm
		m.bestInv[id] = bestInv
		m.bestCost[id] = bestCost
	}
	return nil
}

// emit walks the chosen cover from the outputs and creates netlist gates.
func (m *mapper) emit(nl *netlist.Netlist, inputIDs []netlist.NodeID, roots []int32) (map[int32]netlist.NodeID, error) {
	mapped := make(map[int32]netlist.NodeID)
	var emitNode func(id int32) (netlist.NodeID, error)
	emitNode = func(id int32) (netlist.NodeID, error) {
		if nid, ok := mapped[id]; ok {
			return nid, nil
		}
		g := m.g
		switch g.ops[id] {
		case gVar:
			nid := inputIDs[g.a[id]]
			mapped[id] = nid
			return nid, nil
		case gConst0:
			nid, err := m.emitConst(nl, inputIDs, false)
			if err != nil {
				return netlist.InvalidNode, err
			}
			mapped[id] = nid
			return nid, nil
		}
		// Constant 1 is NOT(const0); handled via the generic path only if
		// it survived simplification.
		if g.ops[id] == gNot && g.a[id] == 0 {
			nid, err := m.emitConst(nl, inputIDs, true)
			if err != nil {
				return netlist.InvalidNode, err
			}
			mapped[id] = nid
			return nid, nil
		}
		c := m.cuts[id][m.bestCut[id]]
		cell := m.bestCell[id]
		perm := m.bestPerm[id]
		fanins := make([]netlist.NodeID, len(c.leaves))
		for i, l := range c.leaves {
			nid, err := emitNode(l)
			if err != nil {
				return netlist.InvalidNode, err
			}
			fanins[perm[i]] = nid
		}
		nid, err := nl.AddGate("", cell, fanins)
		if err != nil {
			return netlist.InvalidNode, err
		}
		if m.bestInv[id] {
			nid, err = nl.AddGate("", nl.Lib.Inverter(), []netlist.NodeID{nid})
			if err != nil {
				return netlist.InvalidNode, err
			}
		}
		mapped[id] = nid
		return nid, nil
	}
	for _, r := range roots {
		if _, err := emitNode(r); err != nil {
			return nil, err
		}
	}
	return mapped, nil
}

// emitConst realizes a constant output as a gate over the first input
// (x AND NOT x, or its inverse); libraries rarely carry constant cells.
func (m *mapper) emitConst(nl *netlist.Netlist, inputIDs []netlist.NodeID, one bool) (netlist.NodeID, error) {
	if len(inputIDs) == 0 {
		return netlist.InvalidNode, fmt.Errorf("synth: constant output needs at least one input")
	}
	x := inputIDs[0]
	inv := nl.Lib.Inverter()
	nx, err := nl.AddGate("", inv, []netlist.NodeID{x})
	if err != nil {
		return netlist.InvalidNode, err
	}
	var tt logic.TT
	if one {
		tt = logic.TTFromExpr(logic.Or(logic.Var(0), logic.Var(1)), 2)
	} else {
		tt = logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	}
	cell := nl.Lib.SmallestMatch(tt)
	if cell == nil {
		return netlist.InvalidNode, fmt.Errorf("synth: library lacks AND2/OR2 for constant realization")
	}
	return nl.AddGate("", cell, []netlist.NodeID{x, nx})
}

// computeRefs counts structural references including output uses. Only
// nodes reachable from the roots count: hash-consed leftovers from
// simplification must not inhibit cone absorption.
func (m *mapper) computeRefs(roots []int32) {
	g := m.g
	m.refs = make([]int, len(g.ops))
	reach := make([]bool, len(g.ops))
	var walk func(id int32)
	walk = func(id int32) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, f := range g.fanins(id) {
			walk(f)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	for id := int32(1); id < int32(len(g.ops)); id++ {
		if !reach[id] {
			continue
		}
		for _, f := range g.fanins(id) {
			m.refs[f]++
		}
	}
	for _, r := range roots {
		m.refs[r]++
	}
}

// computeProbs estimates per-node signal probabilities with 2048 random
// vectors (only needed for CostPower).
func (m *mapper) computeProbs(seed int64) {
	g := m.g
	const words = 32
	rng := rand.New(rand.NewSource(seed))
	in := make([][]uint64, g.nIn)
	for i := range in {
		in[i] = make([]uint64, words)
		for w := range in[i] {
			in[i][w] = rng.Uint64()
		}
	}
	vals := g.evalWords(in, words)
	m.prob = make([]float64, len(g.ops))
	for id := range vals {
		ones := 0
		for _, w := range vals[id] {
			for x := w; x != 0; x &= x - 1 {
				ones++
			}
		}
		m.prob[id] = float64(ones) / float64(words*64)
	}
}

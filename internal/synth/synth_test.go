package synth

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sim"
)

func TestGraphSimplification(t *testing.T) {
	g := newGraph(3)
	a, b := g.varNode(0), g.varNode(1)
	if g.mkAnd(a, 0) != 0 {
		t.Errorf("a*0 must be 0")
	}
	one := g.konst(true)
	if g.mkAnd(a, one) != a {
		t.Errorf("a*1 must be a")
	}
	if g.mkAnd(a, a) != a {
		t.Errorf("a*a must be a")
	}
	if g.mkAnd(a, g.mkNot(a)) != 0 {
		t.Errorf("a*!a must be 0")
	}
	if g.mkOr(a, g.mkNot(a)) != one {
		t.Errorf("a+!a must be 1")
	}
	if g.mkXor(a, a) != 0 {
		t.Errorf("a^a must be 0")
	}
	if g.mkXor(a, g.mkNot(a)) != one {
		t.Errorf("a^!a must be 1")
	}
	if g.mkNot(g.mkNot(a)) != a {
		t.Errorf("!!a must be a")
	}
	// Hash consing: same operands, same node.
	x1 := g.mkAnd(a, b)
	x2 := g.mkAnd(b, a)
	if x1 != x2 {
		t.Errorf("AND must be hash-consed commutatively")
	}
}

func TestCompilePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lib := cellib.Lib2()
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		inputs := make([]string, n)
		for i := range inputs {
			inputs[i] = logic.VarName(i)
		}
		d := NewDesign("t", inputs...)
		nOut := 1 + rng.Intn(3)
		exprs := make([]*logic.Expr, nOut)
		for i := 0; i < nOut; i++ {
			exprs[i] = randomExpr(rng, n, 5)
			d.AddOutput(logic.VarName(20+i), exprs[i])
		}
		for _, mode := range []CostMode{CostArea, CostPower} {
			nl, err := Compile(d, lib, Options{Mode: mode})
			if err != nil {
				t.Fatalf("trial %d mode %d: %v", trial, mode, err)
			}
			checkAgainstExprs(t, nl, exprs, n)
		}
	}
}

// checkAgainstExprs exhaustively verifies the mapped netlist against the
// source expressions.
func checkAgainstExprs(t *testing.T, nl *netlist.Netlist, exprs []*logic.Expr, n int) {
	t.Helper()
	words := (1<<uint(n) + 63) / 64
	s := sim.New(nl, words)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	for i, e := range exprs {
		driver := nl.Outputs()[i].Driver
		got := s.Value(driver)
		for m := 0; m < 1<<uint(n); m++ {
			in := make([]bool, n)
			for v := 0; v < n; v++ {
				in[v] = m>>uint(v)&1 == 1
			}
			want := e.Eval(in)
			bit := got[m/64]>>uint(m%64)&1 == 1
			if bit != want {
				t.Fatalf("output %d wrong at minterm %d: got %v want %v", i, m, bit, want)
			}
		}
	}
}

func randomExpr(rng *rand.Rand, n, depth int) *logic.Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		v := logic.Var(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(v)
		}
		return v
	}
	k := 2 + rng.Intn(2)
	args := make([]*logic.Expr, k)
	for i := range args {
		args[i] = randomExpr(rng, n, depth-1)
	}
	switch rng.Intn(4) {
	case 0:
		return logic.And(args...)
	case 1:
		return logic.Or(args...)
	case 2:
		return logic.Xor(args[0], args[1])
	default:
		return logic.Not(logic.And(args...))
	}
}

func TestCompileConstantOutputs(t *testing.T) {
	lib := cellib.Lib2()
	d := NewDesign("c", "a", "b")
	d.AddOutput("zero", logic.And(logic.Var(0), logic.Not(logic.Var(0))))
	d.AddOutput("one", logic.Or(logic.Var(1), logic.Not(logic.Var(1))))
	nl, err := Compile(d, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	zero := s.Value(nl.Outputs()[0].Driver)
	one := s.Value(nl.Outputs()[1].Driver)
	if zero[0]&s.ValidMask(0) != 0 {
		t.Errorf("zero output not constant 0")
	}
	if one[0]&s.ValidMask(0) != s.ValidMask(0) {
		t.Errorf("one output not constant 1")
	}
}

func TestCompileUsesComplexCells(t *testing.T) {
	// !(a*b + c) should map to a single aoi21, not three gates, under area
	// cost.
	lib := cellib.Lib2()
	d := NewDesign("aoi", "a", "b", "c")
	d.AddOutput("y", logic.Not(logic.Or(logic.And(logic.Var(0), logic.Var(1)), logic.Var(2))))
	nl, err := Compile(d, lib, Options{Mode: CostArea})
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() != 1 {
		t.Errorf("expected single-gate cover, got %d gates", nl.GateCount())
	}
	var cellName string
	nl.LiveNodes(func(n *netlist.Node) {
		if n.Kind() == netlist.KindGate {
			cellName = n.Cell().Name
		}
	})
	if cellName != "aoi21" {
		t.Errorf("expected aoi21, got %s", cellName)
	}
}

func TestCompileSharesLogic(t *testing.T) {
	// Two outputs sharing a subterm must share gates (hash-consing).
	lib := cellib.Lib2()
	shared := logic.And(logic.Var(0), logic.Var(1))
	d := NewDesign("share", "a", "b", "c")
	d.AddOutput("y1", logic.Or(shared, logic.Var(2)))
	d.AddOutput("y2", logic.Xor(shared, logic.Var(2)))
	nl, err := Compile(d, lib, Options{Mode: CostArea})
	if err != nil {
		t.Fatal(err)
	}
	// Without sharing this needs 4+ gates; with sharing at most 3.
	if nl.GateCount() > 3 {
		t.Errorf("shared subterm not reused: %d gates", nl.GateCount())
	}
}

func TestCompileErrors(t *testing.T) {
	lib := cellib.Lib2()
	d := NewDesign("bad", "a")
	if _, err := Compile(d, lib, Options{}); err == nil {
		t.Errorf("no outputs should fail")
	}
	d.AddOutput("y", logic.Var(3)) // references input 3, only 1 input
	if _, err := Compile(d, lib, Options{}); err == nil {
		t.Errorf("out-of-range input should fail")
	}
}

func TestPowerModeTendsToLowerSwitchedCap(t *testing.T) {
	// On a batch of random designs, the power-aware mapper should on
	// average produce no more switched capacitance than the area mapper.
	rng := rand.New(rand.NewSource(1234))
	lib := cellib.Lib2()
	sumArea, sumPower := 0.0, 0.0
	for trial := 0; trial < 10; trial++ {
		n := 5
		inputs := make([]string, n)
		for i := range inputs {
			inputs[i] = logic.VarName(i)
		}
		d := NewDesign("t", inputs...)
		for i := 0; i < 3; i++ {
			d.AddOutput(logic.VarName(20+i), randomExpr(rng, n, 5))
		}
		nlA, err := Compile(d, lib, Options{Mode: CostArea})
		if err != nil {
			t.Fatal(err)
		}
		nlP, err := Compile(d, lib, Options{Mode: CostPower})
		if err != nil {
			t.Fatal(err)
		}
		sumArea += switchedCap(t, nlA)
		sumPower += switchedCap(t, nlP)
	}
	if sumPower > sumArea*1.1 {
		t.Errorf("power-aware mapping produced more switched cap: %.3f vs %.3f", sumPower, sumArea)
	}
}

func switchedCap(t *testing.T, nl *netlist.Netlist) float64 {
	t.Helper()
	s := sim.New(nl, 32)
	s.SetInputsRandom(1, nil)
	s.Run()
	total := 0.0
	nl.LiveNodes(func(n *netlist.Node) {
		p := s.Probability(n.ID())
		total += nl.Load(n.ID()) * 2 * p * (1 - p)
	})
	return total
}

func TestGraphStats(t *testing.T) {
	d := NewDesign("s", "a", "b")
	d.AddOutput("y", logic.And(logic.Var(0), logic.Var(1)))
	n, err := GraphStats(d)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 { // const0, a, b, and
		t.Errorf("GraphStats = %d", n)
	}
}

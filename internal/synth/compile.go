package synth

import (
	"fmt"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
)

// Design is a technology-independent circuit description: named outputs as
// expressions over named primary inputs (variable i of every expression is
// Inputs[i]).
type Design struct {
	Name    string
	Inputs  []string
	Outputs []Output
}

// Output is one named output function.
type Output struct {
	Name string
	Expr *logic.Expr
}

// NewDesign starts a design with the given input names.
func NewDesign(name string, inputs ...string) *Design {
	return &Design{Name: name, Inputs: inputs}
}

// AddOutput appends an output function.
func (d *Design) AddOutput(name string, e *logic.Expr) *Design {
	d.Outputs = append(d.Outputs, Output{Name: name, Expr: e})
	return d
}

// Var returns the expression for input i (convenience).
func (d *Design) Var(i int) *logic.Expr { return logic.Var(i) }

// Options configures Compile.
type Options struct {
	// Mode selects the mapping objective (default CostPower, matching the
	// paper's POSE-produced initial circuits).
	Mode CostMode
	// Seed drives the probability estimation of the power-aware mapper.
	Seed int64
}

// Compile runs the full synthesis flow on the design: decomposition into a
// simplified 2-input network, cut-based technology mapping, and netlist
// emission. The resulting netlist is the kind of "initial circuit" the
// paper's Table 1 starts from.
func Compile(d *Design, lib *cellib.Library, opts Options) (*netlist.Netlist, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if len(d.Outputs) == 0 {
		return nil, fmt.Errorf("synth: design %s has no outputs", d.Name)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	// Technology-independent phase.
	g := newGraph(len(d.Inputs))
	roots := make([]int32, len(d.Outputs))
	for i, out := range d.Outputs {
		if out.Expr.MaxVar() >= len(d.Inputs) {
			return nil, fmt.Errorf("synth: output %s references input %d beyond %d",
				out.Name, out.Expr.MaxVar(), len(d.Inputs))
		}
		roots[i] = g.fromExpr(out.Expr)
	}

	// Mapping phase.
	m := &mapper{g: g, lib: lib, mode: opts.Mode}
	m.computeRefs(roots)
	if opts.Mode == CostPower {
		m.computeProbs(opts.Seed)
	}
	m.enumerate()
	if err := m.cover(); err != nil {
		return nil, err
	}

	// Emission.
	nl := netlist.New(d.Name, lib)
	inputIDs := make([]netlist.NodeID, len(d.Inputs))
	for i, name := range d.Inputs {
		id, err := nl.AddInput(name)
		if err != nil {
			return nil, err
		}
		inputIDs[i] = id
	}
	mapped, err := m.emit(nl, inputIDs, roots)
	if err != nil {
		return nil, err
	}
	for i, out := range d.Outputs {
		if err := nl.AddOutput(out.Name, mapped[roots[i]]); err != nil {
			return nil, err
		}
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("synth: mapped netlist invalid: %v", err)
	}
	return nl, nil
}

// GraphStats reports the technology-independent network size of a design,
// for diagnostics and tests.
func GraphStats(d *Design) (nodes int, err error) {
	g := newGraph(len(d.Inputs))
	for _, out := range d.Outputs {
		if out.Expr.MaxVar() >= len(d.Inputs) {
			return 0, fmt.Errorf("synth: output %s references input %d beyond %d",
				out.Name, out.Expr.MaxVar(), len(d.Inputs))
		}
		g.fromExpr(out.Expr)
	}
	return len(g.ops), nil
}

package netlist

// Txn records the structural edits made to a netlist between Begin and
// Commit/Rollback so that a failed multi-step edit (e.g. one candidate
// substitution: inserted gates, rewired branches, swept cone) can be
// undone exactly, restoring the pre-transaction structure.
//
// The journal hooks into the editing primitives (AddInput, AddGate,
// AddOutput, ReplaceFanin, RedirectOutput, ReplaceCell, RemoveGate), so
// any edit expressed through them is transactional; direct mutation of
// slices returned by accessors is not journaled and cannot be rolled
// back. Transactions do not nest and the netlist stays single-threaded.
type Txn struct {
	nl   *Netlist
	undo []func()
	done bool
}

// Begin starts recording edits into a transaction. It panics if a
// transaction is already active: substitutions are applied one at a
// time and nesting would make rollback order ambiguous.
func (nl *Netlist) Begin() *Txn {
	if nl.txn != nil {
		panic("netlist: nested transaction")
	}
	t := &Txn{nl: nl}
	nl.txn = t
	return t
}

// InTxn reports whether an edit transaction is currently recording.
func (nl *Netlist) InTxn() bool { return nl.txn != nil }

// logUndo appends an undo step to the active transaction, if any.
func (nl *Netlist) logUndo(f func()) {
	if nl.txn != nil {
		nl.txn.undo = append(nl.txn.undo, f)
	}
}

// Commit keeps the recorded edits and ends the transaction.
func (t *Txn) Commit() {
	t.finish()
	t.undo = nil
}

// Rollback undoes every recorded edit in reverse order, restoring the
// structure the netlist had at Begin, and ends the transaction.
func (t *Txn) Rollback() {
	t.finish()
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
	t.nl.bump()
}

func (t *Txn) finish() {
	if t.done {
		panic("netlist: transaction already committed or rolled back")
	}
	if t.nl.txn != t {
		panic("netlist: transaction is not the active one")
	}
	t.done = true
	t.nl.txn = nil
}

// RestoreFrom overwrites this netlist in place with a deep copy of the
// snapshot's state (typically one taken earlier with Clone from this
// same netlist). Callers holding the *Netlist pointer see the restored
// circuit; the version counter still advances so derived caches
// invalidate. Any active transaction is abandoned — the restore
// supersedes whatever it recorded.
func (nl *Netlist) RestoreFrom(snap *Netlist) {
	nl.txn = nil
	nl.Name = snap.Name
	nl.Lib = snap.Lib
	nl.POLoad = snap.POLoad
	nl.nodes = make([]*Node, len(snap.nodes))
	for i, n := range snap.nodes {
		nl.nodes[i] = &Node{
			id:      n.id,
			kind:    n.kind,
			name:    n.name,
			cell:    n.cell,
			fanins:  append([]NodeID(nil), n.fanins...),
			fanouts: append([]Branch(nil), n.fanouts...),
			dead:    n.dead,
		}
	}
	nl.inputs = append(nl.inputs[:0], snap.inputs...)
	nl.outputs = append(nl.outputs[:0], snap.outputs...)
	nl.byName = make(map[string]NodeID, len(snap.byName))
	for k, v := range snap.byName {
		nl.byName[k] = v
	}
	// Reachability scratch is sized for the old node table; drop it.
	nl.visitMark = nil
	nl.visitStack = nil
	nl.visitEpoch = 0
	nl.bump()
}

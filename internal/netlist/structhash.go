package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// StructuralHash returns a canonical content hash of the circuit: a hex
// SHA-256 over a strash-style bottom-up signature of the DAG. Two
// netlists hash equal exactly when they have the same primary-input
// names (in declared order), the same primary-output names (in declared
// order), and structurally identical cones — the same cells wired the
// same way, pin for pin.
//
// Internal gate names and node numbering do NOT contribute: a circuit
// re-read from a reformatted, reordered, or gate-renamed BLIF file
// hashes identically, which is what makes the hash usable as a
// content-addressed cache key for optimization results (the interface —
// PI/PO names and functions — is what a cached result must match;
// internal names are free to differ).
//
// The signature of a node is
//
//	input:  H("i" | name)
//	gate:   H("g" | cell name | sig(fanin_0) | ... | sig(fanin_k))
//
// computed in topological order, and the final hash folds in the input
// list, the output list (name + driver signature), and each driver's
// PO load, length-prefixing every field so adjacent fields cannot alias.
func (nl *Netlist) StructuralHash() string {
	sigs := make(map[NodeID][32]byte, nl.NumNodes())
	for _, id := range nl.TopoOrder() {
		n := nl.Node(id)
		h := sha256.New()
		if n.IsInput() {
			writeField(h, []byte("i"))
			writeField(h, []byte(n.Name()))
		} else {
			writeField(h, []byte("g"))
			writeField(h, []byte(n.Cell().Name))
			for _, f := range n.Fanins() {
				s := sigs[f]
				writeField(h, s[:])
			}
		}
		var sig [32]byte
		h.Sum(sig[:0])
		sigs[id] = sig
	}

	top := sha256.New()
	writeField(top, []byte("netlist/v1"))
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(nl.Inputs())))
	writeField(top, count[:])
	for _, id := range nl.Inputs() {
		writeField(top, []byte(nl.Node(id).Name()))
	}
	binary.LittleEndian.PutUint64(count[:], uint64(len(nl.Outputs())))
	writeField(top, count[:])
	for _, po := range nl.Outputs() {
		writeField(top, []byte("o"))
		writeField(top, []byte(po.Name))
		s := sigs[po.Driver]
		writeField(top, s[:])
	}
	return hex.EncodeToString(top.Sum(nil))
}

// writeField writes a length-prefixed field into a running hash, so that
// ("ab","c") and ("a","bc") produce different digests.
func writeField(h interface{ Write([]byte) (int, error) }, b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	_, _ = h.Write(n[:])
	_, _ = h.Write(b)
}

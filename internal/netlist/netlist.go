// Package netlist models technology-mapped combinational circuits: a DAG of
// library-cell instances between primary inputs and primary outputs.
//
// Terminology follows the paper: the output signal of a gate is its *stem*
// signal; each connection of that signal to a fanout pin is a *branch*
// signal, identified by the (gate, pin) pair it feeds. Primary outputs are
// named sinks attached to a driver node and are treated as perfectly
// observable fanout branches.
//
// Nodes are never physically deleted; removal marks them dead and detaches
// them, so NodeIDs held by callers stay valid (dead nodes report
// themselves via Node.Dead).
package netlist

import (
	"fmt"

	"powder/internal/cellib"
)

// NodeID identifies a node within one Netlist. The zero netlist has no
// nodes, so any NodeID must come from the netlist it is used with.
type NodeID int

// InvalidNode is the NodeID returned by lookups that find nothing.
const InvalidNode NodeID = -1

// Kind discriminates the node types.
type Kind int

const (
	// KindInput is a primary input.
	KindInput Kind = iota
	// KindGate is a library-cell instance.
	KindGate
)

// Branch identifies one fanout connection: pin Pin of gate Gate.
// A primary-output sink is encoded with Gate == InvalidNode and Pin holding
// the PO index.
type Branch struct {
	Gate NodeID
	Pin  int
}

// IsPO reports whether the branch is a primary-output sink.
func (b Branch) IsPO() bool { return b.Gate == InvalidNode }

// Node is one vertex of the netlist DAG.
type Node struct {
	id      NodeID
	kind    Kind
	name    string
	cell    *cellib.Cell // nil for inputs
	fanins  []NodeID     // one per cell pin, in pin order
	fanouts []Branch
	dead    bool
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Kind returns the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Name returns the node's (unique) name; it also names the stem signal.
func (n *Node) Name() string { return n.name }

// Cell returns the library cell, or nil for a primary input.
func (n *Node) Cell() *cellib.Cell { return n.cell }

// Fanins returns the fanin node per pin. The slice must not be mutated.
func (n *Node) Fanins() []NodeID { return n.fanins }

// Fanouts returns the fanout branches (including PO sinks). The slice must
// not be mutated.
func (n *Node) Fanouts() []Branch { return n.fanouts }

// NumFanouts returns the number of fanout branches including PO sinks.
func (n *Node) NumFanouts() int { return len(n.fanouts) }

// Dead reports whether the node has been removed from the circuit.
func (n *Node) Dead() bool { return n.dead }

// IsInput reports whether the node is a primary input.
func (n *Node) IsInput() bool { return n.kind == KindInput }

// PO is a primary output: a named sink attached to a driver node.
type PO struct {
	Name   string
	Driver NodeID
}

// Netlist is a mutable mapped circuit.
type Netlist struct {
	Name string
	Lib  *cellib.Library
	// POLoad is the capacitive load each primary output presents to its
	// driver (pad/external load). The default is 1 capacitance unit.
	POLoad float64

	nodes   []*Node
	inputs  []NodeID
	outputs []PO
	byName  map[string]NodeID
	version int64
	txn     *Txn // active edit transaction, nil outside Begin/Commit

	// Scratch state for allocation-free reachability queries.
	visitMark  []int64
	visitEpoch int64
	visitStack []NodeID
}

// New returns an empty netlist over the given library.
func New(name string, lib *cellib.Library) *Netlist {
	return &Netlist{Name: name, Lib: lib, POLoad: 1.0, byName: make(map[string]NodeID)}
}

// Version returns a counter that increments on every structural mutation;
// callers use it to invalidate derived caches.
func (nl *Netlist) Version() int64 { return nl.version }

func (nl *Netlist) bump() { nl.version++ }

// NumNodes returns the length of the node table including dead nodes; valid
// NodeIDs are 0..NumNodes()-1.
func (nl *Netlist) NumNodes() int { return len(nl.nodes) }

// Node returns the node with the given ID; it panics on out-of-range IDs.
func (nl *Netlist) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(nl.nodes) {
		panic(fmt.Sprintf("netlist: node %d out of range [0,%d)", id, len(nl.nodes)))
	}
	return nl.nodes[id]
}

// Inputs returns the primary-input node IDs in declaration order.
func (nl *Netlist) Inputs() []NodeID { return nl.inputs }

// Outputs returns the primary outputs in declaration order.
func (nl *Netlist) Outputs() []PO { return nl.outputs }

// FindNode returns the node with the given name, or InvalidNode.
func (nl *Netlist) FindNode(name string) NodeID {
	if id, ok := nl.byName[name]; ok {
		return id
	}
	return InvalidNode
}

// AddInput creates a primary input with the given name.
func (nl *Netlist) AddInput(name string) (NodeID, error) {
	if name == "" {
		return InvalidNode, fmt.Errorf("netlist: input needs a name")
	}
	if _, dup := nl.byName[name]; dup {
		return InvalidNode, fmt.Errorf("netlist: duplicate node name %q", name)
	}
	id := NodeID(len(nl.nodes))
	n := &Node{id: id, kind: KindInput, name: name}
	nl.nodes = append(nl.nodes, n)
	nl.inputs = append(nl.inputs, id)
	nl.byName[name] = id
	nl.logUndo(func() {
		delete(nl.byName, name)
		nl.inputs = nl.inputs[:len(nl.inputs)-1]
		nl.nodes = nl.nodes[:id]
	})
	nl.bump()
	return id, nil
}

// AddGate creates a gate instance of cell with the given fanins (one per
// pin, in pin order). An empty name auto-generates a unique one.
func (nl *Netlist) AddGate(name string, cell *cellib.Cell, fanins []NodeID) (NodeID, error) {
	if cell == nil {
		return InvalidNode, fmt.Errorf("netlist: nil cell")
	}
	if nl.Lib != nil && nl.Lib.Cell(cell.Name) != cell {
		return InvalidNode, fmt.Errorf("netlist: cell %s is not from this netlist's library", cell.Name)
	}
	if len(fanins) != cell.NumPins() {
		return InvalidNode, fmt.Errorf("netlist: cell %s needs %d fanins, got %d",
			cell.Name, cell.NumPins(), len(fanins))
	}
	for _, f := range fanins {
		if f < 0 || int(f) >= len(nl.nodes) || nl.nodes[f].dead {
			return InvalidNode, fmt.Errorf("netlist: bad fanin %d for gate %q", f, name)
		}
	}
	if name == "" {
		name = nl.freshName()
	}
	if _, dup := nl.byName[name]; dup {
		return InvalidNode, fmt.Errorf("netlist: duplicate node name %q", name)
	}
	id := NodeID(len(nl.nodes))
	n := &Node{id: id, kind: KindGate, name: name, cell: cell, fanins: append([]NodeID(nil), fanins...)}
	nl.nodes = append(nl.nodes, n)
	nl.byName[name] = id
	for pin, f := range fanins {
		fn := nl.nodes[f]
		fn.fanouts = append(fn.fanouts, Branch{Gate: id, Pin: pin})
	}
	nl.logUndo(func() {
		for pin, f := range n.fanins {
			nl.removeFanout(f, Branch{Gate: id, Pin: pin})
		}
		delete(nl.byName, name)
		nl.nodes = nl.nodes[:id]
	})
	nl.bump()
	return id, nil
}

// freshName generates a gate name not yet in use.
func (nl *Netlist) freshName() string {
	for i := len(nl.nodes); ; i++ {
		name := fmt.Sprintf("n%d", i)
		if _, dup := nl.byName[name]; !dup {
			return name
		}
	}
}

// AddOutput declares a primary output named name driven by driver.
func (nl *Netlist) AddOutput(name string, driver NodeID) error {
	if name == "" {
		return fmt.Errorf("netlist: output needs a name")
	}
	if driver < 0 || int(driver) >= len(nl.nodes) || nl.nodes[driver].dead {
		return fmt.Errorf("netlist: bad driver %d for output %q", driver, name)
	}
	for _, po := range nl.outputs {
		if po.Name == name {
			return fmt.Errorf("netlist: duplicate output name %q", name)
		}
	}
	idx := len(nl.outputs)
	nl.outputs = append(nl.outputs, PO{Name: name, Driver: driver})
	d := nl.nodes[driver]
	d.fanouts = append(d.fanouts, Branch{Gate: InvalidNode, Pin: idx})
	nl.logUndo(func() {
		nl.removeFanout(driver, Branch{Gate: InvalidNode, Pin: idx})
		nl.outputs = nl.outputs[:idx]
	})
	nl.bump()
	return nil
}

// IsPODriver reports whether the node directly drives at least one primary
// output.
func (nl *Netlist) IsPODriver(id NodeID) bool {
	for _, b := range nl.Node(id).fanouts {
		if b.IsPO() {
			return true
		}
	}
	return false
}

// GateCount returns the number of live gates (inputs excluded).
func (nl *Netlist) GateCount() int {
	n := 0
	for _, nd := range nl.nodes {
		if !nd.dead && nd.kind == KindGate {
			n++
		}
	}
	return n
}

// Area returns the total cell area of the live gates.
func (nl *Netlist) Area() float64 {
	a := 0.0
	for _, nd := range nl.nodes {
		if !nd.dead && nd.kind == KindGate {
			a += nd.cell.Area
		}
	}
	return a
}

// Load returns the total capacitive load on the node's stem signal: the sum
// of the input capacitances of the pins it drives plus POLoad per primary
// output it feeds.
func (nl *Netlist) Load(id NodeID) float64 {
	c := 0.0
	for _, b := range nl.Node(id).fanouts {
		if b.IsPO() {
			c += nl.POLoad
		} else {
			c += nl.nodes[b.Gate].cell.Pins[b.Pin].Cap
		}
	}
	return c
}

// BranchCap returns the capacitance of a single fanout branch.
func (nl *Netlist) BranchCap(b Branch) float64 {
	if b.IsPO() {
		return nl.POLoad
	}
	return nl.Node(b.Gate).cell.Pins[b.Pin].Cap
}

// LiveNodes calls f for every live node in ID order.
func (nl *Netlist) LiveNodes(f func(*Node)) {
	for _, nd := range nl.nodes {
		if !nd.dead {
			f(nd)
		}
	}
}

package netlist

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
)

// TestRandomEditSequencesKeepInvariants applies long random sequences of
// every mutating operation and checks Validate after each step; the
// netlist's cross-referenced fanin/fanout bookkeeping must survive any
// legal interleaving.
func TestRandomEditSequencesKeepInvariants(t *testing.T) {
	lib := cellib.Lib2()
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21", "mux2", "buf"}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		nl := New("fuzz", lib)
		var pool []NodeID
		for i := 0; i < 5; i++ {
			id, err := nl.AddInput(string(rune('a' + i)))
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, id)
		}
		livePool := func() []NodeID {
			var out []NodeID
			for _, id := range pool {
				if !nl.Node(id).Dead() {
					out = append(out, id)
				}
			}
			return out
		}
		for step := 0; step < 120; step++ {
			live := livePool()
			switch rng.Intn(6) {
			case 0, 1: // add a gate
				cell := lib.Cell(cells[rng.Intn(len(cells))])
				fanins := make([]NodeID, cell.NumPins())
				for p := range fanins {
					fanins[p] = live[rng.Intn(len(live))]
				}
				id, err := nl.AddGate("", cell, fanins)
				if err != nil {
					t.Fatalf("trial %d step %d: AddGate: %v", trial, step, err)
				}
				pool = append(pool, id)
			case 2: // add an output on a random node
				if len(nl.Outputs()) < 6 {
					d := live[rng.Intn(len(live))]
					name := "o" + string(rune('0'+len(nl.Outputs())))
					if err := nl.AddOutput(name, d); err != nil {
						t.Fatalf("trial %d step %d: AddOutput: %v", trial, step, err)
					}
				}
			case 3: // rewire a random pin (cycle attempts may fail, that's fine)
				g := live[rng.Intn(len(live))]
				n := nl.Node(g)
				if n.Kind() == KindGate && len(n.Fanins()) > 0 {
					pin := rng.Intn(len(n.Fanins()))
					nd := live[rng.Intn(len(live))]
					_ = nl.ReplaceFanin(g, pin, nd) // error allowed (cycles)
				}
			case 4: // redirect a random output
				if len(nl.Outputs()) > 0 {
					po := rng.Intn(len(nl.Outputs()))
					nd := live[rng.Intn(len(live))]
					if err := nl.RedirectOutput(po, nd); err != nil {
						t.Fatalf("trial %d step %d: RedirectOutput: %v", trial, step, err)
					}
				}
			case 5: // sweep dead logic
				nl.SweepDead()
			}
			if err := nl.Validate(); err != nil {
				t.Fatalf("trial %d step %d: invariants broken: %v", trial, step, err)
			}
		}
		// Final sanity: topological order covers exactly the live nodes.
		order := nl.TopoOrder()
		liveCount := 0
		nl.LiveNodes(func(*Node) { liveCount++ })
		if len(order) != liveCount {
			t.Fatalf("trial %d: topo order %d nodes, %d live", trial, len(order), liveCount)
		}
	}
}

// TestCloneEqualsOriginalAfterEdits: edits applied identically to original
// and clone produce identical statistics.
func TestCloneEqualsOriginalAfterEdits(t *testing.T) {
	lib := cellib.Lib2()
	rng := rand.New(rand.NewSource(11))
	nl := New("c", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g1, _ := nl.AddGate("g1", lib.Cell("nand2"), []NodeID{a, b})
	g2, _ := nl.AddGate("g2", lib.Cell("inv"), []NodeID{g1})
	g3, _ := nl.AddGate("g3", lib.Cell("or2"), []NodeID{g2, a})
	if err := nl.AddOutput("o", g3); err != nil {
		t.Fatal(err)
	}
	cp := nl.Clone()
	for i := 0; i < 20; i++ {
		pin := rng.Intn(2)
		src := []NodeID{a, b, g1, g2}[rng.Intn(4)]
		e1 := nl.ReplaceFanin(g3, pin, src)
		e2 := cp.ReplaceFanin(g3, pin, src)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("edit %d diverged: %v vs %v", i, e1, e2)
		}
	}
	if nl.Area() != cp.Area() || nl.GateCount() != cp.GateCount() {
		t.Errorf("clone diverged from original under identical edits")
	}
}

package netlist

import (
	"testing"

	"powder/internal/cellib"
)

func TestReplaceCellInPackage(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("rc", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []NodeID{a, b})
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	v := nl.Version()
	if err := nl.ReplaceCell(g, lib.Cell("and2x2")); err != nil {
		t.Fatal(err)
	}
	if nl.Node(g).Cell().Name != "and2x2" {
		t.Errorf("cell not replaced")
	}
	if nl.Version() == v {
		t.Errorf("version must bump on cell replacement")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// No-op replacement must not bump.
	v = nl.Version()
	if err := nl.ReplaceCell(g, lib.Cell("and2x2")); err != nil {
		t.Fatal(err)
	}
	if nl.Version() != v {
		t.Errorf("no-op replacement bumped version")
	}
	// Error paths.
	if err := nl.ReplaceCell(g, nil); err == nil {
		t.Errorf("nil cell must fail")
	}
	if err := nl.ReplaceCell(g, lib.Cell("xor2")); err == nil {
		t.Errorf("different function must fail")
	}
	if err := nl.ReplaceCell(g, lib.Cell("inv")); err == nil {
		t.Errorf("different pin count must fail")
	}
	if err := nl.ReplaceCell(a, lib.Cell("and2")); err == nil {
		t.Errorf("input node must fail")
	}
	foreign, _ := cellib.NewCell("foreign", 1,
		[]cellib.Pin{{Name: "a", Cap: 1}, {Name: "b", Cap: 1}}, "O",
		lib.Cell("and2").Function, 1, 0.1, 0)
	if err := nl.ReplaceCell(g, foreign); err == nil {
		t.Errorf("foreign cell must fail")
	}
}

func TestNodePanicsOutOfRange(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("p", lib)
	defer func() {
		if recover() == nil {
			t.Errorf("Node on out-of-range ID should panic")
		}
	}()
	nl.Node(NodeID(3))
}

func TestBranchCapAndLoads(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("bc", lib)
	a, _ := nl.AddInput("a")
	g, _ := nl.AddGate("g", lib.Cell("inv"), []NodeID{a})
	x, _ := nl.AddGate("x", lib.Cell("xor2"), []NodeID{g, a})
	if err := nl.AddOutput("x", x); err != nil {
		t.Fatal(err)
	}
	// Branch into xor pin: 2.0 cap; PO branch: POLoad.
	if got := nl.BranchCap(Branch{Gate: x, Pin: 0}); got != 2.0 {
		t.Errorf("xor pin cap = %v", got)
	}
	if got := nl.BranchCap(Branch{Gate: InvalidNode, Pin: 0}); got != nl.POLoad {
		t.Errorf("PO branch cap = %v", got)
	}
	if nl.Node(g).NumFanouts() != 1 {
		t.Errorf("NumFanouts wrong")
	}
	if !nl.Node(a).IsInput() || nl.Node(g).IsInput() {
		t.Errorf("IsInput wrong")
	}
	if nl.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", nl.NumNodes())
	}
}

func TestMarkTFOMatchesTFO(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("mt", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g1, _ := nl.AddGate("g1", lib.Cell("and2"), []NodeID{a, b})
	g2, _ := nl.AddGate("g2", lib.Cell("inv"), []NodeID{g1})
	g3, _ := nl.AddGate("g3", lib.Cell("or2"), []NodeID{g2, b})
	if err := nl.AddOutput("g3", g3); err != nil {
		t.Fatal(err)
	}
	want := nl.TFO(a)
	mark := make([]bool, nl.NumNodes())
	touched := nl.MarkTFO(a, mark)
	if len(touched) != len(want) {
		t.Fatalf("MarkTFO touched %d, TFO has %d", len(touched), len(want))
	}
	for id := range want {
		if !mark[id] {
			t.Errorf("node %d missing from mask", id)
		}
	}
	for _, id := range touched {
		mark[id] = false
	}
	for _, v := range mark {
		if v {
			t.Errorf("mask not fully cleared by touched list")
		}
	}
}

func TestReachesSelfAndRepeated(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("r", lib)
	a, _ := nl.AddInput("a")
	g, _ := nl.AddGate("g", lib.Cell("inv"), []NodeID{a})
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	if !nl.Reaches(a, a) {
		t.Errorf("self-reach must be true")
	}
	// Repeated queries exercise the epoch-stamped scratch reuse.
	for i := 0; i < 100; i++ {
		if !nl.Reaches(a, g) || nl.Reaches(g, a) {
			t.Fatalf("Reaches inconsistent on iteration %d", i)
		}
	}
}

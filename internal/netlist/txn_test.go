package netlist

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// fingerprint renders the complete structural state of the netlist.
// Fanout lists are order-insensitive (rollback may re-append a restored
// branch at the tail), everything else must match exactly.
func fingerprint(nl *Netlist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s nodes=%d\n", nl.Name, len(nl.nodes))
	for _, n := range nl.nodes {
		cell := "-"
		if n.cell != nil {
			cell = n.cell.Name
		}
		fo := make([]string, len(n.fanouts))
		for i, f := range n.fanouts {
			fo[i] = fmt.Sprintf("%d.%d", f.Gate, f.Pin)
		}
		sort.Strings(fo)
		fmt.Fprintf(&b, "node %d %q kind=%d cell=%s dead=%v fi=%v fo=%v\n",
			n.id, n.name, n.kind, cell, n.dead, n.fanins, fo)
	}
	fmt.Fprintf(&b, "inputs=%v\n", nl.inputs)
	for _, po := range nl.outputs {
		fmt.Fprintf(&b, "po %q <- %d\n", po.Name, po.Driver)
	}
	names := make([]string, 0, len(nl.byName))
	for k, v := range nl.byName {
		names = append(names, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "byName=%v\n", names)
	return b.String()
}

// TestTxnRollbackRestoresEveryPrimitive drives all journaled editing
// primitives inside one transaction and checks rollback restores the
// exact pre-transaction structure.
func TestTxnRollbackRestoresEveryPrimitive(t *testing.T) {
	nl, ids := buildExample(t)
	lib := nl.Lib
	before := fingerprint(nl)

	txn := nl.Begin()
	if !nl.InTxn() {
		t.Fatal("InTxn = false inside a transaction")
	}
	// AddInput / AddGate / AddOutput.
	x, err := nl.AddInput("x")
	if err != nil {
		t.Fatal(err)
	}
	g, err := nl.AddGate("g_new", lib.Cell("nand2"), []NodeID{x, ids["a"]})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("po_new", g); err != nil {
		t.Fatal(err)
	}
	// ReplaceFanin: f's pin 0 (d) -> e; d becomes fanout-free.
	if err := nl.ReplaceFanin(ids["f"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	// RedirectOutput: PO f -> e's stem.
	if err := nl.RedirectOutput(0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	// ReplaceCell: resize e to the x2 drive variant.
	if err := nl.ReplaceCell(ids["e"], lib.Cell("and2x2")); err != nil {
		t.Fatal(err)
	}
	// RemoveGate via the dead-cone sweep (f and d die after the rewiring
	// above... f still drives nothing? f lost its PO; d lost f).
	removed := nl.SweepDead()
	if len(removed) == 0 {
		t.Fatal("sweep removed nothing; the scenario lost its teeth")
	}

	txn.Rollback()
	if nl.InTxn() {
		t.Fatal("InTxn = true after rollback")
	}
	if after := fingerprint(nl); after != before {
		t.Fatalf("rollback did not restore structure:\n--- before\n%s--- after\n%s", before, after)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("rolled-back netlist invalid: %v", err)
	}
}

// TestTxnCommitKeepsEdits pins that Commit preserves the edits and that
// a committed transaction allows a new Begin.
func TestTxnCommitKeepsEdits(t *testing.T) {
	nl, ids := buildExample(t)
	before := fingerprint(nl)
	txn := nl.Begin()
	if err := nl.ReplaceFanin(ids["f"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	txn.Commit()
	if after := fingerprint(nl); after == before {
		t.Fatal("commit lost the edit")
	}
	if nl.InTxn() {
		t.Fatal("InTxn = true after commit")
	}
	nl.Begin().Commit() // a fresh transaction must be allowed now
}

// TestTxnRemoveGateNameReuse pins the trickiest rollback ordering: a
// gate is removed and its name immediately reused by a new gate within
// the same transaction. Reverse-order undo must first truncate the new
// gate (freeing the name) and then revive the old one.
func TestTxnRemoveGateNameReuse(t *testing.T) {
	nl, ids := buildExample(t)
	before := fingerprint(nl)
	txn := nl.Begin()
	if err := nl.RedirectOutput(0, ids["e"]); err != nil { // PO f -> e
		t.Fatal(err)
	}
	if err := nl.ReplaceFanin(ids["f"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	// f is now fanout-free; remove it and reuse its name.
	if err := nl.RemoveGate(ids["f"]); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddGate("f", nl.Lib.Cell("nor2"), []NodeID{ids["a"], ids["c"]}); err != nil {
		t.Fatal(err)
	}
	txn.Rollback()
	if after := fingerprint(nl); after != before {
		t.Fatalf("rollback after name reuse broke structure:\n--- before\n%s--- after\n%s", before, after)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("rolled-back netlist invalid: %v", err)
	}
}

func TestTxnMisuse(t *testing.T) {
	nl, _ := buildExample(t)
	txn := nl.Begin()
	mustPanic(t, "nested Begin", func() { nl.Begin() })
	txn.Commit()
	mustPanic(t, "double finish", func() { txn.Rollback() })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// TestRestoreFrom pins the snapshot-restore primitive used by the
// engine's safety net: restoring mutates the receiver in place back to
// the snapshot's structure and detaches it from the snapshot's storage.
func TestRestoreFrom(t *testing.T) {
	nl, ids := buildExample(t)
	snap := nl.Clone()
	want := fingerprint(nl)

	// Wreck the original thoroughly (outside any transaction).
	if err := nl.RedirectOutput(0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.ReplaceFanin(ids["f"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	nl.SweepDead()
	if fingerprint(nl) == want {
		t.Fatal("mutations did not change the fingerprint")
	}

	nl.RestoreFrom(snap)
	if got := fingerprint(nl); got != want {
		t.Fatalf("RestoreFrom mismatch:\n--- want\n%s--- got\n%s", want, got)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("restored netlist invalid: %v", err)
	}
	// The restored netlist must not alias the snapshot.
	if err := nl.ReplaceCell(ids["e"], nl.Lib.Cell("and2x2")); err != nil {
		t.Fatal(err)
	}
	if snap.Node(ids["e"]).Cell().Name != "and2" {
		t.Error("RestoreFrom aliased node storage with the snapshot")
	}
}

package netlist

import "fmt"

// TopoOrder returns all live node IDs in a topological order: every node
// appears after all of its fanins. Primary inputs come first. It panics if
// the netlist contains a cycle (Validate reports cycles as errors instead).
func (nl *Netlist) TopoOrder() []NodeID {
	order := make([]NodeID, 0, len(nl.nodes))
	state := make([]byte, len(nl.nodes)) // 0 unvisited, 1 on stack, 2 done
	var visit func(id NodeID)
	visit = func(id NodeID) {
		switch state[id] {
		case 1:
			panic(fmt.Sprintf("netlist: cycle through node %s", nl.nodes[id].name))
		case 2:
			return
		}
		state[id] = 1
		for _, f := range nl.nodes[id].fanins {
			visit(f)
		}
		state[id] = 2
		order = append(order, id)
	}
	for _, n := range nl.nodes {
		if !n.dead {
			visit(n.id)
		}
	}
	return order
}

// Reaches reports whether there is a directed path from src to dst
// (src == dst counts as reaching). It reuses an epoch-stamped visit array,
// so repeated queries allocate nothing; the netlist is not safe for
// concurrent use anyway.
func (nl *Netlist) Reaches(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	nl.visitEpoch++
	if len(nl.visitMark) < len(nl.nodes) {
		nl.visitMark = make([]int64, len(nl.nodes))
		nl.visitEpoch = 1
	}
	stack := nl.visitStack[:0]
	stack = append(stack, src)
	nl.visitMark[src] = nl.visitEpoch
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range nl.nodes[id].fanouts {
			if b.IsPO() {
				continue
			}
			if b.Gate == dst {
				nl.visitStack = stack
				return true
			}
			if nl.visitMark[b.Gate] != nl.visitEpoch {
				nl.visitMark[b.Gate] = nl.visitEpoch
				stack = append(stack, b.Gate)
			}
		}
	}
	nl.visitStack = stack
	return false
}

// TFO returns the set of live gates in the transitive fanout of id,
// excluding id itself.
func (nl *Netlist) TFO(id NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	var walk func(id NodeID)
	walk = func(id NodeID) {
		for _, b := range nl.nodes[id].fanouts {
			if b.IsPO() || out[b.Gate] {
				continue
			}
			out[b.Gate] = true
			walk(b.Gate)
		}
	}
	walk(id)
	return out
}

// MarkTFO sets mark[x] for every gate x in the transitive fanout of id
// (excluding id) and returns the marked IDs; the allocation-free variant
// of TFO for hot paths. mark must have at least NumNodes entries and be
// false at the touched positions (clear via the returned list).
func (nl *Netlist) MarkTFO(id NodeID, mark []bool) []NodeID {
	var touched []NodeID
	stack := nl.visitStack[:0]
	stack = append(stack, id)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range nl.nodes[cur].fanouts {
			if b.IsPO() || mark[b.Gate] {
				continue
			}
			mark[b.Gate] = true
			touched = append(touched, b.Gate)
			stack = append(stack, b.Gate)
		}
	}
	nl.visitStack = stack
	return touched
}

// TFI returns the set of live nodes in the transitive fanin of id,
// excluding id itself (primary inputs included).
func (nl *Netlist) TFI(id NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	var walk func(id NodeID)
	walk = func(id NodeID) {
		for _, f := range nl.nodes[id].fanins {
			if out[f] {
				continue
			}
			out[f] = true
			walk(f)
		}
	}
	walk(id)
	return out
}

// Levels returns, for every live node, its logic level: inputs are level 0
// and a gate's level is 1 + max level of its fanins. Dead nodes get -1.
func (nl *Netlist) Levels() []int {
	lv := make([]int, len(nl.nodes))
	for i := range lv {
		lv[i] = -1
	}
	for _, id := range nl.TopoOrder() {
		n := nl.nodes[id]
		if n.kind == KindInput {
			lv[id] = 0
			continue
		}
		max := 0
		for _, f := range n.fanins {
			if lv[f] >= max {
				max = lv[f] + 1
			}
		}
		lv[id] = max
	}
	return lv
}

// Validate checks structural invariants: unique live names, live fanins with
// correct pin counts, consistent fanin/fanout cross-references, live PO
// drivers, and acyclicity. It returns the first violation found.
func (nl *Netlist) Validate() error {
	names := make(map[string]NodeID)
	for _, n := range nl.nodes {
		if n.dead {
			continue
		}
		if prev, dup := names[n.name]; dup {
			return fmt.Errorf("netlist: name %q used by nodes %d and %d", n.name, prev, n.id)
		}
		names[n.name] = n.id
		if got := nl.byName[n.name]; got != n.id {
			return fmt.Errorf("netlist: byName[%q] = %d, want %d", n.name, got, n.id)
		}
		switch n.kind {
		case KindInput:
			if len(n.fanins) != 0 {
				return fmt.Errorf("netlist: input %s has fanins", n.name)
			}
		case KindGate:
			if n.cell == nil {
				return fmt.Errorf("netlist: gate %s has no cell", n.name)
			}
			if len(n.fanins) != n.cell.NumPins() {
				return fmt.Errorf("netlist: gate %s has %d fanins for %d-pin cell %s",
					n.name, len(n.fanins), n.cell.NumPins(), n.cell.Name)
			}
			for pin, f := range n.fanins {
				if f < 0 || int(f) >= len(nl.nodes) || nl.nodes[f].dead {
					return fmt.Errorf("netlist: gate %s pin %d has dead fanin %d", n.name, pin, f)
				}
				// The fanin must list this branch exactly once.
				count := 0
				for _, b := range nl.nodes[f].fanouts {
					if b.Gate == n.id && b.Pin == pin {
						count++
					}
				}
				if count != 1 {
					return fmt.Errorf("netlist: fanout cross-reference of %s pin %d broken (count %d)",
						n.name, pin, count)
				}
			}
		}
		// Every fanout branch must point back at us.
		for _, b := range n.fanouts {
			if b.IsPO() {
				if b.Pin < 0 || b.Pin >= len(nl.outputs) || nl.outputs[b.Pin].Driver != n.id {
					return fmt.Errorf("netlist: node %s claims PO %d it does not drive", n.name, b.Pin)
				}
				continue
			}
			g := nl.Node(b.Gate)
			if g.dead || b.Pin < 0 || b.Pin >= len(g.fanins) || g.fanins[b.Pin] != n.id {
				return fmt.Errorf("netlist: node %s has stale fanout %v", n.name, b)
			}
		}
	}
	for i, po := range nl.outputs {
		if po.Driver < 0 || int(po.Driver) >= len(nl.nodes) || nl.nodes[po.Driver].dead {
			return fmt.Errorf("netlist: output %s (index %d) has dead driver", po.Name, i)
		}
	}
	// Acyclicity via iterative DFS (TopoOrder panics on cycles).
	if err := nl.checkAcyclic(); err != nil {
		return err
	}
	return nil
}

func (nl *Netlist) checkAcyclic() error {
	state := make([]byte, len(nl.nodes))
	var visit func(id NodeID) error
	visit = func(id NodeID) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("netlist: cycle through node %s", nl.nodes[id].name)
		case 2:
			return nil
		}
		state[id] = 1
		for _, f := range nl.nodes[id].fanins {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[id] = 2
		return nil
	}
	for _, n := range nl.nodes {
		if !n.dead {
			if err := visit(n.id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the netlist (sharing the immutable library
// and cells). Node IDs are preserved, including dead slots.
func (nl *Netlist) Clone() *Netlist {
	cp := &Netlist{
		Name:    nl.Name,
		Lib:     nl.Lib,
		POLoad:  nl.POLoad,
		nodes:   make([]*Node, len(nl.nodes)),
		inputs:  append([]NodeID(nil), nl.inputs...),
		outputs: append([]PO(nil), nl.outputs...),
		byName:  make(map[string]NodeID, len(nl.byName)),
		version: nl.version,
	}
	for i, n := range nl.nodes {
		cp.nodes[i] = &Node{
			id:      n.id,
			kind:    n.kind,
			name:    n.name,
			cell:    n.cell,
			fanins:  append([]NodeID(nil), n.fanins...),
			fanouts: append([]Branch(nil), n.fanouts...),
			dead:    n.dead,
		}
	}
	for k, v := range nl.byName {
		cp.byName[k] = v
	}
	return cp
}

package netlist

import (
	"testing"

	"powder/internal/cellib"
)

// buildExample builds the paper's Figure 2 circuit A:
//
//	d = a XOR c; f = d AND b (primary output f)
//
// plus an extra AND e = a*b used by the figure's rewiring.
func buildExample(t *testing.T) (*Netlist, map[string]NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := New("fig2", lib)
	ids := make(map[string]NodeID)
	for _, in := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(in)
		if err != nil {
			t.Fatal(err)
		}
		ids[in] = id
	}
	var err error
	ids["e"], err = nl.AddGate("e", lib.Cell("and2"), []NodeID{ids["a"], ids["b"]})
	if err != nil {
		t.Fatal(err)
	}
	ids["d"], err = nl.AddGate("d", lib.Cell("xor2"), []NodeID{ids["a"], ids["c"]})
	if err != nil {
		t.Fatal(err)
	}
	ids["f"], err = nl.AddGate("f", lib.Cell("and2"), []NodeID{ids["d"], ids["b"]})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("f", ids["f"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", ids["e"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("example invalid: %v", err)
	}
	return nl, ids
}

func TestConstruction(t *testing.T) {
	nl, ids := buildExample(t)
	if nl.GateCount() != 3 {
		t.Errorf("GateCount = %d, want 3", nl.GateCount())
	}
	if len(nl.Inputs()) != 3 || len(nl.Outputs()) != 2 {
		t.Errorf("inputs/outputs = %d/%d", len(nl.Inputs()), len(nl.Outputs()))
	}
	wantArea := 1856.0*2 + 2784.0
	if nl.Area() != wantArea {
		t.Errorf("Area = %v, want %v", nl.Area(), wantArea)
	}
	// a fans out to e (pin 0, cap 1) and d (pin 0, cap 2).
	if got := nl.Load(ids["a"]); got != 3 {
		t.Errorf("Load(a) = %v, want 3", got)
	}
	// f drives one PO.
	if got := nl.Load(ids["f"]); got != nl.POLoad {
		t.Errorf("Load(f) = %v, want %v", got, nl.POLoad)
	}
	if !nl.IsPODriver(ids["f"]) || nl.IsPODriver(ids["d"]) {
		t.Errorf("IsPODriver misreports")
	}
	if nl.FindNode("d") != ids["d"] || nl.FindNode("zz") != InvalidNode {
		t.Errorf("FindNode broken")
	}
}

func TestConstructionErrors(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("t", lib)
	a, _ := nl.AddInput("a")
	if _, err := nl.AddInput("a"); err == nil {
		t.Errorf("duplicate input should fail")
	}
	if _, err := nl.AddInput(""); err == nil {
		t.Errorf("empty input name should fail")
	}
	if _, err := nl.AddGate("g", lib.Cell("and2"), []NodeID{a}); err == nil {
		t.Errorf("wrong fanin count should fail")
	}
	if _, err := nl.AddGate("g", lib.Cell("and2"), []NodeID{a, NodeID(99)}); err == nil {
		t.Errorf("bad fanin should fail")
	}
	if _, err := nl.AddGate("a", lib.Cell("inv"), []NodeID{a}); err == nil {
		t.Errorf("duplicate name should fail")
	}
	if err := nl.AddOutput("o", NodeID(99)); err == nil {
		t.Errorf("bad output driver should fail")
	}
	if err := nl.AddOutput("o", a); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("o", a); err == nil {
		t.Errorf("duplicate output name should fail")
	}
	foreign, _ := cellib.NewCell("alien", 1, []cellib.Pin{{Name: "a", Cap: 1}}, "O",
		lib.Cell("inv").Function, 1, 0.1, 0)
	if _, err := nl.AddGate("g2", foreign, []NodeID{a}); err == nil {
		t.Errorf("cell from another library should be rejected")
	}
}

func TestTopoOrder(t *testing.T) {
	nl, _ := buildExample(t)
	order := nl.TopoOrder()
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	nl.LiveNodes(func(n *Node) {
		for _, f := range n.Fanins() {
			if pos[f] >= pos[n.ID()] {
				t.Errorf("fanin %d after node %d in topo order", f, n.ID())
			}
		}
	})
	if len(order) != 6 {
		t.Errorf("topo order has %d nodes, want 6", len(order))
	}
}

func TestTFOAndTFI(t *testing.T) {
	nl, ids := buildExample(t)
	tfo := nl.TFO(ids["a"])
	if !tfo[ids["d"]] || !tfo[ids["e"]] || !tfo[ids["f"]] {
		t.Errorf("TFO(a) = %v", tfo)
	}
	if tfo[ids["a"]] {
		t.Errorf("TFO must exclude the node itself")
	}
	tfi := nl.TFI(ids["f"])
	if !tfi[ids["a"]] || !tfi[ids["b"]] || !tfi[ids["c"]] || !tfi[ids["d"]] {
		t.Errorf("TFI(f) = %v", tfi)
	}
	if tfi[ids["e"]] {
		t.Errorf("e is not in TFI(f)")
	}
	if !nl.Reaches(ids["a"], ids["f"]) || nl.Reaches(ids["f"], ids["a"]) {
		t.Errorf("Reaches broken")
	}
}

func TestLevels(t *testing.T) {
	nl, ids := buildExample(t)
	lv := nl.Levels()
	if lv[ids["a"]] != 0 || lv[ids["d"]] != 1 || lv[ids["f"]] != 2 {
		t.Errorf("levels: a=%d d=%d f=%d", lv[ids["a"]], lv[ids["d"]], lv[ids["f"]])
	}
}

func TestReplaceFanin(t *testing.T) {
	nl, ids := buildExample(t)
	// Figure 2 rewiring: XOR input branch from a moves to e.
	if err := nl.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("after rewire: %v", err)
	}
	if got := nl.Load(ids["a"]); got != 1 {
		t.Errorf("Load(a) after rewire = %v, want 1", got)
	}
	if got := nl.Load(ids["e"]); got != nl.POLoad+2 {
		t.Errorf("Load(e) after rewire = %v", got)
	}
	// Cycle rejection: f feeds nothing downstream of d... rewire d's pin to f
	// would create d->f->? No: f is in TFO(d), so d's fanin cannot be f.
	if err := nl.ReplaceFanin(ids["d"], 0, ids["f"]); err == nil {
		t.Errorf("cycle-creating rewire should fail")
	}
	// Self loop.
	if err := nl.ReplaceFanin(ids["d"], 0, ids["d"]); err == nil {
		t.Errorf("self-loop rewire should fail")
	}
}

func TestRedirectOutput(t *testing.T) {
	nl, ids := buildExample(t)
	if err := nl.RedirectOutput(0, ids["d"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("after redirect: %v", err)
	}
	if nl.Outputs()[0].Driver != ids["d"] {
		t.Errorf("output not redirected")
	}
	if nl.Load(ids["f"]) != 0 {
		t.Errorf("old driver should have no load, has %v", nl.Load(ids["f"]))
	}
	if err := nl.RedirectOutput(9, ids["d"]); err == nil {
		t.Errorf("bad PO index should fail")
	}
}

func TestRemoveAndSweep(t *testing.T) {
	nl, ids := buildExample(t)
	// Detach output f and rewire so that gates d and f become dead.
	if err := nl.RedirectOutput(0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	removed := nl.SweepDead()
	if len(removed) != 2 {
		t.Fatalf("SweepDead removed %d gates, want 2 (d and f)", len(removed))
	}
	if !nl.Node(ids["f"]).Dead() || !nl.Node(ids["d"]).Dead() {
		t.Errorf("d and f should be dead")
	}
	if nl.Node(ids["e"]).Dead() {
		t.Errorf("e must stay alive")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("after sweep: %v", err)
	}
	if nl.GateCount() != 1 {
		t.Errorf("GateCount = %d, want 1", nl.GateCount())
	}
	// Removing an input is rejected; removing a gate with fanouts too.
	if err := nl.RemoveGate(ids["a"]); err == nil {
		t.Errorf("removing an input should fail")
	}
	if err := nl.RemoveGate(ids["e"]); err == nil {
		t.Errorf("removing a driven gate should fail")
	}
}

func TestDeadConeIfDetached(t *testing.T) {
	nl, ids := buildExample(t)
	// If stem d loses its only branch (f pin 0), d dies; a, c stay (they
	// still feed live logic or are inputs).
	cone := nl.DeadConeIfDetached(ids["d"], nl.Node(ids["d"]).Fanouts())
	if len(cone) != 1 || cone[0] != ids["d"] {
		t.Errorf("dead cone of d = %v, want [d]", cone)
	}
	// Detaching a single branch of stem a (multi-fanout) kills nothing.
	cone = nl.DeadConeIfDetached(ids["a"], []Branch{{Gate: ids["d"], Pin: 0}})
	if len(cone) != 0 {
		t.Errorf("dead cone of single branch of a = %v, want empty", cone)
	}
	// Build a chain g1 -> g2 where killing g2's branch kills both.
	lib := nl.Lib
	g1, _ := nl.AddGate("g1", lib.Cell("inv"), []NodeID{ids["c"]})
	g2, _ := nl.AddGate("g2", lib.Cell("inv"), []NodeID{g1})
	g3, _ := nl.AddGate("g3", lib.Cell("and2"), []NodeID{g2, ids["b"]})
	if err := nl.AddOutput("o3", g3); err != nil {
		t.Fatal(err)
	}
	cone = nl.DeadConeIfDetached(g2, nl.Node(g2).Fanouts())
	if len(cone) != 2 {
		t.Errorf("dead cone of g2 = %v, want [g1 g2]", cone)
	}
}

func TestCloneIndependence(t *testing.T) {
	nl, ids := buildExample(t)
	cp := nl.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if err := cp.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	// The original must be untouched.
	if nl.Node(ids["d"]).Fanins()[0] != ids["a"] {
		t.Errorf("mutating clone changed original")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
	if cp.Area() != nl.Area() {
		t.Errorf("clone area differs")
	}
}

func TestVersionBumps(t *testing.T) {
	nl, ids := buildExample(t)
	v := nl.Version()
	if err := nl.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	if nl.Version() == v {
		t.Errorf("version must bump on rewire")
	}
	v = nl.Version()
	// No-op rewire (same driver) must not bump.
	if err := nl.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	if nl.Version() != v {
		t.Errorf("no-op rewire must not bump version")
	}
}

func TestAutoNames(t *testing.T) {
	lib := cellib.Lib2()
	nl := New("t", lib)
	a, _ := nl.AddInput("a")
	g1, err := nl.AddGate("", lib.Cell("inv"), []NodeID{a})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := nl.AddGate("", lib.Cell("inv"), []NodeID{g1})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Node(g1).Name() == nl.Node(g2).Name() {
		t.Errorf("auto names must be unique")
	}
}

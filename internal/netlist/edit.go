package netlist

import (
	"fmt"

	"powder/internal/cellib"
)

// ReplaceFanin rewires pin pin of gate gate to be driven by newDriver,
// maintaining the fanout bookkeeping on both the old and new driver. It
// rejects rewiring that would create a cycle (newDriver must not be in the
// transitive fanout of gate, nor be gate itself).
func (nl *Netlist) ReplaceFanin(gate NodeID, pin int, newDriver NodeID) error {
	g := nl.Node(gate)
	if g.dead || g.kind != KindGate {
		return fmt.Errorf("netlist: ReplaceFanin on non-gate %d", gate)
	}
	if pin < 0 || pin >= len(g.fanins) {
		return fmt.Errorf("netlist: gate %s has no pin %d", g.name, pin)
	}
	nd := nl.Node(newDriver)
	if nd.dead {
		return fmt.Errorf("netlist: new driver %d is dead", newDriver)
	}
	if newDriver == gate || nl.Reaches(gate, newDriver) {
		return fmt.Errorf("netlist: rewiring pin %d of %s to %s would create a cycle",
			pin, g.name, nd.name)
	}
	old := g.fanins[pin]
	if old == newDriver {
		return nil
	}
	nl.removeFanout(old, Branch{Gate: gate, Pin: pin})
	g.fanins[pin] = newDriver
	nd.fanouts = append(nd.fanouts, Branch{Gate: gate, Pin: pin})
	nl.logUndo(func() {
		nl.removeFanout(newDriver, Branch{Gate: gate, Pin: pin})
		g.fanins[pin] = old
		on := nl.Node(old)
		on.fanouts = append(on.fanouts, Branch{Gate: gate, Pin: pin})
	})
	nl.bump()
	return nil
}

// RedirectOutput repoints primary output poIdx to newDriver. Like
// ReplaceFanin it maintains fanout bookkeeping.
func (nl *Netlist) RedirectOutput(poIdx int, newDriver NodeID) error {
	if poIdx < 0 || poIdx >= len(nl.outputs) {
		return fmt.Errorf("netlist: no output %d", poIdx)
	}
	nd := nl.Node(newDriver)
	if nd.dead {
		return fmt.Errorf("netlist: new driver %d is dead", newDriver)
	}
	old := nl.outputs[poIdx].Driver
	if old == newDriver {
		return nil
	}
	nl.removeFanout(old, Branch{Gate: InvalidNode, Pin: poIdx})
	nl.outputs[poIdx].Driver = newDriver
	nd.fanouts = append(nd.fanouts, Branch{Gate: InvalidNode, Pin: poIdx})
	nl.logUndo(func() {
		nl.removeFanout(newDriver, Branch{Gate: InvalidNode, Pin: poIdx})
		nl.outputs[poIdx].Driver = old
		on := nl.Node(old)
		on.fanouts = append(on.fanouts, Branch{Gate: InvalidNode, Pin: poIdx})
	})
	nl.bump()
	return nil
}

// removeFanout deletes one matching branch entry from node id's fanout list.
func (nl *Netlist) removeFanout(id NodeID, b Branch) {
	n := nl.Node(id)
	for i, f := range n.fanouts {
		if f == b {
			n.fanouts = append(n.fanouts[:i], n.fanouts[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("netlist: fanout %v not found on node %s", b, n.name))
}

// ReplaceCell swaps the library cell of a gate for a functionally
// identical cell (same pin count, same truth table, same pin order) —
// the re-sizing primitive. Fanins and fanouts are untouched.
func (nl *Netlist) ReplaceCell(id NodeID, cell *cellib.Cell) error {
	n := nl.Node(id)
	if n.dead || n.kind != KindGate {
		return fmt.Errorf("netlist: ReplaceCell on non-gate %d", id)
	}
	if cell == nil {
		return fmt.Errorf("netlist: nil cell")
	}
	if nl.Lib != nil && nl.Lib.Cell(cell.Name) != cell {
		return fmt.Errorf("netlist: cell %s is not from this netlist's library", cell.Name)
	}
	if cell.NumPins() != n.cell.NumPins() {
		return fmt.Errorf("netlist: cell %s has %d pins, gate %s needs %d",
			cell.Name, cell.NumPins(), n.name, n.cell.NumPins())
	}
	if !cell.TT.Equal(n.cell.TT) {
		return fmt.Errorf("netlist: cell %s computes a different function than %s",
			cell.Name, n.cell.Name)
	}
	if cell == n.cell {
		return nil
	}
	old := n.cell
	n.cell = cell
	nl.logUndo(func() { n.cell = old })
	nl.bump()
	return nil
}

// RemoveGate marks a fanout-free gate dead and detaches it from its fanins.
// Inputs cannot be removed.
func (nl *Netlist) RemoveGate(id NodeID) error {
	n := nl.Node(id)
	if n.kind != KindGate {
		return fmt.Errorf("netlist: cannot remove input %s", n.name)
	}
	if n.dead {
		return nil
	}
	if len(n.fanouts) > 0 {
		return fmt.Errorf("netlist: gate %s still has %d fanouts", n.name, len(n.fanouts))
	}
	for pin, f := range n.fanins {
		nl.removeFanout(f, Branch{Gate: id, Pin: pin})
	}
	n.dead = true
	delete(nl.byName, n.name)
	nl.logUndo(func() {
		n.dead = false
		nl.byName[n.name] = id
		for pin, f := range n.fanins {
			fn := nl.Node(f)
			fn.fanouts = append(fn.fanouts, Branch{Gate: id, Pin: pin})
		}
	})
	nl.bump()
	return nil
}

// SweepDead removes every gate with no fanouts, transitively, and returns
// the IDs of the removed gates. This implements the pruning of the
// dominated region after a substitution (paper Section 3.3, effect A).
func (nl *Netlist) SweepDead() []NodeID {
	var removed []NodeID
	for {
		progress := false
		for _, n := range nl.nodes {
			if n.dead || n.kind != KindGate || len(n.fanouts) > 0 {
				continue
			}
			if err := nl.RemoveGate(n.id); err != nil {
				panic(err) // unreachable: preconditions checked above
			}
			removed = append(removed, n.id)
			progress = true
		}
		if !progress {
			return removed
		}
	}
}

// DeadConeIfDetached returns the set of live gates that would become
// fanout-free (and hence be swept) if the given fanout branches were
// detached from node a. Passing all of a's branches answers "what dies if
// stem a is substituted", which per the paper equals the dominated region
// Dom(a). Nodes listed in keep are treated as un-killable: pass the
// substituting signal(s), which pick up the detached load and therefore
// survive even when they currently feed only the dominated region. The
// netlist is not modified.
func (nl *Netlist) DeadConeIfDetached(a NodeID, detached []Branch, keep ...NodeID) []NodeID {
	det := make(map[Branch]bool, len(detached))
	for _, b := range detached {
		det[b] = true
	}
	kept := make(map[NodeID]bool, len(keep))
	for _, k := range keep {
		kept[k] = true
	}
	// deadSet holds gates known to die. A gate dies when every one of its
	// fanout branches is either detached (for node a only) or feeds a dead
	// gate.
	deadSet := make(map[NodeID]bool)
	var dies func(id NodeID) bool
	dies = func(id NodeID) bool {
		n := nl.Node(id)
		if n.kind != KindGate || n.dead || kept[id] {
			return false
		}
		for _, b := range n.fanouts {
			if id == a && det[b] {
				continue
			}
			if b.IsPO() || !deadSet[b.Gate] {
				return false
			}
		}
		return true
	}
	// Iterate to fixpoint; the cone is small, so simplicity beats a
	// worklist here.
	for {
		progress := false
		// Seed with a itself, then walk transitively into fanins.
		var visit func(id NodeID)
		visited := make(map[NodeID]bool)
		visit = func(id NodeID) {
			if visited[id] {
				return
			}
			visited[id] = true
			if !deadSet[id] && dies(id) {
				deadSet[id] = true
				progress = true
			}
			if deadSet[id] {
				for _, f := range nl.Node(id).fanins {
					visit(f)
				}
			}
		}
		visit(a)
		if !progress {
			break
		}
	}
	out := make([]NodeID, 0, len(deadSet))
	for _, n := range nl.nodes {
		if deadSet[n.id] {
			out = append(out, n.id)
		}
	}
	return out
}

package netlist

import (
	"testing"

	"powder/internal/cellib"
)

// buildNamed builds the same two-output circuit as buildExample but with
// the given internal gate names, declaring gates in the given order.
func buildNamed(t *testing.T, gateOrder []string, names map[string]string) *Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := New("fig2", lib)
	ids := make(map[string]NodeID)
	for _, in := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(in)
		if err != nil {
			t.Fatal(err)
		}
		ids[in] = id
	}
	add := func(key, cell string, fanins ...string) {
		t.Helper()
		fids := make([]NodeID, len(fanins))
		for i, f := range fanins {
			fids[i] = ids[f]
		}
		id, err := nl.AddGate(names[key], nl.Lib.Cell(cell), fids)
		if err != nil {
			t.Fatal(err)
		}
		ids[key] = id
	}
	for _, g := range gateOrder {
		switch g {
		case "e":
			add("e", "and2", "a", "b")
		case "d":
			add("d", "xor2", "a", "c")
		case "f":
			add("f", "and2", "d", "b")
		}
	}
	if err := nl.AddOutput("f", ids["f"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", ids["e"]); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestStructuralHashInvariance(t *testing.T) {
	base := buildNamed(t, []string{"e", "d", "f"},
		map[string]string{"e": "e", "d": "d", "f": "f"})
	h := base.StructuralHash()
	if len(h) != 64 {
		t.Fatalf("hash %q is not a hex sha256", h)
	}

	// Internal gate names must not contribute.
	renamed := buildNamed(t, []string{"e", "d", "f"},
		map[string]string{"e": "gate77", "d": "n1", "f": "n2"})
	if got := renamed.StructuralHash(); got != h {
		t.Errorf("internal renaming changed hash: %s vs %s", got, h)
	}

	// Declaration order of independent gates must not contribute.
	reordered := buildNamed(t, []string{"d", "e", "f"},
		map[string]string{"e": "e", "d": "d", "f": "f"})
	if got := reordered.StructuralHash(); got != h {
		t.Errorf("gate declaration order changed hash: %s vs %s", got, h)
	}

	// Clones hash identically.
	if got := base.Clone().StructuralHash(); got != h {
		t.Errorf("clone changed hash: %s vs %s", got, h)
	}
}

func TestStructuralHashSensitivity(t *testing.T) {
	base := buildNamed(t, []string{"e", "d", "f"},
		map[string]string{"e": "e", "d": "d", "f": "f"})
	h := base.StructuralHash()

	// A different cell in one gate must change the hash.
	lib := cellib.Lib2()
	other := New("fig2", lib)
	ids := map[string]NodeID{}
	for _, in := range []string{"a", "b", "c"} {
		ids[in], _ = other.AddInput(in)
	}
	e, _ := other.AddGate("e", lib.Cell("or2"), []NodeID{ids["a"], ids["b"]})
	d, _ := other.AddGate("d", lib.Cell("xor2"), []NodeID{ids["a"], ids["c"]})
	f, _ := other.AddGate("f", lib.Cell("and2"), []NodeID{d, ids["b"]})
	_ = other.AddOutput("f", f)
	_ = other.AddOutput("e", e)
	if got := other.StructuralHash(); got == h {
		t.Error("changing a cell did not change the hash")
	}

	// Swapped fanin pins must change the hash (pins are positional).
	swapped := New("fig2", lib)
	ids = map[string]NodeID{}
	for _, in := range []string{"a", "b", "c"} {
		ids[in], _ = swapped.AddInput(in)
	}
	e, _ = swapped.AddGate("e", lib.Cell("and2"), []NodeID{ids["b"], ids["a"]})
	d, _ = swapped.AddGate("d", lib.Cell("xor2"), []NodeID{ids["a"], ids["c"]})
	f, _ = swapped.AddGate("f", lib.Cell("and2"), []NodeID{d, ids["b"]})
	_ = swapped.AddOutput("f", f)
	_ = swapped.AddOutput("e", e)
	if got := swapped.StructuralHash(); got == h {
		t.Error("swapping fanin pins did not change the hash")
	}

	// A renamed primary output must change the hash: the interface is
	// part of the key.
	lib2 := cellib.Lib2()
	ponl := New("fig2", lib2)
	ids = map[string]NodeID{}
	for _, in := range []string{"a", "b", "c"} {
		ids[in], _ = ponl.AddInput(in)
	}
	e, _ = ponl.AddGate("e", lib2.Cell("and2"), []NodeID{ids["a"], ids["b"]})
	d, _ = ponl.AddGate("d", lib2.Cell("xor2"), []NodeID{ids["a"], ids["c"]})
	f, _ = ponl.AddGate("f", lib2.Cell("and2"), []NodeID{d, ids["b"]})
	_ = ponl.AddOutput("fx", f)
	_ = ponl.AddOutput("e", e)
	if got := ponl.StructuralHash(); got == h {
		t.Error("renaming a primary output did not change the hash")
	}
}

package verilog

import (
	"strings"
	"testing"

	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/synth"
)

func fig2(t *testing.T) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("fig2", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	c, _ := nl.AddInput("c")
	e, _ := nl.AddGate("e", lib.Cell("and2"), []netlist.NodeID{a, b})
	d, _ := nl.AddGate("d", lib.Cell("xor2"), []netlist.NodeID{a, c})
	f, _ := nl.AddGate("f", lib.Cell("and2"), []netlist.NodeID{d, b})
	if err := nl.AddOutput("f", f); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", e); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestWriteBasicStructure(t *testing.T) {
	nl := fig2(t)
	var b strings.Builder
	if err := Write(&b, nl, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"module fig2(a, b, c, f, e);",
		"input a;", "input b;", "input c;",
		"output f;", "output e;",
		"wire d;",
		"xor2", "and2",
		".O(f)", ".O(e)", ".O(d)",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Without primitives, cell modules are not defined here.
	if strings.Contains(out, "assign O =") {
		t.Errorf("primitives emitted without being requested")
	}
}

func TestWriteWithPrimitives(t *testing.T) {
	nl := fig2(t)
	var b strings.Builder
	if err := Write(&b, nl, Options{EmitPrimitives: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"module and2(a, b, O);",
		"assign O = (a & b);",
		"module xor2(a, b, O);",
		"assign O = (a ^ b);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("primitives missing %q:\n%s", want, out)
		}
	}
	// Each used cell defined exactly once.
	if strings.Count(out, "module and2(") != 1 {
		t.Errorf("and2 primitive duplicated")
	}
}

func TestWriteOutputFedByInput(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("wire", lib)
	a, _ := nl.AddInput("a")
	g, _ := nl.AddGate("g", lib.Cell("inv"), []netlist.NodeID{a})
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	// Second output aliased directly to the input.
	if err := nl.AddOutput("alias", a); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "assign alias = a;") {
		t.Errorf("input-fed output needs an assign:\n%s", b.String())
	}
}

func TestSanitizeAndKeywords(t *testing.T) {
	if sanitize("") != "_" {
		t.Errorf("empty name")
	}
	if sanitize("9sym") != "_9sym" {
		t.Errorf("leading digit: %q", sanitize("9sym"))
	}
	if sanitize("a.b[3]") != "a_b_3_" {
		t.Errorf("punctuation: %q", sanitize("a.b[3]"))
	}
	if sanitize("output") != "output_" {
		t.Errorf("keyword: %q", sanitize("output"))
	}
}

func TestBufKeywordCell(t *testing.T) {
	// The library's "buf" cell collides with the Verilog keyword and must
	// be renamed consistently in instance and primitive.
	lib := cellib.Lib2()
	nl := netlist.New("b", lib)
	a, _ := nl.AddInput("a")
	g, _ := nl.AddGate("g", lib.Cell("buf"), []netlist.NodeID{a})
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Write(&b, nl, Options{EmitPrimitives: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "buf_ u0") || !strings.Contains(out, "module buf_(") {
		t.Errorf("keyword cell not renamed consistently:\n%s", out)
	}
}

func TestWriteWholeBenchmarkSuite(t *testing.T) {
	lib := cellib.Lib2()
	for _, spec := range circuits.All() {
		nl, err := synth.Compile(spec.Build(), lib, synth.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := Write(&b, nl, Options{EmitPrimitives: true}); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		out := b.String()
		// Structural sanity: balanced module/endmodule, one instance per
		// gate.
		if strings.Count(out, "module ") != strings.Count(out, "endmodule") {
			t.Fatalf("%s: unbalanced modules", spec.Name)
		}
		if got := strings.Count(out, "  wire "); got > nl.GateCount() {
			t.Fatalf("%s: more wires than gates", spec.Name)
		}
	}
}

func TestVerilogExprConstants(t *testing.T) {
	got := verilogExpr(logic.Or(logic.Const(true), logic.Not(logic.Var(0))), []string{"x"})
	if !strings.Contains(got, "1'b1") || !strings.Contains(got, "~(x)") {
		t.Errorf("verilogExpr = %q", got)
	}
}

// Package sim provides 64-way bit-parallel simulation of mapped netlists.
// One Simulator holds a fixed set of sample input vectors (random with
// per-input bias, or exhaustive for small input counts) and the resulting
// value words for every signal. The same fixed vector set is used for the
// whole optimization run, which makes incremental probability re-estimation
// (paper Section 3.3, contribution PG_C) consistent with the global
// estimate.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"powder/internal/netlist"
)

// Simulator simulates one netlist on a fixed set of sample vectors.
type Simulator struct {
	nl    *netlist.Netlist
	words int
	// values[id] holds the simulated stem words of node id; nil for dead
	// or never-simulated nodes.
	values  [][]uint64
	topoPos []int
	order   []netlist.NodeID
	version int64
	// nvec is the number of valid sample vectors; trailing bits beyond it
	// are masked out of counts via ValidMask.
	nvec int

	// scratch state for PropagateDiff/WhatIf
	scratch   [][]uint64
	scratchID []int64
	epoch     int64
}

// New creates a simulator with the given number of 64-bit words per signal
// (words*64 sample vectors). Input values are all-zero until one of the
// SetInputs methods is called; Run must be called before reading values.
func New(nl *netlist.Netlist, words int) *Simulator {
	if words <= 0 {
		panic("sim: words must be positive")
	}
	s := &Simulator{nl: nl, words: words, nvec: words * 64}
	s.refreshTopo()
	s.values = make([][]uint64, nl.NumNodes())
	for _, id := range s.order {
		s.values[id] = make([]uint64, words)
	}
	s.scratch = make([][]uint64, nl.NumNodes())
	s.scratchID = make([]int64, nl.NumNodes())
	return s
}

// Words returns the number of 64-bit words per signal.
func (s *Simulator) Words() int { return s.words }

// NumVectors returns the number of valid sample vectors.
func (s *Simulator) NumVectors() int { return s.nvec }

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.nl }

func (s *Simulator) refreshTopo() {
	s.order = s.nl.TopoOrder()
	if s.topoPos == nil || len(s.topoPos) < s.nl.NumNodes() {
		s.topoPos = make([]int, s.nl.NumNodes())
	}
	for i, id := range s.order {
		s.topoPos[id] = i
	}
	s.version = s.nl.Version()
}

// Resync must be called after the netlist was structurally modified; it
// refreshes the topological order and fully resimulates. New nodes get
// value storage; input words of existing inputs are preserved.
func (s *Simulator) Resync() {
	if int(s.nl.NumNodes()) > len(s.values) {
		nv := make([][]uint64, s.nl.NumNodes())
		copy(nv, s.values)
		s.values = nv
		ns := make([][]uint64, s.nl.NumNodes())
		copy(ns, s.scratch)
		s.scratch = ns
		nid := make([]int64, s.nl.NumNodes())
		copy(nid, s.scratchID)
		s.scratchID = nid
		tp := make([]int, s.nl.NumNodes())
		copy(tp, s.topoPos)
		s.topoPos = tp
	}
	s.refreshTopo()
	for _, id := range s.order {
		if s.values[id] == nil {
			s.values[id] = make([]uint64, s.words)
		}
	}
	s.Run()
}

// SetInputsRandom fills the input words with independent random bits.
// probs gives the signal probability per primary input (in input order);
// nil means 0.5 everywhere. The generator is deterministic in seed.
func (s *Simulator) SetInputsRandom(seed int64, probs []float64) {
	rng := rand.New(rand.NewSource(seed))
	ins := s.nl.Inputs()
	if probs != nil && len(probs) != len(ins) {
		panic(fmt.Sprintf("sim: %d probabilities for %d inputs", len(probs), len(ins)))
	}
	s.nvec = s.words * 64
	for i, id := range ins {
		p := 0.5
		if probs != nil {
			p = probs[i]
		}
		v := s.values[id]
		for w := range v {
			if p == 0.5 {
				v[w] = rng.Uint64()
				continue
			}
			var word uint64
			for b := 0; b < 64; b++ {
				if rng.Float64() < p {
					word |= 1 << uint(b)
				}
			}
			v[w] = word
		}
	}
}

// SetInputWord sets one 64-vector word of a primary input directly;
// useful for driving specific test vectors.
func (s *Simulator) SetInputWord(id netlist.NodeID, w int, bits uint64) {
	n := s.nl.Node(id)
	if n.Kind() != netlist.KindInput {
		panic(fmt.Sprintf("sim: SetInputWord on non-input %s", n.Name()))
	}
	s.values[id][w] = bits
}

// SetInputsExhaustive enumerates all 2^n input minterms (n = number of
// inputs); it requires n small enough that 2^n fits the simulator's words
// and at least 1 word. With exhaustive inputs and uniform input
// probabilities, downstream probability estimates are exact.
func (s *Simulator) SetInputsExhaustive() error {
	ins := s.nl.Inputs()
	n := len(ins)
	if n > 30 {
		return fmt.Errorf("sim: %d inputs is too many for exhaustive simulation", n)
	}
	need := 1 << uint(n)
	if need > s.words*64 {
		return fmt.Errorf("sim: exhaustive simulation of %d inputs needs %d vectors, have %d",
			n, need, s.words*64)
	}
	s.nvec = need
	for i, id := range ins {
		v := s.values[id]
		for w := range v {
			var word uint64
			for b := 0; b < 64; b++ {
				vec := w*64 + b
				if vec < need && vec>>uint(i)&1 == 1 {
					word |= 1 << uint(b)
				}
			}
			v[w] = word
		}
	}
	// Vectors beyond 'need' replicate vector 0 (all-zero inputs); ValidMask
	// excludes them from all counts.
	return nil
}

// ValidMask returns the mask of valid bits for word w (all bits except
// possibly in the word holding the last exhaustive vector).
func (s *Simulator) ValidMask(w int) uint64 {
	lastWord := (s.nvec - 1) / 64
	switch {
	case w < lastWord:
		return ^uint64(0)
	case w == lastWord:
		if s.nvec%64 == 0 {
			return ^uint64(0)
		}
		return (uint64(1) << uint(s.nvec%64)) - 1
	default:
		return 0
	}
}

// Run simulates the whole netlist in topological order.
func (s *Simulator) Run() {
	if s.version != s.nl.Version() {
		s.refreshTopo()
	}
	var in [6][]uint64
	for _, id := range s.order {
		n := s.nl.Node(id)
		if n.Kind() != netlist.KindGate {
			continue
		}
		fanins := n.Fanins()
		for pin, f := range fanins {
			in[pin] = s.values[f]
		}
		s.evalGate(n, in[:len(fanins)], s.values[id])
	}
}

// evalGate evaluates the gate's cell function word-wise from the given
// fanin word slices into out.
func (s *Simulator) evalGate(n *netlist.Node, in [][]uint64, out []uint64) {
	expr := n.Cell().Function
	var buf [6]uint64
	args := buf[:len(in)]
	for w := 0; w < s.words; w++ {
		for p := range in {
			args[p] = in[p][w]
		}
		out[w] = expr.EvalWords(args)
	}
}

// Value returns the simulated stem words of node id. The slice is owned by
// the simulator; callers must not mutate it.
func (s *Simulator) Value(id netlist.NodeID) []uint64 {
	v := s.values[id]
	if v == nil {
		panic(fmt.Sprintf("sim: node %d has no value (dead or stale simulator)", id))
	}
	return v
}

// Ones returns the number of valid sample vectors on which the signal is 1.
func (s *Simulator) Ones(id netlist.NodeID) int {
	v := s.Value(id)
	n := 0
	for w, word := range v {
		n += popcount(word & s.ValidMask(w))
	}
	return n
}

// Probability returns the estimated signal probability of the node.
func (s *Simulator) Probability(id netlist.NodeID) float64 {
	return float64(s.Ones(id)) / float64(s.nvec)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// ResimFrom recomputes the values of the given gates and everything in
// their transitive fanout, in topological order. Call it after local
// netlist edits when the rest of the circuit is unchanged and the netlist
// version was not structurally invalidated (otherwise use Resync).
func (s *Simulator) ResimFrom(roots ...netlist.NodeID) {
	if s.version != s.nl.Version() {
		s.refreshTopo()
		s.version = s.nl.Version()
	}
	affected := s.collectTFO(roots)
	var in [6][]uint64
	for _, id := range affected {
		n := s.nl.Node(id)
		if n.Kind() != netlist.KindGate {
			continue
		}
		if s.values[id] == nil {
			s.values[id] = make([]uint64, s.words)
		}
		fanins := n.Fanins()
		for pin, f := range fanins {
			in[pin] = s.values[f]
		}
		s.evalGate(n, in[:len(fanins)], s.values[id])
	}
}

// collectTFO returns roots plus their transitive fanout, sorted by
// topological position.
func (s *Simulator) collectTFO(roots []netlist.NodeID) []netlist.NodeID {
	seen := make(map[netlist.NodeID]bool)
	var out []netlist.NodeID
	var walk func(id netlist.NodeID)
	walk = func(id netlist.NodeID) {
		if seen[id] {
			return
		}
		seen[id] = true
		out = append(out, id)
		for _, b := range s.nl.Node(id).Fanouts() {
			if !b.IsPO() {
				walk(b.Gate)
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Slice(out, func(i, j int) bool { return s.topoPos[out[i]] < s.topoPos[out[j]] })
	return out
}

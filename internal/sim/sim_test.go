package sim

import (
	"math"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
)

// fig2 builds the paper's Figure 2 circuit A: e=a*b, d=a^c, f=d*b, outputs
// f and e.
func fig2(t *testing.T) (*netlist.Netlist, map[string]netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("fig2", lib)
	ids := make(map[string]netlist.NodeID)
	for _, in := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(in)
		if err != nil {
			t.Fatal(err)
		}
		ids[in] = id
	}
	mk := func(name, cell string, fanins ...netlist.NodeID) netlist.NodeID {
		id, err := nl.AddGate(name, lib.Cell(cell), fanins)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
		return id
	}
	mk("e", "and2", ids["a"], ids["b"])
	mk("d", "xor2", ids["a"], ids["c"])
	mk("f", "and2", ids["d"], ids["b"])
	if err := nl.AddOutput("f", ids["f"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", ids["e"]); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestExhaustiveExactProbabilities(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// With 3 uniform inputs: p(e)=p(a*b)=1/4, p(d)=p(a^c)=1/2, p(f)=p((a^c)b)=1/4.
	cases := map[string]float64{"a": 0.5, "b": 0.5, "c": 0.5, "e": 0.25, "d": 0.5, "f": 0.25}
	for name, want := range cases {
		got := s.Probability(ids[name])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("p(%s) = %v, want %v", name, got, want)
		}
	}
	if s.NumVectors() != 8 {
		t.Errorf("NumVectors = %d, want 8", s.NumVectors())
	}
}

func TestExhaustiveTooManyInputs(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("big", lib)
	var last netlist.NodeID
	for i := 0; i < 10; i++ {
		id, err := nl.AddInput(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	g, _ := nl.AddGate("out", lib.Cell("inv"), []netlist.NodeID{last})
	if err := nl.AddOutput("out", g); err != nil {
		t.Fatal(err)
	}
	s := New(nl, 2) // 128 vectors < 1024 needed
	if err := s.SetInputsExhaustive(); err == nil {
		t.Errorf("exhaustive with too few words should fail")
	}
}

func TestRandomProbabilitiesConverge(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 64) // 4096 vectors
	s.SetInputsRandom(1, nil)
	s.Run()
	if got := s.Probability(ids["e"]); math.Abs(got-0.25) > 0.03 {
		t.Errorf("p(e) = %v, want about 0.25", got)
	}
	if got := s.Probability(ids["d"]); math.Abs(got-0.5) > 0.03 {
		t.Errorf("p(d) = %v, want about 0.5", got)
	}
}

func TestBiasedInputs(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 64)
	s.SetInputsRandom(7, []float64{0.9, 0.9, 0.1})
	s.Run()
	if got := s.Probability(ids["a"]); math.Abs(got-0.9) > 0.03 {
		t.Errorf("p(a) = %v, want about 0.9", got)
	}
	// p(e) = p(a)p(b) = 0.81
	if got := s.Probability(ids["e"]); math.Abs(got-0.81) > 0.04 {
		t.Errorf("p(e) = %v, want about 0.81", got)
	}
}

func TestDeterministicSeed(t *testing.T) {
	nl, ids := fig2(t)
	s1 := New(nl, 8)
	s1.SetInputsRandom(42, nil)
	s1.Run()
	s2 := New(nl, 8)
	s2.SetInputsRandom(42, nil)
	s2.Run()
	v1, v2 := s1.Value(ids["f"]), s2.Value(ids["f"])
	for w := range v1 {
		if v1[w] != v2[w] {
			t.Fatalf("same seed produced different values")
		}
	}
}

func TestResimFromMatchesFullRun(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 8)
	s.SetInputsRandom(3, nil)
	s.Run()

	// Rewire d's pin 0 from a to e (the paper's Figure 2 move) and resim
	// incrementally; compare against a full run.
	if err := nl.ReplaceFanin(ids["d"], 0, ids["e"]); err != nil {
		t.Fatal(err)
	}
	s.ResimFrom(ids["d"])
	incremental := append([]uint64(nil), s.Value(ids["f"])...)

	s2 := New(nl, 8)
	s2.SetInputsRandom(3, nil)
	s2.Run()
	full := s2.Value(ids["f"])
	for w := range full {
		if incremental[w] != full[w] {
			t.Fatalf("incremental resim diverges at word %d", w)
		}
	}
}

func TestHypotheticalDoesNotMutate(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 4)
	s.SetInputsRandom(5, nil)
	s.Run()
	before := append([]uint64(nil), s.Value(ids["f"])...)

	alt := make([]uint64, s.Words())
	for w := range alt {
		alt[w] = ^s.Value(ids["d"])[w]
	}
	ov := s.Hypothetical(ids["d"], alt)
	if !ov.AnyPODiff() {
		t.Errorf("flipping d must disturb output f somewhere")
	}
	if !ov.Changed(ids["f"]) {
		t.Errorf("f should be marked changed")
	}
	if ov.Changed(ids["e"]) {
		t.Errorf("e is not downstream of d")
	}
	after := s.Value(ids["f"])
	for w := range before {
		if before[w] != after[w] {
			t.Fatalf("Hypothetical mutated base values")
		}
	}
}

func TestOverlayStalenessPanics(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 2)
	s.SetInputsRandom(5, nil)
	s.Run()
	alt := make([]uint64, s.Words())
	ov := s.Hypothetical(ids["d"], alt)
	_ = s.Hypothetical(ids["e"], alt)
	defer func() {
		if recover() == nil {
			t.Errorf("stale overlay access should panic")
		}
	}()
	ov.Value(ids["f"])
}

func TestStemObservability(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Stem d feeds f = d*b: flipping d is observable exactly when b=1.
	obs := s.StemObservability(ids["d"])
	b := s.Value(ids["b"])
	for w := range obs {
		if obs[w]&s.ValidMask(w) != b[w]&s.ValidMask(w) {
			t.Errorf("obs(d) = %x, want %x (b)", obs[w], b[w])
		}
	}
	// Stem e drives output e directly: always observable.
	obsE := s.StemObservability(ids["e"])
	for w := range obsE {
		if obsE[w] != s.ValidMask(w) {
			t.Errorf("obs(e) should be full: %x", obsE[w])
		}
	}
}

func TestBranchObservability(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 1)
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// Branch a->d (pin 0 of d): observable when b=1 (since f=d*b and the
	// XOR always propagates the pin flip to d).
	obs := s.BranchObservability(ids["d"], 0)
	b := s.Value(ids["b"])
	for w := range obs {
		if obs[w]&s.ValidMask(w) != b[w]&s.ValidMask(w) {
			t.Errorf("branch obs = %x, want %x", obs[w], b[w])
		}
	}
	// Branch b->f (pin 1 of f): flipping b at that pin changes f iff d=1.
	obs2 := s.BranchObservability(ids["f"], 1)
	d := s.Value(ids["d"])
	for w := range obs2 {
		if obs2[w]&s.ValidMask(w) != d[w]&s.ValidMask(w) {
			t.Errorf("branch obs b->f = %x, want %x", obs2[w], d[w])
		}
	}
}

func TestResyncAfterStructuralChange(t *testing.T) {
	nl, ids := fig2(t)
	s := New(nl, 2)
	s.SetInputsRandom(9, nil)
	s.Run()
	lib := nl.Lib
	// Add a new gate and an output on it.
	g, err := nl.AddGate("g", lib.Cell("nor2"), []netlist.NodeID{ids["e"], ids["f"]})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("g", g); err != nil {
		t.Fatal(err)
	}
	s.Resync()
	e, f, gv := s.Value(ids["e"]), s.Value(ids["f"]), s.Value(g)
	for w := range gv {
		if gv[w] != ^(e[w] | f[w]) {
			t.Fatalf("resync value wrong for new gate")
		}
	}
}

func TestValidMask(t *testing.T) {
	nl, _ := fig2(t)
	s := New(nl, 2)
	if err := s.SetInputsExhaustive(); err != nil { // 8 vectors in 128 bits
		t.Fatal(err)
	}
	if s.ValidMask(0) != 0xFF {
		t.Errorf("ValidMask(0) = %x, want ff", s.ValidMask(0))
	}
	if s.ValidMask(1) != 0 {
		t.Errorf("ValidMask(1) = %x, want 0", s.ValidMask(1))
	}
}

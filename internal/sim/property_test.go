package sim

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
)

// randomNetlist builds a random mapped circuit for property testing.
func randomNetlist(t testing.TB, rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("rand", lib)
	var pool []netlist.NodeID
	for i := 0; i < nIn; i++ {
		id, err := nl.AddInput(logic.VarName(i))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21", "oai22", "mux2"}
	for i := 0; i < nGates; i++ {
		cell := nl.Lib.Cell(cells[rng.Intn(len(cells))])
		fanins := make([]netlist.NodeID, cell.NumPins())
		for p := range fanins {
			fanins[p] = pool[rng.Intn(len(pool))]
		}
		id, err := nl.AddGate("", cell, fanins)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	for i := 0; i < 3 && i < len(pool); i++ {
		if err := nl.AddOutput(logic.VarName(20+i), pool[len(pool)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	nl.SweepDead()
	return nl
}

// TestOverlayMatchesCloneResim: the hypothetical propagation must produce
// exactly the values a real rewire + full resimulation would.
func TestOverlayMatchesCloneResim(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 20; trial++ {
		nl := randomNetlist(t, rng, 6, 15)
		s := New(nl, 4)
		s.SetInputsRandom(int64(trial), nil)
		s.Run()

		// Pick a random gate and an alternative stem value.
		var gates []netlist.NodeID
		nl.LiveNodes(func(n *netlist.Node) {
			if n.Kind() == netlist.KindGate {
				gates = append(gates, n.ID())
			}
		})
		if len(gates) == 0 {
			continue
		}
		root := gates[rng.Intn(len(gates))]
		alt := make([]uint64, s.Words())
		for w := range alt {
			alt[w] = rng.Uint64()
		}
		ov := s.Hypothetical(root, alt)

		// Reference: an identical simulator where root's value is forced by
		// replacing the node's function result — emulate by copying values
		// and resimulating the TFO manually.
		ref := New(nl, 4)
		ref.SetInputsRandom(int64(trial), nil)
		ref.Run()
		// Force root and propagate in topological order.
		forced := make(map[netlist.NodeID][]uint64)
		forced[root] = alt
		for _, id := range nl.TopoOrder() {
			n := nl.Node(id)
			if id == root || n.Kind() != netlist.KindGate {
				continue
			}
			touched := false
			for _, f := range n.Fanins() {
				if _, ok := forced[f]; ok {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			out := make([]uint64, ref.Words())
			var in [6][]uint64
			for pin, f := range n.Fanins() {
				if fv, ok := forced[f]; ok {
					in[pin] = fv
				} else {
					in[pin] = ref.Value(f)
				}
			}
			ref.evalGate(n, in[:len(n.Fanins())], out)
			forced[id] = out
		}
		for id, want := range forced {
			got := ov.Value(id)
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("trial %d: overlay value of node %d differs at word %d", trial, id, w)
				}
			}
		}
		// PODiff must agree with the forced PO values.
		for w := 0; w < s.Words(); w++ {
			var want uint64
			for _, po := range nl.Outputs() {
				base := ref.Value(po.Driver)[w]
				cur := base
				if fv, ok := forced[po.Driver]; ok {
					cur = fv[w]
				}
				want |= (cur ^ base) & s.ValidMask(w)
			}
			if ov.PODiff[w] != want {
				t.Fatalf("trial %d: PODiff mismatch at word %d: %x vs %x", trial, w, ov.PODiff[w], want)
			}
		}
	}
}

// TestObservabilityZeroMeansNoPOEffect: forcing any value change on an
// unobservable vector must leave every primary output untouched.
func TestObservabilityZeroMeansNoPOEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for trial := 0; trial < 10; trial++ {
		nl := randomNetlist(t, rng, 6, 12)
		s := New(nl, 1)
		if err := s.SetInputsExhaustive(); err != nil {
			t.Fatal(err)
		}
		s.Run()
		nl.LiveNodes(func(n *netlist.Node) {
			if n.Kind() != netlist.KindGate {
				return
			}
			obs := s.StemObservability(n.ID())
			// Flip the node exactly on the unobservable vectors.
			alt := make([]uint64, s.Words())
			base := s.Value(n.ID())
			for w := range alt {
				alt[w] = base[w] ^ (^obs[w] & s.ValidMask(w))
			}
			ov := s.Hypothetical(n.ID(), alt)
			if ov.AnyPODiff() {
				t.Fatalf("trial %d: flipping node %s on unobservable vectors changed a PO",
					trial, n.Name())
			}
		})
	}
}

// TestResimFromIdempotent: resimulating with no change must not alter any
// value.
func TestResimFromIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	nl := randomNetlist(t, rng, 6, 15)
	s := New(nl, 4)
	s.SetInputsRandom(1, nil)
	s.Run()
	snapshot := make(map[netlist.NodeID][]uint64)
	nl.LiveNodes(func(n *netlist.Node) {
		snapshot[n.ID()] = append([]uint64(nil), s.Value(n.ID())...)
	})
	for id := range snapshot {
		s.ResimFrom(id)
	}
	for id, want := range snapshot {
		got := s.Value(id)
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("ResimFrom changed node %d without a netlist change", id)
			}
		}
	}
}

package sim

import (
	"powder/internal/netlist"
)

// Overlay holds the result of a hypothetical propagation: the values every
// affected node would take if the root signal were replaced. An Overlay is
// valid only until the next Hypothetical call on the same Simulator (the
// scratch buffers are reused).
type Overlay struct {
	s     *Simulator
	epoch int64
	// Affected lists the root and its transitive fanout in topological
	// order; these are the nodes whose Value may differ.
	Affected []netlist.NodeID
	// PODiff[w] has bit b set when sample vector w*64+b changes at least
	// one primary output.
	PODiff []uint64
}

// checkFresh panics if a newer Hypothetical call has recycled the scratch
// buffers this overlay points into.
func (o *Overlay) checkFresh() {
	if o.s.epoch != o.epoch {
		panic("sim: overlay used after a newer Hypothetical call")
	}
}

// Value returns the node's hypothetical value words: the overlay value for
// affected nodes and the base simulation value otherwise. The slice must
// not be mutated.
func (o *Overlay) Value(id netlist.NodeID) []uint64 {
	o.checkFresh()
	if o.s.scratchID[id] == o.epoch {
		return o.s.scratch[id]
	}
	return o.s.Value(id)
}

// Changed reports whether the node's hypothetical value differs from its
// base value on any valid vector.
func (o *Overlay) Changed(id netlist.NodeID) bool {
	o.checkFresh()
	if o.s.scratchID[id] != o.epoch {
		return false
	}
	base := o.s.Value(id)
	alt := o.s.scratch[id]
	for w := range alt {
		if (alt[w]^base[w])&o.s.ValidMask(w) != 0 {
			return true
		}
	}
	return false
}

// AnyPODiff reports whether any primary output changes on any valid vector.
func (o *Overlay) AnyPODiff() bool {
	for _, w := range o.PODiff {
		if w != 0 {
			return true
		}
	}
	return false
}

// Hypothetical computes the consequences of replacing the stem value of
// root with alt: the transitive fanout is re-evaluated into scratch storage
// (the base values stay untouched) and the primary-output difference mask
// is collected. alt must have the simulator's word count.
func (s *Simulator) Hypothetical(root netlist.NodeID, alt []uint64) *Overlay {
	if len(alt) != s.words {
		panic("sim: alt word count mismatch")
	}
	if s.version != s.nl.Version() {
		s.refreshTopo()
		s.version = s.nl.Version()
	}
	s.epoch++
	affected := s.collectTFO([]netlist.NodeID{root})
	ov := &Overlay{s: s, epoch: s.epoch, Affected: affected, PODiff: make([]uint64, s.words)}

	s.setScratch(root, alt)
	var in [6][]uint64
	for _, id := range affected {
		n := s.nl.Node(id)
		if id != root {
			fanins := n.Fanins()
			for pin, f := range fanins {
				if s.scratchID[f] == s.epoch {
					in[pin] = s.scratch[f]
				} else {
					in[pin] = s.values[f]
				}
			}
			dst := s.scratchFor(id)
			s.evalGate(n, in[:len(fanins)], dst)
		}
		if s.nl.IsPODriver(id) {
			base := s.values[id]
			cur := s.scratch[id]
			for w := 0; w < s.words; w++ {
				ov.PODiff[w] |= (cur[w] ^ base[w]) & s.ValidMask(w)
			}
		}
	}
	return ov
}

// setScratch copies alt into root's scratch slot for the current epoch.
func (s *Simulator) setScratch(root netlist.NodeID, alt []uint64) {
	dst := s.scratchFor(root)
	copy(dst, alt)
}

func (s *Simulator) scratchFor(id netlist.NodeID) []uint64 {
	if s.scratch[id] == nil || len(s.scratch[id]) != s.words {
		s.scratch[id] = make([]uint64, s.words)
	}
	s.scratchID[id] = s.epoch
	return s.scratch[id]
}

// GateValueWithPin evaluates gate g's cell function with pin pin's words
// replaced by words, writing into out (length Words). The other pins read
// the base simulation values.
func (s *Simulator) GateValueWithPin(g netlist.NodeID, pin int, words []uint64, out []uint64) {
	n := s.nl.Node(g)
	var in [6][]uint64
	fanins := n.Fanins()
	for p, f := range fanins {
		if p == pin {
			in[p] = words
		} else {
			in[p] = s.values[f]
		}
	}
	s.evalGate(n, in[:len(fanins)], out)
}

// StemObservability returns the mask of sample vectors on which
// complementing the stem signal of id changes at least one primary output.
// This is the exact (per-sample) observability don't-care information the
// candidate filter uses.
func (s *Simulator) StemObservability(id netlist.NodeID) []uint64 {
	base := s.Value(id)
	alt := make([]uint64, s.words)
	for w := range alt {
		alt[w] = ^base[w]
	}
	ov := s.Hypothetical(id, alt)
	out := make([]uint64, s.words)
	copy(out, ov.PODiff)
	return out
}

// BranchObservability returns the mask of sample vectors on which
// complementing the branch signal feeding pin pin of gate g changes at
// least one primary output.
func (s *Simulator) BranchObservability(g netlist.NodeID, pin int) []uint64 {
	n := s.nl.Node(g)
	src := s.Value(n.Fanins()[pin])
	flipped := make([]uint64, s.words)
	for w := range flipped {
		flipped[w] = ^src[w]
	}
	altG := make([]uint64, s.words)
	s.GateValueWithPin(g, pin, flipped, altG)
	ov := s.Hypothetical(g, altG)
	out := make([]uint64, s.words)
	copy(out, ov.PODiff)
	return out
}

// POObservabilityAlways returns an all-ones mask; primary-output branches
// are always observable.
func (s *Simulator) POObservabilityAlways() []uint64 {
	out := make([]uint64, s.words)
	for w := range out {
		out[w] = s.ValidMask(w)
	}
	return out
}

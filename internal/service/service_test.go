package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powder/internal/blif"
	"powder/internal/cellib"
)

// circuitBLIF loads one of the committed example circuits.
func circuitBLIF(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "circuits", name+".blif"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestService builds a service plus an httptest server and tears
// both down with the test.
func newTestService(t *testing.T, cfg Config, beforeRun func(ctx context.Context, j *Job)) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	svc.testBeforeRun = beforeRun
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// submit POSTs a circuit and decodes the response.
func submit(t *testing.T, base, query string, body []byte) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the predicate holds or the deadline passes.
func waitState(t *testing.T, base, id string, pred func(Status) bool, what string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %+v)", id, what, getStatus(t, base, id))
	return Status{}
}

func waitTerminal(t *testing.T, base, id string) Status {
	return waitState(t, base, id, func(st Status) bool { return st.State.Terminal() }, "a terminal state")
}

func TestServiceEndToEndConcurrentVerified(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 4, QueueDepth: 16}, nil)
	names := []string{"fig2", "maj3"}
	const n = 8
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		st, resp := submit(t, ts.URL, "?verify=1", circuitBLIF(t, names[i%2]))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		if st.State != StateQueued && st.State != StateRunning {
			t.Fatalf("submit %d: state %q", i, st.State)
		}
		ids[i] = st.ID
	}
	lib := cellib.Lib2()
	for i, id := range ids {
		st := waitTerminal(t, ts.URL, id)
		if st.State != StateCompleted {
			t.Fatalf("job %s: state %s (error %q)", id, st.State, st.Error)
		}
		if st.Result == nil {
			t.Fatalf("job %s: no result", id)
		}
		if st.Result.Verified != "equivalent" {
			t.Fatalf("job %s: verified = %q, want equivalent", id, st.Result.Verified)
		}
		if st.Result.Stopped != "completed" {
			t.Fatalf("job %s: stopped = %q", id, st.Result.Stopped)
		}
		if st.Circuit != names[i%2] {
			t.Fatalf("job %s: circuit %q, want %q", id, st.Circuit, names[i%2])
		}
		// The result download must be a parseable mapped BLIF.
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result.blif")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
		}
		if _, err := blif.Read(bytes.NewReader(body), lib); err != nil {
			t.Fatalf("result %s is not valid BLIF: %v", id, err)
		}
	}

	// The event stream of a finished job replays the full lifecycle.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		name, _ := rec["event"].(string)
		seen[name] = true
	}
	for _, want := range []string{"job-queued", "job-started", "optimize-done", "job-finished"} {
		if !seen[want] {
			t.Fatalf("event stream missing %q (saw %v)", want, seen)
		}
	}

	// /metrics reflects the final counters.
	metrics := getMetrics(t, ts.URL)
	if !strings.Contains(metrics, "service.jobs.completed") {
		t.Fatalf("metrics missing completed counter:\n%s", metrics)
	}
	if got := metricValue(t, metrics, "service.jobs.completed"); got != n {
		t.Fatalf("service.jobs.completed = %d, want %d", got, n)
	}
}

// getMetrics fetches the JSON metrics snapshot (/metrics?format=json).
func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// metricValue extracts one registry counter from the JSON snapshot.
func metricValue(t *testing.T, metrics, name string) int64 {
	t.Helper()
	var mj metricsJSON
	if err := json.Unmarshal([]byte(metrics), &mj); err != nil {
		t.Fatalf("metrics JSON unparseable: %v\n%s", err, metrics)
	}
	v, ok := mj.Metrics.Counters[name]
	if !ok {
		t.Fatalf("metric %s not found in:\n%s", name, metrics)
	}
	return v
}

func TestServiceQueueOverflowReturns429(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 1},
		func(ctx context.Context, j *Job) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		})

	st1, resp := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", resp.StatusCode)
	}
	// Wait until job 1 occupies the worker so the queue is empty again.
	waitState(t, ts.URL, st1.ID, func(st Status) bool { return st.State == StateRunning }, "running")

	st2, resp := submit(t, ts.URL, "", circuitBLIF(t, "maj3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", resp.StatusCode)
	}
	_, resp = submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	for _, id := range []string{st1.ID, st2.ID} {
		if st := waitTerminal(t, ts.URL, id); st.State != StateCompleted {
			t.Fatalf("job %s: state %s after release", id, st.State)
		}
	}
	metrics := getMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "service.jobs.rejected"); got != 1 {
		t.Fatalf("service.jobs.rejected = %d, want 1", got)
	}
	if got := metricValue(t, metrics, "service.jobs.completed"); got != 2 {
		t.Fatalf("service.jobs.completed = %d, want 2", got)
	}
}

func TestServiceCancelRunningJob(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, j *Job) { <-ctx.Done() })

	st, resp := submit(t, ts.URL, "", circuitBLIF(t, "maj3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", dresp.StatusCode)
	}

	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", fin.State)
	}
	if fin.Result == nil || fin.Result.Stopped != "cancelled" {
		t.Fatalf("result = %+v, want stop reason cancelled", fin.Result)
	}
	// Cancelling a finished job is a clean conflict-free no-op.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("second DELETE: HTTP %d", dresp.StatusCode)
	}
}

func TestServiceCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, j *Job) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		})
	defer close(release)

	st1, _ := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	waitState(t, ts.URL, st1.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	st2, resp := submit(t, ts.URL, "", circuitBLIF(t, "maj3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()

	fin := waitTerminal(t, ts.URL, st2.ID)
	if fin.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", fin.State)
	}
	if fin.StartedAt != nil {
		t.Fatalf("queued job was started: %+v", fin)
	}
}

func TestServiceDrainRejectsNewAndFinishesInFlight(t *testing.T) {
	svc, ts := newTestService(t, Config{Workers: 1, QueueDepth: 8}, nil)

	st1, _ := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	st2, _ := submit(t, ts.URL, "", circuitBLIF(t, "maj3"))

	svc.BeginDrain()
	if _, resp := submit(t, ts.URL, "", circuitBLIF(t, "fig2")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", hresp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		if st := getStatus(t, ts.URL, id); st.State != StateCompleted {
			t.Fatalf("job %s after drain: state %s", id, st.State)
		}
	}
	metrics := getMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "service.jobs.completed"); got != 2 {
		t.Fatalf("service.jobs.completed = %d, want 2", got)
	}
}

func TestServiceDrainDeadlineCancelsInFlight(t *testing.T) {
	svc, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, j *Job) { <-ctx.Done() })

	st, _ := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	waitState(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Fatal("expected a deadline error from forced drain")
	}
	fin := getStatus(t, ts.URL, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("forced-drain job state = %s, want cancelled", fin.State)
	}
}

func TestServiceJobDeadlineCompletesWithBestResult(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2, QueueDepth: 4}, nil)
	st, resp := submit(t, ts.URL, "?timeout=1ns", circuitBLIF(t, "maj3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCompleted {
		t.Fatalf("state = %s, want completed (deadline runs keep their best result)", fin.State)
	}
	if fin.Result == nil || fin.Result.Stopped != "deadline" {
		t.Fatalf("result = %+v, want stop reason deadline", fin.Result)
	}
}

func TestServiceDelayLimitOption(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4}, nil)
	st, resp := submit(t, ts.URL, "?delay-limit=0&verify=true", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCompleted {
		t.Fatalf("state = %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result.FinalDelay > fin.Result.InitialDelay+1e-9 {
		t.Fatalf("delay-limit=0 violated: %v -> %v", fin.Result.InitialDelay, fin.Result.FinalDelay)
	}
}

func TestServiceBadRequests(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4}, nil)
	cases := []struct {
		query string
		body  string
		want  int
	}{
		{"", ".model broken\n.inputs a\n", http.StatusBadRequest},      // truncated BLIF
		{"?timeout=banana", ".model x\n.end\n", http.StatusBadRequest}, // bad option
		{"?delay-limit=-5", ".model x\n.end\n", http.StatusBadRequest}, // negative limit
		{"?max-subs=nope", ".model x\n.end\n", http.StatusBadRequest},  // bad int
		{"?verify=perhaps", ".model x\n.end\n", http.StatusBadRequest}, // bad bool
	}
	for _, c := range cases {
		_, resp := submit(t, ts.URL, c.query, []byte(c.body))
		if resp.StatusCode != c.want {
			t.Fatalf("POST %q: HTTP %d, want %d", c.query, resp.StatusCode, c.want)
		}
	}
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result.blif", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServiceResultNotReadyConflict(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, j *Job) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		})
	defer close(release)
	st, _ := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	waitState(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result.blif")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: HTTP %d, want 409", resp.StatusCode)
	}
}

package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"powder/internal/activity"
	"powder/internal/core"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/seq"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued State = "queued"
	// StateRunning means a worker is optimizing the circuit.
	StateRunning State = "running"
	// StateCompleted means the job finished and its result is available
	// (including runs stopped early by their deadline: those carry the
	// best netlist found plus a "deadline" stop reason).
	StateCompleted State = "completed"
	// StateFailed means the run (or its verification) errored.
	StateFailed State = "failed"
	// StateCancelled means the job was cancelled before or during the
	// run; a partially optimized result may still be available.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCancelled
}

// JobOptions are the per-job knobs accepted by POST /v1/jobs.
type JobOptions struct {
	// Timeout is the wall-clock budget of the run; on expiry the best
	// netlist so far is the result (stop reason "deadline"). 0 uses the
	// service default.
	Timeout time.Duration `json:"timeout,omitempty"`
	// DelayLimitPct, when >= 0, constrains the optimized delay to
	// initial_delay * (1 + pct/100); 0 keeps the initial delay, -1
	// (the default) runs unconstrained.
	DelayLimitPct float64 `json:"delay_limit_pct"`
	// MaxSubstitutions caps the number of applied substitutions
	// (0 = unlimited).
	MaxSubstitutions int `json:"max_substitutions,omitempty"`
	// Verify re-proves the optimized circuit SAT-equivalent to the
	// input after the run; a refuted proof fails the job.
	Verify bool `json:"verify,omitempty"`
	// Probs optionally carries per-primary-input signal probabilities as
	// "name=p" lines (the powder -probs file format). Unknown names and
	// out-of-range values reject the submission. For sequential circuits
	// the names must be true primary inputs; latch outputs are ruled by
	// the steady-state fixpoint.
	Probs string `json:"probs,omitempty"`
	// NoCache bypasses the content-addressed result cache entirely: the
	// job is neither served from it nor published into it (the ?no-cache
	// escape hatch for forcing a fresh optimization).
	NoCache bool `json:"no_cache,omitempty"`
	// Parallelism is the engine's fanout-region worker count for this
	// job (the ?par query parameter). Submit caps it at the service's
	// pool size so one job can never oversubscribe the daemon; <= 1 runs
	// the sequential engine.
	Parallelism int `json:"parallelism,omitempty"`
	// ActivityDump carries the raw bytes of a workload activity dump
	// (VCD or SAIF, sniffed by content) uploaded as the "activity" part
	// of a multipart submission. Matched signals drive the input
	// probabilities and pin the per-input transition densities, replacing
	// the uniform assumption; mutually exclusive with Probs. Excluded
	// from the options JSON — the journal persists it as
	// store.JobRecord.Activity, and the cache key carries the profile's
	// content digest instead of the bytes.
	ActivityDump []byte `json:"-"`
	// TraceID / TraceParent carry an inbound X-Powder-Trace /
	// X-Powder-Parent header pair from a client that wants its own spans
	// stitched into the job trace: a non-empty TraceID forces tracing
	// (regardless of the sampler) under the client's trace ID, and the
	// job root span is parented under the client's span ID. Both are
	// transport-only — excluded from JSON (and hence from journal
	// records) and never part of the result-cache key, which must depend
	// only on what the optimizer computes.
	TraceID     string `json:"-"`
	TraceParent int64  `json:"-"`
}

// JobResult is the serialized outcome of a finished run.
type JobResult struct {
	InitialPower float64 `json:"initial_power"`
	FinalPower   float64 `json:"final_power"`
	ReductionPct float64 `json:"reduction_pct"`
	InitialArea  float64 `json:"initial_area"`
	FinalArea    float64 `json:"final_area"`
	InitialDelay float64 `json:"initial_delay"`
	FinalDelay   float64 `json:"final_delay"`
	Gates        int     `json:"gates"`
	Applied      int     `json:"applied"`
	// Stopped is the engine's stop reason ("completed", "deadline",
	// "cancelled", "max-substitutions", ...).
	Stopped string `json:"stopped"`
	// Verified is "equivalent", "inconclusive", or "" (not requested).
	Verified       string         `json:"verified,omitempty"`
	RuntimeSeconds float64        `json:"runtime_seconds"`
	Rejects        map[string]int `json:"rejects,omitempty"`
	// Latches is the register count of a sequential job (0 when the
	// circuit was combinational); the fixpoint fields describe the
	// steady-state probability iteration that seeded its power model.
	Latches            int     `json:"latches,omitempty"`
	FixpointIterations int     `json:"fixpoint_iterations,omitempty"`
	FixpointResidual   float64 `json:"fixpoint_residual,omitempty"`
	// Activity labels the workload activity model of a submission that
	// uploaded a dump (source digest + coverage); empty means the run
	// used the uniform assumption. ActivityMatched / ActivityInputs
	// report how many of the circuit's inputs the dump covered.
	Activity        string `json:"activity,omitempty"`
	ActivityMatched int    `json:"activity_matched,omitempty"`
	ActivityInputs  int    `json:"activity_inputs,omitempty"`
}

// Status is the JSON representation of a job returned by the API.
type Status struct {
	ID          string        `json:"id"`
	State       State         `json:"state"`
	Circuit     string        `json:"circuit"`
	Options     JobOptions    `json:"options"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	Progress    core.Progress `json:"progress"`
	Result      *JobResult    `json:"result,omitempty"`
	Error       string        `json:"error,omitempty"`
	// TraceID is set on traced jobs (Config.TraceSample); the span tree
	// is served at GET /v1/jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`
	// Cached reports that the job was answered from the content-
	// addressed result cache without running the optimizer.
	Cached bool `json:"cached,omitempty"`
}

// Job is one queued or running optimization. All mutable fields are
// guarded by mu; the input netlist is owned by the worker that runs the
// job and must not be touched elsewhere after submission.
type Job struct {
	id   string
	opts JobOptions
	hub  *obs.Hub

	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	state       State
	circuit     string
	cacheKey    string // content address of the submission ("" = uncacheable)
	cached      bool   // served from the result cache, never ran
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	progress    core.Progress
	result      *JobResult
	errMsg      string
	cancelAsked bool

	nl         *netlist.Netlist // input circuit, consumed by the worker
	circ       *seq.Circuit     // the same circuit with its register cut
	inputProbs []float64        // resolved JobOptions.Probs, or nil
	// binding and activityLabel carry a parsed activity upload; the raw
	// dump bytes ride JobOptions.ActivityDump for journal persistence.
	binding       *activity.Binding
	activityLabel string
	original      *netlist.Netlist // pre-optimization clone (verify only)
	resultBLIF    []byte
	ledger        *obs.LedgerSummary

	// tracer and the submit-time spans are set once in Submit on sampled
	// jobs and immutable afterwards (the spans themselves are
	// concurrency-safe); tctx carries tracer + root span for the worker.
	tracer    *trace.Tracer
	jobSpan   *trace.Span
	queueSpan *trace.Span
	tctx      context.Context
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// poolLabel is the worker-status label shown at /debug/status: the job id
// plus the engine-worker breadth for parallel jobs, so one pool slot that
// is fanning out onto N region workers reads as exactly that.
func (j *Job) poolLabel() string {
	if j.opts.Parallelism > 1 {
		return fmt.Sprintf("%s par=%d", j.id, j.opts.Parallelism)
	}
	return j.id
}

// Hub returns the job's event stream.
func (j *Job) Hub() *obs.Hub { return j.hub }

// Tracer returns the job's span tracer (nil on an unsampled job).
func (j *Job) Tracer() *trace.Tracer { return j.tracer }

// TraceID returns the job's trace identifier ("" on an unsampled job).
func (j *Job) TraceID() string { return j.tracer.ID() }

// traceCtx returns the context the worker should run under: the span
// context of a traced job, the plain cancellation context otherwise.
func (j *Job) traceCtx() context.Context {
	if j.tctx != nil {
		return j.tctx
	}
	return j.ctx
}

// Status snapshots the job for serialization.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Circuit:     j.circuit,
		Options:     j.opts,
		SubmittedAt: j.submittedAt,
		Progress:    j.progress,
		Result:      j.result,
		Error:       j.errMsg,
		TraceID:     j.tracer.ID(),
		Cached:      j.cached,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	return st
}

// transition moves the job from one state to another; it reports false
// (and does nothing) when the job is not in the expected state.
func (j *Job) transition(from, to State) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != from {
		return false
	}
	j.state = to
	now := time.Now()
	switch to {
	case StateRunning:
		j.startedAt = now
	case StateCompleted, StateFailed, StateCancelled:
		j.finishedAt = now
	}
	return true
}

// setProgress publishes a live run snapshot (the core.Options.Progress
// hook target).
func (j *Job) setProgress(p core.Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

// requestCancel flags the job for cancellation and cancels its context.
// It reports whether the job was still cancellable (not yet terminal).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	terminal := j.state.Terminal()
	if !terminal {
		j.cancelAsked = true
	}
	j.mu.Unlock()
	if !terminal {
		j.cancel()
	}
	return !terminal
}

// cancelRequested reports whether DELETE asked for cancellation.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelAsked
}

// ResultBLIF returns the optimized netlist in BLIF form, or nil while
// the job has not produced one.
func (j *Job) ResultBLIF() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resultBLIF
}

// Ledger returns the run ledger of a finished job, or nil while the job
// has not produced one. The summary is immutable once published.
func (j *Job) Ledger() *obs.LedgerSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ledger
}

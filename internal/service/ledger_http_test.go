package service

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"powder/internal/obs"
)

// TestServiceLedgerEndpoint is the API acceptance scenario: a finished
// job exposes its run ledger, and the per-move realized gains sum to the
// headline power drop within 1e-9.
func TestServiceLedgerEndpoint(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)
	st, resp := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCompleted {
		t.Fatalf("job %s: state %s (error %q)", st.ID, fin.State, fin.Error)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(r.Body)
		t.Fatalf("ledger: HTTP %d: %s", r.StatusCode, body)
	}
	var led obs.LedgerSummary
	if err := json.NewDecoder(r.Body).Decode(&led); err != nil {
		t.Fatalf("ledger JSON: %v", err)
	}
	if led.Applied != fin.Result.Applied {
		t.Errorf("ledger applied %d, result applied %d", led.Applied, fin.Result.Applied)
	}
	var sum float64
	for _, m := range led.Moves {
		sum += m.RealizedGain
	}
	if diff := math.Abs(sum - led.RealizedGain); diff > 1e-9 {
		t.Errorf("move sum %.12g != ledger total %.12g", sum, led.RealizedGain)
	}
	headline := fin.Result.InitialPower - fin.Result.FinalPower
	if diff := math.Abs(led.RealizedGain - headline); diff > 1e-9 {
		t.Errorf("ledger total %.12g != headline drop %.12g", led.RealizedGain, headline)
	}

	// Unknown job: 404.
	r2, err := http.Get(ts.URL + "/v1/jobs/nope/ledger")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job ledger: HTTP %d, want 404", r2.StatusCode)
	}
}

// TestServiceLedgerConflictWhileRunning pins the 409 while the job has
// not reached a terminal state.
func TestServiceLedgerConflictWhileRunning(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1}, func(ctx context.Context, j *Job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	})
	st, resp := submit(t, ts.URL, "", circuitBLIF(t, "maj3"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("running job ledger: HTTP %d, want 409", r.StatusCode)
	}
	close(release)
	waitTerminal(t, ts.URL, st.ID)
}

// TestServiceMetricsPrometheus runs a job, scrapes /metrics, and checks
// the exposition parses, validates, and carries the service, runtime,
// ledger, and proof-latency families. ?format=json keeps the snapshot.
func TestServiceMetricsPrometheus(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)
	st, resp := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts.URL, st.ID); fin.State != StateCompleted {
		t.Fatalf("job: state %s (error %q)", fin.State, fin.Error)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	pm, err := obs.ValidatePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, family := range []string{
		"powder_service_queue_depth",
		"powder_service_jobs_inflight",
		"powder_service_workers",
		"powder_pool_panics_total",
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
		"powder_service_jobs_submitted_total",
		"powder_core_ledger_attempts_total",
	} {
		if len(pm.Family(family)) == 0 {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	// The proof-latency histogram must expose the full cumulative-bucket
	// contract (the validator has already checked its invariants).
	if len(pm.Family("powder_atpg_check_seconds")) < len(obs.ExpositionBounds)+3 {
		t.Errorf("powder_atpg_check_seconds incomplete: %d samples",
			len(pm.Family("powder_atpg_check_seconds")))
	}

	// JSON stays available behind ?format=json.
	r2, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if ct := r2.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("json Content-Type = %q", ct)
	}
	var mj metricsJSON
	if err := json.NewDecoder(r2.Body).Decode(&mj); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if mj.Workers != 1 {
		t.Errorf("json workers = %d, want 1", mj.Workers)
	}
	if mj.Metrics.Counters["service.jobs.submitted"] == 0 {
		t.Errorf("json snapshot missing service.jobs.submitted: %+v", mj.Metrics.Counters)
	}
}

package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"powder/internal/obs"
	"powder/internal/store"
)

// This file is the service's durability seam: cache-key derivation,
// journal persistence at every job transition, cache-hit completion
// without a pool dispatch, and startup recovery (Restore). Everything
// here is a no-op when Config.Store and Config.Cache are nil, so a
// memory-only service pays nothing.

// cacheKey derives the content address of a submission: the structural
// hash of the parsed core netlist (invariant to formatting, gate order,
// and internal names), the register boundary, and every option that can
// change the produced result — the effective timeout, the delay
// constraint, the substitution cap, verification, the resolved input
// probabilities, and the service-wide power-estimation configuration.
// It returns "" (no caching, no persistence key) when neither a store
// nor a cache is configured, keeping the memory-only path free.
func (s *Service) cacheKey(sub *submission, opts JobOptions) string {
	if s.cfg.Store == nil && s.cfg.Cache == nil {
		return ""
	}
	h := sha256.New()
	io.WriteString(h, "powder-cache/v1\n")
	io.WriteString(h, sub.nl.StructuralHash())
	fmt.Fprintf(h, "\nports %d %d\n", sub.model.NumInputs, sub.model.NumOutputs)
	for _, l := range sub.model.Latches {
		fmt.Fprintf(h, "latch %s %s %s %d\n", l.Output, l.Kind, l.Control, l.Init)
	}
	fmt.Fprintf(h, "opts %s %g %d %t %d\n", opts.Timeout, opts.DelayLimitPct, opts.MaxSubstitutions, opts.Verify, opts.Parallelism)
	fmt.Fprintf(h, "probs %v\n", sub.inputProbs)
	if sub.activityDigest != "" {
		// The profile's content digest, not the dump bytes: a VCD and a
		// SAIF describing the same workload share one key, while any
		// change in the measured statistics misses.
		fmt.Fprintf(h, "activity %s\n", sub.activityDigest)
	}
	fmt.Fprintf(h, "power %d %d\n", s.cfg.PowerWords, s.cfg.PowerSeed)
	return hex.EncodeToString(h.Sum(nil))
}

// jobFromCache completes a duplicate submission instantly from a cache
// entry: the job is born terminal, carries the cached result, BLIF, and
// ledger, and never touches the worker pool.
func (s *Service) jobFromCache(e *store.CacheEntry, opts JobOptions, key string) *Job {
	now := time.Now()
	hub := obs.NewHub(s.cfg.EventBuffer)
	hub.SetDropCounter(s.reg.Counter("obs.dropped.events"))
	j := &Job{
		id:          fmt.Sprintf("j%06d", s.seq.Add(1)),
		opts:        opts,
		hub:         hub,
		state:       StateCompleted,
		circuit:     e.Circuit,
		submittedAt: now,
		finishedAt:  now,
		cached:      true,
		cacheKey:    key,
		resultBLIF:  append([]byte(nil), e.ResultBLIF...),
	}
	// The job needs no cancellation: it is already terminal. A closed
	// context keeps ctx-consumers (none today) from leaking.
	j.ctx, j.cancel = cancelledContext()
	if len(e.Result) > 0 {
		var jr JobResult
		if err := json.Unmarshal(e.Result, &jr); err == nil {
			j.result = &jr
		}
	}
	if len(e.Ledger) > 0 {
		var ls obs.LedgerSummary
		if err := json.Unmarshal(e.Ledger, &ls); err == nil {
			j.ledger = &ls
		}
	}
	s.registerJob(j)
	s.reg.Counter("service.jobs.cached").Inc()
	s.finishStats(j, StateCompleted)
	hub.Emit(obs.Event{Time: now, Name: "job-cached", Fields: obs.Fields{
		"job": j.id, "circuit": j.circuit, "key": key,
	}})
	hub.Emit(obs.Event{Time: now, Name: "job-finished", Fields: obs.Fields{
		"job": j.id, "state": string(StateCompleted), "cached": true,
	}})
	hub.Close()
	// Persist the terminal job so the listing survives a restart; the
	// input is not stored (the job will never re-run).
	if st := s.cfg.Store; st != nil {
		ob, _ := json.Marshal(opts)
		st.AppendSubmit(store.JobRecord{
			ID: j.id, State: store.StateCompleted, Circuit: j.circuit,
			CacheKey: key, Options: ob, SubmittedAt: now, FinishedAt: now,
			Result: e.Result, ResultBLIF: e.ResultBLIF, Ledger: e.Ledger,
		})
	}
	return j
}

// persistSubmit journals a freshly accepted job, input BLIF included,
// before it is handed to the pool: replay must know the job before any
// worker can race it with a start record.
func (s *Service) persistSubmit(j *Job, body []byte) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	ob, _ := json.Marshal(j.opts)
	st.AppendSubmit(store.JobRecord{
		ID: j.id, State: store.StateQueued, Circuit: j.circuit,
		CacheKey: j.cacheKey, Options: ob, Input: body, SubmittedAt: j.submittedAt,
		Activity: j.opts.ActivityDump,
	})
}

// persistStart journals the queued -> running transition.
func (s *Service) persistStart(j *Job) {
	if st := s.cfg.Store; st != nil {
		st.AppendStart(j.id)
	}
}

// persistCancelPurge journals the cancellation of a job that never ran
// (still queued, or rejected by a full queue after its submit record was
// written). The record purges the job from the store so replay does not
// resurrect abandoned work.
func (s *Service) persistCancelPurge(id string) {
	if st := s.cfg.Store; st != nil {
		st.AppendCancel(id)
	}
}

// persistFinish journals a job's terminal state with its outcome.
func (s *Service) persistFinish(j *Job) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	finishedAt := j.finishedAt
	result := j.result
	resultBLIF := j.resultBLIF
	ledger := j.ledger
	errMsg := j.errMsg
	j.mu.Unlock()
	var rb, lb json.RawMessage
	if result != nil {
		rb, _ = json.Marshal(result)
	}
	if ledger != nil {
		lb, _ = json.Marshal(ledger)
	}
	st.AppendFinish(j.id, string(state), finishedAt, rb, resultBLIF, lb, errMsg)
}

// maybeCacheResult publishes a completing job's outcome into the result
// cache. Runs stopped early (deadline, cancellation, panic recovery)
// are wall-clock-dependent and are never cached; a deterministic rerun
// of the same submission would not reproduce them. It runs before the
// job's terminal state is published, so `to` carries the state the job
// is about to enter rather than j.state (still "running" here).
func (s *Service) maybeCacheResult(j *Job, to State, stoppedEarly bool) {
	c := s.cfg.Cache
	if c == nil || j.cacheKey == "" || j.opts.NoCache || stoppedEarly {
		return
	}
	j.mu.Lock()
	result := j.result
	resultBLIF := j.resultBLIF
	ledger := j.ledger
	circuit := j.circuit
	j.mu.Unlock()
	if to != StateCompleted || result == nil || resultBLIF == nil {
		return
	}
	rb, _ := json.Marshal(result)
	var lb json.RawMessage
	if ledger != nil {
		lb, _ = json.Marshal(ledger)
	}
	c.Put(&store.CacheEntry{
		Key: j.cacheKey, Circuit: circuit,
		Result: rb, ResultBLIF: resultBLIF, Ledger: lb,
	})
}

// Restore rebuilds the job table from the configured store: terminal
// jobs are served immediately (and completed ones re-warm the cache),
// jobs that were queued or running at crash time are re-enqueued from
// their persisted input under their original IDs. The job-ID sequence
// resumes past the highest recovered ID. Call once, after New and
// before serving HTTP.
func (s *Service) Restore() (requeued, served int) {
	st := s.cfg.Store
	if st == nil {
		return 0, 0
	}
	recs := st.Jobs()
	var maxSeq int64
	for _, rec := range recs {
		if n, err := strconv.ParseInt(rec.ID[1:], 10, 64); err == nil && rec.ID[0] == 'j' && n > maxSeq {
			maxSeq = n
		}
	}
	s.seq.Store(maxSeq)
	var pending []*Job
	for _, rec := range recs {
		if rec.Terminal() {
			s.restoreTerminal(rec)
			served++
			continue
		}
		if j := s.requeue(rec); j != nil {
			pending = append(pending, j)
			requeued++
		}
	}
	if len(pending) > 0 {
		// Re-enqueue in the background with blocking submits: recovered
		// backlogs larger than the queue bound must not deadlock startup,
		// and submission order is preserved.
		go func() {
			for _, j := range pending {
				j := j
				if !s.pool.SubmitLabeled(j.poolLabel(), func() { s.runJob(j) }) {
					// Pool closed mid-recovery (immediate shutdown): the
					// job stays queued in memory and in the store, and the
					// next restart re-enqueues it again.
					return
				}
				s.reg.Counter("service.jobs.requeued").Inc()
				j.hub.Emit(obs.Event{Time: time.Now(), Name: "job-requeued", Fields: obs.Fields{
					"job": j.id, "circuit": j.circuit,
				}})
			}
		}()
	}
	return requeued, served
}

// restoreTerminal rebuilds a finished job from its record: status,
// result, BLIF, and ledger are served exactly as before the restart.
func (s *Service) restoreTerminal(rec store.JobRecord) {
	hub := obs.NewHub(1)
	hub.Close()
	j := &Job{
		id:          rec.ID,
		hub:         hub,
		state:       State(rec.State),
		circuit:     rec.Circuit,
		cacheKey:    rec.CacheKey,
		submittedAt: rec.SubmittedAt,
		finishedAt:  rec.FinishedAt,
		errMsg:      rec.Error,
		resultBLIF:  rec.ResultBLIF,
	}
	j.ctx, j.cancel = cancelledContext()
	if len(rec.Options) > 0 {
		_ = json.Unmarshal(rec.Options, &j.opts)
	}
	if len(rec.Result) > 0 {
		var jr JobResult
		if err := json.Unmarshal(rec.Result, &jr); err == nil {
			j.result = &jr
		}
	}
	if len(rec.Ledger) > 0 {
		var ls obs.LedgerSummary
		if err := json.Unmarshal(rec.Ledger, &ls); err == nil {
			j.ledger = &ls
		}
	}
	s.registerJob(j)
	if s.cfg.Cache != nil && j.state == StateCompleted && rec.CacheKey != "" &&
		len(rec.ResultBLIF) > 0 && !j.opts.NoCache {
		s.cfg.Cache.Put(&store.CacheEntry{
			Key: rec.CacheKey, Circuit: rec.Circuit,
			Result: rec.Result, ResultBLIF: rec.ResultBLIF, Ledger: rec.Ledger,
		})
	}
}

// requeue rebuilds an interrupted job (queued or running at crash time)
// from its persisted input. The returned job is registered but not yet
// on the pool; Restore submits the whole batch in order. A job whose
// input no longer parses (e.g. the daemon restarted with a different
// library) finishes as failed instead of crashing recovery.
func (s *Service) requeue(rec store.JobRecord) *Job {
	var opts JobOptions
	opts.DelayLimitPct = -1
	if len(rec.Options) > 0 {
		_ = json.Unmarshal(rec.Options, &opts)
	}
	// The activity dump is journaled outside the options JSON; restore it
	// so the re-run sees the same workload.
	opts.ActivityDump = rec.Activity
	sub, err := s.parseSubmission(rec.Input, opts)
	if err != nil {
		s.restoreTerminal(store.JobRecord{
			ID: rec.ID, State: store.StateFailed, Circuit: rec.Circuit,
			CacheKey: rec.CacheKey, Options: rec.Options,
			SubmittedAt: rec.SubmittedAt, FinishedAt: time.Now(),
			Error: fmt.Sprintf("recovery: input no longer parses: %v", err),
		})
		if j, ok := s.Job(rec.ID); ok {
			s.persistFinish(j)
		}
		return nil
	}
	j := s.newJob(rec.ID, sub, opts, rec.CacheKey)
	j.submittedAt = rec.SubmittedAt
	s.registerJob(j)
	return j
}

// cancelledContext returns an already-cancelled context: restored and
// cache-served jobs are terminal at birth and must not hold a live
// child of the service root context.
func cancelledContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx, cancel
}

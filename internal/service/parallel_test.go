package service

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestParallelJobParam: the ?par parameter reaches the engine (capped at
// the pool size), shows up in the job's options, and the run completes
// with a real result.
func TestParallelJobParam(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2, QueueDepth: 8, PowerWords: 16}, nil)
	body := circuitBLIF(t, "fig2")

	// par beyond the pool size is capped, not rejected.
	st, resp := submit(t, ts.URL, "?par=16", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if st.Options.Parallelism != 2 {
		t.Fatalf("par capped to %d, want pool size 2", st.Options.Parallelism)
	}
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCompleted {
		t.Fatalf("state %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.FinalPower >= fin.Result.InitialPower {
		t.Fatalf("no reduction: %+v", fin.Result)
	}

	// A malformed value is a 400, not a silently-sequential run.
	if _, resp := submit(t, ts.URL, "?par=lots", body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad par: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestParallelPoolLabelBreadth: while a parallel job runs, the pool's
// worker label carries the engine-worker breadth so /debug/status tells
// the truth about how many region workers one pool slot is fanning into.
func TestParallelPoolLabelBreadth(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	var svc *Service
	release := make(chan struct{})
	svc, ts := newTestService(t, Config{Workers: 4, QueueDepth: 8, PowerWords: 16},
		func(ctx context.Context, j *Job) {
			mu.Lock()
			seen = append(seen, svc.pool.WorkerStatus()...)
			mu.Unlock()
			<-release
		})
	defer close(release)

	st, resp := submit(t, ts.URL, "?par=3", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitState(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	mu.Lock()
	defer mu.Unlock()
	for _, label := range seen {
		if strings.Contains(label, st.ID) && strings.HasSuffix(label, "par=3") {
			return
		}
	}
	t.Fatalf("no worker label %q par=3 in %q", st.ID, seen)
}

package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"powder/internal/obs/trace"
)

// fetchTrace GETs a job's trace endpoint and returns the raw response.
func fetchTrace(t *testing.T, base, id, query string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServiceTracedJobEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, TraceSample: 1}, nil)

	st, resp := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != st.ID {
		t.Errorf("submit %s header = %q, want the job ID %q", TraceHeader, got, st.ID)
	}

	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCompleted {
		t.Fatalf("job finished %s, want completed", fin.State)
	}
	if fin.TraceID != st.ID {
		t.Errorf("status trace_id = %q, want %q", fin.TraceID, st.ID)
	}

	tresp := fetchTrace(t, ts.URL, st.ID, "")
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", tresp.StatusCode)
	}
	if got := tresp.Header.Get(TraceHeader); got != st.ID {
		t.Errorf("trace %s header = %q, want %q", TraceHeader, got, st.ID)
	}
	var tr traceJSON
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if tr.Trace != st.ID {
		t.Errorf("trace payload ID = %q, want %q", tr.Trace, st.ID)
	}
	if err := trace.Validate(tr.Spans); err != nil {
		t.Fatalf("published span tree is malformed: %v", err)
	}
	roots := trace.Roots(tr.Spans)
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %+v, want exactly the job span", roots)
	}
	have := map[string]bool{}
	for _, s := range tr.Spans {
		have[s.Name] = true
	}
	for _, want := range []string{"job", "queue", "run", "optimize"} {
		if !have[want] {
			t.Errorf("span tree is missing a %q span (have %v)", want, have)
		}
	}

	// The same tree exports as Perfetto trace-event JSON.
	presp := fetchTrace(t, ts.URL, st.ID, "?format=perfetto")
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("perfetto trace: HTTP %d", presp.StatusCode)
	}
	if ct := presp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("perfetto Content-Type = %q, want application/json", ct)
	}
	var pf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&pf); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if len(pf.TraceEvents) < len(tr.Spans) {
		t.Errorf("perfetto export has %d events for %d spans", len(pf.TraceEvents), len(tr.Spans))
	}
}

func TestServiceTraceConflictWhileRunningAndDebugStatus(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestService(t, Config{Workers: 1, TraceSample: 1}, func(ctx context.Context, j *Job) {
		<-release
	})
	st, _ := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	waitState(t, ts.URL, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")

	// The trace is incomplete while the job runs.
	resp := fetchTrace(t, ts.URL, st.ID, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of a running job: HTTP %d, want 409", resp.StatusCode)
	}

	// /debug/status shows the worker holding the job and its live span
	// stack (job → run are open while the hook blocks).
	dresp, err := http.Get(ts.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	var ds debugStatus
	if err := json.NewDecoder(dresp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if len(ds.Workers) != 1 {
		t.Fatalf("debug workers = %+v, want one", ds.Workers)
	}
	if ds.Workers[0].Job != st.ID {
		t.Errorf("worker 0 runs %q, want %q", ds.Workers[0].Job, st.ID)
	}
	if len(ds.ActiveJobs) != 1 {
		t.Fatalf("active jobs = %+v, want one", ds.ActiveJobs)
	}
	aj := ds.ActiveJobs[0]
	if aj.ID != st.ID || aj.TraceID != st.ID || aj.State != StateRunning {
		t.Errorf("active job = %+v, want running %q with its trace ID", aj, st.ID)
	}
	stack := make([]string, 0, len(aj.SpanStack))
	for _, s := range aj.SpanStack {
		stack = append(stack, s.Name)
	}
	if len(stack) < 2 || stack[0] != "job" || stack[len(stack)-1] != "run" {
		t.Errorf("live span stack = %v, want job ... run", stack)
	}

	close(release)
	if fin := waitTerminal(t, ts.URL, st.ID); fin.State != StateCompleted {
		t.Fatalf("job finished %s, want completed", fin.State)
	}
	resp = fetchTrace(t, ts.URL, st.ID, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace after completion: HTTP %d, want 200", resp.StatusCode)
	}
}

func TestServiceTraceOffByDefault(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)
	st, resp := submit(t, ts.URL, "", circuitBLIF(t, "fig2"))
	if got := resp.Header.Get(TraceHeader); got != "" {
		t.Errorf("untraced submit carries %s=%q", TraceHeader, got)
	}
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.TraceID != "" {
		t.Errorf("untraced job has trace_id %q", fin.TraceID)
	}
	tresp := fetchTrace(t, ts.URL, st.ID, "")
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of an untraced job: HTTP %d, want 404", tresp.StatusCode)
	}
}

// Satellite: the metrics exposition must label its content types so
// Prometheus scrapes the text format and tools get real JSON.
func TestServiceMetricsContentTypes(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q, want the Prometheus text format", ct)
	}

	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=json: HTTP %d", jresp.StatusCode)
	}
	if ct := jresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics?format=json Content-Type = %q, want application/json", ct)
	}
	var mj metricsJSON
	if err := json.NewDecoder(jresp.Body).Decode(&mj); err != nil {
		t.Fatalf("JSON metrics do not decode: %v", err)
	}
	if mj.Workers != 1 {
		t.Errorf("metrics workers = %d, want 1", mj.Workers)
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"
	"strings"
	"time"

	"powder/internal/obs"
	"powder/internal/obs/trace"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs                submit a BLIF circuit (body) with query
//	                               options timeout, delay-limit, max-subs,
//	                               verify, probs (comma-separated name=p
//	                               input probabilities), and no-cache
//	                               (bypass the content-addressed result
//	                               cache); a multipart/form-data body
//	                               carries the BLIF as part "circuit"
//	                               plus an optional part "activity" (a
//	                               VCD or SAIF workload dump whose
//	                               matched signals replace the uniform
//	                               switching assumption and key the
//	                               result cache by content digest);
//	                               sequential circuits (.latch)
//	                               are cut at their register boundaries
//	                               and returned with the latches stitched
//	                               back; 202 + job status (completed on
//	                               arrival with "cached" set when served
//	                               from the cache), 429 + a queue-depth-
//	                               derived Retry-After when the queue is
//	                               full, 503 while draining
//	GET    /v1/jobs                all job statuses in submission order
//	GET    /v1/jobs/{id}           one job's status
//	GET    /v1/jobs/{id}/result.blif  the optimized netlist
//	GET    /v1/jobs/{id}/events    the job's event stream as NDJSON
//	GET    /v1/jobs/{id}/ledger    the run ledger (substitution provenance
//	                               + per-node power attribution) of a
//	                               finished job; 409 while running
//	GET    /v1/jobs/{id}/trace     the span tree of a traced job
//	                               (Config.TraceSample); 409 while
//	                               running, ?format=perfetto renders
//	                               Chrome/Perfetto trace-event JSON
//	POST   /v1/jobs/{id}/spans     stitch client-recorded spans into a
//	                               traced job's forest (the
//	                               client.UploadSpans target); the body
//	                               is a JSON array of trace records
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	GET    /healthz                liveness + drain state
//	GET    /metrics                Prometheus text exposition (counters,
//	                               histograms incl. per-endpoint
//	                               powder_http_request_seconds{path,code},
//	                               runtime collectors); ?format=json
//	                               keeps the JSON snapshot
//	GET    /debug/status           live introspection: queue depth,
//	                               per-worker current job, active jobs
//	                               with their open span stacks, drop
//	                               counters
//	GET    /debug/flight           the process flight recorder: the most
//	                               recent events, spans, requests, and
//	                               counter deltas as one JSON document
//
// Responses for traced jobs carry the trace ID in an X-Powder-Trace
// header, correlating access logs with span trees. A submission that
// itself carries X-Powder-Trace (and optionally X-Powder-Parent) is
// traced unconditionally under the client's trace ID, with the job root
// span parented under the client's span — the cross-process half of the
// stitched trace served at /v1/jobs/{id}/trace.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", s.handleList)
	handle("GET /v1/jobs/{id}", s.handleStatus)
	handle("GET /v1/jobs/{id}/result.blif", s.handleResult)
	handle("GET /v1/jobs/{id}/events", s.handleEvents)
	handle("GET /v1/jobs/{id}/ledger", s.handleLedger)
	handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	handle("POST /v1/jobs/{id}/spans", s.handleSpans)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /healthz", s.handleHealth)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /debug/status", s.handleDebugStatus)
	handle("GET /debug/flight", s.handleDebugFlight)
	return mux
}

// TraceHeader is the header carrying a trace ID: on responses, a traced
// job's ID; on submissions, a client trace ID the job should adopt.
const TraceHeader = "X-Powder-Trace"

// TraceParentHeader is the request header carrying the client's current
// span ID (decimal); the job root span parents under it.
const TraceParentHeader = "X-Powder-Parent"

// statusWriter captures the response code for the request-duration
// histogram. It forwards Flush so the NDJSON event stream keeps
// streaming through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with per-endpoint accounting: every
// request lands in the powder_http_request_seconds{path,code} histogram
// family — labeled by route pattern, not raw URL, so cardinality stays
// bounded — and in the process flight recorder.
func (s *Service) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	path := pattern
	if _, p, ok := strings.Cut(pattern, " "); ok {
		path = p
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start).Seconds()
		code := strconv.Itoa(sw.code)
		s.reg.Histogram(obs.Labeled("http.request.seconds", "path", path, "code", code)).Observe(elapsed)
		obs.Flight().Record("http", r.Method+" "+path, obs.Fields{"code": sw.code, "seconds": elapsed})
	}
}

// setTraceHeader stamps a traced job's ID onto the response.
func setTraceHeader(w http.ResponseWriter, j *Job) {
	if id := j.TraceID(); id != "" {
		w.Header().Set(TraceHeader, id)
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// parseJobOptions reads the submission options from the query string.
func parseJobOptions(r *http.Request) (JobOptions, error) {
	q := r.URL.Query()
	opts := JobOptions{DelayLimitPct: -1}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return opts, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 30s)", v)
		}
		opts.Timeout = d
	}
	if v := q.Get("delay-limit"); v != "" {
		pct, err := strconv.ParseFloat(v, 64)
		if err != nil || pct < 0 {
			return opts, fmt.Errorf("bad delay-limit %q (want a percentage >= 0)", v)
		}
		opts.DelayLimitPct = pct
	}
	if v := q.Get("max-subs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad max-subs %q (want an integer >= 0)", v)
		}
		opts.MaxSubstitutions = n
	}
	if v := q.Get("verify"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad verify %q (want a boolean)", v)
		}
		opts.Verify = b
	}
	if v := q.Get("probs"); v != "" {
		// Comma-separated name=p entries become the newline-separated
		// powder -probs format; Submit validates names and ranges.
		opts.Probs = strings.ReplaceAll(v, ",", "\n")
	}
	if v := q.Get("no-cache"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad no-cache %q (want a boolean)", v)
		}
		opts.NoCache = b
	}
	if v := q.Get("par"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad par %q (want an integer >= 0)", v)
		}
		opts.Parallelism = n
	}
	return opts, nil
}

// retryAfterSeconds derives the 429 Retry-After hint from the current
// backlog: roughly the queued-jobs-per-worker count, jittered uniformly
// up to twice that so a thundering herd of rejected clients does not
// resynchronize on a constant. intn is the jitter source (injectable
// for tests); the result is in [1, 60].
func retryAfterSeconds(depth, workers int, intn func(int) int) int {
	if workers < 1 {
		workers = 1
	}
	base := 1 + depth/workers
	if base > 30 {
		base = 30
	}
	ra := base + intn(base)
	if ra > 60 {
		ra = 60
	}
	return ra
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	opts, err := parseJobOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if tid := r.Header.Get(TraceHeader); tid != "" {
		opts.TraceID = tid
		if p := r.Header.Get(TraceParentHeader); p != "" {
			// An unparsable parent degrades to a root-level job span
			// rather than rejecting the submission.
			if n, perr := strconv.ParseInt(p, 10, 64); perr == nil && n > 0 {
				opts.TraceParent = n
			}
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	// A multipart body carries the circuit plus an optional workload
	// activity dump as named parts; a plain body is the BLIF alone.
	if mt, params, merr := mime.ParseMediaType(r.Header.Get("Content-Type")); merr == nil && mt == "multipart/form-data" {
		body, opts.ActivityDump, err = splitMultipartSubmit(body, params["boundary"])
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	j, err := s.Submit(body, opts)
	switch {
	case err == nil:
		setTraceHeader(w, j)
		writeJSON(w, http.StatusAccepted, j.Status())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		ra := retryAfterSeconds(s.QueueDepth(), s.Workers(), rand.IntN)
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	default:
		var pe *ParseError
		if errors.As(err, &pe) {
			writeError(w, http.StatusBadRequest, "parse: %v", pe.Err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// splitMultipartSubmit extracts the "circuit" (required) and "activity"
// (optional) parts of a multipart submission. Unknown part names are
// rejected so typos fail loudly instead of silently running uniform.
func splitMultipartSubmit(body []byte, boundary string) (circuit, activityDump []byte, err error) {
	if boundary == "" {
		return nil, nil, errors.New("multipart submission without a boundary")
	}
	mr := multipart.NewReader(bytes.NewReader(body), boundary)
	for {
		p, perr := mr.NextPart()
		if perr == io.EOF {
			break
		}
		if perr != nil {
			return nil, nil, fmt.Errorf("bad multipart body: %v", perr)
		}
		data, rerr := io.ReadAll(p)
		if rerr != nil {
			return nil, nil, fmt.Errorf("reading part %q: %v", p.FormName(), rerr)
		}
		switch p.FormName() {
		case "circuit":
			circuit = data
		case "activity":
			activityDump = data
		default:
			return nil, nil, fmt.Errorf("unknown multipart part %q (want \"circuit\" and optionally \"activity\")", p.FormName())
		}
	}
	if circuit == nil {
		return nil, nil, errors.New("multipart submission without a \"circuit\" part")
	}
	return circuit, activityDump, nil
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.JobsSnapshot())
}

func (s *Service) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		setTraceHeader(w, j)
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	st := j.Status()
	blifText := j.ResultBLIF()
	switch {
	case !st.State.Terminal():
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", j.ID(), st.State)
	case blifText == nil:
		writeError(w, http.StatusNotFound, "job %s finished %s without a result", j.ID(), st.State)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(blifText)
	}
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	events, cancel := j.Hub().Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case e, open := <-events:
			if !open {
				return // job finished and the stream is drained
			}
			if err := enc.Encode(obs.EventRecord(e)); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleLedger(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	st := j.Status()
	led := j.Ledger()
	switch {
	case !st.State.Terminal():
		writeError(w, http.StatusConflict, "job %s is %s; ledger not ready", j.ID(), st.State)
	case led == nil:
		writeError(w, http.StatusNotFound, "job %s finished %s without a ledger", j.ID(), st.State)
	default:
		writeJSON(w, http.StatusOK, led)
	}
}

// traceJSON is the GET /v1/jobs/{id}/trace payload.
type traceJSON struct {
	Trace   string         `json:"trace"`
	Spans   []trace.Record `json:"spans"`
	Dropped int64          `json:"dropped,omitempty"`
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	st := j.Status()
	tr := j.Tracer()
	switch {
	case tr == nil:
		writeError(w, http.StatusNotFound, "job %s was not traced; start powderd with -trace-sample", j.ID())
	case !st.State.Terminal():
		// A running job's tree is still growing; /debug/status shows the
		// live span stack instead.
		writeError(w, http.StatusConflict, "job %s is %s; trace not complete", j.ID(), st.State)
	default:
		setTraceHeader(w, j)
		spans := tr.Snapshot()
		if r.URL.Query().Get("format") == "perfetto" {
			w.Header().Set("Content-Type", "application/json")
			_ = trace.WritePerfetto(w, spans)
			return
		}
		writeJSON(w, http.StatusOK, traceJSON{Trace: tr.ID(), Spans: spans, Dropped: tr.Dropped()})
	}
}

// spansAccepted is the POST /v1/jobs/{id}/spans payload.
type spansAccepted struct {
	Adopted int `json:"adopted"`
}

func (s *Service) handleSpans(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	tr := j.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "job %s was not traced; nothing to stitch spans into", j.ID())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var spans []trace.Record
	if err := json.Unmarshal(body, &spans); err != nil {
		writeError(w, http.StatusBadRequest, "bad span payload: %v", err)
		return
	}
	for i, rec := range spans {
		if err := tr.Adopt(rec); err != nil {
			writeError(w, http.StatusBadRequest, "span %d: %v", i, err)
			return
		}
	}
	setTraceHeader(w, j)
	writeJSON(w, http.StatusAccepted, spansAccepted{Adopted: len(spans)})
}

func (s *Service) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	f := obs.Flight()
	// Fold the counter movement since the last sample into the ring
	// right before dumping, so the snapshot ends with current rates.
	f.SampleMetrics(s.reg)
	w.Header().Set("Content-Type", "application/json")
	_ = f.WriteJSON(w)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	cancelled, _ := s.Cancel(j.ID())
	st := j.Status()
	if !cancelled && !st.State.Terminal() {
		writeError(w, http.StatusConflict, "job %s could not be cancelled", j.ID())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// health is the /healthz payload.
type health struct {
	Status     string `json:"status"`
	Draining   bool   `json:"draining"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`
	// Store is "" without a persistent store, "ok" while durable, and
	// "degraded" once a write failure forced in-memory-only operation.
	Store string `json:"store,omitempty"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := health{
		Status:     "ok",
		Draining:   s.Draining(),
		Workers:    s.Workers(),
		QueueDepth: s.QueueDepth(),
		InFlight:   s.InFlight(),
	}
	if st := s.cfg.Store; st != nil {
		h.Store = "ok"
		if st.Degraded() {
			h.Store = "degraded"
		}
	}
	code := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// metricsJSON is the ?format=json payload of /metrics: the live service
// gauges plus the registry snapshot.
type metricsJSON struct {
	QueueDepth int          `json:"queue_depth"`
	InFlight   int64        `json:"in_flight"`
	Workers    int          `json:"workers"`
	PoolPanics int64        `json:"pool_panics"`
	Metrics    obs.Snapshot `json:"metrics"`
}

// debugWorker is one worker's row in /debug/status.
type debugWorker struct {
	Worker int `json:"worker"`
	// Job is the running job's ID, "" for an idle worker.
	Job string `json:"job,omitempty"`
}

// debugJob is one active (queued or running) job in /debug/status; for
// traced jobs SpanStack holds the currently open spans root-first — the
// live "where is this job right now" view.
type debugJob struct {
	ID        string         `json:"id"`
	State     State          `json:"state"`
	Circuit   string         `json:"circuit"`
	TraceID   string         `json:"trace_id,omitempty"`
	SpanStack []trace.Record `json:"span_stack,omitempty"`
}

// debugStatus is the GET /debug/status payload.
type debugStatus struct {
	Draining      bool          `json:"draining"`
	Workers       []debugWorker `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	InFlight      int64         `json:"in_flight"`
	ActiveJobs    []debugJob    `json:"active_jobs"`
	PoolPanics    int64         `json:"pool_panics"`
	DroppedEvents int64         `json:"dropped_events"`
	DroppedSpans  int64         `json:"dropped_spans"`
}

func (s *Service) handleDebugStatus(w http.ResponseWriter, r *http.Request) {
	st := debugStatus{
		Draining:      s.Draining(),
		QueueDepth:    s.QueueDepth(),
		InFlight:      s.InFlight(),
		ActiveJobs:    []debugJob{},
		PoolPanics:    s.pool.Panics(),
		DroppedEvents: s.reg.Counter("obs.dropped.events").Value(),
		DroppedSpans:  s.reg.Counter("trace.dropped.spans").Value(),
	}
	for i, label := range s.pool.WorkerStatus() {
		st.Workers = append(st.Workers, debugWorker{Worker: i, Job: label})
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		js := j.Status()
		if js.State.Terminal() {
			continue
		}
		st.ActiveJobs = append(st.ActiveJobs, debugJob{
			ID:        js.ID,
			State:     js.State,
			Circuit:   js.Circuit,
			TraceID:   js.TraceID,
			SpanStack: j.Tracer().ActiveStack(),
		})
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, metricsJSON{
			QueueDepth: s.QueueDepth(),
			InFlight:   s.InFlight(),
			Workers:    s.Workers(),
			PoolPanics: s.pool.Panics(),
			Metrics:    s.reg.Snapshot(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.PromGauge(w, "powder_service_queue_depth", float64(s.QueueDepth()))
	obs.PromGauge(w, "powder_service_jobs_inflight", float64(s.InFlight()))
	obs.PromGauge(w, "powder_service_workers", float64(s.Workers()))
	obs.PromCounter(w, "powder_pool_panics_total", float64(s.pool.Panics()))
	if st := s.cfg.Store; st != nil {
		degraded := 0.0
		if st.Degraded() {
			degraded = 1
		}
		obs.PromGauge(w, "powder_store_degraded", degraded)
	}
	if c := s.cfg.Cache; c != nil {
		obs.PromGauge(w, "powder_store_cache_entries", float64(c.Len()))
	}
	obs.WriteRuntimeMetrics(w)
	s.reg.WritePrometheus(w, "powder_")
}

package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powder/internal/activity"
	"powder/internal/atpg"
	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/core"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/power"
	"powder/internal/seq"
	"powder/internal/store"
	"powder/internal/transform"
)

// Config sizes and wires one Service.
type Config struct {
	// Workers is the optimization worker-pool size (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; a full
	// queue rejects submissions with 429 (<= 0: default 64).
	QueueDepth int
	// Library resolves BLIF cells (nil: the built-in lib2).
	Library *cellib.Library
	// MaxBodyBytes bounds the accepted BLIF size (<= 0: 16 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-job wall-clock budget applied when a
	// submission does not set one (0: unlimited).
	DefaultTimeout time.Duration
	// EventBuffer is each job's event replay-buffer size (<= 0: 4096).
	EventBuffer int
	// Registry receives the service and per-phase engine metrics
	// (nil: a fresh registry, exposed at /metrics).
	Registry *obs.Registry
	// PowerWords / PowerSeed configure probability estimation for every
	// job (<= 0: engine defaults of 64 words, seed 1).
	PowerWords int
	PowerSeed  int64
	// TraceSample enables per-job span tracing for one job in every
	// TraceSample submissions (1 = every job, 0 = off, the default for
	// an always-on daemon). A traced job carries a trace ID in its
	// status and serves its span tree at GET /v1/jobs/{id}/trace.
	TraceSample int64
	// TraceLimit bounds each traced job's recorded spans
	// (<= 0: trace.DefaultLimit).
	TraceLimit int
	// Store, when non-nil, persists every job transition to a write-
	// ahead journal so jobs survive daemon restarts (see Restore).
	Store *store.Store
	// Cache, when non-nil, serves duplicate submissions (same structural
	// circuit + same options) from cached results without a pool
	// dispatch.
	Cache *store.Cache
}

// Service owns the job store, the worker pool, and the HTTP handlers of
// one powderd instance.
type Service struct {
	cfg     Config
	pool    *Pool
	reg     *obs.Registry
	sampler *trace.Sampler

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   atomic.Int64

	draining atomic.Bool
	inflight atomic.Int64

	// testBeforeRun, when non-nil, is invoked by a worker after the job
	// transitions to running and before optimization starts. Tests use
	// it to hold workers in place deterministically.
	testBeforeRun func(ctx context.Context, j *Job)
}

// New starts a Service: its workers are live once New returns.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Library == nil {
		cfg.Library = cellib.Lib2()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		reg:        cfg.Registry,
		sampler:    trace.Every(cfg.TraceSample),
		jobs:       make(map[string]*Job),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth)
	return s
}

// Registry returns the service metrics registry.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return s.pool.Workers() }

// submission is a parsed, validated job input ready to become a Job.
type submission struct {
	model      *blif.Model
	circ       *seq.Circuit
	nl         *netlist.Netlist
	inputProbs []float64
	// binding, activityDigest, and activityLabel describe a workload
	// activity upload bound onto the circuit's core inputs; all empty
	// without one.
	binding        *activity.Binding
	activityDigest string
	activityLabel  string
}

// parseSubmission parses and validates a BLIF body plus its options
// into a submission; every failure is a *ParseError (HTTP 400).
func (s *Service) parseSubmission(body []byte, opts JobOptions) (*submission, error) {
	model, err := blif.ReadModel(bytes.NewReader(body), s.cfg.Library)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	circ, err := seq.FromModel(model)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	// Bad probability lists reject the submission up front, with the
	// offending line, rather than failing the job asynchronously.
	var inputProbs []float64
	if opts.Probs != "" {
		entries, perr := seq.ParseProbs(strings.NewReader(opts.Probs))
		if perr != nil {
			return nil, &ParseError{Err: perr}
		}
		inputProbs, perr = seq.ResolveProbs(entries, circ)
		if perr != nil {
			return nil, &ParseError{Err: perr}
		}
	}
	sub := &submission{model: model, circ: circ, nl: model.Netlist, inputProbs: inputProbs}
	if len(opts.ActivityDump) > 0 {
		if opts.Probs != "" {
			return nil, &ParseError{Err: errors.New("use either probs or an activity upload, not both (the dump already carries input probabilities)")}
		}
		prof, perr := activity.Read(bytes.NewReader(opts.ActivityDump))
		if perr != nil {
			return nil, &ParseError{Err: fmt.Errorf("activity: %v", perr)}
		}
		coreInputs := circ.Core().Inputs()
		names := make([]string, len(coreInputs))
		for i, id := range coreInputs {
			names[i] = circ.Core().Node(id).Name()
		}
		b, perr := prof.Bind(names)
		if perr != nil {
			return nil, &ParseError{Err: fmt.Errorf("activity: %v", perr)}
		}
		if b.MatchedCount == 0 {
			// A dump from the wrong design must fail loudly, not silently
			// run the uniform assumption it was supposed to replace.
			return nil, &ParseError{Err: fmt.Errorf("activity: dump matched none of the circuit's %d inputs (profile signals: %d)",
				len(b.Names), len(prof.Signals))}
		}
		sub.binding = b
		sub.activityDigest = prof.Digest()
		sub.activityLabel = fmt.Sprintf("%s sha256:%.12s %s", prof.Source, sub.activityDigest, b.Coverage())
	}
	return sub, nil
}

// newJob builds a queued Job (with event hub and optional span tracer)
// from a parsed submission; the caller registers and enqueues it.
func (s *Service) newJob(id string, sub *submission, opts JobOptions, cacheKey string) *Job {
	ctx, cancel := context.WithCancel(s.rootCtx)
	hub := obs.NewHub(s.cfg.EventBuffer)
	// Slow event consumers must never stall a worker: the hub drops
	// instead, and the drops surface at /metrics. Every event also
	// mirrors into the process flight recorder for postmortems.
	hub.SetDropCounter(s.reg.Counter("obs.dropped.events"))
	hub.SetMirror(obs.Flight())
	j := &Job{
		id:            id,
		opts:          opts,
		hub:           hub,
		ctx:           ctx,
		cancel:        cancel,
		state:         StateQueued,
		circuit:       sub.nl.Name,
		cacheKey:      cacheKey,
		submittedAt:   time.Now(),
		nl:            sub.nl,
		circ:          sub.circ,
		inputProbs:    sub.inputProbs,
		binding:       sub.binding,
		activityLabel: sub.activityLabel,
	}
	if opts.Verify {
		j.original = sub.nl.Clone()
	}
	if forced := opts.TraceID != ""; forced || s.sampler.Sample() {
		// The tracer mirrors completed spans onto the job's event stream
		// and bounds its recorder; drops surface at /metrics. A client
		// that sent X-Powder-Trace forces tracing under its own trace ID
		// so the stitched forest reads client → queue → run → engine.
		traceID := j.id
		if forced {
			traceID = opts.TraceID
		}
		j.tracer = trace.New(traceID, trace.Options{
			Limit:       s.cfg.TraceLimit,
			DropCounter: s.reg.Counter("trace.dropped.spans"),
			Obs:         obs.New(hub, nil),
		})
		tctx := trace.NewContext(ctx, j.tracer)
		// The job root parents under the client's in-flight span (0, the
		// ordinary case, keeps it a root).
		j.jobSpan = j.tracer.Start("job", trace.SpanID(opts.TraceParent))
		j.jobSpan.SetAttr("circuit", j.circuit)
		tctx = trace.ContextWithSpan(tctx, j.jobSpan)
		// The queue span measures submission → worker pickup; runJob ends
		// it when the job leaves the queue.
		_, j.queueSpan = trace.StartSpan(tctx, "queue")
		j.tctx = tctx
	}
	return j
}

// registerJob inserts a job into the table in submission order.
func (s *Service) registerJob(j *Job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

// unregisterJob removes a job rejected before it ever ran.
func (s *Service) unregisterJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	// Concurrent submissions may have appended after us; remove by ID.
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// Submit parses a BLIF circuit and enqueues it as a job — or, when the
// result cache already holds the outcome for a structurally identical
// circuit under the same options, returns a job that is complete on
// arrival without touching the worker pool. It returns ErrDraining
// while the service drains and ErrQueueFull when the bounded queue has
// no room (the HTTP layer maps these to 503 and 429).
func (s *Service) Submit(body []byte, opts JobOptions) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	sub, err := s.parseSubmission(body, opts)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = s.cfg.DefaultTimeout
	}
	// Cap the engine parallelism at the pool size before the cache key is
	// derived, so the effective value is what gets cached and displayed.
	if opts.Parallelism > s.pool.Workers() {
		opts.Parallelism = s.pool.Workers()
	}
	key := s.cacheKey(sub, opts)
	if key != "" && !opts.NoCache && s.cfg.Cache != nil {
		if e, ok := s.cfg.Cache.Get(key); ok {
			s.reg.Counter("service.jobs.submitted").Inc()
			return s.jobFromCache(e, opts, key), nil
		}
	}

	j := s.newJob(fmt.Sprintf("j%06d", s.seq.Add(1)), sub, opts, key)
	s.registerJob(j)
	// The submit record is journaled before the pool sees the job, so a
	// crash at any later point replays it as at-least queued.
	s.persistSubmit(j, body)

	if !s.pool.TrySubmitLabeled(j.poolLabel(), func() { s.runJob(j) }) {
		s.unregisterJob(j.id)
		s.persistCancelPurge(j.id)
		j.cancel()
		s.reg.Counter("service.jobs.rejected").Inc()
		return nil, ErrQueueFull
	}
	s.reg.Counter("service.jobs.submitted").Inc()
	j.hub.Emit(obs.Event{Time: time.Now(), Name: "job-queued", Fields: obs.Fields{
		"job":     j.id,
		"circuit": j.circuit,
	}})
	return j, nil
}

// Job returns the job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobsSnapshot returns every job's status in submission order.
func (s *Service) JobsSnapshot() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel cancels the job by ID: a queued job finishes immediately as
// cancelled, a running one is interrupted through its context. The
// second return is false when the job does not exist; the first is
// false when it had already finished.
func (s *Service) Cancel(id string) (cancelled, found bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	if !j.requestCancel() {
		return false, true
	}
	// A job still queued finishes right here; the worker skips it when
	// it eventually pops. A running job is finished by its worker.
	if j.transition(StateQueued, StateCancelled) {
		// The job never ran: purge its journal entry instead of writing a
		// terminal record, so a restart does not resurrect abandoned work.
		s.persistCancelPurge(j.id)
		s.finishStats(j, StateCancelled)
		j.hub.Emit(obs.Event{Time: time.Now(), Name: "job-finished", Fields: obs.Fields{
			"job": j.id, "state": string(StateCancelled), "queued_only": true,
		}})
		j.hub.Close()
	}
	return true, true
}

// Draining reports whether the service is refusing new submissions.
func (s *Service) Draining() bool { return s.draining.Load() }

// BeginDrain makes every further Submit fail with ErrDraining; queued
// and running jobs keep going.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Drain gracefully shuts the service down: new submissions are
// rejected, queued and in-flight jobs run to completion. If ctx expires
// first, the remaining jobs are cancelled (they finish as "cancelled"
// with their best result so far) and Drain returns ctx's error after
// they unwind.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel() // interrupt in-flight optimizations
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: in-flight jobs are interrupted and the
// pool is drained.
func (s *Service) Close() {
	s.BeginDrain()
	s.rootCancel()
	s.pool.Close()
}

// runJob is the worker body: it executes one job end to end with panic
// isolation (a panic fails the job, never the worker).
func (s *Service) runJob(j *Job) {
	if j.cancelRequested() || j.ctx.Err() != nil {
		// Cancelled while queued; Cancel usually finishes the job, this
		// covers the root-context (forced shutdown) path.
		if j.transition(StateQueued, StateCancelled) {
			s.finishJob(j, StateCancelled, nil, nil)
		}
		return
	}
	if !j.transition(StateQueued, StateRunning) {
		return // finished elsewhere (queued cancellation won the race)
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.persistStart(j)
	j.queueSpan.End()
	// The run span brackets the worker's part of the job; the engine's
	// "optimize" span nests under it through the context.
	rctx, runSpan := trace.StartSpan(j.traceCtx(), "run")
	j.hub.Emit(obs.Event{Time: time.Now(), Name: "job-started", Fields: obs.Fields{
		"job": j.id, "circuit": j.circuit,
	}})

	defer func() {
		if r := recover(); r != nil {
			runSpan.SetAttr("panic", fmt.Sprint(r))
			runSpan.End()
			s.finishJob(j, StateFailed, nil, fmt.Errorf("panic: %v", r))
		}
	}()

	if s.testBeforeRun != nil {
		s.testBeforeRun(j.ctx, j)
	}

	res, err := s.optimize(rctx, j)
	to := StateCompleted
	switch {
	case err != nil:
		to = StateFailed
	case res.Stopped == core.StopCancelled:
		to = StateCancelled
	}
	runSpan.SetAttr("state", string(to))
	runSpan.End()
	// Fill the cache before the terminal state becomes visible: a client
	// that polls the job to completion and immediately resubmits the
	// same circuit must hit the entry, not race past the fill.
	if res != nil {
		s.maybeCacheResult(j, to, res.StoppedEarly())
	}
	s.finishJob(j, to, res, err)
}

// optimize runs the engine and, when requested, the SAT equivalence
// re-verification; it also renders the optimized netlist to BLIF. ctx
// carries the job's cancellation and, for traced jobs, its span context.
func (s *Service) optimize(ctx context.Context, j *Job) (*core.Result, error) {
	opts := core.Options{
		Timeout:          j.opts.Timeout,
		MaxSubstitutions: j.opts.MaxSubstitutions,
		Parallelism:      j.opts.Parallelism,
		Power:            power.Options{Words: s.cfg.PowerWords, Seed: s.cfg.PowerSeed},
		Transform:        transform.Config{AllowInverted: true},
		Activity:         j.activityLabel,
		Obs:              obs.New(j.hub, s.reg),
		Progress:         j.setProgress,
	}
	if j.opts.DelayLimitPct >= 0 {
		opts.DelayFactor = 1 + j.opts.DelayLimitPct/100
	}

	var res *core.Result
	var fp *seq.FixpointResult
	var err error
	if j.circ.Model.Sequential() {
		// Sequential jobs run at the register cut: the fixpoint seeds the
		// power model, the core engine sees the cut as a combinational
		// circuit with the next-state cones anchored as outputs.
		sopts := seq.Options{
			Core:     opts,
			Fixpoint: seq.FixpointOptions{InputProbs: j.inputProbs},
		}
		if j.binding != nil {
			sopts.Activity = &seq.ActivityOverride{
				Probs:   j.binding.Probs,
				Toggles: j.binding.Toggles,
				Matched: j.binding.Matched,
			}
		}
		var sres *seq.Result
		sres, err = seq.OptimizeCtx(ctx, j.circ, sopts)
		if sres != nil {
			fp = sres.Fixpoint
			res = sres.Core
		}
	} else {
		if j.inputProbs != nil {
			opts.Power.InputProbs = j.inputProbs
		}
		if j.binding != nil {
			opts.Power.InputProbs = j.binding.Probs
			opts.Power.InputToggles = j.binding.Toggles
		}
		res, err = core.OptimizeCtx(ctx, j.nl, opts)
	}
	if res != nil && res.Ledger != nil {
		// Publish the ledger even for failed or cancelled runs: partial
		// provenance is exactly what a post-mortem needs.
		j.mu.Lock()
		j.ledger = res.Ledger
		j.mu.Unlock()
	}
	if err != nil {
		return res, err
	}

	verified := ""
	if j.opts.Verify && res.Stopped != core.StopCancelled {
		// Verification is not cancellable by the job context on purpose:
		// it certifies the result we are about to publish.
		eq, eqErr := atpg.Equivalent(j.original, j.nl, 0)
		if eqErr != nil {
			return res, fmt.Errorf("verify: %v", eqErr)
		}
		switch eq.Verdict {
		case atpg.Permissible:
			verified = "equivalent"
		case atpg.NotPermissible:
			return res, fmt.Errorf("verify: optimized circuit differs on output %q", eq.DifferingOutput)
		default:
			verified = "inconclusive"
		}
	}

	var buf bytes.Buffer
	if werr := blif.WriteModel(&buf, j.circ.Model); werr != nil {
		return res, fmt.Errorf("render result: %v", werr)
	}
	jr := resultJSON(res, verified)
	if fp != nil {
		jr.Latches = j.circ.NumLatches()
		jr.FixpointIterations = fp.Iterations
		jr.FixpointResidual = fp.Residual
	}
	if j.binding != nil {
		jr.Activity = j.activityLabel
		jr.ActivityMatched = j.binding.MatchedCount
		jr.ActivityInputs = len(j.binding.Names)
	}
	j.mu.Lock()
	j.resultBLIF = buf.Bytes()
	j.result = jr
	j.mu.Unlock()
	return res, nil
}

// finishJob moves a running job to its terminal state and publishes the
// closing event.
func (s *Service) finishJob(j *Job, to State, res *core.Result, err error) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.state = to
		j.finishedAt = time.Now()
		if err != nil {
			j.errMsg = err.Error()
		}
		if res != nil && j.result == nil {
			j.result = resultJSON(res, "")
		}
	}
	j.mu.Unlock()
	s.persistFinish(j)
	s.finishStats(j, to)
	// Close out the trace before the hub: the queue span is still open
	// when a queued job is cancelled, and the job root span always is.
	j.queueSpan.End()
	if j.jobSpan != nil {
		j.jobSpan.SetAttr("state", string(to))
		j.jobSpan.End()
	}
	f := obs.Fields{"job": j.id, "state": string(to)}
	if res != nil {
		f["applied"] = res.Applied
		f["stopped"] = string(res.Stopped)
		f["reduction_pct"] = res.PowerReductionPct()
	}
	if err != nil {
		f["error"] = err.Error()
	}
	j.hub.Emit(obs.Event{Time: time.Now(), Name: "job-finished", Fields: f})
	j.hub.Close()
}

// finishStats updates the terminal-state counters and latency
// histogram.
func (s *Service) finishStats(j *Job, to State) {
	s.reg.Counter("service.jobs." + string(to)).Inc()
	st := j.Status()
	if st.FinishedAt != nil {
		s.reg.Histogram("service.job.seconds").Observe(st.FinishedAt.Sub(st.SubmittedAt).Seconds())
	}
}

// resultJSON converts an engine result into the API shape.
func resultJSON(res *core.Result, verified string) *JobResult {
	return &JobResult{
		InitialPower:   res.Initial.Power,
		FinalPower:     res.Final.Power,
		ReductionPct:   res.PowerReductionPct(),
		InitialArea:    res.Initial.Area,
		FinalArea:      res.Final.Area,
		InitialDelay:   res.InitialDelay,
		FinalDelay:     res.FinalDelay,
		Gates:          res.Final.Gates,
		Applied:        res.Applied,
		Stopped:        string(res.Stopped),
		Verified:       verified,
		RuntimeSeconds: res.Runtime.Seconds(),
		Rejects:        res.Rejects,
	}
}

// Sentinel errors of Submit, mapped to HTTP status codes by the
// handlers.
var (
	// ErrQueueFull reports a full job queue (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a draining service (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// ParseError wraps a BLIF parse failure (HTTP 400).
type ParseError struct{ Err error }

func (e *ParseError) Error() string { return e.Err.Error() }
func (e *ParseError) Unwrap() error { return e.Err }

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int { return s.pool.QueueDepth() }

// InFlight returns the number of jobs currently being optimized.
func (s *Service) InFlight() int64 { return s.inflight.Load() }

package service

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"strings"
	"testing"
	"time"

	"powder/internal/activity"
	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/obs"
	"powder/internal/store"
)

// dumpsFor renders a VCD and a SAIF of the same simulated workload for
// a committed example circuit; the two dumps describe identical
// statistics and therefore share one activity digest.
func dumpsFor(t *testing.T, name string, seed int64) (vcd, saif []byte) {
	t.Helper()
	model, err := blif.ReadModel(bytes.NewReader(circuitBLIF(t, name)), cellib.Lib2())
	if err != nil {
		t.Fatal(err)
	}
	opts := activity.DumpOptions{Words: 4, Seed: seed}
	var vb, sb bytes.Buffer
	if _, err := activity.DumpVCD(&vb, model.Netlist, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := activity.DumpSAIF(&sb, model.Netlist, opts); err != nil {
		t.Fatal(err)
	}
	return vb.Bytes(), sb.Bytes()
}

// submitMultipart POSTs a multipart submission with the given named
// parts and decodes the response like submit does.
func submitMultipart(t *testing.T, base, query string, parts map[string][]byte) (Status, *http.Response) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	// Deterministic order keeps failures reproducible.
	for _, name := range []string{"circuit", "activity", "bogus"} {
		data, ok := parts[name]
		if !ok {
			continue
		}
		fw, err := mw.CreateFormFile(name, name+".dat")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs"+query, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return st, resp
}

// TestActivityUploadRoundTrip submits a circuit together with a VCD
// workload dump and checks the job reports the activity model it ran
// under: the result carries the digest-bearing label and full input
// coverage, and the ledger is stamped with the same label.
func TestActivityUploadRoundTrip(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2, QueueDepth: 8}, nil)
	vcd, _ := dumpsFor(t, "maj3", 7)

	st, resp := submitMultipart(t, ts.URL, "", map[string][]byte{
		"circuit":  circuitBLIF(t, "maj3"),
		"activity": vcd,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts.URL, st.ID)
	if fin.State != StateCompleted {
		t.Fatalf("job state %s (error %q)", fin.State, fin.Error)
	}
	res := fin.Result
	if res == nil {
		t.Fatal("finished job has no result")
	}
	if !strings.Contains(res.Activity, "sha256:") {
		t.Fatalf("result activity label %q carries no digest", res.Activity)
	}
	if res.ActivityInputs != 3 || res.ActivityMatched != 3 {
		t.Fatalf("activity coverage %d/%d, want 3/3 for maj3", res.ActivityMatched, res.ActivityInputs)
	}

	lresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("ledger: HTTP %d", lresp.StatusCode)
	}
	var led obs.LedgerSummary
	if err := json.NewDecoder(lresp.Body).Decode(&led); err != nil {
		t.Fatal(err)
	}
	if led.Activity != res.Activity {
		t.Fatalf("ledger activity %q != result activity %q", led.Activity, res.Activity)
	}
}

// TestActivityCacheKeyedOnDigest checks the result cache keys on the
// activity profile's content digest: a SAIF rendering of the same
// workload hits the entry filled by the VCD submission, while a dump
// with different statistics — or no dump at all — misses.
func TestActivityCacheKeyedOnDigest(t *testing.T) {
	reg := obs.NewRegistry()
	cache := openTestCache(t, "", 16, reg)
	_, ts := newTestService(t, Config{Workers: 2, QueueDepth: 8, Registry: reg, Cache: cache}, nil)
	body := circuitBLIF(t, "maj3")
	vcdA, saifA := dumpsFor(t, "maj3", 7)
	vcdB, _ := dumpsFor(t, "maj3", 8) // different workload, different digest

	st1, resp := submitMultipart(t, ts.URL, "", map[string][]byte{"circuit": body, "activity": vcdA})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	fin1 := waitTerminal(t, ts.URL, st1.ID)
	if fin1.State != StateCompleted || fin1.Cached {
		t.Fatalf("first job: state %s cached %t", fin1.State, fin1.Cached)
	}

	// Same workload as SAIF: the digest is format-independent, so this
	// is a hit even though the uploaded bytes differ completely.
	st2, _ := submitMultipart(t, ts.URL, "", map[string][]byte{"circuit": body, "activity": saifA})
	if st2.State != StateCompleted || !st2.Cached {
		t.Fatalf("SAIF twin: state %s cached %t, want a cache hit", st2.State, st2.Cached)
	}

	// A different workload misses.
	st3, _ := submitMultipart(t, ts.URL, "", map[string][]byte{"circuit": body, "activity": vcdB})
	if st3.Cached {
		t.Fatal("differing workload dump hit the cache")
	}
	fin3 := waitTerminal(t, ts.URL, st3.ID)
	if fin3.State != StateCompleted {
		t.Fatalf("third job: state %s (error %q)", fin3.State, fin3.Error)
	}

	// No dump at all misses too: uniform and workload runs must never
	// alias.
	st4, _ := submit(t, ts.URL, "", body)
	if st4.Cached {
		t.Fatal("uniform submission hit a workload-keyed entry")
	}
}

// TestActivitySubmitRejects covers the 400 paths of the multipart
// submission: probs+activity together, an unknown part name, and a dump
// that parses as neither VCD nor SAIF.
func TestActivitySubmitRejects(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4}, nil)
	body := circuitBLIF(t, "maj3")
	vcd, _ := dumpsFor(t, "maj3", 7)

	if _, resp := submitMultipart(t, ts.URL, "?probs=a%3D0.9", map[string][]byte{
		"circuit": body, "activity": vcd,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("probs+activity: HTTP %d, want 400", resp.StatusCode)
	}
	if _, resp := submitMultipart(t, ts.URL, "", map[string][]byte{
		"circuit": body, "bogus": []byte("x"),
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown part: HTTP %d, want 400", resp.StatusCode)
	}
	if _, resp := submitMultipart(t, ts.URL, "", map[string][]byte{
		"circuit": body, "activity": []byte("not a dump"),
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed dump: HTTP %d, want 400", resp.StatusCode)
	}
	// A dump from a different design (no signal matches any input) must
	// be rejected, not silently run under the uniform assumption.
	wrong := []byte("$var wire 1 ! zz9 $end\n$enddefinitions $end\n#0\n0!\n#1\n1!\n")
	if _, resp := submitMultipart(t, ts.URL, "", map[string][]byte{
		"circuit": body, "activity": wrong,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-match dump: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestActivityRestoreRequeue replays a store holding an interrupted
// activity job and checks the re-run still sees the persisted workload:
// the journal carries the dump bytes outside the options JSON, and the
// recovered result reports the same coverage a fresh run would.
func TestActivityRestoreRequeue(t *testing.T) {
	dir := t.TempDir()
	vcd, _ := dumpsFor(t, "maj3", 7)
	seed := openTestStore(t, dir, obs.NewRegistry())
	ob, _ := json.Marshal(JobOptions{DelayLimitPct: -1})
	seed.AppendSubmit(store.JobRecord{
		ID: "j000042", State: store.StateQueued, Circuit: "maj3",
		Options: ob, Input: circuitBLIF(t, "maj3"), Activity: vcd,
		SubmittedAt: time.Now(),
	})
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st := openTestStore(t, dir, reg)
	svc := New(Config{Workers: 2, QueueDepth: 8, Registry: reg, Store: st})
	defer func() { svc.Close(); st.Close() }()
	if requeued, served := svc.Restore(); requeued != 1 || served != 0 {
		t.Fatalf("Restore = (%d requeued, %d served), want (1, 0)", requeued, served)
	}
	j, ok := svc.Job("j000042")
	if !ok {
		t.Fatal("requeued job not registered under its original ID")
	}
	deadline := time.Now().Add(60 * time.Second)
	for !j.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("requeued job never finished (state %s)", j.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fin := j.Status()
	if fin.State != StateCompleted {
		t.Fatalf("requeued job state %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.ActivityMatched != 3 {
		t.Fatalf("requeued run lost its workload: result %+v", fin.Result)
	}
}

package service

import (
	"bytes"
	"net/http"
	"net/url"
	"testing"

	"powder/internal/blif"
	"powder/internal/cellib"
)

// TestServiceSequentialJob submits a latch circuit end to end: the job
// must report the register cut and its fixpoint, and the returned BLIF
// must round-trip — parse with its latches intact and resubmit cleanly.
func TestServiceSequentialJob(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2, PowerWords: 16}, nil)
	body := circuitBLIF(t, "counter3")

	st, resp := submit(t, ts.URL, "?verify=true", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if st.Circuit != "counter3" {
		t.Errorf("circuit = %q", st.Circuit)
	}
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != StateCompleted {
		t.Fatalf("state = %s (error %q)", final.State, final.Error)
	}
	r := final.Result
	if r == nil {
		t.Fatal("no result")
	}
	if r.Latches != 3 {
		t.Errorf("latches = %d, want 3", r.Latches)
	}
	if r.FixpointIterations == 0 || r.FixpointResidual > 1e-6 {
		t.Errorf("fixpoint = %d iters, residual %g", r.FixpointIterations, r.FixpointResidual)
	}
	if r.FinalPower > r.InitialPower {
		t.Errorf("power increased %.4f -> %.4f", r.InitialPower, r.FinalPower)
	}
	if r.Verified != "equivalent" {
		t.Errorf("verified = %q", r.Verified)
	}

	// The result must be valid sequential BLIF with the latches stitched
	// back...
	hr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result.blif")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(hr.Body); err != nil {
		t.Fatal(err)
	}
	m, err := blif.ReadModel(bytes.NewReader(out.Bytes()), cellib.Lib2())
	if err != nil {
		t.Fatalf("result BLIF unreadable: %v", err)
	}
	if len(m.Latches) != 3 {
		t.Errorf("result has %d latches, want 3", len(m.Latches))
	}

	// ...and good enough to feed straight back into the service.
	st2, resp2 := submit(t, ts.URL, "", out.Bytes())
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", resp2.StatusCode)
	}
	if again := waitTerminal(t, ts.URL, st2.ID); again.State != StateCompleted {
		t.Fatalf("resubmitted job: state = %s (error %q)", again.State, again.Error)
	}
}

// TestServiceProbsOption covers the probs query parameter: a biased
// input distribution is accepted for sequential and combinational
// circuits alike, and malformed lists are 400s naming the bad entry.
func TestServiceProbsOption(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, PowerWords: 16}, nil)
	seqBody := circuitBLIF(t, "counter3")
	combBody := circuitBLIF(t, "fig2")

	st, resp := submit(t, ts.URL, "?probs="+url.QueryEscape("en=0.25"), seqBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sequential probs submit: HTTP %d", resp.StatusCode)
	}
	if final := waitTerminal(t, ts.URL, st.ID); final.State != StateCompleted {
		t.Fatalf("state = %s (error %q)", final.State, final.Error)
	}

	st, resp = submit(t, ts.URL, "?probs="+url.QueryEscape("a=0.9,b=0.1,c=0.5"), combBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("combinational probs submit: HTTP %d", resp.StatusCode)
	}
	if final := waitTerminal(t, ts.URL, st.ID); final.State != StateCompleted {
		t.Fatalf("state = %s (error %q)", final.State, final.Error)
	}

	bad := map[string]string{
		"out of range": "en=1.5",
		"not a number": "en=lots",
		"unknown name": "en=0.5,bogus=0.5",
		"state line":   "q0=0.5",
	}
	for name, probs := range bad {
		_, resp := submit(t, ts.URL, "?probs="+url.QueryEscape(probs), seqBody)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestServiceSequentialParseErrors pins the submission contract for bad
// latch constructs: a 400 up front, not an asynchronous job failure.
func TestServiceSequentialParseErrors(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1, PowerWords: 16}, nil)
	cases := map[string]string{
		"level-sensitive": ".model m\n.inputs a\n.outputs q\n.latch a q ah clk 0\n.end\n",
		"bad init":        ".model m\n.inputs a\n.outputs q\n.latch a q re clk 9\n.end\n",
		"undriven input":  ".model m\n.inputs a\n.outputs q\n.latch n0 q re clk 0\n.end\n",
	}
	for name, src := range cases {
		_, resp := submit(t, ts.URL, "", []byte(src))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}

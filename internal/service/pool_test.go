package service

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4, 8)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolTrySubmitBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() { close(started); <-release }) // occupies the worker
	<-started
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue slot should accept one task")
	}
	var overflow func() = func() {}
	if p.TrySubmit(overflow) {
		t.Fatal("full queue accepted a task")
	}
	if p.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1", p.QueueDepth())
	}
	close(release)
	p.Close()
	if !p.closedForTest() {
		t.Fatal("pool should be closed")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("closed pool accepted a task")
	}
}

func TestPoolRecoverPanicKeepsWorkerAlive(t *testing.T) {
	p := NewPool(1, 4)
	var after atomic.Bool
	p.Submit(func() { panic("boom") })
	p.Submit(func() { after.Store(true) })
	p.Close()
	if !after.Load() {
		t.Fatal("task after a panicking task did not run")
	}
	if p.Panics() != 1 {
		t.Fatalf("Panics() = %d, want 1", p.Panics())
	}
}

func TestPoolCloseIdempotentAndConcurrentWithTrySubmit(t *testing.T) {
	p := NewPool(2, 2)
	var wg sync.WaitGroup
	stopSubmitting := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopSubmitting:
				return
			default:
				p.TrySubmit(func() {})
			}
		}
	}()
	p.Close()
	p.Close()
	close(stopSubmitting)
	wg.Wait()
}

// closedForTest exposes the close flag without widening the API.
func (p *Pool) closedForTest() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"powder/internal/obs"
	"powder/internal/store"
)

// openTestStore opens a Store rooted in dir with the given registry and
// fails the test on error.
func openTestStore(t *testing.T, dir string, reg *obs.Registry) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// openTestCache opens a Cache rooted in dir (or memory-only for "").
func openTestCache(t *testing.T, dir string, max int, reg *obs.Registry) *store.Cache {
	t.Helper()
	c, err := store.OpenCache(dir, max, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheHitServedWithoutDispatch is the cache acceptance criterion:
// resubmitting an identical netlist under identical options is answered
// from the cache — the job is terminal on arrival, the result BLIF is
// byte-identical, and the hit is visible on the cache metrics without a
// second pool dispatch.
func TestCacheHitServedWithoutDispatch(t *testing.T) {
	reg := obs.NewRegistry()
	cache := openTestCache(t, "", 16, reg)
	svc, ts := newTestService(t, Config{Workers: 2, QueueDepth: 8, Registry: reg, Cache: cache}, nil)

	body := circuitBLIF(t, "fig2")
	st1, resp := submit(t, ts.URL, "", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	fin1 := waitTerminal(t, ts.URL, st1.ID)
	if fin1.State != StateCompleted {
		t.Fatalf("first job: state %s (error %q)", fin1.State, fin1.Error)
	}
	if fin1.Cached {
		t.Fatal("first job claims to be cached")
	}
	j1, _ := svc.Job(st1.ID)
	blif1 := j1.ResultBLIF()
	if len(blif1) == 0 {
		t.Fatal("first job has no result BLIF")
	}

	// Same bytes, same options: must be a hit, complete on arrival.
	st2, resp := submit(t, ts.URL, "", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}
	if st2.State != StateCompleted || !st2.Cached {
		t.Fatalf("second job: state %s cached %t, want completed from cache", st2.State, st2.Cached)
	}
	j2, _ := svc.Job(st2.ID)
	if !bytes.Equal(j2.ResultBLIF(), blif1) {
		t.Fatal("cached result BLIF differs from the original run")
	}
	if got := reg.Counter("store.cache.hits").Value(); got != 1 {
		t.Fatalf("store.cache.hits = %d, want 1", got)
	}
	if got := reg.Counter("service.jobs.cached").Value(); got != 1 {
		t.Fatalf("service.jobs.cached = %d, want 1", got)
	}

	// A structurally identical circuit with *different* internal gate
	// names must also hit: the key is the structural hash, not the text.
	// fig2's only internal net is d (always written as "=d").
	renamed := bytes.ReplaceAll(body, []byte("=d"), []byte("=zz_renamed"))
	st3, _ := submit(t, ts.URL, "", renamed)
	if !st3.Cached {
		t.Fatalf("renamed-internals submission missed the cache (state %s)", st3.State)
	}

	// Different options (delay limit) must miss.
	st4, _ := submit(t, ts.URL, "?delay-limit=0", body)
	if st4.Cached {
		t.Fatal("submission with different options hit the cache")
	}
	waitTerminal(t, ts.URL, st4.ID)
}

// TestNoCacheBypassesHitAndFill covers the ?no-cache escape hatch: a
// bypassed submission is neither served from the cache nor published
// into it.
func TestNoCacheBypassesHitAndFill(t *testing.T) {
	reg := obs.NewRegistry()
	cache := openTestCache(t, "", 16, reg)
	_, ts := newTestService(t, Config{Workers: 2, QueueDepth: 8, Registry: reg, Cache: cache}, nil)

	body := circuitBLIF(t, "fig2")
	st1, _ := submit(t, ts.URL, "?no-cache=1", body)
	if st1.Cached {
		t.Fatal("no-cache submission served from cache")
	}
	waitTerminal(t, ts.URL, st1.ID)
	if cache.Len() != 0 {
		t.Fatalf("no-cache run populated the cache (%d entries)", cache.Len())
	}

	// Fill the cache with a normal run, then verify no-cache still runs.
	st2, _ := submit(t, ts.URL, "", body)
	waitTerminal(t, ts.URL, st2.ID)
	st3, _ := submit(t, ts.URL, "?no-cache=1", body)
	if st3.Cached {
		t.Fatal("no-cache submission hit the warm cache")
	}
	waitTerminal(t, ts.URL, st3.ID)
}

// TestRestoreServesCompletedJobs restarts the service over the same
// store directory and checks that a finished job survives with its ID,
// state, result, and byte-identical BLIF — and that the restored record
// re-warms the result cache.
func TestRestoreServesCompletedJobs(t *testing.T) {
	dir := t.TempDir()

	reg1 := obs.NewRegistry()
	st1 := openTestStore(t, dir, reg1)
	cache1 := openTestCache(t, "", 16, reg1)
	svc1 := New(Config{Workers: 2, QueueDepth: 8, Registry: reg1, Store: st1, Cache: cache1})
	j, err := svc1.Submit(circuitBLIF(t, "fig2"), JobOptions{DelayLimitPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !j.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	id := j.ID()
	want := append([]byte(nil), j.ResultBLIF()...)
	wantResult := j.Status().Result
	svc1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	st2 := openTestStore(t, dir, reg2)
	cache2 := openTestCache(t, "", 16, reg2)
	svc2 := New(Config{Workers: 2, QueueDepth: 8, Registry: reg2, Store: st2, Cache: cache2})
	defer func() { svc2.Close(); st2.Close() }()
	requeued, served := svc2.Restore()
	if requeued != 0 || served != 1 {
		t.Fatalf("Restore = (%d requeued, %d served), want (0, 1)", requeued, served)
	}
	rj, ok := svc2.Job(id)
	if !ok {
		t.Fatalf("job %s not restored", id)
	}
	rst := rj.Status()
	if rst.State != StateCompleted {
		t.Fatalf("restored job state %s, want completed", rst.State)
	}
	if !bytes.Equal(rj.ResultBLIF(), want) {
		t.Fatal("restored result BLIF differs from the pre-restart bytes")
	}
	if rst.Result == nil || wantResult == nil || rst.Result.FinalPower != wantResult.FinalPower {
		t.Fatalf("restored result %+v, want %+v", rst.Result, wantResult)
	}
	// The restored record re-warmed the fresh cache: a duplicate
	// submission is a hit even though this process never ran the job.
	dup, err := svc2.Submit(circuitBLIF(t, "fig2"), JobOptions{DelayLimitPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Status().Cached {
		t.Fatal("duplicate submission after restore missed the re-warmed cache")
	}
}

// TestRestoreRequeuesInterruptedJob replays a store holding a job that
// was still queued at "crash" time and checks the restarted service
// runs it to completion under its original ID.
func TestRestoreRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	seed := openTestStore(t, dir, obs.NewRegistry())
	ob, _ := json.Marshal(JobOptions{DelayLimitPct: -1})
	seed.AppendSubmit(store.JobRecord{
		ID: "j000042", State: store.StateQueued, Circuit: "fig2",
		Options: ob, Input: circuitBLIF(t, "fig2"), SubmittedAt: time.Now(),
	})
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st := openTestStore(t, dir, reg)
	svc := New(Config{Workers: 2, QueueDepth: 8, Registry: reg, Store: st})
	defer func() { svc.Close(); st.Close() }()
	requeued, served := svc.Restore()
	if requeued != 1 || served != 0 {
		t.Fatalf("Restore = (%d requeued, %d served), want (1, 0)", requeued, served)
	}
	j, ok := svc.Job("j000042")
	if !ok {
		t.Fatal("requeued job not registered under its original ID")
	}
	deadline := time.Now().Add(60 * time.Second)
	for !j.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("requeued job never finished (state %s)", j.Status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st2 := j.Status(); st2.State != StateCompleted {
		t.Fatalf("requeued job state %s (error %q)", st2.State, st2.Error)
	}
	// The ID sequence resumed past the recovered ID: a fresh submission
	// must not collide with j000042.
	nj, err := svc.Submit(circuitBLIF(t, "maj3"), JobOptions{DelayLimitPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if nj.ID() <= "j000042" {
		t.Fatalf("fresh job ID %s did not resume past the recovered sequence", nj.ID())
	}
}

// TestCancelQueuedPurgesStore is the cancel-purge regression test: a
// DELETE on a still-queued job removes its journal entry, so a restart
// does not resurrect the cancelled work.
func TestCancelQueuedPurgesStore(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st := openTestStore(t, dir, reg)

	release := make(chan struct{})
	svc := New(Config{Workers: 1, QueueDepth: 8, Registry: reg, Store: st})
	svc.testBeforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	blocker, err := svc.Submit(circuitBLIF(t, "fig2"), JobOptions{DelayLimitPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := svc.Submit(circuitBLIF(t, "maj3"), JobOptions{DelayLimitPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The single worker is pinned on the blocker, so the victim is
	// provably still queued when the cancel lands.
	cancelled, found := svc.Cancel(victim.ID())
	if !cancelled || !found {
		t.Fatalf("Cancel(%s) = (%t, %t)", victim.ID(), cancelled, found)
	}
	close(release)
	deadline := time.Now().Add(60 * time.Second)
	for !blocker.Status().State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("blocker never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, obs.NewRegistry())
	defer st2.Close()
	for _, rec := range st2.Jobs() {
		if rec.ID == victim.ID() {
			t.Fatalf("cancelled queued job %s survived in the store (state %s)", rec.ID, rec.State)
		}
	}
	var foundBlocker bool
	for _, rec := range st2.Jobs() {
		if rec.ID == blocker.ID() && rec.State == store.StateCompleted {
			foundBlocker = true
		}
	}
	if !foundBlocker {
		t.Fatal("completed blocker missing from the store after reopen")
	}
}

// TestQueuedCancelRace races a DELETE against the pool dequeuing the
// same job, repeatedly; run under -race this covers the
// queued -> cancelled transition window. Whichever side wins, the job
// must end exactly cancelled and the service must stay consistent.
func TestQueuedCancelRace(t *testing.T) {
	release := make(chan struct{})
	svc := New(Config{Workers: 1, QueueDepth: 8})
	svc.testBeforeRun = func(ctx context.Context, j *Job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	defer svc.Close()

	body := circuitBLIF(t, "fig2")
	for i := 0; i < 25; i++ {
		blocker, err := svc.Submit(body, JobOptions{DelayLimitPct: -1})
		if err != nil {
			t.Fatal(err)
		}
		victim, err := svc.Submit(body, JobOptions{DelayLimitPct: -1})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Unpin the worker: it finishes the blocker and dequeues the
			// victim, racing the concurrent cancel below.
			release <- struct{}{}
		}()
		go func() {
			defer wg.Done()
			if _, found := svc.Cancel(victim.ID()); !found {
				t.Errorf("iter %d: victim %s not found", i, victim.ID())
			}
		}()
		wg.Wait()
		deadline := time.Now().Add(60 * time.Second)
		for !victim.Status().State.Terminal() || !blocker.Status().State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("iter %d: jobs never settled (victim %s, blocker %s)",
					i, victim.Status().State, blocker.Status().State)
			}
			time.Sleep(time.Millisecond)
		}
		if st := victim.Status().State; st != StateCancelled {
			t.Fatalf("iter %d: victim state %s, want cancelled", i, st)
		}
		if st := blocker.Status().State; st != StateCompleted {
			t.Fatalf("iter %d: blocker state %s, want completed", i, st)
		}
	}
}

// TestRetryAfterSeconds pins the queue-depth-derived Retry-After hint
// with a deterministic jitter source.
func TestRetryAfterSeconds(t *testing.T) {
	noJitter := func(int) int { return 0 }
	maxJitter := func(n int) int { return n - 1 }
	cases := []struct {
		depth, workers int
		intn           func(int) int
		want           int
	}{
		{0, 4, noJitter, 1},       // empty queue: retry in a second
		{0, 4, maxJitter, 1},      // jitter bounded by base
		{8, 4, noJitter, 3},       // 1 + 8/4
		{8, 4, maxJitter, 5},      // 3 + 2
		{1000, 4, noJitter, 30},   // base capped at 30
		{1000, 4, maxJitter, 59},  // 30 + 29
		{1000, 0, noJitter, 30},   // workers clamped to 1
		{10, 1, noJitter, 11},     // backlog-per-worker scales
		{10000, 1, maxJitter, 59}, // overall cap below 60
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.workers, c.intn); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %d, want %d", c.depth, c.workers, got, c.want)
		}
	}
	// The real jitter source must stay within [1, 60] everywhere.
	for depth := 0; depth < 500; depth += 7 {
		got := retryAfterSeconds(depth, 3, func(n int) int { return n / 2 })
		if got < 1 || got > 60 {
			t.Fatalf("retryAfterSeconds(%d, 3) = %d out of [1, 60]", depth, got)
		}
	}
}

// TestQueueFullRetryAfterHeader checks the 429 response carries a
// positive integer Retry-After derived at rejection time.
func TestQueueFullRetryAfterHeader(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	})

	body := circuitBLIF(t, "fig2")
	// One running (pinned), one queued: the queue is now full.
	if _, resp := submit(t, ts.URL, "", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts.URL, "", body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", resp.StatusCode)
	}
	_, resp := submit(t, ts.URL, "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	n, err := strconv.Atoi(ra)
	if err != nil || n < 1 || n > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
}

// Package service is POWDER's serving layer: a bounded worker pool, a
// job store with queueing and backpressure, and an HTTP API (the
// powderd daemon) that runs BLIF circuits through core.OptimizeCtx with
// streaming progress, cancellation, and graceful drain.
package service

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"powder/internal/obs"
)

// errPoolClosed reports a Submit after Close; surfaced as a panic since
// it is a caller bug, not a runtime condition.
const errPoolClosed = "service: Submit on closed Pool"

// task is one queued unit of work; the label names it (conventionally
// the job ID) for live introspection at /debug/status.
type task struct {
	label string
	fn    func()
}

// Pool is a fixed-size worker pool over a bounded task queue. It is the
// shared execution substrate of the serving layer: powderd runs jobs on
// it, and powbench -parallel reuses it to fan the benchmark suite out
// over cores.
//
// A task that panics does not kill its worker: the panic is recovered
// and counted (the daemon layers its own per-job recovery on top; the
// pool-level recover is the backstop that keeps the pool draining).
type Pool struct {
	mu      sync.RWMutex // serializes sends against Close
	tasks   chan task
	closed  bool
	wg      sync.WaitGroup
	workers int
	panics  atomic.Int64
	// current[i] holds worker i's running task label ("" when idle),
	// published for WorkerStatus.
	current []atomic.Value
}

// NewPool starts a pool of the given number of workers over a queue
// holding up to queue pending tasks (queue 0 means hand-off only:
// Submit blocks until a worker is free). workers <= 0 defaults to
// runtime.GOMAXPROCS(0).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan task, queue), workers: workers, current: make([]atomic.Value, workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		p.current[i].Store("")
		go p.work(i)
	}
	return p
}

func (p *Pool) work(i int) {
	defer p.wg.Done()
	for t := range p.tasks {
		p.current[i].Store(t.label)
		p.run(t.fn)
		p.current[i].Store("")
	}
}

func (p *Pool) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			// The recovered panic lands in the flight recorder so
			// /debug/flight explains what the pool survived.
			obs.Flight().Record("panic", "pool-task", obs.Fields{"panic": fmt.Sprint(r)})
		}
	}()
	fn()
}

// Submit enqueues a task, blocking while the queue is full. Submitting
// on a closed pool panics (a caller bug).
func (p *Pool) Submit(fn func()) {
	// The read lock lets submitters proceed concurrently while making a
	// concurrent Close (which takes the write lock) safe: the channel is
	// only closed when no send is in flight.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		panic(errPoolClosed)
	}
	p.tasks <- task{fn: fn}
}

// TrySubmit enqueues a task without blocking; it reports false when the
// queue is full or the pool is closed (the caller's backpressure
// signal).
func (p *Pool) TrySubmit(fn func()) bool {
	return p.TrySubmitLabeled("", fn)
}

// SubmitLabeled enqueues a labeled task, blocking while the queue is
// full; it reports false (without panicking) when the pool is closed.
// Recovery re-enqueues use it: a restored backlog may legitimately
// exceed the queue bound, and shutdown during recovery is not a bug.
func (p *Pool) SubmitLabeled(label string, fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.tasks <- task{label: label, fn: fn}
	return true
}

// TrySubmitLabeled is TrySubmit with a task label (conventionally the
// job ID) that WorkerStatus reports while the task runs.
func (p *Pool) TrySubmitLabeled(label string, fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- task{label: label, fn: fn}:
		return true
	default:
		return false
	}
}

// QueueDepth returns the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// WorkerStatus returns each worker's running task label, "" for an idle
// worker, indexed by worker.
func (p *Pool) WorkerStatus() []string {
	out := make([]string, len(p.current))
	for i := range p.current {
		out[i], _ = p.current[i].Load().(string)
	}
	return out
}

// Panics returns how many tasks panicked (and were recovered).
func (p *Pool) Panics() int64 { return p.panics.Load() }

// Close stops intake and blocks until every queued and running task has
// finished. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Package faultinject is a hook-based fault-injection harness for the
// POWDER optimization engine. It exists to prove — in ordinary tests,
// with no build tags — that the robustness machinery around
// core.Optimize actually fires: transactional rollback on a corrupted
// apply, budget escalation on forced checker aborts, and the last-good
// snapshot restore on an injected panic.
//
// The hooks are plain optional callbacks carried on core.Options; a nil
// Hooks (the production configuration) costs nothing. The package
// deliberately depends only on the netlist layer so every higher layer
// can consume it without cycles.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"

	"powder/internal/netlist"
)

// Hooks are the injection points the optimization engine consults. Any
// field may be nil; a nil hook never fires. The engine calls hooks from
// a single goroutine; hooks that keep state across calls (the
// constructors below) use atomics so tests may inspect them from other
// goroutines.
type Hooks struct {
	// CorruptApply, when non-nil, runs right after a substitution has
	// been applied, while the edit transaction is still open. It may
	// mutate the netlist through the editing primitives to emulate a
	// buggy transform; a non-nil error (or any detectable damage) must
	// make the engine roll the transaction back. The applied argument
	// counts previously committed substitutions.
	CorruptApply func(nl *netlist.Netlist, applied int) error

	// ForceAbort, when non-nil, is consulted after every permissibility
	// check; returning true overrides the verdict to Aborted (as if the
	// proof budget had run out), exercising the reject and budget-
	// escalation paths. check is the checker's running proof count.
	ForceAbort func(check int) bool

	// Panic, when non-nil, is consulted at the top of every apply
	// iteration; returning true makes the engine panic at a point
	// outside per-substitution containment, exercising the run-level
	// recover that restores the last verified snapshot.
	Panic func(applied int) bool
}

// InvertOutput corrupts the netlist by routing primary output po
// through a freshly inserted inverter — a guaranteed functional change
// on every input vector, so any signature- or proof-based re-validation
// must detect it. The corruption uses only journaled editing
// primitives, so an enclosing transaction can roll it back exactly.
func InvertOutput(nl *netlist.Netlist, po int) error {
	if po < 0 || po >= len(nl.Outputs()) {
		return fmt.Errorf("faultinject: no primary output %d", po)
	}
	inv := nl.Lib.Inverter()
	if inv == nil {
		return fmt.Errorf("faultinject: library has no inverter")
	}
	g, err := nl.AddGate("", inv, []netlist.NodeID{nl.Outputs()[po].Driver})
	if err != nil {
		return err
	}
	return nl.RedirectOutput(po, g)
}

// CorruptEveryApply returns a CorruptApply hook that inverts primary
// output po after every nth committed substitution (n <= 1 corrupts on
// every apply). The returned hook reports nil: the damage is meant to
// be caught by the engine's own re-validation, not self-reported.
func CorruptEveryApply(po, n int) func(*netlist.Netlist, int) error {
	if n < 1 {
		n = 1
	}
	return func(nl *netlist.Netlist, applied int) error {
		if applied%n != 0 {
			return nil
		}
		return InvertOutput(nl, po)
	}
}

// AbortFirstN returns a ForceAbort hook that overrides the first n
// verdicts to Aborted and then lets the checker decide normally.
func AbortFirstN(n int) func(int) bool {
	var fired atomic.Int64
	return func(int) bool {
		return fired.Add(1) <= int64(n)
	}
}

// PanicAfter returns a Panic hook that fires once, as soon as at least
// n substitutions have been committed.
func PanicAfter(n int) func(int) bool {
	var fired atomic.Bool
	return func(applied int) bool {
		if applied >= n && fired.CompareAndSwap(false, true) {
			return true
		}
		return false
	}
}

// ErrNoSpace is the injected write failure returned by FailWritesAfter:
// the moral equivalent of ENOSPC, without tying tests to a platform
// errno. The durability layer must react to it exactly as it would to
// the real thing — degrade to in-memory mode, never crash.
var ErrNoSpace = errors.New("faultinject: injected ENOSPC")

// FailWritesAfter returns a store.Hooks.AppendErr hook: the first n
// appends succeed, every later one fails with ErrNoSpace. Pass n = 0 to
// fail from the first append (a full disk at startup).
func FailWritesAfter(n int) func(string) error {
	var calls atomic.Int64
	return func(string) error {
		if calls.Add(1) > int64(n) {
			return ErrNoSpace
		}
		return nil
	}
}

// ShortWriteOnNth returns a store.Hooks.ShortWrite hook: append number n
// (1-based) is torn after keep bytes — the on-disk state a crash in the
// middle of a journal write leaves behind — while every other append
// goes through untouched.
func ShortWriteOnNth(n, keep int) func(string) int {
	var calls atomic.Int64
	return func(string) int {
		if calls.Add(1) == int64(n) {
			return keep
		}
		return -1
	}
}

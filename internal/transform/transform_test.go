package transform

import (
	"math"
	"math/rand"
	"testing"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/power"
	"powder/internal/sim"
	"powder/internal/sta"
)

// fig2 builds the paper's Figure 2 circuit A.
func fig2(t testing.TB) (*netlist.Netlist, map[string]netlist.NodeID) {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("fig2", lib)
	ids := make(map[string]netlist.NodeID)
	for _, in := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(in)
		if err != nil {
			t.Fatal(err)
		}
		ids[in] = id
	}
	mk := func(name, cell string, fanins ...netlist.NodeID) {
		id, err := nl.AddGate(name, nl.Lib.Cell(cell), fanins)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	mk("e", "and2", ids["a"], ids["b"])
	mk("d", "xor2", ids["a"], ids["c"])
	mk("f", "and2", ids["d"], ids["b"])
	if err := nl.AddOutput("f", ids["f"]); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("e", ids["e"]); err != nil {
		t.Fatal(err)
	}
	return nl, ids
}

func TestGenerateFindsPaperMove(t *testing.T) {
	nl, ids := fig2(t)
	pm := power.Estimate(nl, power.Options{})
	cands := Generate(nl, pm, Config{})
	found := false
	for _, s := range cands {
		if s.Kind == IS2 && s.G == ids["d"] && s.Pin == 0 && s.Src.B == ids["e"] && !s.Src.InvertB {
			found = true
		}
	}
	if !found {
		t.Fatalf("the paper's IS2 branch a->d <- e not among %d candidates", len(cands))
	}
}

func TestCandidatesAreAcyclicAndApplicable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		nl := randomNetlist(t, rng, 6, 14)
		pm := power.Estimate(nl, power.Options{})
		cands := Generate(nl, pm, Config{AllowInverted: true})
		for _, s := range cands {
			cp := nl.Clone()
			if _, err := Apply(cp, s); err != nil {
				t.Fatalf("trial %d: candidate %v not applicable: %v", trial, s, err)
			}
			if err := cp.Validate(); err != nil {
				t.Fatalf("trial %d: candidate %v broke the netlist: %v", trial, s, err)
			}
		}
	}
}

func TestGainPredictionIsExact(t *testing.T) {
	// With the fixed sample-vector set, PG_A + PG_B + PG_C must equal the
	// actual power difference exactly (this is the consistency property the
	// paper's incremental estimation relies on).
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 12; trial++ {
		nl := randomNetlist(t, rng, 6, 16)
		pm := power.Estimate(nl, power.Options{})
		an := NewAnalyzer(nl, pm)
		cands := Generate(nl, pm, Config{AllowInverted: true})
		for k, s := range cands {
			if k%7 != 0 { // sample; applying all is wasteful
				continue
			}
			cp := nl.Clone()
			pmCp := power.Estimate(cp, power.Options{})
			anCp := NewAnalyzer(cp, pmCp)
			sCp := *s
			anCp.AnalyzeAB(&sCp)
			anCp.AnalyzeC(&sCp)
			before := pmCp.Total()
			if _, err := Apply(cp, &sCp); err != nil {
				t.Fatalf("apply: %v", err)
			}
			pmCp.Resync()
			after := pmCp.Total()
			gotGain := before - after
			if math.Abs(gotGain-sCp.Gain()) > 1e-9 {
				t.Fatalf("trial %d cand %v: predicted gain %v, actual %v",
					trial, &sCp, sCp.Gain(), gotGain)
			}
			checked++
		}
		_ = an
	}
	if checked < 20 {
		t.Fatalf("too few gain checks: %d", checked)
	}
}

func TestAreaDeltaIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 8; trial++ {
		nl := randomNetlist(t, rng, 6, 16)
		pm := power.Estimate(nl, power.Options{})
		cands := Generate(nl, pm, Config{AllowInverted: true})
		for k, s := range cands {
			if k%9 != 0 {
				continue
			}
			cp := nl.Clone()
			pmCp := power.Estimate(cp, power.Options{})
			sCp := *s
			NewAnalyzer(cp, pmCp).AnalyzeAB(&sCp)
			before := cp.Area()
			if _, err := Apply(cp, &sCp); err != nil {
				t.Fatal(err)
			}
			after := cp.Area()
			if math.Abs((after-before)-sCp.AreaDelta) > 1e-9 {
				t.Fatalf("trial %d cand %v: predicted area delta %v, actual %v",
					trial, &sCp, sCp.AreaDelta, after-before)
			}
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("too few area checks: %d", checked)
	}
}

func TestPaperFigure2EndToEnd(t *testing.T) {
	nl, ids := fig2(t)
	nl.POLoad = 0
	pm := power.Estimate(nl, power.Options{})
	an := NewAnalyzer(nl, pm)
	checker := atpg.NewChecker(nl)

	before := pm.Total()
	s := &Substitution{
		Kind: IS2, A: ids["a"], G: ids["d"], Pin: 0,
		Src: atpg.Source{B: ids["e"], C: netlist.InvalidNode},
	}
	an.AnalyzeAB(s)
	an.AnalyzeC(s)
	if s.Gain() <= 0 {
		t.Fatalf("figure 2 move should have positive gain, got %v", s.Gain())
	}
	if got := checker.CheckBranch(s.G, s.Pin, s.Src); got != atpg.Permissible {
		t.Fatalf("figure 2 move should be permissible, got %v", got)
	}
	if _, err := Apply(nl, s); err != nil {
		t.Fatal(err)
	}
	pm.Resync()
	after := pm.Total()
	if after >= before {
		t.Fatalf("power did not drop: %v -> %v", before, after)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyInverterPlans(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("invplan", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	na, _ := nl.AddGate("na", lib.Cell("inv"), []netlist.NodeID{a})
	y, _ := nl.AddGate("y", lib.Cell("and2"), []netlist.NodeID{na, b})
	// A second consumer of !a implemented redundantly as nor(a,a)... use
	// oai21 instead: z = !((a+a)*b) = !(a*b); replace its pin with reuse
	// of existing inverter is the scenario: build z = and2(na2, b) where
	// na2 is a second inverter on a.
	na2, _ := nl.AddGate("na2", lib.Cell("inv"), []netlist.NodeID{a})
	z, _ := nl.AddGate("z", lib.Cell("and2"), []netlist.NodeID{na2, b})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("z", z); err != nil {
		t.Fatal(err)
	}

	// Reuse plan: rewire z's pin 0 from na2 to the inverted source a,
	// reusing inverter na.
	s := &Substitution{
		Kind: IS2, A: na2, G: z, Pin: 0,
		Src: atpg.Source{B: a, InvertB: true, C: netlist.InvalidNode},
		Inv: InvReuse, InvNode: na,
	}
	res, err := Apply(nl, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != na {
		t.Errorf("reuse should route through na")
	}
	if len(res.Removed) != 1 || res.Removed[0] != na2 {
		t.Errorf("na2 should be swept, removed=%v", res.Removed)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}

	// Add plan: rewire y's pin 1 (currently b) to !b via a new inverter.
	// Functionally wrong, but Apply does not judge permissibility.
	s2 := &Substitution{
		Kind: IS2, A: b, G: y, Pin: 1,
		Src: atpg.Source{B: b, InvertB: true, C: netlist.InvalidNode},
		Inv: InvAdd,
	}
	res2, err := Apply(nl, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Added) != 1 {
		t.Errorf("InvAdd should add one gate")
	}
	if !nl.Node(res2.Source).Cell().IsInverter() {
		t.Errorf("source should be an inverter output")
	}
}

func TestApplyThreeSub(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("os3", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	c, _ := nl.AddInput("c")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("and2"), []netlist.NodeID{g, c})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	andCell := lib.Cell("and2")
	s := &Substitution{
		Kind: OS3, A: g, G: netlist.InvalidNode, Pin: -1,
		Src:     atpg.Source{B: a, C: b, Gate: andCell.TT},
		NewCell: andCell,
	}
	res, err := Apply(nl, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 {
		t.Fatalf("OS3 must add the new gate")
	}
	if len(res.Removed) != 1 || res.Removed[0] != g {
		t.Fatalf("old gate should be swept: %v", res.Removed)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayOKRejectsCriticalLoad(t *testing.T) {
	// in -> inv1 -> inv2 -> out, plus a side signal s = inv(in2).
	lib := cellib.Lib2()
	nl := netlist.New("timing", lib)
	in, _ := nl.AddInput("in")
	in2, _ := nl.AddInput("in2")
	i1, _ := nl.AddGate("i1", lib.Cell("inv"), []netlist.NodeID{in})
	i2, _ := nl.AddGate("i2", lib.Cell("inv"), []netlist.NodeID{i1})
	side, _ := nl.AddGate("side", lib.Cell("inv"), []netlist.NodeID{in2})
	join, _ := nl.AddGate("join", lib.Cell("and2"), []netlist.NodeID{i2, side})
	if err := nl.AddOutput("join", join); err != nil {
		t.Fatal(err)
	}
	a := sta.New(nl, 0)
	// Rewiring join's pin 1 (side, off-critical) to read i1 (on the
	// critical path): adds load to i1 whose slack is zero.
	s := &Substitution{
		Kind: IS2, A: side, G: join, Pin: 1,
		Src: atpg.Source{B: i1, C: netlist.InvalidNode},
	}
	if DelayOK(nl, s, a) {
		t.Errorf("loading the zero-slack critical path must be rejected")
	}
	relaxed := sta.New(nl, a.Delay()*3)
	if !DelayOK(nl, s, relaxed) {
		t.Errorf("with a loose constraint the same move must pass")
	}
}

func TestDelayOKLateArrival(t *testing.T) {
	// A long chain's output substituting an input-adjacent branch must be
	// rejected when the constraint is tight: the source arrives too late.
	lib := cellib.Lib2()
	nl := netlist.New("late", lib)
	in, _ := nl.AddInput("in")
	chainEnd := in
	for i := 0; i < 6; i++ {
		g, err := nl.AddGate("", lib.Cell("inv"), []netlist.NodeID{chainEnd})
		if err != nil {
			t.Fatal(err)
		}
		chainEnd = g
	}
	other, _ := nl.AddInput("other")
	buf1, _ := nl.AddGate("buf1", lib.Cell("buf"), []netlist.NodeID{other})
	join, _ := nl.AddGate("join", lib.Cell("and2"), []netlist.NodeID{chainEnd, buf1})
	if err := nl.AddOutput("join", join); err != nil {
		t.Fatal(err)
	}
	a := sta.New(nl, 0)
	// join pin 1 currently arrives early (buf1); substituting it with the
	// chain end (same late arrival as pin 0) is fine delay-wise; but
	// substituting buf1's OWN input branch deep in the chain would be late.
	s := &Substitution{
		Kind: IS2, A: other, G: buf1, Pin: 0,
		Src: atpg.Source{B: chainEnd, C: netlist.InvalidNode},
	}
	if DelayOK(nl, s, a) {
		t.Errorf("late source through buf1 must violate the unconstrained required time")
	}
}

// randomNetlist builds a random mapped circuit (shared helper).
func randomNetlist(t testing.TB, rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("rand", lib)
	var pool []netlist.NodeID
	for i := 0; i < nIn; i++ {
		id, err := nl.AddInput(logic.VarName(i))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21"}
	for i := 0; i < nGates; i++ {
		cell := nl.Lib.Cell(cells[rng.Intn(len(cells))])
		fanins := make([]netlist.NodeID, cell.NumPins())
		for p := range fanins {
			fanins[p] = pool[rng.Intn(len(pool))]
		}
		id, err := nl.AddGate("", cell, fanins)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	for i := 0; i < 2; i++ {
		if err := nl.AddOutput(logic.VarName(20+i), pool[len(pool)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	// Start from a clean circuit: gates that drive nothing would otherwise
	// be swept by the first Apply and pollute area/power accounting.
	nl.SweepDead()
	return nl
}

func TestMaxPerTargetCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := randomNetlist(t, rng, 6, 20)
	pm := power.Estimate(nl, power.Options{})
	small := Generate(nl, pm, Config{MaxPerTarget: 2})
	counts := make(map[string]int)
	for _, s := range small {
		key := s.Kind.String() + s.String()
		_ = key
		tk := targetKey(s)
		counts[tk]++
		if counts[tk] > 2 {
			t.Fatalf("target %s exceeded cap", tk)
		}
	}
}

func targetKey(s *Substitution) string {
	if s.IsBranchSub() {
		return "b" + string(rune(s.G)) + string(rune(s.Pin))
	}
	return "s" + string(rune(s.A))
}

func TestKindStrings(t *testing.T) {
	if OS2.String() != "OS2" || IS2.String() != "IS2" || OS3.String() != "OS3" || IS3.String() != "IS3" {
		t.Errorf("Kind strings broken")
	}
}

var _ = sim.New // keep import if unused in some build configurations

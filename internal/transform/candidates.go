package transform

import (
	"sort"
	"time"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/power"
)

// Config controls candidate generation.
type Config struct {
	// Class enables; the zero Config enables everything (see Normalize).
	DisableOS2, DisableIS2, DisableOS3, DisableIS3 bool
	// AllowInverted additionally proposes substitutions by inverted
	// signals (realized by inverter reuse or insertion).
	AllowInverted bool
	// MaxThreeBase caps the per-class base-signal set of the 3-signal pair
	// search (default 16).
	MaxThreeBase int
	// MaxPerTarget caps how many candidates one substituted signal may
	// contribute (default 48).
	MaxPerTarget int
	// TargetFilter, when non-nil, restricts harvesting to targets it
	// accepts: stem substitutions of node A require TargetFilter(A), and
	// branch substitutions into gate G require TargetFilter(G). The
	// candidate *source* pool stays global. The parallel engine hands
	// each region worker the filter of its region; disjoint filters
	// partition the full candidate set.
	TargetFilter func(netlist.NodeID) bool
	// Obs, when non-nil, receives one "harvest" event per Generate call
	// (candidate counts by class) and harvest metrics.
	Obs *obs.Observer
}

// Normalize fills defaults.
func (c *Config) Normalize() {
	if c.MaxThreeBase <= 0 {
		c.MaxThreeBase = 16
	}
	if c.MaxPerTarget <= 0 {
		c.MaxPerTarget = 48
	}
}

// Generate computes the candidate substitution set of the current netlist
// using simulation signatures filtered by per-sample observability
// don't-care masks: a candidate source must agree with the substituted
// signal on every sample vector where that signal is observable at a
// primary output. Survivors still require the exact ATPG check before
// being applied; this is the get_candidate_substitutions step of the
// paper's Figure 5.
func Generate(nl *netlist.Netlist, pm *power.Model, cfg Config) []*Substitution {
	cfg.Normalize()
	start := time.Now()
	sm := pm.Sim()
	g := &generator{nl: nl, pm: pm, cfg: cfg, words: sm.Words(), tfoMask: make([]bool, nl.NumNodes())}

	// Candidate source pool: all live stems, in topological order for
	// determinism.
	for _, id := range nl.TopoOrder() {
		g.pool = append(g.pool, id)
	}

	// Stem targets (OS2/OS3).
	if !cfg.DisableOS2 || !cfg.DisableOS3 {
		for _, a := range g.pool {
			n := nl.Node(a)
			if n.Kind() != netlist.KindGate || n.NumFanouts() == 0 {
				continue
			}
			if cfg.TargetFilter != nil && !cfg.TargetFilter(a) {
				continue
			}
			obs := sm.StemObservability(a)
			touched := nl.MarkTFO(a, g.tfoMask)
			g.tfoMask[a] = true
			cone := nl.DeadConeIfDetached(a, n.Fanouts())
			g.target(&targetCtx{
				a: a, g: netlist.InvalidNode, pin: -1,
				obs: obs, tfo: g.tfoMask, cone: toSet(cone),
				av: sm.Value(a),
			})
			g.tfoMask[a] = false
			for _, id := range touched {
				g.tfoMask[id] = false
			}
		}
	}

	// Branch targets (IS2/IS3): every gate input pin of a multi-fanout
	// stem (single-fanout branches coincide with the stem substitution).
	if !cfg.DisableIS2 || !cfg.DisableIS3 {
		for _, gid := range g.pool {
			n := nl.Node(gid)
			if n.Kind() != netlist.KindGate {
				continue
			}
			if cfg.TargetFilter != nil && !cfg.TargetFilter(gid) {
				continue
			}
			for pin, drv := range n.Fanins() {
				if nl.Node(drv).NumFanouts() < 2 {
					continue
				}
				obs := sm.BranchObservability(gid, pin)
				touched := nl.MarkTFO(gid, g.tfoMask)
				g.tfoMask[gid] = true
				cone := nl.DeadConeIfDetached(drv, []netlist.Branch{{Gate: gid, Pin: pin}})
				g.target(&targetCtx{
					a: drv, g: gid, pin: pin,
					obs: obs, tfo: g.tfoMask, cone: toSet(cone),
					av: sm.Value(drv),
				})
				g.tfoMask[gid] = false
				for _, id := range touched {
					g.tfoMask[id] = false
				}
			}
		}
	}
	harvestObs(cfg.Obs, g.out, len(g.pool), start)
	return g.out
}

// harvestObs reports one Generate call to the observer.
func harvestObs(o *obs.Observer, cands []*Substitution, pool int, start time.Time) {
	if o == nil {
		return
	}
	byKind := map[Kind]int{}
	for _, s := range cands {
		byKind[s.Kind]++
	}
	if m := o.Metrics(); m != nil {
		m.Counter("transform.harvests").Inc()
		m.Counter("transform.candidates").Add(int64(len(cands)))
		for k, n := range byKind {
			m.Counter("transform.candidates." + k.String()).Add(int64(n))
		}
		m.Histogram("transform.harvest.seconds").ObserveSince(start)
	}
	if o.Tracing() {
		o.Emit("harvest", obs.Fields{
			"candidates": len(cands),
			"pool":       pool,
			"os2":        byKind[OS2],
			"is2":        byKind[IS2],
			"os3":        byKind[OS3],
			"is3":        byKind[IS3],
			"seconds":    time.Since(start).Seconds(),
		})
	}
}

type targetCtx struct {
	a    netlist.NodeID // substituted stem (or branch driver)
	g    netlist.NodeID // branch gate, InvalidNode for stem targets
	pin  int
	obs  []uint64
	tfo  []bool                  // forbidden region for sources (cycles), indexed by NodeID
	cone map[netlist.NodeID]bool // gates that would die
	av   []uint64                // substituted signal's value words
}

func (t *targetCtx) isBranch() bool { return t.g != netlist.InvalidNode }

func toSet(ids []netlist.NodeID) map[netlist.NodeID]bool {
	m := make(map[netlist.NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

type generator struct {
	nl      *netlist.Netlist
	pm      *power.Model
	cfg     Config
	pool    []netlist.NodeID
	words   int
	tfoMask []bool
	out     []*Substitution
}

// sourceOK reports whether node b may drive the target without a cycle.
func (g *generator) sourceOK(t *targetCtx, b netlist.NodeID) bool {
	if b == t.a && !t.isBranch() {
		return false
	}
	return !t.tfo[b]
}

// matchesPlain reports whether val(b) equals the target value on every
// observable sample.
func (g *generator) matches(t *targetCtx, bv []uint64, inverted bool) bool {
	for w := 0; w < g.words; w++ {
		x := bv[w]
		if inverted {
			x = ^x
		}
		if (x^t.av[w])&t.obs[w] != 0 {
			return false
		}
	}
	return true
}

// target harvests all candidates for one substituted signal.
func (g *generator) target(t *targetCtx) {
	sm := g.pm.Sim()
	count := 0
	add := func(s *Substitution) bool {
		if count >= g.cfg.MaxPerTarget {
			return false
		}
		g.out = append(g.out, s)
		count++
		return true
	}

	// 2-signal candidates.
	two := (t.isBranch() && !g.cfg.DisableIS2) || (!t.isBranch() && !g.cfg.DisableOS2)
	if two {
		for _, b := range g.pool {
			if !g.sourceOK(t, b) {
				continue
			}
			if t.isBranch() && b == t.a {
				continue // no-op: same driver, same polarity
			}
			bv := sm.Value(b)
			if g.matches(t, bv, false) {
				if !add(g.makeTwo(t, b, false)) {
					return
				}
			}
			if g.cfg.AllowInverted && g.matches(t, bv, true) {
				if !add(g.makeTwo(t, b, true)) {
					return
				}
			}
		}
	}

	// 3-signal candidates.
	three := (t.isBranch() && !g.cfg.DisableIS3) || (!t.isBranch() && !g.cfg.DisableOS3)
	if !three {
		return
	}
	for _, cell := range g.nl.Lib.TwoInputCells() {
		if !g.threeForCell(t, cell, add) {
			return
		}
	}
}

func (g *generator) makeTwo(t *targetCtx, b netlist.NodeID, inverted bool) *Substitution {
	s := &Substitution{
		A:   t.a,
		G:   t.g,
		Pin: t.pin,
		Src: atpg.Source{B: b, InvertB: inverted, C: netlist.InvalidNode},
	}
	if t.isBranch() {
		s.Kind = IS2
	} else {
		s.Kind = OS2
	}
	if inverted {
		s.Inv = InvAdd
		if inv := FindInverter(g.nl, b); inv != netlist.InvalidNode &&
			g.sourceOK(t, inv) && !t.cone[inv] {
			s.Inv = InvReuse
			s.InvNode = inv
		}
	}
	return s
}

// threeForCell harvests 3-signal candidates whose new gate is the given
// 2-input cell. It returns false when the per-target cap was hit.
func (g *generator) threeForCell(t *targetCtx, cell *cellib.Cell, add func(*Substitution) bool) bool {
	sm := g.pm.Sim()
	tt := cell.TT

	// Classify the cell to derive the base-signal filter that makes the
	// pair search quadratic in a small set instead of the whole pool:
	// monotone-expressible cells (AND/OR/NAND/NOR shapes) constrain each
	// operand by a cover/anti-cover condition; XOR-shaped cells determine
	// the partner uniquely.
	isXorLike := tt.Equal(xorTT) || tt.Equal(xnorTT)
	if isXorLike {
		return g.threeXor(t, cell, add)
	}
	var baseOK func(bv []uint64) bool
	var pairOK func(bv, cv []uint64) bool
	switch {
	case tt.Equal(andTT):
		baseOK = func(bv []uint64) bool { return g.covers(bv, t.av, t.obs) }
		pairOK = func(bv, cv []uint64) bool { return g.combEq(t, bv, cv, opAnd, false) }
	case tt.Equal(orTT):
		baseOK = func(bv []uint64) bool { return g.covers(t.av, bv, t.obs) }
		pairOK = func(bv, cv []uint64) bool { return g.combEq(t, bv, cv, opOr, false) }
	case tt.Equal(nandTT):
		baseOK = func(bv []uint64) bool { return g.coversInv(bv, t.av, t.obs) }
		pairOK = func(bv, cv []uint64) bool { return g.combEq(t, bv, cv, opAnd, true) }
	case tt.Equal(norTT):
		baseOK = func(bv []uint64) bool { return g.disjoint(bv, t.av, t.obs) }
		pairOK = func(bv, cv []uint64) bool { return g.combEq(t, bv, cv, opOr, true) }
	default:
		// Other 2-input cells (none in Lib2) are skipped.
		return true
	}

	var base []netlist.NodeID
	for _, b := range g.pool {
		if !g.sourceOK(t, b) {
			continue
		}
		if baseOK(sm.Value(b)) {
			base = append(base, b)
		}
	}
	// Prefer quiet signals: the PG_B penalty grows with E.
	sort.Slice(base, func(i, j int) bool {
		return g.pm.TransitionProb(base[i]) < g.pm.TransitionProb(base[j])
	})
	if len(base) > g.cfg.MaxThreeBase {
		base = base[:g.cfg.MaxThreeBase]
	}
	for i := 0; i < len(base); i++ {
		for j := i + 1; j < len(base); j++ {
			if pairOK(sm.Value(base[i]), sm.Value(base[j])) {
				if !add(g.makeThree(t, base[i], base[j], cell)) {
					return false
				}
			}
		}
	}
	return true
}

// threeXor handles XOR/XNOR-shaped new gates: the partner signal is fully
// determined on the observable samples, so scan the pool for it.
func (g *generator) threeXor(t *targetCtx, cell *cellib.Cell, add func(*Substitution) bool) bool {
	sm := g.pm.Sim()
	xnor := cell.TT.Equal(xnorTT)

	var base []netlist.NodeID
	for _, b := range g.pool {
		if g.sourceOK(t, b) {
			base = append(base, b)
		}
	}
	sort.Slice(base, func(i, j int) bool {
		return g.pm.TransitionProb(base[i]) < g.pm.TransitionProb(base[j])
	})
	if len(base) > g.cfg.MaxThreeBase {
		base = base[:g.cfg.MaxThreeBase]
	}
	for i := 0; i < len(base); i++ {
		bv := sm.Value(base[i])
		for j := i + 1; j < len(base); j++ {
			cv := sm.Value(base[j])
			ok := true
			for w := 0; w < g.words && ok; w++ {
				x := bv[w] ^ cv[w]
				if xnor {
					x = ^x
				}
				ok = (x^t.av[w])&t.obs[w] == 0
			}
			if ok {
				if !add(g.makeThree(t, base[i], base[j], cell)) {
					return false
				}
			}
		}
	}
	return true
}

func (g *generator) makeThree(t *targetCtx, b, c netlist.NodeID, cell *cellib.Cell) *Substitution {
	s := &Substitution{
		A:       t.a,
		G:       t.g,
		Pin:     t.pin,
		Src:     atpg.Source{B: b, C: c, Gate: cell.TT},
		NewCell: cell,
	}
	if t.isBranch() {
		s.Kind = IS3
	} else {
		s.Kind = OS3
	}
	return s
}

type binOp int

const (
	opAnd binOp = iota
	opOr
)

// covers reports whether x >= y (x covers y) on the observable samples.
func (g *generator) covers(x, y, obs []uint64) bool {
	for w := 0; w < g.words; w++ {
		if y[w]&^x[w]&obs[w] != 0 {
			return false
		}
	}
	return true
}

// coversInv reports whether x covers ~y on the observable samples.
func (g *generator) coversInv(x, y, obs []uint64) bool {
	for w := 0; w < g.words; w++ {
		if ^y[w]&^x[w]&obs[w] != 0 {
			return false
		}
	}
	return true
}

// disjoint reports whether x & y == 0 on the observable samples.
func (g *generator) disjoint(x, y, obs []uint64) bool {
	for w := 0; w < g.words; w++ {
		if x[w]&y[w]&obs[w] != 0 {
			return false
		}
	}
	return true
}

// combEq checks (b OP c) [inverted] == target on the observable samples.
func (g *generator) combEq(t *targetCtx, bv, cv []uint64, op binOp, invert bool) bool {
	for w := 0; w < g.words; w++ {
		var x uint64
		if op == opAnd {
			x = bv[w] & cv[w]
		} else {
			x = bv[w] | cv[w]
		}
		if invert {
			x = ^x
		}
		if (x^t.av[w])&t.obs[w] != 0 {
			return false
		}
	}
	return true
}

var (
	andTT  = logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	orTT   = logic.TTFromExpr(logic.Or(logic.Var(0), logic.Var(1)), 2)
	nandTT = logic.TTFromExpr(logic.Not(logic.And(logic.Var(0), logic.Var(1))), 2)
	norTT  = logic.TTFromExpr(logic.Not(logic.Or(logic.Var(0), logic.Var(1))), 2)
	xorTT  = logic.TTFromExpr(logic.Xor(logic.Var(0), logic.Var(1)), 2)
	xnorTT = logic.TTFromExpr(logic.Not(logic.Xor(logic.Var(0), logic.Var(1))), 2)
)

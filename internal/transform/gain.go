package transform

import (
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/power"
)

// Analyzer computes the power-gain contributions of candidate
// substitutions against one netlist + power model (paper Section 3.3).
type Analyzer struct {
	nl *netlist.Netlist
	pm *power.Model
}

// NewAnalyzer wraps a netlist and its power model.
func NewAnalyzer(nl *netlist.Netlist, pm *power.Model) *Analyzer {
	return &Analyzer{nl: nl, pm: pm}
}

// AnalyzeAB fills s.GainAB (= PG_A + PG_B) and s.AreaDelta. Neither
// requires any reestimation, exactly as the paper's pre-selection exploits.
func (an *Analyzer) AnalyzeAB(s *Substitution) {
	nl, pm := an.nl, an.pm
	moved := s.movedCap(nl)
	detached := s.detachedBranches(nl)

	// PG_A: the dominated region that dies, plus load relief on its
	// boundary (Eq. 3). The substituting signal(s) pick up the moved load
	// and survive, so they are excluded from the dead cone.
	keep := []netlist.NodeID{s.Src.B}
	if s.Src.IsThree() {
		keep = append(keep, s.Src.C)
	}
	if s.Src.InvertB && s.Inv == InvReuse {
		keep = append(keep, s.InvNode)
	}
	cone := nl.DeadConeIfDetached(s.A, detached, keep...)
	coneSet := make(map[netlist.NodeID]bool, len(cone))
	for _, id := range cone {
		coneSet[id] = true
	}
	pgA := 0.0
	areaDelta := 0.0
	if coneSet[s.A] {
		for _, id := range cone {
			pgA += nl.Load(id) * pm.TransitionProb(id)
			areaDelta -= nl.Node(id).Cell().Area
		}
		// Cross branches: capacitance inside the cone driven from outside.
		// Walk the cone's fanin pins (O(cone)) rather than every node.
		for _, id := range cone {
			n := nl.Node(id)
			for pin, f := range n.Fanins() {
				if !coneSet[f] {
					pgA += n.Cell().Pins[pin].Cap * pm.TransitionProb(f)
				}
			}
		}
	} else {
		// Nothing dies: only the detached branch load leaves stem A.
		pgA = moved * pm.TransitionProb(s.A)
	}

	// PG_B: the penalty of driving the moved load from the source (Eq. 4),
	// including any newly inserted inverter or gate.
	eB := pm.TransitionProb(s.Src.B)
	pgB := 0.0
	switch {
	case s.Src.IsThree():
		eH := an.sourceTransitionProb(s)
		eC := pm.TransitionProb(s.Src.C)
		pgB = -(s.NewCell.Pins[0].Cap*eB + s.NewCell.Pins[1].Cap*eC + moved*eH)
		areaDelta += s.NewCell.Area
	case s.Src.InvertB && s.Inv == InvAdd:
		inv := nl.Lib.Inverter()
		pgB = -(inv.Pins[0].Cap*eB + moved*eB)
		areaDelta += inv.Area
	case s.Src.InvertB && s.Inv == InvReuse:
		pgB = -moved * pm.TransitionProb(s.InvNode)
	default:
		pgB = -moved * eB
	}

	s.GainAB = pgA + pgB
	s.AreaDelta = areaDelta
}

// sourceTransitionProb estimates E of the substituting signal, including
// the output of a hypothetical new gate.
func (an *Analyzer) sourceTransitionProb(s *Substitution) float64 {
	if !s.Src.IsThree() {
		return an.pm.TransitionProb(s.Src.B)
	}
	sm := an.pm.Sim()
	bw := sm.Value(s.Src.B)
	cw := sm.Value(s.Src.C)
	ones := 0
	for w := range bw {
		ones += popcount(eval2TT(s.Src.Gate, bw[w], cw[w]) & sm.ValidMask(w))
	}
	p := float64(ones) / float64(sm.NumVectors())
	return power.TransitionProbOf(p)
}

// AnalyzeC fills s.GainC (= PG_C, Eq. 5) by hypothetically propagating the
// substitution through the transitive fanout and re-deriving transition
// probabilities there. This is the expensive reestimation step the paper
// reserves for pre-selected candidates.
func (an *Analyzer) AnalyzeC(s *Substitution) {
	nl, pm := an.nl, an.pm
	sm := pm.Sim()

	srcWords := an.sourceWords(s)
	var root netlist.NodeID
	var alt []uint64
	if s.IsBranchSub() {
		alt = make([]uint64, sm.Words())
		sm.GateValueWithPin(s.G, s.Pin, srcWords, alt)
		root = s.G
	} else {
		root = s.A
		alt = srcWords
	}
	ov := sm.Hypothetical(root, alt)

	pgC := 0.0
	for _, id := range ov.Affected {
		if !s.IsBranchSub() && id == s.A {
			// The substituted stem itself disappears; PG_A accounted for it.
			continue
		}
		words := ov.Value(id)
		ones := 0
		for w := range words {
			ones += popcount(words[w] & sm.ValidMask(w))
		}
		eNew := power.TransitionProbOf(float64(ones) / float64(sm.NumVectors()))
		pgC += nl.Load(id) * (pm.TransitionProb(id) - eNew)
	}
	s.GainC = pgC
}

// sourceWords returns the simulated value words of the substituting signal.
func (an *Analyzer) sourceWords(s *Substitution) []uint64 {
	sm := an.pm.Sim()
	bw := sm.Value(s.Src.B)
	out := make([]uint64, len(bw))
	if s.Src.IsThree() {
		cw := sm.Value(s.Src.C)
		for w := range bw {
			out[w] = eval2TT(s.Src.Gate, bw[w], cw[w])
		}
		return out
	}
	if s.Src.InvertB {
		for w := range bw {
			out[w] = ^bw[w]
		}
		return out
	}
	copy(out, bw)
	return out
}

// eval2TT evaluates a 2-variable truth table bit-parallel.
func eval2TT(tt logic.TT, b, c uint64) uint64 {
	var out uint64
	if tt.Eval(0) {
		out |= ^b & ^c
	}
	if tt.Eval(1) {
		out |= b & ^c
	}
	if tt.Eval(2) {
		out |= ^b & c
	}
	if tt.Eval(3) {
		out |= b & c
	}
	return out
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

package transform

import (
	"powder/internal/netlist"
	"powder/internal/sta"
)

const delayEps = 1e-9

// DelayOK reports whether applying s keeps the circuit within the timing
// constraint of the given analysis (paper Section 3.4). A cheap local
// filter rejects most offenders:
//
//  1. the substituting signal (or the newly inserted gate) must arrive no
//     later than the required time of the substituted signal, and
//  2. signals that pick up extra fanout load must have enough slack to
//     absorb the resulting arrival shift on their existing paths.
//
// The local checks alone can miss pathological interactions (one path
// accumulating the shifts of several loaded signals), so survivors are
// confirmed exactly on a scratch copy; the paper's guarantee — the
// circuit delay never exceeds the constraint — therefore holds
// unconditionally. Load that is *removed* only ever speeds the circuit up.
func DelayOK(nl *netlist.Netlist, s *Substitution, a *sta.Analysis) bool {
	if !delayOKLocal(nl, s, a) {
		return false
	}
	cp := nl.Clone()
	sCp := *s
	if _, err := Apply(cp, &sCp); err != nil {
		return false
	}
	d := sta.NewWithInputDrive(cp, 0, a.InputDrive).Delay()
	return d <= a.Constraint()+delayEps
}

// delayOKLocal is the paper's incremental feasibility check.
func delayOKLocal(nl *netlist.Netlist, s *Substitution, a *sta.Analysis) bool {
	moved := s.movedCap(nl)

	// Required time of the substituted signal.
	var req float64
	if s.IsBranchSub() {
		req = a.RequiredAtBranch(netlist.Branch{Gate: s.G, Pin: s.Pin})
	} else {
		req = a.Required(s.A)
	}

	switch {
	case s.Src.IsThree():
		capB := s.NewCell.Pins[0].Cap
		capC := s.NewCell.Pins[1].Cap
		if !a.ExtraLoadOK(s.Src.B, capB) || !a.ExtraLoadOK(s.Src.C, capC) {
			return false
		}
		arrB := a.ArrivalWithExtraLoad(s.Src.B, capB)
		arrC := a.ArrivalWithExtraLoad(s.Src.C, capC)
		arrH := max(arrB, arrC) + s.NewCell.Delay(moved)
		return arrH <= req+delayEps

	case s.Src.InvertB && s.Inv == InvAdd:
		inv := nl.Lib.Inverter()
		if !a.ExtraLoadOK(s.Src.B, inv.Pins[0].Cap) {
			return false
		}
		arr := a.ArrivalWithExtraLoad(s.Src.B, inv.Pins[0].Cap) + inv.Delay(moved)
		return arr <= req+delayEps

	case s.Src.InvertB && s.Inv == InvReuse:
		if !a.ExtraLoadOK(s.InvNode, moved) {
			return false
		}
		return a.ArrivalWithExtraLoad(s.InvNode, moved) <= req+delayEps

	default:
		if !a.ExtraLoadOK(s.Src.B, moved) {
			return false
		}
		return a.ArrivalWithExtraLoad(s.Src.B, moved) <= req+delayEps
	}
}

func max(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

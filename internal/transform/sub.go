// Package transform implements the paper's structural netlist
// transformations (Section 3): the permissible signal substitutions
// OS2/IS2 (replace a stem or branch signal by an existing signal, possibly
// inverted) and OS3/IS3 (replace it by the output of a newly inserted
// two-input library gate), together with
//
//   - candidate generation from bit-parallel simulation signatures and
//     observability don't-care masks (the fault-simulation-based technique
//     of the paper's references [2,5]),
//   - the power-gain analysis PG = PG_A + PG_B + PG_C of Section 3.3,
//   - the delay feasibility check of Section 3.4, and
//   - application of a substitution to the netlist, including dominated-
//     region pruning and inverter reuse/materialization.
package transform

import (
	"fmt"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/netlist"
)

// Kind is the substitution class of the paper's Definitions 1 and 2.
type Kind int

const (
	// OS2 substitutes a stem signal by an existing signal.
	OS2 Kind = iota
	// IS2 substitutes a single branch signal by an existing signal.
	IS2
	// OS3 substitutes a stem signal by a new 2-input gate.
	OS3
	// IS3 substitutes a branch signal by a new 2-input gate.
	IS3
)

func (k Kind) String() string {
	switch k {
	case OS2:
		return "OS2"
	case IS2:
		return "IS2"
	case OS3:
		return "OS3"
	case IS3:
		return "IS3"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// InvPlan describes how an inverted substituting signal is realized.
type InvPlan int

const (
	// InvNone: the source is used as-is.
	InvNone InvPlan = iota
	// InvReuse: an existing inverter gate already computes the inverted
	// signal; its output is used.
	InvReuse
	// InvAdd: a new inverter cell must be inserted.
	InvAdd
)

// Substitution is one candidate transformation.
type Substitution struct {
	Kind Kind
	// A is the substituted stem signal (for IS2/IS3 the current driver of
	// the branch).
	A netlist.NodeID
	// G/Pin identify the branch for IS2/IS3; G is InvalidNode for OS2/OS3.
	G   netlist.NodeID
	Pin int
	// Src is the substituting signal specification (shared with the ATPG
	// checker).
	Src atpg.Source
	// NewCell is the library cell realizing Src.Gate for OS3/IS3.
	NewCell *cellib.Cell
	// Inv describes inverter realization when Src.InvertB is set on a
	// 2-signal substitution; InvNode is the reused inverter for InvReuse.
	Inv     InvPlan
	InvNode netlist.NodeID

	// GainAB caches PG_A + PG_B (no reestimation needed).
	GainAB float64
	// GainC caches PG_C (set by AnalyzeC).
	GainC float64
	// AreaDelta is the area change if applied (negative = smaller).
	AreaDelta float64
}

// IsBranchSub reports whether the substitution rewires a single branch.
func (s *Substitution) IsBranchSub() bool { return s.Kind == IS2 || s.Kind == IS3 }

// Gain returns the total estimated power gain PG_A + PG_B + PG_C.
func (s *Substitution) Gain() float64 { return s.GainAB + s.GainC }

// TargetString renders the substituted signal ("stem 12",
// "branch 12->34.1"); the run ledger records it as provenance.
func (s *Substitution) TargetString() string {
	if s.IsBranchSub() {
		return fmt.Sprintf("branch %d->%d.%d", s.A, s.G, s.Pin)
	}
	return fmt.Sprintf("stem %d", s.A)
}

// SourceString renders the substituting signal ("34", "!34",
// "nand2(34,56)").
func (s *Substitution) SourceString() string {
	src := fmt.Sprintf("%d", s.Src.B)
	if s.Src.InvertB {
		src = "!" + src
	}
	if s.Src.IsThree() {
		src = fmt.Sprintf("%s(%s,%d)", s.NewCell.Name, src, s.Src.C)
	}
	return src
}

// String renders the substitution compactly for logs and tests.
func (s *Substitution) String() string {
	return fmt.Sprintf("%s %s <- %s (gainAB=%.4f gainC=%.4f)", s.Kind, s.TargetString(), s.SourceString(), s.GainAB, s.GainC)
}

// detachedBranches returns the branches the substitution detaches from
// stem A.
func (s *Substitution) detachedBranches(nl *netlist.Netlist) []netlist.Branch {
	if s.IsBranchSub() {
		return []netlist.Branch{{Gate: s.G, Pin: s.Pin}}
	}
	return append([]netlist.Branch(nil), nl.Node(s.A).Fanouts()...)
}

// movedCap returns the capacitance moved from A to the substituting signal.
func (s *Substitution) movedCap(nl *netlist.Netlist) float64 {
	c := 0.0
	for _, b := range s.detachedBranches(nl) {
		c += nl.BranchCap(b)
	}
	return c
}

// ApplyResult records what Apply changed.
type ApplyResult struct {
	// Source is the node now driving the rewired branches (b itself, an
	// inverter output, or the new gate).
	Source netlist.NodeID
	// Added lists nodes inserted (new gate and/or new inverter).
	Added []netlist.NodeID
	// Removed lists gates pruned by the dead-cone sweep.
	Removed []netlist.NodeID
}

// Apply performs the substitution on the netlist: it materializes the
// substituting signal (reusing or inserting an inverter, inserting the new
// 2-input gate for the 3-signal forms), rewires the detached branches, and
// sweeps the dominated region. The caller is responsible for having
// verified permissibility and timing beforehand; Apply only revalidates
// structure (cycle-freedom) through the netlist editing primitives.
func Apply(nl *netlist.Netlist, s *Substitution) (*ApplyResult, error) {
	res := &ApplyResult{}

	// Materialize the source signal.
	src := s.Src.B
	if s.Src.IsThree() {
		if s.NewCell == nil {
			return nil, fmt.Errorf("transform: 3-substitution without a cell")
		}
		if s.Src.InvertB || s.Src.InvertC {
			return nil, fmt.Errorf("transform: inverted inputs on 3-substitutions are not generated")
		}
		g, err := nl.AddGate("", s.NewCell, []netlist.NodeID{s.Src.B, s.Src.C})
		if err != nil {
			return nil, err
		}
		src = g
		res.Added = append(res.Added, g)
	} else if s.Src.InvertB {
		switch s.Inv {
		case InvReuse:
			src = s.InvNode
		case InvAdd:
			inv := nl.Lib.Inverter()
			if inv == nil {
				return nil, fmt.Errorf("transform: library has no inverter")
			}
			g, err := nl.AddGate("", inv, []netlist.NodeID{s.Src.B})
			if err != nil {
				return nil, err
			}
			src = g
			res.Added = append(res.Added, g)
		default:
			return nil, fmt.Errorf("transform: inverted source without an inverter plan")
		}
	}
	res.Source = src

	// Rewire.
	for _, b := range s.detachedBranches(nl) {
		if b.IsPO() {
			if err := nl.RedirectOutput(b.Pin, src); err != nil {
				return nil, err
			}
		} else {
			if err := nl.ReplaceFanin(b.Gate, b.Pin, src); err != nil {
				return nil, err
			}
		}
	}
	res.Removed = nl.SweepDead()
	return res, nil
}

// ApplySafe is Apply with panic containment: a panic anywhere in the
// apply path (editing primitives included) is converted into an error,
// so a caller running inside a netlist transaction can roll back and
// continue instead of crashing the run.
func ApplySafe(nl *netlist.Netlist, s *Substitution) (res *ApplyResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("transform: panic applying %v: %v", s, r)
		}
	}()
	return Apply(nl, s)
}

// FindInverter returns an existing live inverter gate driven by b, or
// InvalidNode.
func FindInverter(nl *netlist.Netlist, b netlist.NodeID) netlist.NodeID {
	for _, br := range nl.Node(b).Fanouts() {
		if br.IsPO() {
			continue
		}
		g := nl.Node(br.Gate)
		if g.Cell().IsInverter() {
			return br.Gate
		}
	}
	return netlist.InvalidNode
}

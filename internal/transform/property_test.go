package transform

import (
	"math/rand"
	"testing"

	"powder/internal/power"
	"powder/internal/sta"
)

// TestDelayOKIsConservative verifies the paper's Section 3.4 guarantee:
// any substitution that passes the delay check keeps the circuit within
// the constraint after it is actually applied.
func TestDelayOKIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	applied, checked := 0, 0
	for trial := 0; trial < 15; trial++ {
		nl := randomNetlist(t, rng, 6, 18)
		pm := power.Estimate(nl, power.Options{})
		an := NewAnalyzer(nl, pm)
		// A fairly tight constraint: 5% above the initial delay.
		constraint := sta.New(nl, 0).Delay() * 1.05
		analysis := sta.New(nl, constraint)
		cands := Generate(nl, pm, Config{AllowInverted: true})
		for k, s := range cands {
			if k%5 != 0 {
				continue
			}
			checked++
			an.AnalyzeAB(s)
			if !DelayOK(nl, s, analysis) {
				continue
			}
			cp := nl.Clone()
			sCp := *s
			if _, err := Apply(cp, &sCp); err != nil {
				t.Fatalf("apply: %v", err)
			}
			if got := sta.New(cp, 0).Delay(); got > constraint+1e-9 {
				t.Fatalf("trial %d: DelayOK passed %v but delay %.4f exceeds constraint %.4f",
					trial, s, got, constraint)
			}
			applied++
		}
	}
	if applied < 10 {
		t.Fatalf("property exercised too rarely: %d/%d candidates passed the check", applied, checked)
	}
}

// TestGainCIsExactForOverlay cross-validates AnalyzeC against a clone
// resimulation: the hypothetical TFO probabilities must match the real
// post-substitution probabilities on the same vectors.
func TestGainCIsExactForOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	checked := 0
	for trial := 0; trial < 10; trial++ {
		nl := randomNetlist(t, rng, 6, 14)
		pm := power.Estimate(nl, power.Options{})
		an := NewAnalyzer(nl, pm)
		cands := Generate(nl, pm, Config{})
		for k, s := range cands {
			if k%6 != 0 {
				continue
			}
			an.AnalyzeAB(s)
			an.AnalyzeC(s)
			// Apply on a clone; PG_C = sum over TFO of C*(E_old - E_new)
			// must equal the recomputed difference restricted to surviving
			// signals with unchanged loads. The full-gain exactness test
			// already covers the aggregate; here we pin down PG_C alone by
			// recomputing it from scratch.
			cp := nl.Clone()
			pmCp := power.Estimate(cp, power.Options{})
			sCp := *s
			anCp := NewAnalyzer(cp, pmCp)
			anCp.AnalyzeC(&sCp)
			if diff := sCp.GainC - s.GainC; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: PG_C not reproducible on a clone: %v vs %v",
					trial, sCp.GainC, s.GainC)
			}
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("too few PG_C checks: %d", checked)
	}
}

// TestCandidateSignatureSoundness: every generated candidate's source must
// agree with the substituted signal on all observable sample vectors by
// construction — re-verify the invariant independently.
func TestCandidateSignatureSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		nl := randomNetlist(t, rng, 6, 15)
		pm := power.Estimate(nl, power.Options{})
		sm := pm.Sim()
		cands := Generate(nl, pm, Config{AllowInverted: true})
		an := NewAnalyzer(nl, pm)
		for _, s := range cands {
			var obs []uint64
			if s.IsBranchSub() {
				obs = sm.BranchObservability(s.G, s.Pin)
			} else {
				obs = sm.StemObservability(s.A)
			}
			src := an.sourceWords(s)
			av := sm.Value(s.A)
			for w := range obs {
				if (src[w]^av[w])&obs[w]&sm.ValidMask(w) != 0 {
					t.Fatalf("trial %d: candidate %v disagrees on an observable vector", trial, s)
				}
			}
		}
	}
}

package redundancy

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sim"
)

func exhaustiveEqual(t *testing.T, x, y *netlist.Netlist) bool {
	t.Helper()
	n := len(x.Inputs())
	words := (1<<uint(n) + 63) / 64
	sx, sy := sim.New(x, words), sim.New(y, words)
	if err := sx.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	if err := sy.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	sx.Run()
	sy.Run()
	for i := range x.Outputs() {
		vx := sx.Value(x.Outputs()[i].Driver)
		vy := sy.Value(y.Outputs()[i].Driver)
		for w := range vx {
			if (vx[w]^vy[w])&sx.ValidMask(w) != 0 {
				return false
			}
		}
	}
	return true
}

func TestRemovesClassicAbsorption(t *testing.T) {
	// y = a OR (a AND b): the AND is redundant.
	lib := cellib.Lib2()
	nl := netlist.New("abs", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("or2"), []netlist.NodeID{a, g})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	ref := nl.Clone()
	res, err := Remove(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed == 0 {
		t.Fatalf("absorption not removed: %v", res)
	}
	if nl.GateCount() >= ref.GateCount() {
		t.Errorf("gate count did not shrink: %d", nl.GateCount())
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatalf("function changed")
	}
}

func TestConstantFoldsThroughCircuit(t *testing.T) {
	// z = (a AND !a) OR b == b; the constant must propagate and leave a
	// plain wire to b.
	lib := cellib.Lib2()
	nl := netlist.New("const", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	na, _ := nl.AddGate("na", lib.Cell("inv"), []netlist.NodeID{a})
	zero, _ := nl.AddGate("zero", lib.Cell("and2"), []netlist.NodeID{a, na})
	z, _ := nl.AddGate("z", lib.Cell("or2"), []netlist.NodeID{zero, b})
	if err := nl.AddOutput("z", z); err != nil {
		t.Fatal(err)
	}
	ref := nl.Clone()
	res, err := Remove(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed == 0 {
		t.Fatalf("constant logic not removed")
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatalf("function changed")
	}
	// The output should now be driven by b directly (the whole cone died).
	if nl.Outputs()[0].Driver != b {
		t.Logf("driver is %d (gate count %d) — acceptable as long as smaller", nl.Outputs()[0].Driver, nl.GateCount())
	}
	if nl.GateCount() >= ref.GateCount() {
		t.Errorf("gate count did not shrink")
	}
}

func TestConstantOutputRealized(t *testing.T) {
	// A primary output that is constant: y = a AND !a.
	lib := cellib.Lib2()
	nl := netlist.New("po0", lib)
	a, _ := nl.AddInput("a")
	na, _ := nl.AddGate("na", lib.Cell("inv"), []netlist.NodeID{a})
	y, _ := nl.AddGate("y", lib.Cell("and2"), []netlist.NodeID{a, na})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	ref := nl.Clone()
	if _, err := Remove(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatalf("function changed")
	}
}

func TestRemovePreservesRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	lib := cellib.Lib2()
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21", "oai21"}
	for trial := 0; trial < 10; trial++ {
		nl := netlist.New("rand", lib)
		var pool []netlist.NodeID
		for i := 0; i < 6; i++ {
			id, err := nl.AddInput(logic.VarName(i))
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, id)
		}
		for i := 0; i < 16; i++ {
			cell := lib.Cell(cells[rng.Intn(len(cells))])
			fanins := make([]netlist.NodeID, cell.NumPins())
			for p := range fanins {
				fanins[p] = pool[rng.Intn(len(pool))]
			}
			id, err := nl.AddGate("", cell, fanins)
			if err != nil {
				t.Fatal(err)
			}
			pool = append(pool, id)
		}
		for i := 0; i < 3; i++ {
			if err := nl.AddOutput(logic.VarName(20+i), pool[len(pool)-1-i]); err != nil {
				t.Fatal(err)
			}
		}
		nl.SweepDead()
		ref := nl.Clone()
		res, err := Remove(nl, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !exhaustiveEqual(t, ref, nl) {
			t.Fatalf("trial %d: function changed after %d removals", trial, res.Removed)
		}
		if nl.GateCount() > ref.GateCount() {
			t.Errorf("trial %d: redundancy removal grew the circuit", trial)
		}
	}
}

func TestRemoveIdempotent(t *testing.T) {
	lib := cellib.Lib2()
	nl := netlist.New("abs", lib)
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	g, _ := nl.AddGate("g", lib.Cell("and2"), []netlist.NodeID{a, b})
	y, _ := nl.AddGate("y", lib.Cell("or2"), []netlist.NodeID{a, g})
	if err := nl.AddOutput("y", y); err != nil {
		t.Fatal(err)
	}
	if _, err := Remove(nl, Options{}); err != nil {
		t.Fatal(err)
	}
	second, err := Remove(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Removed != 0 {
		t.Errorf("second pass removed %d more", second.Removed)
	}
}

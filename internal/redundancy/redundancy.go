// Package redundancy implements classic ATPG-based redundancy removal
// (Cheng/Entrena, EDAC'93 — the paper's reference [1]): a stuck-at fault
// that is provably untestable marks logic whose value never reaches a
// primary output, so the faulty constant can be wired in and the circuit
// simplified without changing any output function.
//
// In this repository the pass serves two roles: it is the natural
// *baseline* algorithm next to POWDER (how much power does plain
// redundancy removal recover?), and it acts as a stand-in for the
// POSE-grade area optimization of the paper's initial circuits (see
// expt.RunOptions.PreOptimize).
package redundancy

import (
	"fmt"

	"powder/internal/atpg"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sim"
)

// Options configures a removal pass.
type Options struct {
	// BacktrackLimit bounds each PODEM proof (<=0: default); aborted
	// proofs leave the fault in place (safe).
	BacktrackLimit int
	// MaxRounds bounds the sweep count; every performed simplification can
	// expose new redundancies. Default 4.
	MaxRounds int
	// Words is the sample-vector width used to fault-simulate before
	// invoking PODEM (default 32).
	Words int
	// Seed drives the random fault-simulation vectors.
	Seed int64
}

// Result summarizes a pass.
type Result struct {
	// Removed counts the redundant faults acted upon.
	Removed int
	// ProofsRun counts PODEM invocations.
	ProofsRun int
	// GatesBefore/GatesAfter track the structural effect.
	GatesBefore, GatesAfter int
	AreaBefore, AreaAfter   float64
}

func (r *Result) String() string {
	return fmt.Sprintf("redundancy: %d removals (%d proofs), gates %d -> %d, area %.0f -> %.0f",
		r.Removed, r.ProofsRun, r.GatesBefore, r.GatesAfter, r.AreaBefore, r.AreaAfter)
}

// Remove runs redundancy removal in place until no further untestable
// fault can be simplified.
func Remove(nl *netlist.Netlist, opts Options) (*Result, error) {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 4
	}
	if opts.Words <= 0 {
		opts.Words = 32
	}
	res := &Result{
		GatesBefore: nl.GateCount(),
		AreaBefore:  nl.Area(),
	}
	for round := 0; round < opts.MaxRounds; round++ {
		changed, err := removeOnce(nl, opts, res)
		if err != nil {
			return nil, err
		}
		if changed == 0 {
			break
		}
	}
	res.GatesAfter = nl.GateCount()
	res.AreaAfter = nl.Area()
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("redundancy: netlist invalid after pass: %v", err)
	}
	return res, nil
}

// removeOnce performs one sweep: fault-simulate to discard testable
// faults cheaply, PODEM the rest, and simplify for each proven-redundant
// fault (re-proving against the current structure before acting).
func removeOnce(nl *netlist.Netlist, opts Options, res *Result) (int, error) {
	s := sim.New(nl, opts.Words)
	s.SetInputsRandom(opts.Seed+1, nil)
	s.Run()
	fs := atpg.NewFaultSim(s)
	_, undetected := fs.Coverage(atpg.AllFaults(nl))

	changed := 0
	cc := newConstCache()
	for _, f := range undetected {
		if !faultStillCurrent(nl, f) {
			continue // earlier simplifications removed the site
		}
		// Faults re-asserting an already-materialized constant are no-op
		// rewrites; skipping them keeps repeated passes convergent.
		if cv, ok := RecognizeConstPattern(nl, f.Stem); ok && cv == f.StuckAt1 {
			continue
		}
		res.ProofsRun++
		if _, outcome := atpg.GenerateTest(nl, f, opts.BacktrackLimit); outcome != atpg.Untestable {
			continue
		}
		ok, err := simplify(nl, f, cc)
		if err != nil {
			return changed, err
		}
		if ok {
			changed++
			res.Removed++
		}
	}
	nl.SweepDead()
	return changed, nil
}

// faultStillCurrent checks the fault site still exists in the evolving
// netlist.
func faultStillCurrent(nl *netlist.Netlist, f atpg.Fault) bool {
	if int(f.Stem) >= nl.NumNodes() || nl.Node(f.Stem).Dead() {
		return false
	}
	if f.IsBranch() {
		if int(f.BranchGate) >= nl.NumNodes() || nl.Node(f.BranchGate).Dead() {
			return false
		}
		g := nl.Node(f.BranchGate)
		if f.BranchPin >= len(g.Fanins()) || g.Fanins()[f.BranchPin] != f.Stem {
			return false
		}
	}
	return true
}

// simplify wires the untestable fault's constant in. The licensed
// rewrite (single-stuck-at redundancy theorem) is: replace the faulty
// line by the constant. To keep the step atomic — folding one branch can
// restructure gates that other branches of the same stem still feed —
// the constant is first materialized as a node and *rewired* in (a pure,
// order-independent edit), and only then are the constant drivers folded
// into their fanout gates, each fold being locally sound on its own.
func simplify(nl *netlist.Netlist, f atpg.Fault, cc *constCache) (bool, error) {
	// Snapshot the affected branches BEFORE materializing the constant:
	// the constant structure may itself read the faulty stem (when it is
	// the first primary input), and those fresh pins must not be rewired.
	var branches []netlist.Branch
	if !f.IsBranch() {
		branches = append(branches, nl.Node(f.Stem).Fanouts()...)
	}
	cn, err := cc.node(nl, f.StuckAt1)
	if err != nil {
		return false, err
	}
	if f.IsBranch() {
		// A reused constant gate may sit inside or downstream of the
		// branch gate; rewiring would then be cyclic — skip the fault
		// (safe: the redundancy simply stays).
		if constCone(nl, cn)[f.BranchGate] || nl.Reaches(f.BranchGate, cn) {
			return false, nil
		}
		if err := nl.ReplaceFanin(f.BranchGate, f.BranchPin, cn); err != nil {
			return false, err
		}
		return true, cc.propagate(nl)
	}
	// Stem fault: every fanout of the stem reads the constant. Primary
	// outputs are redirected too (the theorem covers them; an untestable
	// stem fault on a live PO driver means the stem is that constant).
	//
	// Branches inside the constant's own defining cone are skipped: the
	// constant gate computes its value regardless of those pins (x AND !x
	// is 0 for any x), and its inverter feeds nothing else, so leaving
	// them attached is equivalent to the full replacement — and rewiring
	// them would create cycles.
	inCone := constCone(nl, cn)
	// If any branch gate outside the constant's cone could reach the
	// reused constant, rewiring it would be cyclic, and skipping just that
	// branch would only partially apply the stem rewrite (unsound) — so
	// give up on this fault entirely before mutating anything.
	for _, b := range branches {
		if !b.IsPO() && !inCone[b.Gate] && nl.Reaches(b.Gate, cn) {
			return false, nil
		}
	}
	did := false
	for _, b := range branches {
		if b.IsPO() {
			if err := nl.RedirectOutput(b.Pin, cn); err != nil {
				return false, err
			}
			did = true
			continue
		}
		if inCone[b.Gate] {
			continue
		}
		if err := nl.ReplaceFanin(b.Gate, b.Pin, cn); err != nil {
			return false, err
		}
		did = true
	}
	if !did {
		// Nothing to rewire (e.g. a fanout-free stem): not a change.
		return false, nil
	}
	return true, cc.propagate(nl)
}

// constCone returns the constant gate plus its defining inverter.
func constCone(nl *netlist.Netlist, cn netlist.NodeID) map[netlist.NodeID]bool {
	cone := map[netlist.NodeID]bool{cn: true}
	for _, f := range nl.Node(cn).Fanins() {
		fn := nl.Node(f)
		if fn.Kind() == netlist.KindGate && fn.Cell().IsInverter() {
			cone[f] = true
		}
	}
	return cone
}

// constCache materializes at most one constant-0 and one constant-1 node
// per pass and drives constant propagation.
type constCache struct {
	zero, one    netlist.NodeID
	have0, have1 bool
}

func newConstCache() *constCache {
	return &constCache{zero: netlist.InvalidNode, one: netlist.InvalidNode}
}

func (cc *constCache) node(nl *netlist.Netlist, v bool) (netlist.NodeID, error) {
	if v {
		if !cc.have1 || nl.Node(cc.one).Dead() {
			id, err := findOrBuildConst(nl, true)
			if err != nil {
				return netlist.InvalidNode, err
			}
			cc.one, cc.have1 = id, true
		}
		return cc.one, nil
	}
	if !cc.have0 || nl.Node(cc.zero).Dead() {
		id, err := findOrBuildConst(nl, false)
		if err != nil {
			return netlist.InvalidNode, err
		}
		cc.zero, cc.have0 = id, true
	}
	return cc.zero, nil
}

// findOrBuildConst reuses a canonical constant gate left by an earlier
// round (keeping repeated passes convergent) or builds a fresh one.
func findOrBuildConst(nl *netlist.Netlist, v bool) (netlist.NodeID, error) {
	var found netlist.NodeID = netlist.InvalidNode
	nl.LiveNodes(func(n *netlist.Node) {
		if found != netlist.InvalidNode {
			return
		}
		if cv, ok := RecognizeConstPattern(nl, n.ID()); ok && cv == v {
			found = n.ID()
		}
	})
	if found != netlist.InvalidNode {
		return found, nil
	}
	return constantNode(nl, v)
}

// RecognizeConstPattern reports whether the node is a canonical
// materialized constant: AND2/OR2 over the first primary input and an
// inverter of that same input. Exported for the experiment harness and
// tests.
func RecognizeConstPattern(nl *netlist.Netlist, id netlist.NodeID) (value, ok bool) {
	n := nl.Node(id)
	if n.Dead() || n.Kind() != netlist.KindGate || len(n.Fanins()) != 2 {
		return false, false
	}
	andTT := logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	orTT := logic.TTFromExpr(logic.Or(logic.Var(0), logic.Var(1)), 2)
	var isAnd bool
	switch {
	case n.Cell().TT.Equal(andTT):
		isAnd = true
	case n.Cell().TT.Equal(orTT):
		isAnd = false
	default:
		return false, false
	}
	x, y := n.Fanins()[0], n.Fanins()[1]
	// The inverter side must feed only this gate, so that leaving the
	// pattern attached to a replaced stem stays equivalent (see simplify).
	isDedicatedInvOf := func(g, src netlist.NodeID) bool {
		gn := nl.Node(g)
		return gn.Kind() == netlist.KindGate && gn.Cell().IsInverter() &&
			gn.Fanins()[0] == src && gn.NumFanouts() == 1
	}
	if !(isDedicatedInvOf(y, x) || isDedicatedInvOf(x, y)) {
		return false, false
	}
	return !isAnd, true
}

// valueOf reports whether id is one of the cached constant nodes.
func (cc *constCache) valueOf(id netlist.NodeID) (bool, bool) {
	if cc.have1 && id == cc.one {
		return true, true
	}
	if cc.have0 && id == cc.zero {
		return false, true
	}
	return false, false
}

// propagate folds every gate pin driven by a constant node until none
// remains; each fold replaces one gate by its cofactor, which is sound in
// isolation because the driver genuinely computes the constant. Pins whose
// residual function has no library cell are skipped (the constant stays
// wired, which is functionally correct).
func (cc *constCache) propagate(nl *netlist.Netlist) error {
	type pinKey struct {
		g   netlist.NodeID
		pin int
	}
	skipped := make(map[pinKey]bool)
	for {
		var g netlist.NodeID = netlist.InvalidNode
		pin := -1
		v := false
		nl.LiveNodes(func(n *netlist.Node) {
			if g != netlist.InvalidNode || n.Kind() != netlist.KindGate {
				return
			}
			// Fanout-free gates are dead weight awaiting the sweep; folding
			// them would spin forever since rewiring moves nothing.
			if n.NumFanouts() == 0 {
				return
			}
			// The constant nodes' own structure (x, !x) is not constant-fed.
			if _, ok := cc.valueOf(n.ID()); ok {
				return
			}
			for p, f := range n.Fanins() {
				if skipped[pinKey{n.ID(), p}] {
					continue
				}
				if cv, ok := cc.valueOf(f); ok {
					g, pin, v = n.ID(), p, cv
					return
				}
			}
		})
		if g == netlist.InvalidNode {
			return nil
		}
		// A fold is one-shot: whatever fanouts it could move have moved
		// (cycle-blocked ones legitimately stay behind). Never revisit the
		// pin, or blocked rewires would spin forever.
		skipped[pinKey{g, pin}] = true
		switch err := foldPin(nl, g, pin, v, cc); err {
		case nil, errSkipFold:
		default:
			return err
		}
	}
}

// foldPin replaces gate g by the cofactor of its cell function under pin
// pin = v (the pin's driver is a constant node). Three shapes arise: a
// constant output (fanouts move to the matching constant node), a single
// surviving pin (wire or inverter), or a smaller residual function looked
// up in the library (errSkipFold when absent).
func foldPin(nl *netlist.Netlist, g netlist.NodeID, pin int, v bool, cc *constCache) error {
	n := nl.Node(g)
	cell := n.Cell()
	co := cell.TT.Cofactor(pin, v)

	// Which pins does the cofactor still depend on?
	var deps []int
	for i := 0; i < cell.TT.N; i++ {
		if co.DependsOn(i) {
			deps = append(deps, i)
		}
	}

	switch {
	case len(deps) == 0:
		constant := co.Bits&1 == 1
		cn, err := cc.node(nl, constant)
		if err != nil {
			return err
		}
		return rewireAllFanouts(nl, g, cn)

	case len(deps) == 1:
		src := n.Fanins()[deps[0]]
		identity := true
		inversion := true
		for m := uint(0); m < 1<<uint(cell.TT.N); m++ {
			bit := m>>uint(deps[0])&1 == 1
			if co.Eval(m) != bit {
				identity = false
			}
			if co.Eval(m) == bit {
				inversion = false
			}
		}
		switch {
		case identity:
			return rewireAllFanouts(nl, g, src)
		case inversion:
			inv := nl.Lib.Inverter()
			ng, err := nl.AddGate("", inv, []netlist.NodeID{src})
			if err != nil {
				return err
			}
			return rewireAllFanouts(nl, g, ng)
		default:
			return fmt.Errorf("redundancy: 1-dep cofactor neither wire nor inverter")
		}

	default:
		small := compressTT(co, deps)
		match := nl.Lib.SmallestMatch(small)
		if match == nil {
			// No library cell computes the residual function. The gate
			// keeps reading the constant node — functionally correct, just
			// unsimplified — and propagate() stops retrying this pin.
			return errSkipFold
		}
		fanins := make([]netlist.NodeID, len(deps))
		for i, d := range deps {
			fanins[i] = n.Fanins()[d]
		}
		ng, err := nl.AddGate("", match, fanins)
		if err != nil {
			return err
		}
		return rewireAllFanouts(nl, g, ng)
	}
}

// errSkipFold reports a pin whose residual function has no library cell;
// the constant stays wired (functionally correct) and the pin is skipped.
var errSkipFold = fmt.Errorf("redundancy: no cell for residual cofactor")

// constantNode materializes a constant signal over the first input.
func constantNode(nl *netlist.Netlist, v bool) (netlist.NodeID, error) {
	if len(nl.Inputs()) == 0 {
		return netlist.InvalidNode, fmt.Errorf("redundancy: constant output needs an input")
	}
	x := nl.Inputs()[0]
	inv := nl.Lib.Inverter()
	nx, err := nl.AddGate("", inv, []netlist.NodeID{x})
	if err != nil {
		return netlist.InvalidNode, err
	}
	var tt logic.TT
	if v {
		tt = logic.TTFromExpr(logic.Or(logic.Var(0), logic.Var(1)), 2)
	} else {
		tt = logic.TTFromExpr(logic.And(logic.Var(0), logic.Var(1)), 2)
	}
	cell := nl.Lib.SmallestMatch(tt)
	if cell == nil {
		return netlist.InvalidNode, fmt.Errorf("redundancy: library lacks AND2/OR2")
	}
	return nl.AddGate("", cell, []netlist.NodeID{x, nx})
}

// rewireAllFanouts moves the fanouts of g (including POs) to src, which
// computes the same function as g's replacement. Branches that would
// close a cycle — pins of src itself or of gates upstream of src, which
// can only happen when src is a reused constant gate — are left on g;
// per-branch application is sound because src ≡ g's (new) function.
func rewireAllFanouts(nl *netlist.Netlist, g, src netlist.NodeID) error {
	branches := append([]netlist.Branch(nil), nl.Node(g).Fanouts()...)
	for _, b := range branches {
		if b.IsPO() {
			if err := nl.RedirectOutput(b.Pin, src); err != nil {
				return err
			}
			continue
		}
		if b.Gate == src || nl.Reaches(b.Gate, src) {
			continue
		}
		if err := nl.ReplaceFanin(b.Gate, b.Pin, src); err != nil {
			return err
		}
	}
	return nil
}

// compressTT re-expresses tt over only the dependent variables deps (in
// their given order).
func compressTT(tt logic.TT, deps []int) logic.TT {
	out := logic.TT{N: len(deps)}
	for m := uint(0); m < 1<<uint(len(deps)); m++ {
		var full uint
		for i, d := range deps {
			if m>>uint(i)&1 == 1 {
				full |= 1 << uint(d)
			}
		}
		if tt.Eval(full) {
			out.Bits |= 1 << uint64(m)
		}
	}
	return out
}

package circuits

import (
	"bytes"
	"testing"

	"powder/internal/blif"
	"powder/internal/cellib"
)

func TestSeqFamilyBuilds(t *testing.T) {
	lib := cellib.Lib2()
	for _, s := range SeqAll() {
		m, err := s.Build(lib)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if len(m.Latches) != s.Latches {
			t.Errorf("%s: %d latches, spec says %d", s.Name, len(m.Latches), s.Latches)
		}
		if !m.Sequential() {
			t.Errorf("%s: not sequential", s.Name)
		}
		// The cut must survive a BLIF round trip with its registers.
		var buf bytes.Buffer
		if err := blif.WriteModel(&buf, m); err != nil {
			t.Errorf("%s: write: %v", s.Name, err)
			continue
		}
		back, err := blif.ReadModel(bytes.NewReader(buf.Bytes()), lib)
		if err != nil {
			t.Errorf("%s: reread: %v\n%s", s.Name, err, buf.String())
			continue
		}
		if len(back.Latches) != len(m.Latches) {
			t.Errorf("%s: round trip lost latches", s.Name)
		}
	}
}

func TestSeqByName(t *testing.T) {
	if _, err := SeqByName("counter4"); err != nil {
		t.Fatal(err)
	}
	if _, err := SeqByName("nope"); err == nil {
		t.Fatal("unknown name should fail")
	}
	if got := len(SeqNames()); got != len(SeqAll()) {
		t.Errorf("SeqNames length %d", got)
	}
}

// TestSeqBuildsAreDeterministic pins that two Build calls produce
// identical BLIF — the benchmark suite must be reproducible.
func TestSeqBuildsAreDeterministic(t *testing.T) {
	lib := cellib.Lib2()
	s, err := SeqByName("lfsr5")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	m1, err := s.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := blif.WriteModel(&a, m1); err != nil {
		t.Fatal(err)
	}
	if err := blif.WriteModel(&b, m2); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Build is not deterministic")
	}
}

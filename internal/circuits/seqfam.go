package circuits

import (
	"fmt"

	"powder/internal/blif"
	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/synth"
)

// SeqSpec is one sequential benchmark generator. Build compiles the
// next-state and output logic through the ordinary synthesis flow and
// returns the circuit as a register-boundary cut (blif.Model), the form
// internal/seq consumes.
type SeqSpec struct {
	Name string
	// Kind documents the family member's structure.
	Kind string
	// Latches is the register count.
	Latches int
	Build   func(lib *cellib.Library) (*blif.Model, error)
}

// seqDesign assembles a sequential circuit from a synth.Design whose
// input list is the true primary inputs followed by the state lines, and
// whose output list is the true primary outputs followed by the
// next-state functions — the positional layout blif.Model mandates.
// inits gives each latch's initial value in state order.
func seqDesign(d *synth.Design, numIn, numOut int, inits []int) func(lib *cellib.Library) (*blif.Model, error) {
	return func(lib *cellib.Library) (*blif.Model, error) {
		nStates := len(d.Inputs) - numIn
		if len(inits) != nStates || len(d.Outputs)-numOut != nStates {
			return nil, fmt.Errorf("circuits: %s: inconsistent sequential shape", d.Name)
		}
		nl, err := synth.Compile(d, lib, synth.Options{Seed: seedOf(d.Name)})
		if err != nil {
			return nil, err
		}
		m := &blif.Model{Netlist: nl, NumInputs: numIn, NumOutputs: numOut}
		for i := 0; i < nStates; i++ {
			m.Latches = append(m.Latches, blif.Latch{
				Input:  d.Outputs[numOut+i].Name,
				Output: d.Inputs[numIn+i],
				Kind:   "re",
				// Generated circuits share one global clock.
				Control: "clk",
				Init:    inits[i],
			})
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("circuits: %s: %v", d.Name, err)
		}
		return m, nil
	}
}

func stateNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "q" + itoa(i)
	}
	return names
}

func mux(sel, then, els *logic.Expr) *logic.Expr {
	return logic.Or(logic.And(sel, then), logic.And(logic.Not(sel), els))
}

// seqCounter is an n-bit synchronous binary counter with enable: bit i
// toggles on the carry out of the bits below, wrap observes the full
// carry chain.
func seqCounter(name string, bits int) SeqSpec {
	d := synth.NewDesign(name, append([]string{"en"}, stateNames(bits)...)...)
	en := logic.Var(0)
	q := func(i int) *logic.Expr { return logic.Var(1 + i) }
	carry := en
	next := make([]*logic.Expr, bits)
	for i := 0; i < bits; i++ {
		next[i] = logic.Xor(q(i), carry)
		carry = logic.And(carry, q(i))
	}
	d.AddOutput("wrap", carry)
	for i, e := range next {
		d.AddOutput("n"+itoa(i), e)
	}
	return SeqSpec{
		Name: name, Kind: "counter", Latches: bits,
		Build: seqDesign(d, 1, 1, make([]int, bits)), // init all-zero
	}
}

// seqLFSR is a Fibonacci linear-feedback shift register with enable; taps
// index the state bits XORed into the feedback. Init is the nonzero seed
// state 1000… (the all-zero state is the LFSR's dead fixpoint).
func seqLFSR(name string, bits int, taps []int) SeqSpec {
	d := synth.NewDesign(name, append([]string{"en"}, stateNames(bits)...)...)
	en := logic.Var(0)
	q := func(i int) *logic.Expr { return logic.Var(1 + i) }
	fb := q(taps[0])
	for _, t := range taps[1:] {
		fb = logic.Xor(fb, q(t))
	}
	d.AddOutput("sout", q(bits-1))
	d.AddOutput("n0", mux(en, fb, q(0)))
	for i := 1; i < bits; i++ {
		d.AddOutput("n"+itoa(i), mux(en, q(i-1), q(i)))
	}
	inits := make([]int, bits)
	inits[0] = 1
	return SeqSpec{
		Name: name, Kind: "lfsr", Latches: bits,
		Build: seqDesign(d, 1, 1, inits),
	}
}

// seqShift is an n-bit serial-in shift register with enable; outputs the
// serial tap and the register parity (a wide observation cone).
func seqShift(name string, bits int) SeqSpec {
	d := synth.NewDesign(name, append([]string{"sin", "en"}, stateNames(bits)...)...)
	sin, en := logic.Var(0), logic.Var(1)
	q := func(i int) *logic.Expr { return logic.Var(2 + i) }
	par := q(0)
	for i := 1; i < bits; i++ {
		par = logic.Xor(par, q(i))
	}
	d.AddOutput("sout", q(bits-1))
	d.AddOutput("parity", par)
	d.AddOutput("n0", mux(en, sin, q(0)))
	for i := 1; i < bits; i++ {
		d.AddOutput("n"+itoa(i), mux(en, q(i-1), q(i)))
	}
	inits := make([]int, bits)
	for i := range inits {
		inits[i] = 3 // power-up unknown
	}
	return SeqSpec{
		Name: name, Kind: "shift", Latches: bits,
		Build: seqDesign(d, 2, 2, inits),
	}
}

// seqFSM1011 is the classic overlapping "1011" sequence detector, encoded
// in two state bits (00 start, 01 saw 1, 10 saw 10, 11 saw 101).
func seqFSM1011(name string) SeqSpec {
	d := synth.NewDesign(name, "x", "q0", "q1")
	x, s0, s1 := logic.Var(0), logic.Var(1), logic.Var(2)
	d.AddOutput("detect", logic.And(s1, s0, x))
	// On a 1 every state moves to an odd successor (…1 seen): n0 = x. On a
	// 0: saw-1 and saw-101 fall back to saw-10, the rest restart.
	d.AddOutput("n0", x)
	d.AddOutput("n1", logic.Or(
		logic.And(logic.Not(s1), s0, logic.Not(x)),
		logic.And(s1, logic.Not(s0), x),
		logic.And(s1, s0, logic.Not(x)),
	))
	return SeqSpec{
		Name: name, Kind: "fsm", Latches: 2,
		Build: seqDesign(d, 1, 1, []int{0, 0}),
	}
}

// SeqAll returns the sequential benchmark family in size order.
func SeqAll() []SeqSpec {
	return []SeqSpec{
		seqFSM1011("fsm1011"),
		seqCounter("counter4", 4),
		seqLFSR("lfsr5", 5, []int{4, 2}),
		seqCounter("counter6", 6),
		seqShift("shift8", 8),
	}
}

// SeqByName returns the named sequential spec.
func SeqByName(name string) (SeqSpec, error) {
	for _, s := range SeqAll() {
		if s.Name == name {
			return s, nil
		}
	}
	return SeqSpec{}, fmt.Errorf("circuits: unknown sequential circuit %q", name)
}

// SeqNames lists the sequential benchmark names.
func SeqNames() []string {
	specs := SeqAll()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

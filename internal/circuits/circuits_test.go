package circuits

import (
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sim"
	"powder/internal/synth"
)

func TestAllBuildAndCompile(t *testing.T) {
	lib := cellib.Lib2()
	if len(All()) != 47 {
		t.Fatalf("Table 1 has 47 circuits, got %d", len(All()))
	}
	seen := make(map[string]bool)
	for _, spec := range All() {
		if seen[spec.Name] {
			t.Errorf("duplicate circuit %s", spec.Name)
		}
		seen[spec.Name] = true
		d := spec.Build()
		nl, err := synth.Compile(d, lib, synth.Options{Mode: synth.CostPower})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: invalid netlist: %v", spec.Name, err)
		}
		if nl.GateCount() < 5 {
			t.Errorf("%s: suspiciously small (%d gates)", spec.Name, nl.GateCount())
		}
		if len(nl.Outputs()) != len(d.Outputs) {
			t.Errorf("%s: output count mismatch", spec.Name)
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	lib := cellib.Lib2()
	for _, name := range []string{"frg1", "spla", "apex1"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		nl1, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
		if err != nil {
			t.Fatal(err)
		}
		nl2, err := synth.Compile(spec.Build(), lib, synth.Options{Mode: synth.CostPower})
		if err != nil {
			t.Fatal(err)
		}
		if nl1.GateCount() != nl2.GateCount() || nl1.Area() != nl2.Area() {
			t.Errorf("%s: non-deterministic build", name)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nonexistent"); err == nil {
		t.Errorf("unknown name should fail")
	}
	if len(Names()) != 47 {
		t.Errorf("Names() length wrong")
	}
}

func TestFig6Subset(t *testing.T) {
	sub := Fig6Subset()
	if len(sub) != 18 {
		t.Fatalf("Figure 6 subset must have 18 circuits, got %d", len(sub))
	}
}

// evalDesignOutputs computes output values of a compiled circuit on a
// random vector set and returns a sampler.
func compileAndSim(t *testing.T, name string, words int) (*netlist.Netlist, *sim.Simulator) {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := cellib.Lib2()
	nl, err := synth.Compile(spec.Build(), lib, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl, words)
	return nl, s
}

func TestRd84CountsOnes(t *testing.T) {
	nl, s := compileAndSim(t, "rd84", 4) // 256 = 2^8 exhaustive
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	outs := nl.Outputs()
	for vec := 0; vec < 256; vec++ {
		ones := 0
		for i := 0; i < 8; i++ {
			if vec>>uint(i)&1 == 1 {
				ones++
			}
		}
		got := 0
		for b, po := range outs {
			w := s.Value(po.Driver)
			if w[vec/64]>>uint(vec%64)&1 == 1 {
				got |= 1 << uint(b)
			}
		}
		if got != ones {
			t.Fatalf("rd84(%08b) = %d, want %d", vec, got, ones)
		}
	}
}

func TestNineSymIsSymmetric(t *testing.T) {
	nl, s := compileAndSim(t, "9sym", 8) // 512 = 2^9 exhaustive
	if err := s.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	s.Run()
	w := s.Value(nl.Outputs()[0].Driver)
	for vec := 0; vec < 512; vec++ {
		ones := 0
		for i := 0; i < 9; i++ {
			if vec>>uint(i)&1 == 1 {
				ones++
			}
		}
		want := ones >= 3 && ones <= 6
		got := w[vec/64]>>uint(vec%64)&1 == 1
		if got != want {
			t.Fatalf("9sym(%09b) = %v, want %v (ones=%d)", vec, got, want, ones)
		}
	}
}

func TestComparatorCorrect(t *testing.T) {
	nl, s := compileAndSim(t, "comp", 16)
	s.SetInputsRandom(3, nil)
	s.Run()
	gt := s.Value(nl.Outputs()[0].Driver)
	eq := s.Value(nl.Outputs()[1].Driver)
	lt := s.Value(nl.Outputs()[2].Driver)
	// Reconstruct A and B from the input words per sample.
	rng := rand.New(rand.NewSource(3))
	_ = rng
	for vecW := 0; vecW < 4; vecW++ { // spot check 256 samples
		for bit := 0; bit < 64; bit++ {
			a, b := 0, 0
			for i := 0; i < 8; i++ {
				if s.Value(nl.Inputs()[i])[vecW]>>uint(bit)&1 == 1 {
					a |= 1 << uint(i)
				}
				if s.Value(nl.Inputs()[8+i])[vecW]>>uint(bit)&1 == 1 {
					b |= 1 << uint(i)
				}
			}
			gotGT := gt[vecW]>>uint(bit)&1 == 1
			gotEQ := eq[vecW]>>uint(bit)&1 == 1
			gotLT := lt[vecW]>>uint(bit)&1 == 1
			if gotGT != (a > b) || gotEQ != (a == b) || gotLT != (a < b) {
				t.Fatalf("comp(%d,%d) = gt%v eq%v lt%v", a, b, gotGT, gotEQ, gotLT)
			}
		}
	}
}

func TestAluAddCorrect(t *testing.T) {
	nl, s := compileAndSim(t, "alu2", 16)
	s.SetInputsRandom(7, nil)
	// Force the control bits to ADD (s1=s0=0).
	n := len(nl.Inputs())
	for w := 0; w < s.Words(); w++ {
		s.SetInputWord(nl.Inputs()[n-1], w, 0)
		s.SetInputWord(nl.Inputs()[n-2], w, 0)
	}
	s.Run()
	bits := (n - 2) / 2
	for vecW := 0; vecW < 4; vecW++ {
		for bit := 0; bit < 64; bit++ {
			a, b := 0, 0
			for i := 0; i < bits; i++ {
				if s.Value(nl.Inputs()[i])[vecW]>>uint(bit)&1 == 1 {
					a |= 1 << uint(i)
				}
				if s.Value(nl.Inputs()[bits+i])[vecW]>>uint(bit)&1 == 1 {
					b |= 1 << uint(i)
				}
			}
			got := 0
			for i := 0; i < bits; i++ {
				if s.Value(nl.Outputs()[i].Driver)[vecW]>>uint(bit)&1 == 1 {
					got |= 1 << uint(i)
				}
			}
			if s.Value(nl.Outputs()[bits].Driver)[vecW]>>uint(bit)&1 == 1 {
				got |= 1 << uint(bits)
			}
			if got != a+b {
				t.Fatalf("alu add(%d,%d) = %d", a, b, got)
			}
		}
	}
}

func TestRotatorCorrect(t *testing.T) {
	nl, s := compileAndSim(t, "rot", 8)
	s.SetInputsRandom(11, nil)
	s.Run()
	for vecW := 0; vecW < 2; vecW++ {
		for bit := 0; bit < 64; bit++ {
			data, shift := 0, 0
			for i := 0; i < 16; i++ {
				if s.Value(nl.Inputs()[i])[vecW]>>uint(bit)&1 == 1 {
					data |= 1 << uint(i)
				}
			}
			for i := 0; i < 4; i++ {
				if s.Value(nl.Inputs()[16+i])[vecW]>>uint(bit)&1 == 1 {
					shift |= 1 << uint(i)
				}
			}
			want := (data>>uint(shift) | data<<(16-uint(shift))) & 0xFFFF
			got := 0
			for i := 0; i < 16; i++ {
				if s.Value(nl.Outputs()[i].Driver)[vecW]>>uint(bit)&1 == 1 {
					got |= 1 << uint(i)
				}
			}
			if got != want {
				t.Fatalf("rot(%04x, %d) = %04x, want %04x", data, shift, got, want)
			}
		}
	}
}

func TestT481HasRedundancy(t *testing.T) {
	// The t481 substitute deliberately contains two spellings of the same
	// function; the compiled netlist must therefore be larger than the
	// minimal form, leaving headroom for POWDER.
	lib := cellib.Lib2()
	spec, err := ByName("t481")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := synth.Compile(spec.Build(), lib, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateCount() < 20 {
		t.Errorf("t481 should carry redundancy, got only %d gates", nl.GateCount())
	}
}

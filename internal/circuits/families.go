// Package circuits provides generators for the 47 benchmark circuits of
// the paper's Table 1. Where a circuit's function is public knowledge the
// generator is functionally faithful (rd84, the 9sym family, comparators,
// ALUs, parity/ECC trees, rotators); the remaining MCNC PLAs are replaced
// by seeded synthetic logic of matching shape — same input/output counts
// (scaled down ~2-4x, see DESIGN.md) and comparable gate counts after
// mapping, with deliberate structural redundancy of the kind the POSE flow
// leaves behind and POWDER exploits.
package circuits

import (
	"math/rand"

	"powder/internal/logic"
	"powder/internal/synth"
)

// inputNames returns x0..x{n-1}.
func inputNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "x" + itoa(i)
	}
	return names
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// comparator builds an n-bit magnitude comparator: A > B, A = B, A < B.
func comparator(name string, bits int) *synth.Design {
	d := synth.NewDesign(name, inputNames(2*bits)...)
	a := func(i int) *logic.Expr { return logic.Var(i) }
	b := func(i int) *logic.Expr { return logic.Var(bits + i) }
	// eq[i] = a_i == b_i; gt = OR_i (a_i & !b_i & AND_{j>i} eq_j)
	eqAll := logic.Const(true)
	var gtTerms []*logic.Expr
	for i := bits - 1; i >= 0; i-- {
		gtTerms = append(gtTerms, logic.And(eqAll, a(i), logic.Not(b(i))))
		eqAll = logic.And(eqAll, logic.Not(logic.Xor(a(i), b(i))))
	}
	gt := logic.Or(gtTerms...)
	d.AddOutput("gt", gt)
	d.AddOutput("eq", eqAll)
	d.AddOutput("lt", logic.Not(logic.Or(gt, eqAll)))
	return d
}

// countOnes builds the rd84-style rate circuit: outputs are the binary
// count of ones among the n inputs.
func countOnes(name string, n, outBits int) *synth.Design {
	d := synth.NewDesign(name, inputNames(n)...)
	// Ripple adders over expressions: sum is a vector of expression bits.
	sum := []*logic.Expr{logic.Const(false)}
	for i := 0; i < n; i++ {
		carry := logic.Var(i)
		for b := 0; b < len(sum); b++ {
			s := logic.Xor(sum[b], carry)
			carry = logic.And(sum[b], carry)
			sum[b] = s
		}
		if len(sum) < outBits {
			sum = append(sum, carry)
		}
	}
	for b := 0; b < outBits && b < len(sum); b++ {
		d.AddOutput("s"+itoa(b), sum[b])
	}
	return d
}

// symmetric builds an n-input symmetric function: output 1 iff the number
// of ones is in the member set.
func symmetric(name string, n int, members []int) *synth.Design {
	d := synth.NewDesign(name, inputNames(n)...)
	// Count ones (as in countOnes), then decode membership.
	sum := []*logic.Expr{logic.Const(false)}
	width := 0
	for v := n; v > 0; v >>= 1 {
		width++
	}
	for i := 0; i < n; i++ {
		carry := logic.Var(i)
		for b := 0; b < len(sum); b++ {
			s := logic.Xor(sum[b], carry)
			carry = logic.And(sum[b], carry)
			sum[b] = s
		}
		if len(sum) < width {
			sum = append(sum, carry)
		}
	}
	var terms []*logic.Expr
	for _, m := range members {
		lits := make([]*logic.Expr, len(sum))
		for b := range sum {
			if m>>uint(b)&1 == 1 {
				lits[b] = sum[b]
			} else {
				lits[b] = logic.Not(sum[b])
			}
		}
		terms = append(terms, logic.And(lits...))
	}
	d.AddOutput("f", logic.Or(terms...))
	return d
}

// adderBits ripple-adds two expression vectors, returning sum bits and the
// carry-out.
func adderBits(a, b []*logic.Expr, cin *logic.Expr) ([]*logic.Expr, *logic.Expr) {
	n := len(a)
	sum := make([]*logic.Expr, n)
	c := cin
	for i := 0; i < n; i++ {
		sum[i] = logic.Xor(a[i], b[i], c)
		c = logic.Or(logic.And(a[i], b[i]), logic.And(c, logic.Xor(a[i], b[i])))
	}
	return sum, c
}

// alu builds a small ALU: two n-bit operands, 2 control bits selecting
// ADD / AND / OR / XOR, n+1 outputs (result + carry).
func alu(name string, bits int) *synth.Design {
	nIn := 2*bits + 2
	d := synth.NewDesign(name, inputNames(nIn)...)
	a := make([]*logic.Expr, bits)
	b := make([]*logic.Expr, bits)
	for i := 0; i < bits; i++ {
		a[i] = logic.Var(i)
		b[i] = logic.Var(bits + i)
	}
	s0 := logic.Var(2 * bits)
	s1 := logic.Var(2*bits + 1)
	sum, cout := adderBits(a, b, logic.Const(false))
	selAdd := logic.And(logic.Not(s1), logic.Not(s0))
	selAnd := logic.And(logic.Not(s1), s0)
	selOr := logic.And(s1, logic.Not(s0))
	selXor := logic.And(s1, s0)
	for i := 0; i < bits; i++ {
		out := logic.Or(
			logic.And(selAdd, sum[i]),
			logic.And(selAnd, a[i], b[i]),
			logic.And(selOr, logic.Or(a[i], b[i])),
			logic.And(selXor, logic.Xor(a[i], b[i])),
		)
		d.AddOutput("r"+itoa(i), out)
	}
	d.AddOutput("cout", logic.And(selAdd, cout))
	return d
}

// multiplier builds an n x n array multiplier (f51m flavor).
func multiplier(name string, bits int) *synth.Design {
	d := synth.NewDesign(name, inputNames(2*bits)...)
	// Partial products accumulated by ripple adders.
	acc := make([]*logic.Expr, 2*bits)
	for i := range acc {
		acc[i] = logic.Const(false)
	}
	for j := 0; j < bits; j++ {
		pp := make([]*logic.Expr, 2*bits)
		for i := range pp {
			pp[i] = logic.Const(false)
		}
		for i := 0; i < bits; i++ {
			pp[i+j] = logic.And(logic.Var(i), logic.Var(bits+j))
		}
		acc, _ = adderBits(acc, pp, logic.Const(false))
	}
	for i := 0; i < 2*bits; i++ {
		d.AddOutput("p"+itoa(i), acc[i])
	}
	return d
}

// clip builds the clip-style saturator: a signed n-bit input is clamped to
// outBits magnitude.
func clip(name string, n, outBits int) *synth.Design {
	d := synth.NewDesign(name, inputNames(n)...)
	sign := logic.Var(n - 1)
	// Overflow when any high magnitude bit differs from sign.
	var ovTerms []*logic.Expr
	for i := outBits - 1; i < n-1; i++ {
		ovTerms = append(ovTerms, logic.Xor(logic.Var(i), sign))
	}
	ov := logic.Or(ovTerms...)
	for i := 0; i < outBits-1; i++ {
		// Saturate: on overflow output !sign (max magnitude), else pass.
		out := logic.Or(logic.And(ov, logic.Not(sign)), logic.And(logic.Not(ov), logic.Var(i)))
		d.AddOutput("y"+itoa(i), out)
	}
	d.AddOutput("ysign", sign)
	return d
}

// priorityLogic builds a C432-style interrupt priority circuit: n request
// lines gated by n enables; outputs the highest-priority active line's
// index (one-hot collapsed to binary) plus a busy flag.
func priorityLogic(name string, lines int) *synth.Design {
	d := synth.NewDesign(name, inputNames(2*lines)...)
	req := func(i int) *logic.Expr { return logic.And(logic.Var(i), logic.Var(lines+i)) }
	width := 0
	for v := lines; v > 0; v >>= 1 {
		width++
	}
	higherClear := logic.Const(true)
	outBits := make([]*logic.Expr, width)
	for i := range outBits {
		outBits[i] = logic.Const(false)
	}
	var busyTerms []*logic.Expr
	for i := lines - 1; i >= 0; i-- {
		sel := logic.And(higherClear, req(i))
		busyTerms = append(busyTerms, sel)
		for b := 0; b < width; b++ {
			if i>>uint(b)&1 == 1 {
				outBits[b] = logic.Or(outBits[b], sel)
			}
		}
		higherClear = logic.And(higherClear, logic.Not(req(i)))
	}
	for b := 0; b < width; b++ {
		d.AddOutput("v"+itoa(b), outBits[b])
	}
	d.AddOutput("busy", logic.Or(busyTerms...))
	return d
}

// eccTree builds C1355/C1908-flavor parity logic: data bits plus check
// bits, outputs are syndrome-corrected data (XOR trees with some masking).
func eccTree(name string, dataBits, checkBits int) *synth.Design {
	n := dataBits + checkBits
	d := synth.NewDesign(name, inputNames(n)...)
	// Syndrome s_j = parity over data bits whose index has bit j set,
	// XOR the check bit.
	synd := make([]*logic.Expr, checkBits)
	for j := 0; j < checkBits; j++ {
		var xs []*logic.Expr
		for i := 0; i < dataBits; i++ {
			if (i+1)>>uint(j)&1 == 1 {
				xs = append(xs, logic.Var(i))
			}
		}
		xs = append(xs, logic.Var(dataBits+j))
		synd[j] = logic.Xor(xs...)
	}
	// Corrected data bit i = data_i XOR (syndrome == i+1).
	for i := 0; i < dataBits; i++ {
		lits := make([]*logic.Expr, checkBits)
		for j := 0; j < checkBits; j++ {
			if (i+1)>>uint(j)&1 == 1 {
				lits[j] = synd[j]
			} else {
				lits[j] = logic.Not(synd[j])
			}
		}
		d.AddOutput("d"+itoa(i), logic.Xor(logic.Var(i), logic.And(lits...)))
	}
	return d
}

// rotator builds a barrel rotator: dataBits data inputs, log2 shift
// controls, rotated outputs (the rot benchmark's namesake core).
func rotator(name string, dataBits, shiftBits int) *synth.Design {
	d := synth.NewDesign(name, inputNames(dataBits+shiftBits)...)
	cur := make([]*logic.Expr, dataBits)
	for i := range cur {
		cur[i] = logic.Var(i)
	}
	for s := 0; s < shiftBits; s++ {
		sh := 1 << uint(s)
		sel := logic.Var(dataBits + s)
		next := make([]*logic.Expr, dataBits)
		for i := range next {
			next[i] = logic.Or(
				logic.And(logic.Not(sel), cur[i]),
				logic.And(sel, cur[(i+sh)%dataBits]),
			)
		}
		cur = next
	}
	for i := range cur {
		d.AddOutput("r"+itoa(i), cur[i])
	}
	return d
}

// equivChain builds the t481 substitute: AND of per-pair equivalences,
// which is huge as two-level logic but tiny multi-level.
func equivChain(name string, pairs int) *synth.Design {
	d := synth.NewDesign(name, inputNames(2*pairs)...)
	terms := make([]*logic.Expr, pairs)
	for i := 0; i < pairs; i++ {
		terms[i] = logic.Not(logic.Xor(logic.Var(2*i), logic.Var(2*i+1)))
	}
	// Two redundantly different spellings of the same function, OR-ed:
	// leaves exactly the kind of slack structural transformations recover.
	direct := logic.And(terms...)
	var dup []*logic.Expr
	for i := 0; i < pairs; i++ {
		dup = append(dup, logic.Or(
			logic.And(logic.Var(2*i), logic.Var(2*i+1)),
			logic.And(logic.Not(logic.Var(2*i)), logic.Not(logic.Var(2*i+1))),
		))
	}
	d.AddOutput("f", logic.Or(direct, logic.And(dup...)))
	return d
}

// feistel builds the scaled "des" stand-in: a 3-round toy Feistel network
// over half-width words with 3-bit S-box lookups built from gates.
func feistel(name string, half, keyBits, rounds int) *synth.Design {
	d := synth.NewDesign(name, inputNames(2*half+keyBits)...)
	l := make([]*logic.Expr, half)
	r := make([]*logic.Expr, half)
	for i := 0; i < half; i++ {
		l[i] = logic.Var(i)
		r[i] = logic.Var(half + i)
	}
	key := func(i int) *logic.Expr { return logic.Var(2*half + i%keyBits) }
	for round := 0; round < rounds; round++ {
		f := make([]*logic.Expr, half)
		for i := 0; i < half; i++ {
			a := logic.Xor(r[i], key(i+round))
			b := logic.Xor(r[(i+1)%half], key(i+round+3))
			c := r[(i+5)%half]
			// A small nonlinear mix (3-input S-box-ish).
			f[i] = logic.Xor(logic.And(a, b), logic.Or(logic.And(b, c), logic.And(a, logic.Not(c))))
		}
		newR := make([]*logic.Expr, half)
		for i := 0; i < half; i++ {
			newR[i] = logic.Xor(l[i], f[i])
		}
		l, r = r, newR
	}
	for i := 0; i < half; i++ {
		d.AddOutput("l"+itoa(i), l[i])
		d.AddOutput("r"+itoa(i), r[i])
	}
	return d
}

// randomLogic builds a seeded synthetic multi-level circuit: a pool of
// shared random subfunctions over the inputs, outputs drawn from the pool
// with injected absorbable redundancy (terms like x + x*y), mimicking the
// residual don't-care slack of real optimized PLAs.
func randomLogic(name string, nIn, nOut, depth, poolPerLevel int, seed int64) *synth.Design {
	rng := rand.New(rand.NewSource(seed))
	d := synth.NewDesign(name, inputNames(nIn)...)
	pool := make([]*logic.Expr, 0, nIn+depth*poolPerLevel)
	for i := 0; i < nIn; i++ {
		pool = append(pool, logic.Var(i))
	}
	pick := func() *logic.Expr {
		e := pool[rng.Intn(len(pool))]
		if rng.Intn(3) == 0 {
			return logic.Not(e)
		}
		return e
	}
	for lv := 0; lv < depth; lv++ {
		for k := 0; k < poolPerLevel; k++ {
			var e *logic.Expr
			switch rng.Intn(6) {
			case 0:
				e = logic.And(pick(), pick())
			case 1:
				e = logic.Or(pick(), pick())
			case 2:
				e = logic.Xor(pick(), pick())
			case 3:
				e = logic.And(pick(), pick(), pick())
			case 4:
				e = logic.Or(pick(), pick(), pick())
			default:
				e = logic.Or(logic.And(pick(), pick()), logic.And(pick(), pick()))
			}
			pool = append(pool, e)
		}
	}
	for o := 0; o < nOut; o++ {
		e := pick()
		for rng.Intn(3) != 0 { // combine a few pool signals
			switch rng.Intn(3) {
			case 0:
				e = logic.And(e, pick())
			case 1:
				e = logic.Or(e, pick())
			default:
				e = logic.Xor(e, pick())
			}
		}
		// Injected absorbable redundancy: f + f*g, f ^ 0-shaped terms.
		if rng.Intn(2) == 0 {
			g := pick()
			e = logic.Or(e, logic.And(e, g))
		}
		if rng.Intn(4) == 0 {
			g := pick()
			e = logic.Or(logic.And(e, g), logic.And(e, logic.Not(g)))
		}
		d.AddOutput("o"+itoa(o), e)
	}
	return d
}

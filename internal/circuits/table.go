package circuits

import (
	"fmt"

	"powder/internal/synth"
)

// Spec is one benchmark circuit generator.
type Spec struct {
	// Name matches the paper's Table 1 row.
	Name string
	// Kind documents whether the generator is functionally faithful or a
	// synthetic stand-in (see the package comment).
	Kind string
	// Build constructs the technology-independent design.
	Build func() *synth.Design
}

// seedOf derives a deterministic per-name seed for the synthetic circuits.
func seedOf(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

func synthetic(name string, nIn, nOut, depth, pool int) Spec {
	return Spec{
		Name: name,
		Kind: "synthetic",
		Build: func() *synth.Design {
			return randomLogic(name, nIn, nOut, depth, pool, seedOf(name))
		},
	}
}

func faithful(name, kind string, build func() *synth.Design) Spec {
	return Spec{Name: name, Kind: kind, Build: build}
}

// All returns the 47 benchmark circuits in the paper's Table 1 order.
// Sizes are scaled versus the originals (DESIGN.md); the ordering by
// initial area broadly tracks the paper's.
func All() []Spec {
	return []Spec{
		faithful("comp", "comparator", func() *synth.Design { return comparator("comp", 8) }),
		faithful("Z5xp1", "arithmetic", func() *synth.Design { return multiplier("Z5xp1", 3) }),
		faithful("clip", "saturator", func() *synth.Design { return clip("clip", 9, 5) }),
		synthetic("frg1", 14, 3, 4, 10),
		synthetic("c8", 14, 9, 3, 10),
		synthetic("term1", 17, 7, 3, 12),
		faithful("f51m", "multiplier", func() *synth.Design { return multiplier("f51m", 4) }),
		faithful("rd84", "counter", func() *synth.Design { return countOnes("rd84", 8, 4) }),
		synthetic("bw", 5, 22, 4, 10),
		synthetic("ttt2", 16, 12, 4, 12),
		faithful("C432", "priority", func() *synth.Design { return priorityLogic("C432", 12) }),
		synthetic("i2", 40, 1, 3, 16),
		faithful("Z9sym", "symmetric", func() *synth.Design { return symmetric("Z9sym", 9, []int{3, 4, 5, 6}) }),
		synthetic("apex7", 24, 18, 4, 14),
		faithful("alu4tl", "alu", func() *synth.Design { return alu("alu4tl", 4) }),
		faithful("9sym", "symmetric", func() *synth.Design { return symmetric("9sym", 9, []int{3, 4, 5, 6}) }),
		faithful("9symml", "symmetric", func() *synth.Design { return symmetric("9symml", 9, []int{3, 4, 5, 6}) }),
		synthetic("x1", 22, 15, 4, 14),
		synthetic("example2", 30, 24, 3, 16),
		synthetic("ex5", 8, 24, 4, 12),
		faithful("alu2", "alu", func() *synth.Design { return alu("alu2", 4) }),
		synthetic("x4", 30, 26, 3, 18),
		faithful("C880", "alu", func() *synth.Design { return alu("C880", 8) }),
		faithful("C1355", "ecc", func() *synth.Design { return eccTree("C1355", 16, 5) }),
		synthetic("duke2", 18, 16, 4, 16),
		synthetic("pdc", 14, 22, 4, 14),
		faithful("C1908", "ecc", func() *synth.Design { return eccTree("C1908", 20, 5) }),
		synthetic("ex4", 32, 18, 4, 16),
		faithful("t481", "equivalence", func() *synth.Design { return equivChain("t481", 8) }),
		faithful("rot", "rotator", func() *synth.Design { return rotator("rot", 16, 4) }),
		synthetic("spla", 14, 26, 4, 16),
		synthetic("vda", 15, 22, 4, 16),
		synthetic("misex3", 13, 12, 5, 14),
		synthetic("frg2", 30, 26, 4, 16),
		faithful("alu4", "alu", func() *synth.Design { return alu("alu4", 6) }),
		synthetic("apex6", 32, 26, 4, 18),
		synthetic("x3", 32, 24, 4, 18),
		synthetic("apex5", 30, 22, 4, 18),
		faithful("dalu", "alu", func() *synth.Design { return alu("dalu", 9) }),
		synthetic("i8", 32, 24, 4, 18),
		synthetic("table5", 15, 12, 5, 16),
		synthetic("cps", 20, 26, 4, 18),
		synthetic("k2", 24, 22, 5, 18),
		faithful("C5315", "alu", func() *synth.Design { return alu("C5315", 12) }),
		synthetic("apex1", 22, 24, 5, 18),
		faithful("pair", "paired-arith", func() *synth.Design { return pairArith("pair") }),
		faithful("des", "feistel", func() *synth.Design { return feistel("des", 12, 8, 3) }),
	}
}

// pairArith combines a multiplier and a rotator sharing inputs (the "pair"
// benchmark is two interacting blocks).
func pairArith(name string) *synth.Design {
	mul := multiplier("m", 4)
	rot := rotator("r", 8, 3)
	d := synth.NewDesign(name, inputNames(11)...)
	// Multiplier uses inputs 0..7; rotator uses 0..7 as data and 8..10 as
	// shift controls.
	for _, o := range mul.Outputs {
		d.AddOutput("m_"+o.Name, o.Expr)
	}
	for _, o := range rot.Outputs {
		d.AddOutput("r_"+o.Name, o.Expr)
	}
	return d
}

// ByName returns the named spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("circuits: unknown circuit %q", name)
}

// Names lists all benchmark names in Table 1 order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Fig6Subset returns the 18-circuit subset used for the paper's
// power-delay trade-off experiment (Figure 6): a spread of small and
// medium circuits across the families.
func Fig6Subset() []Spec {
	want := map[string]bool{
		"comp": true, "Z5xp1": true, "clip": true, "frg1": true,
		"term1": true, "f51m": true, "rd84": true, "ttt2": true,
		"C432": true, "Z9sym": true, "alu4tl": true, "x1": true,
		"ex5": true, "alu2": true, "duke2": true, "t481": true,
		"misex3": true, "rot": true,
	}
	var out []Spec
	for _, s := range All() {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"powder/internal/atpg"
	"powder/internal/faultinject"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/partition"
	"powder/internal/power"
	"powder/internal/sta"
	"powder/internal/transform"
)

// The parallel engine runs POWDER as bulk-synchronous rounds:
//
//	round:
//	  partition.Decompose(master, P)            // fanout regions
//	  per region, concurrently on a replica:    // master frozen
//	    harvest (TargetFilter = region) -> AB analysis -> preselect ->
//	    PG_C -> delay check -> incremental permissibility proof ->
//	    apply on the replica, emit a proposal
//	  serially on the master, regions in order:
//	    translate proposal IDs, detect conflicts (proof support set vs
//	    nodes touched by other regions), re-prove conflicted proposals,
//	    re-check delay, apply through the transactional journal
//
// Workers never touch the master netlist: each one clones it (Clone is a
// pure read), estimates its own power model (deterministic, so replica
// values equal the master's), and proves candidates on a per-round
// incremental SAT solver seeded with the shared refuted-miter cache.
//
// Soundness of the conflict rule: a proof's support set (the duplicated
// region plus the fanin closure of everything its miter encoded) contains
// every node whose function or connectivity the verdict depends on. Any
// commit that changes connectivity marks both endpoints of every changed
// edge as touched, so if no support node of a pending proposal is touched
// by another region, the miter the master would build now is isomorphic
// to the one the replica proved, and the verdict carries over. Proposals
// from the same region skip their own region's touches — the replica
// already reflects them — but once one proposal of a region fails to
// commit, the region's chain is broken and every later proposal of that
// region is re-proved.
//
// Determinism: regions commit in region order and proposals in proposal
// order, and decomposition, replica construction, harvesting, and
// selection are all deterministic, so a fixed -par P produces a
// deterministic result up to proof-budget boundary effects (a shared
// cache hit can change how much learning a later borderline proof starts
// with). -par 1 bypasses this engine entirely and is byte-identical to
// the sequential implementation.

// proposal is one region-proven substitution awaiting serial commit. All
// node IDs are in the proposing replica's space, which coincides with the
// master's for nodes that existed at round start; nodes the replica added
// are translated through the region's commit ID map.
type proposal struct {
	sub     *transform.Substitution
	proof   *obs.LedgerProof
	support []netlist.NodeID
	added   []netlist.NodeID // replica IDs of the nodes the replica apply added
}

// workerReport is one region worker's round output, merged into the run
// result on the main goroutine after the round barrier.
type workerReport struct {
	region     int
	proposals  []proposal
	candidates int
	rejects    map[string]int
	stats      atpg.CheckStats
	escal      EscalationStats
	err        error // recovered worker panic
	// start/end bound the worker's busy interval; the master derives
	// utilization, barrier skew, and the retroactive barrier-wait spans
	// from them after the round barrier.
	start, end time.Time
}

// touchMark records which region first touched a node this round; shared
// is set when a second region touches it, after which any support hit
// conflicts regardless of region.
type touchMark struct {
	region int
	shared bool
}

// parRun bundles the run-wide state the round loop and the workers share.
type parRun struct {
	nl         *netlist.Netlist
	opts       *Options
	constraint float64
	sig        *atpg.SigCache
	o          *obs.Observer
	ph         *obs.PhaseSet
	hooks      *faultinject.Hooks
	led        *obs.Ledger
	conf       *obs.ConflictLedger
}

// workerTrack names a region worker's timeline lane; the master's
// commit work renders on masterTrack. Perfetto shows one row per lane.
func workerTrack(region int) string { return fmt.Sprintf("worker-%d", region) }

const masterTrack = "master"

// optimizeParallel is the Parallelism > 1 engine behind OptimizeCtx; see
// the package comment above for the round structure. It mirrors the
// sequential engine's robustness contract: transactional applies with
// rollback on damage, periodic safety-net verification, prompt stops on
// cancellation, and panic recovery restoring the last verified snapshot.
func optimizeParallel(ctx context.Context, nl *netlist.Netlist, opts Options) (res *Result, err error) {
	o := opts.observer()
	opts.Power.Obs = o
	opts.Transform.Obs = o
	ph := obs.NewPhaseSet()
	start := time.Now()

	ctx, optSpan := trace.StartSpan(ctx, "optimize")
	optSpan.SetAttr("circuit", nl.Name)
	optSpan.SetAttr("parallelism", opts.Parallelism)
	defer func() {
		if res != nil {
			optSpan.SetAttr("applied", res.Applied)
			optSpan.SetAttr("harvests", res.Harvests)
			optSpan.SetAttr("stopped", string(res.Stopped))
			optSpan.SetAttr("reduction_pct", res.PowerReductionPct())
		}
		optSpan.End()
	}()

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	res = &Result{
		ByClass: map[transform.Kind]*ClassStats{
			transform.OS2: {}, transform.IS2: {}, transform.OS3: {}, transform.IS3: {},
		},
		Rejects:  map[string]int{},
		Stopped:  StopCompleted,
		Parallel: &ParallelStats{Workers: opts.Parallelism},
	}
	par := res.Parallel

	var led *obs.Ledger
	if opts.LedgerLimit >= 0 {
		led = obs.NewLedger(opts.LedgerLimit)
	}
	var perNodeBefore, perNodeAfter []float64

	input := nl.Clone()
	lastGood := input
	defer func() {
		if r := recover(); r != nil {
			nl.RestoreFrom(lastGood)
			res.Stopped = StopPanic
			res.Runtime = time.Since(start)
			res.Phases = ph.Snapshot()
			res.Ledger = led.Summary()
			func() {
				defer func() { _ = recover() }()
				res.Final = power.Estimate(nl, opts.Power).Snapshot()
				res.FinalDelay = sta.NewObserved(nl, 0, opts.InputDrive, nil).Delay()
			}()
			err = fmt.Errorf("core: recovered panic in optimization: %v (netlist restored to last verified snapshot)", r)
		}
	}()

	_, estSpan := trace.StartSpan(ctx, "power-estimate")
	stop := ph.Start("power-estimate")
	pm := power.Estimate(nl, opts.Power)
	res.Initial = pm.Snapshot()
	stop()
	estSpan.End()
	_, staSpan := trace.StartSpan(ctx, "delay-analysis")
	stop = ph.Start("delay-analysis")
	res.InitialDelay = sta.NewObserved(nl, 0, opts.InputDrive, o).Delay()
	stop()
	staSpan.End()

	constraint := opts.DelayConstraint
	if opts.DelayFactor > 0 {
		constraint = res.InitialDelay * opts.DelayFactor
	}
	res.Constraint = constraint

	reportProgress := func(done bool) {
		if opts.Progress == nil {
			return
		}
		opts.Progress(Progress{
			Applied:      res.Applied,
			Harvests:     res.Harvests,
			Candidates:   res.Candidates,
			InitialPower: res.Initial.Power,
			Power:        pm.Total(),
			Done:         done,
		})
	}
	reportProgress(false)

	pr := &parRun{
		nl:         nl,
		opts:       &opts,
		constraint: constraint,
		sig:        atpg.NewSigCache(),
		o:          o,
		ph:         ph,
		hooks:      opts.Inject,
		led:        led,
		conf:       obs.NewConflictLedger(0),
	}

	// The master checker serves commit-time re-proofs; it reads the
	// netlist at proof time, so one instance covers the whole run.
	checker := atpg.NewChecker(nl)
	checker.Obs = o
	checker.Ctx = ctx
	if opts.CheckBudget > 0 {
		checker.Budget = opts.CheckBudget
	}

	stopRequested := func() bool {
		if ctx.Err() == nil {
			return false
		}
		if res.Stopped == StopCompleted {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				res.Stopped = StopDeadline
			} else {
				res.Stopped = StopCancelled
			}
			o.Emit("stopped", obs.Fields{"reason": string(res.Stopped), "applied": res.Applied})
		}
		return true
	}

	reject := func(reason string, region int, s *transform.Substitution, proof *obs.LedgerProof) {
		res.Rejects[reason]++
		o.Counter("core.rejects." + reason).Inc()
		if s != nil && led != nil {
			led.Record(obs.LedgerAttempt{
				Kind:          s.Kind.String(),
				Target:        s.TargetString(),
				Source:        s.SourceString(),
				PredictedGain: s.Gain(),
				Outcome:       obs.LedgerRejected,
				Reason:        reason,
				Proof:         proof,
				Region:        region + 1,
			})
			o.Counter("core.ledger.attempts").Inc()
		}
		if o.Tracing() {
			f := obs.Fields{"reason": reason, "region": region}
			if s != nil {
				f["kind"] = s.Kind.String()
				f["sub"] = s.String()
			}
			o.Emit("reject", f)
		}
	}

	retriesLeft := opts.MaxRetries
	hooks := opts.Inject
	verifyErr := error(nil)

	var timing *sta.Analysis
	refreshTiming := func() {
		if constraint <= 0 {
			return
		}
		stop := ph.Start("delay-analysis")
		timing = sta.NewObserved(nl, constraint, opts.InputDrive, o)
		stop()
	}
	refreshTiming()

	exhausted := false
	round := 0
	for !exhausted && !stopRequested() {
		round++
		par.Rounds++
		o.Counter("core.par.rounds").Inc()
		baseNodes := netlist.NodeID(nl.NumNodes())
		d := partition.Decompose(nl, opts.Parallelism)
		par.Regions += len(d.Regions)
		rctx, rSpan := trace.StartSpan(ctx, "round")
		rSpan.SetAttr("round", round)
		rSpan.SetAttr("regions", len(d.Regions))

		// Parallel phase: the master is frozen while the region workers
		// harvest and prove on their replicas.
		stop = ph.Start("par-workers")
		parStart := time.Now()
		reports := make([]*workerReport, len(d.Regions))
		var wg sync.WaitGroup
		for i := range d.Regions {
			wg.Add(1)
			go func(region int) {
				defer wg.Done()
				reports[region] = pr.runRegion(rctx, d, region)
			}(i)
		}
		wg.Wait()
		barrier := time.Now()
		stop()

		// Scheduler metrics for the round: per-worker busy time against
		// the capacity the round offered, the spread between the first
		// and last worker to reach the barrier, and — on traced runs —
		// a retroactive barrier-wait span closing out each worker's lane.
		parWall := barrier.Sub(parStart).Seconds()
		tr := trace.FromContext(rctx)
		var roundBusy float64
		var firstEnd, lastEnd time.Time
		for _, rep := range reports {
			if rep == nil || rep.end.IsZero() {
				continue
			}
			roundBusy += rep.end.Sub(rep.start).Seconds()
			if firstEnd.IsZero() || rep.end.Before(firstEnd) {
				firstEnd = rep.end
			}
			if rep.end.After(lastEnd) {
				lastEnd = rep.end
			}
			if tr != nil && barrier.After(rep.end) {
				tr.Log("barrier-wait", workerTrack(rep.region), rSpan.ID(), rep.end, barrier,
					map[string]any{"region": rep.region})
			}
		}
		skew := 0.0
		if !firstEnd.IsZero() {
			skew = lastEnd.Sub(firstEnd).Seconds()
		}
		par.WorkerBusySeconds += roundBusy
		par.ParallelSeconds += parWall
		if skew > par.MaxBarrierSkewSeconds {
			par.MaxBarrierSkewSeconds = skew
		}
		if parWall > 0 {
			o.Histogram("core.par.worker.busy_frac").Observe(roundBusy / (float64(opts.Parallelism) * parWall))
			o.Histogram("core.par.barrier.skew.seconds").Observe(skew)
		}

		res.Harvests++
		roundCandidates, roundProposals := 0, 0
		for _, rep := range reports {
			if rep == nil {
				continue
			}
			if rep.err != nil {
				// The worker only ever touched its replica, so the master
				// is intact; drop the region's round and continue.
				o.Counter("core.par.worker_panics").Inc()
				o.Emit("worker-panic", obs.Fields{"region": rep.region, "error": rep.err.Error()})
				continue
			}
			roundCandidates += rep.candidates
			roundProposals += len(rep.proposals)
			for reason, n := range rep.rejects {
				res.Rejects[reason] += n
			}
			addCheckStats(&res.CheckStats, rep.stats)
			res.Escalation.Retries += rep.escal.Retries
			res.Escalation.Permissible += rep.escal.Permissible
			res.Escalation.Refuted += rep.escal.Refuted
			res.Escalation.Exhausted += rep.escal.Exhausted
		}
		res.Candidates += roundCandidates
		par.Proposals += roundProposals
		rSpan.SetAttr("candidates", roundCandidates)
		rSpan.SetAttr("proposals", roundProposals)
		if roundCandidates == 0 {
			rSpan.End()
			break
		}

		// Serial commit phase, rendered on the master lane: conflict
		// checks, re-proofs, and applies all inherit the track.
		cctx, commitSpan := trace.StartSpan(rctx, "commit")
		commitSpan.SetTrack(masterTrack)
		commitStart := time.Now()
		stop = ph.Start("par-commit")
		touched := make(map[netlist.NodeID]touchMark)
		progress := false
		for _, rep := range reports {
			if rep == nil || rep.err != nil || exhausted {
				continue
			}
			region := rep.region
			idMap := make(map[netlist.NodeID]netlist.NodeID)
			mapID := func(id netlist.NodeID) (netlist.NodeID, bool) {
				if id < baseNodes {
					return id, true
				}
				m, ok := idMap[id]
				return m, ok
			}
			broken := false
			for _, p := range rep.proposals {
				if stopRequested() {
					exhausted = true
					break
				}
				ms, mapOK := mapSub(p.sub, mapID)
				if !mapOK || !candidateValid(nl, ms) {
					reject(RejectStale, region, p.sub, p.proof)
					broken = true
					continue
				}

				// Conflict detection with attribution: the first offending
				// support node names the heatmap cell — which pair of
				// regions collided, over what, and how.
				conflicted := broken
				conflictKind := ""
				if broken {
					conflictKind = "broken-chain"
					pr.recordConflict(region, region, ms.TargetString(), conflictKind)
				} else {
					for _, sid := range p.support {
						m, ok := mapID(sid)
						if !ok {
							conflicted = true
							conflictKind = "stale"
							pr.recordConflict(region, -1, ms.TargetString(), conflictKind)
							break
						}
						if t, hit := touched[m]; hit && (t.shared || t.region != region) {
							conflicted = true
							conflictKind = "touched"
							if t.shared {
								conflictKind = "shared"
							}
							pr.recordConflict(region, t.region, nl.Node(m).Name(), conflictKind)
							break
						}
					}
				}

				pctx, pSpan := trace.StartSpan(cctx, "candidate")
				pSpan.SetAttr("kind", ms.Kind.String())
				pSpan.SetAttr("sub", ms.String())
				pSpan.SetAttr("gain", ms.Gain())
				pSpan.SetAttr("region", region)
				endCandidate := func(outcome string) {
					pSpan.SetAttr("outcome", outcome)
					pSpan.End()
					checker.Ctx = ctx
				}

				proof := p.proof
				if conflicted {
					par.Conflicts++
					o.Counter("core.par.conflicts").Inc()
					pSpan.SetAttr("conflict", true)
					pSpan.SetAttr("conflict_kind", conflictKind)
					// Serial re-proof against the actual master state.
					par.Replays++
					o.Counter("core.par.replays").Inc()
					rpctx, rpSpan := trace.StartSpan(pctx, "re-proof")
					checker.Ctx = rpctx
					stop2 := ph.Start("atpg-check")
					verdict := checkCandidate(checker, ms)
					stop2()
					rpSpan.SetAttr("verdict", verdict.String())
					rpSpan.End()
					dt := checker.LastCheck
					proof = &obs.LedgerProof{
						Conflicts: dt.Conflicts,
						Decisions: dt.Decisions,
						Seconds:   dt.Seconds,
						Budget:    dt.Budget,
					}
					if hooks != nil && hooks.ForceAbort != nil && hooks.ForceAbort(checker.Stats.Checks) {
						verdict = atpg.Aborted
					}
					if verdict == atpg.Aborted && retriesLeft > 0 && ctx.Err() == nil {
						verdict = escalate(pctx, checker, ms, hooks, &retriesLeft, res, ph, o, proof)
					}
					proof.Verdict = verdict.String()
					if verdict != atpg.Permissible {
						reason := RejectRefuted
						if verdict == atpg.Aborted {
							reason = RejectAborted
						}
						reject(reason, region, ms, proof)
						endCandidate(reason)
						broken = true
						continue
					}
				}

				if timing != nil {
					stop2 := ph.Start("delay-check")
					ok := transform.DelayOK(nl, ms, timing)
					stop2()
					if !ok {
						reject(RejectDelay, region, ms, proof)
						endCandidate(RejectDelay)
						broken = true
						continue
					}
				}

				if hooks != nil && hooks.Panic != nil && hooks.Panic(res.Applied) {
					panic(fmt.Sprintf("faultinject: injected panic after %d substitutions", res.Applied))
				}

				// Transactional apply, identical to the sequential engine:
				// PO-signature capture, journal, post-apply validation and
				// re-simulation, rollback on damage.
				var pBefore float64
				if led != nil {
					pBefore = pm.Total()
					perNodeBefore = pm.PerNode(perNodeBefore)
				}
				preTouched := preApplyTouched(nl, ms)
				preSig := poSignatures(pm, nl)
				_, aSpan := trace.StartSpan(pctx, "apply")
				txn := nl.Begin()
				stop2 := ph.Start("apply")
				applyRes, applyErr := transform.ApplySafe(nl, ms)
				stop2()
				reason := RejectApplyConflict
				if applyErr == nil && hooks != nil && hooks.CorruptApply != nil {
					if cerr := hooks.CorruptApply(nl, res.Applied); cerr != nil {
						applyErr = cerr
						reason = RejectRollback
					}
				}
				if applyErr == nil {
					stop2 = ph.Start("validate")
					if verr := nl.Validate(); verr != nil {
						applyErr = verr
						reason = RejectRollback
					}
					stop2()
				}
				if applyErr == nil {
					stop2 = ph.Start("power-resync")
					pm.Resync()
					stop2()
					if !sameSignatures(preSig, poSignatures(pm, nl)) {
						applyErr = fmt.Errorf("core: primary-output signatures changed after apply of %v", ms)
						reason = RejectRollback
					}
				}
				if applyErr != nil {
					txn.Rollback()
					aSpan.SetAttr("outcome", reason)
					aSpan.End()
					stop2 = ph.Start("power-resync")
					pm.Resync()
					stop2()
					reject(reason, region, ms, proof)
					if o.Tracing() {
						o.Emit("rollback", obs.Fields{"sub": ms.String(), "error": applyErr.Error(), "region": region})
					}
					endCandidate(reason)
					broken = true
					continue
				}
				txn.Commit()
				aSpan.SetAttr("outcome", "applied")
				aSpan.End()

				// Extend the region's ID map with the nodes this apply
				// created; the master allocates them in the same order as
				// the replica did.
				if len(applyRes.Added) != len(p.added) {
					broken = true
				} else {
					for i, replicaID := range p.added {
						idMap[replicaID] = applyRes.Added[i]
					}
				}
				markTouched(touched, region, preTouched)
				markTouched(touched, region, postApplyTouched(nl, applyRes))

				if led != nil {
					pAfter := pm.Total()
					perNodeAfter = pm.PerNode(perNodeAfter)
					led.Record(obs.LedgerAttempt{
						Kind:          ms.Kind.String(),
						Target:        ms.TargetString(),
						Source:        ms.SourceString(),
						PredictedGain: ms.Gain(),
						Outcome:       obs.LedgerApplied,
						Proof:         proof,
						PowerBefore:   pBefore,
						PowerAfter:    pAfter,
						RealizedGain:  pBefore - pAfter,
						Cone:          coneDeltas(nl, perNodeBefore, perNodeAfter),
						Region:        region + 1,
					})
					o.Counter("core.ledger.attempts").Inc()
					o.Counter("core.ledger.applied").Inc()
					o.Histogram("core.ledger.realized_gain").Observe(pBefore - pAfter)
				}
				refreshTiming()
				cs := res.ByClass[ms.Kind]
				cs.Count++
				cs.PowerGain += ms.Gain()
				cs.AreaDelta += ms.AreaDelta
				res.Applied++
				progress = true
				o.Counter("core.applied").Inc()
				o.Histogram("core.apply.gain").Observe(ms.Gain())
				if o.Tracing() {
					o.Emit("apply", obs.Fields{
						"sub":        ms.String(),
						"kind":       ms.Kind.String(),
						"gain":       ms.Gain(),
						"area_delta": ms.AreaDelta,
						"applied":    res.Applied,
						"region":     region,
					})
				}
				endCandidate("applied")
				reportProgress(false)
				if opts.MaxSubstitutions > 0 && res.Applied >= opts.MaxSubstitutions {
					res.Stopped = StopMaxSubs
					exhausted = true
					break
				}
				if opts.VerifyEvery > 0 && res.Applied%opts.VerifyEvery == 0 && ctx.Err() == nil {
					svctx, svSpan := trace.StartSpan(ctx, "safety-verify")
					stop2 = ph.Start("safety-verify")
					eq, eqErr := atpg.EquivalentCtx(svctx, input, nl, 0)
					stop2()
					svSpan.End()
					switch {
					case eqErr == nil && eq.Verdict == atpg.Permissible:
						lastGood = nl.Clone()
						res.SafetyRefreshes++
						o.Counter("core.safety.refresh").Inc()
					case eqErr == nil && eq.Verdict == atpg.NotPermissible:
						nl.RestoreFrom(lastGood)
						pm.Resync()
						verifyErr = fmt.Errorf("core: periodic verification refuted equivalence on output %q; restored last verified snapshot", eq.DifferingOutput)
						exhausted = true
					}
					if exhausted {
						break
					}
				}
			}
		}
		stop()
		commitSpan.End()
		rSpan.End()
		commitWall := time.Since(commitStart).Seconds()
		par.CommitSeconds += commitWall
		if parWall+commitWall > 0 {
			o.Histogram("core.par.commit.share").Observe(commitWall / (parWall + commitWall))
		}
		if !progress {
			break
		}
	}

	_, finSpan := trace.StartSpan(ctx, "power-estimate")
	stop = ph.Start("power-estimate")
	res.Final = pm.Snapshot()
	stop()
	finSpan.End()
	_, finStaSpan := trace.StartSpan(ctx, "delay-analysis")
	stop = ph.Start("delay-analysis")
	res.FinalDelay = sta.NewObserved(nl, 0, opts.InputDrive, o).Delay()
	stop()
	finStaSpan.End()
	addCheckStats(&res.CheckStats, checker.Stats)
	par.SigCacheHits, _, _ = pr.sig.Stats()
	if s := pr.conf.Summary(); s.Total > 0 {
		par.ConflictLedger = &s
	}
	o.Histogram("core.par.run.busy_frac").Observe(par.BusyFrac())
	o.Histogram("core.par.run.commit_share").Observe(par.CommitShare())
	stop = ph.Start("validate")
	vErr := nl.Validate()
	stop()
	res.Runtime = time.Since(start)
	res.Phases = ph.Snapshot()
	res.Ledger = led.Summary()
	reportProgress(true)
	if o.Tracing() {
		o.Emit("optimize-done", obs.Fields{
			"applied":         res.Applied,
			"harvests":        res.Harvests,
			"candidates":      res.Candidates,
			"power_initial":   res.Initial.Power,
			"power_final":     res.Final.Power,
			"reduction_pct":   res.PowerReductionPct(),
			"runtime_seconds": res.Runtime.Seconds(),
			"stopped":         string(res.Stopped),
			"rollbacks":       res.Rejects[RejectRollback],
			"escalations":     res.Escalation.Retries,
			"parallelism":     opts.Parallelism,
			"rounds":          par.Rounds,
			"conflicts":       par.Conflicts,
			"replays":         par.Replays,
			"sigcache_hits":   par.SigCacheHits,
		})
	}
	if verifyErr != nil {
		return res, verifyErr
	}
	if vErr != nil {
		nl.RestoreFrom(lastGood)
		return res, fmt.Errorf("core: netlist invalid after optimization: %v (restored last verified snapshot)", vErr)
	}
	return res, nil
}

// runRegion is one region worker's round: harvest, analyze, and prove on
// a private replica, returning the proposals for the commit phase. It
// never touches the master netlist; a panic is contained to the region.
func (pr *parRun) runRegion(ctx context.Context, d *partition.Decomposition, region int) (rep *workerReport) {
	rep = &workerReport{region: region, rejects: map[string]int{}, start: time.Now()}
	defer func() {
		if r := recover(); r != nil {
			rep.err = fmt.Errorf("region %d worker panic: %v", region, r)
			rep.proposals = nil
		}
	}()
	defer func() { rep.end = time.Now() }()
	wctx, wSpan := trace.StartSpan(ctx, "region")
	wSpan.SetTrack(workerTrack(region))
	wSpan.SetAttr("region", region)
	defer wSpan.End()

	opts := pr.opts
	o := pr.o

	// Replica construction: Clone preserves node IDs and the power
	// estimate is deterministic in (netlist, options), so replica node
	// values coincide with the master's.
	_, repSpan := trace.StartSpan(wctx, "replica")
	stop := pr.ph.Start("par-replica")
	replica := pr.nl.Clone()
	powerOpts := opts.Power
	powerOpts.Obs = nil
	rpm := power.Estimate(replica, powerOpts)
	stop()
	repSpan.End()

	an := transform.NewAnalyzer(replica, rpm)
	cfg := opts.Transform
	cfg.TargetFilter = func(id netlist.NodeID) bool { return d.RegionOf(id) == region }
	_, hSpan := trace.StartSpan(wctx, "harvest")
	stop = pr.ph.Start("harvest")
	cands := transform.Generate(replica, rpm, cfg)
	stop()
	hSpan.SetAttr("candidates", len(cands))
	hSpan.End()
	rep.candidates = len(cands)
	wSpan.SetAttr("candidates", len(cands))
	if len(cands) == 0 {
		return rep
	}
	stop = pr.ph.Start("ab-analysis")
	for _, s := range cands {
		an.AnalyzeAB(s)
	}
	stop()

	var timing *sta.Analysis
	if pr.constraint > 0 {
		stop = pr.ph.Start("delay-analysis")
		timing = sta.NewObserved(replica, pr.constraint, opts.InputDrive, nil)
		stop()
	}

	// The incremental checker requires a frozen netlist; it is rebuilt
	// after each replica apply (the shared signature cache and the lazy
	// base-cone encoding keep rebuilds cheap), and its learned clauses
	// serve the runs of consecutive rejections between applies.
	var checker *atpg.IncrementalChecker
	checkerVersion := int64(-1)
	getChecker := func() *atpg.IncrementalChecker {
		if checker == nil || replica.Version() != checkerVersion {
			if checker != nil {
				addCheckStats(&rep.stats, checker.Stats)
			}
			checker = atpg.NewIncrementalChecker(replica)
			checker.Obs = o
			checker.Ctx = wctx
			checker.Sig = pr.sig
			if opts.CheckBudget > 0 {
				checker.Budget = opts.CheckBudget
			}
			checkerVersion = replica.Version()
		}
		return checker
	}
	defer func() {
		if checker != nil {
			addCheckStats(&rep.stats, checker.Stats)
		}
	}()

	reject := func(reason string, s *transform.Substitution, proof *obs.LedgerProof) {
		rep.rejects[reason]++
		o.Counter("core.rejects." + reason).Inc()
		if s != nil && pr.led != nil {
			pr.led.Record(obs.LedgerAttempt{
				Kind:          s.Kind.String(),
				Target:        s.TargetString(),
				Source:        s.SourceString(),
				PredictedGain: s.Gain(),
				Outcome:       obs.LedgerRejected,
				Reason:        reason,
				Proof:         proof,
				Region:        region + 1,
			})
			o.Counter("core.ledger.attempts").Inc()
		}
		if o.Tracing() {
			f := obs.Fields{"reason": reason, "region": region}
			if s != nil {
				f["kind"] = s.Kind.String()
				f["sub"] = s.String()
			}
			o.Emit("reject", f)
		}
	}

	// Each worker gets an independent escalation quota: a shared counter
	// would make worker outcomes depend on scheduling order.
	retriesLeft := opts.MaxRetries

	for repeat := opts.Repeat; repeat > 0 && len(cands) > 0 && ctx.Err() == nil; {
		k := opts.PreselectK
		if opts.DisablePreselect || k > len(cands) {
			k = len(cands)
		}
		stop = pr.ph.Start("preselect")
		partialSelectByGainAB(cands, k)
		stop()
		var best *transform.Substitution
		bestIdx := -1
		for i := 0; i < k; i++ {
			s := cands[i]
			stop = pr.ph.Start("preselect")
			valid := candidateValid(replica, s)
			stop()
			if !valid {
				continue
			}
			stop = pr.ph.Start("pgc-reestimate")
			an.AnalyzeC(s)
			stop()
			if best == nil || s.Gain() > best.Gain() {
				best, bestIdx = s, i
			}
		}
		if best == nil || best.Gain() <= opts.MinGain {
			if best != nil {
				reject(RejectLowGain, best, nil)
			}
			break
		}
		cands = append(cands[:bestIdx], cands[bestIdx+1:]...)

		cctx, cSpan := trace.StartSpan(wctx, "candidate")
		cSpan.SetAttr("kind", best.Kind.String())
		cSpan.SetAttr("sub", best.String())
		cSpan.SetAttr("gain", best.Gain())
		cSpan.SetAttr("region", region)
		endCandidate := func(outcome string) {
			cSpan.SetAttr("outcome", outcome)
			cSpan.End()
		}

		if timing != nil {
			stop = pr.ph.Start("delay-check")
			ok := transform.DelayOK(replica, best, timing)
			stop()
			if !ok {
				reject(RejectDelay, best, nil)
				endCandidate(RejectDelay)
				continue
			}
		}

		c := getChecker()
		pvctx, pvSpan := trace.StartSpan(cctx, "prove")
		c.Ctx = pvctx
		stop = pr.ph.Start("atpg-check")
		verdict, support := checkCandidateInc(c, best)
		stop()
		pvSpan.SetAttr("verdict", verdict.String())
		pvSpan.End()
		c.Ctx = wctx
		dt := c.LastCheck
		proof := &obs.LedgerProof{
			Conflicts: dt.Conflicts,
			Decisions: dt.Decisions,
			Seconds:   dt.Seconds,
			Budget:    dt.Budget,
		}
		if pr.hooks != nil && pr.hooks.ForceAbort != nil && pr.hooks.ForceAbort(c.Stats.Checks) {
			verdict = atpg.Aborted
		}
		if verdict == atpg.Aborted && retriesLeft > 0 && ctx.Err() == nil {
			verdict, support = escalateInc(cctx, c, best, pr.hooks, &retriesLeft, &rep.escal, pr.ph, o, proof)
		}
		proof.Verdict = verdict.String()
		if verdict != atpg.Permissible {
			reason := RejectRefuted
			if verdict == atpg.Aborted {
				reason = RejectAborted
			}
			reject(reason, best, proof)
			endCandidate(reason)
			continue
		}

		// Apply on the replica so later proofs and gains in this region
		// see the updated structure; the master replays the same edit at
		// commit time under the transactional journal.
		stop = pr.ph.Start("apply")
		applyRes, applyErr := transform.ApplySafe(replica, best)
		stop()
		if applyErr != nil {
			reject(RejectApplyConflict, best, proof)
			endCandidate(RejectApplyConflict)
			continue
		}
		stop = pr.ph.Start("power-resync")
		rpm.Resync()
		stop()
		if timing != nil {
			stop = pr.ph.Start("delay-analysis")
			timing = sta.NewObserved(replica, pr.constraint, opts.InputDrive, nil)
			stop()
		}
		an = transform.NewAnalyzer(replica, rpm)
		rep.proposals = append(rep.proposals, proposal{
			sub:     best,
			proof:   proof,
			support: support,
			added:   applyRes.Added,
		})
		endCandidate("proposed")
		repeat--

		stop = pr.ph.Start("ab-analysis")
		kept := cands[:0]
		for _, s := range cands {
			if candidateValid(replica, s) {
				an.AnalyzeAB(s)
				kept = append(kept, s)
			} else {
				rep.rejects[RejectStale]++
				o.Counter("core.rejects." + RejectStale).Inc()
				pr.led.CountReject(RejectStale)
			}
		}
		cands = kept
		stop()
	}
	wSpan.SetAttr("proposals", len(rep.proposals))
	return rep
}

// escalateInc is the worker-side budget-escalation ladder for the
// incremental checker, mirroring escalate() for the one-shot checker.
func escalateInc(ctx context.Context, c *atpg.IncrementalChecker, s *transform.Substitution,
	hooks *faultinject.Hooks, retriesLeft *int, es *EscalationStats, ph *obs.PhaseSet, o *obs.Observer,
	proof *obs.LedgerProof) (atpg.Verdict, []netlist.NodeID) {
	base := c.Budget
	defer func() { c.Budget = base }()
	budget := base
	verdict := atpg.Aborted
	var support []netlist.NodeID
	for step := 0; step < escalationSteps && verdict == atpg.Aborted && *retriesLeft > 0 && ctx.Err() == nil; step++ {
		budget *= escalationFactor
		*retriesLeft--
		es.Retries++
		o.Counter("core.escalation.retries").Inc()
		c.Budget = budget
		ectx, eSpan := trace.StartSpan(ctx, "escalate")
		eSpan.SetAttr("step", step+1)
		eSpan.SetAttr("budget", budget)
		c.Ctx = ectx
		stop := ph.Start("atpg-check")
		verdict, support = checkCandidateInc(c, s)
		stop()
		if proof != nil {
			dt := c.LastCheck
			proof.Conflicts += dt.Conflicts
			proof.Decisions += dt.Decisions
			proof.Seconds += dt.Seconds
			proof.Budget = dt.Budget
			proof.Escalations++
		}
		if hooks != nil && hooks.ForceAbort != nil && hooks.ForceAbort(c.Stats.Checks) {
			verdict = atpg.Aborted
		}
		eSpan.SetAttr("verdict", verdict.String())
		eSpan.End()
	}
	switch verdict {
	case atpg.Permissible:
		es.Permissible++
		o.Counter("core.escalation.permissible").Inc()
	case atpg.NotPermissible:
		es.Refuted++
		o.Counter("core.escalation.refuted").Inc()
	default:
		es.Exhausted++
		o.Counter("core.escalation.exhausted").Inc()
	}
	return verdict, support
}

// checkCandidateInc runs the incremental permissibility proof, returning
// the verdict and the proof's support set.
func checkCandidateInc(c *atpg.IncrementalChecker, s *transform.Substitution) (atpg.Verdict, []netlist.NodeID) {
	if s.IsBranchSub() {
		return c.CheckBranch(s.G, s.Pin, s.Src)
	}
	return c.CheckStem(s.A, s.Src)
}

// addCheckStats folds src into dst.
func addCheckStats(dst *atpg.CheckStats, src atpg.CheckStats) {
	dst.Checks += src.Checks
	dst.Permissible += src.Permissible
	dst.Refuted += src.Refuted
	dst.Aborted += src.Aborted
	dst.Conflicts += src.Conflicts
	dst.Decisions += src.Decisions
}

// mapSub translates a replica-space substitution into master IDs through
// the region's commit ID map. It fails when the substitution references a
// replica node the master never materialized (broken region chain).
func mapSub(s *transform.Substitution, mapID func(netlist.NodeID) (netlist.NodeID, bool)) (*transform.Substitution, bool) {
	ms := *s
	ok := true
	translate := func(id netlist.NodeID) netlist.NodeID {
		if id == netlist.InvalidNode {
			return id
		}
		m, found := mapID(id)
		if !found {
			ok = false
		}
		return m
	}
	ms.A = translate(ms.A)
	if ms.IsBranchSub() {
		ms.G = translate(ms.G)
	}
	ms.Src.B = translate(ms.Src.B)
	if ms.Src.IsThree() {
		ms.Src.C = translate(ms.Src.C)
	}
	if ms.Inv == transform.InvReuse {
		ms.InvNode = translate(ms.InvNode)
	}
	return &ms, ok
}

// preApplyTouched lists the master nodes whose connectivity the pending
// apply will change before the apply runs: the substituted stem, the
// gates of every detached branch, and the signals picking up the moved
// load.
func preApplyTouched(nl *netlist.Netlist, s *transform.Substitution) []netlist.NodeID {
	ids := []netlist.NodeID{s.A, s.Src.B}
	if s.Src.IsThree() {
		ids = append(ids, s.Src.C)
	}
	if s.Inv == transform.InvReuse {
		ids = append(ids, s.InvNode)
	}
	if s.IsBranchSub() {
		ids = append(ids, s.G)
	} else {
		for _, b := range nl.Node(s.A).Fanouts() {
			if !b.IsPO() {
				ids = append(ids, b.Gate)
			}
		}
	}
	return ids
}

// postApplyTouched lists the nodes the apply created or destroyed plus
// their neighbours: added nodes and their fanins, removed nodes and the
// fanins whose fanout lists shrank. Dead nodes keep their fanin lists, so
// this is computable after the sweep.
func postApplyTouched(nl *netlist.Netlist, res *transform.ApplyResult) []netlist.NodeID {
	ids := []netlist.NodeID{res.Source}
	for _, id := range res.Added {
		ids = append(ids, id)
		ids = append(ids, nl.Node(id).Fanins()...)
	}
	for _, id := range res.Removed {
		ids = append(ids, id)
		ids = append(ids, nl.Node(id).Fanins()...)
	}
	return ids
}

// recordConflict attributes one commit conflict: regions are the
// engine's 0-based indices (-1 = unknown other party), translated to
// the ledger's 1-based scheme (0 = master/unknown). Each conflict also
// feeds the labeled par.conflicts{kind} counter family.
func (pr *parRun) recordConflict(region, other int, node, kind string) {
	pr.conf.Record(region+1, other+1, node, kind)
	pr.o.Counter(obs.Labeled("par.conflicts", "kind", kind)).Inc()
}

// markTouched stamps ids as touched by region, upgrading to shared when a
// second region touches the same node.
func markTouched(t map[netlist.NodeID]touchMark, region int, ids []netlist.NodeID) {
	for _, id := range ids {
		if m, ok := t[id]; ok {
			if m.region != region {
				m.shared = true
				t[id] = m
			}
			continue
		}
		t[id] = touchMark{region: region}
	}
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/transform"
)

// bigRandomNetlist builds a wide circuit beyond exhaustive-simulation
// reach, to exercise the sampled-probability and SAT paths at scale.
func bigRandomNetlist(t testing.TB, nIn, nGates int, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lib := cellib.Lib2()
	nl := netlist.New("big", lib)
	var pool []netlist.NodeID
	for i := 0; i < nIn; i++ {
		id, err := nl.AddInput(logic.VarName(i))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21", "oai21", "aoi22", "nand3", "mux2"}
	for i := 0; i < nGates; i++ {
		cell := nl.Lib.Cell(cells[rng.Intn(len(cells))])
		fanins := make([]netlist.NodeID, cell.NumPins())
		for p := range fanins {
			// Bias toward recent signals for realistic depth.
			lo := 0
			if len(pool) > 40 {
				lo = len(pool) - 40
			}
			fanins[p] = pool[lo+rng.Intn(len(pool)-lo)]
		}
		id, err := nl.AddGate("", cell, fanins)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	for i := 0; i < 12; i++ {
		if err := nl.AddOutput("out"+logic.VarName(i), pool[len(pool)-1-i*3]); err != nil {
			t.Fatal(err)
		}
	}
	nl.SweepDead()
	return nl
}

func TestOptimizeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	if raceEnabled {
		// The race detector slows the simulation and SAT kernels ~10x,
		// blowing the wall-clock bound below; the scale probe is only
		// meaningful uninstrumented.
		t.Skip("scale test skipped under the race detector")
	}
	nl := bigRandomNetlist(t, 40, 1200, 5)
	ref := nl.Clone()
	start := time.Now()
	res, err := Optimize(nl, Options{
		MaxSubstitutions: 25, // bound the runtime; this is a scale probe
		Transform:        transform.Config{AllowInverted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("scale: %d gates, %d substitutions, %.1f%% reduction in %s",
		ref.GateCount(), res.Applied, res.PowerReductionPct(), elapsed)
	if elapsed > 5*time.Minute {
		t.Errorf("scale run too slow: %s", elapsed)
	}
	if res.Applied == 0 {
		t.Errorf("no substitutions found on a 1200-gate random circuit")
	}
	// 40 inputs: exhaustive simulation is out of reach, so verify with the
	// SAT equivalence checker.
	eq, err := atpg.Equivalent(ref, nl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Verdict != atpg.Permissible {
		t.Fatalf("scale run broke the circuit: %v (output %s)", eq.Verdict, eq.DifferingOutput)
	}
}

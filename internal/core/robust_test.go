package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"powder/internal/atpg"
	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/faultinject"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/power"
	"powder/internal/synth"
	"powder/internal/transform"
)

func compileBenchmark(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	spec, err := circuits.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := synth.Compile(spec.Build(), cellib.Lib2(), synth.Options{Mode: synth.CostPower})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func mustEquivalent(t *testing.T, input, nl *netlist.Netlist, label string) {
	t.Helper()
	eq, err := atpg.Equivalent(input, nl, 0)
	if err != nil {
		t.Fatalf("%s: equivalence check: %v", label, err)
	}
	if eq.Verdict != atpg.Permissible {
		t.Fatalf("%s: final netlist not equivalent to input (verdict %v, output %q)",
			label, eq.Verdict, eq.DifferingOutput)
	}
}

// TestCorruptedApplyIsRolledBack pins the transactional-apply contract:
// a corruption smuggled into every applied substitution is caught by the
// post-apply re-validation, rolled back, and the run continues without
// ever committing a broken netlist.
func TestCorruptedApplyIsRolledBack(t *testing.T) {
	nl := redundantCircuit(t)
	ref := nl.Clone()
	capture := obs.NewCaptureSink()
	res, err := Optimize(nl, Options{
		Transform: transform.Config{AllowInverted: true},
		Inject:    &faultinject.Hooks{CorruptApply: faultinject.CorruptEveryApply(0, 1)},
		Obs:       obs.New(capture, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 {
		t.Errorf("Applied = %d with every apply corrupted, want 0", res.Applied)
	}
	if res.Rejects[RejectRollback] == 0 {
		t.Fatalf("no rollback rejects recorded: %v", res.Rejects)
	}
	if n := capture.Count("rollback"); n == 0 {
		t.Errorf("no rollback events emitted")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid after rollbacks: %v", err)
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatal("rolled-back run changed the circuit function")
	}
}

// TestIntermittentCorruptionOnBenchmarks is the acceptance scenario:
// on two example circuits, intermittently corrupt applied substitutions;
// the corrupted ones must roll back, the clean ones must commit, and the
// final netlist must be proven equivalent to the input.
func TestIntermittentCorruptionOnBenchmarks(t *testing.T) {
	for _, name := range []string{"clip", "t481"} {
		nl := compileBenchmark(t, name)
		input := nl.Clone()
		res, err := Optimize(nl, Options{
			Power:     powerOptsSmall(),
			Transform: transform.Config{AllowInverted: true},
			Inject:    &faultinject.Hooks{CorruptApply: faultinject.CorruptEveryApply(0, 2)},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rejects[RejectRollback] == 0 {
			t.Errorf("%s: corruption never triggered a rollback: %v", name, res.Rejects)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: invalid netlist: %v", name, err)
		}
		mustEquivalent(t, input, nl, name)
	}
}

// TestInjectedPanicRestoresLastGood pins the safety net: a panic in the
// optimization path is recovered, reported as an error with StopPanic,
// and the netlist comes back as the last snapshot proven equivalent to
// the input.
func TestInjectedPanicRestoresLastGood(t *testing.T) {
	for _, name := range []string{"t481", "comp"} {
		nl := compileBenchmark(t, name)
		input := nl.Clone()
		res, err := Optimize(nl, Options{
			Power:       powerOptsSmall(),
			Transform:   transform.Config{AllowInverted: true},
			VerifyEvery: 1, // refresh last-good after every apply
			Inject:      &faultinject.Hooks{Panic: faultinject.PanicAfter(2)},
		})
		if err == nil {
			t.Fatalf("%s: injected panic did not surface as an error", name)
		}
		if res == nil || res.Stopped != StopPanic {
			t.Fatalf("%s: Stopped = %v, want %v (err %v)", name, res.Stopped, StopPanic, err)
		}
		if res.SafetyRefreshes == 0 {
			t.Errorf("%s: safety net never refreshed with VerifyEvery=1", name)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: restored netlist invalid: %v", name, err)
		}
		mustEquivalent(t, input, nl, name)
	}
}

// TestForcedAbortsEscalate pins the adaptive proof budgets: verdicts
// forced to Aborted are retried with escalated budgets under the
// MaxRetries quota, recover to real verdicts, and the stats record it.
func TestForcedAbortsEscalate(t *testing.T) {
	nl := redundantCircuit(t)
	ref := nl.Clone()
	capture := obs.NewCaptureSink()
	res, err := Optimize(nl, Options{
		MaxRetries: 8,
		Transform:  transform.Config{AllowInverted: true},
		Inject:     &faultinject.Hooks{ForceAbort: faultinject.AbortFirstN(2)},
		Obs:        obs.New(capture, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalation.Retries == 0 {
		t.Fatalf("forced aborts never escalated: %+v", res.Escalation)
	}
	if res.Escalation.Permissible+res.Escalation.Refuted == 0 {
		t.Errorf("escalation never reached a real verdict: %+v", res.Escalation)
	}
	if n := capture.Count("escalate"); n == 0 {
		t.Errorf("no escalate events emitted")
	}
	if res.Applied == 0 {
		t.Errorf("escalated run applied nothing")
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatal("escalated run changed the circuit function")
	}
}

// TestNoRetriesMeansAbortsReject pins the quota-off behavior: with
// MaxRetries 0 a forced abort is rejected outright, as in the paper.
func TestNoRetriesMeansAbortsReject(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{
		Transform: transform.Config{AllowInverted: true},
		Inject:    &faultinject.Hooks{ForceAbort: faultinject.AbortFirstN(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalation.Retries != 0 {
		t.Errorf("escalation ran with MaxRetries = 0: %+v", res.Escalation)
	}
	if res.Rejects[RejectAborted] == 0 {
		t.Errorf("forced abort was not rejected: %v", res.Rejects)
	}
}

// TestDeadlineStopsRunCleanly pins the Timeout contract at the engine
// level: the run ends well within 2x the deadline, reports StopDeadline,
// and hands back a valid netlist equivalent to the input.
func TestDeadlineStopsRunCleanly(t *testing.T) {
	nl := compileBenchmark(t, "C880")
	input := nl.Clone()
	const deadline = 50 * time.Millisecond
	start := time.Now()
	res, err := Optimize(nl, Options{
		Power:     powerOptsSmall(),
		Timeout:   deadline,
		Transform: transform.Config{AllowInverted: true},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopDeadline {
		t.Fatalf("Stopped = %v, want %v (elapsed %v, applied %d)", res.Stopped, StopDeadline, elapsed, res.Applied)
	}
	if !res.StoppedEarly() {
		t.Error("StoppedEarly() = false on a deadline stop")
	}
	// Generous slack over the 2x-deadline acceptance bound: the run may
	// finish one in-flight phase, but must not run to completion.
	if elapsed > 5*time.Second {
		t.Errorf("run took %v against a %v deadline", elapsed, deadline)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid after deadline stop: %v", err)
	}
	mustEquivalent(t, input, nl, "C880")
}

// TestCancelledContextStopsRun pins the Ctrl-C path: an
// already-cancelled context yields StopCancelled with zero applies and
// an untouched netlist.
func TestCancelledContextStopsRun(t *testing.T) {
	nl := redundantCircuit(t)
	ref := nl.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeCtx(ctx, nl, Options{Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopCancelled {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, StopCancelled)
	}
	if res.Applied != 0 {
		t.Errorf("Applied = %d under a pre-cancelled context", res.Applied)
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatal("cancelled run changed the circuit")
	}
}

// TestPeriodicVerificationRefreshes pins that clean runs advance the
// last-good snapshot and count the refreshes.
func TestPeriodicVerificationRefreshes(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{
		VerifyEvery: 1,
		Transform:   transform.Config{AllowInverted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied == 0 {
		t.Fatal("run applied nothing; refresh path untested")
	}
	if res.SafetyRefreshes == 0 {
		t.Errorf("SafetyRefreshes = 0 with VerifyEvery = 1 and %d applies", res.Applied)
	}
}

// TestRandomCircuitsUnderInjection sweeps random circuits with mixed
// fault injection, checking the engine never emits a non-equivalent or
// invalid netlist no matter what is thrown at it.
func TestRandomCircuitsUnderInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 5; trial++ {
		nl := randomNetlist(t, rng, 6, 18)
		ref := nl.Clone()
		_, err := Optimize(nl, Options{
			MaxRetries:  4,
			VerifyEvery: 2,
			Transform:   transform.Config{AllowInverted: true},
			Inject: &faultinject.Hooks{
				CorruptApply: faultinject.CorruptEveryApply(0, 3),
				ForceAbort:   faultinject.AbortFirstN(1),
			},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("trial %d: invalid netlist: %v", trial, err)
		}
		if !exhaustiveEqual(t, ref, nl) {
			t.Fatalf("trial %d: function changed under injection", trial)
		}
	}
}

// powerOptsSmall keeps benchmark-circuit runs fast in tests.
func powerOptsSmall() power.Options {
	return power.Options{Words: 16, Seed: 1}
}

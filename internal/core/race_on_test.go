//go:build race

package core

// raceEnabled reports whether the binary was built with -race; used to
// skip wall-clock-bounded scale probes that the detector slows ~10x.
const raceEnabled = true

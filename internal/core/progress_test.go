package core

import (
	"testing"

	"powder/internal/transform"
)

func TestProgressCallback(t *testing.T) {
	nl := redundantCircuit(t)
	var snaps []Progress
	res, err := Optimize(nl, Options{
		Transform: transform.Config{AllowInverted: true},
		Progress:  func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied == 0 {
		t.Fatal("expected substitutions on the redundant circuit")
	}
	// One initial snapshot, one per apply, one final.
	if want := res.Applied + 2; len(snaps) != want {
		t.Fatalf("got %d progress callbacks, want %d (applied=%d)", len(snaps), want, res.Applied)
	}
	first, last := snaps[0], snaps[len(snaps)-1]
	if first.Applied != 0 || first.Done {
		t.Fatalf("first snapshot = %+v, want applied=0 done=false", first)
	}
	if first.InitialPower != res.Initial.Power || first.Power != res.Initial.Power {
		t.Fatalf("first snapshot power = %+v, want initial power %v", first, res.Initial.Power)
	}
	if !last.Done || last.Applied != res.Applied {
		t.Fatalf("last snapshot = %+v, want done=true applied=%d", last, res.Applied)
	}
	if last.Power >= first.Power {
		t.Fatalf("final progress power %v not below initial %v", last.Power, first.Power)
	}
	// Applied must be monotonic and intermediate snapshots not Done.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Applied < snaps[i-1].Applied {
			t.Fatalf("applied went backwards at %d: %+v -> %+v", i, snaps[i-1], snaps[i])
		}
		if i < len(snaps)-1 && snaps[i].Done {
			t.Fatalf("intermediate snapshot %d marked done", i)
		}
	}
}

func TestProgressCallbackNilSafe(t *testing.T) {
	nl := redundantCircuit(t)
	if _, err := Optimize(nl, Options{Transform: transform.Config{AllowInverted: true}}); err != nil {
		t.Fatal(err)
	}
}

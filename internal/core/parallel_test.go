package core

import (
	"testing"

	"powder/internal/faultinject"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/transform"
)

// TestParallelMatchesSequential: the parallel engine must preserve
// function (proved by the same ATPG machinery the engine uses internally,
// on an independent checker) and land within estimator tolerance of the
// sequential engine's final power on a real Table-1 circuit.
func TestParallelMatchesSequential(t *testing.T) {
	seqNl := compileBenchmark(t, "comp")
	parNl := seqNl.Clone()
	input := seqNl.Clone()

	seqRes, err := Optimize(seqNl, Options{Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Optimize(parNl, Options{
		Parallelism: 4,
		Transform:   transform.Config{AllowInverted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustEquivalent(t, input, parNl, "comp -par 4")

	if parRes.Parallel == nil {
		t.Fatal("parallel run carries no ParallelStats")
	}
	if parRes.Parallel.Rounds < 1 || parRes.Parallel.Workers != 4 {
		t.Fatalf("stats: %+v", parRes.Parallel)
	}
	if parRes.Applied == 0 {
		t.Fatal("parallel run applied nothing on comp")
	}
	if seqRes.Parallel != nil {
		t.Fatal("sequential run carries ParallelStats")
	}

	// Different application orders legitimately pick different greedy
	// paths; both engines must still deliver a real reduction, and the
	// parallel result must stay within tolerance of the sequential one.
	if parRes.Final.Power >= parRes.Initial.Power {
		t.Fatalf("parallel run did not reduce power: %.4f -> %.4f",
			parRes.Initial.Power, parRes.Final.Power)
	}
	if parRes.Final.Power > seqRes.Final.Power*1.05 {
		t.Fatalf("parallel final power %.4f vs sequential %.4f (>5%% worse)",
			parRes.Final.Power, seqRes.Final.Power)
	}
}

// TestParallelSequentialPathUntouched: Parallelism values <= 1 must take
// the sequential engine verbatim (same result, no parallel stats), which
// is what makes `-par 1` byte-identical to pre-parallel builds.
func TestParallelSequentialPathUntouched(t *testing.T) {
	a := compileBenchmark(t, "clip")
	b := a.Clone()
	ra, err := Optimize(a, Options{Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Optimize(b, Options{Parallelism: 1, Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Parallel != nil {
		t.Fatal("-par 1 took the parallel engine")
	}
	if ra.Applied != rb.Applied || ra.Final.Power != rb.Final.Power {
		t.Fatalf("-par 1 diverged: applied %d/%d power %.6f/%.6f",
			ra.Applied, rb.Applied, ra.Final.Power, rb.Final.Power)
	}
	if !exhaustiveEqual(t, a, b) {
		t.Fatal("-par 1 and sequential netlists differ")
	}
}

// TestParallelDeterministic: a fixed -par P run commits regions in a
// deterministic order, so two runs from identical inputs agree.
func TestParallelDeterministic(t *testing.T) {
	a := compileBenchmark(t, "clip")
	b := a.Clone()
	opts := func() Options {
		return Options{Parallelism: 4, Transform: transform.Config{AllowInverted: true}}
	}
	ra, err := Optimize(a, opts())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Optimize(b, opts())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Applied != rb.Applied || ra.Final.Power != rb.Final.Power {
		t.Fatalf("two -par 4 runs diverged: applied %d/%d power %.6f/%.6f",
			ra.Applied, rb.Applied, ra.Final.Power, rb.Final.Power)
	}
	if !exhaustiveEqual(t, a, b) {
		t.Fatal("two -par 4 runs produced different netlists")
	}
}

// TestParallelCorruptedCommitRollsBack is the conflict/rollback hammer:
// fault injection corrupts every second commit, which the journaled apply
// must catch and roll back; the broken-chain rule then forces serial
// re-proofs of the region's later proposals. The run must stay
// functionally intact and still reduce power. Run under -race this also
// exercises worker isolation.
func TestParallelCorruptedCommitRollsBack(t *testing.T) {
	nl := compileBenchmark(t, "comp")
	input := nl.Clone()
	capture := obs.NewCaptureSink()
	// Corrupt every other commit by call count (the commit phase is
	// serial, so a plain counter is race-free); the stock
	// CorruptEveryApply keys on the applied count, which a rollback never
	// advances, and would therefore corrupt every commit forever.
	calls := 0
	corrupt := func(nl *netlist.Netlist, applied int) error {
		calls++
		if calls%2 == 1 {
			return faultinject.InvertOutput(nl, 0)
		}
		return nil
	}
	res, err := Optimize(nl, Options{
		Parallelism: 8,
		VerifyEvery: 2,
		Transform:   transform.Config{AllowInverted: true},
		Inject:      &faultinject.Hooks{CorruptApply: corrupt},
		Obs:         obs.New(capture, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects[RejectRollback] == 0 {
		t.Fatal("no rollbacks despite injected corruption")
	}
	if res.Applied == 0 {
		t.Fatal("nothing survived the corruption hammer")
	}
	mustEquivalent(t, input, nl, "comp -par 8 corrupted")
	if res.Final.Power >= res.Initial.Power {
		t.Fatalf("no reduction under rollback hammer: %.4f -> %.4f",
			res.Initial.Power, res.Final.Power)
	}
	if res.Parallel == nil || res.Parallel.Rounds == 0 {
		t.Fatalf("missing parallel stats: %+v", res.Parallel)
	}
}

// TestParallelTinyCircuit: more workers than useful regions must degrade
// gracefully (regions <= parallelism, possibly 1) and still optimize.
func TestParallelTinyCircuit(t *testing.T) {
	nl := redundantCircuit(t)
	ref := nl.Clone()
	res, err := Optimize(nl, Options{
		Parallelism: 8,
		Transform:   transform.Config{AllowInverted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied == 0 {
		t.Fatal("nothing applied on the redundant circuit")
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatal("tiny parallel run broke function")
	}
}

// Package core implements POWDER, the paper's power optimization algorithm
// (Figure 5): a greedy sequence of permissible signal substitutions, each
// selected for maximum estimated power gain, optionally under a delay
// constraint.
//
// One optimization round:
//
//	power_estimate(netlist)
//	do {
//	  cand = get_candidate_substitutions(netlist)      // transform.Generate
//	  while repeat > 0 && cand != {} {
//	    good = select_power_red_subst(cand)            // PG_A+PG_B pre-select, PG_C reestimate
//	    if increases_delay(good) continue              // transform.DelayOK
//	    if !check_candidate(good) continue             // atpg.Checker (abort => reject)
//	    perform_substitution(good)                     // transform.Apply
//	    power_estimate_update(good)                    // power.Model refresh
//	  }
//	} while cand != {}
package core

import (
	"fmt"
	"time"

	"powder/internal/atpg"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/power"
	"powder/internal/sta"
	"powder/internal/transform"
)

// Options configures one POWDER run.
type Options struct {
	// DelayConstraint is an absolute required time at the primary outputs;
	// <= 0 disables it unless DelayFactor is set.
	DelayConstraint float64
	// DelayFactor, when positive, sets the constraint to
	// initial_delay * DelayFactor (1.0 reproduces the paper's "with delay
	// constraints" mode; 1.2 allows a 20% delay increase, matching the
	// labels of the paper's Figure 6).
	DelayFactor float64
	// Repeat is the number of substitutions performed per candidate
	// harvest (the paper's `repeat` parameter). Default 10.
	Repeat int
	// PreselectK is how many of the best PG_A+PG_B candidates receive the
	// expensive PG_C reestimation per selection. Default 12.
	PreselectK int
	// DisablePreselect reestimates PG_C for every candidate (the ablation
	// of the paper's pre-selection heuristic).
	DisablePreselect bool
	// MinGain is the smallest acceptable power gain; selection stops when
	// no candidate exceeds it. Default 1e-9.
	MinGain float64
	// MaxSubstitutions caps the total number of performed substitutions
	// (0 = unlimited).
	MaxSubstitutions int
	// CheckBudget is the conflict budget per permissibility proof
	// (0 = checker default). Budget exhaustion rejects the candidate.
	CheckBudget int64
	// InputDrive is the drive resistance assumed for primary inputs in the
	// timing model; extra load on an input then shifts its arrival time.
	// Zero models ideal input drivers.
	InputDrive float64
	// Power configures the probability estimation.
	Power power.Options
	// Transform configures candidate generation.
	Transform transform.Config
	// Obs, when non-nil, receives structured run events (harvest, check,
	// apply, reject with reason codes) and per-phase metrics. A nil
	// observer disables all event construction at near-zero cost.
	Obs *obs.Observer
	// Trace, when non-nil, receives one line per performed substitution.
	// Deprecated compatibility adapter: it is wired onto the event sink;
	// prefer Obs for structured events.
	Trace func(string)
}

// observer returns the effective observer: Obs, plus the legacy Trace
// callback adapted as a sink that renders apply events in the historical
// "apply <substitution>" line format.
func (o *Options) observer() *obs.Observer {
	eff := o.Obs
	if o.Trace != nil {
		tr := o.Trace
		eff = obs.Tee(eff, obs.New(obs.SinkFunc(func(e obs.Event) {
			if e.Name == "apply" {
				tr(fmt.Sprintf("apply %v", e.Fields["sub"]))
			}
		}), nil))
	}
	return eff
}

func (o *Options) normalize() {
	if o.Repeat <= 0 {
		o.Repeat = 10
	}
	if o.PreselectK <= 0 {
		o.PreselectK = 12
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-9
	}
}

// ClassStats aggregates the effect of one substitution class, feeding the
// paper's Table 2.
type ClassStats struct {
	Count     int
	PowerGain float64
	AreaDelta float64
}

// Reject reason codes recorded in Result.Rejects and emitted on "reject"
// events.
const (
	// RejectStale marks candidates invalidated by an earlier substitution
	// (nodes removed or rewired, or a cycle would form).
	RejectStale = "stale"
	// RejectLowGain marks the selection stopping because the best
	// remaining candidate's gain fell below MinGain.
	RejectLowGain = "low-gain"
	// RejectDelay marks candidates that would violate the delay
	// constraint.
	RejectDelay = "delay"
	// RejectRefuted marks candidates the exact ATPG check disproved.
	RejectRefuted = "refuted"
	// RejectAborted marks candidates whose proof exhausted the budget
	// (treated as not permissible, per the paper).
	RejectAborted = "aborted"
	// RejectApplyConflict marks candidates whose application failed due a
	// structural conflict with an earlier substitution.
	RejectApplyConflict = "apply-conflict"
)

// Result summarizes an optimization run.
type Result struct {
	Initial      power.Report
	Final        power.Report
	InitialDelay float64
	FinalDelay   float64
	Constraint   float64 // 0 when unconstrained
	Applied      int
	Harvests     int
	Candidates   int // total candidates examined across harvests
	ByClass      map[transform.Kind]*ClassStats
	CheckStats   atpg.CheckStats
	Runtime      time.Duration
	// Phases is the wall-time breakdown of the run; its total accounts
	// for nearly all of Runtime.
	Phases obs.Phases
	// Rejects counts discarded candidates by reason code (the Reject*
	// constants).
	Rejects map[string]int
}

// PowerReductionPct returns the percentage power reduction.
func (r *Result) PowerReductionPct() float64 {
	if r.Initial.Power == 0 {
		return 0
	}
	return 100 * (r.Initial.Power - r.Final.Power) / r.Initial.Power
}

// AreaChangePct returns the percentage area change (negative = smaller).
func (r *Result) AreaChangePct() float64 {
	if r.Initial.Area == 0 {
		return 0
	}
	return 100 * (r.Final.Area - r.Initial.Area) / r.Initial.Area
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("power %.3f -> %.3f (-%.1f%%), area %.0f -> %.0f, delay %.2f -> %.2f, %d substitutions",
		r.Initial.Power, r.Final.Power, r.PowerReductionPct(),
		r.Initial.Area, r.Final.Area, r.InitialDelay, r.FinalDelay, r.Applied)
}

// Optimize runs POWDER on the netlist in place and returns the run summary.
//
// The run is observable end to end: Result.Phases breaks the wall time
// into the pipeline phases (power-estimate, delay-analysis, harvest,
// ab-analysis, preselect, pgc-reestimate, delay-check, atpg-check, apply,
// power-resync, validate), Result.Rejects counts discarded candidates by
// reason code, and Options.Obs streams structured events while the run
// executes.
func Optimize(nl *netlist.Netlist, opts Options) (*Result, error) {
	opts.normalize()
	o := opts.observer()
	opts.Power.Obs = o
	opts.Transform.Obs = o
	ph := obs.NewPhaseSet()
	start := time.Now()

	stop := ph.Start("power-estimate")
	pm := power.Estimate(nl, opts.Power)
	res := &Result{
		Initial: pm.Snapshot(),
		ByClass: map[transform.Kind]*ClassStats{
			transform.OS2: {}, transform.IS2: {}, transform.OS3: {}, transform.IS3: {},
		},
		Rejects: map[string]int{},
	}
	stop()
	stop = ph.Start("delay-analysis")
	res.InitialDelay = sta.NewObserved(nl, 0, opts.InputDrive, o).Delay()
	stop()

	constraint := opts.DelayConstraint
	if opts.DelayFactor > 0 {
		constraint = res.InitialDelay * opts.DelayFactor
	}
	res.Constraint = constraint

	checker := atpg.NewChecker(nl)
	checker.Obs = o
	if opts.CheckBudget > 0 {
		checker.Budget = opts.CheckBudget
	}

	reject := func(reason string, s *transform.Substitution) {
		res.Rejects[reason]++
		o.Counter("core.rejects." + reason).Inc()
		if o.Tracing() {
			f := obs.Fields{"reason": reason}
			if s != nil {
				f["kind"] = s.Kind.String()
				f["sub"] = s.String()
			}
			o.Emit("reject", f)
		}
	}

	exhausted := false
	for !exhausted {
		an := transform.NewAnalyzer(nl, pm)
		stop = ph.Start("harvest")
		cands := transform.Generate(nl, pm, opts.Transform)
		stop()
		res.Harvests++
		res.Candidates += len(cands)
		if len(cands) == 0 {
			break
		}
		stop = ph.Start("ab-analysis")
		for _, s := range cands {
			an.AnalyzeAB(s)
		}
		stop()

		var timing *sta.Analysis
		if constraint > 0 {
			stop = ph.Start("delay-analysis")
			timing = sta.NewObserved(nl, constraint, opts.InputDrive, o)
			stop()
		}

		progress := false
		for repeat := opts.Repeat; repeat > 0 && len(cands) > 0; {
			// Pre-selection: the best PG_A+PG_B candidates (cheap), then
			// PG_C reestimation only for those (paper Section 3.5).
			k := opts.PreselectK
			if opts.DisablePreselect || k > len(cands) {
				k = len(cands)
			}
			stop = ph.Start("preselect")
			partialSelectByGainAB(cands, k)
			stop()
			var best *transform.Substitution
			bestIdx := -1
			for i := 0; i < k; i++ {
				s := cands[i]
				stop = ph.Start("preselect")
				valid := candidateValid(nl, s)
				stop()
				if !valid {
					continue
				}
				stop = ph.Start("pgc-reestimate")
				an.AnalyzeC(s)
				stop()
				if best == nil || s.Gain() > best.Gain() {
					best, bestIdx = s, i
				}
			}
			if best == nil || best.Gain() <= opts.MinGain {
				// No power-reducing substitution in this harvest; a fresh
				// harvest (outer loop) may still find some after the
				// structural changes, and the outer loop terminates once a
				// whole harvest makes no progress.
				if best != nil {
					reject(RejectLowGain, best)
				}
				break
			}
			// Drop the candidate from the pool whatever happens next.
			cands = append(cands[:bestIdx], cands[bestIdx+1:]...)

			if timing != nil {
				stop = ph.Start("delay-check")
				ok := transform.DelayOK(nl, best, timing)
				stop()
				if !ok {
					reject(RejectDelay, best)
					continue // increases_delay -> discard, pick the next best
				}
			}
			stop = ph.Start("atpg-check")
			verdict := checkCandidate(checker, best)
			stop()
			if verdict != atpg.Permissible {
				if verdict == atpg.Aborted {
					reject(RejectAborted, best)
				} else {
					reject(RejectRefuted, best)
				}
				continue
			}
			stop = ph.Start("apply")
			_, applyErr := transform.Apply(nl, best)
			stop()
			if applyErr != nil {
				// Structural conflict with an earlier substitution in this
				// harvest; treat like a failed check.
				reject(RejectApplyConflict, best)
				continue
			}
			stop = ph.Start("power-resync")
			pm.Resync()
			an = transform.NewAnalyzer(nl, pm)
			stop()
			if timing != nil {
				stop = ph.Start("delay-analysis")
				timing = sta.NewObserved(nl, constraint, opts.InputDrive, o)
				stop()
			}
			cs := res.ByClass[best.Kind]
			cs.Count++
			cs.PowerGain += best.Gain()
			cs.AreaDelta += best.AreaDelta
			res.Applied++
			progress = true
			repeat--
			o.Counter("core.applied").Inc()
			o.Histogram("core.apply.gain").Observe(best.Gain())
			if o.Tracing() {
				o.Emit("apply", obs.Fields{
					"sub":        best.String(),
					"kind":       best.Kind.String(),
					"gain":       best.Gain(),
					"area_delta": best.AreaDelta,
					"applied":    res.Applied,
				})
			}
			if opts.MaxSubstitutions > 0 && res.Applied >= opts.MaxSubstitutions {
				exhausted = true
				break
			}
			// Stale AB gains are refreshed for the surviving candidates;
			// this keeps the pre-selection meaningful within the repeat
			// window without a full re-harvest.
			stop = ph.Start("ab-analysis")
			kept := cands[:0]
			for _, s := range cands {
				if candidateValid(nl, s) {
					an.AnalyzeAB(s)
					kept = append(kept, s)
				} else {
					res.Rejects[RejectStale]++
					o.Counter("core.rejects." + RejectStale).Inc()
				}
			}
			cands = kept
			stop()
		}
		if !progress {
			break
		}
	}

	stop = ph.Start("power-estimate")
	res.Final = pm.Snapshot()
	stop()
	stop = ph.Start("delay-analysis")
	res.FinalDelay = sta.NewObserved(nl, 0, opts.InputDrive, o).Delay()
	stop()
	res.CheckStats = checker.Stats
	stop = ph.Start("validate")
	err := nl.Validate()
	stop()
	res.Runtime = time.Since(start)
	res.Phases = ph.Snapshot()
	if o.Tracing() {
		o.Emit("optimize-done", obs.Fields{
			"applied":         res.Applied,
			"harvests":        res.Harvests,
			"candidates":      res.Candidates,
			"power_initial":   res.Initial.Power,
			"power_final":     res.Final.Power,
			"reduction_pct":   res.PowerReductionPct(),
			"runtime_seconds": res.Runtime.Seconds(),
		})
	}
	if err != nil {
		return res, fmt.Errorf("core: netlist invalid after optimization: %v", err)
	}
	return res, nil
}

// checkCandidate runs the exact permissibility proof (the paper's
// check_candidate; an ATPG abort counts as not permissible).
func checkCandidate(c *atpg.Checker, s *transform.Substitution) atpg.Verdict {
	if s.IsBranchSub() {
		return c.CheckBranch(s.G, s.Pin, s.Src)
	}
	return c.CheckStem(s.A, s.Src)
}

// partialSelectByGainAB moves the k highest-GainAB candidates to the front
// (selection is O(k*n), cheaper than a full sort for small k).
func partialSelectByGainAB(cands []*transform.Substitution, k int) {
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].GainAB > cands[maxJ].GainAB {
				maxJ = j
			}
		}
		cands[i], cands[maxJ] = cands[maxJ], cands[i]
	}
}

// candidateValid re-checks a candidate against the current netlist state:
// earlier substitutions in the same harvest may have removed or rewired
// the nodes it references.
func candidateValid(nl *netlist.Netlist, s *transform.Substitution) bool {
	alive := func(id netlist.NodeID) bool {
		return id >= 0 && int(id) < nl.NumNodes() && !nl.Node(id).Dead()
	}
	if !alive(s.A) || !alive(s.Src.B) {
		return false
	}
	if s.Src.IsThree() && !alive(s.Src.C) {
		return false
	}
	var root netlist.NodeID
	if s.IsBranchSub() {
		if !alive(s.G) {
			return false
		}
		g := nl.Node(s.G)
		if s.Pin >= len(g.Fanins()) || g.Fanins()[s.Pin] != s.A {
			return false
		}
		root = s.G
	} else {
		if nl.Node(s.A).NumFanouts() == 0 {
			return false
		}
		root = s.A
	}
	// Cycle checks against the current structure (early-exit reachability,
	// not a full TFO: this runs for every surviving candidate after every
	// applied substitution).
	if nl.Reaches(root, s.Src.B) {
		return false
	}
	if s.Src.IsThree() && nl.Reaches(root, s.Src.C) {
		return false
	}
	if s.Src.InvertB && s.Inv == transform.InvReuse {
		if !alive(s.InvNode) || nl.Reaches(root, s.InvNode) {
			return false
		}
		inv := nl.Node(s.InvNode)
		if !inv.Cell().IsInverter() || inv.Fanins()[0] != s.Src.B {
			return false
		}
	}
	return true
}

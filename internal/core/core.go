// Package core implements POWDER, the paper's power optimization algorithm
// (Figure 5): a greedy sequence of permissible signal substitutions, each
// selected for maximum estimated power gain, optionally under a delay
// constraint.
//
// One optimization round:
//
//	power_estimate(netlist)
//	do {
//	  cand = get_candidate_substitutions(netlist)      // transform.Generate
//	  while repeat > 0 && cand != {} {
//	    good = select_power_red_subst(cand)            // PG_A+PG_B pre-select, PG_C reestimate
//	    if increases_delay(good) continue              // transform.DelayOK
//	    if !check_candidate(good) continue             // atpg.Checker (abort => reject)
//	    perform_substitution(good)                     // transform.Apply
//	    power_estimate_update(good)                    // power.Model refresh
//	  }
//	} while cand != {}
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"powder/internal/atpg"
	"powder/internal/faultinject"
	"powder/internal/netlist"
	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/power"
	"powder/internal/sta"
	"powder/internal/transform"
)

// Options configures one POWDER run.
type Options struct {
	// DelayConstraint is an absolute required time at the primary outputs;
	// <= 0 disables it unless DelayFactor is set.
	DelayConstraint float64
	// DelayFactor, when positive, sets the constraint to
	// initial_delay * DelayFactor (1.0 reproduces the paper's "with delay
	// constraints" mode; 1.2 allows a 20% delay increase, matching the
	// labels of the paper's Figure 6).
	DelayFactor float64
	// Repeat is the number of substitutions performed per candidate
	// harvest (the paper's `repeat` parameter). Default 10.
	Repeat int
	// PreselectK is how many of the best PG_A+PG_B candidates receive the
	// expensive PG_C reestimation per selection. Default 12.
	PreselectK int
	// DisablePreselect reestimates PG_C for every candidate (the ablation
	// of the paper's pre-selection heuristic).
	DisablePreselect bool
	// MinGain is the smallest acceptable power gain; selection stops when
	// no candidate exceeds it. Default 1e-9.
	MinGain float64
	// MaxSubstitutions caps the total number of performed substitutions
	// (0 = unlimited).
	MaxSubstitutions int
	// CheckBudget is the conflict budget per permissibility proof
	// (0 = checker default). Budget exhaustion rejects the candidate.
	CheckBudget int64
	// MaxRetries is the per-run quota of budget-escalation retries: when
	// a proof aborts on budget exhaustion, the candidate is re-proved
	// with a geometrically larger budget (×4 per step, at most 3 steps
	// per candidate) until the quota runs out. 0 disables escalation and
	// aborted candidates are rejected immediately, as in the paper.
	MaxRetries int
	// Timeout is the wall-clock budget of the whole run; when it
	// expires the run stops cleanly — in-flight SAT proofs are
	// interrupted, no substitution is left half-applied, and Result
	// reports the best netlist found so far with Stopped set. 0 means
	// no deadline (an externally cancelled context behaves the same).
	Timeout time.Duration
	// Parallelism is the worker count of the intra-circuit parallel
	// engine: the netlist is decomposed into that many fanout regions
	// (internal/partition) and harvest/analysis/proving run concurrently
	// per region on replica netlists, with applies serialized through the
	// transactional journal on the master (see parallel.go). <= 1 runs
	// the sequential engine, whose output is byte-identical to builds
	// before the parallel engine existed.
	Parallelism int
	// VerifyEvery refreshes the last-good safety-net snapshot after
	// this many applied substitutions by proving the current netlist
	// equivalent to the input (atpg.Equivalent). The snapshot is what a
	// recovered panic restores. 0 uses the default of 25; negative
	// disables periodic refresh (the input itself remains the
	// safety-net snapshot).
	VerifyEvery int
	// Inject carries fault-injection hooks for robustness tests; nil
	// (the production configuration) disables all injection.
	Inject *faultinject.Hooks
	// InputDrive is the drive resistance assumed for primary inputs in the
	// timing model; extra load on an input then shifts its arrival time.
	// Zero models ideal input drivers.
	InputDrive float64
	// Power configures the probability estimation.
	Power power.Options
	// Activity describes the workload activity model behind
	// Power.InputProbs/InputToggles, recorded in the run ledger so
	// realized gains are attributed under the model that produced them.
	// Empty means the uniform temporal-independence assumption.
	Activity string
	// Transform configures candidate generation.
	Transform transform.Config
	// LedgerLimit bounds the run ledger's retained entries per outcome
	// class (applied moves and rejected attempts are bounded
	// independently, so a reject flood cannot evict the attribution
	// table). 0 uses the default of 4096; negative disables the ledger
	// entirely, leaving Result.Ledger nil.
	LedgerLimit int
	// Obs, when non-nil, receives structured run events (harvest, check,
	// apply, reject with reason codes) and per-phase metrics. A nil
	// observer disables all event construction at near-zero cost.
	Obs *obs.Observer
	// Progress, when non-nil, receives a compact run snapshot after the
	// initial estimates, after every applied substitution, and once more
	// when the run ends (Done set). It is invoked synchronously on the
	// optimization goroutine — callbacks must be fast and must not touch
	// the netlist. Serving layers use it to publish live job status.
	Progress func(Progress)
	// Trace, when non-nil, receives one line per performed substitution.
	// Deprecated compatibility adapter: it is wired onto the event sink;
	// prefer Obs for structured events.
	Trace func(string)
}

// observer returns the effective observer: Obs, plus the legacy Trace
// callback adapted as a sink that renders apply events in the historical
// "apply <substitution>" line format.
func (o *Options) observer() *obs.Observer {
	eff := o.Obs
	if o.Trace != nil {
		tr := o.Trace
		eff = obs.Tee(eff, obs.New(obs.SinkFunc(func(e obs.Event) {
			if e.Name == "apply" {
				tr(fmt.Sprintf("apply %v", e.Fields["sub"]))
			}
		}), nil))
	}
	return eff
}

func (o *Options) normalize() {
	if o.Repeat <= 0 {
		o.Repeat = 10
	}
	if o.PreselectK <= 0 {
		o.PreselectK = 12
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-9
	}
	if o.VerifyEvery == 0 {
		o.VerifyEvery = 25
	}
}

// ClassStats aggregates the effect of one substitution class, feeding the
// paper's Table 2.
type ClassStats struct {
	Count     int
	PowerGain float64
	AreaDelta float64
}

// Reject reason codes recorded in Result.Rejects and emitted on "reject"
// events.
const (
	// RejectStale marks candidates invalidated by an earlier substitution
	// (nodes removed or rewired, or a cycle would form).
	RejectStale = "stale"
	// RejectLowGain marks the selection stopping because the best
	// remaining candidate's gain fell below MinGain.
	RejectLowGain = "low-gain"
	// RejectDelay marks candidates that would violate the delay
	// constraint.
	RejectDelay = "delay"
	// RejectRefuted marks candidates the exact ATPG check disproved.
	RejectRefuted = "refuted"
	// RejectAborted marks candidates whose proof exhausted the budget
	// (treated as not permissible, per the paper).
	RejectAborted = "aborted"
	// RejectApplyConflict marks candidates whose application failed due a
	// structural conflict with an earlier substitution.
	RejectApplyConflict = "apply-conflict"
	// RejectRollback marks candidates whose application was undone by
	// the transactional apply protocol: the post-apply re-validation
	// (netlist invariants or primary-output signature re-simulation)
	// detected damage and the edit was rolled back.
	RejectRollback = "rollback"
)

// Progress is the point-in-time run snapshot delivered to
// Options.Progress.
type Progress struct {
	// Applied is the number of substitutions performed so far.
	Applied int `json:"applied"`
	// Harvests is the number of candidate harvests completed so far.
	Harvests int `json:"harvests"`
	// Candidates is the total number of candidates examined so far.
	Candidates int `json:"candidates"`
	// InitialPower is the power estimate of the input circuit.
	InitialPower float64 `json:"initial_power"`
	// Power is the current power estimate.
	Power float64 `json:"power"`
	// Done is set on the final callback of the run.
	Done bool `json:"done"`
}

// StopReason explains why an optimization run ended.
type StopReason string

const (
	// StopCompleted is the normal termination: no further
	// power-reducing substitution exists.
	StopCompleted StopReason = "completed"
	// StopMaxSubs means the MaxSubstitutions cap was reached.
	StopMaxSubs StopReason = "max-substitutions"
	// StopDeadline means the Timeout (or an ancestor context deadline)
	// expired; the result holds the best netlist found so far.
	StopDeadline StopReason = "deadline"
	// StopCancelled means the caller's context was cancelled (e.g.
	// Ctrl-C); the result holds the best netlist found so far.
	StopCancelled StopReason = "cancelled"
	// StopPanic means a panic in the optimization path was recovered
	// and the netlist was restored to the last verified snapshot.
	StopPanic StopReason = "panic"
)

// EscalationStats records the adaptive proof-budget activity of one
// run: how often aborted proofs were retried with escalated budgets and
// what the retries decided.
type EscalationStats struct {
	// Retries counts escalated re-proofs attempted.
	Retries int `json:"retries"`
	// Permissible counts candidates recovered to a permissible verdict.
	Permissible int `json:"permissible"`
	// Refuted counts candidates an escalated proof disproved.
	Refuted int `json:"refuted"`
	// Exhausted counts candidates still aborted when the per-candidate
	// cap or the run quota ran out.
	Exhausted int `json:"exhausted"`
}

// Budget-escalation policy: each retry multiplies the proof budget by
// escalationFactor, at most escalationSteps times per candidate.
const (
	escalationFactor = 4
	escalationSteps  = 3
)

// Result summarizes an optimization run.
type Result struct {
	Initial      power.Report
	Final        power.Report
	InitialDelay float64
	FinalDelay   float64
	Constraint   float64 // 0 when unconstrained
	Applied      int
	Harvests     int
	Candidates   int // total candidates examined across harvests
	ByClass      map[transform.Kind]*ClassStats
	CheckStats   atpg.CheckStats
	Runtime      time.Duration
	// Phases is the wall-time breakdown of the run; its total accounts
	// for nearly all of Runtime.
	Phases obs.Phases
	// Rejects counts discarded candidates by reason code (the Reject*
	// constants).
	Rejects map[string]int
	// Stopped is why the run ended (StopCompleted for a full run).
	Stopped StopReason
	// Escalation summarizes the adaptive proof-budget retries.
	Escalation EscalationStats
	// SafetyRefreshes counts how often the last-good snapshot was
	// re-proved equivalent to the input and refreshed.
	SafetyRefreshes int
	// Ledger is the run's substitution-provenance record: every selected
	// attempt with its predicted gain, proof effort, and — for applied
	// moves — the realized power drop whose sum telescopes to
	// Initial.Power - Final.Power. Nil when Options.LedgerLimit < 0.
	Ledger *obs.LedgerSummary
	// Parallel summarizes the parallel engine's scheduling activity;
	// nil for sequential runs (Options.Parallelism <= 1).
	Parallel *ParallelStats
}

// ParallelStats summarizes one parallel run's region scheduling: how the
// work was partitioned and how often region-local proofs had to be
// re-examined at commit time.
type ParallelStats struct {
	// Workers is the configured Options.Parallelism.
	Workers int `json:"workers"`
	// Rounds counts the bulk-synchronous rounds executed.
	Rounds int `json:"rounds"`
	// Regions sums the region count over all rounds.
	Regions int `json:"regions"`
	// Proposals counts region-proven substitutions reaching the commit
	// phase.
	Proposals int `json:"proposals"`
	// Conflicts counts proposals whose proof support intersected nodes
	// touched by another region's committed edit (or whose region chain
	// broke), forcing a serial re-proof.
	Conflicts int `json:"conflicts"`
	// Replays counts serial re-proofs run at commit time.
	Replays int `json:"replays"`
	// SigCacheHits counts proofs short-circuited by the shared
	// refuted-miter signature cache.
	SigCacheHits int64 `json:"sigcache_hits"`
	// WorkerBusySeconds sums every region worker's wall time inside its
	// round (replica build through last proposal); ParallelSeconds sums
	// the concurrent-phase walls (first worker start to barrier clear),
	// so Workers*ParallelSeconds is the capacity the round structure
	// offered and BusyFrac is how much of it was used.
	WorkerBusySeconds float64 `json:"worker_busy_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	// CommitSeconds is the serial master-side commit wall time.
	CommitSeconds float64 `json:"commit_seconds"`
	// MaxBarrierSkewSeconds is the largest per-round gap between the
	// first and last worker to reach the round barrier — the
	// load-imbalance ceiling on speedup.
	MaxBarrierSkewSeconds float64 `json:"max_barrier_skew_seconds"`
	// ConflictLedger attributes commit conflicts to (region pair, node)
	// cells; nil when no conflicts were recorded.
	ConflictLedger *obs.ConflictSummary `json:"conflict_ledger,omitempty"`
}

// BusyFrac returns the mean worker utilization of the parallel phases:
// total worker busy time over the capacity Workers*ParallelSeconds
// (0 when nothing ran).
func (p *ParallelStats) BusyFrac() float64 {
	if p == nil || p.Workers == 0 || p.ParallelSeconds <= 0 {
		return 0
	}
	return p.WorkerBusySeconds / (float64(p.Workers) * p.ParallelSeconds)
}

// CommitShare returns the fraction of engine wall time spent in the
// serial commit phase — the Amdahl term that bounds parallel speedup.
func (p *ParallelStats) CommitShare() float64 {
	if p == nil {
		return 0
	}
	total := p.ParallelSeconds + p.CommitSeconds
	if total <= 0 {
		return 0
	}
	return p.CommitSeconds / total
}

// StoppedEarly reports whether the run ended before exhausting the
// candidate space (deadline, cancellation, or a recovered panic).
func (r *Result) StoppedEarly() bool {
	return r.Stopped == StopDeadline || r.Stopped == StopCancelled || r.Stopped == StopPanic
}

// PowerReductionPct returns the percentage power reduction.
func (r *Result) PowerReductionPct() float64 {
	if r.Initial.Power == 0 {
		return 0
	}
	return 100 * (r.Initial.Power - r.Final.Power) / r.Initial.Power
}

// AreaChangePct returns the percentage area change (negative = smaller).
func (r *Result) AreaChangePct() float64 {
	if r.Initial.Area == 0 {
		return 0
	}
	return 100 * (r.Final.Area - r.Initial.Area) / r.Initial.Area
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("power %.3f -> %.3f (-%.1f%%), area %.0f -> %.0f, delay %.2f -> %.2f, %d substitutions",
		r.Initial.Power, r.Final.Power, r.PowerReductionPct(),
		r.Initial.Area, r.Final.Area, r.InitialDelay, r.FinalDelay, r.Applied)
}

// Optimize runs POWDER on the netlist in place and returns the run summary.
// It is OptimizeCtx under a background context.
func Optimize(nl *netlist.Netlist, opts Options) (*Result, error) {
	return OptimizeCtx(context.Background(), nl, opts)
}

// OptimizeCtx runs POWDER on the netlist in place and returns the run
// summary.
//
// The run is observable end to end: Result.Phases breaks the wall time
// into the pipeline phases (power-estimate, delay-analysis, harvest,
// ab-analysis, preselect, pgc-reestimate, delay-check, atpg-check, apply,
// power-resync, safety-verify, validate), Result.Rejects counts discarded
// candidates by reason code, and Options.Obs streams structured events
// while the run executes.
//
// Robustness guarantees:
//
//   - Cancelling ctx (or exceeding Options.Timeout) stops the run at the
//     next loop boundary — in-flight SAT proofs are interrupted within
//     microseconds of search — and returns the best netlist found so
//     far, never a half-applied state; Result.Stopped records the
//     reason.
//   - Every substitution is applied inside a netlist transaction and
//     re-validated (structural invariants plus a primary-output
//     signature re-simulation); damage rolls the transaction back and
//     the run continues, counting a "rollback" reject.
//   - A panic anywhere in the optimization path is recovered, the
//     netlist is restored to the last snapshot proven equivalent to the
//     input, and the panic is returned as an error.
func OptimizeCtx(ctx context.Context, nl *netlist.Netlist, opts Options) (res *Result, err error) {
	opts.normalize()
	if opts.Parallelism > 1 {
		return optimizeParallel(ctx, nl, opts)
	}
	o := opts.observer()
	opts.Power.Obs = o
	opts.Transform.Obs = o
	ph := obs.NewPhaseSet()
	start := time.Now()

	// Root span of the run; every phase, candidate, proof, and SAT solve
	// below nests under it through the context. A context without a
	// tracer makes all of this free.
	ctx, optSpan := trace.StartSpan(ctx, "optimize")
	optSpan.SetAttr("circuit", nl.Name)
	defer func() {
		if res != nil {
			optSpan.SetAttr("applied", res.Applied)
			optSpan.SetAttr("harvests", res.Harvests)
			optSpan.SetAttr("stopped", string(res.Stopped))
			optSpan.SetAttr("reduction_pct", res.PowerReductionPct())
		}
		optSpan.End()
	}()

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}

	res = &Result{
		ByClass: map[transform.Kind]*ClassStats{
			transform.OS2: {}, transform.IS2: {}, transform.OS3: {}, transform.IS3: {},
		},
		Rejects: map[string]int{},
		Stopped: StopCompleted,
	}

	// The run ledger records every selected attempt; a nil ledger (when
	// disabled) is a no-op on every method.
	var led *obs.Ledger
	if opts.LedgerLimit >= 0 {
		led = obs.NewLedger(opts.LedgerLimit)
	}
	// Reused per-node power captures bracketing each apply; their diff is
	// the per-node attribution of the realized gain.
	var perNodeBefore, perNodeAfter []float64

	// Safety net: the input clone is trivially the last netlist known
	// equivalent to the input; periodic verification moves it forward.
	input := nl.Clone()
	lastGood := input
	defer func() {
		if r := recover(); r != nil {
			nl.RestoreFrom(lastGood)
			res.Stopped = StopPanic
			res.Runtime = time.Since(start)
			res.Phases = ph.Snapshot()
			res.Ledger = led.Summary()
			stampActivity(res.Ledger, opts.Activity)
			// Best-effort final numbers for the restored netlist; a
			// second panic here must not mask the restore.
			func() {
				defer func() { _ = recover() }()
				res.Final = power.Estimate(nl, opts.Power).Snapshot()
				res.FinalDelay = sta.NewObserved(nl, 0, opts.InputDrive, nil).Delay()
			}()
			err = fmt.Errorf("core: recovered panic in optimization: %v (netlist restored to last verified snapshot)", r)
		}
	}()

	_, estSpan := trace.StartSpan(ctx, "power-estimate")
	stop := ph.Start("power-estimate")
	pm := power.Estimate(nl, opts.Power)
	res.Initial = pm.Snapshot()
	stop()
	estSpan.End()
	_, staSpan := trace.StartSpan(ctx, "delay-analysis")
	stop = ph.Start("delay-analysis")
	res.InitialDelay = sta.NewObserved(nl, 0, opts.InputDrive, o).Delay()
	stop()
	staSpan.End()

	constraint := opts.DelayConstraint
	if opts.DelayFactor > 0 {
		constraint = res.InitialDelay * opts.DelayFactor
	}
	res.Constraint = constraint

	reportProgress := func(done bool) {
		if opts.Progress == nil {
			return
		}
		opts.Progress(Progress{
			Applied:      res.Applied,
			Harvests:     res.Harvests,
			Candidates:   res.Candidates,
			InitialPower: res.Initial.Power,
			Power:        pm.Total(),
			Done:         done,
		})
	}
	reportProgress(false)

	checker := atpg.NewChecker(nl)
	checker.Obs = o
	checker.Ctx = ctx
	if opts.CheckBudget > 0 {
		checker.Budget = opts.CheckBudget
	}

	// stopRequested reports (and records) context expiry; every loop
	// boundary consults it so cancellation never interrupts an edit.
	stopRequested := func() bool {
		if ctx.Err() == nil {
			return false
		}
		if res.Stopped == StopCompleted {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				res.Stopped = StopDeadline
			} else {
				res.Stopped = StopCancelled
			}
			o.Emit("stopped", obs.Fields{"reason": string(res.Stopped), "applied": res.Applied})
		}
		return true
	}

	// reject discards a selected candidate: reason counters, a ledger
	// provenance entry (with the proof record when the candidate reached
	// the checker), and a structured event.
	reject := func(reason string, s *transform.Substitution, proof *obs.LedgerProof) {
		res.Rejects[reason]++
		o.Counter("core.rejects." + reason).Inc()
		if s != nil && led != nil {
			led.Record(obs.LedgerAttempt{
				Kind:          s.Kind.String(),
				Target:        s.TargetString(),
				Source:        s.SourceString(),
				PredictedGain: s.Gain(),
				Outcome:       obs.LedgerRejected,
				Reason:        reason,
				Proof:         proof,
			})
			o.Counter("core.ledger.attempts").Inc()
		}
		if o.Tracing() {
			f := obs.Fields{"reason": reason}
			if s != nil {
				f["kind"] = s.Kind.String()
				f["sub"] = s.String()
			}
			o.Emit("reject", f)
		}
	}

	retriesLeft := opts.MaxRetries
	hooks := opts.Inject
	verifyErr := error(nil)

	exhausted := false
	for !exhausted && !stopRequested() {
		an := transform.NewAnalyzer(nl, pm)
		_, harvSpan := trace.StartSpan(ctx, "harvest")
		stop = ph.Start("harvest")
		cands := transform.Generate(nl, pm, opts.Transform)
		stop()
		res.Harvests++
		res.Candidates += len(cands)
		harvSpan.SetAttr("harvest", res.Harvests)
		harvSpan.SetAttr("candidates", len(cands))
		if len(cands) == 0 {
			harvSpan.End()
			break
		}
		stop = ph.Start("ab-analysis")
		for _, s := range cands {
			an.AnalyzeAB(s)
		}
		stop()
		harvSpan.End()

		var timing *sta.Analysis
		if constraint > 0 {
			stop = ph.Start("delay-analysis")
			timing = sta.NewObserved(nl, constraint, opts.InputDrive, o)
			stop()
		}

		progress := false
		for repeat := opts.Repeat; repeat > 0 && len(cands) > 0; {
			if stopRequested() {
				exhausted = true
				break
			}
			// Pre-selection: the best PG_A+PG_B candidates (cheap), then
			// PG_C reestimation only for those (paper Section 3.5).
			k := opts.PreselectK
			if opts.DisablePreselect || k > len(cands) {
				k = len(cands)
			}
			stop = ph.Start("preselect")
			partialSelectByGainAB(cands, k)
			stop()
			var best *transform.Substitution
			bestIdx := -1
			for i := 0; i < k; i++ {
				s := cands[i]
				stop = ph.Start("preselect")
				valid := candidateValid(nl, s)
				stop()
				if !valid {
					continue
				}
				stop = ph.Start("pgc-reestimate")
				an.AnalyzeC(s)
				stop()
				if best == nil || s.Gain() > best.Gain() {
					best, bestIdx = s, i
				}
			}
			if best == nil || best.Gain() <= opts.MinGain {
				// No power-reducing substitution in this harvest; a fresh
				// harvest (outer loop) may still find some after the
				// structural changes, and the outer loop terminates once a
				// whole harvest makes no progress.
				if best != nil {
					reject(RejectLowGain, best, nil)
				}
				break
			}
			// Drop the candidate from the pool whatever happens next.
			cands = append(cands[:bestIdx], cands[bestIdx+1:]...)

			// One span per selected candidate; the proof (with its SAT
			// solves and escalation steps) and the apply nest under it.
			// endCandidate stamps the outcome and detaches the checker
			// from the candidate's span context.
			cctx, cSpan := trace.StartSpan(ctx, "candidate")
			cSpan.SetAttr("kind", best.Kind.String())
			cSpan.SetAttr("sub", best.String())
			cSpan.SetAttr("gain", best.Gain())
			endCandidate := func(outcome string) {
				cSpan.SetAttr("outcome", outcome)
				cSpan.End()
				checker.Ctx = ctx
			}

			if timing != nil {
				stop = ph.Start("delay-check")
				ok := transform.DelayOK(nl, best, timing)
				stop()
				if !ok {
					reject(RejectDelay, best, nil)
					endCandidate(RejectDelay)
					continue // increases_delay -> discard, pick the next best
				}
			}
			checker.Ctx = cctx
			stop = ph.Start("atpg-check")
			verdict := checkCandidate(checker, best)
			stop()
			d := checker.LastCheck
			proof := &obs.LedgerProof{
				Conflicts: d.Conflicts,
				Decisions: d.Decisions,
				Seconds:   d.Seconds,
				Budget:    d.Budget,
			}
			if hooks != nil && hooks.ForceAbort != nil && hooks.ForceAbort(checker.Stats.Checks) {
				verdict = atpg.Aborted
			}
			if verdict == atpg.Aborted && retriesLeft > 0 && ctx.Err() == nil {
				verdict = escalate(cctx, checker, best, hooks, &retriesLeft, res, ph, o, proof)
			}
			proof.Verdict = verdict.String()
			if verdict != atpg.Permissible {
				if verdict == atpg.Aborted {
					reject(RejectAborted, best, proof)
					endCandidate(RejectAborted)
				} else {
					reject(RejectRefuted, best, proof)
					endCandidate(RejectRefuted)
				}
				continue
			}

			if hooks != nil && hooks.Panic != nil && hooks.Panic(res.Applied) {
				panic(fmt.Sprintf("faultinject: injected panic after %d substitutions", res.Applied))
			}

			// Transactional apply: snapshot the primary-output signatures,
			// apply inside an edit transaction, then re-validate the
			// structural invariants and re-simulate the signatures. Any
			// damage — a buggy transform, an injected corruption, a panic
			// in the apply path — rolls the transaction back and the run
			// continues with the next candidate.
			// Bracket the apply with power captures: their difference is the
			// realized gain, and the per-node diff is its attribution over
			// the touched cone. Simulation is deterministic, so the realized
			// gains of the applied moves telescope exactly to the headline
			// Initial.Power - Final.Power (rollbacks restore prior values).
			var pBefore float64
			if led != nil {
				pBefore = pm.Total()
				perNodeBefore = pm.PerNode(perNodeBefore)
			}
			preSig := poSignatures(pm, nl)
			_, aSpan := trace.StartSpan(cctx, "apply")
			txn := nl.Begin()
			stop = ph.Start("apply")
			_, applyErr := transform.ApplySafe(nl, best)
			stop()
			reason := RejectApplyConflict
			if applyErr == nil && hooks != nil && hooks.CorruptApply != nil {
				if cerr := hooks.CorruptApply(nl, res.Applied); cerr != nil {
					applyErr = cerr
					reason = RejectRollback
				}
			}
			if applyErr == nil {
				stop = ph.Start("validate")
				if verr := nl.Validate(); verr != nil {
					applyErr = verr
					reason = RejectRollback
				}
				stop()
			}
			if applyErr == nil {
				stop = ph.Start("power-resync")
				pm.Resync()
				stop()
				if !sameSignatures(preSig, poSignatures(pm, nl)) {
					applyErr = fmt.Errorf("core: primary-output signatures changed after apply of %v", best)
					reason = RejectRollback
				}
			}
			if applyErr != nil {
				txn.Rollback()
				aSpan.SetAttr("outcome", reason)
				aSpan.End()
				stop = ph.Start("power-resync")
				pm.Resync()
				an = transform.NewAnalyzer(nl, pm)
				stop()
				reject(reason, best, proof)
				if o.Tracing() {
					o.Emit("rollback", obs.Fields{"sub": best.String(), "error": applyErr.Error()})
				}
				endCandidate(reason)
				continue
			}
			txn.Commit()
			aSpan.SetAttr("outcome", "applied")
			aSpan.End()
			if led != nil {
				pAfter := pm.Total()
				perNodeAfter = pm.PerNode(perNodeAfter)
				led.Record(obs.LedgerAttempt{
					Kind:          best.Kind.String(),
					Target:        best.TargetString(),
					Source:        best.SourceString(),
					PredictedGain: best.Gain(),
					Outcome:       obs.LedgerApplied,
					Proof:         proof,
					PowerBefore:   pBefore,
					PowerAfter:    pAfter,
					RealizedGain:  pBefore - pAfter,
					Cone:          coneDeltas(nl, perNodeBefore, perNodeAfter),
				})
				o.Counter("core.ledger.attempts").Inc()
				o.Counter("core.ledger.applied").Inc()
				o.Histogram("core.ledger.realized_gain").Observe(pBefore - pAfter)
			}
			an = transform.NewAnalyzer(nl, pm)
			if timing != nil {
				stop = ph.Start("delay-analysis")
				timing = sta.NewObserved(nl, constraint, opts.InputDrive, o)
				stop()
			}
			cs := res.ByClass[best.Kind]
			cs.Count++
			cs.PowerGain += best.Gain()
			cs.AreaDelta += best.AreaDelta
			res.Applied++
			progress = true
			repeat--
			o.Counter("core.applied").Inc()
			o.Histogram("core.apply.gain").Observe(best.Gain())
			if o.Tracing() {
				o.Emit("apply", obs.Fields{
					"sub":        best.String(),
					"kind":       best.Kind.String(),
					"gain":       best.Gain(),
					"area_delta": best.AreaDelta,
					"applied":    res.Applied,
				})
			}
			endCandidate("applied")
			reportProgress(false)
			if opts.MaxSubstitutions > 0 && res.Applied >= opts.MaxSubstitutions {
				res.Stopped = StopMaxSubs
				exhausted = true
				break
			}
			// Safety-net refresh: periodically re-prove the current netlist
			// equivalent to the input and advance the last-good snapshot.
			// Runs after the substitution-cap check so a run that just hit
			// its cap does not pay for a proof whose snapshot is never used.
			if opts.VerifyEvery > 0 && res.Applied%opts.VerifyEvery == 0 && ctx.Err() == nil {
				svctx, svSpan := trace.StartSpan(ctx, "safety-verify")
				stop = ph.Start("safety-verify")
				eq, eqErr := atpg.EquivalentCtx(svctx, input, nl, 0)
				stop()
				svSpan.End()
				switch {
				case eqErr == nil && eq.Verdict == atpg.Permissible:
					lastGood = nl.Clone()
					res.SafetyRefreshes++
					o.Counter("core.safety.refresh").Inc()
				case eqErr == nil && eq.Verdict == atpg.NotPermissible:
					// Every substitution was individually proven, so this
					// means a checker or apply bug slipped through all other
					// nets. Restore the last verified state and stop.
					nl.RestoreFrom(lastGood)
					pm.Resync()
					verifyErr = fmt.Errorf("core: periodic verification refuted equivalence on output %q; restored last verified snapshot", eq.DifferingOutput)
					exhausted = true
				}
				// An aborted verification keeps the previous snapshot.
				if exhausted {
					break
				}
			}
			// Stale AB gains are refreshed for the surviving candidates;
			// this keeps the pre-selection meaningful within the repeat
			// window without a full re-harvest.
			stop = ph.Start("ab-analysis")
			kept := cands[:0]
			for _, s := range cands {
				if candidateValid(nl, s) {
					an.AnalyzeAB(s)
					kept = append(kept, s)
				} else {
					res.Rejects[RejectStale]++
					o.Counter("core.rejects." + RejectStale).Inc()
					led.CountReject(RejectStale)
				}
			}
			cands = kept
			stop()
		}
		if !progress {
			break
		}
	}

	_, finSpan := trace.StartSpan(ctx, "power-estimate")
	stop = ph.Start("power-estimate")
	res.Final = pm.Snapshot()
	stop()
	finSpan.End()
	_, finStaSpan := trace.StartSpan(ctx, "delay-analysis")
	stop = ph.Start("delay-analysis")
	res.FinalDelay = sta.NewObserved(nl, 0, opts.InputDrive, o).Delay()
	stop()
	finStaSpan.End()
	res.CheckStats = checker.Stats
	stop = ph.Start("validate")
	vErr := nl.Validate()
	stop()
	res.Runtime = time.Since(start)
	res.Phases = ph.Snapshot()
	res.Ledger = led.Summary()
	stampActivity(res.Ledger, opts.Activity)
	reportProgress(true)
	if o.Tracing() {
		o.Emit("optimize-done", obs.Fields{
			"applied":         res.Applied,
			"harvests":        res.Harvests,
			"candidates":      res.Candidates,
			"power_initial":   res.Initial.Power,
			"power_final":     res.Final.Power,
			"reduction_pct":   res.PowerReductionPct(),
			"runtime_seconds": res.Runtime.Seconds(),
			"stopped":         string(res.Stopped),
			"rollbacks":       res.Rejects[RejectRollback],
			"escalations":     res.Escalation.Retries,
		})
	}
	if verifyErr != nil {
		return res, verifyErr
	}
	if vErr != nil {
		// Unreachable with the transactional apply in place, but if the
		// invariants are somehow broken, hand back the last verified
		// snapshot rather than a corrupt netlist.
		nl.RestoreFrom(lastGood)
		return res, fmt.Errorf("core: netlist invalid after optimization: %v (restored last verified snapshot)", vErr)
	}
	return res, nil
}

// escalate retries an aborted proof with geometrically escalated SAT
// budgets (×escalationFactor per step, escalationSteps max) while the
// per-run retry quota lasts, returning the final verdict and recording
// the escalation statistics. proof, when non-nil, accumulates the SAT
// effort of every retry for the run ledger.
func escalate(ctx context.Context, checker *atpg.Checker, s *transform.Substitution,
	hooks *faultinject.Hooks, retriesLeft *int, res *Result, ph *obs.PhaseSet, o *obs.Observer,
	proof *obs.LedgerProof) atpg.Verdict {
	base := checker.Budget
	defer func() { checker.Budget = base }()
	budget := base
	verdict := atpg.Aborted
	for step := 0; step < escalationSteps && verdict == atpg.Aborted && *retriesLeft > 0 && ctx.Err() == nil; step++ {
		budget *= escalationFactor
		*retriesLeft--
		res.Escalation.Retries++
		o.Counter("core.escalation.retries").Inc()
		checker.Budget = budget
		// Each retry gets its own child span so an escalation ladder is
		// visible as stacked re-proofs under the candidate.
		ectx, eSpan := trace.StartSpan(ctx, "escalate")
		eSpan.SetAttr("step", step+1)
		eSpan.SetAttr("budget", budget)
		checker.Ctx = ectx
		stop := ph.Start("atpg-check")
		verdict = checkCandidate(checker, s)
		stop()
		checker.Ctx = ctx
		if proof != nil {
			d := checker.LastCheck
			proof.Conflicts += d.Conflicts
			proof.Decisions += d.Decisions
			proof.Seconds += d.Seconds
			proof.Budget = d.Budget
			proof.Escalations++
		}
		if hooks != nil && hooks.ForceAbort != nil && hooks.ForceAbort(checker.Stats.Checks) {
			verdict = atpg.Aborted
		}
		eSpan.SetAttr("verdict", verdict.String())
		eSpan.End()
	}
	switch verdict {
	case atpg.Permissible:
		res.Escalation.Permissible++
		o.Counter("core.escalation.permissible").Inc()
	case atpg.NotPermissible:
		res.Escalation.Refuted++
		o.Counter("core.escalation.refuted").Inc()
	default:
		res.Escalation.Exhausted++
		o.Counter("core.escalation.exhausted").Inc()
	}
	if o.Tracing() {
		o.Emit("escalate", obs.Fields{
			"sub":          s.String(),
			"verdict":      verdict.String(),
			"budget":       budget,
			"retries_left": *retriesLeft,
		})
	}
	return verdict
}

// coneLimit caps the per-move attribution entries the ledger retains;
// wider cones are folded into one exact "(other)" remainder entry.
const coneLimit = 32

// coneDeltas diffs two per-node power captures into the attribution of
// one applied substitution: which nodes gained or lost C(i)*E(i), largest
// magnitude first. The entries sum exactly to PowerBefore - PowerAfter.
func coneDeltas(nl *netlist.Netlist, before, after []float64) []obs.LedgerNodeDelta {
	n := len(before)
	if len(after) > n {
		n = len(after)
	}
	at := func(v []float64, i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	var deltas []obs.LedgerNodeDelta
	for i := 0; i < n; i++ {
		d := at(before, i) - at(after, i)
		if d == 0 {
			continue
		}
		name := ""
		if i < nl.NumNodes() {
			name = nl.Node(netlist.NodeID(i)).Name()
		}
		if name == "" {
			name = fmt.Sprintf("n%d", i)
		}
		deltas = append(deltas, obs.LedgerNodeDelta{Node: name, Delta: d})
	}
	sort.Slice(deltas, func(i, j int) bool {
		di, dj := deltas[i].Delta, deltas[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return deltas[i].Node < deltas[j].Node
	})
	if len(deltas) > coneLimit {
		rest := 0.0
		for _, d := range deltas[coneLimit:] {
			rest += d.Delta
		}
		deltas = append(deltas[:coneLimit], obs.LedgerNodeDelta{Node: "(other)", Delta: rest})
	}
	return deltas
}

// poSignatures captures the simulated value words of every primary
// output (masked to the valid vectors); a permissible substitution must
// leave them bit-identical.
func poSignatures(pm *power.Model, nl *netlist.Netlist) []uint64 {
	s := pm.Sim()
	sig := make([]uint64, 0, len(nl.Outputs())*s.Words())
	for _, po := range nl.Outputs() {
		for w, word := range s.Value(po.Driver) {
			sig = append(sig, word&s.ValidMask(w))
		}
	}
	return sig
}

// sameSignatures compares two signature captures.
func sameSignatures(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkCandidate runs the exact permissibility proof (the paper's
// check_candidate; an ATPG abort counts as not permissible).
func checkCandidate(c *atpg.Checker, s *transform.Substitution) atpg.Verdict {
	if s.IsBranchSub() {
		return c.CheckBranch(s.G, s.Pin, s.Src)
	}
	return c.CheckStem(s.A, s.Src)
}

// partialSelectByGainAB moves the k highest-GainAB candidates to the front
// (selection is O(k*n), cheaper than a full sort for small k).
func partialSelectByGainAB(cands []*transform.Substitution, k int) {
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].GainAB > cands[maxJ].GainAB {
				maxJ = j
			}
		}
		cands[i], cands[maxJ] = cands[maxJ], cands[i]
	}
}

// candidateValid re-checks a candidate against the current netlist state:
// earlier substitutions in the same harvest may have removed or rewired
// the nodes it references.
func candidateValid(nl *netlist.Netlist, s *transform.Substitution) bool {
	alive := func(id netlist.NodeID) bool {
		return id >= 0 && int(id) < nl.NumNodes() && !nl.Node(id).Dead()
	}
	if !alive(s.A) || !alive(s.Src.B) {
		return false
	}
	if s.Src.IsThree() && !alive(s.Src.C) {
		return false
	}
	var root netlist.NodeID
	if s.IsBranchSub() {
		if !alive(s.G) {
			return false
		}
		g := nl.Node(s.G)
		if s.Pin >= len(g.Fanins()) || g.Fanins()[s.Pin] != s.A {
			return false
		}
		root = s.G
	} else {
		if nl.Node(s.A).NumFanouts() == 0 {
			return false
		}
		root = s.A
	}
	// Cycle checks against the current structure (early-exit reachability,
	// not a full TFO: this runs for every surviving candidate after every
	// applied substitution).
	if nl.Reaches(root, s.Src.B) {
		return false
	}
	if s.Src.IsThree() && nl.Reaches(root, s.Src.C) {
		return false
	}
	if s.Src.InvertB && s.Inv == transform.InvReuse {
		if !alive(s.InvNode) || nl.Reaches(root, s.InvNode) {
			return false
		}
		inv := nl.Node(s.InvNode)
		if !inv.Cell().IsInverter() || inv.Fanins()[0] != s.Src.B {
			return false
		}
	}
	return true
}

// stampActivity records the run's workload activity model on the ledger
// summary (nil-safe for disabled ledgers).
func stampActivity(s *obs.LedgerSummary, activity string) {
	if s != nil {
		s.Activity = activity
	}
}

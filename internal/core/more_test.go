package core

import (
	"math/rand"
	"testing"

	"powder/internal/atpg"
	"powder/internal/transform"
)

func TestOptimizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	nl1 := randomNetlist(t, rng, 6, 18)
	nl2 := nl1.Clone()
	opts := Options{Transform: transform.Config{AllowInverted: true}}
	r1, err := Optimize(nl1, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(nl2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Final.Power != r2.Final.Power || r1.Applied != r2.Applied ||
		r1.Final.Area != r2.Final.Area {
		t.Errorf("optimization is not deterministic: %v vs %v", r1, r2)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	// Running POWDER on its own output must find (almost) nothing: the
	// first run only stops when no positive-gain candidate remains.
	nl := redundantCircuit(t)
	opts := Options{Transform: transform.Config{AllowInverted: true}}
	if _, err := Optimize(nl, opts); err != nil {
		t.Fatal(err)
	}
	second, err := Optimize(nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Applied != 0 {
		t.Errorf("second run applied %d substitutions; the first should have converged", second.Applied)
	}
	if second.PowerReductionPct() > 1e-9 {
		t.Errorf("second run still reduced power by %.3f%%", second.PowerReductionPct())
	}
}

func TestOptimizedCircuitVerifiesEquivalent(t *testing.T) {
	// End-to-end trust chain: the SAT equivalence checker (a different
	// code path than the per-substitution proofs) confirms the result.
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 4; trial++ {
		nl := randomNetlist(t, rng, 6, 20)
		ref := nl.Clone()
		if _, err := Optimize(nl, Options{Transform: transform.Config{AllowInverted: true}}); err != nil {
			t.Fatal(err)
		}
		eq, err := atpg.Equivalent(ref, nl, 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq.Verdict != atpg.Permissible {
			t.Fatalf("trial %d: optimized circuit not equivalent: %v (output %s, cex %v)",
				trial, eq.Verdict, eq.DifferingOutput, eq.Counterexample)
		}
	}
}

func TestMinGainThresholdTradesQualityForTime(t *testing.T) {
	// The paper (Section 4.2) suggests terminating once the per-
	// substitution gains fall below a threshold. A large MinGain must
	// apply no more substitutions than the default and end at no lower
	// power.
	nl1 := redundantCircuit(t)
	nl2 := redundantCircuit(t)
	fine, err := Optimize(nl1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Optimize(nl2, Options{MinGain: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Applied > fine.Applied {
		t.Errorf("high threshold applied more substitutions (%d > %d)", coarse.Applied, fine.Applied)
	}
	if coarse.Final.Power < fine.Final.Power-1e-9 {
		t.Errorf("high threshold ended below the fine run's power")
	}
}

func TestCheckBudgetAbortCounting(t *testing.T) {
	// A ridiculous 1-conflict budget forces aborts on nontrivial proofs;
	// the run must stay sound (aborts are rejections) and record them.
	rng := rand.New(rand.NewSource(313))
	nl := randomNetlist(t, rng, 6, 20)
	ref := nl.Clone()
	res, err := Optimize(nl, Options{
		CheckBudget: 1,
		Transform:   transform.Config{AllowInverted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatalf("function changed under budget pressure")
	}
	_ = res
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"powder/internal/cellib"
	"powder/internal/logic"
	"powder/internal/netlist"
	"powder/internal/sim"
	"powder/internal/transform"
)

// redundantCircuit builds a deliberately wasteful mapped circuit:
// duplicated gates and a reconvergent AND of identical signals.
func redundantCircuit(t testing.TB) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("waste", lib)
	var in [4]netlist.NodeID
	for i := range in {
		id, err := nl.AddInput(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		in[i] = id
	}
	mk := func(name, cell string, fanins ...netlist.NodeID) netlist.NodeID {
		id, err := nl.AddGate(name, lib.Cell(cell), fanins)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	x1 := mk("x1", "nand2", in[0], in[1])
	x2 := mk("x2", "nand2", in[0], in[1]) // duplicate of x1
	y := mk("y", "and2", x1, x2)          // == !(a*b) = x1
	z1 := mk("z1", "xor2", in[2], in[3])
	z2 := mk("z2", "xor2", in[2], in[3]) // duplicate of z1
	o1 := mk("o1", "or2", y, z1)
	o2 := mk("o2", "and2", y, z2)
	if err := nl.AddOutput("o1", o1); err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("o2", o2); err != nil {
		t.Fatal(err)
	}
	return nl
}

func exhaustiveEqual(t *testing.T, x, y *netlist.Netlist) bool {
	t.Helper()
	n := len(x.Inputs())
	words := (1<<uint(n) + 63) / 64
	sx, sy := sim.New(x, words), sim.New(y, words)
	if err := sx.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	if err := sy.SetInputsExhaustive(); err != nil {
		t.Fatal(err)
	}
	sx.Run()
	sy.Run()
	if len(x.Outputs()) != len(y.Outputs()) {
		return false
	}
	for i := range x.Outputs() {
		vx := sx.Value(x.Outputs()[i].Driver)
		vy := sy.Value(y.Outputs()[i].Driver)
		for w := range vx {
			if (vx[w]^vy[w])&sx.ValidMask(w) != 0 {
				return false
			}
		}
	}
	return true
}

func TestOptimizeReducesRedundantCircuit(t *testing.T) {
	nl := redundantCircuit(t)
	ref := nl.Clone()
	res, err := Optimize(nl, Options{Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Power >= res.Initial.Power {
		t.Errorf("no power reduction on a redundant circuit: %v", res)
	}
	if res.Applied == 0 {
		t.Errorf("no substitutions applied")
	}
	// The duplicate gates must be gone.
	if nl.GateCount() >= ref.GateCount() {
		t.Errorf("gate count did not shrink: %d vs %d", nl.GateCount(), ref.GateCount())
	}
	if !exhaustiveEqual(t, ref, nl) {
		t.Fatalf("optimization changed the circuit function")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizePreservesFunctionOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		nl := randomNetlist(t, rng, 6, 18)
		ref := nl.Clone()
		res, err := Optimize(nl, Options{Transform: transform.Config{AllowInverted: true}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !exhaustiveEqual(t, ref, nl) {
			t.Fatalf("trial %d: function changed after %d substitutions", trial, res.Applied)
		}
		if res.Final.Power > res.Initial.Power+1e-9 {
			t.Fatalf("trial %d: power increased", trial)
		}
	}
}

func TestOptimizeRespectsDelayConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		nl := randomNetlist(t, rng, 6, 20)
		ref := nl.Clone()
		res, err := Optimize(nl, Options{
			DelayFactor: 1.0,
			Transform:   transform.Config{AllowInverted: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalDelay > res.InitialDelay+1e-9 {
			t.Fatalf("trial %d: delay grew %.3f -> %.3f under factor-1.0 constraint",
				trial, res.InitialDelay, res.FinalDelay)
		}
		if !exhaustiveEqual(t, ref, nl) {
			t.Fatalf("trial %d: function changed", trial)
		}
	}
}

func TestConstrainedAndUnconstrainedBothReduce(t *testing.T) {
	// Greedy trajectories under different accept/reject decisions are not
	// strictly ordered per instance (the paper's unconstrained-vs-
	// constrained comparison holds on averages), so assert only the
	// per-run guarantees: power never increases and the constrained run
	// keeps its delay.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		nl1 := randomNetlist(t, rng, 6, 20)
		nl2 := nl1.Clone()
		free, err := Optimize(nl1, Options{Transform: transform.Config{AllowInverted: true}})
		if err != nil {
			t.Fatal(err)
		}
		tight, err := Optimize(nl2, Options{DelayFactor: 1.0, Transform: transform.Config{AllowInverted: true}})
		if err != nil {
			t.Fatal(err)
		}
		if free.Final.Power > free.Initial.Power+1e-9 {
			t.Errorf("trial %d: unconstrained run increased power", trial)
		}
		if tight.Final.Power > tight.Initial.Power+1e-9 {
			t.Errorf("trial %d: constrained run increased power", trial)
		}
		if tight.FinalDelay > tight.InitialDelay+1e-9 {
			t.Errorf("trial %d: constrained run increased delay", trial)
		}
	}
}

func TestClassStatsAccounting(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	totalGain, count := 0.0, 0
	for _, cs := range res.ByClass {
		totalGain += cs.PowerGain
		count += cs.Count
	}
	if count != res.Applied {
		t.Errorf("class counts %d != applied %d", count, res.Applied)
	}
	// Per-substitution gains are exact, so they must sum to the total
	// reduction.
	wantGain := res.Initial.Power - res.Final.Power
	if math.Abs(totalGain-wantGain) > 1e-9 {
		t.Errorf("class gains sum %v, want %v", totalGain, wantGain)
	}
}

func TestMaxSubstitutionsCap(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{MaxSubstitutions: 1, Transform: transform.Config{AllowInverted: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Errorf("applied %d, want exactly 1", res.Applied)
	}
}

func TestTraceCallback(t *testing.T) {
	nl := redundantCircuit(t)
	var lines []string
	_, err := Optimize(nl, Options{Trace: func(s string) { lines = append(lines, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Errorf("trace should have fired")
	}
}

func TestResultHelpers(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerReductionPct() <= 0 {
		t.Errorf("reduction pct = %v", res.PowerReductionPct())
	}
	if res.String() == "" {
		t.Errorf("empty result string")
	}
	if res.Runtime <= 0 {
		t.Errorf("runtime not measured")
	}
	if res.Harvests == 0 || res.Candidates == 0 {
		t.Errorf("harvest accounting missing")
	}
}

func TestDisablePreselectAblation(t *testing.T) {
	// With pre-selection disabled every candidate gets PG_C; the result
	// must still be a valid optimization (and usually the same or better).
	nl1 := redundantCircuit(t)
	nl2 := redundantCircuit(t)
	r1, err := Optimize(nl1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(nl2, Options{DisablePreselect: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Final.Power > r1.Initial.Power {
		t.Errorf("ablation run broken")
	}
	if r1.Final.Power <= 0 || r2.Final.Power <= 0 {
		t.Errorf("nonsensical final powers")
	}
}

// randomNetlist builds a random mapped circuit.
func randomNetlist(t testing.TB, rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("rand", lib)
	var pool []netlist.NodeID
	for i := 0; i < nIn; i++ {
		id, err := nl.AddInput(logic.VarName(i))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	cells := []string{"inv", "nand2", "nor2", "and2", "or2", "xor2", "aoi21", "oai21"}
	for i := 0; i < nGates; i++ {
		cell := nl.Lib.Cell(cells[rng.Intn(len(cells))])
		fanins := make([]netlist.NodeID, cell.NumPins())
		for p := range fanins {
			fanins[p] = pool[rng.Intn(len(pool))]
		}
		id, err := nl.AddGate("", cell, fanins)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, id)
	}
	for i := 0; i < 3; i++ {
		if err := nl.AddOutput(logic.VarName(20+i), pool[len(pool)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	nl.SweepDead()
	return nl
}

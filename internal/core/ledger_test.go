package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"powder/internal/faultinject"
	"powder/internal/obs"
	"powder/internal/transform"
)

// attributionTolerance is the acceptance bound of the ledger contract:
// the applied moves' realized gains must sum to the headline power drop
// within this absolute tolerance.
const attributionTolerance = 1e-9

// checkAttribution asserts the telescoping property on one result.
func checkAttribution(t *testing.T, label string, res *Result) {
	t.Helper()
	led := res.Ledger
	if led == nil {
		t.Fatalf("%s: Ledger is nil with the ledger enabled", label)
	}
	headline := res.Initial.Power - res.Final.Power
	if diff := math.Abs(led.RealizedGain - headline); diff > attributionTolerance {
		t.Errorf("%s: sum of realized gains %.12g != headline drop %.12g (diff %.3g)",
			label, led.RealizedGain, headline, diff)
	}
	if led.Applied != res.Applied {
		t.Errorf("%s: ledger Applied = %d, Result.Applied = %d", label, led.Applied, res.Applied)
	}
	// Each retained move's cone must decompose its own realized gain.
	for _, m := range led.Moves {
		var coneSum float64
		for _, d := range m.Cone {
			coneSum += d.Delta
		}
		if diff := math.Abs(coneSum - m.RealizedGain); diff > attributionTolerance {
			t.Errorf("%s: move %d cone sums to %.12g, realized %.12g (diff %.3g)",
				label, m.Seq, coneSum, m.RealizedGain, diff)
		}
	}
}

// TestLedgerAttributionSumsToHeadline is the acceptance property: on real
// circuits, the per-substitution realized gains recorded by the ledger
// telescope to Initial.Power - Final.Power within 1e-9.
func TestLedgerAttributionSumsToHeadline(t *testing.T) {
	for _, name := range []string{"comp", "clip", "t481"} {
		nl := compileBenchmark(t, name)
		res, err := Optimize(nl, Options{
			Power:     powerOptsSmall(),
			Transform: transform.Config{AllowInverted: true},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Applied == 0 {
			t.Fatalf("%s: no substitutions applied; property vacuous", name)
		}
		checkAttribution(t, name, res)
		if res.Ledger.Attempts < res.Applied {
			t.Errorf("%s: Attempts %d < Applied %d", name, res.Ledger.Attempts, res.Applied)
		}
	}
}

// TestLedgerAttributionSurvivesRollbacks pins the property under the
// transactional-apply recovery path: intermittent corruption forces
// rollbacks, whose power resyncs must restore the model exactly so the
// telescoping sum still matches.
func TestLedgerAttributionSurvivesRollbacks(t *testing.T) {
	nl := compileBenchmark(t, "clip")
	res, err := Optimize(nl, Options{
		Power:     powerOptsSmall(),
		Transform: transform.Config{AllowInverted: true},
		Inject:    &faultinject.Hooks{CorruptApply: faultinject.CorruptEveryApply(0, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects[RejectRollback] == 0 {
		t.Fatal("no rollbacks triggered; scenario vacuous")
	}
	checkAttribution(t, "clip+rollbacks", res)
	// Rolled-back attempts must be in the ledger as rejects, not moves.
	if res.Ledger.Rejected[RejectRollback] != res.Rejects[RejectRollback] {
		t.Errorf("ledger rollback count %d, result %d",
			res.Ledger.Rejected[RejectRollback], res.Rejects[RejectRollback])
	}
}

// TestLedgerAttributionUnderDeadline pins the property on the early-stop
// path: a tight deadline ends the run mid-flight, and the partial ledger
// must still sum to the partial headline.
func TestLedgerAttributionUnderDeadline(t *testing.T) {
	for _, timeout := range []time.Duration{time.Millisecond, 20 * time.Millisecond} {
		nl := compileBenchmark(t, "t481")
		res, err := Optimize(nl, Options{
			Power:     powerOptsSmall(),
			Transform: transform.Config{AllowInverted: true},
			Timeout:   timeout,
		})
		if err != nil {
			t.Fatalf("timeout %v: %v", timeout, err)
		}
		checkAttribution(t, "t481+deadline", res)
	}
}

// TestLedgerDisabled pins the opt-out: a negative LedgerLimit leaves
// Result.Ledger nil and the run otherwise unaffected.
func TestLedgerDisabled(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{
		Transform:   transform.Config{AllowInverted: true},
		LedgerLimit: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger != nil {
		t.Fatalf("Ledger = %+v, want nil when disabled", res.Ledger)
	}
	if res.Applied == 0 {
		t.Error("disabling the ledger suppressed optimization")
	}
}

// TestLedgerRecordsProofsAndRejects pins the provenance content: applied
// moves carry proof records with the permissible verdict, and reject
// entries carry their reason.
func TestLedgerRecordsProofsAndRejects(t *testing.T) {
	nl := redundantCircuit(t)
	res, err := Optimize(nl, Options{
		Transform: transform.Config{AllowInverted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied == 0 {
		t.Fatal("no substitutions applied")
	}
	for _, m := range res.Ledger.Moves {
		if m.Outcome != obs.LedgerApplied {
			t.Errorf("move %d outcome %q", m.Seq, m.Outcome)
		}
		if m.Proof == nil || m.Proof.Verdict != "permissible" {
			t.Errorf("move %d proof = %+v, want permissible verdict", m.Seq, m.Proof)
		}
		if m.Kind == "" || m.Target == "" || m.Source == "" {
			t.Errorf("move %d missing provenance: %+v", m.Seq, m)
		}
	}
	for _, r := range res.Ledger.Rejects {
		if r.Outcome != obs.LedgerRejected || r.Reason == "" {
			t.Errorf("reject entry %d missing reason: %+v", r.Seq, r)
		}
	}
}

// TestWriteReport pins the report's shape and its attribution totals.
func TestWriteReport(t *testing.T) {
	reg := obs.NewRegistry()
	nl := compileBenchmark(t, "comp")
	res, err := Optimize(nl, Options{
		Power:     powerOptsSmall(),
		Transform: transform.Config{AllowInverted: true},
		Obs:       obs.New(nil, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteReport(&sb, "comp", res, reg)
	out := sb.String()
	for _, want := range []string{
		"# POWDER run report — comp",
		"## Top moves by realized gain",
		"## Predicted vs realized",
		"## Rejected candidates",
		"## Permissibility proofs",
		"proof latency: p50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n--- report ---\n%s", want, out)
		}
	}
}

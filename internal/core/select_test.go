package core

import (
	"math/rand"
	"sort"
	"testing"

	"powder/internal/transform"
)

// TestPartialSelectByGainAB checks the selection property: after the call,
// the front k elements are exactly the k largest GainAB values of the
// whole slice (in descending order), and no element is lost.
func TestPartialSelectByGainAB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		k := rng.Intn(n + 1)
		cands := make([]*transform.Substitution, n)
		want := make([]float64, n)
		for i := range cands {
			// Duplicates included on purpose: ties must not drop elements.
			g := float64(rng.Intn(10)) / 4
			cands[i] = &transform.Substitution{GainAB: g}
			want[i] = g
		}

		partialSelectByGainAB(cands, k)

		got := make([]float64, n)
		for i, s := range cands {
			got[i] = s.GainAB
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := 0; i < k; i++ {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: position %d has gain %v, want %v (got %v)",
					n, k, i, got[i], want[i], got)
			}
		}
		// The tail still holds the remaining elements (multiset equality).
		sort.Float64s(got)
		wantAsc := append([]float64(nil), want...)
		sort.Float64s(wantAsc)
		for i := range got {
			if got[i] != wantAsc[i] {
				t.Fatalf("n=%d k=%d: elements lost: got %v want %v", n, k, got, wantAsc)
			}
		}
	}
}

func TestPartialSelectByGainABEmpty(t *testing.T) {
	partialSelectByGainAB(nil, 0) // must not panic
	one := []*transform.Substitution{{GainAB: 1}}
	partialSelectByGainAB(one, 1)
	if one[0].GainAB != 1 {
		t.Fatal("single-element slice mangled")
	}
}

// TestResultPctZeroInitial pins the degenerate-circuit edge case: with a
// zero initial power or area the percentages are 0, not NaN/Inf.
func TestResultPctZeroInitial(t *testing.T) {
	var r Result
	if got := r.PowerReductionPct(); got != 0 {
		t.Errorf("PowerReductionPct on zero initial = %v, want 0", got)
	}
	if got := r.AreaChangePct(); got != 0 {
		t.Errorf("AreaChangePct on zero initial = %v, want 0", got)
	}
	r.Final.Power = 5
	r.Final.Area = 100
	if got := r.PowerReductionPct(); got != 0 {
		t.Errorf("PowerReductionPct with final-only power = %v, want 0", got)
	}
	if got := r.AreaChangePct(); got != 0 {
		t.Errorf("AreaChangePct with final-only area = %v, want 0", got)
	}

	r.Initial.Power, r.Final.Power = 10, 5
	r.Initial.Area, r.Final.Area = 200, 100
	if got := r.PowerReductionPct(); got != 50 {
		t.Errorf("PowerReductionPct = %v, want 50", got)
	}
	if got := r.AreaChangePct(); got != -50 {
		t.Errorf("AreaChangePct = %v, want -50", got)
	}
}

package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"powder/internal/obs"
)

// reportTopMoves bounds the per-move rows of the attribution table; the
// remaining moves are folded into one aggregate row so the columns still
// sum to the run totals.
const reportTopMoves = 10

// WriteReport renders a human-readable markdown explanation of one run:
// the headline numbers, the attribution table of the best moves, the
// predicted-vs-realized calibration of the gain estimator, the
// reject-reason breakdown, and — when a registry is supplied — the
// permissibility-proof latency quantiles.
func WriteReport(w io.Writer, name string, res *Result, reg *obs.Registry) {
	fmt.Fprintf(w, "# POWDER run report — %s\n\n", name)
	fmt.Fprintf(w, "Power %.6g -> %.6g (**-%.2f%%**), area %.0f -> %.0f, delay %.3g -> %.3g.\n",
		res.Initial.Power, res.Final.Power, res.PowerReductionPct(),
		res.Initial.Area, res.Final.Area, res.InitialDelay, res.FinalDelay)
	fmt.Fprintf(w, "%d substitutions over %d harvests (%d candidates examined), stopped: %s, runtime %.3gs.\n\n",
		res.Applied, res.Harvests, res.Candidates, res.Stopped, res.Runtime.Seconds())

	led := res.Ledger
	if led != nil && led.Activity != "" {
		fmt.Fprintf(w, "Activity model: %s — all gains above are under this workload, not the uniform assumption.\n\n",
			led.Activity)
	}
	if led != nil {
		writeMoveTable(w, led)
		writeCalibration(w, led)
		writeNodeTable(w, led)
	}
	writeRejects(w, res, led)
	writeRegionTable(w, res, led)
	writeConflictHeatmap(w, res)
	writeProofLatency(w, res, reg)
}

// writeRegionTable renders the parallel engine's per-region breakdown:
// how each fanout region contributed moves and gain (from the ledger's
// Region attribution) plus the run's scheduler summary — utilization,
// commit share, and barrier skew. Sequential runs skip the section.
func writeRegionTable(w io.Writer, res *Result, led *obs.LedgerSummary) {
	par := res.Parallel
	if par == nil {
		return
	}
	fmt.Fprintf(w, "## Parallel regions\n\n")
	fmt.Fprintf(w, "- workers: %d, rounds: %d, regions: %d, proposals: %d\n",
		par.Workers, par.Rounds, par.Regions, par.Proposals)
	fmt.Fprintf(w, "- conflicts: %d (%d serial re-proofs), sigcache hits: %d\n",
		par.Conflicts, par.Replays, par.SigCacheHits)
	fmt.Fprintf(w, "- worker utilization: %.1f%% of %d×%.3gs capacity, commit share %.1f%%, max barrier skew %.3gs\n",
		100*par.BusyFrac(), par.Workers, par.ParallelSeconds,
		100*par.CommitShare(), par.MaxBarrierSkewSeconds)
	if led == nil {
		fmt.Fprintf(w, "\n")
		return
	}
	// Region attribution over the retained ledger entries (1-based
	// regions; 0 = sequential/master). The gains are exact for retained
	// moves; entries beyond the retention cap are uncounted here but the
	// scheduler totals above remain exact.
	type regionRow struct {
		applied, rejected   int
		predicted, realized float64
	}
	rows := map[int]*regionRow{}
	get := func(region int) *regionRow {
		r := rows[region]
		if r == nil {
			r = &regionRow{}
			rows[region] = r
		}
		return r
	}
	for _, m := range led.Moves {
		r := get(m.Region)
		r.applied++
		r.predicted += m.PredictedGain
		r.realized += m.RealizedGain
	}
	for _, m := range led.Rejects {
		get(m.Region).rejected++
	}
	if len(rows) == 0 {
		fmt.Fprintf(w, "\n")
		return
	}
	regions := make([]int, 0, len(rows))
	for r := range rows {
		regions = append(regions, r)
	}
	sort.Ints(regions)
	fmt.Fprintf(w, "\n| region | applied | rejected | predicted | realized |\n")
	fmt.Fprintf(w, "|-------:|--------:|---------:|----------:|---------:|\n")
	for _, region := range regions {
		r := rows[region]
		label := fmt.Sprintf("r%d", region)
		if region == 0 {
			label = "master"
		}
		fmt.Fprintf(w, "| %s | %d | %d | %.6g | %.6g |\n",
			label, r.applied, r.rejected, r.predicted, r.realized)
	}
	fmt.Fprintf(w, "\n")
}

// writeConflictHeatmap renders the parallel engine's conflict
// attribution: which region pairs collided, over which nodes, and how
// (the bounded conflict ledger carried on ParallelStats). Runs without
// conflicts skip the section.
func writeConflictHeatmap(w io.Writer, res *Result) {
	if res.Parallel == nil || res.Parallel.ConflictLedger == nil {
		return
	}
	cl := res.Parallel.ConflictLedger
	fmt.Fprintf(w, "## Conflict heatmap\n\n")
	kinds := make([]string, 0, len(cl.ByKind))
	for k := range cl.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "%d conflicts", cl.Total)
	for i, k := range kinds {
		if i == 0 {
			fmt.Fprintf(w, " (")
		} else {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%s %d", k, cl.ByKind[k])
	}
	if len(kinds) > 0 {
		fmt.Fprintf(w, ")")
	}
	fmt.Fprintf(w, ".\n\n")
	fmt.Fprintf(w, "| regions | node | conflicts | kinds |\n")
	fmt.Fprintf(w, "|---------|------|----------:|-------|\n")
	top := len(cl.Cells)
	if top > reportTopMoves {
		top = reportTopMoves
	}
	for _, c := range cl.Cells[:top] {
		pair := fmt.Sprintf("r%d-r%d", c.RegionA, c.RegionB)
		if c.RegionA == 0 {
			pair = fmt.Sprintf("r%d", c.RegionB)
		}
		ck := make([]string, 0, len(c.Kinds))
		for k := range c.Kinds {
			ck = append(ck, k)
		}
		sort.Strings(ck)
		kindCol := ""
		for i, k := range ck {
			if i > 0 {
				kindCol += ", "
			}
			kindCol += fmt.Sprintf("%s %d", k, c.Kinds[k])
		}
		fmt.Fprintf(w, "| %s | %s | %d | %s |\n", pair, c.Node, c.Count, kindCol)
	}
	if rest := len(cl.Cells) - top; rest > 0 {
		fmt.Fprintf(w, "| | (%d more cells) | | |\n", rest)
	}
	if cl.DroppedCells > 0 {
		fmt.Fprintf(w, "\n(%d conflicts fell in cells beyond the ledger bound.)\n", cl.DroppedCells)
	}
	fmt.Fprintf(w, "\n")
}

// writeMoveTable renders the top moves by realized gain plus an exact
// remainder row: the realized column sums to the headline power drop.
func writeMoveTable(w io.Writer, led *obs.LedgerSummary) {
	fmt.Fprintf(w, "## Top moves by realized gain\n\n")
	if len(led.Moves) == 0 {
		fmt.Fprintf(w, "No substitutions were applied.\n\n")
		return
	}
	moves := append([]obs.LedgerAttempt(nil), led.Moves...)
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].RealizedGain != moves[j].RealizedGain {
			return moves[i].RealizedGain > moves[j].RealizedGain
		}
		return moves[i].Seq < moves[j].Seq
	})
	fmt.Fprintf(w, "| # | kind | target <- source | predicted | realized | proof conflicts |\n")
	fmt.Fprintf(w, "|--:|------|------------------|----------:|---------:|----------------:|\n")
	top := len(moves)
	if top > reportTopMoves {
		top = reportTopMoves
	}
	var shownPred, shownReal float64
	for _, m := range moves[:top] {
		conflicts := int64(0)
		if m.Proof != nil {
			conflicts = m.Proof.Conflicts
		}
		fmt.Fprintf(w, "| %d | %s | %s <- %s | %.6g | %.6g | %d |\n",
			m.Seq, m.Kind, m.Target, m.Source, m.PredictedGain, m.RealizedGain, conflicts)
		shownPred += m.PredictedGain
		shownReal += m.RealizedGain
	}
	rest := led.Applied - top
	if rest > 0 {
		// The dropped-moves remainder uses the exact ledger totals, so the
		// table stays a complete decomposition even past the retention cap.
		fmt.Fprintf(w, "| | | (%d more moves) | %.6g | %.6g | |\n",
			rest, led.PredictedGain-shownPred, led.RealizedGain-shownReal)
	}
	fmt.Fprintf(w, "| | | **total (%d moves)** | **%.6g** | **%.6g** | |\n\n",
		led.Applied, led.PredictedGain, led.RealizedGain)
}

// writeCalibration compares the gain estimator against the measured
// per-move power drops over the retained moves.
func writeCalibration(w io.Writer, led *obs.LedgerSummary) {
	fmt.Fprintf(w, "## Predicted vs realized\n\n")
	if len(led.Moves) == 0 {
		fmt.Fprintf(w, "No applied moves to calibrate against.\n\n")
		return
	}
	n := float64(len(led.Moves))
	var sumErr, sumAbs, maxAbs float64
	var sp, sr, spp, srr, spr float64
	for _, m := range led.Moves {
		e := m.PredictedGain - m.RealizedGain
		sumErr += e
		a := math.Abs(e)
		sumAbs += a
		if a > maxAbs {
			maxAbs = a
		}
		sp += m.PredictedGain
		sr += m.RealizedGain
		spp += m.PredictedGain * m.PredictedGain
		srr += m.RealizedGain * m.RealizedGain
		spr += m.PredictedGain * m.RealizedGain
	}
	fmt.Fprintf(w, "- moves: %d (of %d applied; %d beyond the retention cap)\n",
		len(led.Moves), led.Applied, led.DroppedMoves)
	fmt.Fprintf(w, "- mean error (predicted - realized): %.6g\n", sumErr/n)
	fmt.Fprintf(w, "- mean |error|: %.6g, max |error|: %.6g\n", sumAbs/n, maxAbs)
	if sr != 0 {
		fmt.Fprintf(w, "- aggregate ratio predicted/realized: %.4g\n", sp/sr)
	}
	// Pearson correlation over the retained moves; meaningless for a
	// single move or a degenerate (constant) column.
	den := math.Sqrt((spp - sp*sp/n) * (srr - sr*sr/n))
	if n > 1 && den > 0 {
		fmt.Fprintf(w, "- correlation: %.4g\n", (spr-sp*sr/n)/den)
	}
	fmt.Fprintf(w, "\n")
}

// writeNodeTable renders where the realized gain landed structurally.
func writeNodeTable(w io.Writer, led *obs.LedgerSummary) {
	if len(led.ByNode) == 0 {
		return
	}
	fmt.Fprintf(w, "## Top nodes by attributed gain\n\n")
	fmt.Fprintf(w, "| node | moves | realized gain |\n")
	fmt.Fprintf(w, "|------|------:|--------------:|\n")
	top := len(led.ByNode)
	if top > reportTopMoves {
		top = reportTopMoves
	}
	for _, a := range led.ByNode[:top] {
		fmt.Fprintf(w, "| %s | %d | %.6g |\n", a.Node, a.Moves, a.Realized)
	}
	fmt.Fprintf(w, "\n")
}

// writeRejects renders the reject-reason breakdown, preferring the exact
// Result counters (which include pre-selection rejects the ledger never
// sees as entries).
func writeRejects(w io.Writer, res *Result, led *obs.LedgerSummary) {
	if len(res.Rejects) == 0 {
		return
	}
	fmt.Fprintf(w, "## Rejected candidates\n\n")
	fmt.Fprintf(w, "| reason | count |\n")
	fmt.Fprintf(w, "|--------|------:|\n")
	reasons := make([]string, 0, len(res.Rejects))
	for r := range res.Rejects {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	total := 0
	for _, r := range reasons {
		fmt.Fprintf(w, "| %s | %d |\n", r, res.Rejects[r])
		total += res.Rejects[r]
	}
	fmt.Fprintf(w, "| **total** | **%d** |\n\n", total)
	if led != nil && led.DroppedRejects > 0 {
		fmt.Fprintf(w, "(%d rejected entries beyond the ledger retention cap; the counts above remain exact.)\n\n",
			led.DroppedRejects)
	}
}

// writeProofLatency renders the permissibility-proof effort: the check
// counts from Result and the latency quantiles from the registry's
// "atpg.check.seconds" histogram when one was recording.
func writeProofLatency(w io.Writer, res *Result, reg *obs.Registry) {
	if res.CheckStats.Checks == 0 {
		return
	}
	fmt.Fprintf(w, "## Permissibility proofs\n\n")
	fmt.Fprintf(w, "- checks: %d (permissible %d, refuted %d, aborted %d)\n",
		res.CheckStats.Checks, res.CheckStats.Permissible,
		res.CheckStats.Refuted, res.CheckStats.Aborted)
	fmt.Fprintf(w, "- SAT effort: %d conflicts, %d decisions\n",
		res.CheckStats.Conflicts, res.CheckStats.Decisions)
	if res.Escalation.Retries > 0 {
		fmt.Fprintf(w, "- budget escalations: %d retries (recovered %d, refuted %d, exhausted %d)\n",
			res.Escalation.Retries, res.Escalation.Permissible,
			res.Escalation.Refuted, res.Escalation.Exhausted)
	}
	if h := reg.Histogram("atpg.check.seconds"); h.Count() > 0 {
		fmt.Fprintf(w, "- proof latency: p50 %.3gs, p90 %.3gs, p99 %.3gs, max %.3gs over %d proofs\n",
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max(), h.Count())
	}
	fmt.Fprintf(w, "\n")
}

package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"powder/internal/obs"
)

// reportTopMoves bounds the per-move rows of the attribution table; the
// remaining moves are folded into one aggregate row so the columns still
// sum to the run totals.
const reportTopMoves = 10

// WriteReport renders a human-readable markdown explanation of one run:
// the headline numbers, the attribution table of the best moves, the
// predicted-vs-realized calibration of the gain estimator, the
// reject-reason breakdown, and — when a registry is supplied — the
// permissibility-proof latency quantiles.
func WriteReport(w io.Writer, name string, res *Result, reg *obs.Registry) {
	fmt.Fprintf(w, "# POWDER run report — %s\n\n", name)
	fmt.Fprintf(w, "Power %.6g -> %.6g (**-%.2f%%**), area %.0f -> %.0f, delay %.3g -> %.3g.\n",
		res.Initial.Power, res.Final.Power, res.PowerReductionPct(),
		res.Initial.Area, res.Final.Area, res.InitialDelay, res.FinalDelay)
	fmt.Fprintf(w, "%d substitutions over %d harvests (%d candidates examined), stopped: %s, runtime %.3gs.\n\n",
		res.Applied, res.Harvests, res.Candidates, res.Stopped, res.Runtime.Seconds())

	led := res.Ledger
	if led != nil {
		writeMoveTable(w, led)
		writeCalibration(w, led)
		writeNodeTable(w, led)
	}
	writeRejects(w, res, led)
	writeProofLatency(w, res, reg)
}

// writeMoveTable renders the top moves by realized gain plus an exact
// remainder row: the realized column sums to the headline power drop.
func writeMoveTable(w io.Writer, led *obs.LedgerSummary) {
	fmt.Fprintf(w, "## Top moves by realized gain\n\n")
	if len(led.Moves) == 0 {
		fmt.Fprintf(w, "No substitutions were applied.\n\n")
		return
	}
	moves := append([]obs.LedgerAttempt(nil), led.Moves...)
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].RealizedGain != moves[j].RealizedGain {
			return moves[i].RealizedGain > moves[j].RealizedGain
		}
		return moves[i].Seq < moves[j].Seq
	})
	fmt.Fprintf(w, "| # | kind | target <- source | predicted | realized | proof conflicts |\n")
	fmt.Fprintf(w, "|--:|------|------------------|----------:|---------:|----------------:|\n")
	top := len(moves)
	if top > reportTopMoves {
		top = reportTopMoves
	}
	var shownPred, shownReal float64
	for _, m := range moves[:top] {
		conflicts := int64(0)
		if m.Proof != nil {
			conflicts = m.Proof.Conflicts
		}
		fmt.Fprintf(w, "| %d | %s | %s <- %s | %.6g | %.6g | %d |\n",
			m.Seq, m.Kind, m.Target, m.Source, m.PredictedGain, m.RealizedGain, conflicts)
		shownPred += m.PredictedGain
		shownReal += m.RealizedGain
	}
	rest := led.Applied - top
	if rest > 0 {
		// The dropped-moves remainder uses the exact ledger totals, so the
		// table stays a complete decomposition even past the retention cap.
		fmt.Fprintf(w, "| | | (%d more moves) | %.6g | %.6g | |\n",
			rest, led.PredictedGain-shownPred, led.RealizedGain-shownReal)
	}
	fmt.Fprintf(w, "| | | **total (%d moves)** | **%.6g** | **%.6g** | |\n\n",
		led.Applied, led.PredictedGain, led.RealizedGain)
}

// writeCalibration compares the gain estimator against the measured
// per-move power drops over the retained moves.
func writeCalibration(w io.Writer, led *obs.LedgerSummary) {
	fmt.Fprintf(w, "## Predicted vs realized\n\n")
	if len(led.Moves) == 0 {
		fmt.Fprintf(w, "No applied moves to calibrate against.\n\n")
		return
	}
	n := float64(len(led.Moves))
	var sumErr, sumAbs, maxAbs float64
	var sp, sr, spp, srr, spr float64
	for _, m := range led.Moves {
		e := m.PredictedGain - m.RealizedGain
		sumErr += e
		a := math.Abs(e)
		sumAbs += a
		if a > maxAbs {
			maxAbs = a
		}
		sp += m.PredictedGain
		sr += m.RealizedGain
		spp += m.PredictedGain * m.PredictedGain
		srr += m.RealizedGain * m.RealizedGain
		spr += m.PredictedGain * m.RealizedGain
	}
	fmt.Fprintf(w, "- moves: %d (of %d applied; %d beyond the retention cap)\n",
		len(led.Moves), led.Applied, led.DroppedMoves)
	fmt.Fprintf(w, "- mean error (predicted - realized): %.6g\n", sumErr/n)
	fmt.Fprintf(w, "- mean |error|: %.6g, max |error|: %.6g\n", sumAbs/n, maxAbs)
	if sr != 0 {
		fmt.Fprintf(w, "- aggregate ratio predicted/realized: %.4g\n", sp/sr)
	}
	// Pearson correlation over the retained moves; meaningless for a
	// single move or a degenerate (constant) column.
	den := math.Sqrt((spp - sp*sp/n) * (srr - sr*sr/n))
	if n > 1 && den > 0 {
		fmt.Fprintf(w, "- correlation: %.4g\n", (spr-sp*sr/n)/den)
	}
	fmt.Fprintf(w, "\n")
}

// writeNodeTable renders where the realized gain landed structurally.
func writeNodeTable(w io.Writer, led *obs.LedgerSummary) {
	if len(led.ByNode) == 0 {
		return
	}
	fmt.Fprintf(w, "## Top nodes by attributed gain\n\n")
	fmt.Fprintf(w, "| node | moves | realized gain |\n")
	fmt.Fprintf(w, "|------|------:|--------------:|\n")
	top := len(led.ByNode)
	if top > reportTopMoves {
		top = reportTopMoves
	}
	for _, a := range led.ByNode[:top] {
		fmt.Fprintf(w, "| %s | %d | %.6g |\n", a.Node, a.Moves, a.Realized)
	}
	fmt.Fprintf(w, "\n")
}

// writeRejects renders the reject-reason breakdown, preferring the exact
// Result counters (which include pre-selection rejects the ledger never
// sees as entries).
func writeRejects(w io.Writer, res *Result, led *obs.LedgerSummary) {
	if len(res.Rejects) == 0 {
		return
	}
	fmt.Fprintf(w, "## Rejected candidates\n\n")
	fmt.Fprintf(w, "| reason | count |\n")
	fmt.Fprintf(w, "|--------|------:|\n")
	reasons := make([]string, 0, len(res.Rejects))
	for r := range res.Rejects {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	total := 0
	for _, r := range reasons {
		fmt.Fprintf(w, "| %s | %d |\n", r, res.Rejects[r])
		total += res.Rejects[r]
	}
	fmt.Fprintf(w, "| **total** | **%d** |\n\n", total)
	if led != nil && led.DroppedRejects > 0 {
		fmt.Fprintf(w, "(%d rejected entries beyond the ledger retention cap; the counts above remain exact.)\n\n",
			led.DroppedRejects)
	}
}

// writeProofLatency renders the permissibility-proof effort: the check
// counts from Result and the latency quantiles from the registry's
// "atpg.check.seconds" histogram when one was recording.
func writeProofLatency(w io.Writer, res *Result, reg *obs.Registry) {
	if res.CheckStats.Checks == 0 {
		return
	}
	fmt.Fprintf(w, "## Permissibility proofs\n\n")
	fmt.Fprintf(w, "- checks: %d (permissible %d, refuted %d, aborted %d)\n",
		res.CheckStats.Checks, res.CheckStats.Permissible,
		res.CheckStats.Refuted, res.CheckStats.Aborted)
	fmt.Fprintf(w, "- SAT effort: %d conflicts, %d decisions\n",
		res.CheckStats.Conflicts, res.CheckStats.Decisions)
	if res.Escalation.Retries > 0 {
		fmt.Fprintf(w, "- budget escalations: %d retries (recovered %d, refuted %d, exhausted %d)\n",
			res.Escalation.Retries, res.Escalation.Permissible,
			res.Escalation.Refuted, res.Escalation.Exhausted)
	}
	if h := reg.Histogram("atpg.check.seconds"); h.Count() > 0 {
		fmt.Fprintf(w, "- proof latency: p50 %.3gs, p90 %.3gs, p99 %.3gs, max %.3gs over %d proofs\n",
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max(), h.Count())
	}
	fmt.Fprintf(w, "\n")
}

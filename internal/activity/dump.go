package activity

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"powder/internal/netlist"
	"powder/internal/sim"
)

// DumpOptions configures the stimulus dump writers.
type DumpOptions struct {
	// Words is the number of 64-bit simulation words (Words*64 vectors);
	// <= 0 defaults to 64, matching power.Options.
	Words int
	// Seed seeds the random stimulus generator.
	Seed int64
	// InputProbs biases the per-input signal probability (nil = 0.5).
	InputProbs []float64
	// Module names the VCD $scope / SAIF top INSTANCE; empty uses the
	// netlist name (or "powder" if that is empty too).
	Module string
}

// dumpSim runs the random stimulus the power estimator would use and
// returns the simulator plus vector count. Dumps are always random
// stimulus — the exhaustive estimate enumerates input combinations in
// counting order, which is not a time sequence, so replaying it as one
// would misreport transition densities.
func dumpSim(nl *netlist.Netlist, opts DumpOptions) (*sim.Simulator, int) {
	words := opts.Words
	if words <= 0 {
		words = 64
	}
	s := sim.New(nl, words)
	s.SetInputsRandom(opts.Seed, opts.InputProbs)
	s.Run()
	return s, s.NumVectors()
}

// bitAt extracts sample vector t of a value-word slice.
func bitAt(words []uint64, t int) byte {
	return byte((words[t/64] >> (uint(t) % 64)) & 1)
}

// module returns the scope/instance name for the dump.
func (o DumpOptions) module(nl *netlist.Netlist) string {
	if o.Module != "" {
		return o.Module
	}
	if nl.Name != "" {
		return nl.Name
	}
	return "powder"
}

// dumpNodes returns the nodes a dump records — the primary inputs (at a
// register cut these include the latch outputs) — with VCD-safe id
// codes.
func dumpNodes(nl *netlist.Netlist) []netlist.NodeID {
	return nl.Inputs()
}

// vcdID returns the printable-ASCII identifier code for input index i
// (the usual base-94 encoding over '!'..'~').
func vcdID(i int) string {
	var b []byte
	for {
		b = append(b, byte('!'+i%94))
		i /= 94
		if i == 0 {
			break
		}
	}
	return string(b)
}

// DumpVCD writes the random-simulation stimulus of the netlist's
// primary inputs as a VCD: one `#t` timestamp per sample vector
// (emitted even when no signal changes, so ingestion recovers the exact
// vector count), scalar value changes only where the value differs from
// the previous vector, and a full $dumpvars image at t=0. Ingesting the
// result with ReadVCD reproduces the simulator's input statistics
// exactly. Returns the number of vectors written.
func DumpVCD(w io.Writer, nl *netlist.Netlist, opts DumpOptions) (int, error) {
	s, nvec := dumpSim(nl, opts)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date\n  powder stimulus dump\n$end\n")
	fmt.Fprintf(bw, "$version\n  powder\n$end\n")
	fmt.Fprintf(bw, "$timescale 1ns $end\n")
	fmt.Fprintf(bw, "$scope module %s $end\n", sanitizeName(opts.module(nl)))
	ins := dumpNodes(nl)
	for i, id := range ins {
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", vcdID(i), sanitizeName(nl.Node(id).Name()))
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	prev := make([]byte, len(ins))
	fmt.Fprintf(bw, "#0\n$dumpvars\n")
	for i, id := range ins {
		v := bitAt(s.Value(id), 0)
		prev[i] = v
		fmt.Fprintf(bw, "%d%s\n", v, vcdID(i))
	}
	fmt.Fprintf(bw, "$end\n")
	for t := 1; t < nvec; t++ {
		fmt.Fprintf(bw, "#%d\n", t)
		for i, id := range ins {
			v := bitAt(s.Value(id), t)
			if v != prev[i] {
				prev[i] = v
				fmt.Fprintf(bw, "%d%s\n", v, vcdID(i))
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return nvec, nil
}

// DumpSAIF writes the same stimulus as a SAIF summary: DURATION is the
// pair count (vectors - 1), T0/T1 accumulate each input's value over
// the first DURATION vectors (each vector holds its value for one time
// unit until the next), and TC counts consecutive-vector differences —
// exactly the statistics ReadVCD extracts from the corresponding
// DumpVCD output, so the two formats ingest to identical profiles.
// Returns the number of vectors summarized.
func DumpSAIF(w io.Writer, nl *netlist.Netlist, opts DumpOptions) (int, error) {
	s, nvec := dumpSim(nl, opts)
	duration := nvec - 1
	if duration < 1 {
		duration = 1
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(SAIFILE\n")
	fmt.Fprintf(bw, "  (SAIFVERSION \"2.0\")\n")
	fmt.Fprintf(bw, "  (DIRECTION \"backward\")\n")
	fmt.Fprintf(bw, "  (TIMESCALE 1 ns)\n")
	fmt.Fprintf(bw, "  (DURATION %d)\n", duration)
	fmt.Fprintf(bw, "  (INSTANCE %s\n    (NET\n", sanitizeName(opts.module(nl)))
	for _, id := range dumpNodes(nl) {
		words := s.Value(id)
		var t1, tc int64
		prev := bitAt(words, 0)
		// The last vector opens no interval (it has no successor), so
		// value time covers vectors 0..duration-1.
		if prev == 1 {
			t1++
		}
		for t := 1; t < nvec; t++ {
			v := bitAt(words, t)
			if v != prev {
				tc++
			}
			if v == 1 && t < duration {
				t1++
			}
			prev = v
		}
		fmt.Fprintf(bw, "      (%s\n        (T0 %d) (T1 %d) (TX 0)\n        (TC %d) (IG 0)\n      )\n",
			sanitizeName(nl.Node(id).Name()), int64(duration)-t1, t1, tc)
	}
	fmt.Fprintf(bw, "    )\n  )\n)\n")
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return nvec, nil
}

// sanitizeName makes a netlist name safe as a VCD reference / SAIF atom:
// whitespace and parens (which would break tokenization) map to '_'.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r', '(', ')', '"':
			return '_'
		default:
			return r
		}
	}, name)
}

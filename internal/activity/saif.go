package activity

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// saifToken is one lexeme: '(' or ')' (punct) or an atom.
type saifToken struct {
	text string
	line int
}

// saifLexer tokenizes the s-expression stream with line numbers.
type saifLexer struct {
	br   *bufio.Reader
	line int
	peek *saifToken
}

func newSaifLexer(r io.Reader) *saifLexer {
	return &saifLexer{br: bufio.NewReader(r), line: 1}
}

// next returns the next token, or nil at EOF.
func (l *saifLexer) next() (*saifToken, error) {
	if t := l.peek; t != nil {
		l.peek = nil
		return t, nil
	}
	for {
		c, err := l.br.ReadByte()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, fmt.Errorf("saif: line %d: %v", l.line, err)
		}
		switch c {
		case '\n':
			l.line++
		case ' ', '\t', '\r':
		case '/':
			// "//" line comments (emitted by some tools).
			if b, _ := l.br.Peek(1); len(b) == 1 && b[0] == '/' {
				if _, err := l.br.ReadString('\n'); err != nil && err != io.EOF {
					return nil, fmt.Errorf("saif: line %d: %v", l.line, err)
				}
				l.line++
				continue
			}
			return l.atom(c)
		case '(', ')':
			return &saifToken{text: string(c), line: l.line}, nil
		case '"':
			return l.quoted()
		default:
			return l.atom(c)
		}
	}
}

// unread pushes one token back.
func (l *saifLexer) unread(t *saifToken) { l.peek = t }

// atom reads an unquoted atom starting with c.
func (l *saifLexer) atom(c byte) (*saifToken, error) {
	start := l.line
	var b strings.Builder
	b.WriteByte(c)
	for {
		nb, err := l.br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("saif: line %d: %v", l.line, err)
		}
		if nb == '(' || nb == ')' || nb == ' ' || nb == '\t' || nb == '\r' || nb == '\n' {
			l.br.UnreadByte()
			break
		}
		b.WriteByte(nb)
	}
	return &saifToken{text: b.String(), line: start}, nil
}

// quoted reads a double-quoted string atom (quotes stripped).
func (l *saifLexer) quoted() (*saifToken, error) {
	start := l.line
	var b strings.Builder
	for {
		c, err := l.br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("saif: line %d: unterminated string", start)
		}
		if c == '"' {
			return &saifToken{text: b.String(), line: start}, nil
		}
		if c == '\n' {
			l.line++
		}
		b.WriteByte(c)
	}
}

// saifParser holds the recursive-descent state.
type saifParser struct {
	lex     *saifLexer
	profile *Profile
}

func (p *saifParser) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("saif: line %d: %s", line, fmt.Sprintf(format, args...))
}

// ReadSAIF parses a Switching Activity Interchange Format file:
// (SAIFILE ... (DURATION n) ... (INSTANCE name ... (NET (sig (T0 n)
// (T1 n) (TX n) (TC n) (IG n)) ...) (INSTANCE ...))). Instances nest;
// net names flatten with '.' across the instance path. T0/T1/TX are
// durations in the file's timescale units, TC the toggle count, IG
// glitch toggles (excluded from density). Unknown groups are skipped
// structurally. Errors carry the 1-based line number.
func ReadSAIF(r io.Reader) (*Profile, error) {
	p := &saifParser{
		lex:     newSaifLexer(r),
		profile: &Profile{Source: "saif"},
	}
	t, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	if t == nil || t.text != "(" {
		line := 1
		if t != nil {
			line = t.line
		}
		return nil, p.errf(line, "expected ( to open SAIFILE")
	}
	kw, err := p.lex.next()
	if err != nil {
		return nil, err
	}
	if kw == nil || !strings.EqualFold(kw.text, "SAIFILE") {
		got := "EOF"
		line := t.line
		if kw != nil {
			got = kw.text
			line = kw.line
		}
		return nil, p.errf(line, "expected SAIFILE, got %q", got)
	}
	if err := p.saifile(kw.line); err != nil {
		return nil, err
	}
	// Anything after the closing paren besides whitespace is malformed.
	if tr, err := p.lex.next(); err != nil {
		return nil, err
	} else if tr != nil {
		return nil, p.errf(tr.line, "trailing token %q after SAIFILE", tr.text)
	}
	if p.profile.Duration <= 0 {
		return nil, fmt.Errorf("saif: missing or non-positive DURATION")
	}
	// One timescale unit is one clock cycle unless the caller
	// renormalizes with SetClockPeriod.
	p.profile.Cycles = p.profile.Duration
	if err := p.profile.buildIndex(); err != nil {
		return nil, err
	}
	return p.profile, nil
}

// saifile parses the groups inside (SAIFILE ...) after the keyword.
func (p *saifParser) saifile(line int) error {
	for {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		if t == nil {
			return p.errf(line, "SAIFILE not closed by ) before EOF")
		}
		if t.text == ")" {
			return nil
		}
		if t.text != "(" {
			return p.errf(t.line, "unexpected token %q in SAIFILE (expected a ( group)", t.text)
		}
		kw, err := p.lex.next()
		if err != nil {
			return err
		}
		if kw == nil {
			return p.errf(t.line, "unterminated group in SAIFILE")
		}
		switch {
		case strings.EqualFold(kw.text, "DURATION"):
			n, err := p.intGroup(kw.line)
			if err != nil {
				return err
			}
			p.profile.Duration = n
		case strings.EqualFold(kw.text, "TIMESCALE"):
			ts, err := p.atomsGroup(kw.line)
			if err != nil {
				return err
			}
			p.profile.Timescale = ts
		case strings.EqualFold(kw.text, "INSTANCE"):
			if err := p.instance(kw.line, nil); err != nil {
				return err
			}
		default:
			// SAIFVERSION, DIRECTION, DESIGN, DATE, VENDOR, PROGRAM_NAME,
			// VERSION, DIVIDER... — skip structurally.
			if err := p.skipGroup(kw.line); err != nil {
				return err
			}
		}
	}
}

// instance parses (INSTANCE name ... ) with the keyword consumed;
// scope is the enclosing instance path.
func (p *saifParser) instance(line int, scope []string) error {
	name, err := p.lex.next()
	if err != nil {
		return err
	}
	if name == nil || name.text == "(" || name.text == ")" {
		return p.errf(line, "INSTANCE missing name")
	}
	path := append(append([]string(nil), scope...), name.text)
	for {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		if t == nil {
			return p.errf(line, "INSTANCE %s not closed by ) before EOF", strings.Join(path, "."))
		}
		if t.text == ")" {
			return nil
		}
		if t.text != "(" {
			return p.errf(t.line, "unexpected token %q in INSTANCE %s", t.text, strings.Join(path, "."))
		}
		kw, err := p.lex.next()
		if err != nil {
			return err
		}
		if kw == nil {
			return p.errf(t.line, "unterminated group in INSTANCE")
		}
		switch {
		case strings.EqualFold(kw.text, "INSTANCE"):
			if err := p.instance(kw.line, path); err != nil {
				return err
			}
		case strings.EqualFold(kw.text, "NET"), strings.EqualFold(kw.text, "PORT"):
			if err := p.netGroup(kw.line, path); err != nil {
				return err
			}
		default:
			if err := p.skipGroup(kw.line); err != nil {
				return err
			}
		}
	}
}

// netGroup parses (NET (sig (T0 n)(T1 n)...) ...) with NET consumed.
func (p *saifParser) netGroup(line int, scope []string) error {
	for {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		if t == nil {
			return p.errf(line, "NET not closed by ) before EOF")
		}
		if t.text == ")" {
			return nil
		}
		if t.text != "(" {
			return p.errf(t.line, "unexpected token %q in NET (expected a ( signal entry)", t.text)
		}
		name, err := p.lex.next()
		if err != nil {
			return err
		}
		if name == nil || name.text == "(" || name.text == ")" {
			return p.errf(t.line, "NET entry missing signal name")
		}
		if err := p.signalEntry(name, scope); err != nil {
			return err
		}
	}
}

// signalEntry parses the (T0 n)(T1 n)(TX n)(TC n)(IG n) counters of one
// signal entry, with the name consumed and the closing ) pending.
func (p *saifParser) signalEntry(name *saifToken, scope []string) error {
	full := name.text
	if len(scope) > 0 {
		full = strings.Join(scope, ".") + "." + full
	}
	sig := &Signal{Name: full}
	var tc, ig int64
	for {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		if t == nil {
			return p.errf(name.line, "signal %s not closed by ) before EOF", full)
		}
		if t.text == ")" {
			break
		}
		if t.text != "(" {
			return p.errf(t.line, "unexpected token %q in signal %s (expected (T0|T1|TX|TC|IG n))", t.text, full)
		}
		kw, err := p.lex.next()
		if err != nil {
			return err
		}
		if kw == nil {
			return p.errf(t.line, "unterminated counter group in signal %s", full)
		}
		n, err := p.intGroup(kw.line)
		if err != nil {
			return err
		}
		if n < 0 {
			return p.errf(kw.line, "negative %s count %d for signal %s", strings.ToUpper(kw.text), n, full)
		}
		switch strings.ToUpper(kw.text) {
		case "T0":
			sig.LowTime = n
		case "T1":
			sig.HighTime = n
		case "TX", "TZ":
			sig.UnknownTime += n
		case "TC":
			tc = n
		case "IG":
			ig = n
		default:
			// TB and vendor extensions: ignore the value.
		}
	}
	// TC counts all toggles including glitches; IG is the glitch subset.
	sig.Toggles = tc - ig
	if sig.Toggles < 0 {
		return p.errf(name.line, "signal %s has IG %d exceeding TC %d", full, ig, tc)
	}
	p.profile.Signals = append(p.profile.Signals, sig)
	return nil
}

// intGroup parses "n )" — the integer payload and closing paren of a
// (KEYWORD n) group whose keyword is already consumed.
func (p *saifParser) intGroup(line int) (int64, error) {
	t, err := p.lex.next()
	if err != nil {
		return 0, err
	}
	if t == nil || t.text == "(" || t.text == ")" {
		return 0, p.errf(line, "expected integer value in group")
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf(t.line, "bad integer %q", t.text)
	}
	cl, err := p.lex.next()
	if err != nil {
		return 0, err
	}
	if cl == nil || cl.text != ")" {
		return 0, p.errf(t.line, "group not closed by ) after %q", t.text)
	}
	return n, nil
}

// atomsGroup consumes atoms until the closing paren, returning them
// space-joined (for TIMESCALE's "1 ns" style payload).
func (p *saifParser) atomsGroup(line int) (string, error) {
	var parts []string
	for {
		t, err := p.lex.next()
		if err != nil {
			return "", err
		}
		if t == nil {
			return "", p.errf(line, "group not closed by ) before EOF")
		}
		if t.text == ")" {
			return strings.Join(parts, " "), nil
		}
		if t.text == "(" {
			return "", p.errf(t.line, "unexpected ( in atom group")
		}
		parts = append(parts, t.text)
	}
}

// skipGroup consumes a balanced group whose opening ( and keyword are
// already consumed.
func (p *saifParser) skipGroup(line int) error {
	depth := 1
	for depth > 0 {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		if t == nil {
			return p.errf(line, "group not closed by ) before EOF")
		}
		switch t.text {
		case "(":
			depth++
		case ")":
			depth--
		}
	}
	return nil
}

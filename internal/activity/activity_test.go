package activity

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustRead(t *testing.T, path string) *Profile {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		t.Fatalf("Read(%s): %v", path, err)
	}
	return p
}

// The sniffing Read must dispatch both golden files to the right parser.
func TestReadSniffsFormat(t *testing.T) {
	vcd := mustRead(t, filepath.Join("testdata", "simple.vcd"))
	if vcd.Source != "vcd" {
		t.Fatalf("simple.vcd sniffed as %q", vcd.Source)
	}
	saif := mustRead(t, filepath.Join("testdata", "simple.saif"))
	if saif.Source != "saif" {
		t.Fatalf("simple.saif sniffed as %q", saif.Source)
	}
	// Leading whitespace must not confuse the sniffer.
	p, err := Read(strings.NewReader("\n\t (SAIFILE (DURATION 1) (INSTANCE t (NET (a (T0 1) (T1 0) (TC 0)))))"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != "saif" {
		t.Fatalf("whitespace-prefixed SAIF sniffed as %q", p.Source)
	}
}

// The hand-written VCD and SAIF goldens describe the same signals a and
// b with identical statistics; both parsers must agree exactly.
func TestGoldensAgree(t *testing.T) {
	vcd := mustRead(t, filepath.Join("testdata", "simple.vcd"))
	saif := mustRead(t, filepath.Join("testdata", "simple.saif"))

	if vcd.Duration != 4 || vcd.Cycles != 4 {
		t.Fatalf("vcd window = %d/%d, want 4/4", vcd.Duration, vcd.Cycles)
	}
	if saif.Duration != 4 || saif.Cycles != 4 {
		t.Fatalf("saif window = %d/%d, want 4/4", saif.Duration, saif.Cycles)
	}
	if vcd.Ignored != 1 {
		t.Fatalf("vcd Ignored = %d, want 1 (the 8-bit bus)", vcd.Ignored)
	}
	for _, tc := range []struct {
		name            string
		toggles, hi, lo int64
	}{
		{"top.a", 3, 2, 2},
		{"top.b", 1, 2, 2},
	} {
		for _, p := range []*Profile{vcd, saif} {
			s := p.Signal(tc.name)
			if s == nil {
				t.Fatalf("%s: signal %s missing", p.Source, tc.name)
			}
			if s.Toggles != tc.toggles || s.HighTime != tc.hi || s.LowTime != tc.lo {
				t.Errorf("%s %s = {T:%d H:%d L:%d}, want {T:%d H:%d L:%d}",
					p.Source, tc.name, s.Toggles, s.HighTime, s.LowTime, tc.toggles, tc.hi, tc.lo)
			}
		}
	}
	// The SAIF-only nested-instance signal: T1=2/T0=1/TX=1, TC=4 with
	// IG=2 glitches excluded.
	c := saif.Signal("top.sub.c")
	if c == nil {
		t.Fatal("top.sub.c missing from saif profile")
	}
	if c.Toggles != 2 || c.UnknownTime != 1 {
		t.Fatalf("top.sub.c = {T:%d X:%d}, want {T:2 X:1}", c.Toggles, c.UnknownTime)
	}
	if got, want := c.P(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("top.sub.c P = %g, want %g", got, want)
	}
}

func TestBindMatchingTiers(t *testing.T) {
	p := mustRead(t, filepath.Join("testdata", "simple.vcd"))
	// Exact, basename, case-folded basename, escaped, and unmatched.
	b, err := p.Bind([]string{"top.a", "b", "\\B", "nope"})
	if err != nil {
		t.Fatal(err)
	}
	if b.MatchedCount != 3 {
		t.Fatalf("MatchedCount = %d, want 3 (%v)", b.MatchedCount, b.Unmatched)
	}
	if !b.Matched[0] || !b.Matched[1] || !b.Matched[2] || b.Matched[3] {
		t.Fatalf("Matched = %v", b.Matched)
	}
	if len(b.Unmatched) != 1 || b.Unmatched[0] != "nope" {
		t.Fatalf("Unmatched = %v", b.Unmatched)
	}
	// a: p = 0.5, D = 3/4. b: D = 1/4.
	if b.Probs[0] != 0.5 || b.Toggles[0] != 0.75 {
		t.Fatalf("top.a bound to p=%g D=%g", b.Probs[0], b.Toggles[0])
	}
	if b.Toggles[1] != 0.25 || b.Toggles[2] != 0.25 {
		t.Fatalf("b bound to D=%g, \\B to D=%g", b.Toggles[1], b.Toggles[2])
	}
	// Unmatched inputs fall back to the uniform assumption: p = 0.5 and
	// an unpinned (NaN) density.
	if b.Probs[3] != 0.5 || !math.IsNaN(b.Toggles[3]) {
		t.Fatalf("unmatched input bound to p=%g D=%g", b.Probs[3], b.Toggles[3])
	}
	if !strings.Contains(b.Coverage(), "matched 3/4") || !strings.Contains(b.Coverage(), "nope") {
		t.Fatalf("Coverage() = %q", b.Coverage())
	}
}

// Two scopes flattening onto the same leaf name make a basename lookup
// ambiguous — an error naming the colliders, never a silent pick.
func TestBindAmbiguousBasename(t *testing.T) {
	src := `$enddefinitions $end` // assembled below instead
	_ = src
	vcd := `$scope module top $end
$scope module u1 $end
$var wire 1 ! clk_q $end
$upscope $end
$scope module u2 $end
$var wire 1 " clk_q $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
0!
1"
#1
`
	p, err := ReadVCD(strings.NewReader(vcd))
	if err != nil {
		t.Fatal(err)
	}
	// Exact names still resolve fine.
	b, err := p.Bind([]string{"top.u1.clk_q"})
	if err != nil || b.MatchedCount != 1 {
		t.Fatalf("exact bind: %v, %+v", err, b)
	}
	// The bare basename is ambiguous.
	if _, err := p.Bind([]string{"clk_q"}); err == nil {
		t.Fatal("ambiguous basename bind succeeded")
	} else if !strings.Contains(err.Error(), "top.u1.clk_q") || !strings.Contains(err.Error(), "top.u2.clk_q") {
		t.Fatalf("ambiguity error does not name colliders: %v", err)
	}
}

// A dump whose flattening collapses two distinct nets onto one full name
// is rejected outright.
func TestDuplicateFlattenedName(t *testing.T) {
	vcd := `$scope module top $end
$var wire 1 ! a $end
$var wire 1 " a $end
$upscope $end
$enddefinitions $end
#0
`
	if _, err := ReadVCD(strings.NewReader(vcd)); err == nil {
		t.Fatal("duplicate flattened name accepted")
	} else if !strings.Contains(err.Error(), "duplicate signal") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Densities above one toggle per cycle (clock-like nets) clamp at bind
// time and are counted in the binding.
func TestBindClampsDensity(t *testing.T) {
	vcd := `$var wire 1 ! clk $end
$enddefinitions $end
#0
0!
#1
1!
#2
0!
#3
1!
#4
0!
#10
`
	p, err := ReadVCD(strings.NewReader(vcd))
	if err != nil {
		t.Fatal(err)
	}
	// 4 toggles over... timestamps {0,1,2,3,4,10} -> 5 cycles: D = 0.8;
	// renormalize to 2 cycles to force a clamp.
	if err := p.SetClockPeriod(5); err != nil {
		t.Fatal(err)
	}
	if p.Cycles != 2 {
		t.Fatalf("Cycles = %d after SetClockPeriod(5), want 2", p.Cycles)
	}
	b, err := p.Bind([]string{"clk"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Toggles[0] != 1 || b.Clamped != 1 {
		t.Fatalf("clamp: D=%g Clamped=%d", b.Toggles[0], b.Clamped)
	}
	if err := p.SetClockPeriod(0); err == nil {
		t.Fatal("SetClockPeriod(0) accepted")
	}
}

// Digest is a content address: formatting and declaration order do not
// change it; any statistic does.
func TestDigest(t *testing.T) {
	saifA := `(SAIFILE (DURATION 4) (INSTANCE top (NET
	  (a (T0 2) (T1 2) (TC 3))
	  (b (T0 2) (T1 2) (TC 1)))))`
	saifB := `(SAIFILE
	  (DURATION 4)
	  (INSTANCE top (NET
	    (b (T1 2) (T0 2) (TC 1) (IG 0))
	    (a (TC 3) (T0 2) (T1 2)))))`
	saifC := strings.Replace(saifA, "(TC 3)", "(TC 2)", 1)
	pa, err := ReadSAIF(strings.NewReader(saifA))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ReadSAIF(strings.NewReader(saifB))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := ReadSAIF(strings.NewReader(saifC))
	if err != nil {
		t.Fatal(err)
	}
	if pa.Digest() != pb.Digest() {
		t.Fatal("reordered/reformatted dump digests differently")
	}
	if pa.Digest() == pc.Digest() {
		t.Fatal("changed toggle count digests identically")
	}
	// The VCD golden carries the same a/b statistics as the SAIF golden
	// minus the extra nested signal, so across-format digests differ
	// only because of that signal — check the equal-signal case too.
	vcdEq := `$scope module top $end
$var wire 1 ! a $end
$var wire 1 " b $end
$upscope $end
$enddefinitions $end
#0
0!
1"
#1
1!
#2
0!
0"
#3
1!
#4
`
	pv, err := ReadVCD(strings.NewReader(vcdEq))
	if err != nil {
		t.Fatal(err)
	}
	if pv.Digest() != pa.Digest() {
		t.Fatal("VCD and SAIF with identical statistics digest differently")
	}
}

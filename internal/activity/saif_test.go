package activity

import (
	"strings"
	"testing"
)

func TestReadSAIFMalformed(t *testing.T) {
	cases := []struct {
		name, src, wantMsg string
	}{
		{"not saif", "(WRONGFILE)", "expected SAIFILE"},
		{"no open paren", "SAIFILE", "expected ( to open"},
		{"unclosed saifile", "(SAIFILE (DURATION 4)", "not closed by )"},
		{"trailing garbage", "(SAIFILE (DURATION 4)) extra", "trailing token"},
		{"missing duration", "(SAIFILE (INSTANCE top (NET (a (T0 1)))))", "DURATION"},
		{"bad duration", "(SAIFILE (DURATION many))", "bad integer"},
		{"instance no name", "(SAIFILE (DURATION 4) (INSTANCE (NET)))", "INSTANCE missing name"},
		{"net entry no name", "(SAIFILE (DURATION 4) (INSTANCE top (NET ((T0 1)))))", "missing signal name"},
		{"negative count", "(SAIFILE (DURATION 4) (INSTANCE top (NET (a (T0 -1)))))", "negative T0"},
		{"ig over tc", "(SAIFILE (DURATION 4) (INSTANCE top (NET (a (TC 1) (IG 2)))))", "IG 2 exceeding TC 1"},
		{"unterminated string", `(SAIFILE (DATE "never`, "unterminated string"},
		{"stray atom in net", "(SAIFILE (DURATION 4) (INSTANCE top (NET stray)))", "unexpected token"},
		{"unclosed counter", "(SAIFILE (DURATION 4) (INSTANCE top (NET (a (T0 1 2)))))", "not closed by )"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSAIF(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not carry %q", err, tc.wantMsg)
			}
		})
	}
}

// Errors point at the line of the offense, even deep into a multi-line
// file.
func TestSAIFErrorLineNumbers(t *testing.T) {
	src := `(SAIFILE
  (DURATION 4)
  (INSTANCE top
    (NET
      (a (T0 oops))
    )
  )
)`
	_, err := ReadSAIF(strings.NewReader(src))
	if err == nil {
		t.Fatal("accepted bad integer")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error %q does not carry line 5", err)
	}
}

// Unknown header groups, comments, quoted strings, and vendor counter
// extensions are skipped structurally, not fatally.
func TestSAIFForwardCompat(t *testing.T) {
	src := `// tool banner comment
(SAIFILE
  (SAIFVERSION "2.0")
  (PROGRAM_NAME "some tool")
  (DIVIDER / )
  (DURATION 10)
  (INSTANCE top
    (SOMETHING (NESTED (DEEP 1)))
    (NET
      (a (T0 4) (T1 6) (TC 3) (TB 2))
    )
  )
)`
	p, err := ReadSAIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	a := p.Signal("top.a")
	if a == nil || a.Toggles != 3 || a.HighTime != 6 {
		t.Fatalf("top.a = %+v", a)
	}
	if p.Duration != 10 || p.Cycles != 10 {
		t.Fatalf("window = %d/%d", p.Duration, p.Cycles)
	}
}

// PORT groups count like NET groups (tools disagree on which carries
// the primary-input activity).
func TestSAIFPortGroup(t *testing.T) {
	src := `(SAIFILE (DURATION 8) (INSTANCE top
	  (PORT (in1 (T0 4) (T1 4) (TC 5)))))`
	p, err := ReadSAIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Signal("top.in1")
	if s == nil || s.Toggles != 5 {
		t.Fatalf("top.in1 = %+v", s)
	}
}

package activity

import (
	"bytes"
	"math"
	"testing"

	"powder/internal/cellib"
	"powder/internal/netlist"
	"powder/internal/sim"
)

// testNetlist builds a small 3-input circuit (f = (a^c)&b).
func testNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	lib := cellib.Lib2()
	nl := netlist.New("dumptest", lib)
	var ins []netlist.NodeID
	for _, name := range []string{"a", "b", "c"} {
		id, err := nl.AddInput(name)
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, id)
	}
	d, err := nl.AddGate("d", lib.Cell("xor2"), []netlist.NodeID{ins[0], ins[2]})
	if err != nil {
		t.Fatal(err)
	}
	f, err := nl.AddGate("f", lib.Cell("and2"), []netlist.NodeID{d, ins[1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.AddOutput("f", f); err != nil {
		t.Fatal(err)
	}
	return nl
}

// simStats recomputes an input's reference statistics straight from the
// simulator words: ones over the first nvec-1 vectors (value time) and
// consecutive-pair differences (toggles).
func simStats(s *sim.Simulator, id netlist.NodeID) (hi, toggles int64) {
	words := s.Value(id)
	nvec := s.NumVectors()
	prev := bitAt(words, 0)
	if prev == 1 {
		hi++
	}
	for t := 1; t < nvec; t++ {
		v := bitAt(words, t)
		if v != prev {
			toggles++
		}
		if v == 1 && t < nvec-1 {
			hi++
		}
		prev = v
	}
	return hi, toggles
}

// DumpVCD then ReadVCD must reproduce the simulator's input statistics
// exactly — bit for bit, not within tolerance.
func TestDumpVCDRoundTrip(t *testing.T) {
	nl := testNetlist(t)
	opts := DumpOptions{Words: 8, Seed: 42}
	var buf bytes.Buffer
	nvec, err := DumpVCD(&buf, nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nvec != 8*64 {
		t.Fatalf("nvec = %d", nvec)
	}
	p, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted VCD unreadable: %v\n%s", err, buf.String()[:200])
	}
	if p.Source != "vcd" {
		t.Fatalf("sniffed as %q", p.Source)
	}
	if p.Cycles != int64(nvec-1) || p.Duration != int64(nvec-1) {
		t.Fatalf("window = %d/%d, want %d", p.Duration, p.Cycles, nvec-1)
	}
	ref := sim.New(nl, opts.Words)
	ref.SetInputsRandom(opts.Seed, nil)
	ref.Run()
	for _, id := range nl.Inputs() {
		name := "dumptest." + nl.Node(id).Name()
		s := p.Signal(name)
		if s == nil {
			t.Fatalf("signal %s missing from emitted profile", name)
		}
		hi, tog := simStats(ref, id)
		if s.HighTime != hi || s.Toggles != tog {
			t.Fatalf("%s = {H:%d T:%d}, want {H:%d T:%d}", name, s.HighTime, s.Toggles, hi, tog)
		}
		if s.UnknownTime != 0 {
			t.Fatalf("%s has unknown time %d", name, s.UnknownTime)
		}
	}
}

// DumpSAIF must produce the identical profile to DumpVCD for the same
// stimulus: same digest, so the daemon's cache treats them as one
// workload.
func TestDumpFormatsAgree(t *testing.T) {
	nl := testNetlist(t)
	opts := DumpOptions{Words: 4, Seed: 7}
	var vbuf, sbuf bytes.Buffer
	if _, err := DumpVCD(&vbuf, nl, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := DumpSAIF(&sbuf, nl, opts); err != nil {
		t.Fatal(err)
	}
	pv, err := Read(bytes.NewReader(vbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Read(bytes.NewReader(sbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Source != "saif" {
		t.Fatalf("sniffed as %q", ps.Source)
	}
	if pv.Digest() != ps.Digest() {
		t.Fatalf("VCD and SAIF dumps of the same stimulus digest differently:\nvcd  %+v\nsaif %+v",
			pv.Signals[0], ps.Signals[0])
	}
}

// The self-consistency loop: dump uniform random stimulus, ingest it,
// bind onto the netlist inputs — the recovered probabilities and
// densities must sit within sampling noise of the uniform model
// (p = 0.5, D = 2p(1-p) = 0.5).
func TestDumpSelfConsistency(t *testing.T) {
	nl := testNetlist(t)
	var buf bytes.Buffer
	if _, err := DumpVCD(&buf, nl, DumpOptions{Words: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, 3)
	for _, id := range nl.Inputs() {
		names = append(names, nl.Node(id).Name())
	}
	// Bare names must match through the basename tier (the dump
	// prefixes the module scope).
	b, err := p.Bind(names)
	if err != nil {
		t.Fatal(err)
	}
	if b.MatchedCount != len(names) {
		t.Fatalf("coverage %s", b.Coverage())
	}
	// 64*64 = 4096 samples: 4 sigma of a Bernoulli mean is ~0.031.
	for i := range names {
		if math.Abs(b.Probs[i]-0.5) > 0.04 {
			t.Fatalf("input %s recovered p = %g", names[i], b.Probs[i])
		}
		if math.Abs(b.Toggles[i]-0.5) > 0.04 {
			t.Fatalf("input %s recovered D = %g", names[i], b.Toggles[i])
		}
	}
}

// Biased stimulus survives the round trip too.
func TestDumpBiasedProbs(t *testing.T) {
	nl := testNetlist(t)
	probs := []float64{0.9, 0.5, 0.1}
	var buf bytes.Buffer
	if _, err := DumpSAIF(&buf, nl, DumpOptions{Words: 64, Seed: 3, InputProbs: probs}); err != nil {
		t.Fatal(err)
	}
	p, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Bind([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range probs {
		if math.Abs(b.Probs[i]-want) > 0.04 {
			t.Fatalf("input %d recovered p = %g, want ~%g", i, b.Probs[i], want)
		}
		wantD := 2 * want * (1 - want)
		if math.Abs(b.Toggles[i]-wantD) > 0.04 {
			t.Fatalf("input %d recovered D = %g, want ~%g", i, b.Toggles[i], wantD)
		}
	}
}

// Package activity ingests workload switching-activity dumps — VCD
// value-change traces and SAIF toggle summaries — into a common Profile:
// per-signal static probability p(i) and transition density D(i) over the
// observation window. A Profile binds onto a netlist's primary-input (and,
// at the register cut, latch-output) names to produce the vectors the
// power model consumes: per-input signal probabilities (power
// sampling bias, seq fixpoint seed) and per-input transition densities
// (pinned E(i) at the PIs), replacing the paper's uniform
// temporal-independence assumption with the workload the user actually
// runs.
//
// Unknown-value policy (both formats): time spent in x or z is excluded
// from the probability denominator (p = high / (high + low)), and a
// transition only counts as a toggle between two known binary values —
// 0 → x → 1 is one toggle, 0 → x → 0 is none. Signals observed only in
// x/z report p = 0.5 and density 0.
//
// Density normalization: D(i) = toggles(i) / cycles. A VCD derives
// cycles from its distinct timestamps (timestamps are assumed to mark
// evaluation instants, e.g. clock cycles); a SAIF uses its DURATION in
// timescale units (one unit = one cycle by default). Dumps whose time
// axis is finer than the clock should be renormalized with
// SetClockPeriod. Densities above 1 (clocks, glitchy nets) are clamped
// at bind time and counted.
package activity

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Signal is one observed net: toggle count plus time spent per value
// class, all in the profile's time units.
type Signal struct {
	// Name is the flattened hierarchical name (scopes joined with '.').
	Name string
	// Toggles counts transitions between known binary values.
	Toggles int64
	// HighTime/LowTime/UnknownTime partition the observation window by
	// the signal's value (UnknownTime covers x and z).
	HighTime    int64
	LowTime     int64
	UnknownTime int64
}

// P returns the static signal probability: time at 1 over time at a
// known value. Signals never observed at a known value report 0.5.
func (s *Signal) P() float64 {
	known := s.HighTime + s.LowTime
	if known <= 0 {
		return 0.5
	}
	return float64(s.HighTime) / float64(known)
}

// Profile is a parsed activity dump: the observation window plus every
// scalar signal's accumulated statistics.
type Profile struct {
	// Source is the dump format: "vcd" or "saif".
	Source string
	// Timescale echoes the dump's declared time unit (informational).
	Timescale string
	// Duration is the observation window in time units.
	Duration int64
	// Cycles is the density normalization: D(i) = Toggles(i) / Cycles.
	// See the package comment for how each format derives it.
	Cycles int64
	// Signals holds every tracked scalar signal in declaration order.
	Signals []*Signal
	// Ignored counts declared signals the parser skipped (multi-bit
	// vectors, reals); they are reported, never silently dropped.
	Ignored int

	index map[string]int // full flattened name -> Signals index
}

// Signal returns the signal with the exact flattened name, or nil.
func (p *Profile) Signal(name string) *Signal {
	if i, ok := p.index[name]; ok {
		return p.Signals[i]
	}
	return nil
}

// Density returns a signal's transition density D = toggles / cycles,
// unclamped (clock-like signals can exceed 1; Bind clamps and counts).
func (p *Profile) Density(s *Signal) float64 {
	if p.Cycles <= 0 {
		return 0
	}
	return float64(s.Toggles) / float64(p.Cycles)
}

// SetClockPeriod renormalizes the density denominator to
// Duration / period cycles — for dumps whose time axis is finer than the
// clock (e.g. a 1 ps VCD of a 1 ns clock needs period 1000).
func (p *Profile) SetClockPeriod(period int64) error {
	if period <= 0 {
		return fmt.Errorf("activity: clock period must be positive, got %d", period)
	}
	cycles := p.Duration / period
	if cycles <= 0 {
		cycles = 1
	}
	p.Cycles = cycles
	return nil
}

// Digest returns a content address of the profile: two dumps with the
// same signals, statistics, and window digest identically regardless of
// format details (declaration order, comments, formatting). The service
// folds it into the result-cache key so the same netlist under different
// workloads never aliases.
func (p *Profile) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "powder-activity/v1\n%d %d\n", p.Duration, p.Cycles)
	names := make([]string, len(p.Signals))
	for i, s := range p.Signals {
		names[i] = s.Name
	}
	sort.Strings(names)
	for _, n := range names {
		s := p.Signal(n)
		fmt.Fprintf(h, "%s %d %d %d %d\n", s.Name, s.Toggles, s.HighTime, s.LowTime, s.UnknownTime)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// buildIndex finalizes a parsed profile; duplicate flattened names are a
// dump error (two scopes collapsing onto one name would silently merge
// distinct nets).
func (p *Profile) buildIndex() error {
	p.index = make(map[string]int, len(p.Signals))
	for i, s := range p.Signals {
		if prev, dup := p.index[s.Name]; dup {
			_ = prev
			return fmt.Errorf("activity: duplicate signal %q in %s dump", s.Name, p.Source)
		}
		p.index[s.Name] = i
	}
	return nil
}

// Binding maps a profile onto an ordered list of netlist input names.
type Binding struct {
	// Names echoes the bound input names, in netlist input order.
	Names []string
	// Probs holds the per-input signal probability: the matched signal's
	// P(), 0.5 for unmatched inputs.
	Probs []float64
	// Toggles holds the per-input transition density, clamped to [0,1];
	// NaN marks unmatched inputs (callers fall back to 2p(1-p)).
	Toggles []float64
	// Matched flags which inputs found a profile signal.
	Matched []bool
	// MatchedCount is the number of true entries in Matched.
	MatchedCount int
	// Unmatched lists the input names without a profile signal.
	Unmatched []string
	// Clamped counts matched inputs whose density exceeded 1 toggle per
	// cycle and was clamped (clocks routed to a data pin, glitchy nets).
	Clamped int
}

// Coverage renders the matched-signal report line.
func (b *Binding) Coverage() string {
	n := len(b.Names)
	pct := 0.0
	if n > 0 {
		pct = 100 * float64(b.MatchedCount) / float64(n)
	}
	s := fmt.Sprintf("matched %d/%d inputs (%.0f%%)", b.MatchedCount, n, pct)
	if len(b.Unmatched) > 0 {
		s += fmt.Sprintf(", unmatched: %s", strings.Join(b.Unmatched, " "))
	}
	if b.Clamped > 0 {
		s += fmt.Sprintf(", %d densities clamped to 1", b.Clamped)
	}
	return s
}

// unescape strips one leading backslash — the escape prefix BLIF, VCD,
// and SAIF all use for identifiers with unusual characters.
func unescape(name string) string {
	return strings.TrimPrefix(name, "\\")
}

// basename returns the last hierarchical component of a flattened name
// ('.' and '/' both separate scopes).
func basename(name string) string {
	if i := strings.LastIndexAny(name, "./"); i >= 0 {
		return name[i+1:]
	}
	return name
}

// matchTier is one name-resolution tier: a key derivation applied to
// both profile signals and netlist inputs.
type matchTier struct {
	desc string
	key  func(string) string
}

// The tiers, most to least specific: exact flattened name, escape-
// stripped name, hierarchical basename, case-folded basename. A lookup
// walks them in order and stops at the first tier with a hit; two
// distinct signals colliding on the winning key is an explicit
// ambiguity error, never a silent pick.
var matchTiers = []matchTier{
	{"exact", func(n string) string { return n }},
	{"escape-stripped", func(n string) string { return unescape(n) }},
	{"basename", func(n string) string { return basename(unescape(n)) }},
	{"case-folded basename", func(n string) string { return strings.ToLower(basename(unescape(n))) }},
}

// Bind resolves the profile's signals onto an ordered list of netlist
// input names (primary inputs, and at a register cut the latch outputs
// that follow them). Matching is case- and escape-aware and flattens
// hierarchy: an input matches by exact flattened name first, then by its
// escape-stripped form, then by unique hierarchical basename, then by
// unique case-folded basename. An ambiguous basename (two profile scopes
// flattening onto one leaf name) is an error; an input with no match is
// reported in Binding.Unmatched and defaults to the uniform assumption.
func (p *Profile) Bind(inputs []string) (*Binding, error) {
	// One key table per tier, with collision lists kept so ambiguity can
	// name the offenders.
	tables := make([]map[string][]int, len(matchTiers))
	for t, tier := range matchTiers {
		tables[t] = make(map[string][]int, len(p.Signals))
		for i, s := range p.Signals {
			k := tier.key(s.Name)
			tables[t][k] = append(tables[t][k], i)
		}
	}
	b := &Binding{
		Names:   append([]string(nil), inputs...),
		Probs:   make([]float64, len(inputs)),
		Toggles: make([]float64, len(inputs)),
		Matched: make([]bool, len(inputs)),
	}
	for i, name := range inputs {
		b.Probs[i] = 0.5
		b.Toggles[i] = math.NaN()
		sig, err := p.lookup(tables, name)
		if err != nil {
			return nil, err
		}
		if sig == nil {
			b.Unmatched = append(b.Unmatched, name)
			continue
		}
		b.Matched[i] = true
		b.MatchedCount++
		b.Probs[i] = sig.P()
		d := p.Density(sig)
		if d > 1 {
			d = 1
			b.Clamped++
		}
		b.Toggles[i] = d
	}
	return b, nil
}

// lookup resolves one input name through the tier tables.
func (p *Profile) lookup(tables []map[string][]int, name string) (*Signal, error) {
	for t, tier := range matchTiers {
		hits := tables[t][tier.key(name)]
		if len(hits) == 0 {
			continue
		}
		// Distinct signals sharing the key at the first tier that matches
		// make the input ambiguous.
		if len(hits) > 1 {
			names := make([]string, len(hits))
			for j, idx := range hits {
				names[j] = p.Signals[idx].Name
			}
			return nil, fmt.Errorf("activity: input %q is ambiguous under %s matching: profile signals %s collide",
				name, tier.desc, strings.Join(names, ", "))
		}
		return p.Signals[hits[0]], nil
	}
	return nil, nil
}

// Read parses an activity dump, sniffing the format by content: a dump
// whose first non-space byte opens an s-expression is SAIF, anything
// else is parsed as VCD. The reader is consumed.
func Read(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	if sniffSAIF(br) {
		return ReadSAIF(br)
	}
	return ReadVCD(br)
}

// sniffSAIF peeks past leading whitespace for the '(' that every
// SAIFILE opens with. VCD files start with a '$' directive, a comment,
// or a '#' timestamp — never '('.
func sniffSAIF(br *bufio.Reader) bool {
	for skip := 0; ; skip++ {
		buf, err := br.Peek(skip + 1)
		if err != nil || len(buf) <= skip {
			return false
		}
		switch c := buf[skip]; c {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return c == '('
		}
	}
}

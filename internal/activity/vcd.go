package activity

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// vcdVar is one declared scalar under one id code. Several $var lines
// may share an id code (aliases of the same net); statistics accumulate
// once per code and fan out to every alias at the end.
type vcdVar struct {
	signals []*Signal // aliases sharing this id code

	val       byte  // current value: '0', '1', 'x' (z folds into x)
	lastKnown byte  // last binary value seen, 0 if none yet
	since     int64 // timestamp of the last value change
	seen      bool  // a value change has been recorded
}

// vcdParser is the streaming state for one ReadVCD call.
type vcdParser struct {
	sc   *bufio.Scanner
	line int

	profile *Profile
	vars    map[string]*vcdVar // id code -> var
	scope   []string           // current $scope stack

	inHeader   bool
	time       int64
	haveTime   bool
	timestamps int64 // distinct timestamp count
}

func (p *vcdParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("vcd: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// ReadVCD parses a Value Change Dump. Only scalar (width-1) variables
// are profiled; wider vectors and reals are counted in Profile.Ignored.
// The time a signal holds each value accumulates between value changes,
// and the profile's cycle count is the number of distinct `#t`
// timestamps minus one (each timestamp is assumed to be one evaluation
// instant; use Profile.SetClockPeriod when the dump's time axis is finer
// than the clock). Errors carry the 1-based line number.
func ReadVCD(r io.Reader) (*Profile, error) {
	p := &vcdParser{
		sc:       bufio.NewScanner(r),
		profile:  &Profile{Source: "vcd"},
		vars:     make(map[string]*vcdVar),
		inHeader: true,
	}
	p.sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for p.sc.Scan() {
		p.line++
		line := strings.TrimSpace(p.sc.Text())
		if line == "" {
			continue
		}
		if err := p.handleLine(line); err != nil {
			return nil, err
		}
	}
	if err := p.sc.Err(); err != nil {
		return nil, fmt.Errorf("vcd: line %d: %v", p.line, err)
	}
	if p.inHeader {
		return nil, fmt.Errorf("vcd: line %d: missing $enddefinitions", p.line)
	}
	p.finish()
	if err := p.profile.buildIndex(); err != nil {
		return nil, err
	}
	return p.profile, nil
}

// handleLine dispatches one trimmed, non-empty line.
func (p *vcdParser) handleLine(line string) error {
	if p.inHeader {
		return p.headerLine(line)
	}
	return p.bodyLine(line)
}

// headerLine parses declaration-section directives.
func (p *vcdParser) headerLine(line string) error {
	tok := strings.Fields(line)
	switch tok[0] {
	case "$date", "$version", "$comment":
		return p.skipUntilEnd(line)
	case "$timescale":
		rest, err := p.collectUntilEnd(line)
		if err != nil {
			return err
		}
		p.profile.Timescale = strings.TrimSpace(rest)
		return nil
	case "$scope":
		// $scope <type> <name> $end
		rest, err := p.collectUntilEnd(line)
		if err != nil {
			return err
		}
		f := strings.Fields(rest)
		if len(f) != 2 {
			return p.errf("malformed $scope %q (want: $scope <type> <name> $end)", rest)
		}
		p.scope = append(p.scope, f[1])
		return nil
	case "$upscope":
		if _, err := p.collectUntilEnd(line); err != nil {
			return err
		}
		if len(p.scope) == 0 {
			return p.errf("$upscope without matching $scope")
		}
		p.scope = p.scope[:len(p.scope)-1]
		return nil
	case "$var":
		rest, err := p.collectUntilEnd(line)
		if err != nil {
			return err
		}
		return p.declareVar(rest)
	case "$enddefinitions":
		if _, err := p.collectUntilEnd(line); err != nil {
			return err
		}
		p.inHeader = false
		return nil
	default:
		if strings.HasPrefix(tok[0], "$") {
			// Unknown header directive: skip its body for forward compat.
			return p.skipUntilEnd(line)
		}
		return p.errf("unexpected token %q in declarations (before $enddefinitions)", tok[0])
	}
}

// declareVar parses "<type> <width> <id> <name> [index] " (the text
// between $var and $end).
func (p *vcdParser) declareVar(rest string) error {
	f := strings.Fields(rest)
	if len(f) < 4 {
		return p.errf("malformed $var %q (want: $var <type> <width> <id> <name> $end)", strings.TrimSpace(rest))
	}
	width, err := strconv.Atoi(f[1])
	if err != nil || width <= 0 {
		return p.errf("bad $var width %q", f[1])
	}
	if f[0] == "real" || width != 1 {
		p.profile.Ignored++
		return nil
	}
	id := f[2]
	// Name may carry a bit-select token ("q [0]") — join the remainder.
	name := strings.Join(f[3:], "")
	full := name
	if len(p.scope) > 0 {
		full = strings.Join(p.scope, ".") + "." + name
	}
	sig := &Signal{Name: full}
	p.profile.Signals = append(p.profile.Signals, sig)
	v := p.vars[id]
	if v == nil {
		v = &vcdVar{val: 'x'}
		p.vars[id] = v
	}
	v.signals = append(v.signals, sig)
	return nil
}

// bodyLine parses value-change-section lines.
func (p *vcdParser) bodyLine(line string) error {
	switch c := line[0]; {
	case c == '#':
		t, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return p.errf("bad timestamp %q", line)
		}
		if p.haveTime && t < p.time {
			return p.errf("timestamp %d goes backwards (previous %d)", t, p.time)
		}
		if !p.haveTime || t > p.time {
			p.timestamps++
		}
		p.time = t
		p.haveTime = true
		return nil
	case c == '$':
		// $dumpvars/$dumpon/$dumpoff/$dumpall markers and their $end;
		// value changes inside the block are normal body lines.
		return nil
	case c == '0' || c == '1' || c == 'x' || c == 'X' || c == 'z' || c == 'Z':
		if len(line) < 2 {
			return p.errf("scalar value change %q missing identifier", line)
		}
		return p.change(line[1:], normalizeVal(c))
	case c == 'b' || c == 'B':
		// "b<bits> <id>" — only width-1 vectors are profiled.
		f := strings.Fields(line)
		if len(f) != 2 {
			return p.errf("malformed vector change %q (want: b<bits> <id>)", line)
		}
		bits := f[0][1:]
		if len(bits) == 0 {
			return p.errf("vector change %q has no value bits", line)
		}
		if len(bits) > 1 {
			// A declared-wide vector was ignored at declaration; its
			// changes have no registered id and fall through harmlessly.
			if _, ok := p.vars[f[1]]; ok {
				return p.errf("vector change %q for scalar identifier %q", line, f[1])
			}
			return nil
		}
		return p.change(f[1], normalizeVal(bits[0]))
	case c == 'r' || c == 'R':
		// Real value change: reals are never profiled.
		return nil
	default:
		return p.errf("unexpected token %q in value-change section", line)
	}
}

// normalizeVal folds a value character to '0', '1', or 'x' (z and any
// case variant collapse to x).
func normalizeVal(c byte) byte {
	switch c {
	case '0', '1':
		return c
	default:
		return 'x'
	}
}

// change records a value change for the id code at the current time.
func (p *vcdParser) change(id string, val byte) error {
	v, ok := p.vars[id]
	if !ok {
		// Changes for ignored (wide/real) variables are expected; changes
		// for identifiers never declared at all are a malformed dump.
		return p.errf("value change for undeclared identifier %q", id)
	}
	if !p.haveTime {
		return p.errf("value change before any #timestamp")
	}
	v.account(p.time)
	if val != v.val {
		// A toggle is a transition between two known binary values; the
		// comparison runs against the last-known binary value so
		// 0 → x → 1 counts once and 0 → x → 0 not at all.
		if val == '0' || val == '1' {
			if v.lastKnown != 0 && v.lastKnown != val {
				for _, s := range v.signals {
					s.Toggles++
				}
			}
			v.lastKnown = val
		}
		v.val = val
	}
	v.since = p.time
	v.seen = true
	return nil
}

// account charges the interval since the last change to the current
// value's time bucket.
func (v *vcdVar) account(now int64) {
	if !v.seen || now <= v.since {
		return
	}
	dt := now - v.since
	for _, s := range v.signals {
		switch v.val {
		case '1':
			s.HighTime += dt
		case '0':
			s.LowTime += dt
		default:
			s.UnknownTime += dt
		}
	}
	v.since = now
}

// finish flushes every variable's tail interval to the final timestamp
// and derives the window statistics.
func (p *vcdParser) finish() {
	for _, v := range p.vars {
		v.account(p.time)
	}
	p.profile.Duration = p.time
	// Cycles: intervals between distinct timestamps. A one-timestamp dump
	// still normalizes by 1 so densities stay finite.
	p.profile.Cycles = p.timestamps - 1
	if p.profile.Cycles < 1 {
		p.profile.Cycles = 1
	}
}

// skipUntilEnd consumes lines until the $end that closes the directive
// opened on the current line.
func (p *vcdParser) skipUntilEnd(line string) error {
	_, err := p.collectUntilEnd(line)
	return err
}

// collectUntilEnd gathers the text between the directive keyword on the
// current line and its closing $end (which may be on the same line or a
// later one), returning the enclosed text.
func (p *vcdParser) collectUntilEnd(line string) (string, error) {
	directive := strings.Fields(line)[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, directive))
	var b strings.Builder
	for {
		if i := strings.Index(rest, "$end"); i >= 0 {
			b.WriteString(rest[:i])
			tail := strings.TrimSpace(rest[i+len("$end"):])
			if tail != "" {
				return "", p.errf("trailing text %q after $end", tail)
			}
			return b.String(), nil
		}
		b.WriteString(rest)
		b.WriteByte('\n')
		if !p.sc.Scan() {
			if err := p.sc.Err(); err != nil {
				return "", fmt.Errorf("vcd: line %d: %v", p.line, err)
			}
			return "", p.errf("%s not closed by $end before EOF", directive)
		}
		p.line++
		rest = strings.TrimSpace(p.sc.Text())
	}
}

package activity

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// addTestdata seeds the fuzzer with the committed golden dumps matching
// the glob.
func addTestdata(f *testing.F, glob string) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", glob))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzReadVCD throws arbitrary input at the VCD parser. It must never
// panic; whenever it accepts a dump, the profile must index cleanly,
// bind against its own signal names without error, and keep every
// statistic within the observation window.
func FuzzReadVCD(f *testing.F) {
	f.Add("$enddefinitions $end\n#0\n")
	f.Add("$scope module top $end\n$var wire 1 ! a $end\n$upscope $end\n$enddefinitions $end\n#0\n0!\n#1\n1!\n#2\n")
	f.Add("$timescale 1ns $end\n$var wire 1 ! a $end\n$enddefinitions $end\n#0\nx!\n#5\nz!\n#9\n")
	f.Add("$var wire 4 # bus $end\n$enddefinitions $end\n#0\nb1010 #\n#1\n")
	f.Add("$comment never closed\n")
	f.Add("$var wire 1 ! a $end\n$enddefinitions $end\n#5\n#3\n")
	f.Add("$dumpvars\n")
	addTestdata(f, "*.vcd")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadVCD(strings.NewReader(src))
		if err != nil {
			return
		}
		checkProfile(t, p, src)
	})
}

// FuzzReadSAIF throws arbitrary input at the SAIF parser with the same
// acceptance invariants.
func FuzzReadSAIF(f *testing.F) {
	f.Add("(SAIFILE (DURATION 4) (INSTANCE top (NET (a (T0 2) (T1 2) (TC 3)))))")
	f.Add("(SAIFILE (DURATION 1) (INSTANCE a (INSTANCE b (NET (c (T0 1) (T1 0) (TC 0))))))")
	f.Add("(SAIFILE (DURATION 4)")
	f.Add("(SAIFILE (DURATION 4) (INSTANCE top (NET (a (TC 1) (IG 2)))))")
	f.Add("(WRONG)")
	f.Add(`(SAIFILE (SAIFVERSION "2.0") (DURATION 10) // comment
	  (INSTANCE t (PORT (p (T0 5) (T1 5) (TX 0) (TC 2) (IG 1)))))`)
	addTestdata(f, "*.saif")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadSAIF(strings.NewReader(src))
		if err != nil {
			return
		}
		checkProfile(t, p, src)
	})
}

// checkProfile asserts the invariants every accepted profile must hold.
func checkProfile(t *testing.T, p *Profile, src string) {
	t.Helper()
	if p.Cycles <= 0 {
		t.Fatalf("accepted profile has Cycles %d\ninput: %q", p.Cycles, src)
	}
	names := make([]string, 0, len(p.Signals))
	for _, s := range p.Signals {
		if s.Toggles < 0 || s.HighTime < 0 || s.LowTime < 0 || s.UnknownTime < 0 {
			t.Fatalf("negative statistic in %+v\ninput: %q", s, src)
		}
		if pr := s.P(); pr < 0 || pr > 1 {
			t.Fatalf("P(%s) = %g out of [0,1]\ninput: %q", s.Name, pr, src)
		}
		if p.Signal(s.Name) != s {
			t.Fatalf("index lookup of %q misses its own signal\ninput: %q", s.Name, src)
		}
		names = append(names, s.Name)
	}
	// Binding onto the profile's own names must match every one (exact
	// tier) without error.
	b, err := p.Bind(names)
	if err != nil {
		t.Fatalf("self-bind failed: %v\ninput: %q", err, src)
	}
	if b.MatchedCount != len(names) {
		t.Fatalf("self-bind matched %d/%d\ninput: %q", b.MatchedCount, len(names), src)
	}
	if p.Digest() == "" {
		t.Fatalf("empty digest\ninput: %q", src)
	}
}

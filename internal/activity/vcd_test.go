package activity

import (
	"math"
	"strings"
	"testing"
)

// Every malformed dump must be rejected with the 1-based line number of
// the offense.
func TestReadVCDMalformed(t *testing.T) {
	cases := []struct {
		name, src, wantLine, wantMsg string
	}{
		{"missing enddefinitions", "$var wire 1 ! a $end\n#0\n", "line 2", "unexpected token"},
		{"truncated header", "$var wire 1 ! a $end\n", "line 1", "missing $enddefinitions"},
		{"bad var width", "$var wire zero ! a $end\n$enddefinitions $end\n#0\n", "line 1", "width"},
		{"short var", "$var wire 1 $end\n$enddefinitions $end\n#0\n", "line 1", "malformed $var"},
		{"unclosed directive", "$comment never closed\n", "line 1", "not closed by $end"},
		{"upscope underflow", "$upscope $end\n$enddefinitions $end\n#0\n", "line 1", "$upscope without"},
		{"bad timestamp", "$var wire 1 ! a $end\n$enddefinitions $end\n#xyz\n", "line 3", "bad timestamp"},
		{"time reversal", "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n#3\n", "line 4", "goes backwards"},
		{"undeclared id", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1?\n", "line 4", "undeclared identifier"},
		{"change before time", "$var wire 1 ! a $end\n$enddefinitions $end\n1!\n", "line 3", "before any #timestamp"},
		{"bare scalar", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1\n", "line 4", "missing identifier"},
		{"vector on scalar", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nb01 !\n", "line 4", "for scalar identifier"},
		{"garbage body", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\nhello\n", "line 4", "unexpected token"},
		{"malformed scope", "$scope module $end\n$enddefinitions $end\n#0\n", "line 1", "malformed $scope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadVCD(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantLine) || !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not carry %q and %q", err, tc.wantLine, tc.wantMsg)
			}
		})
	}
}

// The documented x/z policy: unknown time is excluded from p's
// denominator, z folds into x, and toggles only count between known
// binary values (0→x→1 is one toggle, 0→x→0 none).
func TestVCDUnknownPolicy(t *testing.T) {
	vcd := `$var wire 1 ! s $end
$var wire 1 " u $end
$enddefinitions $end
#0
0!
x"
#1
x!
#2
1!
#3
z!
#4
0!
#5
`
	p, err := ReadVCD(strings.NewReader(vcd))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Signal("s")
	// Intervals: [0,1)=0, [1,2)=x, [2,3)=1, [3,4)=z→x, [4,5)=0.
	if s.LowTime != 2 || s.HighTime != 1 || s.UnknownTime != 2 {
		t.Fatalf("s times = {L:%d H:%d X:%d}", s.LowTime, s.HighTime, s.UnknownTime)
	}
	// 0→x→1 counts once, 1→z→0 counts once.
	if s.Toggles != 2 {
		t.Fatalf("s toggles = %d, want 2", s.Toggles)
	}
	// p excludes unknown time: 1 high / 3 known.
	if got, want := s.P(), 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("s P = %g, want %g", got, want)
	}
	// A signal only ever seen at x: p = 0.5, no toggles.
	u := p.Signal("u")
	if u.P() != 0.5 || u.Toggles != 0 || u.UnknownTime != 5 {
		t.Fatalf("u = %+v", u)
	}
}

// Aliases: two $var declarations sharing one id code both receive the
// code's statistics.
func TestVCDAliases(t *testing.T) {
	vcd := `$scope module top $end
$var wire 1 ! a $end
$var wire 1 ! a_alias $end
$upscope $end
$enddefinitions $end
#0
0!
#1
1!
#2
`
	p, err := ReadVCD(strings.NewReader(vcd))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"top.a", "top.a_alias"} {
		s := p.Signal(name)
		if s == nil || s.Toggles != 1 || s.LowTime != 1 || s.HighTime != 1 {
			t.Fatalf("%s = %+v", name, s)
		}
	}
}

// Width-1 vector changes (b0 id / b1 id) are value changes; wide vector
// changes for ignored vars pass through.
func TestVCDVectorScalars(t *testing.T) {
	vcd := `$var wire 1 ! a $end
$var wire 4 # bus $end
$var real 64 % r $end
$enddefinitions $end
#0
b0 !
b1010 #
r1.25 %
#1
b1 !
#2
`
	p, err := ReadVCD(strings.NewReader(vcd))
	if err != nil {
		t.Fatal(err)
	}
	if p.Ignored != 2 {
		t.Fatalf("Ignored = %d, want 2", p.Ignored)
	}
	a := p.Signal("a")
	if a.Toggles != 1 || a.LowTime != 1 || a.HighTime != 1 {
		t.Fatalf("a = %+v", a)
	}
}

// $timescale and multi-line directives parse; the timescale is echoed.
func TestVCDHeaderDirectives(t *testing.T) {
	vcd := `$date
   June 26, 1996
$end
$timescale
   10 ps
$end
$scope module chip $end
$scope module alu $end
$var wire 1 ! carry $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
1!
#1
0!
#2
`
	p, err := ReadVCD(strings.NewReader(vcd))
	if err != nil {
		t.Fatal(err)
	}
	if p.Timescale != "10 ps" {
		t.Fatalf("Timescale = %q", p.Timescale)
	}
	if p.Signal("chip.alu.carry") == nil {
		t.Fatalf("scoped name missing; have %v", p.Signals)
	}
}

package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powder/internal/obs"
)

func entry(key string) *CacheEntry {
	return &CacheEntry{
		Key:        key,
		Circuit:    "c17",
		Result:     json.RawMessage(`{"reduction_pct":7.5}`),
		ResultBLIF: []byte(".model c17\n.end\n"),
		Ledger:     json.RawMessage(`{"moves":2}`),
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := OpenCache("", 2, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(entry("k1"))
	c.Put(entry("k2"))
	if e, ok := c.Get("k1"); !ok || string(e.ResultBLIF) == "" {
		t.Fatal("k1 should hit with content")
	}
	// k1 is now most recent; inserting k3 evicts k2.
	c.Put(entry("k3"))
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 should have been evicted (LRU)")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("k1 should survive eviction")
	}
	if got := reg.Counter("store.cache.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := reg.Counter("store.cache.hits").Value(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := reg.Counter("store.cache.misses").Value(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry("aaaa"))
	c.Put(entry("bbbb"))

	re, err := OpenCache(dir, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", re.Len())
	}
	e, ok := re.Get("aaaa")
	if !ok {
		t.Fatal("aaaa lost across reopen")
	}
	if string(e.ResultBLIF) != ".model c17\n.end\n" {
		t.Errorf("entry content corrupted: %q", e.ResultBLIF)
	}
	if e.CreatedAt.IsZero() {
		t.Error("CreatedAt not persisted")
	}
}

func TestCacheLRUOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry("old"))
	// Ensure distinct mtimes even on coarse filesystems.
	past := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, "old.json"), past, past)
	c.Put(entry("new"))

	re, err := OpenCache(dir, 1, nil, nil) // reload with a tighter bound
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("old"); ok {
		t.Error("oldest entry should be evicted when reopening over a smaller bound")
	}
	if _, ok := re.Get("new"); !ok {
		t.Error("newest entry should survive")
	}
	if _, err := os.Stat(filepath.Join(dir, "old.json")); !os.IsNotExist(err) {
		t.Error("evicted entry file not removed")
	}
}

func TestCacheDamagedEntryRemoved(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry("good"))
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCache(dir, 8, nil, nil)
	if err != nil {
		t.Fatalf("damaged entry must not fail OpenCache: %v", err)
	}
	if re.Len() != 1 {
		t.Errorf("loaded %d entries, want 1 (damaged removed)", re.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.json")); !os.IsNotExist(err) {
		t.Error("damaged entry file should be deleted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := OpenCache("", 32, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%40)
				if i%3 == 0 {
					c.Put(entry(k))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 32 {
		t.Errorf("cache exceeded its bound: %d", c.Len())
	}
}

package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// walBytes frames a sequence of records the way the store writes them.
func walBytes(t testing.TB, recs ...*walRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := appendFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReplay feeds arbitrary bytes to the journal-replay path: whatever
// the file contains, Open must neither fail nor panic, and the journal
// it leaves behind must replay cleanly (truncation is sticky: a second
// Open of the repaired file sees no corruption).
func FuzzReplay(f *testing.F) {
	now := time.Unix(1700000000, 0).UTC()
	good := walBytes(f,
		&walRecord{Type: "submit", Job: &JobRecord{ID: "j1", State: StateQueued, Input: []byte(".model m\n.end\n"), SubmittedAt: now}},
		&walRecord{Type: "start", ID: "j1"},
		&walRecord{Type: "finish", ID: "j1", State: StateCompleted, FinishedAt: now, ResultBLIF: []byte(".model m\n.end\n")},
	)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Add(good[:len(good)-3])                      // torn tail
	f.Add(append(append([]byte{}, good...), 0xFF)) // trailing garbage
	f.Add(walBytes(f, &walRecord{Type: "cancel", ID: "j1"}))
	f.Add(walBytes(f, &walRecord{Type: "bogus-type", ID: "zz"}))
	// An intact frame around non-JSON: CRC passes, decode must not.
	var raw bytes.Buffer
	appendFrame(&raw, []byte("\x00\x01 not json"))
	f.Add(raw.Bytes())

	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.wal"), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open failed on fuzzed journal: %v", err)
		}
		jobs := s.Jobs()
		for _, j := range jobs {
			if j.ID == "" {
				t.Fatalf("replay produced a job without an ID: %+v", j)
			}
		}
		// Whatever replay repaired must now be stable: reopening the same
		// directory yields the same job table with no further truncation.
		if err := s.Close(); err != nil {
			t.Fatalf("Close after fuzzed replay: %v", err)
		}
		s2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("second Open failed: %v", err)
		}
		defer s2.Close()
		again := s2.Jobs()
		if len(again) != len(jobs) {
			t.Fatalf("replay not idempotent: %d jobs then %d", len(jobs), len(again))
		}
		for i := range jobs {
			if jobs[i].ID != again[i].ID || jobs[i].State != again[i].State {
				t.Fatalf("replay not idempotent at %d: %+v vs %+v", i, jobs[i], again[i])
			}
		}
	})
}

// Package store is powderd's durability layer: an append-only,
// CRC-framed write-ahead journal plus periodic snapshots that persist
// job metadata, submitted BLIF, and completed results across daemon
// restarts, and a content-addressed cache of optimization results keyed
// by the structural hash of the input.
//
// The package is deliberately dumb about what it stores: options,
// results, and ledgers travel as raw JSON so the serving layer above
// owns the schema and no import cycle forms.
//
// Durability model
//
//   - Every state transition (submit, start, finish, cancel) is one
//     framed record appended to journal.wal and fsynced before the
//     caller proceeds.
//   - Every SnapshotEvery records the full job table is written to
//     snapshot.json via temp-file + fsync + atomic rename, and the
//     journal is reset. Replaying stale journal records over a fresh
//     snapshot is harmless: application is idempotent.
//   - On Open the snapshot is loaded, the journal replayed on top, and
//     a corrupt journal tail (torn write from a crash) is truncated and
//     counted — corruption degrades to data loss of the torn record
//     only, never a startup failure. An unreadable snapshot is
//     quarantined aside (snapshot.corrupt) rather than trusted.
//   - A failed append (disk full, I/O error) flips the store into
//     degraded mode: persistence stops, the daemon keeps serving from
//     memory, and the condition is logged once and exported as a
//     metric.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"powder/internal/obs"
)

// Job states persisted in records. They mirror the serving layer's
// states but are plain strings so the store stays schema-agnostic.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a persisted state is final.
func terminal(state string) bool {
	return state == StateCompleted || state == StateFailed || state == StateCancelled
}

// JobRecord is the persisted form of one job. Options, Result, and
// Ledger are opaque JSON owned by the serving layer.
type JobRecord struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Circuit string `json:"circuit,omitempty"`
	// CacheKey is the content-addressed key of the submission (structural
	// hash + options), used to warm the result cache from recovered jobs.
	CacheKey string          `json:"cache_key,omitempty"`
	Options  json.RawMessage `json:"options,omitempty"`
	Input    []byte          `json:"input,omitempty"`
	// Activity is the raw workload activity dump (VCD or SAIF) uploaded
	// with the submission, kept so an interrupted job re-runs under the
	// same workload after a restart.
	Activity    []byte          `json:"activity,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  time.Time       `json:"finished_at"`
	Result      json.RawMessage `json:"result,omitempty"`
	ResultBLIF  []byte          `json:"result_blif,omitempty"`
	Ledger      json.RawMessage `json:"ledger,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// Terminal reports whether the record's state is final.
func (r *JobRecord) Terminal() bool { return terminal(r.State) }

// walRecord is one journal entry.
type walRecord struct {
	Type string     `json:"t"`
	Job  *JobRecord `json:"job,omitempty"` // submit
	ID   string     `json:"id,omitempty"`  // start / finish / cancel
	// finish fields
	State      string          `json:"state,omitempty"`
	FinishedAt time.Time       `json:"finished_at,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	ResultBLIF []byte          `json:"result_blif,omitempty"`
	Ledger     json.RawMessage `json:"ledger,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// Hooks are the store's fault-injection points; all fields may be nil
// (the production configuration). See internal/faultinject for ready-
// made constructors.
type Hooks struct {
	// AppendErr, when non-nil, is consulted before each journal append;
	// a non-nil error is treated exactly like the underlying write
	// failing with it (e.g. a simulated ENOSPC), driving the store into
	// degraded mode.
	AppendErr func(recType string) error
	// ShortWrite, when non-nil, is consulted before each journal append;
	// a value n >= 0 makes the store write only the first n bytes of the
	// frame while still reporting success — a torn write, as left behind
	// by a crash mid-append. Return a negative value for a full write.
	ShortWrite func(recType string) int
}

// Options configures Open.
type Options struct {
	// Dir is the store directory; created if missing.
	Dir string
	// SnapshotEvery is the number of journal records between snapshots
	// (<= 0: 64).
	SnapshotEvery int
	// Registry receives the store metrics (nil: metrics are dropped).
	Registry *obs.Registry
	// Log receives recovery and degradation warnings (nil: slog.Default).
	Log *slog.Logger
	// Hooks inject faults for tests; nil for production.
	Hooks *Hooks
}

// Store is a durable job table: a write-ahead journal plus periodic
// snapshots under one directory. All methods are safe for concurrent
// use.
type Store struct {
	dir       string
	snapEvery int
	log       *slog.Logger
	hooks     *Hooks

	mu        sync.Mutex
	wal       *os.File
	jobs      map[string]*JobRecord
	order     []string
	sinceSnap int
	degraded  bool
	closed    bool

	appends     *obs.Counter
	replayed    *obs.Counter
	truncations *obs.Counter
	snapshots   *obs.Counter
	degradedCnt *obs.Counter
}

// Open loads (or creates) the store in opts.Dir: the snapshot is read,
// the journal replayed on top with tail-corruption truncation, and the
// journal opened for appending. Open fails only on genuine I/O errors
// (unreadable directory), never on corrupted contents.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Dir is required")
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 64
	}
	if opts.Log == nil {
		opts.Log = slog.Default()
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	s := &Store{
		dir:         opts.Dir,
		snapEvery:   opts.SnapshotEvery,
		log:         opts.Log,
		hooks:       opts.Hooks,
		jobs:        make(map[string]*JobRecord),
		appends:     reg.Counter("store.wal.records"),
		replayed:    reg.Counter("store.wal.replayed"),
		truncations: reg.Counter("store.wal.truncations"),
		snapshots:   reg.Counter("store.snapshots"),
		degradedCnt: reg.Counter("store.degraded"),
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "journal.wal") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// snapshotFile is the snapshot.json schema.
type snapshotFile struct {
	Version int          `json:"version"`
	Jobs    []*JobRecord `json:"jobs"`
}

// loadSnapshot reads snapshot.json into the job table. A missing file is
// a fresh store; an unreadable one is quarantined, not fatal.
func (s *Store) loadSnapshot() error {
	b, err := os.ReadFile(s.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %v", err)
	}
	var snap snapshotFile
	if jerr := json.Unmarshal(b, &snap); jerr != nil {
		s.truncations.Inc()
		s.log.Warn("store: quarantining unreadable snapshot", "path", s.snapshotPath(), "err", jerr)
		// Keep the bytes for post-mortem; rebuild from the journal alone.
		_ = os.Rename(s.snapshotPath(), s.snapshotPath()+".corrupt")
		return nil
	}
	for _, j := range snap.Jobs {
		if j == nil || j.ID == "" {
			continue
		}
		s.insert(j)
	}
	return nil
}

// replayJournal applies journal.wal on top of the snapshot, truncating a
// corrupt tail, and leaves the file open for appending.
func (s *Store) replayJournal() error {
	f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %v", err)
	}
	var replayed int
	good, corrupt := readFrames(f, func(payload []byte) bool {
		var rec walRecord
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return false // framed but unparsable: treat as tail damage
		}
		s.apply(&rec)
		replayed++
		return true
	})
	s.replayed.Add(int64(replayed))
	s.sinceSnap = replayed
	if corrupt {
		st, _ := f.Stat()
		s.truncations.Inc()
		var total int64
		if st != nil {
			total = st.Size()
		}
		s.log.Warn("store: truncating corrupt journal tail",
			"path", s.walPath(), "kept_bytes", good, "dropped_bytes", total-good)
		if terr := f.Truncate(good); terr != nil {
			f.Close()
			return fmt.Errorf("store: truncating corrupt journal tail: %v", terr)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking journal end: %v", err)
	}
	s.wal = f
	return nil
}

// insert adds or replaces a job record, keeping insertion order.
func (s *Store) insert(j *JobRecord) {
	if _, ok := s.jobs[j.ID]; !ok {
		s.order = append(s.order, j.ID)
	}
	s.jobs[j.ID] = j
}

// remove purges a job record.
func (s *Store) remove(id string) {
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// apply folds one journal record into the job table. Application is
// idempotent (a snapshot taken after a record may be replayed together
// with it) and tolerant of records for unknown jobs (dropped by an
// earlier cancel purge).
func (s *Store) apply(rec *walRecord) {
	switch rec.Type {
	case "submit":
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		j := *rec.Job
		s.insert(&j)
	case "start":
		if j, ok := s.jobs[rec.ID]; ok && !j.Terminal() {
			j.State = StateRunning
		}
	case "finish":
		j, ok := s.jobs[rec.ID]
		if !ok {
			return
		}
		if !terminal(rec.State) {
			return
		}
		j.State = rec.State
		j.FinishedAt = rec.FinishedAt
		j.Result = rec.Result
		j.ResultBLIF = rec.ResultBLIF
		j.Ledger = rec.Ledger
		j.Error = rec.Error
	case "cancel":
		// A cancel of a queued job purges it outright: replay must not
		// resurrect work the user already abandoned.
		s.remove(rec.ID)
	}
}

// append journals one record and folds it into the in-memory table. The
// in-memory update always happens; persistence is skipped in degraded
// mode. A write failure degrades the store instead of failing the
// caller: the daemon must keep serving even with a dead disk.
func (s *Store) append(rec *walRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply(rec)
	if s.degraded || s.closed {
		return
	}
	if err := s.appendLocked(rec); err != nil {
		s.degraded = true
		s.degradedCnt.Inc()
		s.log.Warn("store: journal append failed; degrading to in-memory mode (durability lost)",
			"err", err)
		return
	}
	s.appends.Inc()
	s.sinceSnap++
	if s.sinceSnap >= s.snapEvery {
		if err := s.snapshotLocked(); err != nil {
			// A failed snapshot is not fatal: the journal still has
			// everything. Try again after the next batch.
			s.log.Warn("store: snapshot failed; continuing on journal alone", "err", err)
			s.sinceSnap = 0
		}
	}
}

// appendLocked frames, writes, and fsyncs one record. Callers hold mu.
func (s *Store) appendLocked(rec *walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if h := s.hooks; h != nil && h.AppendErr != nil {
		if herr := h.AppendErr(rec.Type); herr != nil {
			return herr
		}
	}
	var buf bytes.Buffer
	if err := appendFrame(&buf, payload); err != nil {
		return err
	}
	frame := buf.Bytes()
	if h := s.hooks; h != nil && h.ShortWrite != nil {
		if n := h.ShortWrite(rec.Type); n >= 0 && n < len(frame) {
			// A torn write: the bytes land but the caller believes the
			// append succeeded, exactly like a crash between write and
			// the next append.
			_, _ = s.wal.Write(frame[:n])
			return nil
		}
	}
	if _, err := s.wal.Write(frame); err != nil {
		return err
	}
	return s.wal.Sync()
}

// snapshotLocked writes the full job table to snapshot.json atomically
// and resets the journal. Callers hold mu.
func (s *Store) snapshotLocked() error {
	snap := snapshotFile{Version: 1, Jobs: make([]*JobRecord, 0, len(s.order))}
	for _, id := range s.order {
		snap.Jobs = append(snap.Jobs, s.jobs[id])
	}
	b, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmp := s.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(s.dir)
	// The snapshot is durable; the journal can restart from empty. A
	// crash before the truncate replays journal records over a snapshot
	// that already contains them, which apply tolerates.
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	s.sinceSnap = 0
	s.snapshots.Inc()
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Errors are ignored: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// AppendSubmit persists a newly submitted job.
func (s *Store) AppendSubmit(j JobRecord) {
	if j.State == "" {
		j.State = StateQueued
	}
	s.append(&walRecord{Type: "submit", Job: &j})
}

// AppendStart persists a job's queued -> running transition.
func (s *Store) AppendStart(id string) {
	s.append(&walRecord{Type: "start", ID: id})
}

// AppendFinish persists a job's terminal transition with its outcome.
func (s *Store) AppendFinish(id, state string, finishedAt time.Time, result json.RawMessage, resultBLIF []byte, ledger json.RawMessage, errMsg string) {
	s.append(&walRecord{
		Type: "finish", ID: id, State: state, FinishedAt: finishedAt,
		Result: result, ResultBLIF: resultBLIF, Ledger: ledger, Error: errMsg,
	})
}

// AppendCancel persists the cancellation of a still-queued job by
// purging it: replay will not resurrect it.
func (s *Store) AppendCancel(id string) {
	s.append(&walRecord{Type: "cancel", ID: id})
}

// Jobs returns the current job table in insertion order (deep enough
// copies that callers may hold them across store mutations). Right
// after Open this is the recovered state.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Degraded reports whether persistence has been lost to a write failure.
func (s *Store) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Close snapshots the final state and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.degraded && s.sinceSnap > 0 {
		err = s.snapshotLocked()
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

package store

import (
	"container/list"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"powder/internal/obs"
)

// CacheEntry is one cached optimization outcome: everything needed to
// answer a duplicate submission without touching the worker pool.
type CacheEntry struct {
	// Key is the content address: the structural hash of the submitted
	// circuit combined with the effective option set (the serving layer
	// defines the exact derivation).
	Key     string `json:"key"`
	Circuit string `json:"circuit,omitempty"`
	// Result and Ledger are opaque serving-layer JSON.
	Result     json.RawMessage `json:"result,omitempty"`
	ResultBLIF []byte          `json:"result_blif,omitempty"`
	Ledger     json.RawMessage `json:"ledger,omitempty"`
	CreatedAt  time.Time       `json:"created_at"`
}

// Cache is a bounded LRU of optimization results, content-addressed by
// cache key. With a directory it persists each entry as one JSON file
// (written atomically) and reloads them on open; with an empty
// directory it is memory-only. Safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	dir     string // "" = memory-only
	max     int
	entries map[string]*list.Element // -> *CacheEntry, lru order
	lru     *list.List               // front = most recently used
	log     *slog.Logger

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// OpenCache builds a cache bounded to max entries (<= 0: 1024). dir may
// be empty for a memory-only cache; otherwise existing entries are
// loaded, oldest-first so the LRU order survives restarts (unreadable
// entry files are deleted, not trusted). reg receives the hit/miss/
// eviction counters (nil: dropped).
func OpenCache(dir string, max int, reg *obs.Registry, log *slog.Logger) (*Cache, error) {
	if max <= 0 {
		max = 1024
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if log == nil {
		log = slog.Default()
	}
	c := &Cache{
		dir:       dir,
		max:       max,
		entries:   make(map[string]*list.Element),
		lru:       list.New(),
		log:       log,
		hits:      reg.Counter("store.cache.hits"),
		misses:    reg.Counter("store.cache.misses"),
		evictions: reg.Counter("store.cache.evictions"),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := c.load(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// entryPath is the on-disk location of a key's entry file.
func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load scans the cache directory into the LRU, oldest mtime first.
func (c *Cache) load() error {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	type onDisk struct {
		path string
		mod  time.Time
	}
	var files []onDisk
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue
		}
		files = append(files, onDisk{filepath.Join(c.dir, de.Name()), info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files {
		b, rerr := os.ReadFile(f.path)
		var e CacheEntry
		if rerr != nil || json.Unmarshal(b, &e) != nil || e.Key == "" {
			// An entry file is pure derived data: deleting a damaged one
			// is always safe and self-healing.
			c.log.Warn("store: removing unreadable cache entry", "path", f.path)
			_ = os.Remove(f.path)
			continue
		}
		c.insertLocked(&e)
	}
	return nil
}

// insertLocked puts an entry at the front of the LRU, evicting from the
// back past the bound. Callers hold mu (or are in single-threaded open).
func (c *Cache) insertLocked(e *CacheEntry) {
	if el, ok := c.entries[e.Key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.Key] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		old := back.Value.(*CacheEntry)
		c.lru.Remove(back)
		delete(c.entries, old.Key)
		c.evictions.Inc()
		if c.dir != "" {
			_ = os.Remove(c.entryPath(old.Key))
		}
	}
}

// Get returns the entry for key, refreshing its recency. The second
// return distinguishes a hit from a miss; both are counted.
func (c *Cache) Get(key string) (*CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	e := el.Value.(*CacheEntry)
	if c.dir != "" {
		// Refresh the file's mtime so LRU recency survives a restart.
		now := time.Now()
		_ = os.Chtimes(c.entryPath(key), now, now)
	}
	return e, true
}

// Put stores an entry, persisting it when the cache is disk-backed. A
// persistence failure downgrades the entry to memory-only with a
// warning — caching is an optimization, never a reason to fail a job.
func (c *Cache) Put(e *CacheEntry) {
	if e == nil || e.Key == "" {
		return
	}
	if e.CreatedAt.IsZero() {
		e.CreatedAt = time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir != "" {
		if err := c.persist(e); err != nil {
			c.log.Warn("store: cache entry not persisted", "key", e.Key, "err", err)
		}
	}
	c.insertLocked(e)
}

// persist writes an entry file atomically (temp + rename).
func (c *Cache) persist(e *CacheEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp := c.entryPath(e.Key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.entryPath(e.Key)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(c.dir)
	return nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

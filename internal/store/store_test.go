package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powder/internal/faultinject"
	"powder/internal/obs"
)

func openTest(t *testing.T, dir string, reg *obs.Registry, hooks *Hooks) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Registry: reg, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submitN(s *Store, n int) {
	for i := 0; i < n; i++ {
		s.AppendSubmit(JobRecord{
			ID:          jobID(i),
			State:       StateQueued,
			Circuit:     "c",
			Input:       []byte(".model c\n.inputs a\n.outputs y\n.end\n"),
			Options:     json.RawMessage(`{"verify":false}`),
			SubmittedAt: time.Unix(1700000000+int64(i), 0).UTC(),
		})
	}
}

func jobID(i int) string { return "j" + string(rune('a'+i%26)) + "00" }

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil, nil)
	submitN(s, 3)
	s.AppendStart(jobID(0))
	s.AppendFinish(jobID(0), StateCompleted, time.Unix(1700000100, 0).UTC(),
		json.RawMessage(`{"reduction_pct":12.5}`), []byte(".model c\n.end\n"),
		json.RawMessage(`{"moves":1}`), "")
	s.AppendStart(jobID(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, nil, nil)
	jobs := re.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(jobs), jobs)
	}
	if jobs[0].State != StateCompleted || string(jobs[0].ResultBLIF) != ".model c\n.end\n" {
		t.Errorf("job 0 not recovered terminal with result: %+v", jobs[0])
	}
	if jobs[1].State != StateRunning {
		t.Errorf("job 1 state = %q, want running (crash mid-run)", jobs[1].State)
	}
	if jobs[2].State != StateQueued {
		t.Errorf("job 2 state = %q, want queued", jobs[2].State)
	}
	if string(jobs[2].Input) == "" {
		t.Error("job 2 lost its input BLIF")
	}
}

func TestCancelPurgesJournal(t *testing.T) {
	// A queued job that was cancelled must not be resurrected by replay:
	// the cancel record purges it. Regression test for the DELETE path.
	dir := t.TempDir()
	s := openTest(t, dir, nil, nil)
	submitN(s, 2)
	s.AppendCancel(jobID(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, nil, nil)
	jobs := re.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (cancelled job purged): %+v", len(jobs), jobs)
	}
	if jobs[0].ID != jobID(1) {
		t.Errorf("survivor is %q, want %q", jobs[0].ID, jobID(1))
	}
}

func TestCorruptTailTruncatesNeverFails(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openTest(t, dir, reg, nil)
	submitN(s, 2)
	// Close without snapshot interference: force journal-only state by
	// writing fewer records than SnapshotEvery, then skip Close's final
	// snapshot by corrupting after close.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close snapshots; remove the snapshot so replay exercises the
	// journal, then re-create journal-only state.
	os.Remove(filepath.Join(dir, "snapshot.json"))
	s2 := openTest(t, dir, nil, nil)
	submitN(s2, 2)
	s2.AppendStart(jobID(1))
	// Simulate a torn tail without Close (a crash does not snapshot).
	s2.mu.Lock()
	s2.wal.Sync()
	s2.mu.Unlock()
	walBytes, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record and append garbage: both tail-damage shapes at once.
	torn := append(append([]byte{}, walBytes[:len(walBytes)-5]...), "GARBAGE!"...)
	if err := os.WriteFile(filepath.Join(dir, "journal.wal"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	s2.wal.Close() // drop the open handle before reopening the dir

	reg3 := obs.NewRegistry()
	re, err := Open(Options{Dir: dir, Registry: reg3})
	if err != nil {
		t.Fatalf("corrupt tail must not fail Open: %v", err)
	}
	defer re.Close()
	if got := reg3.Counter("store.wal.truncations").Value(); got == 0 {
		t.Error("truncation quarantine counter did not move")
	}
	jobs := re.Jobs()
	// The torn record was the AppendStart; both submits must survive.
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(jobs), jobs)
	}
	if jobs[1].State != StateQueued {
		t.Errorf("job 1 state = %q, want queued (start record was torn away)", jobs[1].State)
	}
	re.Close()
	// The truncated journal must now replay cleanly, with no further
	// truncation events.
	reg5 := obs.NewRegistry()
	re2, err := Open(Options{Dir: dir, Registry: reg5})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := reg5.Counter("store.wal.truncations").Value(); got != 0 {
		t.Errorf("second replay truncated again (%d); truncation should be sticky-clean", got)
	}
}

func TestShortWriteRecovered(t *testing.T) {
	dir := t.TempDir()
	hooks := &Hooks{ShortWrite: faultinject.ShortWriteOnNth(3, 7)}
	s := openTest(t, dir, nil, hooks)
	submitN(s, 3) // third append is torn after 7 bytes
	s.mu.Lock()
	s.wal.Close() // crash: no snapshot, torn frame on disk
	s.closed = true
	s.mu.Unlock()

	re := openTest(t, dir, nil, nil)
	jobs := re.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (torn third submit dropped): %+v", len(jobs), jobs)
	}
}

func TestENOSPCDegradesToMemory(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	hooks := &Hooks{AppendErr: faultinject.FailWritesAfter(2)}
	s := openTest(t, dir, reg, hooks)
	submitN(s, 5)
	if !s.Degraded() {
		t.Fatal("store did not degrade after injected ENOSPC")
	}
	if got := reg.Counter("store.degraded").Value(); got != 1 {
		t.Errorf("store.degraded = %d, want 1", got)
	}
	// In-memory view keeps working: all five jobs visible.
	if got := len(s.Jobs()); got != 5 {
		t.Errorf("in-memory jobs = %d, want 5", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the two durable appends survive.
	re := openTest(t, dir, nil, nil)
	if got := len(re.Jobs()); got != 2 {
		t.Errorf("durable jobs = %d, want 2", got)
	}
}

func TestSnapshotCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(Options{Dir: dir, Registry: reg, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	submitN(s, 10)
	if got := reg.Counter("store.snapshots").Value(); got < 2 {
		t.Errorf("snapshots = %d, want >= 2", got)
	}
	st, err := os.Stat(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// 10 submits with SnapshotEvery=4 leave at most 2 records in the WAL.
	if st.Size() > 4096 {
		t.Errorf("journal not compacted: %d bytes", st.Size())
	}
	jobs := s.Jobs()
	if len(jobs) != 10 {
		t.Fatalf("jobs = %d, want 10", len(jobs))
	}
	// And the snapshot+journal round-trips.
	s.Close()
	re := openTest(t, dir, nil, nil)
	if got := len(re.Jobs()); got != 10 {
		t.Errorf("recovered jobs = %d, want 10", got)
	}
}

func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil, nil)
	submitN(s, 2)
	s.Close() // snapshots
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("corrupt snapshot must not fail Open: %v", err)
	}
	defer re.Close()
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json.corrupt")); err != nil {
		t.Error("corrupt snapshot was not quarantined aside")
	}
}

func TestIdempotentReplayAfterSnapshotRace(t *testing.T) {
	// A crash between snapshot rename and journal truncate leaves the
	// snapshot containing records the journal still holds; replay must
	// tolerate the overlap.
	dir := t.TempDir()
	s := openTest(t, dir, nil, nil)
	submitN(s, 3)
	s.AppendFinish(jobID(2), StateFailed, time.Now().UTC(), nil, nil, nil, "boom")
	// Snapshot manually but skip the truncate, emulating the race.
	s.mu.Lock()
	snap := snapshotFile{Version: 1, Jobs: make([]*JobRecord, 0)}
	for _, id := range s.order {
		snap.Jobs = append(snap.Jobs, s.jobs[id])
	}
	b, _ := json.Marshal(&snap)
	os.WriteFile(filepath.Join(dir, "snapshot.json"), b, 0o644)
	s.wal.Sync()
	s.wal.Close()
	s.closed = true
	s.mu.Unlock()

	re := openTest(t, dir, nil, nil)
	jobs := re.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(jobs), jobs)
	}
	if jobs[2].State != StateFailed || jobs[2].Error != "boom" {
		t.Errorf("job 2 lost its terminal outcome: %+v", jobs[2])
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open with no Dir should fail")
	}
}

func TestFailFromFirstWrite(t *testing.T) {
	// A disk dead at startup: the store opens, degrades on the first
	// append, and the daemon keeps its in-memory view.
	dir := t.TempDir()
	hooks := &Hooks{AppendErr: faultinject.FailWritesAfter(0)}
	s := openTest(t, dir, nil, hooks)
	submitN(s, 1)
	if !s.Degraded() {
		t.Fatal("expected degraded store")
	}
	if len(s.Jobs()) != 1 {
		t.Fatal("in-memory job table lost the submit")
	}
	if !errors.Is(faultinject.FailWritesAfter(0)(""), faultinject.ErrNoSpace) {
		t.Error("FailWritesAfter(0) should fail immediately")
	}
}

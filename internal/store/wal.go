package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The journal is a sequence of CRC-framed records:
//
//	[4-byte little-endian payload length]
//	[4-byte little-endian CRC-32 (IEEE) of the payload]
//	[payload]
//
// A crash can only damage the tail (the file is append-only and frames
// are written in one Write call), so replay treats the first framing
// violation — short header, short payload, CRC mismatch, or an
// implausible length — as the end of the journal: everything before it
// is kept, everything from it on is truncated away and counted in the
// quarantine metric. Replay never fails the caller on corruption.

// frameHeaderSize is the fixed per-record framing overhead.
const frameHeaderSize = 8

// maxFrameSize bounds a single record. A corrupted length field must not
// make replay allocate gigabytes; anything larger than this is treated
// as tail corruption. 64 MiB comfortably holds the largest accepted BLIF
// body (16 MiB default) plus its result and ledger.
const maxFrameSize = 64 << 20

// appendFrame encodes one framed record into w. It returns the framing
// error of the underlying writer, if any.
func appendFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("store: record of %d bytes exceeds frame limit %d", len(payload), maxFrameSize)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrames decodes framed records from r, calling fn for each payload.
// fn reports whether the payload was accepted; a rejected payload (e.g.
// an unparsable record inside an intact frame) ends replay exactly like
// frame corruption. readFrames returns the byte offset just past the
// last accepted frame and whether the journal ended in a corrupt tail
// (true) or cleanly (false).
func readFrames(r io.Reader, fn func(payload []byte) bool) (good int64, corrupt bool) {
	var off int64
	hdr := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			// io.EOF is a clean end; anything else (including
			// io.ErrUnexpectedEOF from a short header) is a damaged tail.
			return off, !errors.Is(err, io.EOF)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrameSize {
			return off, true
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, true
		}
		if crc32.ChecksumIEEE(payload) != want {
			return off, true
		}
		if !fn(payload) {
			return off, true
		}
		off += frameHeaderSize + int64(n)
	}
}

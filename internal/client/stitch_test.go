package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/service"
)

// TestStitchedTraceAcrossRetries is the cross-process continuity e2e: a
// traced client submits through a flaky front that 503s the first
// submit attempt, and the final job trace served by the daemon must be
// one connected forest — client root, both submit attempts (the failed
// one included), and the server's job/queue/run spans under it.
func TestStitchedTraceAcrossRetries(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 8})
	defer svc.Close()
	var submits atomic.Int64
	inner := svc.Handler()
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && submits.Add(1) == 1 {
			http.Error(w, "induced outage", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := New(ts.URL, Options{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	tracer := trace.New("cli-stitch", trace.Options{Base: SpanIDBase})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ctx = trace.NewContext(ctx, tracer)
	ctx, root := trace.StartSpan(ctx, "client")

	blif, err := os.ReadFile(filepath.Join("..", "..", "examples", "circuits", "fig2.blif"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(ctx, blif, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := submits.Load(); got != 2 {
		t.Fatalf("submit reached the front %d times, want 2 (one induced failure)", got)
	}
	// The inbound X-Powder-Trace header must force tracing under the
	// client's trace ID even though the service has no sampler configured.
	if st.TraceID != "cli-stitch" {
		t.Fatalf("job trace ID %q, want the client's cli-stitch", st.TraceID)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateCompleted {
		t.Fatalf("job state %s (error %q)", fin.State, fin.Error)
	}
	root.SetAttr("job", fin.ID)
	root.End()
	if err := c.UploadSpans(ctx, fin.ID, tracer.Snapshot()); err != nil {
		t.Fatalf("UploadSpans: %v", err)
	}

	// The stitched forest must validate and hang off the client root.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + fin.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d", resp.StatusCode)
	}
	var tj struct {
		Trace string         `json:"trace"`
		Spans []trace.Record `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	if tj.Trace != "cli-stitch" {
		t.Fatalf("served trace %q, want cli-stitch", tj.Trace)
	}
	if err := trace.Validate(tj.Spans); err != nil {
		t.Fatalf("stitched forest does not validate: %v", err)
	}
	roots := trace.Roots(tj.Spans)
	if len(roots) != 1 || roots[0].Name != "client" {
		t.Fatalf("stitched forest has %d roots (%v), want exactly the client span", len(roots), roots)
	}
	byName := map[string][]trace.Record{}
	var haveJob bool
	for _, s := range tj.Spans {
		byName[s.Name] = append(byName[s.Name], s)
		if s.Name == "job" && s.Parent == trace.SpanID(roots[0].ID) {
			haveJob = true
		}
	}
	if !haveJob {
		t.Error("no job span parented under the client root")
	}
	attempts := byName["POST /v1/jobs"]
	if len(attempts) != 2 {
		t.Fatalf("%d submit attempt spans, want 2 (failed + succeeded)", len(attempts))
	}
	outcomes := map[any]bool{}
	for _, a := range attempts {
		if a.Attrs["attempt"] == nil {
			t.Errorf("attempt span missing attempt attr: %v", a.Attrs)
		}
		outcomes[a.Attrs["outcome"]] = true
	}
	if !outcomes["retry"] || !outcomes["ok"] {
		t.Errorf("attempt outcomes = %v, want both retry and ok", outcomes)
	}

	// The Perfetto rendering of the same forest must be valid JSON.
	perf, err := c.TracePerfetto(ctx, fin.ID)
	if err != nil {
		t.Fatalf("TracePerfetto: %v", err)
	}
	if !json.Valid(perf) {
		t.Fatal("Perfetto export is not valid JSON")
	}

	// The flight recorder must have seen the exchange.
	fresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var dump obs.FlightDump
	if err := json.NewDecoder(fresp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/flight is not valid JSON: %v", err)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("/debug/flight returned no entries")
	}
	var sawHTTP bool
	for _, e := range dump.Entries {
		if e.Kind == "http" {
			sawHTTP = true
			break
		}
	}
	if !sawHTTP {
		t.Error("flight recorder holds no http entries after a served job")
	}
}

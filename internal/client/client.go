// Package client is the Go client of the powderd HTTP API, used by the
// powder and powbench commands' -server mode. It wraps the job
// endpoints (submit, status, wait, result, ledger, cancel) and retries
// transient failures — transport errors, 5xx, and 429 backpressure —
// with exponential backoff, full jitter, and honoring the server's
// Retry-After hint, so a herd of rejected clients spreads out instead
// of resynchronizing on the daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"powder/internal/obs"
	"powder/internal/obs/trace"
	"powder/internal/service"
)

// SpanIDBase is the trace.Options.Base a client-side tracer should use
// when its spans will be stitched into a powderd job trace: the client
// allocates span IDs from 1<<32 up while the daemon allocates from 1
// up, so the merged forest never collides without cross-process
// coordination.
const SpanIDBase = 1 << 32

// Options configure a Client; the zero value is usable.
type Options struct {
	// HTTPClient is the underlying transport (nil: http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request, first attempt included
	// (<= 0: 5).
	MaxAttempts int
	// BaseDelay is the first backoff step (<= 0: 200ms); step k waits
	// up to BaseDelay * 2^k, jittered.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step (<= 0: 10s). A larger
	// Retry-After from the server overrides the cap: the server knows
	// its backlog better than the client's schedule.
	MaxDelay time.Duration
}

// Client talks to one powderd base URL.
type Client struct {
	base        string
	hc          *http.Client
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration

	// sleep and jitter are the retry loop's time and randomness sources,
	// injectable for deterministic tests.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(d time.Duration) time.Duration
}

// New returns a client for the daemon at base (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(base string, opts Options) *Client {
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          opts.HTTPClient,
		maxAttempts: opts.MaxAttempts,
		baseDelay:   opts.BaseDelay,
		maxDelay:    opts.MaxDelay,
	}
	if c.hc == nil {
		c.hc = http.DefaultClient
	}
	if c.maxAttempts <= 0 {
		c.maxAttempts = 5
	}
	if c.baseDelay <= 0 {
		c.baseDelay = 200 * time.Millisecond
	}
	if c.maxDelay <= 0 {
		c.maxDelay = 10 * time.Second
	}
	c.sleep = sleepCtx
	// Full jitter: a uniform draw over [0, d] decorrelates retry storms
	// better than d/2 + rand(d/2) (the AWS architecture-blog result).
	c.jitter = func(d time.Duration) time.Duration {
		if d <= 0 {
			return 0
		}
		return time.Duration(rand.Int64N(int64(d) + 1))
	}
	return c
}

// APIError is a non-retryable (or retries-exhausted) HTTP failure.
type APIError struct {
	Status int
	Body   string
}

func (e *APIError) Error() string {
	msg := strings.TrimSpace(e.Body)
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	return fmt.Sprintf("powderd: HTTP %d: %s", e.Status, msg)
}

// retryable reports whether an HTTP status is worth another attempt:
// backpressure (429), and gateway/availability 5xx. Other 4xx are
// caller bugs and fail immediately.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter extracts the server's Retry-After hint in seconds form
// (powderd always sends seconds); 0 means absent or unparsable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// do runs one request with retries and returns the body of the first
// 2xx response. Requests are rebuilt per attempt (the body is a fresh
// reader each time), so retrying a POST is safe. When the context
// carries a tracer, the trace ID and current span ID propagate as
// X-Powder-Trace/X-Powder-Parent headers (on every attempt, so a retry
// that finally lands still stitches), and each attempt records a span
// tagged with its ordinal, the backoff that preceded it, and how it
// ended.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body []byte, contentType string) ([]byte, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	traceID, parentID := trace.IDs(ctx)
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		var backoff time.Duration
		if attempt > 0 {
			backoff = c.backoff(attempt-1, lastErr)
			if err := c.sleep(ctx, backoff); err != nil {
				return nil, err
			}
		}
		_, aSpan := trace.StartSpan(ctx, method+" "+path)
		aSpan.SetAttr("attempt", attempt+1)
		if backoff > 0 {
			aSpan.SetAttr("backoff_seconds", backoff.Seconds())
		}
		endAttempt := func(outcome string) {
			aSpan.SetAttr("outcome", outcome)
			aSpan.End()
		}
		var r io.Reader
		if body != nil {
			r = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, r)
		if err != nil {
			endAttempt("bad-request")
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if traceID != "" {
			req.Header.Set(service.TraceHeader, traceID)
			if parentID != 0 {
				req.Header.Set(service.TraceParentHeader, strconv.FormatInt(int64(parentID), 10))
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				endAttempt("cancelled")
				return nil, ctx.Err()
			}
			lastErr = err // transport failure: retryable
			aSpan.SetAttr("error", err.Error())
			endAttempt("transport-error")
			continue
		}
		aSpan.SetAttr("status", resp.StatusCode)
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if rerr != nil {
				lastErr = rerr
				endAttempt("read-error")
				continue
			}
			endAttempt("ok")
			return data, nil
		}
		apiErr := &APIError{Status: resp.StatusCode, Body: string(data)}
		if !retryable(resp.StatusCode) {
			endAttempt("failed")
			return nil, apiErr
		}
		lastErr = &retryableError{err: apiErr, retryAfter: retryAfter(resp)}
		endAttempt("retry")
	}
	return nil, fmt.Errorf("powderd: giving up after %d attempts: %w", c.maxAttempts, unwrapRetryable(lastErr))
}

// retryableError carries the server's Retry-After hint alongside the
// API error through the retry loop.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func unwrapRetryable(err error) error {
	var re *retryableError
	if errors.As(err, &re) {
		return re.err
	}
	return err
}

// backoff computes the wait before retry step (0-based): the jittered
// exponential schedule, except that a server Retry-After hint sets the
// floor — the server's estimate of when capacity frees up wins over a
// shorter local schedule.
func (c *Client) backoff(step int, lastErr error) time.Duration {
	d := c.baseDelay << uint(step)
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	d = c.jitter(d)
	var re *retryableError
	if errors.As(lastErr, &re) && re.retryAfter > d {
		d = re.retryAfter
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit posts a BLIF circuit with the given submission query options
// (timeout, delay-limit, verify, no-cache, ... — the /v1/jobs query
// parameters) and returns the accepted job's status. A cache-served
// job comes back already completed with Cached set.
func (c *Client) Submit(ctx context.Context, blif []byte, query url.Values) (service.Status, error) {
	var st service.Status
	data, err := c.do(ctx, http.MethodPost, "/v1/jobs", query, blif, "text/plain")
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("powderd: bad submit response: %w", err)
	}
	return st, nil
}

// SubmitActivity posts a BLIF circuit together with a workload activity
// dump (VCD or SAIF bytes, sniffed server-side) as a multipart
// submission: part "circuit" carries the netlist, part "activity" the
// dump. The daemon binds the dump onto the circuit's inputs, optimizes
// under the measured workload instead of the uniform assumption, and
// keys its result cache on the profile's content digest.
func (c *Client) SubmitActivity(ctx context.Context, blif, activityDump []byte, query url.Values) (service.Status, error) {
	var st service.Status
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	cw, err := mw.CreateFormFile("circuit", "circuit.blif")
	if err == nil {
		_, err = cw.Write(blif)
	}
	if err == nil {
		var aw io.Writer
		aw, err = mw.CreateFormFile("activity", "activity.dump")
		if err == nil {
			_, err = aw.Write(activityDump)
		}
	}
	if err == nil {
		err = mw.Close()
	}
	if err != nil {
		return st, fmt.Errorf("powderd: building multipart submission: %w", err)
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/jobs", query, buf.Bytes(), mw.FormDataContentType())
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("powderd: bad submit response: %w", err)
	}
	return st, nil
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (service.Status, error) {
	var st service.Status
	data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, "")
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("powderd: bad status response: %w", err)
	}
	return st, nil
}

// Wait polls the job until it reaches a terminal state (poll <= 0:
// 250ms between polls) or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.Status, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return st, err
		}
	}
}

// ResultBLIF downloads a finished job's optimized netlist.
func (c *Client) ResultBLIF(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result.blif", nil, nil, "")
}

// Ledger downloads a finished job's run ledger.
func (c *Client) Ledger(ctx context.Context, id string) (*obs.LedgerSummary, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/ledger", nil, nil, "")
	if err != nil {
		return nil, err
	}
	var ls obs.LedgerSummary
	if err := json.Unmarshal(data, &ls); err != nil {
		return nil, fmt.Errorf("powderd: bad ledger response: %w", err)
	}
	return &ls, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, "")
	return err
}

// TracePerfetto downloads a finished traced job's span forest —
// including any spans stitched in via UploadSpans — as Chrome/Perfetto
// trace-event JSON.
func (c *Client) TracePerfetto(ctx context.Context, id string) ([]byte, error) {
	q := url.Values{"format": {"perfetto"}}
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", q, nil, "")
}

// UploadSpans posts client-recorded spans to a traced job, stitching
// the client's side of the exchange (root span, per-attempt request
// spans) into the job's span forest served at /v1/jobs/{id}/trace. The
// client tracer should share the job's trace ID (submit with a tracer
// on the context) and allocate IDs from SpanIDBase.
func (c *Client) UploadSpans(ctx context.Context, id string, spans []trace.Record) error {
	body, err := json.Marshal(spans)
	if err != nil {
		return err
	}
	_, err = c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/spans", nil, body, "application/json")
	return err
}

package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powder/internal/service"
)

// newTestClient wraps a handler in an httptest server and returns a
// client with deterministic (identity) jitter and a recording sleep.
func newTestClient(t *testing.T, h http.Handler, opts Options) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := New(ts.URL, opts)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	return c, &slept
}

func TestSubmitRetriesOn429HonoringRetryAfter(t *testing.T) {
	var calls int
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j000001","state":"queued","circuit":"fig2","options":{"delay_limit_pct":-1},"submitted_at":"2026-01-01T00:00:00Z","progress":{}}`))
	})
	c, slept := newTestClient(t, h, Options{BaseDelay: 100 * time.Millisecond})

	st, err := c.Submit(context.Background(), []byte(".model x\n.end\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000001" || st.State != service.StateQueued {
		t.Fatalf("submit status = %+v", st)
	}
	if calls != 3 {
		t.Fatalf("server saw %d calls, want 3", calls)
	}
	// Both waits must honor the server's 7s hint over the shorter local
	// exponential schedule (100ms, 200ms).
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2 (%v)", len(*slept), *slept)
	}
	for i, d := range *slept {
		if d != 7*time.Second {
			t.Fatalf("sleep %d = %v, want 7s (Retry-After wins)", i, d)
		}
	}
}

func TestBackoffGrowsExponentiallyAndCaps(t *testing.T) {
	var calls int
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	c, slept := newTestClient(t, h, Options{
		MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
	})

	_, err := c.Status(context.Background(), "j000001")
	if err == nil {
		t.Fatal("want an error after exhausting retries")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("error = %v, want APIError 503", err)
	}
	if calls != 5 {
		t.Fatalf("server saw %d calls, want 5", calls)
	}
	want := []time.Duration{100, 200, 400, 400} // ms, capped at MaxDelay
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %d steps", *slept, len(want))
	}
	for i, ms := range want {
		if (*slept)[i] != ms*time.Millisecond {
			t.Fatalf("sleep %d = %v, want %v", i, (*slept)[i], ms*time.Millisecond)
		}
	}
}

func TestBadRequestFailsWithoutRetry(t *testing.T) {
	var calls int
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"bad blif"}`, http.StatusBadRequest)
	})
	c, slept := newTestClient(t, h, Options{})

	_, err := c.Submit(context.Background(), []byte("junk"), nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("error = %v, want APIError 400", err)
	}
	if calls != 1 || len(*slept) != 0 {
		t.Fatalf("calls = %d, sleeps = %d; a 4xx must not retry", calls, len(*slept))
	}
}

func TestWaitPollsUntilTerminal(t *testing.T) {
	var calls int
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		state := "running"
		if calls >= 3 {
			state = "completed"
		}
		w.Write([]byte(`{"id":"j000001","state":"` + state + `","circuit":"fig2","options":{"delay_limit_pct":-1},"submitted_at":"2026-01-01T00:00:00Z","progress":{}}`))
	})
	c, slept := newTestClient(t, h, Options{})

	st, err := c.Wait(context.Background(), "j000001", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCompleted {
		t.Fatalf("state = %s, want completed", st.State)
	}
	if calls != 3 || len(*slept) != 2 {
		t.Fatalf("calls = %d, sleeps = %d, want 3 polls with 2 waits", calls, len(*slept))
	}
}

// TestClientAgainstRealService runs the full client flow — submit,
// wait, download result and ledger — against an in-process powderd.
func TestClientAgainstRealService(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := New(ts.URL, Options{})

	blif, err := os.ReadFile(filepath.Join("..", "..", "examples", "circuits", "fig2.blif"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, blif, url.Values{"verify": {"1"}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateCompleted {
		t.Fatalf("job state %s (error %q)", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.Verified != "equivalent" {
		t.Fatalf("result = %+v, want verified equivalent", fin.Result)
	}
	out, err := c.ResultBLIF(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty result BLIF")
	}
	ledger, err := c.Ledger(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ledger == nil {
		t.Fatal("nil ledger")
	}
}

// TestSubmitActivityAgainstRealService submits a circuit together with
// a workload dump through the multipart client path and checks the run
// reports the activity model it used, including after a retried
// attempt (the multipart body must be rebuilt per attempt, not
// consumed by the first 429).
func TestSubmitActivityAgainstRealService(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 8})
	defer svc.Close()
	handler := svc.Handler()
	var calls int
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			calls++
			if calls == 1 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
		}
		handler.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()
	c := New(ts.URL, Options{BaseDelay: time.Millisecond})

	blif, err := os.ReadFile(filepath.Join("..", "..", "examples", "circuits", "maj3.blif"))
	if err != nil {
		t.Fatal(err)
	}
	dump := []byte("$timescale 1ns $end\n" +
		"$scope module maj3 $end\n" +
		"$var wire 1 ! a $end\n" +
		"$var wire 1 \" b $end\n" +
		"$var wire 1 # c $end\n" +
		"$upscope $end\n" +
		"$enddefinitions $end\n" +
		"#0\n0!\n1\"\n0#\n" +
		"#10\n1!\n0#\n" +
		"#20\n0!\n1#\n" +
		"#30\n1!\n0\"\n")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.SubmitActivity(ctx, blif, dump, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("server saw %d submit attempts, want 2 (one 429 + one accept)", calls)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateCompleted {
		t.Fatalf("job state %s (error %q)", fin.State, fin.Error)
	}
	res := fin.Result
	if res == nil || res.Activity == "" {
		t.Fatalf("result %+v carries no activity label", res)
	}
	if res.ActivityMatched != 3 || res.ActivityInputs != 3 {
		t.Fatalf("activity coverage %d/%d, want 3/3", res.ActivityMatched, res.ActivityInputs)
	}
}

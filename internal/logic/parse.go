package logic

import (
	"fmt"
	"strings"
)

// ParseExpr parses a genlib-style Boolean expression over the named
// variables in vars; the returned expression references variables by their
// index in vars. Supported syntax:
//
//	expr   := term ('+' term)*
//	term   := xfact ('^' xfact)*            exclusive-or binds tighter than +
//	xfact  := factor (('*' | juxtaposition) factor)*
//	factor := '!' factor | name '\'' * | '(' expr ')' | CONST0 | CONST1 | name
//
// The postfix apostrophe (a') and prefix bang (!a) both negate. Whitespace
// separates juxtaposed factors (implicit AND), as in "a b + c".
func ParseExpr(s string, vars []string) (*Expr, error) {
	p := &exprParser{src: s, vars: vars}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("logic: trailing input %q in expression %q", p.src[p.pos:], s)
	}
	return e, nil
}

type exprParser struct {
	src  string
	pos  int
	vars []string
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseOr() (*Expr, error) {
	var terms []*Expr
	for {
		t, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if p.peek() != '+' {
			break
		}
		p.pos++
	}
	return Or(terms...), nil
}

func (p *exprParser) parseXor() (*Expr, error) {
	var terms []*Expr
	for {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if p.peek() != '^' {
			break
		}
		p.pos++
	}
	return Xor(terms...), nil
}

func (p *exprParser) parseAnd() (*Expr, error) {
	var facts []*Expr
	for {
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		facts = append(facts, f)
		c := p.peek()
		if c == '*' {
			p.pos++
			continue
		}
		// Juxtaposition: another factor starts right here.
		if c == '!' || c == '(' || isNameByte(c) {
			continue
		}
		break
	}
	return And(facts...), nil
}

func (p *exprParser) parseFactor() (*Expr, error) {
	switch c := p.peek(); {
	case c == 0:
		return nil, fmt.Errorf("logic: unexpected end of expression %q", p.src)
	case c == '!':
		p.pos++
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("logic: missing ')' in expression %q", p.src)
		}
		p.pos++
		return p.postfix(e), nil
	case isNameByte(c):
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		var e *Expr
		switch name {
		case "CONST0", "0":
			e = Const(false)
		case "CONST1", "1":
			e = Const(true)
		default:
			idx := -1
			for i, v := range p.vars {
				if v == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("logic: unknown variable %q in expression %q", name, p.src)
			}
			e = Var(idx)
		}
		return p.postfix(e), nil
	default:
		return nil, fmt.Errorf("logic: unexpected character %q in expression %q", c, p.src)
	}
}

// postfix consumes any trailing apostrophes (postfix negation).
func (p *exprParser) postfix(e *Expr) *Expr {
	for p.pos < len(p.src) && p.src[p.pos] == '\'' {
		p.pos++
		e = Not(e)
	}
	return e
}

func isNameByte(c byte) bool {
	return c == '_' || c == '[' || c == ']' || c == '.' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// CollectVarNames extracts the distinct identifiers of a genlib expression in
// order of first appearance, skipping the constants. It is used when the
// variable set is not known up front (genlib GATE lines name pins implicitly
// through the expression, with PIN lines following).
func CollectVarNames(s string) []string {
	var names []string
	seen := make(map[string]bool)
	i := 0
	for i < len(s) {
		c := s[i]
		if !isNameByte(c) {
			i++
			continue
		}
		start := i
		for i < len(s) && isNameByte(s[i]) {
			i++
		}
		name := s[start:i]
		if name == "CONST0" || name == "CONST1" || name == "0" || name == "1" {
			continue
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names
}

// MustParseExpr is ParseExpr but panics on error; intended for package-level
// tables of known-good cell functions.
func MustParseExpr(s string, vars []string) *Expr {
	e, err := ParseExpr(s, vars)
	if err != nil {
		panic(err)
	}
	return e
}

// FormatWithNames renders e using the provided variable names instead of the
// default a, b, c, ...
func FormatWithNames(e *Expr, vars []string) string {
	var render func(e *Expr, parent int, b *strings.Builder)
	render = func(e *Expr, parent int, b *strings.Builder) {
		var prec int
		switch e.Op {
		case OpOr:
			prec = 1
		case OpXor:
			prec = 2
		case OpAnd:
			prec = 3
		default:
			prec = 4
		}
		paren := prec < parent
		if paren {
			b.WriteByte('(')
		}
		switch e.Op {
		case OpConst0:
			b.WriteByte('0')
		case OpConst1:
			b.WriteByte('1')
		case OpVar:
			if e.Var < len(vars) {
				b.WriteString(vars[e.Var])
			} else {
				b.WriteString(VarName(e.Var))
			}
		case OpNot:
			b.WriteByte('!')
			render(e.Children[0], 4, b)
		case OpAnd, OpOr, OpXor:
			for i, c := range e.Children {
				if i > 0 {
					b.WriteString(e.Op.String())
				}
				render(c, prec, b)
			}
		}
		if paren {
			b.WriteByte(')')
		}
	}
	var b strings.Builder
	render(e, 0, &b)
	return b.String()
}

package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsCollapse(t *testing.T) {
	e := Not(Not(Var(3)))
	if e.Op != OpVar || e.Var != 3 {
		t.Fatalf("double negation not collapsed: %v", e)
	}
	if Not(Const(true)).Op != OpConst0 {
		t.Fatalf("!1 should be 0")
	}
	if Not(Const(false)).Op != OpConst1 {
		t.Fatalf("!0 should be 1")
	}
	if And().Op != OpConst1 {
		t.Fatalf("empty AND should be constant true")
	}
	if Or().Op != OpConst0 {
		t.Fatalf("empty OR should be constant false")
	}
	if Xor().Op != OpConst0 {
		t.Fatalf("empty XOR should be constant false")
	}
	single := Var(2)
	if And(single) != single || Or(single) != single || Xor(single) != single {
		t.Fatalf("single-operand n-ary ops should return the operand")
	}
}

func TestEvalBasic(t *testing.T) {
	// f = (a ^ b) * !c + d
	f := Or(And(Xor(Var(0), Var(1)), Not(Var(2))), Var(3))
	cases := []struct {
		in   []bool
		want bool
	}{
		{[]bool{false, false, false, false}, false},
		{[]bool{true, false, false, false}, true},
		{[]bool{true, true, false, false}, false},
		{[]bool{true, false, true, false}, false},
		{[]bool{false, false, true, true}, true},
		{[]bool{true, true, true, true}, true},
	}
	for _, c := range cases {
		if got := f.Eval(c.in); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEvalWordsMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := Or(And(Xor(Var(0), Var(1)), Not(Var(2))), And(Var(3), Var(4)))
	n := 5
	in := make([]uint64, n)
	for i := range in {
		in[i] = rng.Uint64()
	}
	words := f.EvalWords(in)
	for bit := 0; bit < 64; bit++ {
		assign := make([]bool, n)
		for i := 0; i < n; i++ {
			assign[i] = in[i]>>uint(bit)&1 == 1
		}
		want := f.Eval(assign)
		got := words>>uint(bit)&1 == 1
		if got != want {
			t.Fatalf("bit %d: EvalWords = %v, Eval = %v", bit, got, want)
		}
	}
}

func TestMaxVar(t *testing.T) {
	if got := Const(true).MaxVar(); got != -1 {
		t.Errorf("constant MaxVar = %d, want -1", got)
	}
	f := And(Var(1), Or(Var(5), Not(Var(2))))
	if got := f.MaxVar(); got != 5 {
		t.Errorf("MaxVar = %d, want 5", got)
	}
	if got := f.NumVars(); got != 6 {
		t.Errorf("NumVars = %d, want 6", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []*Expr{
		Var(0),
		Not(Var(1)),
		And(Var(0), Var(1), Var(2)),
		Or(And(Var(0), Not(Var(1))), Var(2)),
		Xor(Var(0), Var(1)),
		And(Or(Var(0), Var(1)), Xor(Var(2), Not(Var(3)))),
	}
	vars := []string{"a", "b", "c", "d"}
	for _, e := range exprs {
		s := e.String()
		back, err := ParseExpr(s, vars)
		if err != nil {
			t.Fatalf("reparse %q: %v", s, err)
		}
		n := e.NumVars()
		if n == 0 {
			n = 1
		}
		if !TTFromExpr(e, n).Equal(TTFromExpr(back, n)) {
			t.Errorf("round trip of %q changed function", s)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	vars := []string{"a", "b"}
	bad := []string{"", "a+", "(a", "a)b", "a&b", "z", "!(", "a++b"}
	for _, s := range bad {
		if _, err := ParseExpr(s, vars); err == nil {
			t.Errorf("ParseExpr(%q) should fail", s)
		}
	}
}

func TestParseExprForms(t *testing.T) {
	vars := []string{"a", "b", "c"}
	// All these spellings denote a AND (NOT b) OR c.
	same := []string{"a*!b+c", "a !b + c", "a*b'+c", "(a*!b)+c"}
	want := TTFromExpr(MustParseExpr(same[0], vars), 3)
	for _, s := range same[1:] {
		got := TTFromExpr(MustParseExpr(s, vars), 3)
		if !got.Equal(want) {
			t.Errorf("%q parsed to %v, want %v", s, got, want)
		}
	}
	if e := MustParseExpr("CONST1", vars); e.Op != OpConst1 {
		t.Errorf("CONST1 parsed to %v", e)
	}
	if e := MustParseExpr("CONST0", vars); e.Op != OpConst0 {
		t.Errorf("CONST0 parsed to %v", e)
	}
	xor := MustParseExpr("a^b^c", vars)
	wantXor := TTFromExpr(Xor(Var(0), Var(1), Var(2)), 3)
	if !TTFromExpr(xor, 3).Equal(wantXor) {
		t.Errorf("3-way xor mis-parsed")
	}
}

func TestCollectVarNames(t *testing.T) {
	got := CollectVarNames("!a*(b+c)*a + CONST1*d_2")
	want := []string{"a", "b", "c", "d_2"}
	if len(got) != len(want) {
		t.Fatalf("CollectVarNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CollectVarNames = %v, want %v", got, want)
		}
	}
}

// Property: De Morgan holds for EvalWords on random inputs.
func TestDeMorganProperty(t *testing.T) {
	f := func(x, y uint64) bool {
		in := []uint64{x, y}
		lhs := Not(And(Var(0), Var(1))).EvalWords(in)
		rhs := Or(Not(Var(0)), Not(Var(1))).EvalWords(in)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR is addition mod 2 over words.
func TestXorProperty(t *testing.T) {
	f := func(x, y, z uint64) bool {
		in := []uint64{x, y, z}
		return Xor(Var(0), Var(1), Var(2)).EvalWords(in) == x^y^z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatWithNames(t *testing.T) {
	e := Or(And(Var(0), Not(Var(1))), Var(2))
	got := FormatWithNames(e, []string{"x", "y", "z"})
	back, err := ParseExpr(got, []string{"x", "y", "z"})
	if err != nil {
		t.Fatalf("reparse %q: %v", got, err)
	}
	if !TTFromExpr(e, 3).Equal(TTFromExpr(back, 3)) {
		t.Errorf("FormatWithNames round trip changed function: %q", got)
	}
}

func TestVarName(t *testing.T) {
	if VarName(0) != "a" || VarName(25) != "z" || VarName(26) != "v26" {
		t.Errorf("VarName mapping broken: %q %q %q", VarName(0), VarName(25), VarName(26))
	}
}

package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTTVarPatterns(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for i := 0; i < n; i++ {
			tt := TTVar(i, n)
			for m := uint(0); m < 1<<uint(n); m++ {
				want := m>>uint(i)&1 == 1
				if tt.Eval(m) != want {
					t.Fatalf("TTVar(%d,%d).Eval(%d) = %v, want %v", i, n, m, tt.Eval(m), want)
				}
			}
		}
	}
}

func TestTTConst(t *testing.T) {
	for n := 0; n <= 6; n++ {
		c1 := TTConst(true, n)
		c0 := TTConst(false, n)
		if ok, v := c1.IsConst(); !ok || !v {
			t.Errorf("TTConst(true,%d) not recognized const: %v", n, c1)
		}
		if ok, v := c0.IsConst(); !ok || v {
			t.Errorf("TTConst(false,%d) not recognized const: %v", n, c0)
		}
		if c1.OnSetSize() != 1<<uint(n) {
			t.Errorf("true OnSetSize over %d vars = %d", n, c1.OnSetSize())
		}
		if c0.OnSetSize() != 0 {
			t.Errorf("false OnSetSize over %d vars = %d", n, c0.OnSetSize())
		}
	}
}

func TestTTFromExprMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		e := randomExpr(rng, n, 4)
		tt := TTFromExpr(e, n)
		for m := uint(0); m < 1<<uint(n); m++ {
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = m>>uint(i)&1 == 1
			}
			if tt.Eval(m) != e.Eval(in) {
				t.Fatalf("trial %d: tt and Eval disagree on minterm %d for %v", trial, m, e)
			}
		}
	}
}

func randomExpr(rng *rand.Rand, n, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return Var(rng.Intn(n))
	}
	switch rng.Intn(4) {
	case 0:
		return Not(randomExpr(rng, n, depth-1))
	case 1:
		return And(randomExpr(rng, n, depth-1), randomExpr(rng, n, depth-1))
	case 2:
		return Or(randomExpr(rng, n, depth-1), randomExpr(rng, n, depth-1))
	default:
		return Xor(randomExpr(rng, n, depth-1), randomExpr(rng, n, depth-1))
	}
}

func TestTTOps(t *testing.T) {
	a := TTVar(0, 2)
	b := TTVar(1, 2)
	if got := a.And(b); got.Bits != 0b1000 {
		t.Errorf("a*b = %v", got)
	}
	if got := a.Or(b); got.Bits != 0b1110 {
		t.Errorf("a+b = %v", got)
	}
	if got := a.Xor(b); got.Bits != 0b0110 {
		t.Errorf("a^b = %v", got)
	}
	if got := a.Not(); got.Bits != 0b0101 {
		t.Errorf("!a = %v", got)
	}
}

func TestTTCofactorShannon(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		f := TT{N: n, Bits: rng.Uint64() & ttMask(n)}
		for i := 0; i < n; i++ {
			c0 := f.Cofactor(i, false)
			c1 := f.Cofactor(i, true)
			// Shannon expansion: f = x*f_x + !x*f_!x
			x := TTVar(i, n)
			recon := x.And(c1).Or(x.Not().And(c0))
			if !recon.Equal(f) {
				t.Fatalf("Shannon expansion failed: f=%v i=%d c0=%v c1=%v", f, i, c0, c1)
			}
			// Cofactors must not depend on variable i.
			if c0.DependsOn(i) || c1.DependsOn(i) {
				t.Fatalf("cofactor depends on the cofactored variable")
			}
		}
	}
}

func TestTTDependsOn(t *testing.T) {
	// f = a * b over 3 vars does not depend on c.
	f := TTVar(0, 3).And(TTVar(1, 3))
	if !f.DependsOn(0) || !f.DependsOn(1) {
		t.Errorf("a*b should depend on a and b")
	}
	if f.DependsOn(2) {
		t.Errorf("a*b should not depend on c")
	}
	if f.DependsOn(-1) || f.DependsOn(3) {
		t.Errorf("out-of-range DependsOn should be false")
	}
}

func TestNPNClassInvariance(t *testing.T) {
	// NAND2 under both input orders must have the same class key.
	nand1 := TTFromExpr(Not(And(Var(0), Var(1))), 2)
	nand2 := TTFromExpr(Not(And(Var(1), Var(0))), 2)
	if nand1.NPNClass() != nand2.NPNClass() {
		t.Errorf("permutation class differs for commuted NAND inputs")
	}
	// a*!b and !a*b are permutation-equivalent only via swap + neg, so the
	// permutation-only class must differ from a*b.
	and := TTFromExpr(And(Var(0), Var(1)), 2)
	andnot := TTFromExpr(And(Var(0), Not(Var(1))), 2)
	if and.NPNClass() == andnot.NPNClass() {
		t.Errorf("a*b and a*!b must be in different permutation classes")
	}
}

// Property: OnSetSize of complement is the complement of OnSetSize.
func TestOnSetComplementProperty(t *testing.T) {
	f := func(bits uint64) bool {
		tt := TT{N: 6, Bits: bits}
		return tt.OnSetSize()+tt.Not().OnSetSize() == 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package logic

import (
	"strings"
	"testing"
)

func TestTTString(t *testing.T) {
	and := TTFromExpr(And(Var(0), Var(1)), 2)
	if got := and.String(); got != "1000" {
		t.Errorf("AND table string = %q, want 1000", got)
	}
	v := TTVar(0, 1)
	if got := v.String(); got != "10" {
		t.Errorf("var table string = %q, want 10", got)
	}
}

func TestTTPermuteExported(t *testing.T) {
	// f = a * !b; swapping inputs gives !a * b.
	f := TTFromExpr(And(Var(0), Not(Var(1))), 2)
	g := f.Permute([]int{1, 0})
	want := TTFromExpr(And(Not(Var(0)), Var(1)), 2)
	if !g.Equal(want) {
		t.Errorf("Permute swap: got %v, want %v", g, want)
	}
	// Identity permutation.
	if !f.Permute([]int{0, 1}).Equal(f) {
		t.Errorf("identity permutation changed the table")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("wrong-length permutation should panic")
		}
	}()
	f.Permute([]int{0})
}

func TestPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(){
		"negative Var":       func() { Var(-1) },
		"TTVar out of range": func() { TTVar(3, 2) },
		"TTConst 7 vars":     func() { TTConst(true, 7) },
		"TT width mismatch":  func() { TTVar(0, 2).And(TTVar(0, 3)) },
		"TT eval out of rng": func() { TTVar(0, 2).Eval(9) },
		"expr beyond width":  func() { TTFromExpr(Var(5), 2) },
		"cofactor bad var":   func() { TTVar(0, 2).Cofactor(5, true) },
		"MustCube bad":       func() { MustCube("01x") },
		"MustParseExpr bad":  func() { MustParseExpr("((", []string{"a"}) },
		"SOP too many vars":  func() { NewSOP(65) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExprStringForms(t *testing.T) {
	cases := map[string]*Expr{
		"0":       Const(false),
		"1":       Const(true),
		"!a":      Not(Var(0)),
		"a*b+c":   Or(And(Var(0), Var(1)), Var(2)),
		"(a+b)*c": And(Or(Var(0), Var(1)), Var(2)),
		"a^b":     Xor(Var(0), Var(1)),
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	// Large variable indices use the vNN form.
	if got := Var(30).String(); got != "v30" {
		t.Errorf("Var(30).String() = %q", got)
	}
}

func TestFormatWithNamesFallback(t *testing.T) {
	// Index beyond the provided name list falls back to VarName.
	e := And(Var(0), Var(5))
	got := FormatWithNames(e, []string{"x"})
	if !strings.Contains(got, "x") || !strings.Contains(got, "f") {
		t.Errorf("FormatWithNames fallback = %q", got)
	}
	// Constants and XOR render.
	got2 := FormatWithNames(Xor(Const(true), Not(Var(0))), []string{"x"})
	if !strings.Contains(got2, "1") || !strings.Contains(got2, "^") {
		t.Errorf("FormatWithNames = %q", got2)
	}
}

func TestEvalVariableBeyondAssignment(t *testing.T) {
	// Variables beyond the assignment evaluate to false.
	e := Var(3)
	if e.Eval([]bool{true}) {
		t.Errorf("out-of-range variable should be false")
	}
	if e.EvalWords([]uint64{^uint64(0)}) != 0 {
		t.Errorf("out-of-range variable words should be 0")
	}
	// Constants in both evaluators.
	if !Const(true).Eval(nil) || Const(false).Eval(nil) {
		t.Errorf("constant Eval wrong")
	}
	if Const(true).EvalWords(nil) != ^uint64(0) || Const(false).EvalWords(nil) != 0 {
		t.Errorf("constant EvalWords wrong")
	}
}

func TestIsConstDetection(t *testing.T) {
	mixed := TTVar(0, 2)
	if ok, _ := mixed.IsConst(); ok {
		t.Errorf("a variable is not constant")
	}
	if ok, v := TTConst(true, 3).IsConst(); !ok || !v {
		t.Errorf("const-1 misdetected")
	}
}

func TestParseSOPWide(t *testing.T) {
	s, err := ParseSOP(6, "1-00-1\n-11---")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cubes) != 2 || s.NumVars != 6 {
		t.Errorf("ParseSOP shape wrong")
	}
	if s.Literals() != 4+2 {
		t.Errorf("Literals = %d", s.Literals())
	}
}

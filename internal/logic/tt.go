package logic

import (
	"fmt"
	"math/bits"
)

// TT is a dense truth table over up to 6 variables, packed into a single
// 64-bit word: bit m holds the function value on the minterm whose variable
// i takes bit i of m. Library cells never exceed 6 inputs, so TT is the
// canonical functional fingerprint for cells.
type TT struct {
	N    int // number of variables, 0..6
	Bits uint64
}

// ttMask returns the mask of the valid minterm bits for n variables.
func ttMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(n))) - 1
}

// varPattern[i] is the truth table of the bare variable i over 6 variables.
var varPattern = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// TTConst returns the constant truth table over n variables.
func TTConst(v bool, n int) TT {
	if n < 0 || n > 6 {
		panic(fmt.Sprintf("logic: TT supports 0..6 variables, got %d", n))
	}
	if v {
		return TT{N: n, Bits: ttMask(n)}
	}
	return TT{N: n}
}

// TTVar returns the truth table of variable i over n variables.
func TTVar(i, n int) TT {
	if i < 0 || i >= n || n > 6 {
		panic(fmt.Sprintf("logic: TTVar(%d, %d) out of range", i, n))
	}
	return TT{N: n, Bits: varPattern[i] & ttMask(n)}
}

// TTFromExpr computes the truth table of e over n variables (n must cover
// every variable referenced by e, and be at most 6).
func TTFromExpr(e *Expr, n int) TT {
	if e.MaxVar() >= n {
		panic(fmt.Sprintf("logic: expression references variable %d beyond width %d", e.MaxVar(), n))
	}
	in := make([]uint64, n)
	for i := 0; i < n; i++ {
		in[i] = varPattern[i]
	}
	return TT{N: n, Bits: e.EvalWords(in) & ttMask(n)}
}

// Eval returns the value of the table on minterm m.
func (t TT) Eval(m uint) bool {
	if m >= 1<<uint(t.N) {
		panic(fmt.Sprintf("logic: minterm %d out of range for %d vars", m, t.N))
	}
	return t.Bits>>(m)&1 == 1
}

// Not returns the complement.
func (t TT) Not() TT { return TT{N: t.N, Bits: ^t.Bits & ttMask(t.N)} }

// And returns the conjunction; both tables must have the same width.
func (t TT) And(u TT) TT { t.check(u); return TT{N: t.N, Bits: t.Bits & u.Bits} }

// Or returns the disjunction; both tables must have the same width.
func (t TT) Or(u TT) TT { t.check(u); return TT{N: t.N, Bits: t.Bits | u.Bits} }

// Xor returns the exclusive-or; both tables must have the same width.
func (t TT) Xor(u TT) TT { t.check(u); return TT{N: t.N, Bits: t.Bits ^ u.Bits} }

func (t TT) check(u TT) {
	if t.N != u.N {
		panic(fmt.Sprintf("logic: TT width mismatch %d vs %d", t.N, u.N))
	}
}

// Equal reports whether the two tables denote the same function over the
// same number of variables.
func (t TT) Equal(u TT) bool { return t.N == u.N && t.Bits == u.Bits }

// IsConst reports whether the function is constant, and if so which constant.
func (t TT) IsConst() (constant, value bool) {
	m := ttMask(t.N)
	switch t.Bits & m {
	case 0:
		return true, false
	case m:
		return true, true
	}
	return false, false
}

// OnSetSize returns the number of minterms on which the function is true.
func (t TT) OnSetSize() int { return bits.OnesCount64(t.Bits & ttMask(t.N)) }

// DependsOn reports whether the function actually depends on variable i.
func (t TT) DependsOn(i int) bool {
	if i < 0 || i >= t.N {
		return false
	}
	return t.Cofactor(i, false).Bits != t.Cofactor(i, true).Bits
}

// Cofactor returns the cofactor of the function with variable i fixed to v.
// The result is still expressed over N variables (variable i becomes a
// don't-care dimension).
func (t TT) Cofactor(i int, v bool) TT {
	if i < 0 || i >= t.N {
		panic(fmt.Sprintf("logic: cofactor variable %d out of range", i))
	}
	shift := uint(1) << uint(i)
	var half uint64
	if v {
		half = (t.Bits & varPattern[i]) | (t.Bits & varPattern[i] >> shift)
	} else {
		half = (t.Bits &^ varPattern[i]) | (t.Bits &^ varPattern[i] << shift)
	}
	return TT{N: t.N, Bits: half & ttMask(t.N)}
}

// String renders the table as a binary string, minterm 2^N-1 first.
func (t TT) String() string {
	n := 1 << uint(t.N)
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if t.Bits>>uint(n-1-i)&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// NPNClass computes a cheap semi-canonical key under input permutation only
// (not negation): the minimum table bits over all input permutations. It is
// used to match structurally different but functionally identical cells.
func (t TT) NPNClass() uint64 {
	perm := make([]int, t.N)
	for i := range perm {
		perm[i] = i
	}
	min := t.Bits & ttMask(t.N)
	var rec func(k int)
	rec = func(k int) {
		if k == t.N {
			p := t.permute(perm)
			if p < min {
				min = p
			}
			return
		}
		for i := k; i < t.N; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return min
}

// Permute returns the table with variable i renamed to perm[i] (perm must
// be a permutation of 0..N-1).
func (t TT) Permute(perm []int) TT {
	if len(perm) != t.N {
		panic(fmt.Sprintf("logic: permutation of length %d for %d vars", len(perm), t.N))
	}
	return TT{N: t.N, Bits: t.permute(perm)}
}

// permute returns the table bits with variable i renamed to perm[i].
func (t TT) permute(perm []int) uint64 {
	var out uint64
	n := 1 << uint(t.N)
	for m := 0; m < n; m++ {
		if t.Bits>>uint(m)&1 == 0 {
			continue
		}
		var pm uint
		for i := 0; i < t.N; i++ {
			if m>>uint(i)&1 == 1 {
				pm |= 1 << uint(perm[i])
			}
		}
		out |= 1 << pm
	}
	return out
}

package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeFromString(t *testing.T) {
	c := MustCube("01-1")
	if !c.Eval(0b1010) { // a=0 b=1 c=anything d=1
		t.Errorf("cube 01-1 should accept 0b1010")
	}
	if c.Eval(0b1011) {
		t.Errorf("cube 01-1 should reject a=1")
	}
	if c.Literals() != 3 {
		t.Errorf("cube 01-1 has %d literals, want 3", c.Literals())
	}
	if _, err := CubeFromString("01x"); err == nil {
		t.Errorf("bad character should fail")
	}
	if c.String(4) != "01-1" {
		t.Errorf("round trip = %q", c.String(4))
	}
}

func TestCubeContains(t *testing.T) {
	big := MustCube("1---")
	small := MustCube("10-1")
	if !big.Contains(small) {
		t.Errorf("1--- should contain 10-1")
	}
	if small.Contains(big) {
		t.Errorf("10-1 should not contain 1---")
	}
	if !big.Contains(big) {
		t.Errorf("cube should contain itself")
	}
	other := MustCube("0---")
	if big.Contains(other) || other.Contains(big) {
		t.Errorf("disjoint cubes should not contain each other")
	}
}

func TestCubeMerge(t *testing.T) {
	a := MustCube("10-1")
	b := MustCube("11-1")
	m, ok := a.Merge(b)
	if !ok {
		t.Fatalf("distance-1 cubes should merge")
	}
	if m.String(4) != "1--1" {
		t.Errorf("merge = %q, want 1--1", m.String(4))
	}
	// Not mergeable: distance 2.
	if _, ok := MustCube("00--").Merge(MustCube("11--")); ok {
		t.Errorf("distance-2 cubes must not merge")
	}
	// Not mergeable: different support.
	if _, ok := MustCube("1---").Merge(MustCube("11--")); ok {
		t.Errorf("different-support cubes must not merge")
	}
}

func TestCubeDistance(t *testing.T) {
	if d := MustCube("0101").Distance(MustCube("1001")); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := MustCube("01--").Distance(MustCube("--10")); d != 0 {
		t.Errorf("distance with disjoint support = %d, want 0", d)
	}
}

func TestSOPEvalAndExpr(t *testing.T) {
	s, err := ParseSOP(3, "1-0\n011")
	if err != nil {
		t.Fatal(err)
	}
	e := s.Expr()
	for m := uint64(0); m < 8; m++ {
		in := make([]bool, 3)
		for i := 0; i < 3; i++ {
			in[i] = m>>uint(i)&1 == 1
		}
		if s.Eval(m) != e.Eval(in) {
			t.Fatalf("SOP and Expr disagree on minterm %d", m)
		}
	}
}

func TestParseSOPErrors(t *testing.T) {
	if _, err := ParseSOP(3, "1-"); err == nil {
		t.Errorf("wrong-width row should fail")
	}
	if _, err := ParseSOP(3, "1x0"); err == nil {
		t.Errorf("bad character should fail")
	}
}

// Property: Minimize preserves the function (checked on all minterms for
// small variable counts).
func TestMinimizePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(5)
		s := NewSOP(n)
		nc := 1 + rng.Intn(12)
		for i := 0; i < nc; i++ {
			var c Cube
			for v := 0; v < n; v++ {
				switch rng.Intn(3) {
				case 0:
					c.Mask |= 1 << uint(v)
				case 1:
					c.Mask |= 1 << uint(v)
					c.Val |= 1 << uint(v)
				}
			}
			s.Add(c)
		}
		before := make([]bool, 1<<uint(n))
		for m := range before {
			before[m] = s.Eval(uint64(m))
		}
		oldLits := s.Literals()
		s.Minimize()
		if s.Literals() > oldLits {
			t.Fatalf("Minimize increased literal count %d -> %d", oldLits, s.Literals())
		}
		for m := range before {
			if s.Eval(uint64(m)) != before[m] {
				t.Fatalf("trial %d: Minimize changed function at minterm %d", trial, m)
			}
		}
	}
}

// Property: a cube contains any cube obtained by adding literals to it.
func TestContainsMonotoneProperty(t *testing.T) {
	f := func(mask, val, extraMask, extraVal uint64) bool {
		c := Cube{Mask: mask, Val: val & mask}
		d := Cube{Mask: mask | extraMask, Val: (val & mask) | (extraVal & extraMask &^ mask)}
		return c.Contains(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSOPString(t *testing.T) {
	s, err := ParseSOP(4, "1-01\n0-1-")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSOP(4, s.String())
	if err != nil {
		t.Fatal(err)
	}
	for m := uint64(0); m < 16; m++ {
		if s.Eval(m) != back.Eval(m) {
			t.Fatalf("String round trip changed function at %d", m)
		}
	}
}

package logic

import (
	"testing"
	"testing/quick"
)

// Property: cube merge, when it succeeds, produces a cube that covers both
// operands and nothing outside their union.
func TestCubeMergeCoversProperty(t *testing.T) {
	f := func(mask, val, flip uint64) bool {
		c := Cube{Mask: mask, Val: val & mask}
		// Build a distance-1 partner by flipping one constrained bit.
		bit := uint64(0)
		for b := uint(0); b < 64; b++ {
			if mask>>b&1 == 1 {
				bit = 1 << b
				break
			}
		}
		if bit == 0 {
			return true // unconstrained cube; nothing to merge
		}
		d := Cube{Mask: mask, Val: (val & mask) ^ bit}
		m, ok := c.Merge(d)
		if !ok {
			return false // distance-1 same-support cubes must merge
		}
		// The merge covers both, and every assignment satisfying the merge
		// satisfies c or d.
		if !m.Contains(c) || !m.Contains(d) {
			return false
		}
		probe := flip
		if m.Eval(probe) && !c.Eval(probe) && !d.Eval(probe) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Contains is a partial order (reflexive + transitive on
// randomly nested cubes).
func TestCubeContainsOrderProperty(t *testing.T) {
	f := func(mask1, val, extra1, extra2 uint64) bool {
		a := Cube{Mask: mask1, Val: val & mask1}
		bMask := mask1 | extra1
		b := Cube{Mask: bMask, Val: (val & mask1) | (extra1 &^ mask1 & val)}
		cMask := bMask | extra2
		c := Cube{Mask: cMask, Val: b.Val | (extra2 &^ bMask & val)}
		return a.Contains(a) && a.Contains(b) && b.Contains(c) && a.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TT Cofactor commutes across distinct variables.
func TestCofactorCommutesProperty(t *testing.T) {
	f := func(bits uint64, vi, vj uint8, pi, pj bool) bool {
		i, j := int(vi%6), int(vj%6)
		if i == j {
			return true
		}
		tt := TT{N: 6, Bits: bits}
		a := tt.Cofactor(i, pi).Cofactor(j, pj)
		b := tt.Cofactor(j, pj).Cofactor(i, pi)
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double complement is the identity on truth tables.
func TestTTDoubleComplementProperty(t *testing.T) {
	f := func(bits uint64, n uint8) bool {
		tt := TT{N: int(n % 7), Bits: bits & ttMask(int(n%7))}
		return tt.Not().Not().Equal(tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

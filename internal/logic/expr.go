// Package logic provides the basic Boolean machinery used throughout the
// POWDER reproduction: expression trees (as found in genlib cell
// descriptions), small dense truth tables for library cells, wide truth
// tables for exact probability analysis, and a light cube/SOP algebra used
// by the synthesis substrate and the benchmark generators.
package logic

import (
	"fmt"
	"strings"
)

// Op enumerates the node kinds of a Boolean expression tree.
type Op int

const (
	// OpConst0 is the constant false function.
	OpConst0 Op = iota
	// OpConst1 is the constant true function.
	OpConst1
	// OpVar is a reference to input variable Expr.Var.
	OpVar
	// OpNot negates its single child.
	OpNot
	// OpAnd is the conjunction of all children (n-ary).
	OpAnd
	// OpOr is the disjunction of all children (n-ary).
	OpOr
	// OpXor is the exclusive-or of all children (n-ary).
	OpXor
)

// String returns the operator symbol used by the genlib expression syntax.
func (o Op) String() string {
	switch o {
	case OpConst0:
		return "CONST0"
	case OpConst1:
		return "CONST1"
	case OpVar:
		return "VAR"
	case OpNot:
		return "!"
	case OpAnd:
		return "*"
	case OpOr:
		return "+"
	case OpXor:
		return "^"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Expr is an immutable Boolean expression tree. Variables are identified by
// a small non-negative index; for library cells the index is the pin
// position. The zero value is the constant-false expression.
type Expr struct {
	Op       Op
	Var      int // valid when Op == OpVar
	Children []*Expr
}

// Const returns the constant expression for v.
func Const(v bool) *Expr {
	if v {
		return &Expr{Op: OpConst1}
	}
	return &Expr{Op: OpConst0}
}

// Var returns a variable reference expression.
func Var(i int) *Expr {
	if i < 0 {
		panic("logic: negative variable index")
	}
	return &Expr{Op: OpVar, Var: i}
}

// Not returns the negation of e, collapsing double negations.
func Not(e *Expr) *Expr {
	switch e.Op {
	case OpNot:
		return e.Children[0]
	case OpConst0:
		return Const(true)
	case OpConst1:
		return Const(false)
	}
	return &Expr{Op: OpNot, Children: []*Expr{e}}
}

// And returns the conjunction of the operands. With no operands it returns
// the constant true (the empty product).
func And(es ...*Expr) *Expr { return nary(OpAnd, es) }

// Or returns the disjunction of the operands. With no operands it returns
// the constant false (the empty sum).
func Or(es ...*Expr) *Expr { return nary(OpOr, es) }

// Xor returns the exclusive-or of the operands. With no operands it returns
// the constant false.
func Xor(es ...*Expr) *Expr {
	switch len(es) {
	case 0:
		return Const(false)
	case 1:
		return es[0]
	}
	return &Expr{Op: OpXor, Children: append([]*Expr(nil), es...)}
}

func nary(op Op, es []*Expr) *Expr {
	switch len(es) {
	case 0:
		if op == OpAnd {
			return Const(true)
		}
		return Const(false)
	case 1:
		return es[0]
	}
	return &Expr{Op: op, Children: append([]*Expr(nil), es...)}
}

// MaxVar returns the largest variable index referenced by e, or -1 if e is
// constant.
func (e *Expr) MaxVar() int {
	max := -1
	e.Walk(func(n *Expr) {
		if n.Op == OpVar && n.Var > max {
			max = n.Var
		}
	})
	return max
}

// NumVars returns MaxVar()+1, i.e. the width of the input space e is defined
// over when variables are numbered densely from zero.
func (e *Expr) NumVars() int { return e.MaxVar() + 1 }

// Walk calls f on e and every descendant in depth-first order.
func (e *Expr) Walk(f func(*Expr)) {
	f(e)
	for _, c := range e.Children {
		c.Walk(f)
	}
}

// Eval evaluates e under the assignment in, where in[i] is the value of
// variable i. Variables beyond len(in) evaluate to false.
func (e *Expr) Eval(in []bool) bool {
	switch e.Op {
	case OpConst0:
		return false
	case OpConst1:
		return true
	case OpVar:
		return e.Var < len(in) && in[e.Var]
	case OpNot:
		return !e.Children[0].Eval(in)
	case OpAnd:
		for _, c := range e.Children {
			if !c.Eval(in) {
				return false
			}
		}
		return true
	case OpOr:
		for _, c := range e.Children {
			if c.Eval(in) {
				return true
			}
		}
		return false
	case OpXor:
		v := false
		for _, c := range e.Children {
			v = v != c.Eval(in)
		}
		return v
	}
	panic(fmt.Sprintf("logic: bad op %v", e.Op))
}

// EvalWords evaluates e bit-parallel: in[i] holds 64 assignments of variable
// i, one per bit position. The result holds the 64 corresponding outputs.
func (e *Expr) EvalWords(in []uint64) uint64 {
	switch e.Op {
	case OpConst0:
		return 0
	case OpConst1:
		return ^uint64(0)
	case OpVar:
		if e.Var < len(in) {
			return in[e.Var]
		}
		return 0
	case OpNot:
		return ^e.Children[0].EvalWords(in)
	case OpAnd:
		v := ^uint64(0)
		for _, c := range e.Children {
			v &= c.EvalWords(in)
		}
		return v
	case OpOr:
		v := uint64(0)
		for _, c := range e.Children {
			v |= c.EvalWords(in)
		}
		return v
	case OpXor:
		v := uint64(0)
		for _, c := range e.Children {
			v ^= c.EvalWords(in)
		}
		return v
	}
	panic(fmt.Sprintf("logic: bad op %v", e.Op))
}

// String renders e in genlib syntax (!, *, +, ^ with parentheses), using
// variable names a, b, c, ... for indices 0, 1, 2, ...
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b, 0)
	return b.String()
}

// precedence: OR=1 < XOR=2 < AND=3 < NOT=4
func (e *Expr) format(b *strings.Builder, parent int) {
	var prec int
	switch e.Op {
	case OpOr:
		prec = 1
	case OpXor:
		prec = 2
	case OpAnd:
		prec = 3
	default:
		prec = 4
	}
	paren := prec < parent
	if paren {
		b.WriteByte('(')
	}
	switch e.Op {
	case OpConst0:
		b.WriteByte('0')
	case OpConst1:
		b.WriteByte('1')
	case OpVar:
		b.WriteString(VarName(e.Var))
	case OpNot:
		b.WriteByte('!')
		e.Children[0].format(b, 4)
	case OpAnd, OpOr, OpXor:
		sep := e.Op.String()
		for i, c := range e.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			c.format(b, prec)
		}
	}
	if paren {
		b.WriteByte(')')
	}
}

// VarName returns the conventional short name for variable index i:
// a..z, then v26, v27, ...
func VarName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return fmt.Sprintf("v%d", i)
}

package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Cube is a product term over up to 64 variables, in (mask, val) encoding:
// variable i is in the cube's support iff bit i of Mask is set, and then it
// appears positive iff bit i of Val is set. The empty cube (Mask == 0) is
// the constant-true product.
type Cube struct {
	Mask uint64
	Val  uint64
}

// CubeFromString parses a PLA-style cube string of '0', '1' and '-'
// characters, character i describing variable i.
func CubeFromString(s string) (Cube, error) {
	if len(s) > 64 {
		return Cube{}, fmt.Errorf("logic: cube %q exceeds 64 variables", s)
	}
	var c Cube
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			c.Mask |= 1 << uint(i)
		case '1':
			c.Mask |= 1 << uint(i)
			c.Val |= 1 << uint(i)
		case '-', '~', '2':
			// don't care
		default:
			return Cube{}, fmt.Errorf("logic: bad cube character %q in %q", s[i], s)
		}
	}
	return c, nil
}

// MustCube is CubeFromString but panics on error.
func MustCube(s string) Cube {
	c, err := CubeFromString(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the cube over n variables in PLA notation.
func (c Cube) String(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		switch {
		case c.Mask&bit == 0:
			b[i] = '-'
		case c.Val&bit != 0:
			b[i] = '1'
		default:
			b[i] = '0'
		}
	}
	return string(b)
}

// Contains reports whether cube c contains cube d (every minterm of d is a
// minterm of c).
func (c Cube) Contains(d Cube) bool {
	return c.Mask&^d.Mask == 0 && (c.Val^d.Val)&c.Mask == 0
}

// Eval reports whether the assignment (bit i of in = variable i) satisfies
// the cube.
func (c Cube) Eval(in uint64) bool { return (in^c.Val)&c.Mask == 0 }

// Literals returns the number of literals in the cube.
func (c Cube) Literals() int {
	n := 0
	for m := c.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Distance returns the number of variables on which the two cubes conflict
// (both constrain the variable, with opposite polarity).
func (c Cube) Distance(d Cube) int {
	conflict := c.Mask & d.Mask & (c.Val ^ d.Val)
	n := 0
	for m := conflict; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Merge merges two distance-1 cubes that differ in exactly the conflicting
// variable and agree elsewhere; ok is false when they are not mergeable.
func (c Cube) Merge(d Cube) (Cube, bool) {
	if c.Mask != d.Mask {
		return Cube{}, false
	}
	diff := (c.Val ^ d.Val) & c.Mask
	if diff == 0 || diff&(diff-1) != 0 {
		return Cube{}, false
	}
	return Cube{Mask: c.Mask &^ diff, Val: c.Val &^ diff}, true
}

// SOP is a sum-of-products (a disjunction of cubes) over NumVars variables.
type SOP struct {
	NumVars int
	Cubes   []Cube
}

// NewSOP returns an empty (constant-false) SOP over n variables.
func NewSOP(n int) *SOP {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("logic: SOP supports 0..64 variables, got %d", n))
	}
	return &SOP{NumVars: n}
}

// ParseSOP parses newline-separated PLA cube rows ("01-1" style) over n
// variables.
func ParseSOP(n int, rows string) (*SOP, error) {
	s := NewSOP(n)
	for _, line := range strings.Fields(rows) {
		c, err := CubeFromString(line)
		if err != nil {
			return nil, err
		}
		if len(line) != n {
			return nil, fmt.Errorf("logic: cube %q has %d columns, want %d", line, len(line), n)
		}
		s.Cubes = append(s.Cubes, c)
	}
	return s, nil
}

// Add appends a cube.
func (s *SOP) Add(c Cube) { s.Cubes = append(s.Cubes, c) }

// Eval evaluates the SOP on the assignment in (bit i = variable i).
func (s *SOP) Eval(in uint64) bool {
	for _, c := range s.Cubes {
		if c.Eval(in) {
			return true
		}
	}
	return false
}

// Expr converts the SOP to an expression tree.
func (s *SOP) Expr() *Expr {
	terms := make([]*Expr, 0, len(s.Cubes))
	for _, c := range s.Cubes {
		var lits []*Expr
		for i := 0; i < s.NumVars; i++ {
			bit := uint64(1) << uint(i)
			if c.Mask&bit == 0 {
				continue
			}
			v := Var(i)
			if c.Val&bit == 0 {
				v = Not(v)
			}
			lits = append(lits, v)
		}
		terms = append(terms, And(lits...))
	}
	return Or(terms...)
}

// Minimize performs a light two-level minimization: it repeatedly merges
// distance-1 same-support cube pairs and removes single-cube-contained
// cubes. This is far from espresso, but removes the gross redundancy that
// the benchmark generators introduce.
func (s *SOP) Minimize() {
	changed := true
	for changed {
		changed = false
		// Merge distance-1 pairs with identical support.
		for i := 0; i < len(s.Cubes); i++ {
			for j := i + 1; j < len(s.Cubes); j++ {
				if m, ok := s.Cubes[i].Merge(s.Cubes[j]); ok {
					s.Cubes[i] = m
					s.Cubes = append(s.Cubes[:j], s.Cubes[j+1:]...)
					changed = true
					j--
				}
			}
		}
		// Single-cube containment.
		sort.Slice(s.Cubes, func(i, j int) bool {
			return s.Cubes[i].Literals() < s.Cubes[j].Literals()
		})
		for i := 0; i < len(s.Cubes); i++ {
			for j := i + 1; j < len(s.Cubes); j++ {
				if s.Cubes[i].Contains(s.Cubes[j]) {
					s.Cubes = append(s.Cubes[:j], s.Cubes[j+1:]...)
					changed = true
					j--
				}
			}
		}
	}
}

// Literals returns the total literal count of the SOP.
func (s *SOP) Literals() int {
	n := 0
	for _, c := range s.Cubes {
		n += c.Literals()
	}
	return n
}

// String renders the SOP as PLA rows.
func (s *SOP) String() string {
	rows := make([]string, len(s.Cubes))
	for i, c := range s.Cubes {
		rows[i] = c.String(s.NumVars)
	}
	return strings.Join(rows, "\n")
}

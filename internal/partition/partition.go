// Package partition decomposes a mapped netlist into disjoint regions for
// intra-circuit parallel optimization. A region is a set of live nodes
// grouped from whole primary-output cones, so the logic a region's worker
// reasons about is mostly closed under the substitutions it proposes; the
// explicit boundary sets record exactly where signals cross between
// regions, which is where a region-local proof can be invalidated by a
// concurrent edit in a neighbouring region.
//
// The decomposition is deterministic: the same netlist and target always
// produce the same regions, which is what makes a fixed -par P run of the
// parallel engine reproducible.
package partition

import (
	"fmt"
	"sort"

	"powder/internal/netlist"
)

// Unassigned is the region index reported for dead or unknown nodes.
const Unassigned = -1

// Region is one partition cell: a disjoint set of live nodes plus the
// subset of them that touches other regions.
type Region struct {
	// ID is the region's index in Decomposition.Regions.
	ID int
	// Nodes holds every live node assigned to the region, ascending.
	Nodes []netlist.NodeID
	// Boundary holds the region's nodes with at least one edge (fanin or
	// fanout) to a node of another region, ascending. Substitutions whose
	// support stays off every boundary are region-local by construction.
	Boundary []netlist.NodeID
	// POs holds the indices of the primary outputs whose cones seeded the
	// region, ascending.
	POs []int
}

// Decomposition maps every live node of one netlist snapshot to exactly
// one region.
type Decomposition struct {
	Regions []Region

	regionOf []int // per NodeID; Unassigned for dead nodes
}

// RegionOf returns the region index owning id, or Unassigned for dead or
// out-of-range nodes.
func (d *Decomposition) RegionOf(id netlist.NodeID) int {
	if int(id) < 0 || int(id) >= len(d.regionOf) {
		return Unassigned
	}
	return d.regionOf[id]
}

// Local reports whether every given node lives in the same region, and
// that region's index. With no nodes it reports (Unassigned, false).
func (d *Decomposition) Local(ids ...netlist.NodeID) (int, bool) {
	if len(ids) == 0 {
		return Unassigned, false
	}
	r := d.RegionOf(ids[0])
	if r == Unassigned {
		return Unassigned, false
	}
	for _, id := range ids[1:] {
		if d.RegionOf(id) != r {
			return r, false
		}
	}
	return r, true
}

// Decompose partitions the live nodes of nl into at most target regions of
// roughly equal size. target < 1 is treated as 1. Fewer regions come back
// when the netlist has fewer primary outputs than target.
//
// The grouping unit is the "first-claim" PO cone: primary outputs are
// visited in index order and each one claims the still-unclaimed part of
// its transitive fanin (a node shared by several cones belongs to the
// lowest-indexed PO). Consecutive POs are then packed into regions
// balanced by claimed-node count. Live nodes outside every PO cone
// (detached logic awaiting sweep) join the last region.
func Decompose(nl *netlist.Netlist, target int) *Decomposition {
	if target < 1 {
		target = 1
	}
	n := nl.NumNodes()
	claim := make([]int, n) // per node: claiming PO index, or -1
	for i := range claim {
		claim[i] = -1
	}

	outs := nl.Outputs()
	coneSize := make([]int, len(outs))
	var stack []netlist.NodeID
	for poIdx, po := range outs {
		stack = append(stack[:0], po.Driver)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if claim[id] != -1 || nl.Node(id).Dead() {
				continue
			}
			claim[id] = poIdx
			coneSize[poIdx]++
			for _, f := range nl.Node(id).Fanins() {
				if claim[f] == -1 {
					stack = append(stack, f)
				}
			}
		}
	}

	live := 0
	for i := 0; i < n; i++ {
		if !nl.Node(netlist.NodeID(i)).Dead() {
			live++
		}
	}

	// Pack consecutive POs into regions: close a region once it holds its
	// fair share of the remaining nodes. Greedy over a fixed order keeps
	// the result deterministic and each region within ~2x of the mean.
	regionOfPO := make([]int, len(outs))
	region, inRegion, remaining := 0, 0, live
	for poIdx := range outs {
		regionOfPO[poIdx] = region
		inRegion += coneSize[poIdx]
		regionsLeft := target - region
		if regionsLeft > 1 && poIdx < len(outs)-1 &&
			inRegion*regionsLeft >= remaining {
			remaining -= inRegion
			region++
			inRegion = 0
		}
	}
	numRegions := 1
	if len(outs) > 0 {
		numRegions = regionOfPO[len(outs)-1] + 1
	}

	// A region packed only from POs whose cones were wholly claimed by
	// earlier outputs ends up empty; compact those away so every region
	// a worker is handed has work in it.
	nodesIn := make([]int, numRegions)
	for i := 0; i < n; i++ {
		if nl.Node(netlist.NodeID(i)).Dead() {
			continue
		}
		r := numRegions - 1
		if claim[i] != -1 {
			r = regionOfPO[claim[i]]
		}
		nodesIn[r]++
	}
	remap := make([]int, numRegions)
	if live == 0 {
		// Degenerate empty netlist: keep one (empty) region.
		numRegions = 1
	} else {
		compact := 0
		for r := 0; r < numRegions; r++ {
			if nodesIn[r] == 0 {
				remap[r] = -1 // folded into the nearest following live region
				continue
			}
			remap[r] = compact
			compact++
		}
		for r := numRegions - 1; r >= 0; r-- {
			if remap[r] == -1 {
				if r == numRegions-1 {
					remap[r] = compact - 1
				} else {
					remap[r] = remap[r+1]
				}
			}
		}
		for poIdx := range regionOfPO {
			regionOfPO[poIdx] = remap[regionOfPO[poIdx]]
		}
		numRegions = compact
	}

	d := &Decomposition{
		Regions:  make([]Region, numRegions),
		regionOf: make([]int, n),
	}
	for i := range d.Regions {
		d.Regions[i].ID = i
	}
	for poIdx, r := range regionOfPO {
		d.Regions[r].POs = append(d.Regions[r].POs, poIdx)
	}
	last := numRegions - 1
	for i := 0; i < n; i++ {
		id := netlist.NodeID(i)
		if nl.Node(id).Dead() {
			d.regionOf[i] = Unassigned
			continue
		}
		r := last // claimless live nodes (detached logic) go last
		if claim[i] != -1 {
			r = regionOfPO[claim[i]]
		}
		d.regionOf[i] = r
		d.Regions[r].Nodes = append(d.Regions[r].Nodes, id)
	}

	// Boundary: any live edge whose endpoints sit in different regions
	// puts both endpoints on their regions' boundaries.
	onBoundary := make([]bool, n)
	for i := 0; i < n; i++ {
		id := netlist.NodeID(i)
		node := nl.Node(id)
		if node.Dead() {
			continue
		}
		for _, f := range node.Fanins() {
			if d.regionOf[f] != d.regionOf[i] {
				onBoundary[i] = true
				onBoundary[f] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if onBoundary[i] {
			r := d.regionOf[i]
			d.Regions[r].Boundary = append(d.Regions[r].Boundary, netlist.NodeID(i))
		}
	}
	for r := range d.Regions {
		sort.Slice(d.Regions[r].Nodes, func(a, b int) bool {
			return d.Regions[r].Nodes[a] < d.Regions[r].Nodes[b]
		})
		sort.Slice(d.Regions[r].Boundary, func(a, b int) bool {
			return d.Regions[r].Boundary[a] < d.Regions[r].Boundary[b]
		})
	}
	return d
}

// Validate checks the decomposition invariants against nl: every live node
// in exactly one region, region node lists disjoint and consistent with
// RegionOf, and boundary sets sound (both endpoints of every cross-region
// edge are on their regions' boundaries, and no boundary node lacks a
// cross-region edge).
func (d *Decomposition) Validate(nl *netlist.Netlist) error {
	seen := make(map[netlist.NodeID]int)
	for _, r := range d.Regions {
		for _, id := range r.Nodes {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("partition: node %d in regions %d and %d", id, prev, r.ID)
			}
			seen[id] = r.ID
			if got := d.RegionOf(id); got != r.ID {
				return fmt.Errorf("partition: node %d listed in region %d but RegionOf says %d", id, r.ID, got)
			}
			if nl.Node(id).Dead() {
				return fmt.Errorf("partition: dead node %d assigned to region %d", id, r.ID)
			}
		}
	}
	boundary := make(map[netlist.NodeID]bool)
	for _, r := range d.Regions {
		for _, id := range r.Boundary {
			if seen[id] != r.ID {
				return fmt.Errorf("partition: boundary node %d not a member of region %d", id, r.ID)
			}
			boundary[id] = true
		}
	}
	crossing := make(map[netlist.NodeID]bool)
	var err error
	nl.LiveNodes(func(node *netlist.Node) {
		if err != nil {
			return
		}
		id := node.ID()
		if _, ok := seen[id]; !ok {
			err = fmt.Errorf("partition: live node %d (%s) in no region", id, node.Name())
			return
		}
		for _, f := range node.Fanins() {
			if d.RegionOf(f) != d.RegionOf(id) {
				crossing[id] = true
				crossing[f] = true
				if !boundary[id] || !boundary[f] {
					err = fmt.Errorf("partition: cross-region edge %d->%d off the boundary sets", f, id)
					return
				}
			}
		}
	})
	if err != nil {
		return err
	}
	for id := range boundary {
		if !crossing[id] {
			return fmt.Errorf("partition: boundary node %d has no cross-region edge", id)
		}
	}
	return nil
}

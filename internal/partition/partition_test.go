package partition

import (
	"reflect"
	"testing"

	"powder/internal/cellib"
	"powder/internal/circuits"
	"powder/internal/netlist"
	"powder/internal/synth"
)

func compileBenchmark(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	spec, err := circuits.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := synth.Compile(spec.Build(), cellib.Lib2(), synth.Options{Mode: synth.CostPower})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestDecomposeInvariants pins the core contract on a spread of circuits
// and targets: every live node in exactly one region, boundaries sound,
// and no more regions than asked for.
func TestDecomposeInvariants(t *testing.T) {
	for _, name := range []string{"comp", "clip", "f51m", "des"} {
		nl := compileBenchmark(t, name)
		for _, target := range []int{1, 2, 4, 8, 64} {
			d := Decompose(nl, target)
			if err := d.Validate(nl); err != nil {
				t.Fatalf("%s target=%d: %v", name, target, err)
			}
			if len(d.Regions) > target {
				t.Fatalf("%s target=%d: got %d regions", name, target, len(d.Regions))
			}
			total := 0
			for _, r := range d.Regions {
				if len(r.Nodes) == 0 {
					t.Fatalf("%s target=%d: empty region %d", name, target, r.ID)
				}
				total += len(r.Nodes)
			}
			live := 0
			nl.LiveNodes(func(*netlist.Node) { live++ })
			if total != live {
				t.Fatalf("%s target=%d: regions hold %d nodes, netlist has %d live", name, target, total, live)
			}
		}
	}
}

// TestDecomposeDeterministic: identical inputs give identical regions.
func TestDecomposeDeterministic(t *testing.T) {
	nl := compileBenchmark(t, "comp")
	a, b := Decompose(nl, 4), Decompose(nl, 4)
	if !reflect.DeepEqual(a.Regions, b.Regions) {
		t.Fatal("Decompose is not deterministic")
	}
	// A clone preserves node IDs, so the decomposition carries over too.
	c := Decompose(nl.Clone(), 4)
	if !reflect.DeepEqual(a.Regions, c.Regions) {
		t.Fatal("Decompose differs between a netlist and its clone")
	}
}

// TestDecomposeSingleRegion: target 1 (and anything below) is one region
// holding everything with an empty boundary.
func TestDecomposeSingleRegion(t *testing.T) {
	nl := compileBenchmark(t, "clip")
	for _, target := range []int{0, 1, -3} {
		d := Decompose(nl, target)
		if len(d.Regions) != 1 {
			t.Fatalf("target=%d: got %d regions", target, len(d.Regions))
		}
		if len(d.Regions[0].Boundary) != 0 {
			t.Fatalf("target=%d: single region has boundary %v", target, d.Regions[0].Boundary)
		}
		if err := d.Validate(nl); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecomposeBalance: on a circuit with many outputs, an 8-way split
// keeps the largest region within a small factor of the mean.
func TestDecomposeBalance(t *testing.T) {
	nl := compileBenchmark(t, "des")
	d := Decompose(nl, 8)
	if len(d.Regions) < 4 {
		t.Fatalf("expected at least 4 regions on des, got %d", len(d.Regions))
	}
	live := 0
	nl.LiveNodes(func(*netlist.Node) { live++ })
	mean := live / len(d.Regions)
	for _, r := range d.Regions {
		if len(r.Nodes) > 3*mean {
			t.Fatalf("region %d holds %d nodes, mean is %d", r.ID, len(r.Nodes), mean)
		}
	}
}

func TestRegionOfAndLocal(t *testing.T) {
	nl := compileBenchmark(t, "comp")
	d := Decompose(nl, 4)
	if got := d.RegionOf(netlist.NodeID(-1)); got != Unassigned {
		t.Fatalf("RegionOf(-1) = %d", got)
	}
	if got := d.RegionOf(netlist.NodeID(nl.NumNodes() + 5)); got != Unassigned {
		t.Fatalf("RegionOf(out of range) = %d", got)
	}
	if _, ok := d.Local(); ok {
		t.Fatal("Local() with no nodes must report false")
	}
	r0 := d.Regions[0]
	if r, ok := d.Local(r0.Nodes[0], r0.Nodes[len(r0.Nodes)-1]); !ok || r != 0 {
		t.Fatalf("Local within region 0 = (%d, %v)", r, ok)
	}
	if len(d.Regions) > 1 {
		r1 := d.Regions[1]
		if _, ok := d.Local(r0.Nodes[0], r1.Nodes[0]); ok {
			t.Fatal("Local across regions must report false")
		}
	}
}

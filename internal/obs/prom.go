package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// ExpositionBounds is the fixed bucket-bound set of the Prometheus
// histogram exposition. The internal layout is much finer (growth
// 2^(1/4)); re-bucketing onto these bounds undercounts a bound by at
// most one internal bucket (~19% relative on the bound value), which is
// the same error class as the quantile estimate.
var ExpositionBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 300, 1800,
}

// Cumulative returns, for each bound, the number of observations
// recorded in internal buckets whose upper edge is at or below it (the
// Prometheus cumulative-bucket contract under the re-bucketing above).
// bounds must be sorted ascending. A nil histogram returns all zeros.
func (h *Histogram) Cumulative(bounds []float64) []int64 {
	out := make([]int64, len(bounds))
	if h == nil {
		return out
	}
	var cum int64
	bi := 0
	for i := 0; i < histBuckets; i++ {
		upper := bucketUpper(i)
		for bi < len(bounds) && bounds[bi] < upper {
			out[bi] = cum
			bi++
		}
		cum += h.buckets[i].Load()
	}
	for ; bi < len(bounds); bi++ {
		out[bi] = cum
	}
	return out
}

// promName mangles a registry metric name ("atpg.check.seconds") into a
// Prometheus metric name ("atpg_check_seconds"), with an optional
// prefix.
func promName(prefix, name string) string {
	var b strings.Builder
	b.WriteString(prefix)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PromGauge writes one gauge family (TYPE line plus a single sample).
func PromGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(v))
}

// PromCounter writes one counter family; name should already carry the
// conventional _total suffix.
func PromCounter(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, formatFloat(v))
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (0.0.4): every counter as a _total counter family and every
// histogram as a cumulative-bucket histogram family over
// ExpositionBounds. Labeled series (registry keys built with Labeled)
// are regrouped so one family gets a single TYPE line followed by all
// of its label sets. Families are emitted in sorted name order so the
// output is stable for golden tests. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()

	// Sorting full keys groups a family's label sets contiguously: '{'
	// sorts after every name character, so the unlabeled series (if any)
	// leads and labeled ones follow in canonical label order.
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	lastFam := ""
	for _, name := range names {
		base, labels := splitLabels(name)
		fam := promName(prefix, base)
		if !strings.HasSuffix(fam, "_total") {
			fam += "_total"
		}
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s counter\n", fam)
			lastFam = fam
		}
		if labels != "" {
			fmt.Fprintf(w, "%s{%s} %s\n", fam, labels, formatFloat(float64(counters[name].Value())))
		} else {
			fmt.Fprintf(w, "%s %s\n", fam, formatFloat(float64(counters[name].Value())))
		}
	}

	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	lastFam = ""
	for _, name := range names {
		base, labels := splitLabels(name)
		fam := promName(prefix, base)
		if fam != lastFam {
			fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
			lastFam = fam
		}
		writePromHistogramSeries(w, fam, labels, hists[name])
	}
}

// WritePromHistogram writes one unlabeled histogram family: the TYPE
// line, cumulative buckets over ExpositionBounds, the +Inf bucket, and
// the _sum/_count samples.
func WritePromHistogram(w io.Writer, name string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	writePromHistogramSeries(w, name, "", h)
}

// writePromHistogramSeries writes the samples of one histogram series;
// labels is the pre-rendered label body ("" for the unlabeled series)
// merged before the le label on bucket lines.
func writePromHistogramSeries(w io.Writer, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	counts := h.Cumulative(ExpositionBounds)
	for i, bound := range ExpositionBounds {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, formatFloat(bound), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, h.Count())
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}

// WriteRuntimeMetrics writes the process-level collectors (goroutines,
// heap, GC) in exposition format, using the conventional go_* names.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	PromGauge(w, "go_goroutines", float64(runtime.NumGoroutine()))
	PromGauge(w, "go_memstats_heap_alloc_bytes", float64(ms.HeapAlloc))
	PromGauge(w, "go_memstats_heap_sys_bytes", float64(ms.HeapSys))
	PromGauge(w, "go_memstats_heap_objects", float64(ms.HeapObjects))
	PromCounter(w, "go_gc_cycles_total", float64(ms.NumGC))
	PromCounter(w, "go_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9)
}

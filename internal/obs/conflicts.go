package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// ConflictLedger attributes parallel-engine commit conflicts: every
// time the master rejects or re-proves a proposal because two regions
// touched the same structure, the engine records which region pair
// collided, over which node, and how (the conflict kind). The ledger is
// bounded like the run ledger — a fixed number of distinct (pair, node)
// cells; once full, new cells are dropped and counted while existing
// cells keep accumulating — so a pathological run cannot grow it
// without bound. A nil *ConflictLedger is a no-op.
//
// Kinds mirror the engine's conflict taxonomy: "touched" (support node
// rewritten by an earlier commit from another region), "shared"
// (boundary node both regions see), "stale" (support node deleted),
// "broken-chain" (an earlier proposal of the same region failed,
// invalidating the replica state downstream proposals were built on).
type ConflictLedger struct {
	mu      sync.Mutex
	limit   int
	cells   map[conflictKey]*conflictCell
	byKind  map[string]int64
	total   int64
	dropped int64
}

// conflictKey identifies one heatmap cell: the colliding region pair
// (A <= B; 0 = the master/serial side) and the node fought over.
type conflictKey struct {
	regionA, regionB int
	node             string
}

type conflictCell struct {
	count int64
	kinds map[string]int64
}

// NewConflictLedger returns a ledger bounded to limit distinct cells
// (<= 0 chooses 1024).
func NewConflictLedger(limit int) *ConflictLedger {
	if limit <= 0 {
		limit = 1024
	}
	return &ConflictLedger{
		limit:  limit,
		cells:  make(map[conflictKey]*conflictCell),
		byKind: make(map[string]int64),
	}
}

// Record notes one conflict between two regions over a node. The pair
// is unordered (Record(1,3,...) and Record(3,1,...) hit the same cell);
// region 0 stands for the master/serial side when the other party is
// unknown.
func (l *ConflictLedger) Record(regionA, regionB int, node, kind string) {
	if l == nil {
		return
	}
	if regionA > regionB {
		regionA, regionB = regionB, regionA
	}
	key := conflictKey{regionA, regionB, node}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.byKind[kind]++
	cell := l.cells[key]
	if cell == nil {
		if len(l.cells) >= l.limit {
			l.dropped++
			return
		}
		cell = &conflictCell{kinds: make(map[string]int64, 2)}
		l.cells[key] = cell
	}
	cell.count++
	cell.kinds[kind]++
}

// ConflictCell is one exported heatmap cell.
type ConflictCell struct {
	RegionA int              `json:"region_a"`
	RegionB int              `json:"region_b"`
	Node    string           `json:"node"`
	Count   int64            `json:"count"`
	Kinds   map[string]int64 `json:"kinds"`
}

// ConflictSummary is the exported aggregate: totals per kind plus the
// cells sorted hottest-first (ties broken by region pair then node, so
// the order is deterministic).
type ConflictSummary struct {
	Total        int64            `json:"total"`
	ByKind       map[string]int64 `json:"by_kind,omitempty"`
	Cells        []ConflictCell   `json:"cells,omitempty"`
	DroppedCells int64            `json:"dropped_cells,omitempty"`
}

// Summary snapshots the ledger. A nil ledger returns an empty summary.
func (l *ConflictLedger) Summary() ConflictSummary {
	var s ConflictSummary
	if l == nil {
		return s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s.Total = l.total
	s.DroppedCells = l.dropped
	if len(l.byKind) > 0 {
		s.ByKind = make(map[string]int64, len(l.byKind))
		for k, v := range l.byKind {
			s.ByKind[k] = v
		}
	}
	for key, cell := range l.cells {
		kinds := make(map[string]int64, len(cell.kinds))
		for k, v := range cell.kinds {
			kinds[k] = v
		}
		s.Cells = append(s.Cells, ConflictCell{
			RegionA: key.regionA, RegionB: key.regionB,
			Node: key.node, Count: cell.count, Kinds: kinds,
		})
	}
	sort.Slice(s.Cells, func(i, j int) bool {
		a, b := s.Cells[i], s.Cells[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.RegionA != b.RegionA {
			return a.RegionA < b.RegionA
		}
		if a.RegionB != b.RegionB {
			return a.RegionB < b.RegionB
		}
		return a.Node < b.Node
	})
	return s
}

// Total returns the number of conflicts recorded so far.
func (l *ConflictLedger) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// WriteText renders the summary as an aligned heatmap table, hottest
// cells first, capped at top rows (<= 0: all).
func (s ConflictSummary) WriteText(w io.Writer, top int) {
	if s.Total == 0 {
		fmt.Fprintln(w, "no conflicts recorded")
		return
	}
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "total %d", s.Total)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %s=%d", k, s.ByKind[k])
	}
	fmt.Fprintln(w)
	cells := s.Cells
	if top > 0 && len(cells) > top {
		cells = cells[:top]
	}
	for _, c := range cells {
		ck := make([]string, 0, len(c.Kinds))
		for k := range c.Kinds {
			ck = append(ck, k)
		}
		sort.Strings(ck)
		fmt.Fprintf(w, "  r%d-r%d %-20s %6d", c.RegionA, c.RegionB, c.Node, c.Count)
		for _, k := range ck {
			fmt.Fprintf(w, "  %s=%d", k, c.Kinds[k])
		}
		fmt.Fprintln(w)
	}
	if s.DroppedCells > 0 {
		fmt.Fprintf(w, "  (+%d conflicts in cells beyond the ledger bound)\n", s.DroppedCells)
	}
}

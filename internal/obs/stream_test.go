package obs

import (
	"sync"
	"testing"
	"time"
)

func hubEvent(name string, i int) Event {
	return Event{Time: time.Unix(0, int64(i)), Name: name, Fields: Fields{"i": i}}
}

func TestHubReplayThenLive(t *testing.T) {
	h := NewHub(16)
	h.Emit(hubEvent("a", 0))
	h.Emit(hubEvent("b", 1))

	ch, cancel := h.Subscribe()
	defer cancel()
	h.Emit(hubEvent("c", 2))
	h.Close()

	var names []string
	for e := range ch {
		names = append(names, e.Name)
	}
	want := []string{"a", "b", "c"}
	if len(names) != len(want) {
		t.Fatalf("got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestHubSubscribeAfterClose(t *testing.T) {
	h := NewHub(16)
	h.Emit(hubEvent("a", 0))
	h.Close()
	h.Emit(hubEvent("late", 1)) // dropped, not delivered

	ch, cancel := h.Subscribe()
	defer cancel()
	var n int
	for e := range ch {
		if e.Name != "a" {
			t.Fatalf("unexpected event %q after close", e.Name)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("replay after close delivered %d events, want 1", n)
	}
}

func TestHubCancelIdempotent(t *testing.T) {
	h := NewHub(4)
	_, cancel := h.Subscribe()
	cancel()
	cancel() // second cancel must not panic or double-close
	h.Close()
	cancel() // nor after close
}

func TestHubReplayCapCountsDrops(t *testing.T) {
	h := NewHub(2)
	for i := 0; i < 5; i++ {
		h.Emit(hubEvent("e", i))
	}
	if got := len(h.Events()); got != 2 {
		t.Fatalf("replay buffer holds %d events, want 2", got)
	}
	if got := h.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
}

func TestHubSlowSubscriberDoesNotBlockEmit(t *testing.T) {
	h := NewHub(8)
	_, cancel := h.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8+hubSubSlack+50; i++ {
			h.Emit(hubEvent("e", i))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}
	if h.Dropped() == 0 {
		t.Fatal("expected drops on an overflowing subscriber")
	}
}

func TestHubConcurrentEmitSubscribeClose(t *testing.T) {
	h := NewHub(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Emit(hubEvent("e", g*1000+i))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := h.Subscribe()
			for range ch {
			}
			cancel()
		}()
	}
	var closeWG sync.WaitGroup
	closeWG.Add(1)
	go func() {
		defer closeWG.Done()
		time.Sleep(time.Millisecond)
		h.Close()
	}()
	closeWG.Wait()
	wg.Wait()
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// PhaseSet accumulates wall time per named pipeline phase. A nil PhaseSet
// is a no-op, so instrumented code never branches on enablement.
type PhaseSet struct {
	mu    sync.Mutex
	order []string
	total map[string]time.Duration
	count map[string]int64
}

// NewPhaseSet returns an empty phase accumulator.
func NewPhaseSet() *PhaseSet {
	return &PhaseSet{
		total: make(map[string]time.Duration),
		count: make(map[string]int64),
	}
}

// Add accumulates d into the named phase.
func (p *PhaseSet) Add(name string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.total[name]; !ok {
		p.order = append(p.order, name)
	}
	p.total[name] += d
	p.count[name]++
}

// Start begins timing the named phase; the returned func stops it and
// accumulates the elapsed time.
func (p *PhaseSet) Start(name string) func() {
	if p == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { p.Add(name, time.Since(t0)) }
}

// Snapshot returns the accumulated phases in first-seen order.
func (p *PhaseSet) Snapshot() Phases {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(Phases, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, PhaseStat{
			Name:    name,
			Count:   p.count[name],
			Seconds: p.total[name].Seconds(),
		})
	}
	return out
}

// PhaseStat is the accumulated wall time of one pipeline phase.
type PhaseStat struct {
	// Name is the phase label ("harvest", "atpg-check", ...).
	Name string `json:"name"`
	// Count is how many timed segments the phase accumulated.
	Count int64 `json:"count"`
	// Seconds is the total wall time of the phase.
	Seconds float64 `json:"seconds"`
}

// Phases is an ordered phase breakdown (a PhaseSet snapshot).
type Phases []PhaseStat

// Seconds returns the summed wall time over all phases.
func (ps Phases) Seconds() float64 {
	total := 0.0
	for _, p := range ps {
		total += p.Seconds
	}
	return total
}

// Map returns the breakdown as phase name -> seconds (for JSON reports).
func (ps Phases) Map() map[string]float64 {
	m := make(map[string]float64, len(ps))
	for _, p := range ps {
		m[p.Name] = p.Seconds
	}
	return m
}

// Get returns the stat of the named phase and whether it exists.
func (ps Phases) Get(name string) (PhaseStat, bool) {
	for _, p := range ps {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStat{}, false
}

// String renders the breakdown sorted by descending share of total time.
func (ps Phases) String() string {
	if len(ps) == 0 {
		return "(no phases)"
	}
	sorted := append(Phases(nil), ps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seconds > sorted[j].Seconds })
	total := ps.Seconds()
	var b strings.Builder
	for i, p := range sorted {
		if i > 0 {
			b.WriteString(", ")
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * p.Seconds / total
		}
		fmt.Fprintf(&b, "%s %.3fs (%.0f%%)", p.Name, p.Seconds, pct)
	}
	return b.String()
}
